(* fvnd: the multi-process distributed-runtime demo.

   Runs the path-vector program across one real OS process per node,
   wired over Unix-domain sockets ({!Dist.Supervisor}), then runs the
   same topology and program on the in-process virtual-clock simulator
   and asserts the per-node fixpoints are identical.  Exit status 0
   means every node's store matched; 1 means divergence or a failed
   run — the CI smoke step relies on this. *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Programs = Ndlog.Programs
module Localize = Ndlog.Localize
module V = Ndlog.Value
module Topo = Netsim.Topology
module Runtime = Dist.Runtime
module Supervisor = Dist.Supervisor

let usage () =
  prerr_endline
    "usage: fvnd [--nodes N] [--topo ring|line|star] [--timeout SECONDS]";
  exit 2

let topo_of_links links =
  let t = Topo.create () in
  List.iter
    (fun (f : Ast.fact) ->
      match f.Ast.fact_args with
      | [ s; d; c ] ->
        Topo.add_link ~cost:(V.as_int c) t (V.as_addr s) (V.as_addr d)
      | _ -> ())
    links;
  t

let () =
  let nodes = ref 4 and topo_kind = ref "ring" and timeout = ref 10.0 in
  let rec parse = function
    | [] -> ()
    | "--nodes" :: v :: rest ->
      nodes := int_of_string v;
      parse rest
    | "--topo" :: v :: rest ->
      topo_kind := v;
      parse rest
    | "--timeout" :: v :: rest ->
      timeout := float_of_string v;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !nodes < 2 then usage ();
  let links =
    match !topo_kind with
    | "ring" -> Programs.ring_links !nodes
    | "line" -> Programs.line_links !nodes
    | "star" -> Programs.star_links !nodes
    | _ -> usage ()
  in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let program =
    match Localize.rewrite_program full with
    | Ok r -> r.Localize.program
    | Error e ->
      Fmt.epr "localization failed: %a@." Localize.pp_error e;
      exit 1
  in
  let topo = topo_of_links links in
  Fmt.pr "fvnd: %d workers over unix sockets, %s topology@." !nodes !topo_kind;
  let res = Supervisor.run ~read_timeout:!timeout topo program in
  Fmt.pr
    "converged in %.3fs wall: %d data frames, %d bytes on the wire, %d \
     inserts, %d polls@."
    res.Supervisor.wall_seconds res.Supervisor.data_frames
    res.Supervisor.data_bytes res.Supervisor.total_inserts
    res.Supervisor.polls;
  (* The oracle: same program, same topology, virtual clock. *)
  let rt = Runtime.create topo program in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  if not report.Runtime.stats.Netsim.Sim.quiesced then begin
    Fmt.epr "simulator oracle did not quiesce@.";
    exit 1
  end;
  let divergent =
    List.filter
      (fun (node, store) ->
        not (Store.equal store (Runtime.node_store rt node)))
      res.Supervisor.stores
  in
  List.iter
    (fun (node, store) ->
      Fmt.pr "  %s: %d tuples, %d bestPath@." node (Store.total_tuples store)
        (Store.cardinal "bestPath" store))
    res.Supervisor.stores;
  match divergent with
  | [] ->
    Fmt.pr "fixpoints match the simulator on every node@.";
    exit 0
  | l ->
    List.iter
      (fun (node, store) ->
        Fmt.epr "node %s diverges from the simulator:@.  sockets: %a@.  sim: %a@."
          node Store.pp store Store.pp
          (Runtime.node_store rt node))
      l;
    exit 1
