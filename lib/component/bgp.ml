(* The component-based BGP model of Figure 2, made executable.

   The decomposition follows the paper exactly:

     activeAS   -- the trigger: which AS advertises to which neighbour
                   at this iteration (an input relation);
     pt         -- peer transformation, itself composed of
                     export  (apply export policy filters),
                     pvt     (the path-vector transformation: prepend
                              the receiver, reject loops, count hops),
                     import  (apply import policies: assign local
                              preference, reject unknown peers);
     bestRoute  -- route selection: lowest local preference first
                   (the paper's LP convention), then lowest cost, then
                   a deterministic path tie-break.

   Each component is an atomic {!Model} component, so the NDlog program
   (arc 3) and the logical theory (arc 2/4) are generated, not hand
   written.  One protocol iteration ("AS U recomputes the best route
   and exports to neighbors at the next time iteration") evaluates the
   generated program; the time loop and the adj-RIB-in replacement --
   the only non-monotonic state update, which stratified Datalog cannot
   express -- live in OCaml ([run]), mirroring the paper's explicit
   iteration index T.

   The Disagree configuration reproduces the paper's §3.2.2 experiment:
   "delayed convergence in the presence of policy conflicts". *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module V = Ndlog.Value

(* ------------------------------------------------------------------ *)
(* Configurations. *)

type config = {
  ases : string list;
  neighbors : (string * string) list;  (* duplex adjacency *)
  originations : (string * string) list;  (* AS originates destination *)
  (* (u, w, lp): U accepts routes from W at local preference lp;
     absent pairs are filtered by import. *)
  import_pref : (string * string * int) list;
  (* (w, u, d): W does not export destination d to U. *)
  export_deny : (string * string * string) list;
}

let duplex pairs =
  List.concat_map (fun (a, b) -> [ (a, b); (b, a) ]) pairs

(* The paper's Disagree scenario: AS 1 and AS 2 each prefer the route
   through the other (lp 0) over their direct route to the origin AS 0
   (lp 1).  Lower lp wins, per the paper's LP algebra. *)
let disagree : config =
  {
    ases = [ "as0"; "as1"; "as2" ];
    neighbors = duplex [ ("as0", "as1"); ("as0", "as2"); ("as1", "as2") ];
    originations = [ ("as0", "d0") ];
    import_pref =
      [
        ("as1", "as0", 1);
        ("as2", "as0", 1);
        ("as1", "as2", 0);
        ("as2", "as1", 0);
        ("as0", "as1", 1);
        ("as0", "as2", 1);
      ];
    export_deny = [];
  }

(* The conflict-free variant: direct routes preferred. *)
let agree : config =
  {
    disagree with
    import_pref =
      [
        ("as1", "as0", 0);
        ("as2", "as0", 0);
        ("as1", "as2", 1);
        ("as2", "as1", 1);
        ("as0", "as1", 0);
        ("as0", "as2", 0);
      ];
  }

(* A shortest-path-like configuration on a chain of [k] ASes with the
   origin at as0 (used for scaling runs). *)
let chain k : config =
  let as_ i = Printf.sprintf "as%d" i in
  {
    ases = List.init k as_;
    neighbors = duplex (List.init (k - 1) (fun i -> (as_ i, as_ (i + 1))));
    originations = [ (as_ 0, "d0") ];
    import_pref =
      List.concat
        (List.init (k - 1) (fun i ->
             [ (as_ i, as_ (i + 1), 1); (as_ (i + 1), as_ i, 1) ]));
    export_deny = [];
  }

(* ------------------------------------------------------------------ *)
(* The component model (Figure 2). *)

let v x = Ast.Var x
let atom = Ast.atom

let selection_components : Model.t =
  let candidate_rib =
    Model.atomic ~name:"candidateRib"
      ~inputs:[ atom ~loc:0 "ribIn" [ v "U"; v "W"; v "D"; v "P"; v "LP"; v "C" ] ]
      ~output:
        (Ast.head ~loc:0 "candidate"
           [
             Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Plain (v "P");
             Ast.Plain (v "LP"); Ast.Plain (v "C");
           ])
      ()
  in
  let candidate_origin =
    Model.atomic ~name:"candidateOrigin"
      ~inputs:[ atom ~loc:0 "origination" [ v "U"; v "D" ] ]
      ~constraints:
        [
          Ast.Assign ("P", Ast.call "f_cons" [ v "U"; Ast.call "f_empty" [] ]);
          Ast.Assign ("LP", Ast.cint 0);
          Ast.Assign ("C", Ast.cint 0);
        ]
      ~output:
        (Ast.head ~loc:0 "candidate"
           [
             Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Plain (v "P");
             Ast.Plain (v "LP"); Ast.Plain (v "C");
           ])
      ()
  in
  let best_lp =
    Model.atomic ~name:"bestLp"
      ~inputs:
        [ atom ~loc:0 "candidate" [ v "U"; v "D"; v "P"; v "LP"; v "C" ] ]
      ~output:
        (Ast.head ~loc:0 "bestLp"
           [ Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Agg (Ast.Min, "LP") ])
      ()
  in
  let best_cost =
    Model.atomic ~name:"bestCost"
      ~inputs:
        [
          atom ~loc:0 "candidate" [ v "U"; v "D"; v "P"; v "LP"; v "C" ];
          atom ~loc:0 "bestLp" [ v "U"; v "D"; v "LP" ];
        ]
      ~output:
        (Ast.head ~loc:0 "bestCost"
           [ Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Agg (Ast.Min, "C") ])
      ()
  in
  let best_path =
    Model.atomic ~name:"bestPathTie"
      ~inputs:
        [
          atom ~loc:0 "candidate" [ v "U"; v "D"; v "P"; v "LP"; v "C" ];
          atom ~loc:0 "bestLp" [ v "U"; v "D"; v "LP" ];
          atom ~loc:0 "bestCost" [ v "U"; v "D"; v "C" ];
        ]
      ~output:
        (Ast.head ~loc:0 "bestPathTie"
           [ Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Agg (Ast.Min, "P") ])
      ()
  in
  let best_route =
    Model.atomic ~name:"bestRoute"
      ~inputs:
        [
          atom ~loc:0 "candidate" [ v "U"; v "D"; v "P"; v "LP"; v "C" ];
          atom ~loc:0 "bestLp" [ v "U"; v "D"; v "LP" ];
          atom ~loc:0 "bestCost" [ v "U"; v "D"; v "C" ];
          atom ~loc:0 "bestPathTie" [ v "U"; v "D"; v "P" ];
        ]
      ~output:
        (Ast.head ~loc:0 "bestRoute"
           [
             Ast.Plain (v "U"); Ast.Plain (v "D"); Ast.Plain (v "P");
             Ast.Plain (v "LP"); Ast.Plain (v "C");
           ])
      ()
  in
  Model.composite "bestRouteSelection"
    [ candidate_rib; candidate_origin; best_lp; best_cost; best_path; best_route ]

let pt_components : Model.t =
  let export =
    Model.atomic ~name:"export"
      ~inputs:
        [
          atom ~loc:0 "activeAS" [ v "W"; v "U" ];
          atom ~loc:0 "bestRoute" [ v "W"; v "D"; v "P"; v "LP"; v "C" ];
        ]
      ~constraints:
        [ Ast.Neg (atom ~loc:0 "exportDeny" [ v "W"; v "U"; v "D" ]) ]
      ~output:
        (Ast.head ~loc:0 "exported"
           [
             Ast.Plain (v "W"); Ast.Plain (v "U"); Ast.Plain (v "D");
             Ast.Plain (v "P"); Ast.Plain (v "C");
           ])
      ()
  in
  let pvt =
    Model.atomic ~name:"pvt"
      ~inputs:
        [ atom ~loc:0 "exported" [ v "W"; v "U"; v "D"; v "P"; v "C" ] ]
      ~constraints:
        [
          Ast.Cond
            (Ast.Eq, Ast.call "f_inPath" [ v "P"; v "U" ], Ast.cbool false);
          Ast.Assign ("P2", Ast.call "f_concatPath" [ v "U"; v "P" ]);
          Ast.Assign ("C2", Ast.Binop (Ast.Add, v "C", Ast.cint 1));
        ]
      ~output:
        (Ast.head ~loc:1 "advertised"
           [
             Ast.Plain (v "W"); Ast.Plain (v "U"); Ast.Plain (v "D");
             Ast.Plain (v "P2"); Ast.Plain (v "C2");
           ])
      ()
  in
  let import =
    Model.atomic ~name:"import"
      ~inputs:
        [
          atom ~loc:1 "advertised" [ v "W"; v "U"; v "D"; v "P"; v "C" ];
          atom ~loc:0 "importPref" [ v "U"; v "W"; v "LP" ];
        ]
      ~output:
        (Ast.head ~loc:0 "imported"
           [
             Ast.Plain (v "U"); Ast.Plain (v "W"); Ast.Plain (v "D");
             Ast.Plain (v "P"); Ast.Plain (v "LP"); Ast.Plain (v "C");
           ])
      ()
  in
  Model.composite "pt" [ export; pvt; import ]

(* The full Figure-2 model. *)
let model : Model.t = Model.composite "bgp" [ selection_components; pt_components ]

(* The generated NDlog program (arc 3). *)
let program () : Ast.program = Model.to_ndlog model

(* The generated logical specification (arc 2/4). *)
let theory () : Logic.Theory.t = Model.to_theory model

(* ------------------------------------------------------------------ *)
(* Facts. *)

type route = {
  path : string list;
  lp : int;
  cost : int;
}

(* adj-RIB-in entries: (receiving AS, advertising neighbour,
   destination) -> route. *)
module Rib = Map.Make (struct
  type t = string * string * string

  let compare = compare
end)

type rib = route Rib.t

let path_value p = V.List (List.map (fun a -> V.Addr a) p)

let path_of_value pv = List.map V.as_addr (V.as_list pv)

let config_facts (c : config) : Ast.fact list =
  List.map (fun (u, d) -> Ast.fact ~loc:0 "origination" [ V.Addr u; V.Addr d ]) c.originations
  @ List.map
      (fun (u, w, lp) ->
        Ast.fact ~loc:0 "importPref" [ V.Addr u; V.Addr w; V.Int lp ])
      c.import_pref
  @ List.map
      (fun (w, u, d) ->
        Ast.fact ~loc:0 "exportDeny" [ V.Addr w; V.Addr u; V.Addr d ])
      c.export_deny

let active_facts (active : (string * string) list) : Ast.fact list =
  List.map
    (fun (w, u) -> Ast.fact ~loc:0 "activeAS" [ V.Addr w; V.Addr u ])
    active

let rib_facts (rib : rib) : Ast.fact list =
  Rib.fold
    (fun (u, w, d) r acc ->
      Ast.fact ~loc:0 "ribIn"
        [ V.Addr u; V.Addr w; V.Addr d; path_value r.path; V.Int r.lp; V.Int r.cost ]
      :: acc)
    rib []

(* ------------------------------------------------------------------ *)
(* One protocol iteration: evaluate the generated program, then apply
   the adj-RIB-in replacement for the pairs that were active. *)

type step_result = {
  new_rib : rib;
  best : (string * string * route) list;  (* AS, dest, selected route *)
  derivations : int;
}

let decode_best db =
  Store.tuples "bestRoute" db
  |> List.map (fun t ->
         ( V.as_addr t.(0),
           V.as_addr t.(1),
           { path = path_of_value t.(2); lp = V.as_int t.(3); cost = V.as_int t.(4) }
         ))

let step (c : config) ~(active : (string * string) list) (rib : rib) :
    step_result =
  let prog =
    { (program ()) with
      Ast.facts = config_facts c @ active_facts active @ rib_facts rib }
  in
  let outcome = Ndlog.Eval.run_exn prog in
  let db = outcome.Ndlog.Eval.db in
  (* Imported routes of this round. *)
  let imported =
    Store.tuples "imported" db
    |> List.map (fun t ->
           ( (V.as_addr t.(0), V.as_addr t.(1), V.as_addr t.(2)),
             {
               path = path_of_value t.(3);
               lp = V.as_int t.(4);
               cost = V.as_int t.(5);
             } ))
  in
  (* Replacement semantics: an active pair (w -> u) refreshes all of
     u's entries from w — entries not re-advertised are withdrawn. *)
  let new_rib =
    Rib.filter
      (fun (u, w, _) _ -> not (List.mem (w, u) active))
      rib
  in
  let new_rib =
    List.fold_left (fun m (k, r) -> Rib.add k r m) new_rib imported
  in
  { new_rib; best = decode_best db; derivations = outcome.Ndlog.Eval.derivations }

(* ------------------------------------------------------------------ *)
(* The time loop (the paper's T index). *)

type schedule =
  | Sync  (* every adjacency advertises every round *)
  | Pair_round_robin  (* one directed adjacency per round *)
  | Pair_random of int  (* one random directed adjacency per round, seeded *)
  | Subset_random of int
      (* each adjacency is independently active with probability 1/2:
         conflicting ASes can still act simultaneously (and oscillate
         for a while), but asymmetric rounds eventually break the tie —
         the regime where the paper's delayed convergence is visible *)

type outcome = {
  converged : bool;
  oscillated : bool;
  rounds : int;
  flaps : int;  (* best-route changes after the first selection *)
  cycle_length : int option;
  final_best : (string * string * route) list;
  total_derivations : int;
}

let run ?(max_rounds = 200) (c : config) ~(schedule : schedule) : outcome =
  let pairs = c.neighbors in
  let rng =
    match schedule with
    | Pair_random seed | Subset_random seed ->
      Some (Random.State.make [| seed |])
    | Sync | Pair_round_robin -> None
  in
  let active_for round =
    match schedule with
    | Sync -> pairs
    | Pair_round_robin -> [ List.nth pairs (round mod List.length pairs) ]
    | Pair_random _ ->
      let st =
        Spp.Solver.schedule_rng ~component:"Component.Bgp.run"
          ~schedule:"Pair_random" rng
      in
      [ List.nth pairs (Random.State.int st (List.length pairs)) ]
    | Subset_random _ ->
      (* High activation probability: rounds are nearly synchronous, so
         conflicting ASes usually move together (sustaining the
         oscillation) and only occasional asymmetry resolves it. *)
      let st =
        Spp.Solver.schedule_rng ~component:"Component.Bgp.run"
          ~schedule:"Subset_random" rng
      in
      let chosen =
        List.filter (fun _ -> Random.State.float st 1.0 < 0.85) pairs
      in
      if chosen = [] then [ List.nth pairs (Random.State.int st (List.length pairs)) ]
      else chosen
  in
  let seen = Hashtbl.create 64 in
  let rib_key rib = Rib.bindings rib in
  (* Schedule phase: only round-robin runs are phase-sensitive; a state
     revisit only proves oscillation at the same phase. *)
  let phase round =
    match schedule with
    | Pair_round_robin -> round mod max 1 (List.length pairs)
    | Sync | Pair_random _ | Subset_random _ -> 0
  in
  (* A quiet round under a partial schedule does not prove global
     stability; probe with a full synchronous step. *)
  let globally_stable rib =
    let probe = step c ~active:pairs rib in
    Rib.equal ( = ) probe.new_rib rib
  in
  let rec go round rib best flaps derivs =
    if round >= max_rounds then
      {
        converged = false;
        oscillated = false;
        rounds = round;
        flaps;
        cycle_length = None;
        final_best = best;
        total_derivations = derivs;
      }
    else
      let r = step c ~active:(active_for round) rib in
      let flaps =
        if round = 0 then flaps
        else if r.best <> best then flaps + 1
        else flaps
      in
      let derivs = derivs + r.derivations in
      if
        Rib.equal ( = ) r.new_rib rib
        && r.best = best && round > 0
        && globally_stable r.new_rib
      then
        {
          converged = true;
          oscillated = false;
          rounds = round;
          flaps;
          cycle_length = None;
          final_best = r.best;
          total_derivations = derivs;
        }
      else begin
        let key = (rib_key r.new_rib, phase round) in
        match Hashtbl.find_opt seen key with
        | Some prev when rng = None ->
          {
            converged = false;
            oscillated = true;
            rounds = round;
            flaps;
            cycle_length = Some (round - prev);
            final_best = r.best;
            total_derivations = derivs;
          }
        | _ ->
          Hashtbl.replace seen key round;
          go (round + 1) r.new_rib r.best flaps derivs
      end
  in
  go 0 Rib.empty [] 0 0

(* ------------------------------------------------------------------ *)
(* From policy configuration to the Stable Paths Problem.

   A config induces an SPP instance per destination: the originating AS
   is the SPP origin (node 0); every other AS's permitted paths are the
   simple paths to the origin whose first hop it imports (an
   import_pref entry exists) and along which every AS re-exports (no
   export_deny), ranked exactly as bestRoute ranks candidates (local
   preference of the import, then hop count, then the path itself).

   The conversion lets the SPP machinery classify a configuration
   *before* running it: a unique solution means safety, multiple
   solutions a Disagree-style wedge, none a Bad-Gadget-style
   divergence. *)

let to_spp (c : config) ~(dest : string) : (Spp.Instance.t * string array, string) result =
  match List.find_opt (fun (_, d) -> d = dest) c.originations with
  | None -> Error ("no AS originates " ^ dest)
  | Some (origin_as, _) ->
    (* Node numbering: origin is 0. *)
    let others = List.filter (fun a -> a <> origin_as) c.ases in
    let names = Array.of_list (origin_as :: others) in
    let index_of a =
      let rec go i = if names.(i) = a then i else go (i + 1) in
      go 0
    in
    let neighbors_of u =
      List.filter_map (fun (w, v) -> if w = u then Some v else None) c.neighbors
    in
    let imports u w =
      List.exists (fun (u', w', _) -> u' = u && w' = w) c.import_pref
    in
    let lp_of u w =
      match
        List.find_opt (fun (u', w', _) -> u' = u && w' = w) c.import_pref
      with
      | Some (_, _, lp) -> lp
      | None -> max_int
    in
    let exports w u =
      not (List.exists (fun (w', u', d) -> w' = w && u' = u && d = dest) c.export_deny)
    in
    (* All simple AS paths from [u] to the origin obeying the policies. *)
    let rec paths_from u visited : string list list =
      if u = origin_as then [ [ origin_as ] ]
      else
        List.concat_map
          (fun w ->
            if List.mem w visited then []
            else if not (imports u w) then []
            else if not (exports w u) then []
            else
              List.map (fun rest -> u :: rest) (paths_from w (w :: visited)))
          (neighbors_of u)
    in
    let rank_key u (p : string list) =
      match p with
      | _ :: next :: _ -> (lp_of u next, List.length p, p)
      | _ -> (max_int, max_int, p)
    in
    let permitted =
      List.map
        (fun u ->
          paths_from u [ u ]
          |> List.sort (fun a b -> compare (rank_key u a) (rank_key u b))
          |> List.map (fun p -> List.map index_of p))
        others
    in
    (match Spp.Instance.make ~n:(List.length c.ases) permitted with
    | inst -> Ok (inst, names)
    | exception Spp.Instance.Ill_formed m -> Error m)

(* Classify a configuration's stable-routing structure for one
   destination. *)
let classify (c : config) ~dest : (Spp.Solver.classification, string) result =
  Result.map (fun (inst, _) -> Spp.Solver.classify inst) (to_spp c ~dest)

(* Convergence-delay profile over random activation schedules: the E3
   dispersion measurement. *)
let convergence_profile ?(runs = 20) ?(max_rounds = 400)
    ?(schedule = fun seed -> Subset_random seed) (c : config) =
  List.init runs (fun seed ->
      let o = run ~max_rounds c ~schedule:(schedule seed) in
      (o.converged, o.rounds, o.flaps))
