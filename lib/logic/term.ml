(* First-order terms.

   Constants reuse the NDlog value domain so that translated programs
   and evaluated tuples share one vocabulary.  Function symbols cover
   NDlog builtins (f_concatPath, ...) and arithmetic (+, -, *, /). *)

module Value = Ndlog.Value

type t =
  | Var of string
  | Cst of Value.t
  | Fn of string * t list

let rec compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Cst u, Cst v -> Value.compare u v
  | Cst _, _ -> -1
  | _, Cst _ -> 1
  | Fn (f, xs), Fn (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else List.compare compare xs ys

let equal a b = compare a b = 0

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let rec free_vars acc = function
  | Var x -> Sset.add x acc
  | Cst _ -> acc
  | Fn (_, args) -> List.fold_left free_vars acc args

let vars t = free_vars Sset.empty t

(* Substitutions: finite maps from variables to terms. *)
type subst = t Smap.t

let subst_empty : subst = Smap.empty
let subst_bind x t (s : subst) : subst = Smap.add x t s
let subst_find x (s : subst) = Smap.find_opt x s
let subst_of_list l : subst = List.fold_left (fun s (x, t) -> Smap.add x t s) Smap.empty l

let rec apply_subst (s : subst) = function
  | Var x as t -> ( match Smap.find_opt x s with Some u -> u | None -> t)
  | Cst _ as t -> t
  | Fn (f, args) -> Fn (f, List.map (apply_subst s) args)

(* One-way matching: find sigma with pattern{sigma} = target.  Target is
   typically ground (skolemized hypotheses). *)
let rec matching (s : subst) pattern target : subst option =
  match pattern, target with
  | Var x, _ -> (
    match Smap.find_opt x s with
    | None -> Some (Smap.add x target s)
    | Some t -> if equal t target then Some s else None)
  | Cst u, Cst v -> if Value.equal u v then Some s else None
  | Fn (f, xs), Fn (g, ys) when f = g && List.length xs = List.length ys ->
    List.fold_left2
      (fun acc x y -> match acc with None -> None | Some s -> matching s x y)
      (Some s) xs ys
  | _ -> None

let rec occurs x = function
  | Var y -> x = y
  | Cst _ -> false
  | Fn (_, args) -> List.exists (occurs x) args

(* Syntactic unification with occurs check. *)
let rec unify (s : subst) a b : subst option =
  let a = apply_subst s a and b = apply_subst s b in
  match a, b with
  | Var x, Var y when x = y -> Some s
  | Var x, t | t, Var x ->
    if occurs x t then None else Some (Smap.add x t (Smap.map (apply_subst (Smap.singleton x t)) s))
  | Cst u, Cst v -> if Value.equal u v then Some s else None
  | Fn (f, xs), Fn (g, ys) when f = g && List.length xs = List.length ys ->
    List.fold_left2
      (fun acc x y -> match acc with None -> None | Some s -> unify s x y)
      (Some s) xs ys
  | _ -> None

(* All subterms, used as instantiation candidates by the prover. *)
let rec subterms acc t =
  let acc = t :: acc in
  match t with
  | Var _ | Cst _ -> acc
  | Fn (_, args) -> List.fold_left subterms acc args

let is_ground t = Sset.is_empty (vars t)

(* ------------------------------------------------------------------ *)
(* Ground evaluation of interpreted symbols: arithmetic and NDlog
   builtins.  Returns None for uninterpreted or non-ground terms. *)

let rec eval : t -> Value.t option = function
  | Var _ -> None
  | Cst v -> Some v
  | Fn (f, args) -> (
    let vals = List.map eval args in
    if List.exists Option.is_none vals then None
    else
      (* [Option.get] is guarded: the [exists is_none] check just
         above guarantees every element is [Some]. *)
      let vals = List.map Option.get vals in
      match f, vals with
      | "+", [ Value.Int a; Value.Int b ] -> Some (Value.Int (a + b))
      | "-", [ Value.Int a; Value.Int b ] -> Some (Value.Int (a - b))
      | "*", [ Value.Int a; Value.Int b ] -> Some (Value.Int (a * b))
      | "/", [ Value.Int a; Value.Int b ] when b <> 0 -> Some (Value.Int (a / b))
      | _ -> (
        match Ndlog.Builtins.apply f vals with
        | v -> Some v
        | exception _ -> None))

(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | Var x -> Fmt.string ppf x
  | Cst v -> Value.pp ppf v
  | Fn (f, [ a; b ]) when f = "+" || f = "-" || f = "*" || f = "/" ->
    Fmt.pf ppf "(%a %s %a)" pp a f pp b
  | Fn (f, []) -> Fmt.string ppf f
  | Fn (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp) args

let to_string t = Fmt.str "%a" pp t

let var x = Var x
let cst v = Cst v
let int n = Cst (Value.Int n)
let fn f args = Fn (f, args)
let ( +: ) a b = Fn ("+", [ a; b ])
let ( -: ) a b = Fn ("-", [ a; b ])
