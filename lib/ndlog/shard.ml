(* Sharding a tuple store by the location-specifier column.

   The localization rewrite ({!Localize}) guarantees that every rule
   body reads tuples at a single node, so the location specifier is a
   correct shard key by construction: partitioning every located
   relation by the value in its location column puts all the tuples a
   rule activation can touch into the same shard, and a derived head
   located elsewhere is exactly a tuple the distributed runtime would
   ship as a message ({!Dist.Runtime}).  Relations with no location
   specifier are replicated into every shard.

   Shard keys are raw {!Value.t}s, not coerced addresses: join
   variables bind by value equality, so grouping by the uncoerced
   location value partitions precisely the joinable tuple sets even for
   programs that locate tuples at non-address values.

   [analyze] is deliberately stricter than {!Localize.check_localized}.
   Sharded evaluation reads only the shard-local slice of each located
   relation, so it additionally needs (a) every occurrence of a
   predicate to agree on the location column, (b) every located body
   atom of a rule to carry one shared bare location variable (a
   constant location would silently read a foreign shard), and (c)
   aggregate rules over located bodies to group by the location
   variable (otherwise one group would span shards and each shard would
   emit its own partial aggregate).  Any violation yields an [Error]
   and the evaluator falls back to the centralized engine. *)

module Smap = Map.Make (String)

type plan = { locs : int Smap.t }
(* [locs] maps located predicates to their location column; predicates
   absent from the map are unlocated (replicated). *)

let loc_index (p : plan) pred = Smap.find_opt pred p.locs

(* ------------------------------------------------------------------ *)
(* Shardability analysis. *)

let err fmt = Format.kasprintf (fun m -> Error m) fmt

(* Per-predicate location columns, requiring every occurrence (facts,
   rule heads, body atoms) to agree: either always located at the same
   column or never located. *)
let consistent_locs (p : Ast.program) : (plan, string) result =
  let tbl : (string, int option) Hashtbl.t = Hashtbl.create 16 in
  let merge pred loc =
    match Hashtbl.find_opt tbl pred with
    | None ->
      Hashtbl.replace tbl pred loc;
      Ok ()
    | Some prev when prev = loc -> Ok ()
    | Some prev ->
      let show = function Some i -> string_of_int i | None -> "none" in
      err "predicate %s has inconsistent location columns (%s vs %s)" pred
        (show prev) (show loc)
  in
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let* () =
    each (fun (f : Ast.fact) -> merge f.fact_pred f.fact_loc) p.facts
  in
  let* () =
    each
      (fun (r : Ast.rule) ->
        let* () = merge r.head.head_pred r.head.head_loc in
        each (fun (a : Ast.atom) -> merge a.pred a.loc) (Ast.body_atoms r.body))
      p.rules
  in
  Ok
    {
      locs =
        Hashtbl.fold
          (fun pred loc acc ->
            match loc with Some i -> Smap.add pred i acc | None -> acc)
          tbl Smap.empty;
    }

(* The single bare location variable shared by all located body atoms of
   a rule, if the body is shardable: [Ok None] for bodies with no
   located atom. *)
let body_loc_var (plan : plan) (r : Ast.rule) : (string option, string) result =
  let located =
    List.filter (fun (a : Ast.atom) -> loc_index plan a.pred <> None)
      (Ast.body_atoms r.body)
  in
  let var_of (a : Ast.atom) =
    (* [Option.get] is guarded: [var_of] is only applied to [located]
       atoms, filtered just above on [loc_index <> None]. *)
    let i = Option.get (loc_index plan a.pred) in
    match List.nth_opt a.args i with
    | Some (Ast.Var x) -> Ok x
    | _ ->
      err "rule %a: located atom %s has a non-variable location argument"
        Ast.pp_rule r a.pred
  in
  match located with
  | [] -> Ok None
  | first :: rest -> (
    match var_of first with
    | Error _ as e -> e
    | Ok x ->
      let rec all = function
        | [] -> Ok (Some x)
        | a :: more -> (
          match var_of a with
          | Error _ as e -> e
          | Ok y when y = x -> all more
          | Ok y ->
            err "rule %a: body spans locations %s and %s" Ast.pp_rule r x y)
      in
      all rest)

let analyze (p : Ast.program) : (plan, string) result =
  match consistent_locs p with
  | Error _ as e -> e
  | Ok plan ->
    let check_rule (r : Ast.rule) =
      match body_loc_var plan r with
      | Error _ as e -> e
      | Ok None -> Ok ()
      | Ok (Some x) ->
        if not (Ast.has_aggregate r.head) then Ok ()
        else if
          (* The location variable must be a group-by column, or each
             shard would emit a partial aggregate for a shared group. *)
          List.exists
            (function Ast.Plain (Ast.Var y) -> y = x | _ -> false)
            r.head.head_args
        then Ok ()
        else
          err
            "rule %a: aggregate does not group by the location variable %s"
            Ast.pp_rule r x
    in
    let rec go = function
      | [] -> Ok plan
      | r :: rest -> (
        match check_rule r with Ok () -> go rest | Error _ as e -> e)
    in
    go p.rules

(* ------------------------------------------------------------------ *)
(* Partitioning and merging. *)

(* The shard key of a tuple: the value in its location column, [None]
   for unlocated predicates or tuples too short to carry the column
   (the latter cannot match any body atom and are kept replicated). *)
let loc_value (plan : plan) pred (tuple : Store.Tuple.t) : Value.t option =
  match loc_index plan pred with
  | Some i when i < Array.length tuple -> Some tuple.(i)
  | _ -> None

module Vmap = Map.Make (Value)

let partition (plan : plan) (db : Store.t) :
    (Value.t * Store.t) array * Store.t =
  let located, replicated =
    List.fold_left
      (fun (located, replicated) (pred, tuple) ->
        match loc_value plan pred tuple with
        | Some key ->
          ( Vmap.update key
              (fun s ->
                Some
                  (Store.add pred tuple
                     (Option.value s ~default:Store.empty)))
              located,
            replicated )
        | None -> (located, Store.add pred tuple replicated))
      (Vmap.empty, Store.empty) (Store.to_list db)
  in
  (Array.of_list (Vmap.bindings located), replicated)

let merge (parts : (Value.t * Store.t) array) (replicated : Store.t) : Store.t =
  Array.fold_left (fun acc (_, s) -> Store.union acc s) replicated parts

(* Split a store of freshly derived tuples from the shard [self]'s point
   of view: tuples located at [self] or unlocated stay local; unlocated
   tuples are additionally broadcast; tuples located elsewhere leave the
   shard entirely (the exchange step ships them, exactly as the
   distributed runtime would send messages). *)
type routed = {
  local : Store.t;  (* kept by this shard (loc = self, or unlocated) *)
  foreign : (Value.t * string * Store.Tuple.t) list;  (* (dest, pred, tuple) *)
  everywhere : Store.t;  (* unlocated: broadcast to all shards *)
}

let route (plan : plan) ~(self : Value.t) (derived : Store.t) : routed =
  List.fold_left
    (fun acc (pred, tuple) ->
      match loc_value plan pred tuple with
      | Some key when Value.equal key self ->
        { acc with local = Store.add pred tuple acc.local }
      | Some key -> { acc with foreign = (key, pred, tuple) :: acc.foreign }
      | None ->
        {
          acc with
          local = Store.add pred tuple acc.local;
          everywhere = Store.add pred tuple acc.everywhere;
        })
    { local = Store.empty; foreign = []; everywhere = Store.empty }
    (Store.to_list derived)

(* ------------------------------------------------------------------ *)
(* The address-level view used by the distributed runtime. *)

(* The location index declared for each predicate, from rule heads,
   facts, and body atoms (last occurrence wins — the runtime's program
   has already passed localization). *)
let loc_index_map (p : Ast.program) : (string, int) Hashtbl.t =
  let m = Hashtbl.create 16 in
  List.iter
    (fun (r : Ast.rule) ->
      match r.head.Ast.head_loc with
      | Some i -> Hashtbl.replace m r.head.Ast.head_pred i
      | None -> ())
    p.rules;
  List.iter
    (fun (f : Ast.fact) ->
      match f.Ast.fact_loc with
      | Some i -> Hashtbl.replace m f.Ast.fact_pred i
      | None -> ())
    p.facts;
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun (a : Ast.atom) ->
          match a.Ast.loc with
          | Some i -> Hashtbl.replace m a.Ast.pred i
          | None -> ())
        (Ast.body_atoms r.body))
    p.rules;
  m

(* Owner address of a tuple for a located predicate ([None] when the
   predicate is unlocated or the tuple too short). *)
let tuple_location (loc : int option) (tuple : Store.Tuple.t) : string option =
  match loc with
  | Some i when i < Array.length tuple -> Some (Value.as_addr tuple.(i))
  | _ -> None
