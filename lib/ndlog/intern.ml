(* Hash-consed interning of runtime values.

   Every distinct {!Value.t} that passes through the interner is mapped
   to a single canonical representative and a dense integer id.  Two
   things fall out:

   - *Sharing*: stores hold one physical copy of each address string /
     path list, so equality checks between resident values hit the
     physical-equality fast path in {!Value.compare} and the live heap
     shrinks under churn (duplicate strings collapse).
   - *Flat keys*: secondary-index keys can be lists of ids instead of
     boxed values, turning the string comparisons on an index probe's
     tree descent into machine-int comparisons ({!Store}'s [Flat]
     index representation).

   The tables here are process-global caches, exactly like the
   secondary-index caches in {!Store}: they never participate in store
   equality, comparison, or hashing, so model-checker state identity is
   untouched.  Ids are *not* ordered consistently with
   {!Value.compare} — they are allocation-ordered — so they are only
   ever used where equality is the question (hash-cons hits, index-key
   identity); anything that needs the canonical order converts back to
   boxed values first.

   [id] and [canon] always intern, regardless of {!enabled}: the flag
   only tells {!Store} whether to canonicalize incoming tuples and
   build flat indexes.  That way flipping the flag mid-run (as the
   benchmarks do) can never make an id lookup miss a value interned
   under the other setting.

   Thread safety: a single mutex guards the tables, making interning
   safe from the sharded evaluator's worker domains.  The critical
   sections are a hash-table probe or insert — uncontended locking is
   cheap next to the work saved. *)

(* Interning defaults on; FVN_INTERNING=0 (or false/no/off) restores
   the boxed-value oracle path. *)
let enabled =
  ref
    (match Sys.getenv_opt "FVN_INTERNING" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

(* The hash-cons table must use Value's own equality and hash —
   Value.hash is structural over the List constructor, and a generic
   Hashtbl.hash would be a second, divergent notion of value identity. *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let lock = Mutex.create ()
let table : (int * Value.t) Vtbl.t = Vtbl.create 4096

(* id -> canonical representative, grown geometrically. *)
let reverse : Value.t array ref = ref (Array.make 4096 (Value.Int 0))
let count = ref 0

let register rep =
  let id = !count in
  let cap = Array.length !reverse in
  if id >= cap then begin
    let bigger = Array.make (2 * cap) (Value.Int 0) in
    Array.blit !reverse 0 bigger 0 cap;
    reverse := bigger
  end;
  !reverse.(id) <- rep;
  incr count;
  id

(* Canonicalize [v], interning it (and, for lists, every suffix of its
   spine via the recursive rebuild) on first sight.  Runs under [lock];
   does not recurse through the lock. *)
let rec canon_locked (v : Value.t) : Value.t =
  match Vtbl.find_opt table v with
  | Some (_, rep) -> rep
  | None ->
    let rep =
      match v with
      | Value.List vs -> Value.List (List.map canon_locked vs)
      | _ -> v
    in
    let id = register rep in
    Vtbl.add table v (id, rep);
    rep

let id_locked (v : Value.t) : int =
  match Vtbl.find_opt table v with
  | Some (id, _) -> id
  | None ->
    let rep =
      match v with
      | Value.List vs -> Value.List (List.map canon_locked vs)
      | _ -> v
    in
    let id = register rep in
    Vtbl.add table v (id, rep);
    id

let canon v =
  Mutex.lock lock;
  let rep = canon_locked v in
  Mutex.unlock lock;
  rep

let id v =
  Mutex.lock lock;
  let i = id_locked v in
  Mutex.unlock lock;
  i

let of_id i =
  Mutex.lock lock;
  let n = !count in
  let v = if i >= 0 && i < n then Some !reverse.(i) else None in
  Mutex.unlock lock;
  match v with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Intern.of_id: unknown id %d" i)

(* Canonicalize a tuple in place of a fresh copy when every element is
   already canonical — re-adding a resident tuple then allocates
   nothing. *)
let tuple (t : Value.t array) : Value.t array =
  Mutex.lock lock;
  let n = Array.length t in
  let fresh = ref None in
  for i = 0 to n - 1 do
    let c = canon_locked t.(i) in
    if c != t.(i) then begin
      let out =
        match !fresh with
        | Some out -> out
        | None ->
          let out = Array.copy t in
          fresh := Some out;
          out
      in
      out.(i) <- c
    end
  done;
  Mutex.unlock lock;
  match !fresh with Some out -> out | None -> t

(* ------------------------------------------------------------------ *)
(* Whole-tuple translation: the id-native evaluator's system-boundary
   conversions.  boxed -> id pays one hash-cons probe per element (the
   expensive direction: hashing walks the value's structure); id ->
   boxed is an array read per element (the cheap direction).  The E15
   microbenchmark in bench/ keeps both costs measured. *)

let tuple_ids (t : Value.t array) : int array =
  Mutex.lock lock;
  let out = Array.map id_locked t in
  Mutex.unlock lock;
  out

let tuple_of_ids (ids : int array) : Value.t array =
  Mutex.lock lock;
  let n = !count in
  let rev = !reverse in
  Mutex.unlock lock;
  Array.map
    (fun i ->
      if i >= 0 && i < n then rev.(i)
      else invalid_arg (Printf.sprintf "Intern.tuple_of_ids: unknown id %d" i))
    ids

(* Unsynchronized id -> value read for the id-native evaluator's inner
   loops.  Safe because [reverse] slots are written exactly once, before
   their id is ever published (the registering thread holds the lock,
   and the id reaches a reader only through a later synchronized
   operation), and a stale [reverse] array read during a concurrent grow
   still holds every already-published entry.  The bounds check against
   an unsynchronized [count] is exact in the single-domain runtimes that
   use this path. *)
let get (i : int) : Value.t =
  if i >= 0 && i < !count then !reverse.(i)
  else invalid_arg (Printf.sprintf "Intern.get: unknown id %d" i)

(* Small non-negative integers are the bulk of freshly computed values
   (hop counts, path costs): memoize their ids in a direct-indexed
   table so arithmetic on the id-native path skips the hash-cons probe.
   -1 marks an unfilled slot (real ids are >= 0). *)
let small_int_ids = Array.make 4096 (-1)

let int_id (n : int) : int =
  if n >= 0 && n < Array.length small_int_ids then begin
    let cached = Array.unsafe_get small_int_ids n in
    if cached >= 0 then cached
    else begin
      let i = id (Value.Int n) in
      small_int_ids.(n) <- i;
      i
    end
  end
  else id (Value.Int n)

let values_of_ids (ids : int list) : Value.t list =
  Mutex.lock lock;
  let n = !count in
  let vs =
    List.map
      (fun i ->
        if i >= 0 && i < n then !reverse.(i)
        else begin
          Mutex.unlock lock;
          invalid_arg (Printf.sprintf "Intern.values_of_ids: unknown id %d" i)
        end)
      ids
  in
  Mutex.unlock lock;
  vs

let key_ids (key : Value.t list) : int list =
  Mutex.lock lock;
  let ids = List.map id_locked key in
  Mutex.unlock lock;
  ids

let size () =
  Mutex.lock lock;
  let n = !count in
  Mutex.unlock lock;
  n
