(* Rule strands: Click-style dataflow plans.

   The paper (Section 2.2): "Declarative networking programs are
   compiled into distributed execution plans that are based on the Click
   execution model."  This module performs that compilation: each rule
   becomes one *strand* per delta position — a linear pipeline of
   relational operators through which an environment stream flows:

     delta(path) -> join(link) -> assign(C) -> select(...) -> project(head)

   Executing a strand against a database (plus the triggering delta
   tuple) yields exactly the head tuples pipelined semi-naive evaluation
   would produce, which the test suite checks against {!Eval.body_envs}.
   The distributed runtime's reaction to a tuple insertion is the
   execution of all strands whose delta predicate matches. *)

type op =
  | Delta of { pred : string; args : Ast.expr list }
      (* bind the triggering tuple (strand head) *)
  | Join of { pred : string; args : Ast.expr list }
      (* join the stream against a stored relation *)
  | Anti_join of { pred : string; args : Ast.expr list }
      (* negation: keep environments with no matching tuple *)
  | Bind of string * Ast.expr  (* assignment *)
  | Filter of Ast.cmp * Ast.expr * Ast.expr  (* comparison *)
  | Project of Ast.head  (* emit the head tuple *)

type strand = {
  strand_rule : Ast.rule;
  delta_pred : string option;  (* None: a full-scan strand *)
  delta_index : int option;  (* body position of the delta literal *)
  ops : op list;
}

exception Plan_error of string

(* ------------------------------------------------------------------ *)
(* Compilation. *)

let op_of_lit (l : Ast.lit) : op =
  match l with
  | Ast.Pos a -> Join { pred = a.Ast.pred; args = a.Ast.args }
  | Ast.Neg a -> Anti_join { pred = a.Ast.pred; args = a.Ast.args }
  | Ast.Assign (x, e) -> Bind (x, e)
  | Ast.Cond (c, a, b) -> Filter (c, a, b)

(* Compile one strand of [rule], with the body literal at [delta]
   (which must be a positive atom) as the triggering source.  The delta
   literal moves to the front; remaining literals are join-planned
   most-bound-first under the variables the delta binds
   ({!Eval.order_body} — semantics-preserving for safe rules since
   unbound variables bind by matching). *)
let compile_strand (rule : Ast.rule) ~(delta : int) : strand =
  if Ast.has_aggregate rule.Ast.head then
    raise (Plan_error "aggregate rules are not strand-compiled");
  let delta_lit =
    match List.nth_opt rule.Ast.body delta with
    | Some (Ast.Pos a) -> a
    | Some _ -> raise (Plan_error "delta position is not a positive atom")
    | None -> raise (Plan_error "delta position out of range")
  in
  let rest =
    List.filteri (fun i _ -> i <> delta) rule.Ast.body
    |> Eval.order_body ~bound:(Eval.atom_binds delta_lit)
    |> List.map op_of_lit
  in
  {
    strand_rule = rule;
    delta_pred = Some delta_lit.Ast.pred;
    delta_index = Some delta;
    ops =
      (Delta { pred = delta_lit.Ast.pred; args = delta_lit.Ast.args } :: rest)
      @ [ Project rule.Ast.head ];
  }

(* The full-scan strand: evaluates the rule against the whole database
   (used for initial rounds / non-incremental execution). *)
let compile_scan (rule : Ast.rule) : strand =
  if Ast.has_aggregate rule.Ast.head then
    raise (Plan_error "aggregate rules are not strand-compiled");
  {
    strand_rule = rule;
    delta_pred = None;
    delta_index = None;
    ops = List.map op_of_lit (Eval.order_body rule.Ast.body) @ [ Project rule.Ast.head ];
  }

(* All strands of a program: one per (rule, positive body literal whose
   predicate is derived or matches [trigger_preds]). *)
let compile_program ?(trigger_preds = []) (p : Ast.program) : strand list =
  let triggers =
    if trigger_preds <> [] then trigger_preds
    else
      (* by default, every predicate can trigger *)
      List.sort_uniq String.compare
        (List.concat_map (fun (r : Ast.rule) -> Ast.body_preds r.Ast.body) p.Ast.rules)
  in
  List.concat_map
    (fun (r : Ast.rule) ->
      if Ast.has_aggregate r.Ast.head then []
      else
        List.concat
          (List.mapi
             (fun i lit ->
               match lit with
               | Ast.Pos a when List.mem a.Ast.pred triggers ->
                 [ compile_strand r ~delta:i ]
               | _ -> [])
             r.Ast.body))
    p.Ast.rules

(* ------------------------------------------------------------------ *)
(* Execution: an environment stream flows through the operator list. *)

let execute_ops ?stats (db : Store.t) ?(delta_tuple : Store.Tuple.t option)
    (ops : op list) : Store.Tuple.t list =
  let step (envs : Env.t list) (o : op) : Env.t list =
    match o with
    | Delta { args; _ } -> (
      match delta_tuple with
      | None -> raise (Plan_error "strand needs a delta tuple")
      | Some t ->
        List.filter_map (fun env -> Env.match_args env args t) envs)
    | Join { pred; args } ->
      (* Index-aware: ground argument positions under each streamed
         environment are answered from a secondary index. *)
      List.concat_map (fun env -> Eval.join_envs ?stats db env pred args) envs
    | Anti_join { pred; args } ->
      List.filter
        (fun env ->
          let t = Array.of_list (List.map (Env.eval env) args) in
          not (Store.mem pred t db))
        envs
    | Bind (x, e) ->
      List.filter_map
        (fun env ->
          let v = Env.eval env e in
          match Env.find_opt x env with
          | None -> Some (Env.bind x v env)
          | Some v' -> if Value.equal v v' then Some env else None)
        envs
    | Filter (c, a, b) ->
      List.filter (fun env -> Env.eval_cmp c (Env.eval env a) (Env.eval env b)) envs
    | Project _ -> envs
  in
  (* Run all non-project operators, then project. *)
  let head =
    List.find_map (function Project h -> Some h | _ -> None) ops
  in
  let envs =
    List.fold_left
      (fun envs o -> match o with Project _ -> envs | o -> step envs o)
      [ Env.empty ] ops
  in
  match head with
  | None -> raise (Plan_error "strand has no projection")
  | Some h -> List.map (fun env -> Eval.head_tuple env h) envs

let execute ?stats (db : Store.t) ?delta_tuple (s : strand) : Store.Tuple.t list
    =
  execute_ops ?stats db ?delta_tuple s.ops

(* Run a delta strand over a whole batch of triggering tuples at once:
   the batch becomes a delta relation and flows through
   {!Eval.delta_envs}, so the batched group-at-a-time join applies (one
   probe pass per delta group instead of one per tuple).  Produces the
   same multiset of head tuples as executing the strand per tuple. *)
let execute_batch ?stats (db : Store.t) ~(delta_tuples : Store.Tuple.t list)
    (s : strand) : Store.Tuple.t list =
  match s.delta_index with
  | None -> raise (Plan_error "strand needs a delta position")
  | Some i ->
    let delta_atom =
      match List.nth s.strand_rule.Ast.body i with
      | Ast.Pos a -> a
      | _ -> raise (Plan_error "delta position is not a positive atom")
    in
    if delta_tuples = [] then []
    else
      let delta_db =
        List.fold_left
          (fun acc t -> Store.add delta_atom.Ast.pred t acc)
          Store.empty delta_tuples
      in
      let rest = List.filteri (fun j _ -> j <> i) s.strand_rule.Ast.body in
      List.rev_map
        (fun env -> Eval.head_tuple env s.strand_rule.Ast.head)
        (Eval.delta_envs ?stats db ~delta:(delta_atom, delta_db) ~rest)

(* Seeded delta-driven re-derivation of one view refresh stratum.

   [db] is seeded with the stratum's previous relations (its old
   fixpoint) on top of the current support; [delta] holds the support
   tuples added since that fixpoint.  Each round runs every strand
   whose trigger predicate has delta tuples through {!execute_batch};
   head tuples not already in [db] join it and become the next round's
   delta, until nothing new appears.  This is semi-naive iteration
   started from a previous fixpoint instead of from scratch — sound
   exactly when the stratum's rules are plain and monotone and the
   support change is purely additive (the refresh loop falls back to
   from-scratch recomputation otherwise). *)
let refresh_stratum ?stats (db : Store.t) ~(strands : strand list)
    ~(delta : Store.t) : Store.t =
  let rec loop db delta =
    if Store.is_empty delta then db
    else begin
      let derived =
        List.fold_left
          (fun acc s ->
            match s.delta_pred with
            | None -> acc
            | Some p -> (
              match Store.tuples p delta with
              | [] -> acc
              | tuples ->
                List.fold_left
                  (fun acc t ->
                    Store.add s.strand_rule.Ast.head.Ast.head_pred t acc)
                  acc
                  (execute_batch ?stats db ~delta_tuples:tuples s)))
          Store.empty strands
      in
      let fresh = Store.diff derived db in
      loop (Store.union db fresh) fresh
    end
  in
  loop db delta

(* ------------------------------------------------------------------ *)
(* Pretty-printing (the strand diagrams P2 logs). *)

let pp_op ppf = function
  | Delta { pred; _ } -> Fmt.pf ppf "delta(%s)" pred
  | Join { pred; _ } -> Fmt.pf ppf "join(%s)" pred
  | Anti_join { pred; _ } -> Fmt.pf ppf "antijoin(%s)" pred
  | Bind (x, e) -> Fmt.pf ppf "bind(%s := %a)" x Ast.pp_expr e
  | Filter (c, a, b) ->
    Fmt.pf ppf "filter(%a %s %a)" Ast.pp_expr a (Ast.string_of_cmp c)
      Ast.pp_expr b
  | Project h -> Fmt.pf ppf "project(%s)" h.Ast.head_pred

let pp ppf (s : strand) =
  let name =
    match s.strand_rule.Ast.rule_name with Some n -> n | None -> "rule"
  in
  Fmt.pf ppf "%s: %a" name Fmt.(list ~sep:(any " -> ") pp_op) s.ops
