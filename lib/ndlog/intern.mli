(** Hash-consed interning of runtime values.

    Maps every distinct {!Value.t} to one canonical representative and a
    dense integer id, so resident values share structure (physical
    equality makes {!Value.compare} short-circuit, duplicate strings
    collapse on the heap) and secondary-index keys can compare as
    machine ints ({!Store}'s flat indexes).

    The interning tables are process-global caches in the same sense as
    {!Store}'s secondary-index caches: they never influence store
    [equal]/[compare]/[hash], so model-checker state identity is
    unaffected.  Ids are allocation-ordered, {e not} consistent with
    {!Value.compare}; use them only for equality.

    All operations are thread-safe (a mutex guards the tables), so the
    sharded evaluator's worker domains may intern concurrently. *)

val enabled : bool ref
(** Whether {!Store} canonicalizes incoming tuples and builds flat
    (id-keyed) indexes.  Defaults to [true]; the environment switch
    [FVN_INTERNING=0] selects the boxed-value oracle path.  Interning
    itself ({!id}, {!canon}) always works regardless, so the flag can be
    flipped mid-run safely. *)

val canon : Value.t -> Value.t
(** The canonical representative of a value, interning on first sight.
    [canon v] is structurally equal to [v], and physically equal across
    all calls with structurally equal arguments. *)

val id : Value.t -> int
(** The dense id of a value, interning on first sight.
    [id a = id b] iff [Value.equal a b]. *)

val of_id : int -> Value.t
(** The canonical representative registered under an id.
    @raise Invalid_argument on an id never returned by {!id}. *)

val tuple : Value.t array -> Value.t array
(** Canonicalize every element of a tuple.  Returns the argument itself
    (no allocation) when all elements are already canonical. *)

val tuple_ids : Value.t array -> int array
(** [Array.map id], under one lock acquisition: translate a boxed tuple
    into the id-native representation.  This is the {e expensive}
    direction — each element pays a hash-cons probe that walks its
    structure — so callers keep it off per-probe hot paths (E15
    measures the cost). *)

val tuple_of_ids : int array -> Value.t array
(** [Array.map of_id], under one lock acquisition: rebuild the boxed
    (canonical-representative) tuple.  The cheap direction — an array
    read per element.
    @raise Invalid_argument on an id never returned by {!id}. *)

val get : int -> Value.t
(** Unsynchronized {!of_id} for single-domain inner loops (the id-native
    evaluator).  Reverse-table slots are written once, before their id
    is published, so a reader that obtained the id through any
    synchronized operation always sees the entry; only the bounds check
    is unsynchronized.  Use {!of_id} from worker domains.
    @raise Invalid_argument on an id never returned by {!id}. *)

val int_id : int -> int
(** [id (Value.Int n)], memoized in a direct-indexed table for small
    non-negative [n] — freshly computed hop counts and path costs skip
    the hash-cons probe. *)

val key_ids : Value.t list -> int list
(** [List.map id], under one lock acquisition. *)

val values_of_ids : int list -> Value.t list
(** [List.map of_id], under one lock acquisition.
    @raise Invalid_argument on an id never returned by {!id}. *)

val size : unit -> int
(** Number of distinct values interned so far (diagnostics). *)
