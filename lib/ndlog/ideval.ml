(* Id-native evaluation: the rule-application core of {!Eval} ported to
   flat tuples ({!Flat}) and slot-compiled environments.

   Environments are [int array]s of interned value ids indexed by a
   per-rule variable slot table (-1 = unbound); argument patterns are
   compiled expressions whose constants carry precomputed ids; matching
   and join probes compare machine ints; relations are the
   open-addressing hash sets of {!Flat}.  Boxing happens only at true
   system boundaries: builtin calls and arithmetic unbox operands and
   re-intern results, ordering comparisons unbox (ids are
   allocation-ordered, never a value order), and observable output
   materializes boxed tuples.

   This is a *faithful twin*, not a reimplementation: literal orders
   come from the very same planning functions ({!Eval.order_body},
   {!Eval.group_vars}, {!Eval.split_shared}, ...), the index-versus-scan
   decision is the same test on the same positions, and every counter
   ({!Eval.counters}) is bumped at the same point of the same loop —
   so a run here is indistinguishable from the boxed evaluator's in
   fixpoint, derivation counts, and join statistics (checked by
   property against the boxed oracle, which stays the default under
   FVN_TUPLE_IDS=0). *)

module Sset = Set.Make (String)

(* The id-native path defaults on; FVN_TUPLE_IDS=0 (or false/no/off)
   restores the boxed oracle throughout {!Dist.Runtime}. *)
let enabled =
  ref
    (match Sys.getenv_opt "FVN_TUPLE_IDS" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

module Fset = Flat.Fset

(* ------------------------------------------------------------------ *)
(* Compiled expressions and environments. *)

(* A variable carries its slot and its source name — the name only
   feeds {!Env.Unbound_variable}, keeping error behaviour identical to
   the boxed evaluator's. *)
type iexpr =
  | XVar of int * string
  | XConst of int  (* precomputed id of the constant *)
  | XCall of string * iexpr array
  | XBinop of Ast.binop * iexpr * iexpr

type step =
  | SPos of { pred : string; pat : iexpr array }
  | SNeg of { pred : string; args : iexpr array }
  | SAssign of int * iexpr
  | SCond of Ast.cmp * iexpr * iexpr

(* Per-compilation-unit slot table. *)
type ctx = { tbl : (string, int) Hashtbl.t; mutable n : int }

let mkctx () = { tbl = Hashtbl.create 8; n = 0 }

let slot ctx x =
  match Hashtbl.find_opt ctx.tbl x with
  | Some s -> s
  | None ->
    let s = ctx.n in
    ctx.n <- s + 1;
    Hashtbl.add ctx.tbl x s;
    s

let rec compile_expr ctx (e : Ast.expr) : iexpr =
  match e with
  | Ast.Var x -> XVar (slot ctx x, x)
  | Ast.Const v -> XConst (Intern.id v)
  | Ast.Call (f, args) ->
    XCall (f, Array.of_list (List.map (compile_expr ctx) args))
  | Ast.Binop (op, a, b) ->
    XBinop (op, compile_expr ctx a, compile_expr ctx b)

let compile_args ctx (args : Ast.expr list) : iexpr array =
  Array.of_list (List.map (compile_expr ctx) args)

let compile_lit ctx (l : Ast.lit) : step =
  match l with
  | Ast.Pos a -> SPos { pred = a.Ast.pred; pat = compile_args ctx a.Ast.args }
  | Ast.Neg a -> SNeg { pred = a.Ast.pred; args = compile_args ctx a.Ast.args }
  | Ast.Assign (x, e) ->
    let e = compile_expr ctx e in  (* rhs slots before the target's *)
    SAssign (slot ctx x, e)
  | Ast.Cond (c, a, b) -> SCond (c, compile_expr ctx a, compile_expr ctx b)

let compile_body ctx (lits : Ast.lit list) : step array =
  Array.of_list (List.map (compile_lit ctx) lits)

let compile_head ctx (h : Ast.head) : iexpr array =
  Array.of_list
    (List.map
       (function
         | Ast.Plain e -> compile_expr ctx e
         | Ast.Agg _ ->
           raise (Eval.Eval_error "aggregate head in plain context"))
       h.Ast.head_args)

(* Arithmetic unboxes its operands (an array read each) and re-interns
   the result through the small-int memo — the boundary {!Intern}
   crossing the tentpole confines to computed values. *)
let arith_id op a b =
  let x = Value.as_int (Intern.get a) and y = Value.as_int (Intern.get b) in
  match op with
  | Ast.Add -> Intern.int_id (x + y)
  | Ast.Sub -> Intern.int_id (x - y)
  | Ast.Mul -> Intern.int_id (x * y)
  | Ast.Div ->
    if y = 0 then raise (Value.Type_error ("non-zero divisor", Intern.get b))
    else Intern.int_id (x / y)
  | Ast.Mod ->
    if y = 0 then raise (Value.Type_error ("non-zero divisor", Intern.get b))
    else Intern.int_id (x mod y)

let rec eval_x (env : int array) (e : iexpr) : int =
  match e with
  | XVar (s, name) ->
    let v = Array.unsafe_get env s in
    if v < 0 then raise (Env.Unbound_variable name) else v
  | XConst id -> id
  | XCall (f, args) ->
    let n = Array.length args in
    let vs = ref [] in
    for i = n - 1 downto 0 do
      vs := Intern.get (eval_x env args.(i)) :: !vs
    done;
    Intern.id (Builtins.apply f !vs)
  | XBinop (op, a, b) -> arith_id op (eval_x env a) (eval_x env b)

let eval_ids env (args : iexpr array) : int array =
  let n = Array.length args in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <- eval_x env args.(i)
  done;
  out

(* Id twin of {!Env.eval_cmp}: equality is id equality; orderings unbox
   (ids are allocation-ordered) and use the engine's {!Value.compare}. *)
let eval_cmp_ids (c : Ast.cmp) a b =
  match c with
  | Ast.Eq -> a = b
  | Ast.Ne -> a <> b
  | _ ->
    let k = Value.compare (Intern.get a) (Intern.get b) in
    (match c with
    | Ast.Lt -> k < 0
    | Ast.Le -> k <= 0
    | Ast.Gt -> k > 0
    | Ast.Ge -> k >= 0
    | Ast.Eq | Ast.Ne -> assert false)

(* Match a compiled pattern against a flat tuple, binding into [env]
   in place (the caller restores on failure).  Mirrors
   {!Env.match_args}: arity first, then left to right — a bare unbound
   variable binds, anything else must evaluate to the same id, and an
   unbound variable inside a complex pattern is a mismatch, not an
   error. *)
let match_pat (env : int array) (pat : iexpr array) (t : int array) : bool =
  let n = Array.length pat in
  n = Array.length t
  &&
  let rec go i =
    i >= n
    ||
    match pat.(i) with
    | XVar (s, _) ->
      let cur = Array.unsafe_get env s in
      if cur < 0 then begin
        env.(s) <- t.(i);
        go (i + 1)
      end
      else cur = t.(i) && go (i + 1)
    | XConst id -> id = t.(i) && go (i + 1)
    | e -> (
      match eval_x env e with
      | id -> id = t.(i) && go (i + 1)
      | exception Env.Unbound_variable _ -> false)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Candidate selection — the id twin of {!Eval.candidates}. *)

(* The argument positions ground under [env]: constants and bound bare
   variables, in ascending position order (identical to
   [Eval.ground_positions], so the index-versus-scan decision — and the
   column set probed — coincides with the boxed path's). *)
let bound_cols (env : int array) (pat : iexpr array) : (int * int) list =
  let acc = ref [] in
  for i = Array.length pat - 1 downto 0 do
    match pat.(i) with
    | XConst id -> acc := (i, id) :: !acc
    | XVar (s, _) -> if env.(s) >= 0 then acc := (i, env.(s)) :: !acc
    | _ -> ()
  done;
  !acc

(* An iterator over the candidate tuples for matching [pat] against
   [pred] under [env], bumping the same counter the boxed
   [candidates_c] would. *)
let candidates (st : Eval.counters) fdb (env : int array) pred
    (pat : iexpr array) : (int array -> unit) -> unit =
  match if !Eval.use_indexes then bound_cols env pat else [] with
  | [] ->
    st.Eval.c_scans <- st.Eval.c_scans + 1;
    fun f -> Fset.iter f (Flat.relation fdb pred)
  | bound ->
    st.Eval.c_index_hits <- st.Eval.c_index_hits + 1;
    let cols = List.map fst bound in
    let key = Array.of_list (List.map snd bound) in
    let bucket = Flat.lookup fdb pred ~cols ~key in
    fun f -> List.iter f bucket

(* ------------------------------------------------------------------ *)
(* Body evaluation. *)

(* Enumerate the satisfying environments of compiled [steps] starting
   from [env0], prepending frozen copies to [acc] — the twin of
   [Eval.body_envs_from].  [delta] replaces the relation read by the
   step at the given index (semi-naive).  The environment flows through
   per-step scratch buffers: a candidate match blits the incoming
   bindings and binds in place, so only *satisfying* environments pay an
   allocation. *)
let body_envs_from (st : Eval.counters) fdb ~nslots ?delta (env0 : int array)
    (steps : step array) (acc : int array list) : int array list =
  let nsteps = Array.length steps in
  let scratch = Array.init (max nsteps 1) (fun _ -> Array.make nslots (-1)) in
  let acc = ref acc in
  let rec go (env : int array) si =
    if si >= nsteps then acc := Array.copy env :: !acc
    else
      match steps.(si) with
      | SPos { pred; pat } ->
        let iterate =
          match delta with
          | Some (j, d) when j = si ->
            st.Eval.c_scans <- st.Eval.c_scans + 1;
            fun f -> Fset.iter f d
          | _ -> candidates st fdb env pred pat
        in
        let buf = scratch.(si) in
        iterate (fun t ->
            st.Eval.c_enumerated <- st.Eval.c_enumerated + 1;
            Array.blit env 0 buf 0 nslots;
            if match_pat buf pat t then begin
              st.Eval.c_matched <- st.Eval.c_matched + 1;
              go buf (si + 1)
            end)
      | SNeg { pred; args } ->
        let t = eval_ids env args in
        if Flat.mem fdb pred t then () else go env (si + 1)
      | SAssign (s, rhs) ->
        let v = eval_x env rhs in
        let cur = env.(s) in
        if cur < 0 then begin
          let buf = scratch.(si) in
          Array.blit env 0 buf 0 nslots;
          buf.(s) <- v;
          go buf (si + 1)
        end
        else if cur = v then go env (si + 1)
      | SCond (c, a, b) ->
        if eval_cmp_ids c (eval_x env a) (eval_x env b) then go env (si + 1)
  in
  go env0 0;
  !acc

(* Consistent union of two frozen environments — the twin of
   {!Env.merge} (recombining a per-tuple delta binding with its group's
   shared environment). *)
let merge_env (a : int array) (b : int array) : int array option =
  let n = Array.length b in
  let out = Array.copy b in
  let rec go s =
    s >= n
    ||
    let va = a.(s) in
    (if va >= 0 then
       let vb = out.(s) in
       if vb < 0 then begin
         out.(s) <- va;
         true
       end
       else vb = va
     else true)
    && go (s + 1)
  in
  if go 0 then Some out else None

(* ------------------------------------------------------------------ *)
(* Batched delta joins — the twin of [Eval.batched_delta_envs]. *)

(* One compiled (rule, delta position) activation: the batched
   decomposition and the per-tuple fallback, each a self-contained
   compilation unit (own slot table, own compiled head). *)
type bunit = {
  b_cols : int list;  (* delta group columns *)
  b_col_slots : int list;  (* their slots, positionally *)
  b_dpat : iexpr array;  (* delta-atom pattern *)
  b_shared : step array;
  b_per_tuple : step array;
  b_nslots : int;
  b_head : iexpr array;
}

type punit = {
  p_steps : step array;  (* delta literal first, then the ordered rest *)
  p_nslots : int;
  p_head : iexpr array;
}

type activation = { act_batched : bunit; act_pertuple : punit }

let compile_activation ~card (rule : Ast.rule) (delta_atom : Ast.atom)
    (rest : Ast.lit list) : activation =
  let gvars = Eval.group_vars delta_atom rest in
  let cols_vars = Eval.group_cols delta_atom gvars in
  let ordered =
    Eval.order_body ~card ~bound:(Eval.atom_binds delta_atom) rest
  in
  let shared, per_tuple = Eval.split_shared gvars ordered in
  let bctx = mkctx () in
  let b_dpat = compile_args bctx delta_atom.Ast.args in
  let b_col_slots = List.map (fun (_, x) -> slot bctx x) cols_vars in
  let b_shared = compile_body bctx shared in
  let b_per_tuple = compile_body bctx per_tuple in
  let b_head = compile_head bctx rule.Ast.head in
  let pctx = mkctx () in
  let p_steps =
    compile_body pctx (Ast.Pos delta_atom :: ordered)
  in
  let p_head = compile_head pctx rule.Ast.head in
  {
    act_batched =
      {
        b_cols = List.map fst cols_vars;
        b_col_slots;
        b_dpat;
        b_shared;
        b_per_tuple;
        b_nslots = bctx.n;
        b_head;
      };
    act_pertuple = { p_steps; p_nslots = pctx.n; p_head };
  }

(* All satisfying environments of the batched activation against [fdb]
   with the delta read from [dset], paired with the compiled head that
   instantiates them.  Counter bumps mirror [Eval.batched_delta_envs]
   exactly: one group probe per activation, delta tuples by cardinality,
   one group per distinct key, enumerated/matched per delta tuple, and
   the shared/per-tuple phases accounted through [body_envs_from]. *)
let batched_envs (st : Eval.counters) fdb (b : bunit) (dset : Fset.t) :
    int array list =
  st.Eval.c_group_probes <- st.Eval.c_group_probes + 1;
  st.Eval.c_delta_tuples <- st.Eval.c_delta_tuples + Fset.cardinal dset;
  let nslots = b.b_nslots in
  let scratch = Array.make nslots (-1) in
  List.fold_left
    (fun acc (key, tuples) ->
      st.Eval.c_groups <- st.Eval.c_groups + 1;
      let tuple_envs =
        List.fold_left
          (fun acc t ->
            st.Eval.c_enumerated <- st.Eval.c_enumerated + 1;
            Array.fill scratch 0 nslots (-1);
            if match_pat scratch b.b_dpat t then begin
              st.Eval.c_matched <- st.Eval.c_matched + 1;
              Array.copy scratch :: acc
            end
            else acc)
          [] tuples
      in
      match tuple_envs with
      | [] -> acc
      | _ ->
        let env_g = Array.make nslots (-1) in
        List.iteri
          (fun i s -> env_g.(s) <- key.(i))
          b.b_col_slots;
        let shared_envs =
          body_envs_from st fdb ~nslots env_g b.b_shared []
        in
        List.fold_left
          (fun acc env_s ->
            List.fold_left
              (fun acc env_t ->
                match merge_env env_t env_s with
                | None -> acc
                | Some env ->
                  body_envs_from st fdb ~nslots env b.b_per_tuple acc)
              acc tuple_envs)
          acc shared_envs)
    []
    (Flat.group_set dset ~cols:b.b_cols)

(* The twin of {!Eval.delta_envs}: batched or per-tuple according to
   {!Eval.use_batching}, returning (environments, compiled head). *)
let delta_envs (st : Eval.counters) fdb (act : activation) (dset : Fset.t) :
    int array list * iexpr array =
  if !Eval.use_batching then
    (batched_envs st fdb act.act_batched dset, act.act_batched.b_head)
  else begin
    st.Eval.c_delta_tuples <- st.Eval.c_delta_tuples + Fset.cardinal dset;
    let p = act.act_pertuple in
    let env0 = Array.make p.p_nslots (-1) in
    ( body_envs_from st fdb ~nslots:p.p_nslots ~delta:(0, dset) env0 p.p_steps
        [],
      p.p_head )
  end

(* ------------------------------------------------------------------ *)
(* Strand execution — the wire path's twin of {!Plan.execute_batch}. *)

type istrand = {
  is_rule : Ast.rule;
  is_delta_pred : string;
  is_delta_atom : Ast.atom;
  is_rest : Ast.lit list;
  (* Compiled under a use_reordering snapshot; recompiled lazily when
     the switch changes (the boxed path re-plans every call, so the
     plans — and hence the counters — stay aligned either way). *)
  mutable is_cache : (bool * activation) option;
}

let head_pred (s : istrand) = s.is_rule.Ast.head.Ast.head_pred
let head_loc (s : istrand) = s.is_rule.Ast.head.Ast.head_loc
let delta_pred (s : istrand) = s.is_delta_pred

let of_strand (s : Plan.strand) : istrand =
  match s.Plan.delta_index with
  | None -> invalid_arg "Ideval.of_strand: strand has no delta position"
  | Some i ->
    let delta_atom =
      match List.nth s.Plan.strand_rule.Ast.body i with
      | Ast.Pos a -> a
      | _ -> invalid_arg "Ideval.of_strand: delta position is not positive"
    in
    let rest =
      List.filteri (fun j _ -> j <> i) s.Plan.strand_rule.Ast.body
    in
    {
      is_rule = s.Plan.strand_rule;
      is_delta_pred = delta_atom.Ast.pred;
      is_delta_atom = delta_atom;
      is_rest = rest;
      is_cache = None;
    }

let activation_of (s : istrand) : activation =
  match s.is_cache with
  | Some (flag, act) when flag = !Eval.use_reordering -> act
  | _ ->
    (* The strand executor plans without cardinalities
       ([Plan.execute_batch] defaults [card] to the zero function), so
       the compiled plan is call-independent and cacheable. *)
    let act =
      compile_activation ~card:(fun _ -> 0) s.is_rule s.is_delta_atom
        s.is_rest
    in
    s.is_cache <- Some (!Eval.use_reordering, act);
    act

(* Head id tuples of one strand run over a whole delta batch — the
   twin of {!Plan.execute_batch} (same counters, same multiset of
   heads; order differs and is canonicalized by the caller). *)
let execute_batch ?(stats = Eval.counters ()) fdb
    ~(delta_tuples : int array list) (s : istrand) : int array list =
  match delta_tuples with
  | [] -> []
  | _ ->
    let dset = Fset.create ~capacity:(List.length delta_tuples * 2) () in
    List.iter (fun t -> ignore (Fset.add dset t)) delta_tuples;
    let envs, head = delta_envs stats fdb (activation_of s) dset in
    List.rev_map (fun env -> eval_ids env head) envs

(* ------------------------------------------------------------------ *)
(* Aggregates — twins of [Eval.apply_agg_rule]'s two paths. *)

let agg_fold_ids (a : Ast.agg) (ids : int list) : int =
  match a, ids with
  | _, [] -> raise (Eval.Eval_error "aggregate over empty group")
  | Ast.Min, v :: rest ->
    List.fold_left
      (fun m v ->
        if Value.compare (Intern.get v) (Intern.get m) < 0 then v else m)
      v rest
  | Ast.Max, v :: rest ->
    List.fold_left
      (fun m v ->
        if Value.compare (Intern.get v) (Intern.get m) > 0 then v else m)
      v rest
  | Ast.Count, vs -> Intern.int_id (List.length vs)
  | Ast.Sum, vs ->
    Intern.int_id
      (List.fold_left (fun acc v -> acc + Value.as_int (Intern.get v)) 0 vs)

module Ktbl = Hashtbl.Make (struct
  type t = int array

  let equal = Fset.tuple_eq
  let hash = Fset.tuple_hash
end)

let apply_agg_rule_indexed (st : Eval.counters) fdb (a : Ast.atom)
    (slots : Eval.agg_slot list) : int array list =
  let arity = List.length a.Ast.args in
  let cols =
    List.sort_uniq Stdlib.compare
      (List.filter_map
         (function Eval.Group i -> Some i | Eval.Fold _ -> None)
         slots)
  in
  let col_slot = List.mapi (fun k c -> (c, k)) cols in
  st.Eval.c_index_hits <- st.Eval.c_index_hits + 1;
  List.fold_left
    (fun acc (key, tuples) ->
      let rows =
        List.fold_left
          (fun acc (t : int array) ->
            st.Eval.c_enumerated <- st.Eval.c_enumerated + 1;
            if Array.length t = arity then begin
              st.Eval.c_matched <- st.Eval.c_matched + 1;
              t :: acc
            end
            else acc)
          [] tuples
      in
      match rows with
      | [] -> acc
      | _ ->
        let head =
          Array.of_list
            (List.map
               (function
                 | Eval.Group i -> key.(List.assoc i col_slot)
                 | Eval.Fold (agg, i) ->
                   agg_fold_ids agg (List.map (fun t -> t.(i)) rows))
               slots)
        in
        head :: acc)
    []
    (Flat.groups fdb a.Ast.pred ~cols)

let apply_agg_rule (st : Eval.counters) fdb (r : Ast.rule) : int array list =
  match if !Eval.use_indexes then Eval.agg_index_shape r else None with
  | Some (a, slots) -> apply_agg_rule_indexed st fdb a slots
  | None ->
    let ctx = mkctx () in
    let steps =
      compile_body ctx
        (Eval.order_body ~card:(fun p -> Flat.cardinal fdb p) r.Ast.body)
    in
    (* Head compilation for aggregate rules: plain arguments compile as
       expressions, aggregate positions record their source slot. *)
    let hslots =
      List.map
        (function
          | Ast.Plain e -> `Plain (compile_expr ctx e)
          | Ast.Agg (agg, x) -> `Agg (agg, slot ctx x, x))
        r.Ast.head.Ast.head_args
    in
    let nslots = ctx.n in
    let envs =
      body_envs_from st fdb ~nslots (Array.make nslots (-1)) steps []
    in
    let tbl : int list list ref Ktbl.t = Ktbl.create 16 in
    let order = ref [] in
    List.iter
      (fun env ->
        (* Group key: plain head values by id, -1 marking aggregate
           positions (ids are non-negative, so the sentinel is safe). *)
        let key =
          Array.of_list
            (List.map
               (function
                 | `Plain e -> eval_x env e
                 | `Agg _ -> -1)
               hslots)
        in
        let aggvals =
          List.filter_map
            (function
              | `Plain _ -> None
              | `Agg (_, s, x) ->
                let v = env.(s) in
                if v < 0 then raise (Env.Unbound_variable x) else Some v)
            hslots
        in
        match Ktbl.find_opt tbl key with
        | Some rows -> rows := aggvals :: !rows
        | None ->
          Ktbl.replace tbl key (ref [ aggvals ]);
          order := key :: !order)
      envs;
    List.rev_map
      (fun key ->
        let rows = !(Ktbl.find tbl key) in
        let n_aggs = List.length (List.hd rows) in
        let columns =
          List.init n_aggs (fun i -> List.map (fun row -> List.nth row i) rows)
        in
        let head = Array.copy key in
        let rec fill i hs cols =
          match hs with
          | [] -> ()
          | `Plain _ :: hs' -> fill (i + 1) hs' cols
          | `Agg (agg, _, _) :: hs' -> (
            match cols with
            | col :: cols' ->
              head.(i) <- agg_fold_ids agg col;
              fill (i + 1) hs' cols'
            | [] -> raise (Eval.Eval_error "aggregate column mismatch"))
        in
        fill 0 hslots columns;
        head)
      !order

(* ------------------------------------------------------------------ *)
(* Fixpoint drivers — twins of [Eval.apply_plain_rules] /
   [eval_stratum_seminaive] / [seminaive], mutating a linearly-owned
   flat database. *)

(* Derived head tuples of applying [rules], optionally delta-restricted.
   Plans per application against live cardinalities, exactly like the
   boxed core. *)
let apply_plain_rules (st : Eval.counters) fdb ?deltas ~rec_preds rules
    ~count : Flat.t =
  let card p = Flat.cardinal fdb p in
  let derived = Flat.create () in
  List.iter
    (fun (r : Ast.rule) ->
      let produce head envs =
        List.iter
          (fun env ->
            incr count;
            ignore (Flat.add derived r.Ast.head.Ast.head_pred (eval_ids env head)))
          envs
      in
      match deltas with
      | None ->
        let ctx = mkctx () in
        let steps = compile_body ctx (Eval.order_body ~card r.Ast.body) in
        let head = compile_head ctx r.Ast.head in
        let nslots = ctx.n in
        produce head
          (body_envs_from st fdb ~nslots (Array.make nslots (-1)) steps [])
      | Some delta_fdb ->
        let positions = Eval.delta_positions rec_preds r.Ast.body in
        List.iter
          (fun i ->
            let delta_atom =
              match List.nth r.Ast.body i with
              | Ast.Pos a -> a
              | _ -> assert false
            in
            let d = Flat.relation delta_fdb delta_atom.Ast.pred in
            if Fset.is_empty d then ()
            else begin
              let rest = List.filteri (fun j _ -> j <> i) r.Ast.body in
              let act = compile_activation ~card r delta_atom rest in
              let envs, head = delta_envs st fdb act d in
              produce head envs
            end)
          positions)
    rules;
  derived

(* New tuples of [derived] absent from [fdb]. *)
let fresh_of fdb derived : Flat.t =
  let out = Flat.create () in
  Flat.iter derived (fun pred t ->
      if not (Flat.mem fdb pred t) then ignore (Flat.add out pred t));
  out

let apply_agg_rules (st : Eval.counters) fdb agg_rules ~count =
  List.iter
    (fun (r : Ast.rule) ->
      List.iter
        (fun t ->
          incr count;
          ignore (Flat.add fdb r.Ast.head.Ast.head_pred t))
        (apply_agg_rule st fdb r))
    agg_rules

let eval_stratum (st : Eval.counters) fdb stratum (p : Ast.program)
    ~max_rounds ~rounds ~count : bool =
  let rules = Eval.rules_of_stratum p stratum in
  let agg_rules, plain_rules = Eval.split_agg rules in
  apply_agg_rules st fdb agg_rules ~count;
  let rec_preds =
    List.fold_left
      (fun s (r : Ast.rule) -> Sset.add r.Ast.head.Ast.head_pred s)
      Sset.empty plain_rules
  in
  let derived = apply_plain_rules st fdb ~rec_preds plain_rules ~count in
  let delta = fresh_of fdb derived in
  Flat.union_into fdb delta;
  incr rounds;
  let rec loop delta =
    if Flat.is_empty delta then true
    else if !rounds >= max_rounds then false
    else begin
      incr rounds;
      let derived =
        apply_plain_rules st fdb ~deltas:delta ~rec_preds plain_rules ~count
      in
      let delta' = fresh_of fdb derived in
      Flat.union_into fdb delta';
      loop delta'
    end
  in
  loop delta

let seminaive_stratum ?(max_rounds = 10_000) ?stats (p : Ast.program)
    (stratum : string list) (fdb : Flat.t) : bool =
  let st = Eval.counters () in
  let rounds = ref 0 and count = ref 0 in
  let converged = eval_stratum st fdb stratum p ~max_rounds ~rounds ~count in
  Option.iter (fun c -> Eval.accumulate c (Eval.snapshot st)) stats;
  converged

type outcome = {
  rounds : int;
  derivations : int;
  converged : bool;
  stats : Eval.stats;
}

let seminaive ?(max_rounds = 10_000) ?stats (p : Ast.program)
    (info : Analysis.info) (fdb : Flat.t) : outcome =
  let st = Eval.counters () in
  let rounds = ref 0 and count = ref 0 in
  let converged =
    List.fold_left
      (fun ok stratum ->
        if not ok then ok
        else eval_stratum st fdb stratum p ~max_rounds ~rounds ~count)
      true info.Analysis.strata
  in
  let s = Eval.snapshot st in
  Option.iter (fun c -> Eval.accumulate c s) stats;
  { rounds = !rounds; derivations = !count; converged; stats = s }

(* Seeded delta-driven re-derivation of one refresh stratum — the twin
   of {!Plan.refresh_stratum}, mutating the working database. *)
let refresh_stratum ?(stats = Eval.counters ()) (fdb : Flat.t)
    ~(strands : istrand list) ~(delta : Flat.t) : unit =
  let rec loop (delta : Flat.t) =
    if Flat.is_empty delta then ()
    else begin
      let derived = Flat.create () in
      List.iter
        (fun s ->
          match Fset.elements (Flat.relation delta s.is_delta_pred) with
          | [] -> ()
          | tuples ->
            List.iter
              (fun t ->
                ignore (Flat.add derived s.is_rule.Ast.head.Ast.head_pred t))
              (execute_batch ~stats fdb ~delta_tuples:tuples s))
        strands;
      let fresh = fresh_of fdb derived in
      Flat.union_into fdb fresh;
      loop fresh
    end
  in
  loop delta

(* Convenience for differential tests: run a whole program id-natively
   from its facts, returning the materialized boxed fixpoint alongside
   the run accounting. *)
let run_program ?max_rounds (p : Ast.program) :
    (Store.t * outcome, Analysis.error) result =
  match Analysis.analyze p with
  | Error e -> Error e
  | Ok info ->
    let fdb = Flat.of_store (Store.of_facts p.Ast.facts) in
    let o = seminaive ?max_rounds p info fdb in
    Ok (Flat.to_store fdb, o)
