(* Ground-tuple storage: a database mapping predicate names to sets of
   tuples.  Tuples are arrays of values compared lexicographically, so a
   store is a deterministic, canonical representation of a database
   state (used directly as model-checker state).

   Each relation additionally carries a *secondary-index cache*: maps
   from a column set to (key -> tuple set), built lazily the first time
   a join asks for that column set ({!lookup}) and maintained
   incrementally across [add]/[remove]/[union].  The cache is pure
   memoization — it never influences [equal]/[compare]/[hash], so the
   model checker's state canonicity is untouched; mutating the cache of
   a shared persistent value is benign (both sharers want the same
   index). *)

module Tuple = struct
  type t = Value.t array

  let compare (a : t) (b : t) =
    if a == b then 0
    else
      let la = Array.length a and lb = Array.length b in
      let c = Stdlib.compare la lb in
      if c <> 0 then c
      else
        let rec go i =
          if i >= la then 0
          else
            let c = Value.compare a.(i) b.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0

  let equal a b = a == b || compare a b = 0

  let pp ppf (t : t) =
    Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") Value.pp) t

  let hash (t : t) =
    Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module Tset = Set.Make (Tuple)
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Secondary indexes. *)

(* Index keys: the tuple's values at the indexed columns, in column
   order.  Compared with Value.compare so key equality coincides with
   tuple-value equality (never Stdlib.compare, which would be a
   separate notion of equality from the engine's). *)
module Vkey = struct
  type t = Value.t list

  let rec compare a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a', y :: b' ->
      let c = Value.compare x y in
      if c <> 0 then c else compare a' b'
end

module Vmap = Map.Make (Vkey)

(* Column sets are strictly increasing position lists; Stdlib.compare
   is a correct total order on [int list]. *)
module Cmap = Map.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

(* Flat index keys: the interned ids of the boxed key, in column order.
   Ids coincide with value equality (Intern.id is injective up to
   Value.equal), so a flat index groups tuples exactly like a boxed one
   — only the key order differs (allocation order, not Value order),
   which [groups] corrects by re-sorting. *)
module Imap = Map.Make (struct
  type t = int list

  let compare = Stdlib.compare
end)

(* A relation's secondary index under one column set.  [Boxed] keys by
   the values themselves; [Flat] keys by their interned ids.  Which
   representation a new index gets is decided by [Intern.enabled] at
   build time; all operations dispatch on the representation actually
   present, so indexes built under one setting stay correct if the
   switch is flipped mid-run.

   A flat index stores groups in id order — allocation order, not Value
   order — so producing the canonical group enumeration means mapping
   ids back to boxed keys and re-sorting.  [flat_sorted] memoizes that
   conversion (index updates allocate a fresh cell, so a stale memo is
   unreachable); like the index cache itself it is pure memoization and
   never observable. *)
type index = Boxed of Tset.t Vmap.t | Flat of flat

and flat = {
  ids : Tset.t Imap.t;
  mutable sorted : (Value.t list * Tset.t) list option;  (* cache only *)
}

type rel = {
  tuples : Tset.t;
  mutable indexes : index Cmap.t;  (* lazily built; cache only *)
}

type t = rel Smap.t

let mkrel tuples = { tuples; indexes = Cmap.empty }

(* The key of [tuple] at [cols], or [None] when the tuple is too short
   to have all indexed columns (such a tuple can never match a pattern
   binding those positions, so it is safely absent from the index). *)
let key_at cols (tuple : Tuple.t) : Value.t list option =
  let n = Array.length tuple in
  let rec go = function
    | [] -> Some []
    | c :: rest ->
      if c >= n then None
      else Option.map (fun k -> tuple.(c) :: k) (go rest)
  in
  go cols

let bucket_add tuple = function
  | None -> Some (Tset.singleton tuple)
  | Some s -> Some (Tset.add tuple s)

let bucket_remove tuple = function
  | None -> None
  | Some s ->
    let s' = Tset.remove tuple s in
    if Tset.is_empty s' then None else Some s'

let index_add cols tuple (idx : index) : index =
  match key_at cols tuple with
  | None -> idx
  | Some key -> (
    match idx with
    | Boxed m -> Boxed (Vmap.update key (bucket_add tuple) m)
    | Flat f ->
      Flat
        {
          ids = Imap.update (Intern.key_ids key) (bucket_add tuple) f.ids;
          sorted = None;
        })

let index_remove cols tuple (idx : index) : index =
  match key_at cols tuple with
  | None -> idx
  | Some key -> (
    match idx with
    | Boxed m -> Boxed (Vmap.update key (bucket_remove tuple) m)
    | Flat f ->
      Flat
        {
          ids = Imap.update (Intern.key_ids key) (bucket_remove tuple) f.ids;
          sorted = None;
        })

(* Does the key of this column set contain a deep (list) value?  Judged
   from one sample tuple: a misjudged heterogeneous column only picks a
   slower representation, never a wrong one. *)
let deep_key cols (tuples : Tset.t) : bool =
  match Tset.min_elt_opt tuples with
  | None -> false
  | Some t -> (
    match key_at cols t with
    | None -> false
    | Some key ->
      List.exists (function Value.List _ -> true | _ -> false) key)

(* Observed access pattern per [(pred, cols)]: point probes versus
   index (re)builds.  A flat index pays a full-spine hash per entry at
   every build — hashing cannot early-exit the way a comparison does —
   and earns it back one machine-int descent at a time on probes, so
   the representation choice follows the measured probe:build ratio:
   only an index whose history shows at least [flat_probe_threshold]
   probes per build goes flat.  Under relation churn (indexes are
   discarded whenever a relation is replaced wholesale) the ratio stays
   near one and the boxed tree wins; the stable-store regimes — a
   centralized fixpoint, model-checker successor generation — probe the
   same index thousands of times and cross the threshold quickly.

   Like the intern tables this is a process-global cache: it never
   participates in store equality, comparison, or hashing.  A mutex
   guards it because the sharded evaluator probes from worker
   domains. *)
let stats_lock = Mutex.create ()

let access_stats : (string * int list, int ref * int ref) Hashtbl.t =
  Hashtbl.create 64

(* Probes-per-build a [(pred, cols)] index must sustain before a fresh
   build goes flat; FVN_FLAT_THRESHOLD overrides for experiments. *)
let flat_probe_threshold =
  ref
    (match Sys.getenv_opt "FVN_FLAT_THRESHOLD" with
    | Some s -> ( try int_of_string s with Failure _ -> 8)
    | None -> 8)

let note_probe pred cols =
  Mutex.lock stats_lock;
  (match Hashtbl.find_opt access_stats (pred, cols) with
  | Some (probes, _) -> incr probes
  | None -> Hashtbl.add access_stats (pred, cols) (ref 1, ref 0));
  Mutex.unlock stats_lock

(* Record one build of the [(pred, cols)] index and report whether its
   probe history justifies the flat representation. *)
let note_build_probe_heavy pred cols =
  Mutex.lock stats_lock;
  let heavy =
    match Hashtbl.find_opt access_stats (pred, cols) with
    | Some (probes, builds) ->
      incr builds;
      !probes >= !flat_probe_threshold * !builds
    | None ->
      Hashtbl.add access_stats (pred, cols) (ref 0, ref 1);
      false
  in
  Mutex.unlock stats_lock;
  heavy

(* Which representation a fresh index gets depends on who asked and on
   the key's shape and history.  Ordered group scans ([groups]) always
   want the value-ordered tree: a flat index can only produce the
   canonical group order by converting and re-sorting every binding.
   Point probes ([lookup]) get the flat id-keyed map only when the key
   contains a deep (list) value — there one hash-cons probe replaces a
   spine comparison per tree level — and the index's probe:build ratio
   clears [flat_probe_threshold].  For scalar keys the boxed tree
   wins outright: hashing a short string costs as much as comparing
   it, so the id translation is pure overhead (measured: a
   flat-everywhere build ran the churn benchmark ~20% slower).  An
   index that serves both access paths keeps whichever representation
   its first use built; every operation dispatches on the variant
   present. *)
let build_index ?(for_groups = false) pred cols (tuples : Tset.t) : index =
  let heavy = note_build_probe_heavy pred cols in
  let empty =
    if !Intern.enabled && (not for_groups) && heavy && deep_key cols tuples
    then Flat { ids = Imap.empty; sorted = None }
    else Boxed Vmap.empty
  in
  Tset.fold (index_add cols) tuples empty

(* ------------------------------------------------------------------ *)
(* The canonical (indexed-cache-free) API. *)

let empty : t = Smap.empty

let relation pred (db : t) : Tset.t =
  match Smap.find_opt pred db with Some r -> r.tuples | None -> Tset.empty

let tuples pred (db : t) : Tuple.t list = Tset.elements (relation pred db)

let mem pred tuple (db : t) = Tset.mem tuple (relation pred db)

(* [add] performs no interning of its own: canonicalization happens at
   the system boundaries (event injection, message receipt, expression
   construction — see {!Intern}), so tuples arriving here already carry
   canonical elements and the hot fixpoint path pays nothing.  An early
   version canonicalized inside [add]; the hash probe per element cost
   more than the sharing saved, since duplicate adds (the bulk of a
   fixpoint's delta traffic) are answered by the membership probe
   alone. *)
let add pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> Some (mkrel (Tset.singleton tuple))
      | Some r ->
        if Tset.mem tuple r.tuples then Some r
        else
          Some
            {
              tuples = Tset.add tuple r.tuples;
              indexes = Cmap.mapi (fun cols -> index_add cols tuple) r.indexes;
            })
    db

let remove pred tuple (db : t) : t =
  Smap.update pred
    (function
      | None -> None
      | Some r ->
        if not (Tset.mem tuple r.tuples) then Some r
        else
          let tuples = Tset.remove tuple r.tuples in
          if Tset.is_empty tuples then None
          else
            Some
              {
                tuples;
                indexes =
                  Cmap.mapi (fun cols -> index_remove cols tuple) r.indexes;
              })
    db

let add_list pred ts db = List.fold_left (fun db t -> add pred t db) db ts

(* Replacing a relation wholesale patches its cached indexes by the
   symmetric difference instead of dropping them: view refresh replaces
   the same (mostly unchanged) relations over and over, and rebuilding
   a warm flat index from scratch on every replacement was measurably
   the refresh loop's biggest hidden cost. *)
let set_relation pred s (db : t) : t =
  if Tset.is_empty s then Smap.remove pred db
  else
    Smap.update pred
      (function
        | None -> Some (mkrel s)
        | Some r ->
          let removed = Tset.diff r.tuples s in
          let added = Tset.diff s r.tuples in
          Some
            {
              tuples = s;
              indexes =
                Cmap.mapi
                  (fun cols idx ->
                    Tset.fold (index_add cols) added
                      (Tset.fold (index_remove cols) removed idx))
                  r.indexes;
            })
      db

let preds (db : t) = List.map fst (Smap.bindings db)

let cardinal pred db = Tset.cardinal (relation pred db)

let total_tuples (db : t) =
  Smap.fold (fun _ r acc -> acc + Tset.cardinal r.tuples) db 0

(* Union of two databases; used to merge deltas.  The left operand is
   the accumulating database in every hot path ([db ∪ delta]), so its
   index caches are kept warm by folding the (typically small) right
   side through them. *)
let union (a : t) (b : t) : t =
  Smap.union
    (fun _ x y ->
      let tuples = Tset.union x.tuples y.tuples in
      let indexes =
        if Cmap.is_empty x.indexes then Cmap.empty
        else
          Cmap.mapi
            (fun cols idx -> Tset.fold (index_add cols) y.tuples idx)
            x.indexes
      in
      Some { tuples; indexes })
    a b

(* Tuples of [b] not already in [a], per predicate. *)
let diff (b : t) (a : t) : t =
  Smap.filter_map
    (fun pred r ->
      let s' = Tset.diff r.tuples (relation pred a) in
      if Tset.is_empty s' then None else Some (mkrel s'))
    b

let is_empty (db : t) = Smap.for_all (fun _ r -> Tset.is_empty r.tuples) db

let nonempty (db : t) = Smap.filter (fun _ r -> not (Tset.is_empty r.tuples)) db

let equal (a : t) (b : t) =
  Smap.equal (fun x y -> Tset.equal x.tuples y.tuples) (nonempty a) (nonempty b)

let compare (a : t) (b : t) =
  Smap.compare
    (fun x y -> Tset.compare x.tuples y.tuples)
    (nonempty a) (nonempty b)

(* Fact loading is a system boundary, so it canonicalizes: program
   facts seed the evaluator with canonical elements, and everything
   derived from them stays canonical by construction. *)
let of_facts (facts : Ast.fact list) : t =
  List.fold_left
    (fun db (f : Ast.fact) ->
      let tuple = Array.of_list f.Ast.fact_args in
      let tuple = if !Intern.enabled then Intern.tuple tuple else tuple in
      add f.Ast.fact_pred tuple db)
    empty facts

let fold_rel pred f (db : t) acc = Tset.fold f (relation pred db) acc

let iter_rel pred f (db : t) = Tset.iter f (relation pred db)

let pp ppf (db : t) =
  Smap.iter
    (fun pred r ->
      Tset.iter (fun t -> Fmt.pf ppf "%s%a@." pred Tuple.pp t) r.tuples)
    db

let to_string db = Fmt.str "%a" pp db

(* Restrict a database to the given predicates (index caches ride
   along: the kept relations are unchanged). *)
let restrict preds (db : t) : t =
  Smap.filter (fun p _ -> List.mem p preds) db

(* All tuples as (pred, tuple) pairs, deterministically ordered. *)
let to_list (db : t) : (string * Tuple.t) list =
  Smap.fold
    (fun pred r acc -> Tset.fold (fun t acc -> (pred, t) :: acc) r.tuples acc)
    db []
  |> List.rev

let hash (db : t) =
  Smap.fold
    (fun pred r acc ->
      Tset.fold
        (fun t acc -> (acc * 31) + Tuple.hash t)
        r.tuples
        ((acc * 31) + Hashtbl.hash pred))
    db 11

(* ------------------------------------------------------------------ *)
(* Indexed lookup. *)

(* Find or build the [(pred, cols)] index of [r].  Benign memoization:
   older copies of a store sharing [r] would build the very same index,
   and a racing domain at worst loses the other's cache entry (the
   tuple sets themselves are immutable), so concurrent lookups from the
   sharded evaluator are safe. *)
let get_index ?for_groups pred (r : rel) (cols : int list) : index =
  match Cmap.find_opt cols r.indexes with
  | Some idx -> idx
  | None ->
    let idx = build_index ?for_groups pred cols r.tuples in
    r.indexes <- Cmap.add cols idx r.indexes;
    idx

let lookup pred ~(cols : int list) ~(key : Value.t list) (db : t) : Tset.t =
  note_probe pred cols;
  match Smap.find_opt pred db with
  | None -> Tset.empty
  | Some r -> (
    let found =
      match get_index pred r cols with
      | Boxed m -> Vmap.find_opt key m
      | Flat f -> Imap.find_opt (Intern.key_ids key) f.ids
    in
    match found with
    | Some s -> s
    | None -> Tset.empty)

(* All groups of a relation under the [(pred, cols)] index, in
   canonical key order: the grouped probe used by index-aware aggregate
   evaluation ({!Eval.apply_agg_rule}).  A fresh index built for this
   call is boxed (value-ordered, so the enumeration is free); a flat
   index built earlier by a point probe stores groups in id order —
   allocation order, not Value order — so its bindings are mapped back
   to boxed keys and re-sorted (memoized), keeping the observable group
   order identical to the boxed path's. *)
let groups pred ~(cols : int list) (db : t) : (Value.t list * Tset.t) list =
  match Smap.find_opt pred db with
  | None -> []
  | Some r -> (
    match get_index ~for_groups:true pred r cols with
    | Boxed m -> Vmap.bindings m
    | Flat f -> (
      match f.sorted with
      | Some l -> l
      | None ->
        let l =
          Imap.bindings f.ids
          |> List.map (fun (ids, s) -> (Intern.values_of_ids ids, s))
          |> List.sort (fun (a, _) (b, _) -> Vkey.compare a b)
        in
        f.sorted <- Some l;
        l))

let index_count (db : t) =
  Smap.fold (fun _ r acc -> acc + Cmap.cardinal r.indexes) db 0

let indexed_cols pred (db : t) : int list list =
  match Smap.find_opt pred db with
  | None -> []
  | Some r -> List.map fst (Cmap.bindings r.indexes)
