(** Rule strands: Click-style dataflow plans (the paper, Section 2.2:
    programs are "compiled into distributed execution plans that are
    based on the Click execution model").

    A strand is a linear pipeline of relational operators through which
    an environment stream flows:

    {v delta(path) -> join(link) -> bind(C) -> filter(...) -> project(path) v}

    Executing a strand against a database (plus the triggering delta
    tuple) yields exactly the head tuples pipelined semi-naive
    evaluation produces ({!Eval.body_envs} with a delta); this is
    differentially tested. *)

(** Pipeline operators. *)
type op =
  | Delta of { pred : string; args : Ast.expr list }
      (** bind the triggering tuple (strand head) *)
  | Join of { pred : string; args : Ast.expr list }
      (** join the stream against a stored relation *)
  | Anti_join of { pred : string; args : Ast.expr list }
      (** negation: keep environments with no matching tuple *)
  | Bind of string * Ast.expr  (** assignment *)
  | Filter of Ast.cmp * Ast.expr * Ast.expr  (** comparison *)
  | Project of Ast.head  (** emit the head tuple *)

type strand = {
  strand_rule : Ast.rule;
  delta_pred : string option;  (** [None] for a full-scan strand *)
  delta_index : int option;  (** body position of the delta literal *)
  ops : op list;
}

exception Plan_error of string

val compile_strand : Ast.rule -> delta:int -> strand
(** One strand of [rule] triggered by the positive body atom at index
    [delta].
    @raise Plan_error on aggregate rules or bad delta positions. *)

val compile_scan : Ast.rule -> strand
(** The full-scan strand (no trigger; evaluates against the whole
    database). *)

val compile_program : ?trigger_preds:string list -> Ast.program -> strand list
(** All delta strands of a program: one per (rule, positive body
    literal), restricted to [trigger_preds] when given.  Aggregate rules
    contribute no strands (they are view-refreshed). *)

val execute :
  ?stats:Eval.counters ->
  Store.t ->
  ?delta_tuple:Store.Tuple.t ->
  strand ->
  Store.Tuple.t list
(** Run a strand; [delta_tuple] is required for delta strands.
    [stats] accumulates the join counters of the run.
    @raise Plan_error when a delta strand runs without a tuple. *)

val execute_batch :
  ?stats:Eval.counters ->
  Store.t ->
  delta_tuples:Store.Tuple.t list ->
  strand ->
  Store.Tuple.t list
(** Run a delta strand over a batch of triggering tuples at once: the
    batch becomes a delta relation flowing through {!Eval.delta_envs},
    so the group-at-a-time join applies.  Same multiset of head tuples
    as executing the strand per tuple.
    @raise Plan_error on full-scan strands. *)

val refresh_stratum :
  ?stats:Eval.counters ->
  Store.t ->
  strands:strand list ->
  delta:Store.t ->
  Store.t
(** Seeded delta-driven re-derivation of one view refresh stratum
    ({!Eval.refresh_strata}): [db] is seeded with the stratum's previous
    fixpoint on top of the current support, [delta] holds the support
    tuples added since.  Strands whose trigger predicate has delta
    tuples run through {!execute_batch}; new head tuples join the
    database and become the next round's delta, to fixpoint.  Sound
    exactly for plain monotone strata under purely additive support
    change — the incremental refresh loop falls back to from-scratch
    recomputation otherwise. *)

val pp_op : op Fmt.t
val pp : strand Fmt.t
