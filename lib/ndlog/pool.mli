(** A small fixed-size domain pool for data-parallel fixpoint batches.

    Hand-rolled (no external dependency): the sharded evaluator
    ({!Eval.seminaive_sharded}) needs exactly one primitive — run the
    same function over the indexes of a batch, with the calling domain
    participating, and wait for all of them.  Work is handed out through
    a shared cursor under the pool lock; tasks are expected to be coarse
    (whole per-shard fixpoints), so synchronization cost is negligible.

    With [~domains:1] no domain is spawned and batches degenerate to a
    plain sequential loop — the deterministic single-domain baseline. *)

type t

val create : domains:int -> t
(** A pool of [max 1 domains] total executors: the caller plus
    [domains - 1] spawned worker domains. *)

val size : t -> int
(** Total executors (caller included). *)

val run_batch : t -> n:int -> (int -> unit) -> unit
(** [run_batch t ~n f] runs [f 0 .. f (n-1)], distributed over the
    pool, and returns when all have finished.  If some [f i] raises,
    remaining unclaimed indexes are skipped and the first exception is
    re-raised in the caller after the batch quiesces.  Not reentrant:
    one batch at a time. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] over the pool (order preserved). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  The pool must be idle. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** Bracket: create, run, always shut down. *)
