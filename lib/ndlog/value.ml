(* Runtime values carried in NDlog tuples.

   NDlog is dynamically typed at the tuple level: a relation's columns may
   hold integers, strings, booleans, node addresses, or lists (used for
   path vectors).  Comparison is total so values can live in sets and be
   sorted deterministically. *)

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of string
  | List of t list

(* Physical equality short-circuits: interned (hash-consed) values are
   physically shared, so comparisons between resident store values hit
   this fast path without looking at the structure. *)
let rec compare a b =
  if a == b then 0
  else
    match a, b with
    | Int x, Int y -> Stdlib.compare x y
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Str x, Str y -> String.compare x y
    | Str _, _ -> -1
    | _, Str _ -> 1
    | Bool x, Bool y -> Stdlib.compare x y
    | Bool _, _ -> -1
    | _, Bool _ -> 1
    | Addr x, Addr y -> String.compare x y
    | Addr _, _ -> -1
    | _, Addr _ -> 1
    | List x, List y -> compare_list x y

and compare_list xs ys =
  if xs == ys then 0
  else
    match xs, ys with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs' ys'

let equal a b = a == b || compare a b = 0

let rec pp ppf = function
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Addr a -> Fmt.pf ppf "@@%s" a
  | List vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") pp) vs

let to_string v = Fmt.str "%a" pp v

let int n = Int n
let str s = Str s
let bool b = Bool b
let addr a = Addr a
let list vs = List vs

(* Coercions raise [Type_error] with the offending value and the sort the
   caller expected; evaluation surfaces these as builtin errors. *)
exception Type_error of string * t

let as_int = function Int n -> n | v -> raise (Type_error ("int", v))
let as_str = function Str s -> s | v -> raise (Type_error ("string", v))
let as_bool = function Bool b -> b | v -> raise (Type_error ("bool", v))

let as_addr = function
  | Addr a -> a
  | Str s -> s
  | v -> raise (Type_error ("address", v))

let as_list = function List vs -> vs | v -> raise (Type_error ("list", v))

let sort_name = function
  | Int _ -> "int"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Addr _ -> "address"
  | List _ -> "list"

(* A stable hash used by stores and the model checker. *)
let rec hash = function
  | Int n -> Hashtbl.hash (0, n)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)
  | Addr a -> Hashtbl.hash (3, a)
  | List vs -> List.fold_left (fun acc v -> (acc * 31) + hash v) 7 vs
