(* Flat (id-native) tuple storage: the hash-relation representation
   behind the id-native evaluator ({!Ideval}).

   A flat tuple is an [int array] of interned value ids ({!Intern}); a
   relation is an open-addressing hash set of such tuples ({!Fset});
   a database ({!t}) maps predicate names to relations, each carrying
   id-keyed secondary indexes that are patched in place on every
   [add]/[remove] instead of being rebuilt — the rebuild-in-place the
   adaptive boxed indexes could not afford under churn.

   Everything here is *mutable* and therefore usable only where
   ownership is linear: the distributed runtime's per-node stores and
   the working databases of a view refresh.  The persistent boxed
   {!Store} remains the model checker's state representation — flat
   databases convert to it at observation boundaries ([to_store]),
   producing canonical tuples, so store identity (equal/compare/hash)
   is untouched by the representation underneath.

   Ids are allocation-ordered, not value-ordered, so nothing here
   enumerates in a canonical order; callers that need one (message
   emission, group probes feeding observable output) materialize boxed
   tuples and sort with {!Store.Tuple.compare}. *)

(* ------------------------------------------------------------------ *)
(* Open-addressing hash sets of id tuples. *)

module Fset = struct
  (* Slot sentinels: statically allocated blocks compared physically.
     They must not be [ [||] ] — every empty array literal is the same
     runtime atom, so a genuine zero-arity tuple would alias it.  Real
     tuples hold non-negative ids, so [min_int] can never collide. *)
  let empty_slot : int array = [| min_int |]
  let tombstone : int array = [| min_int + 1 |]

  type t = {
    mutable slots : int array array;
    mutable size : int;  (* live tuples *)
    mutable tombs : int;  (* deleted slots awaiting rehash *)
  }

  let tuple_eq (a : int array) (b : int array) =
    a == b
    ||
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  (* Multiplicative mix of a fold over the ids; the final shuffle
     spreads consecutive ids (allocation order is dense) across the
     table. *)
  let tuple_hash (t : int array) =
    let h = ref 17 in
    for i = 0 to Array.length t - 1 do
      h := (!h * 31) + t.(i)
    done;
    let h = !h in
    let h = h lxor (h lsr 17) in
    (h * 0x9e3779b1) land max_int

  let rec ceil_pow2 n k = if k >= n then k else ceil_pow2 n (k * 2)

  let create ?(capacity = 16) () =
    { slots = Array.make (ceil_pow2 capacity 8) empty_slot; size = 0; tombs = 0 }

  let cardinal s = s.size
  let is_empty s = s.size = 0

  (* Probe for [t]: the index holding it, or the first insertable slot
     (a tombstone if one was passed, else the empty slot that ended the
     probe).  The load factor below 1/2 guarantees termination. *)
  let probe s (t : int array) : int =
    let mask = Array.length s.slots - 1 in
    let h = tuple_hash t land mask in
    let first_tomb = ref (-1) in
    let rec go i =
      let u = Array.unsafe_get s.slots i in
      if u == empty_slot then if !first_tomb >= 0 then !first_tomb else i
      else if u == tombstone then begin
        if !first_tomb < 0 then first_tomb := i;
        go ((i + 1) land mask)
      end
      else if tuple_eq u t then i
      else go ((i + 1) land mask)
    in
    go h

  let mem s t =
    let u = s.slots.(probe s t) in
    u != empty_slot && u != tombstone

  let resize s =
    let old = s.slots in
    let cap = Array.length old in
    (* Grow only when live entries justify it; a tombstone-heavy table
       rehashes at the same capacity. *)
    let cap' = if s.size * 4 >= cap then cap * 2 else cap in
    s.slots <- Array.make cap' empty_slot;
    s.tombs <- 0;
    let mask = cap' - 1 in
    Array.iter
      (fun u ->
        if u != empty_slot && u != tombstone then begin
          let rec place i =
            if Array.unsafe_get s.slots i == empty_slot then s.slots.(i) <- u
            else place ((i + 1) land mask)
          in
          place (tuple_hash u land mask)
        end)
      old

  (* [true] when the tuple was not already present. *)
  let add s t =
    let i = probe s t in
    let u = s.slots.(i) in
    if u != empty_slot && u != tombstone then false
    else begin
      if u == tombstone then s.tombs <- s.tombs - 1;
      s.slots.(i) <- t;
      s.size <- s.size + 1;
      if (s.size + s.tombs) * 2 >= Array.length s.slots then resize s;
      true
    end

  (* [true] when the tuple was present. *)
  let remove s t =
    let i = probe s t in
    let u = s.slots.(i) in
    if u == empty_slot || u == tombstone then false
    else begin
      s.slots.(i) <- tombstone;
      s.size <- s.size - 1;
      s.tombs <- s.tombs + 1;
      true
    end

  let iter f s =
    Array.iter
      (fun u -> if u != empty_slot && u != tombstone then f u)
      s.slots

  let fold f s acc =
    let acc = ref acc in
    iter (fun u -> acc := f u !acc) s;
    !acc

  let elements s = fold (fun t acc -> t :: acc) s []

  let copy s = { slots = Array.copy s.slots; size = s.size; tombs = s.tombs }

  let equal a b =
    a.size = b.size
    &&
    let ok = ref true in
    (try iter (fun t -> if not (mem b t) then (ok := false; raise Exit)) a
     with Exit -> ());
    !ok
end

(* ------------------------------------------------------------------ *)
(* Id-keyed secondary indexes, patched in place. *)

(* Index keys are the tuple's ids at the indexed columns, packed into a
   fresh [int array]. *)
module Ktbl = Hashtbl.Make (struct
  type t = int array

  let equal = Fset.tuple_eq
  let hash = Fset.tuple_hash
end)

(* Buckets are immutable lists replaced wholesale on update, so a
   shallow [Hashtbl.copy] of an index shares them safely: a patch in
   one copy installs a fresh list and never mutates the shared one. *)
type idx = int array list Ktbl.t

type rel = {
  set : Fset.t;
  mutable indexes : (int list * idx) list;  (* assoc by column list *)
}

type t = {
  rels : (string, rel) Hashtbl.t;
  mutable version : int;  (* bumped on every mutation: cache stamps *)
}

let create () = { rels = Hashtbl.create 16; version = 0 }

let mkrel () = { set = Fset.create (); indexes = [] }

let find_rel db pred = Hashtbl.find_opt db.rels pred

let rel_of db pred =
  match Hashtbl.find_opt db.rels pred with
  | Some r -> r
  | None ->
    let r = mkrel () in
    Hashtbl.replace db.rels pred r;
    r

let version db = db.version
let touch db = db.version <- db.version + 1

(* The key of [t] at [cols], or [None] when the tuple is too short —
   mirroring {!Store.key_at}: such a tuple can never match a pattern
   binding those positions. *)
let key_at (cols : int list) (t : int array) : int array option =
  let n = Array.length t in
  let rec len = function [] -> 0 | _ :: r -> 1 + len r in
  let k = len cols in
  let out = Array.make (max k 1) 0 in
  let rec go i = function
    | [] -> true
    | c :: rest ->
      c < n
      && begin
        out.(i) <- t.(c);
        go (i + 1) rest
      end
  in
  if k = 0 then Some [||] else if go 0 cols then Some out else None

let idx_add (cols, (idx : idx)) t =
  match key_at cols t with
  | None -> ()
  | Some key ->
    let bucket = match Ktbl.find_opt idx key with Some l -> l | None -> [] in
    Ktbl.replace idx key (t :: bucket)

let idx_remove (cols, (idx : idx)) t =
  match key_at cols t with
  | None -> ()
  | Some key -> (
    match Ktbl.find_opt idx key with
    | None -> ()
    | Some bucket -> (
      match List.filter (fun u -> not (Fset.tuple_eq u t)) bucket with
      | [] -> Ktbl.remove idx key
      | bucket' -> Ktbl.replace idx key bucket'))

(* ------------------------------------------------------------------ *)
(* The database API. *)

let relation db pred : Fset.t =
  match find_rel db pred with
  | Some r -> r.set
  | None -> (mkrel ()).set

let mem db pred t =
  match find_rel db pred with Some r -> Fset.mem r.set t | None -> false

(* [true] when newly added; every cached index is patched in place. *)
let add db pred t : bool =
  let r = rel_of db pred in
  if Fset.add r.set t then begin
    List.iter (fun ix -> idx_add ix t) r.indexes;
    touch db;
    true
  end
  else false

let remove db pred t : bool =
  match find_rel db pred with
  | None -> false
  | Some r ->
    if Fset.remove r.set t then begin
      List.iter (fun ix -> idx_remove ix t) r.indexes;
      touch db;
      true
    end
    else false

let cardinal db pred =
  match find_rel db pred with Some r -> Fset.cardinal r.set | None -> 0

let preds db =
  List.sort String.compare
    (Hashtbl.fold
       (fun p r acc -> if Fset.is_empty r.set then acc else p :: acc)
       db.rels [])

let total_tuples db =
  Hashtbl.fold (fun _ r acc -> acc + Fset.cardinal r.set) db.rels 0

let is_empty db =
  Hashtbl.fold (fun _ r acc -> acc && Fset.is_empty r.set) db.rels true

let iter_rel db pred f =
  match find_rel db pred with Some r -> Fset.iter f r.set | None -> ()

let fold_rel db pred f acc =
  match find_rel db pred with Some r -> Fset.fold f r.set acc | None -> acc

let iter db f =
  List.iter (fun pred -> iter_rel db pred (fun t -> f pred t)) (preds db)

(* Find or build the [(pred, cols)] index and answer a point probe.
   Fresh indexes are built by one pass over the relation; thereafter
   [add]/[remove] keep them exact. *)
let lookup db pred ~(cols : int list) ~(key : int array) : int array list =
  match find_rel db pred with
  | None -> []
  | Some r -> (
    let idx =
      match List.assoc_opt cols r.indexes with
      | Some idx -> idx
      | None ->
        let idx = Ktbl.create 64 in
        Fset.iter (fun t -> idx_add (cols, idx) t) r.set;
        r.indexes <- (cols, idx) :: r.indexes;
        idx
    in
    match Ktbl.find_opt idx key with Some bucket -> bucket | None -> [])

(* Transient grouping of a (typically small) relation by [cols]:
   the id-native twin of {!Store.groups}, in no particular order —
   callers needing the canonical order sort boxed keys themselves. *)
let group_set (set : Fset.t) ~(cols : int list) :
    (int array * int array list) list =
  let tbl : int array list Ktbl.t = Ktbl.create 16 in
  let order = ref [] in
  Fset.iter
    (fun t ->
      match key_at cols t with
      | None -> ()
      | Some key -> (
        match Ktbl.find_opt tbl key with
        | Some l -> Ktbl.replace tbl key (t :: l)
        | None ->
          Ktbl.replace tbl key [ t ];
          order := key :: !order))
    set;
  List.rev_map (fun key -> (key, Ktbl.find tbl key)) !order

let groups db pred ~(cols : int list) : (int array * int array list) list =
  match find_rel db pred with
  | None -> []
  | Some r -> group_set r.set ~cols

(* ------------------------------------------------------------------ *)
(* Whole-database operations (working copies for view refresh). *)

(* Deep-copies the tuple sets; indexes are shallow-copied hash tables
   whose immutable buckets are shared (patches replace, never mutate). *)
let copy db =
  let rels = Hashtbl.create (Hashtbl.length db.rels) in
  Hashtbl.iter
    (fun pred r ->
      Hashtbl.replace rels pred
        {
          set = Fset.copy r.set;
          indexes = List.map (fun (cols, idx) -> (cols, Ktbl.copy idx)) r.indexes;
        })
    db.rels;
  { rels; version = db.version }

let restrict db keep =
  let out = create () in
  List.iter
    (fun pred ->
      match find_rel db pred with
      | None -> ()
      | Some r ->
        Hashtbl.replace out.rels pred
          {
            set = Fset.copy r.set;
            indexes =
              List.map (fun (cols, idx) -> (cols, Ktbl.copy idx)) r.indexes;
          })
    keep;
  out

let union_into dst src =
  Hashtbl.iter
    (fun pred r -> Fset.iter (fun t -> ignore (add dst pred t)) r.set)
    src.rels

(* Replace one relation wholesale, patching cached indexes by the
   symmetric difference — the flat counterpart of the boxed
   [set_relation] rebuild-in-place. *)
let set_relation db pred (s : Fset.t) =
  let r = rel_of db pred in
  let removed = Fset.fold (fun t acc -> if Fset.mem s t then acc else t :: acc) r.set [] in
  let added = Fset.fold (fun t acc -> if Fset.mem r.set t then acc else t :: acc) s [] in
  List.iter (fun t -> ignore (remove db pred t)) removed;
  List.iter (fun t -> ignore (add db pred t)) added

let equal a b =
  let covered other p r =
    Fset.is_empty r
    ||
    match find_rel other p with
    | Some r' -> Fset.equal r r'.set
    | None -> false
  in
  Hashtbl.fold (fun p r acc -> acc && covered b p r.set) a.rels true
  && Hashtbl.fold (fun p r acc -> acc && covered a p r.set) b.rels true

(* ------------------------------------------------------------------ *)
(* Conversion at system boundaries. *)

(* Materialize the canonical boxed store: id -> value is the cheap
   translation direction (an array read per element).  The result's
   tuples carry canonical representatives, so [Store.equal/compare/
   hash] of materializations coincide with those of any structurally
   equal boxed store. *)
let to_store db : Store.t =
  Hashtbl.fold
    (fun pred r acc ->
      Fset.fold
        (fun t acc -> Store.add pred (Intern.tuple_of_ids t) acc)
        r.set acc)
    db.rels Store.empty

(* The expensive direction — one hash-cons probe per element — used
   only at true boundaries (loading an initial store, differential
   tests). *)
let of_store (s : Store.t) : t =
  let db = create () in
  List.iter
    (fun pred ->
      Store.iter_rel pred
        (fun t -> ignore (add db pred (Intern.tuple_ids t)))
        s)
    (Store.preds s);
  db
