(* Flat (id-native) tuple storage: the hash-relation representation
   behind the id-native evaluator ({!Ideval}).

   A flat tuple is an [int array] of interned value ids ({!Intern}); a
   relation is an open-addressing hash set of such tuples ({!Fset});
   a database ({!t}) maps predicate names to relations, each carrying
   id-keyed secondary indexes that are patched in place on every
   [add]/[remove] instead of being rebuilt — the rebuild-in-place the
   adaptive boxed indexes could not afford under churn.

   Everything here is *mutable* and therefore usable only where
   ownership is linear: the distributed runtime's per-node stores and
   the working databases of a view refresh.  The persistent boxed
   {!Store} remains the model checker's state representation — flat
   databases convert to it at observation boundaries ([to_store]),
   producing canonical tuples, so store identity (equal/compare/hash)
   is untouched by the representation underneath.

   Ids are allocation-ordered, not value-ordered, so nothing here
   enumerates in a canonical order; callers that need one (message
   emission, group probes feeding observable output) materialize boxed
   tuples and sort with {!Store.Tuple.compare}. *)

(* ------------------------------------------------------------------ *)
(* Open-addressing hash sets of id tuples. *)

module Fset = struct
  (* Slot sentinels: statically allocated blocks compared physically.
     They must not be [ [||] ] — every empty array literal is the same
     runtime atom, so a genuine zero-arity tuple would alias it.  Real
     tuples hold non-negative ids, so [min_int] can never collide. *)
  let empty_slot : int array = [| min_int |]
  let tombstone : int array = [| min_int + 1 |]

  (* A journal entry: [true] = the tuple was added, [false] = removed.
     Entries are kept newest-first; a mark is a journal length, so
     rollback pops and inverts entries until the length matches —
     O(changes) — and releasing the last mark drops the whole journal
     in O(1). *)
  type entry = bool * int array

  type t = {
    mutable slots : int array array;
    mutable size : int;  (* live tuples *)
    mutable tombs : int;  (* deleted slots awaiting rehash *)
    mutable frozen : bool;  (* mutation is a programming error *)
    mutable jnl : entry list;  (* newest-first; live iff jmarks > 0 *)
    mutable jlen : int;
    mutable jmarks : int;  (* outstanding marks *)
  }

  let tuple_eq (a : int array) (b : int array) =
    a == b
    ||
    let n = Array.length a in
    n = Array.length b
    &&
    let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  (* Multiplicative mix of a fold over the ids; the final shuffle
     spreads consecutive ids (allocation order is dense) across the
     table. *)
  let tuple_hash (t : int array) =
    let h = ref 17 in
    for i = 0 to Array.length t - 1 do
      h := (!h * 31) + t.(i)
    done;
    let h = !h in
    let h = h lxor (h lsr 17) in
    (h * 0x9e3779b1) land max_int

  let rec ceil_pow2 n k = if k >= n then k else ceil_pow2 n (k * 2)

  let create ?(capacity = 16) () =
    {
      slots = Array.make (ceil_pow2 capacity 8) empty_slot;
      size = 0;
      tombs = 0;
      frozen = false;
      jnl = [];
      jlen = 0;
      jmarks = 0;
    }

  let cardinal s = s.size
  let is_empty s = s.size = 0
  let capacity s = Array.length s.slots
  let freeze s = s.frozen <- true

  (* Probe for [t]: the index holding it, or the first insertable slot
     (a tombstone if one was passed, else the empty slot that ended the
     probe).  The load factor below 1/2 guarantees termination. *)
  let probe s (t : int array) : int =
    let mask = Array.length s.slots - 1 in
    let h = tuple_hash t land mask in
    let first_tomb = ref (-1) in
    let rec go i =
      let u = Array.unsafe_get s.slots i in
      if u == empty_slot then if !first_tomb >= 0 then !first_tomb else i
      else if u == tombstone then begin
        if !first_tomb < 0 then first_tomb := i;
        go ((i + 1) land mask)
      end
      else if tuple_eq u t then i
      else go ((i + 1) land mask)
    in
    go h

  let mem s t =
    let u = s.slots.(probe s t) in
    u != empty_slot && u != tombstone

  let resize s =
    let old = s.slots in
    (* Size the fresh table by live entries alone: growth doubles as
       before, while a tombstone-heavy table (churned down and no
       longer adding) shrinks back toward its live size instead of
       keeping its O(peak) slot array.  Live load stays under 1/2. *)
    let cap' = ceil_pow2 (max 8 (s.size * 4)) 8 in
    s.slots <- Array.make cap' empty_slot;
    s.tombs <- 0;
    let mask = cap' - 1 in
    Array.iter
      (fun u ->
        if u != empty_slot && u != tombstone then begin
          let rec place i =
            if Array.unsafe_get s.slots i == empty_slot then s.slots.(i) <- u
            else place ((i + 1) land mask)
          in
          place (tuple_hash u land mask)
        end)
      old

  let journal s e =
    if s.jmarks > 0 then begin
      s.jnl <- e :: s.jnl;
      s.jlen <- s.jlen + 1
    end

  (* [true] when the tuple was not already present. *)
  let add s t =
    let i = probe s t in
    let u = s.slots.(i) in
    if u != empty_slot && u != tombstone then false
    else begin
      if s.frozen then invalid_arg "Fset.add: frozen set";
      if u == tombstone then s.tombs <- s.tombs - 1;
      s.slots.(i) <- t;
      s.size <- s.size + 1;
      journal s (true, t);
      if (s.size + s.tombs) * 2 >= Array.length s.slots then resize s;
      true
    end

  (* [true] when the tuple was present. *)
  let remove s t =
    let i = probe s t in
    let u = s.slots.(i) in
    if u == empty_slot || u == tombstone then false
    else begin
      if s.frozen then invalid_arg "Fset.remove: frozen set";
      s.slots.(i) <- tombstone;
      s.size <- s.size - 1;
      s.tombs <- s.tombs + 1;
      journal s (false, t);
      (* Compact once tombstones outnumber live entries, so probe
         chains stay short after churn-down even if no add follows. *)
      if s.tombs > s.size then resize s;
      true
    end

  (* Checkpoints.  Marks are positions in the journal and must be
     released (rolled back or committed) LIFO, innermost first. *)
  type mark = int

  let mark s =
    s.jmarks <- s.jmarks + 1;
    s.jlen

  (* O(1): drop the mark; once no marks remain the journal is dead
     weight and is discarded wholesale. *)
  let commit s (_ : mark) =
    s.jmarks <- s.jmarks - 1;
    if s.jmarks = 0 then begin
      s.jnl <- [];
      s.jlen <- 0
    end

  (* O(changes since the mark): pop entries newest-first and invert
     each.  Set semantics make inverse replay exact: every journaled op
     actually changed membership, so the inverse op restores it. *)
  let rollback s (m : mark) =
    let outer = s.jmarks - 1 in
    s.jmarks <- 0 (* the undo ops themselves must not be journaled *);
    while s.jlen > m do
      match s.jnl with
      | (was_add, t) :: rest ->
        s.jnl <- rest;
        s.jlen <- s.jlen - 1;
        if was_add then ignore (remove s t) else ignore (add s t)
      | [] -> assert false
    done;
    s.jmarks <- outer;
    if s.jmarks = 0 then begin
      s.jnl <- [];
      s.jlen <- 0
    end

  let iter f s =
    Array.iter
      (fun u -> if u != empty_slot && u != tombstone then f u)
      s.slots

  let fold f s acc =
    let acc = ref acc in
    iter (fun u -> acc := f u !acc) s;
    !acc

  let elements s = fold (fun t acc -> t :: acc) s []

  (* The copy is an independent set: unfrozen, with no journal — the
     original's outstanding marks do not transfer. *)
  let copy s =
    {
      slots = Array.copy s.slots;
      size = s.size;
      tombs = s.tombs;
      frozen = false;
      jnl = [];
      jlen = 0;
      jmarks = 0;
    }

  let equal a b =
    a.size = b.size
    &&
    let ok = ref true in
    (try iter (fun t -> if not (mem b t) then (ok := false; raise Exit)) a
     with Exit -> ());
    !ok
end

(* ------------------------------------------------------------------ *)
(* Id-keyed secondary indexes, patched in place. *)

(* Index keys are the tuple's ids at the indexed columns, packed into a
   fresh [int array]. *)
module Ktbl = Hashtbl.Make (struct
  type t = int array

  let equal = Fset.tuple_eq
  let hash = Fset.tuple_hash
end)

(* Buckets are immutable lists replaced wholesale on update, so a
   shallow [Hashtbl.copy] of an index shares them safely: a patch in
   one copy installs a fresh list and never mutates the shared one. *)
type idx = int array list Ktbl.t

type rel = {
  set : Fset.t;
  mutable indexes : (int list * idx) list;  (* assoc by column list *)
}

(* A database journal entry: [true] = added, [false] = removed. *)
type jentry = { jpred : string; jtup : int array; jadded : bool }

type t = {
  rels : (string, rel) Hashtbl.t;
  mutable version : int;  (* bumped on every mutation: cache stamps *)
  mutable jnl : jentry list;  (* newest-first; live iff jmarks > 0 *)
  mutable jlen : int;
  mutable jmarks : int;  (* outstanding marks *)
}

let create () =
  { rels = Hashtbl.create 16; version = 0; jnl = []; jlen = 0; jmarks = 0 }

let mkrel () = { set = Fset.create (); indexes = [] }

let find_rel db pred = Hashtbl.find_opt db.rels pred

let rel_of db pred =
  match Hashtbl.find_opt db.rels pred with
  | Some r -> r
  | None ->
    let r = mkrel () in
    Hashtbl.replace db.rels pred r;
    r

let version db = db.version
let touch db = db.version <- db.version + 1

(* The key of [t] at [cols], or [None] when the tuple is too short —
   mirroring {!Store.key_at}: such a tuple can never match a pattern
   binding those positions. *)
let key_at (cols : int list) (t : int array) : int array option =
  let n = Array.length t in
  let rec len = function [] -> 0 | _ :: r -> 1 + len r in
  let k = len cols in
  let out = Array.make (max k 1) 0 in
  let rec go i = function
    | [] -> true
    | c :: rest ->
      c < n
      && begin
        out.(i) <- t.(c);
        go (i + 1) rest
      end
  in
  if k = 0 then Some [||] else if go 0 cols then Some out else None

let idx_add (cols, (idx : idx)) t =
  match key_at cols t with
  | None -> ()
  | Some key ->
    let bucket = match Ktbl.find_opt idx key with Some l -> l | None -> [] in
    Ktbl.replace idx key (t :: bucket)

let idx_remove (cols, (idx : idx)) t =
  match key_at cols t with
  | None -> ()
  | Some key -> (
    match Ktbl.find_opt idx key with
    | None -> ()
    | Some bucket -> (
      match List.filter (fun u -> not (Fset.tuple_eq u t)) bucket with
      | [] -> Ktbl.remove idx key
      | bucket' -> Ktbl.replace idx key bucket'))

(* ------------------------------------------------------------------ *)
(* The database API. *)

(* The one set every missing-predicate read shares.  Frozen, so a
   caller that mutates what it thought was a live relation fails loudly
   instead of updating an orphan the database never sees. *)
let empty_relation : Fset.t =
  let s = Fset.create ~capacity:8 () in
  Fset.freeze s;
  s

let relation db pred : Fset.t =
  match find_rel db pred with Some r -> r.set | None -> empty_relation

let mem db pred t =
  match find_rel db pred with Some r -> Fset.mem r.set t | None -> false

let journal db e =
  if db.jmarks > 0 then begin
    db.jnl <- e :: db.jnl;
    db.jlen <- db.jlen + 1
  end

(* [true] when newly added; every cached index is patched in place. *)
let add db pred t : bool =
  let r = rel_of db pred in
  if Fset.add r.set t then begin
    List.iter (fun ix -> idx_add ix t) r.indexes;
    touch db;
    journal db { jpred = pred; jtup = t; jadded = true };
    true
  end
  else false

let remove db pred t : bool =
  match find_rel db pred with
  | None -> false
  | Some r ->
    if Fset.remove r.set t then begin
      List.iter (fun ix -> idx_remove ix t) r.indexes;
      touch db;
      journal db { jpred = pred; jtup = t; jadded = false };
      true
    end
    else false

let cardinal db pred =
  match find_rel db pred with Some r -> Fset.cardinal r.set | None -> 0

let preds db =
  List.sort String.compare
    (Hashtbl.fold
       (fun p r acc -> if Fset.is_empty r.set then acc else p :: acc)
       db.rels [])

let total_tuples db =
  Hashtbl.fold (fun _ r acc -> acc + Fset.cardinal r.set) db.rels 0

let is_empty db =
  Hashtbl.fold (fun _ r acc -> acc && Fset.is_empty r.set) db.rels true

let iter_rel db pred f =
  match find_rel db pred with Some r -> Fset.iter f r.set | None -> ()

let fold_rel db pred f acc =
  match find_rel db pred with Some r -> Fset.fold f r.set acc | None -> acc

let iter db f =
  List.iter (fun pred -> iter_rel db pred (fun t -> f pred t)) (preds db)

(* Find or build the [(pred, cols)] index and answer a point probe.
   Fresh indexes are built by one pass over the relation; thereafter
   [add]/[remove] keep them exact. *)
let lookup db pred ~(cols : int list) ~(key : int array) : int array list =
  match find_rel db pred with
  | None -> []
  | Some r -> (
    let idx =
      match List.assoc_opt cols r.indexes with
      | Some idx -> idx
      | None ->
        let idx = Ktbl.create 64 in
        Fset.iter (fun t -> idx_add (cols, idx) t) r.set;
        r.indexes <- (cols, idx) :: r.indexes;
        idx
    in
    match Ktbl.find_opt idx key with Some bucket -> bucket | None -> [])

(* Transient grouping of a (typically small) relation by [cols]:
   the id-native twin of {!Store.groups}, in no particular order —
   callers needing the canonical order sort boxed keys themselves. *)
let group_set (set : Fset.t) ~(cols : int list) :
    (int array * int array list) list =
  let tbl : int array list Ktbl.t = Ktbl.create 16 in
  let order = ref [] in
  Fset.iter
    (fun t ->
      match key_at cols t with
      | None -> ()
      | Some key -> (
        match Ktbl.find_opt tbl key with
        | Some l -> Ktbl.replace tbl key (t :: l)
        | None ->
          Ktbl.replace tbl key [ t ];
          order := key :: !order))
    set;
  List.rev_map (fun key -> (key, Ktbl.find tbl key)) !order

let groups db pred ~(cols : int list) : (int array * int array list) list =
  match find_rel db pred with
  | None -> []
  | Some r -> group_set r.set ~cols

(* ------------------------------------------------------------------ *)
(* Whole-database operations (working copies for view refresh). *)

(* Deep-copies the tuple sets; indexes are shallow-copied hash tables
   whose immutable buckets are shared (patches replace, never mutate). *)
let copy db =
  let rels = Hashtbl.create (Hashtbl.length db.rels) in
  Hashtbl.iter
    (fun pred r ->
      Hashtbl.replace rels pred
        {
          set = Fset.copy r.set;
          indexes = List.map (fun (cols, idx) -> (cols, Ktbl.copy idx)) r.indexes;
        })
    db.rels;
  { rels; version = db.version; jnl = []; jlen = 0; jmarks = 0 }

let restrict db keep =
  let out = create () in
  List.iter
    (fun pred ->
      match find_rel db pred with
      | None -> ()
      | Some r ->
        Hashtbl.replace out.rels pred
          {
            set = Fset.copy r.set;
            indexes =
              List.map (fun (cols, idx) -> (cols, Ktbl.copy idx)) r.indexes;
          })
    keep;
  (* A restriction is as fresh as its source, exactly like [copy] —
     version stamps must never move backwards through a narrowing. *)
  out.version <- db.version;
  out

let union_into dst src =
  Hashtbl.iter
    (fun pred r -> Fset.iter (fun t -> ignore (add dst pred t)) r.set)
    src.rels

(* Replace one relation wholesale, patching cached indexes by the
   symmetric difference — the flat counterpart of the boxed
   [set_relation] rebuild-in-place. *)
let set_relation db pred (s : Fset.t) =
  let r = rel_of db pred in
  let removed = Fset.fold (fun t acc -> if Fset.mem s t then acc else t :: acc) r.set [] in
  let added = Fset.fold (fun t acc -> if Fset.mem r.set t then acc else t :: acc) s [] in
  List.iter (fun t -> ignore (remove db pred t)) removed;
  List.iter (fun t -> ignore (add db pred t)) added

(* ------------------------------------------------------------------ *)
(* Checkpoints: the undo journal behind in-place view refresh.

   [mark] opens a checkpoint; every subsequent effective [add]/[remove]
   is journaled.  [rollback] restores the database to the mark in
   O(changes) by inverse replay (indexes are patched back through the
   ordinary mutation path); [commit] drops the mark in O(1), and
   releasing the last outstanding mark discards the journal wholesale.
   Marks must be released LIFO, innermost first. *)

type mark = int

let mark db =
  db.jmarks <- db.jmarks + 1;
  db.jlen

let commit db (_ : mark) =
  db.jmarks <- db.jmarks - 1;
  if db.jmarks = 0 then begin
    db.jnl <- [];
    db.jlen <- 0
  end

let rollback db (m : mark) =
  let outer = db.jmarks - 1 in
  db.jmarks <- 0 (* undo ops must not re-journal *);
  while db.jlen > m do
    match db.jnl with
    | e :: rest ->
      db.jnl <- rest;
      db.jlen <- db.jlen - 1;
      if e.jadded then ignore (remove db e.jpred e.jtup)
      else ignore (add db e.jpred e.jtup)
    | [] -> assert false
  done;
  db.jmarks <- outer;
  if db.jmarks = 0 then begin
    db.jnl <- [];
    db.jlen <- 0
  end

(* The *net* movement since a mark, per touched predicate: a tuple
   whose first journaled op is an add and whose last is an add moved
   in; first-remove/last-remove moved out; anything else (add;remove,
   remove;...;add) cancelled.  O(changes) — this is what replaces
   [Fset.equal] whole-relation diffing in the refresh walk. *)
let net_since db (m : mark) : (string * int array list * int array list) list =
  (* Entries since the mark, oldest first. *)
  let entries =
    let rec take acc n l =
      if n = 0 then acc
      else
        match l with
        | e :: rest -> take (e :: acc) (n - 1) rest
        | [] -> assert false
    in
    take [] (db.jlen - m) db.jnl
  in
  let preds = ref [] in
  let tbl : (string, (bool * bool) ref Ktbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let kt =
        match Hashtbl.find_opt tbl e.jpred with
        | Some kt -> kt
        | None ->
          let kt = Ktbl.create 16 in
          Hashtbl.replace tbl e.jpred kt;
          preds := e.jpred :: !preds;
          kt
      in
      match Ktbl.find_opt kt e.jtup with
      | Some r -> r := (fst !r, e.jadded)
      | None -> Ktbl.replace kt e.jtup (ref (e.jadded, e.jadded)))
    entries;
  List.rev_map
    (fun pred ->
      let kt = Hashtbl.find tbl pred in
      let adds = ref [] and rems = ref [] in
      Ktbl.iter
        (fun t r ->
          match !r with
          | true, true -> adds := t :: !adds
          | false, false -> rems := t :: !rems
          | _ -> ())
        kt;
      (pred, !adds, !rems))
    !preds

(* Empty one relation through the journaled mutation path (indexes
   patched, removals recorded).  The element snapshot is taken up
   front: removal can trigger a compacting rehash mid-iteration. *)
let clear_rel db pred =
  match find_rel db pred with
  | None -> ()
  | Some r ->
    List.iter (fun t -> ignore (remove db pred t)) (Fset.elements r.set)

let equal a b =
  let covered other p r =
    Fset.is_empty r
    ||
    match find_rel other p with
    | Some r' -> Fset.equal r r'.set
    | None -> false
  in
  Hashtbl.fold (fun p r acc -> acc && covered b p r.set) a.rels true
  && Hashtbl.fold (fun p r acc -> acc && covered a p r.set) b.rels true

(* ------------------------------------------------------------------ *)
(* Conversion at system boundaries. *)

(* Materialize the canonical boxed store: id -> value is the cheap
   translation direction (an array read per element).  The result's
   tuples carry canonical representatives, so [Store.equal/compare/
   hash] of materializations coincide with those of any structurally
   equal boxed store. *)
let to_store db : Store.t =
  Hashtbl.fold
    (fun pred r acc ->
      Fset.fold
        (fun t acc -> Store.add pred (Intern.tuple_of_ids t) acc)
        r.set acc)
    db.rels Store.empty

(* The expensive direction — one hash-cons probe per element — used
   only at true boundaries (loading an initial store, differential
   tests). *)
let of_store (s : Store.t) : t =
  let db = create () in
  List.iter
    (fun pred ->
      Store.iter_rel pred
        (fun t -> ignore (add db pred (Intern.tuple_ids t)))
        s)
    (Store.preds s);
  db
