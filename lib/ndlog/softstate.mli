(** Soft state (Section 4.2 of the paper): expiring tuples, and the
    mechanical rewrite that makes timeouts explicit for verification. *)

(** Lease tracking for soft-state tuples, used by the runtimes.
    Re-inserting a tuple refreshes its lease (the classic soft-state
    refresh idiom). *)
module Expiry : sig
  type t

  val create : Ast.decl list -> t
  (** Lifetimes come from [materialize] declarations. *)

  val lifetime_of : t -> string -> Ast.lifetime
  val is_soft : t -> string -> bool

  val insert : t -> now:float -> string -> Store.Tuple.t -> t
  (** Record an insertion at [now]; refreshes the lease when the tuple
      is already tracked.  Hard-state predicates are ignored. *)

  val expired : t -> now:float -> (string * Store.Tuple.t) list * t
  (** Tuples whose lease has lapsed at [now], plus the pruned table. *)

  val next_deadline : t -> float option
  (** The earliest pending lease expiry, if any. *)

  val sweep : t -> now:float -> Store.t -> Store.t * t
  (** Drop expired tuples from a database. *)

  val sweep_report :
    t -> now:float -> Store.t -> Store.t * (string * Store.Tuple.t) list * t
  (** {!sweep}, additionally reporting the tuples actually removed from
      the database — the expiry half of dirty-predicate tracking in the
      incremental view refresh (leases for tuples the database no
      longer holds are pruned silently). *)

  val bindings : t -> ((string * Store.Tuple.t) * float) list
  (** Current leases with their deadlines, in canonical key order —
      introspection for tests (the incremental-refresh differential
      harness compares whole lease tables). *)
end

val clock_pred : string
(** The distinguished clock relation ([clock(T)]) the hard-state rewrite
    reads the current time from. *)

(** What {!to_hard_state} did. *)
type rewrite_report = {
  rewritten : Ast.program;
  soft_preds : string list;
  added_conditions : int;  (** liveness guards introduced *)
  added_columns : int;  (** timestamp columns introduced *)
}

val soft_preds_of : Ast.program -> (string * float) list
(** Soft predicates with their lifetimes. *)

val to_hard_state : Ast.program -> rewrite_report
(** The Section-4.2 translation: every soft predicate gains a trailing
    timestamp column; rules deriving soft predicates read [clock(T)];
    every soft body atom gains a liveness guard [Ts + lifetime > T];
    negated soft atoms go through generated [_live] projection rules.
    Lifetimes are rounded {e up} to an integer in the guards: for the
    rewrite's integer timestamps and clock, [Ts + l > T] iff
    [Ts + ceil l > T], so guard liveness agrees with {!Expiry}'s float
    deadlines at every integer clock value, fractional lifetimes
    included.
    The paper calls the result "heavy-weight and cumbersome" —
    experiment E8 quantifies the inflation. *)

val run_at_clock :
  ?max_rounds:int ->
  Ast.program ->
  now:int ->
  (Eval.outcome, Analysis.error) result
(** Evaluate a rewritten program at a given clock value. *)
