(* Bottom-up evaluation of NDlog programs.

   Three evaluators over the same rule-application core:
   - [naive]: re-derives everything from the full database each round;
   - [seminaive]: classic delta iteration, per stratum;
   - [seminaive_sharded]: partitions the database by the
     location-specifier column ({!Shard}) and runs per-shard semi-naive
     fixpoints in parallel on OCaml domains ({!Pool}), exchanging
     foreign-located head tuples between shards — exactly the tuples
     the distributed runtime would send as messages — until a global
     fixpoint.

   All respect the stratification computed by {!Analysis}: strata are
   evaluated bottom-up; aggregate rules of a stratum run once at stratum
   entry (their body predicates are strictly lower, hence complete);
   remaining rules run to fixpoint.

   Joins are index-aware: a positive body literal whose argument
   positions are already ground under the current environment is
   answered from a {!Store.lookup} secondary index instead of a full
   relation scan; literals with no ground position (and delta literals,
   whose relation is the small delta set itself) fall back to the scan.
   Rule bodies are reordered most-bound-first ([order_body]) so that
   ground positions exist as early as possible.  Aggregate rules whose
   body is a single positive atom over distinct variables are answered
   from a {!Store.groups} grouped index probe instead of enumerating
   environments.  All optimizations are observable through the per-run
   {!stats} and can be switched off ([use_indexes], [use_reordering]) —
   the fixpoint is identical either way, which the test suite checks by
   property.

   Instrumentation is per run: callers pass a {!counters} accumulator
   (or read the [stats] field of the {!outcome}); there is no global
   mutable state, so concurrent evaluations — including the per-shard
   fixpoints, which each own a private accumulator — never interfere.

   Evaluation is guarded by [max_rounds]; a program that fails to reach a
   fixpoint within the bound (e.g. distance-vector count-to-infinity) is
   reported as not converged rather than looping forever. *)

module Sset = Set.Make (String)

exception Eval_error of string

(* ------------------------------------------------------------------ *)
(* Instrumentation and switches. *)

type stats = {
  index_hits : int;  (* joins answered from a secondary index *)
  scans : int;  (* joins answered by a full relation scan *)
  enumerated : int;  (* candidate tuples visited by joins *)
  matched : int;  (* candidates that unified with the pattern *)
  groups : int;  (* delta groups formed by the batched join *)
  group_probes : int;  (* grouped delta probes issued *)
  delta_tuples : int;  (* delta tuples fed through delta joins *)
  strata_skipped : int;  (* view strata skipped by dirty tracking *)
  refresh_fallbacks : int;  (* touched strata recomputed from scratch *)
}

type outcome = {
  db : Store.t;
  rounds : int;  (* total fixpoint rounds across strata *)
  derivations : int;  (* head tuples produced, counting duplicates *)
  converged : bool;
  stats : stats;  (* join counters of this run *)
}

let zero_stats =
  {
    index_hits = 0;
    scans = 0;
    enumerated = 0;
    matched = 0;
    groups = 0;
    group_probes = 0;
    delta_tuples = 0;
    strata_skipped = 0;
    refresh_fallbacks = 0;
  }

let add_stats a b =
  {
    index_hits = a.index_hits + b.index_hits;
    scans = a.scans + b.scans;
    enumerated = a.enumerated + b.enumerated;
    matched = a.matched + b.matched;
    groups = a.groups + b.groups;
    group_probes = a.group_probes + b.group_probes;
    delta_tuples = a.delta_tuples + b.delta_tuples;
    strata_skipped = a.strata_skipped + b.strata_skipped;
    refresh_fallbacks = a.refresh_fallbacks + b.refresh_fallbacks;
  }

(* A mutable accumulator for one evaluation run.  Each run (and each
   shard of a sharded run) owns its own record, so counts never bleed
   between runs or race between domains. *)
type counters = {
  mutable c_index_hits : int;
  mutable c_scans : int;
  mutable c_enumerated : int;
  mutable c_matched : int;
  mutable c_groups : int;
  mutable c_group_probes : int;
  mutable c_delta_tuples : int;
  mutable c_strata_skipped : int;
  mutable c_refresh_fallbacks : int;
}

let counters () =
  {
    c_index_hits = 0;
    c_scans = 0;
    c_enumerated = 0;
    c_matched = 0;
    c_groups = 0;
    c_group_probes = 0;
    c_delta_tuples = 0;
    c_strata_skipped = 0;
    c_refresh_fallbacks = 0;
  }

let snapshot c =
  {
    index_hits = c.c_index_hits;
    scans = c.c_scans;
    enumerated = c.c_enumerated;
    matched = c.c_matched;
    groups = c.c_groups;
    group_probes = c.c_group_probes;
    delta_tuples = c.c_delta_tuples;
    strata_skipped = c.c_strata_skipped;
    refresh_fallbacks = c.c_refresh_fallbacks;
  }

let accumulate c (s : stats) =
  c.c_index_hits <- c.c_index_hits + s.index_hits;
  c.c_scans <- c.c_scans + s.scans;
  c.c_enumerated <- c.c_enumerated + s.enumerated;
  c.c_matched <- c.c_matched + s.matched;
  c.c_groups <- c.c_groups + s.groups;
  c.c_group_probes <- c.c_group_probes + s.group_probes;
  c.c_delta_tuples <- c.c_delta_tuples + s.delta_tuples;
  c.c_strata_skipped <- c.c_strata_skipped + s.strata_skipped;
  c.c_refresh_fallbacks <- c.c_refresh_fallbacks + s.refresh_fallbacks

let note_stratum_skipped c = c.c_strata_skipped <- c.c_strata_skipped + 1
let note_refresh_fallback c = c.c_refresh_fallbacks <- c.c_refresh_fallbacks + 1

let pp_stats ppf s =
  Fmt.pf ppf
    "index_hits=%d scans=%d enumerated=%d matched=%d groups=%d \
     group_probes=%d delta_tuples=%d strata_skipped=%d refresh_fallbacks=%d"
    s.index_hits s.scans s.enumerated s.matched s.groups s.group_probes
    s.delta_tuples s.strata_skipped s.refresh_fallbacks

let use_indexes = ref true
let use_reordering = ref true
let use_batching = ref true

(* Value interning / flat index representation lives in {!Store}; the
   switch is re-exported here so all evaluator knobs sit in one place
   (FVN_INTERNING=0 selects the boxed oracle, see {!Intern.enabled}). *)
let use_interning = Intern.enabled

(* ------------------------------------------------------------------ *)
(* Rule application. *)

(* The argument positions of [args] that are ground under [env], with
   their values.  Only bare variables and constants are considered —
   complex expressions are left to [Env.match_args], which may only
   evaluate them against a concrete candidate tuple (evaluating eagerly
   here could raise where a scan over an empty relation would not). *)
let ground_positions env (args : Ast.expr list) : (int * Value.t) list =
  let rec go i = function
    | [] -> []
    | Ast.Const v :: rest -> (i, v) :: go (i + 1) rest
    | Ast.Var x :: rest -> (
      match Env.find_opt x env with
      | Some v -> (i, v) :: go (i + 1) rest
      | None -> go (i + 1) rest)
    | _ :: rest -> go (i + 1) rest
  in
  go 0 args

(* The candidate tuples for matching [args] against [pred] under [env]:
   an indexed lookup when some argument position is ground, the full
   relation otherwise.  The single source of index-aware candidate
   selection — shared by [body_envs] and the strand executor
   ({!Plan.execute}). *)
let candidates_c st (db : Store.t) env pred (args : Ast.expr list) :
    Store.Tset.t =
  match if !use_indexes then ground_positions env args else [] with
  | [] ->
    st.c_scans <- st.c_scans + 1;
    Store.relation pred db
  | bound ->
    st.c_index_hits <- st.c_index_hits + 1;
    Store.lookup pred ~cols:(List.map fst bound) ~key:(List.map snd bound) db

(* One join step: extend [env] with every tuple of [pred] matching
   [args].  Exposed for the dataflow strands. *)
let join_envs_c st (db : Store.t) env pred (args : Ast.expr list) : Env.t list =
  Store.Tset.fold
    (fun tuple acc ->
      st.c_enumerated <- st.c_enumerated + 1;
      match Env.match_args env args tuple with
      | Some env' ->
        st.c_matched <- st.c_matched + 1;
        env' :: acc
      | None -> acc)
    (candidates_c st db env pred args)
    []

(* Enumerate all satisfying environments for [body] against [db],
   starting from [env0] and prepending to [acc].  [delta] optionally
   replaces the relation read by the body literal at the given index,
   implementing semi-naive evaluation. *)
let body_envs_from st (db : Store.t) ?delta env0 (body : Ast.lit list) acc :
    Env.t list =
  let rec go env idx lits acc =
    match lits with
    | [] -> env :: acc
    | lit :: rest -> (
      match lit with
      | Ast.Pos a ->
        let rel =
          match delta with
          | Some (j, d) when j = idx ->
            st.c_scans <- st.c_scans + 1;
            d
          | _ -> candidates_c st db env a.pred a.args
        in
        Store.Tset.fold
          (fun tuple acc ->
            st.c_enumerated <- st.c_enumerated + 1;
            match Env.match_args env a.args tuple with
            | Some env' ->
              st.c_matched <- st.c_matched + 1;
              go env' (idx + 1) rest acc
            | None -> acc)
          rel acc
      | Ast.Neg a ->
        let tuple =
          Array.of_list (List.map (Env.eval env) a.args)
        in
        if Store.mem a.pred tuple db then acc
        else go env (idx + 1) rest acc
      | Ast.Assign (x, e) -> (
        let v = Env.eval env e in
        match Env.find_opt x env with
        | None -> go (Env.bind x v env) (idx + 1) rest acc
        | Some v' -> if Value.equal v v' then go env (idx + 1) rest acc else acc)
      | Ast.Cond (c, a, b) ->
        if Env.eval_cmp c (Env.eval env a) (Env.eval env b) then
          go env (idx + 1) rest acc
        else acc)
  in
  go env0 0 body acc

let body_envs_c st db ?delta body = body_envs_from st db ?delta Env.empty body []

(* Public wrappers: the optional accumulator defaults to a fresh
   throwaway record (the caller did not ask for counts). *)
let candidates ?(stats = counters ()) db env pred args =
  candidates_c stats db env pred args

let join_envs ?(stats = counters ()) db env pred args =
  join_envs_c stats db env pred args

let body_envs ?(stats = counters ()) db ?delta body =
  body_envs_c stats db ?delta body

(* Instantiate a plain (aggregate-free) head under [env]. *)
let head_tuple env (h : Ast.head) : Store.Tuple.t =
  Array.of_list
    (List.map
       (function
         | Ast.Plain e -> Env.eval env e
         | Ast.Agg _ -> raise (Eval_error "aggregate head in plain context"))
       h.head_args)

(* Positions (body-literal indexes) whose positive atom's predicate is in
   [rec_preds]; used to pick delta positions. *)
let delta_positions rec_preds (body : Ast.lit list) : int list =
  List.mapi (fun i lit -> (i, lit)) body
  |> List.filter_map (fun (i, lit) ->
         match lit with
         | Ast.Pos a when Sset.mem a.Ast.pred rec_preds -> Some i
         | _ -> None)

(* ------------------------------------------------------------------ *)
(* Join planning: greedy most-bound-first literal ordering.

   Reordering preserves the satisfying-environment set: positive atoms
   constrain the same variables whether they bind or filter, and a
   literal is only scheduled once every variable it *needs* (negated
   atoms, comparisons, assignment right-hand sides) is bound.  For any
   safe rule the earliest remaining literal in source order is always
   eligible — everything before it has already run — so the scheduler
   is total. *)

let lit_vars (l : Ast.lit) : Ast.Sset.t =
  Ast.vars_of_lit Ast.Sset.empty l

let needs_of (l : Ast.lit) : Ast.Sset.t =
  match l with
  | Ast.Pos _ -> Ast.Sset.empty  (* joins bind their unbound variables *)
  | Ast.Neg a -> Ast.vars_of_atom Ast.Sset.empty a
  | Ast.Cond (_, e1, e2) ->
    Ast.vars_of_expr (Ast.vars_of_expr Ast.Sset.empty e1) e2
  | Ast.Assign (_, e) -> Ast.vars_of_expr Ast.Sset.empty e

(* How many argument positions of a positive atom are ground once the
   variables in [bound] are: bare bound variables and constants. *)
let boundness bound (a : Ast.atom) : int =
  List.fold_left
    (fun n (e : Ast.expr) ->
      match e with
      | Ast.Const _ -> n + 1
      | Ast.Var x when Ast.Sset.mem x bound -> n + 1
      | _ -> n)
    0 a.Ast.args

(* Reorder [body] for evaluation: cheap filters (assignments,
   comparisons, negations) run as soon as their inputs are bound;
   positive atoms are scheduled most-bound-first, breaking ties by
   smaller relation ([card]) and then source order.  [bound] seeds the
   variable set (e.g. the variables a delta literal binds). *)
let order_body ?(card = fun _ -> 0) ?(bound = Ast.Sset.empty)
    (body : Ast.lit list) : Ast.lit list =
  let rank bound (l : Ast.lit) =
    (* Lower ranks first; eligibility already checked. *)
    match l with
    | Ast.Assign _ -> (0, 0, 0)
    | Ast.Cond _ -> (1, 0, 0)
    | Ast.Neg _ -> (2, 0, 0)
    | Ast.Pos a -> (3, List.length a.Ast.args - boundness bound a, card a.Ast.pred)
  in
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let eligible =
        List.filter
          (fun (_, l) -> Ast.Sset.subset (needs_of l) bound)
          remaining
      in
      let pick =
        match eligible with
        | [] -> List.hd remaining  (* unsafe rule: fall back to source order *)
        | e :: es ->
          (* Source order is preserved by [filter], so ties keep the
             earliest literal. *)
          List.fold_left
            (fun ((_, bl) as best) ((_, l) as cand) ->
              if Stdlib.compare (rank bound l) (rank bound bl) < 0 then cand
              else best)
            e es
      in
      let i, l = pick in
      let remaining = List.filter (fun (j, _) -> j <> i) remaining in
      go (Ast.Sset.union bound (lit_vars l)) remaining (l :: acc)
  in
  if not !use_reordering then body
  else go bound (List.mapi (fun i l -> (i, l)) body) []

(* The variables a positive atom binds when it is evaluated first (its
   bare variable arguments). *)
let atom_binds (a : Ast.atom) : Ast.Sset.t =
  List.fold_left
    (fun s (e : Ast.expr) ->
      match e with Ast.Var x -> Ast.Sset.add x s | _ -> s)
    Ast.Sset.empty a.Ast.args

(* ------------------------------------------------------------------ *)
(* Batched delta joins.

   The per-tuple semi-naive path seeds one environment per delta tuple
   and replays the whole rest of the body — index probes included — per
   activation.  The batched path instead groups the round's delta by
   the columns the rest of the body actually reads ([group_vars]), and
   per group runs the probing part of the body once from the group key
   alone ([split_shared]); each delta tuple then only pays a pattern
   match plus the residual filters.  The satisfying-environment set is
   order-independent for safe rules, so both paths derive exactly the
   same head tuples the same number of times — checked by property.

   Group-variable choice: a shared positive atom's probe is exactly as
   ground as on the per-tuple path, because every delta variable a rest
   positive atom reads is a group variable (bound from the key).
   Literals that would need other delta variables bind nothing
   (negations, comparisons) and defer to the per-tuple phase freely; an
   assignment defers only when that cannot change a later literal's
   view of its target, otherwise the shared phase stops there. *)

(* Variables of the delta atom that the rest of the body's positive
   atoms read.  Binding them per group makes every shared-phase index
   probe exactly as ground as the per-tuple path's. *)
let group_vars (delta_atom : Ast.atom) (rest : Ast.lit list) : Ast.Sset.t =
  let pos_vars =
    List.fold_left
      (fun s l ->
        match l with Ast.Pos a -> Ast.vars_of_atom s a | _ -> s)
      Ast.Sset.empty rest
  in
  Ast.Sset.inter (atom_binds delta_atom) pos_vars

(* The delta-atom argument columns carrying the group variables: the
   first bare occurrence of each, in ascending column order.  These are
   the columns {!Store.groups} groups the delta by; [] (group variables
   exhausted or none) degenerates to a single whole-delta group. *)
let group_cols (delta_atom : Ast.atom) (gvars : Ast.Sset.t) :
    (int * string) list =
  let rec go i seen = function
    | [] -> []
    | Ast.Var x :: rest
      when Ast.Sset.mem x gvars && not (Ast.Sset.mem x seen) ->
      (i, x) :: go (i + 1) (Ast.Sset.add x seen) rest
    | _ :: rest -> go (i + 1) seen rest
  in
  go 0 Ast.Sset.empty delta_atom.Ast.args

(* Split the ordered rest body into a [shared] phase evaluable once per
   group (from the group-key bindings alone) and the [per_tuple]
   remainder.  Positive atoms always run shared (their delta-variable
   reads are group variables by construction).  Negations and
   comparisons whose inputs are not yet bound defer freely: they bind
   nothing, so deferring cannot change any later literal's bindings.
   An unschedulable assignment defers only when its target is already
   bound or read by no later literal; otherwise the shared phase stops
   — everything from there on runs per tuple, where the full delta
   bindings restore the per-tuple path's exact probes. *)
let split_shared gvars (ordered : Ast.lit list) : Ast.lit list * Ast.lit list
    =
  let rec go bound shared deferred = function
    | [] -> (List.rev shared, List.rev deferred)
    | l :: rest ->
      if Ast.Sset.subset (needs_of l) bound then
        go (Ast.Sset.union bound (lit_vars l)) (l :: shared) deferred rest
      else (
        match l with
        | Ast.Neg _ | Ast.Cond _ -> go bound shared (l :: deferred) rest
        | Ast.Assign (x, _)
          when Ast.Sset.mem x bound
               || not
                    (List.exists
                       (fun l' -> Ast.Sset.mem x (needs_of l'))
                       rest) ->
          go bound shared (l :: deferred) rest
        | _ -> (List.rev shared, List.rev_append deferred (l :: rest)))
  in
  go gvars [] [] ordered

(* Apply one (rule, delta position) pair group-at-a-time.  Per group:
   match the delta pattern against each tuple first (a group with no
   matching tuple costs no probes — the per-tuple path would have
   rejected exactly those tuples), evaluate the shared literals once
   from the key bindings, then recombine every tuple binding with every
   shared environment.  {!Env.merge}'s consistency check reproduces the
   per-tuple path's filter semantics for delta variables constrained by
   shared literals (e.g. an assignment to a delta variable). *)
let batched_delta_envs st (db : Store.t) ~card (delta_atom : Ast.atom)
    (rest : Ast.lit list) (delta_db : Store.t) : Env.t list =
  let gvars = group_vars delta_atom rest in
  let cols_vars = group_cols delta_atom gvars in
  let cols = List.map fst cols_vars in
  let ordered = order_body ~card ~bound:(atom_binds delta_atom) rest in
  let shared, per_tuple = split_shared gvars ordered in
  st.c_group_probes <- st.c_group_probes + 1;
  st.c_delta_tuples <-
    st.c_delta_tuples + Store.cardinal delta_atom.Ast.pred delta_db;
  List.fold_left
    (fun acc (key, tuples) ->
      st.c_groups <- st.c_groups + 1;
      let tuple_envs =
        Store.Tset.fold
          (fun t acc ->
            st.c_enumerated <- st.c_enumerated + 1;
            match Env.match_args Env.empty delta_atom.Ast.args t with
            | Some env ->
              st.c_matched <- st.c_matched + 1;
              env :: acc
            | None -> acc)
          tuples []
      in
      match tuple_envs with
      | [] -> acc
      | _ ->
        let env_g =
          List.fold_left2
            (fun env (_, x) v -> Env.bind x v env)
            Env.empty cols_vars key
        in
        let shared_envs = body_envs_from st db env_g shared [] in
        List.fold_left
          (fun acc env_s ->
            List.fold_left
              (fun acc env_t ->
                match Env.merge env_t env_s with
                | None -> acc
                | Some env -> body_envs_from st db env per_tuple acc)
              acc tuple_envs)
          acc shared_envs)
    []
    (Store.groups delta_atom.Ast.pred ~cols delta_db)

(* Public entry for the strand executor: all satisfying environments of
   a rule body against [db] with [delta_atom]'s relation restricted to
   [delta_db], batched or per-tuple according to [use_batching]. *)
let delta_envs ?(stats = counters ()) ?(card = fun _ -> 0) db
    ~delta:((delta_atom : Ast.atom), (delta_db : Store.t)) ~rest : Env.t list
    =
  if !use_batching then
    batched_delta_envs stats db ~card delta_atom rest delta_db
  else begin
    let d = Store.relation delta_atom.Ast.pred delta_db in
    stats.c_delta_tuples <- stats.c_delta_tuples + Store.Tset.cardinal d;
    let body =
      Ast.Pos delta_atom
      :: order_body ~card ~bound:(atom_binds delta_atom) rest
    in
    body_envs_c stats db ~delta:(0, d) body
  end

(* ------------------------------------------------------------------ *)
(* Aggregates. *)

(* Aggregate group keys: plain head-argument values ([None] marks an
   aggregate position).  Compared with Value.compare so grouping uses
   the engine's value equality, never Stdlib.compare's independent
   structural notion. *)
module Kmap = Map.Make (struct
  type t = Value.t option list

  let compare_opt a b =
    match a, b with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Value.compare x y

  let rec compare a b =
    match a, b with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | x :: a', y :: b' ->
      let c = compare_opt x y in
      if c <> 0 then c else compare a' b'
end)

let agg_fold (a : Ast.agg) (vs : Value.t list) : Value.t =
  match a, vs with
  | _, [] -> raise (Eval_error "aggregate over empty group")
  | Ast.Min, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m < 0 then v else m) v rest
  | Ast.Max, v :: rest ->
    List.fold_left (fun m v -> if Value.compare v m > 0 then v else m) v rest
  | Ast.Count, vs -> Value.Int (List.length vs)
  | Ast.Sum, vs ->
    Value.Int (List.fold_left (fun acc v -> acc + Value.as_int v) 0 vs)

(* Head-argument shape for the grouped-index fast path: each head
   argument mapped to the body-atom column it reads. *)
type agg_slot =
  | Group of int  (* plain head argument: value of this body column *)
  | Fold of Ast.agg * int  (* aggregate over this body column *)

(* The fast-path shape of an aggregate rule: a single positive body atom
   whose arguments are distinct bare variables, every head argument a
   bare variable of the atom.  Such a rule groups the relation by the
   plain-argument columns — precisely a {!Store.groups} probe. *)
let agg_index_shape (r : Ast.rule) : (Ast.atom * agg_slot list) option =
  match r.body with
  | [ Ast.Pos a ] ->
    let distinct_bare =
      let rec go seen = function
        | [] -> true
        | Ast.Var x :: rest ->
          (not (Sset.mem x seen)) && go (Sset.add x seen) rest
        | _ -> false
      in
      go Sset.empty a.args
    in
    if not distinct_bare then None
    else
      let pos_of x =
        let rec go i = function
          | [] -> None
          | Ast.Var y :: _ when y = x -> Some i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 a.args
      in
      let slot = function
        | Ast.Plain (Ast.Var x) -> Option.map (fun i -> Group i) (pos_of x)
        | Ast.Agg (agg, x) -> Option.map (fun i -> Fold (agg, i)) (pos_of x)
        | Ast.Plain _ -> None
      in
      let slots = List.map slot r.head.head_args in
      (* [Option.get] is guarded: the [exists is_none] check just
         above guarantees every slot is [Some]. *)
      if List.exists Option.is_none slots then None
      else Some (a, List.map Option.get slots)
  | _ -> None

(* Grouped-index aggregate evaluation: one {!Store.groups} probe over
   the group-by columns replaces the environment enumeration.  Tuples
   of the wrong arity are filtered per group, mirroring the arity check
   [Env.match_args] performs on the slow path; a group left empty by
   the filter is skipped (the slow path would never have formed it). *)
let apply_agg_rule_indexed st db (a : Ast.atom) (slots : agg_slot list) :
    Store.Tuple.t list =
  let arity = List.length a.args in
  let cols =
    List.sort_uniq Stdlib.compare
      (List.filter_map (function Group i -> Some i | Fold _ -> None) slots)
  in
  let col_slot = List.mapi (fun k c -> (c, k)) cols in
  st.c_index_hits <- st.c_index_hits + 1;
  List.fold_left
    (fun acc (key, tuples) ->
      let rows =
        Store.Tset.fold
          (fun t acc ->
            st.c_enumerated <- st.c_enumerated + 1;
            if Array.length t = arity then begin
              st.c_matched <- st.c_matched + 1;
              t :: acc
            end
            else acc)
          tuples []
      in
      match rows with
      | [] -> acc
      | _ ->
        let head =
          Array.of_list
            (List.map
               (function
                 | Group i -> List.nth key (List.assoc i col_slot)
                 | Fold (agg, i) ->
                   agg_fold agg (List.map (fun t -> t.(i)) rows))
               slots)
        in
        head :: acc)
    []
    (Store.groups a.pred ~cols db)

(* Evaluate an aggregate rule: group satisfying environments by the
   plain head arguments, fold the aggregate, emit one tuple per group.
   Single-atom rules take the grouped-index fast path above (same
   output set, one index probe instead of an enumeration). *)
let apply_agg_rule_c st db (r : Ast.rule) : Store.Tuple.t list =
  match if !use_indexes then agg_index_shape r else None with
  | Some (a, slots) -> apply_agg_rule_indexed st db a slots
  | None ->
    let envs =
      body_envs_c st db
        (order_body ~card:(fun p -> Store.cardinal p db) r.body)
    in
    let groups =
      List.fold_left
        (fun groups env ->
          let key =
            List.map
              (function
                | Ast.Plain e -> Some (Env.eval env e)
                | Ast.Agg _ -> None)
              r.head.head_args
          in
          let aggvals =
            List.filter_map
              (function
                | Ast.Plain _ -> None
                | Ast.Agg (_, x) -> Some (Env.find x env))
              r.head.head_args
          in
          Kmap.update key
            (function
              | None -> Some [ aggvals ]
              | Some rows -> Some (aggvals :: rows))
            groups)
        Kmap.empty envs
    in
    Kmap.fold
      (fun key rows acc ->
        (* Recombine: plain positions from the key, aggregate positions
           folded over the collected column. *)
        let n_aggs = List.length (List.hd rows) in
        let columns =
          List.init n_aggs (fun i -> List.map (fun row -> List.nth row i) rows)
        in
        let rec build args key cols =
          match args, key with
          | [], [] -> []
          | Ast.Plain _ :: args', Some v :: key' -> v :: build args' key' cols
          | Ast.Agg (a, _) :: args', None :: key' -> (
            match cols with
            | col :: cols' -> agg_fold a col :: build args' key' cols'
            | [] -> raise (Eval_error "aggregate column mismatch"))
          | _ -> raise (Eval_error "aggregate head shape mismatch")
        in
        Array.of_list (build r.head.head_args key columns) :: acc)
      groups []

let apply_agg_rule ?(stats = counters ()) db r = apply_agg_rule_c stats db r

(* ------------------------------------------------------------------ *)
(* Fixpoint drivers. *)

let rules_of_stratum (p : Ast.program) stratum =
  List.filter (fun (r : Ast.rule) -> List.mem r.head.head_pred stratum) p.rules

let split_agg rules =
  List.partition (fun (r : Ast.rule) -> Ast.has_aggregate r.head) rules

(* Derived tuples of applying [rules] with optional per-position deltas
   restricted to [rec_preds].  Bodies are join-planned per application:
   full applications are ordered from an empty binding, delta
   applications move the delta literal to the front (it is the small
   relation) and order the remaining literals under the variables the
   delta binds. *)
let apply_plain_rules st db ?deltas ~rec_preds rules ~count =
  let card p = Store.cardinal p db in
  List.fold_left
    (fun acc (r : Ast.rule) ->
      let produce acc envs =
        List.fold_left
          (fun acc env ->
            incr count;
            Store.add r.head.head_pred (head_tuple env r.head) acc)
          acc envs
      in
      match deltas with
      | None -> produce acc (body_envs_c st db (order_body ~card r.body))
      | Some delta_db ->
        let positions = delta_positions rec_preds r.body in
        List.fold_left
          (fun acc i ->
            let delta_lit, delta_atom =
              match List.nth r.body i with
              | Ast.Pos a as l -> (l, a)
              | _ -> assert false
            in
            let d = Store.relation delta_atom.Ast.pred delta_db in
            if Store.Tset.is_empty d then acc
            else
              let rest = List.filteri (fun j _ -> j <> i) r.body in
              if !use_batching then
                produce acc
                  (batched_delta_envs st db ~card delta_atom rest delta_db)
              else begin
                st.c_delta_tuples <-
                  st.c_delta_tuples + Store.Tset.cardinal d;
                let body =
                  delta_lit
                  :: order_body ~card ~bound:(atom_binds delta_atom) rest
                in
                produce acc (body_envs_c st db ~delta:(0, d) body)
              end)
          acc positions)
    Store.empty rules

(* Run a stratum's aggregate rules once and merge their heads. *)
let apply_agg_rules st db agg_rules ~count =
  List.fold_left
    (fun db (r : Ast.rule) ->
      List.fold_left
        (fun db t ->
          incr count;
          Store.add r.Ast.head.Ast.head_pred t db)
        db
        (apply_agg_rule_c st db r))
    db agg_rules

(* Evaluate one stratum to fixpoint, semi-naively. *)
let eval_stratum_seminaive st db stratum (p : Ast.program) ~max_rounds ~rounds
    ~count =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  (* Aggregate rules see only lower strata: run them once. *)
  let db = apply_agg_rules st db agg_rules ~count in
  let rec_preds =
    List.fold_left
      (fun s (r : Ast.rule) -> Sset.add r.head.head_pred s)
      Sset.empty plain_rules
  in
  (* Initial round: full evaluation of the stratum's plain rules. *)
  let derived = apply_plain_rules st db ~rec_preds plain_rules ~count in
  let delta = Store.diff derived db in
  let db = Store.union db delta in
  incr rounds;
  let rec loop db delta =
    if Store.is_empty delta then (db, true)
    else if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived =
        apply_plain_rules st db ~deltas:delta ~rec_preds plain_rules ~count
      in
      let delta' = Store.diff derived db in
      loop (Store.union db delta') delta'
    end
  in
  loop db delta

(* Evaluate one stratum to fixpoint, naively (for differential testing
   and the E7 bench). *)
let eval_stratum_naive st db stratum (p : Ast.program) ~max_rounds ~rounds
    ~count =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  let db = apply_agg_rules st db agg_rules ~count in
  let rec loop db =
    if !rounds >= max_rounds then (db, false)
    else begin
      incr rounds;
      let derived =
        apply_plain_rules st db ~rec_preds:Sset.empty plain_rules ~count
      in
      let delta = Store.diff derived db in
      if Store.is_empty delta then (db, true)
      else loop (Store.union db delta)
    end
  in
  loop db

let eval_with stratum_eval ?(max_rounds = 10_000) ?stats (p : Ast.program)
    (info : Analysis.info) (db : Store.t) : outcome =
  let st = counters () in
  let rounds = ref 0 and count = ref 0 in
  let db, converged =
    List.fold_left
      (fun (db, ok) stratum ->
        if not ok then (db, ok)
        else stratum_eval st db stratum p ~max_rounds ~rounds ~count)
      (db, true) info.Analysis.strata
  in
  let s = snapshot st in
  Option.iter (fun c -> accumulate c s) stats;
  { db; rounds = !rounds; derivations = !count; converged; stats = s }

let seminaive ?max_rounds ?stats p info db =
  eval_with eval_stratum_seminaive ?max_rounds ?stats p info db

let naive ?max_rounds ?stats p info db =
  eval_with eval_stratum_naive ?max_rounds ?stats p info db

(* ------------------------------------------------------------------ *)
(* Refresh strata: the dependency analysis behind incremental view
   refresh.

   {!Analysis.strata} is as coarse as stratified semantics allows: a
   plain rule reading an aggregate head lands in the *same* stratum as
   the aggregate (the edge is non-strict).  For incremental maintenance
   that coarseness is costly — a stratum containing any aggregate must
   be recomputed from scratch whenever touched.  Refresh strata refine
   the relaxation with one extra strict edge: a dependency *on* an
   aggregate-defined predicate.  Aggregate heads then sit in strata of
   their own and their plain consumers land strictly above, where they
   can be maintained by seeded delta re-derivation.  The refinement
   respects {!Analysis.strata} (every strict edge there is strict
   here), so bottom-up evaluation per refresh stratum reaches the same
   fixpoint. *)

type refresh_stratum = {
  rs_preds : string list;  (* head predicates of this stratum, sorted *)
  rs_rules : Ast.rule list;  (* their rules, in program order *)
  rs_support : Sset.t;  (* transitive body predicates (incl. negated) *)
  rs_has_agg : bool;
  rs_has_neg : bool;
}

let refresh_strata (p : Ast.program) : refresh_stratum list =
  let heads =
    List.sort_uniq String.compare
      (List.map (fun (r : Ast.rule) -> r.head.head_pred) p.rules)
  in
  let agg_defined =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (r : Ast.rule) ->
           if Ast.has_aggregate r.head then Some r.head.head_pred else None)
         p.rules)
  in
  let rules_of q =
    List.filter (fun (r : Ast.rule) -> r.head.head_pred = q) p.rules
  in
  let neg_preds (r : Ast.rule) =
    List.filter_map
      (function Ast.Neg a -> Some a.Ast.pred | _ -> None)
      r.body
  in
  let has_neg r = neg_preds r <> [] in
  (* Rank heads by relaxation; base predicates rank 0.  An edge
     head <- q is strict when the head is aggregated, q is negated in
     the rule, or q is aggregate-defined. *)
  let rank = Hashtbl.create 16 in
  let rank_of q = Option.value (Hashtbl.find_opt rank q) ~default:0 in
  let n = List.length heads in
  let limit = ((n + 2) * (n + 2)) + 2 in
  let iters = ref 0 in
  let changed = ref true in
  while !changed && !iters <= limit do
    changed := false;
    incr iters;
    List.iter
      (fun (r : Ast.rule) ->
        let h = r.head.head_pred in
        let negs = neg_preds r in
        List.iter
          (fun q ->
            let strict =
              Ast.has_aggregate r.head || List.mem q negs
              || List.mem q agg_defined
            in
            let lo = rank_of q + if strict then 1 else 0 in
            if rank_of h < lo then begin
              Hashtbl.replace rank h lo;
              changed := true
            end)
          (Ast.body_preds r.body))
      p.rules
  done;
  let support_of rules =
    let direct rs =
      List.concat_map (fun (r : Ast.rule) -> Ast.body_preds r.body) rs
    in
    let rec close seen = function
      | [] -> seen
      | q :: rest ->
        if Sset.mem q seen then close seen rest
        else close (Sset.add q seen) (direct (rules_of q) @ rest)
    in
    close Sset.empty (direct rules)
  in
  let group ranked_heads =
    List.map
      (fun (_, preds) ->
        let rules =
          List.filter
            (fun (r : Ast.rule) -> List.mem r.head.head_pred preds)
            p.rules
        in
        {
          rs_preds = preds;
          rs_rules = rules;
          rs_support = support_of rules;
          rs_has_agg =
            List.exists (fun (r : Ast.rule) -> Ast.has_aggregate r.head) rules;
          rs_has_neg = List.exists has_neg rules;
        })
      ranked_heads
  in
  if !changed then
    (* The extra strict edges closed a cycle the ordinary stratification
       tolerates (plain mutual recursion through an aggregate-defined
       predicate).  Collapse to one stratum: always recomputed from
       scratch when touched — correct, just never incremental. *)
    group [ (0, heads) ]
  else
    let module Imap = Map.Make (Int) in
    let by_rank =
      List.fold_left
        (fun m h ->
          Imap.update (rank_of h)
            (function Some l -> Some (h :: l) | None -> Some [ h ])
            m)
        Imap.empty heads
    in
    group
      (Imap.fold
         (fun r preds acc -> (r, List.sort String.compare preds) :: acc)
         by_rank []
      |> List.rev)

(* Evaluate one stratum of [p] to fixpoint on [db] (aggregate rules
   once at entry, plain rules semi-naively): the from-scratch fallback
   of incremental view refresh, also usable on refresh strata since
   they refine the analysis strata. *)
let seminaive_stratum ?(max_rounds = 10_000) ?stats (p : Ast.program)
    (stratum : string list) (db : Store.t) : Store.t * bool =
  let st = counters () in
  let rounds = ref 0 and count = ref 0 in
  let db, converged =
    eval_stratum_seminaive st db stratum p ~max_rounds ~rounds ~count
  in
  Option.iter (fun c -> accumulate c (snapshot st)) stats;
  (db, converged)

(* ------------------------------------------------------------------ *)
(* Sharded evaluation.

   The database is partitioned by the location-specifier column
   ({!Shard.partition}); each shard runs the ordinary semi-naive core
   over its slice (plus the replicated relations), and head tuples
   located at another shard are routed to an outbox instead of being
   stored — exactly the tuples {!Dist.Runtime} would send as messages.
   A sequential exchange step delivers outboxes (receiver-side
   deduplication guarantees termination: a tuple already present is
   dropped), and shards that received anything re-run on the received
   delta, until no shard receives a new tuple.  Per-shard fixpoints of
   one such global round are independent, so they run in parallel on a
   domain pool.

   Determinism: the shard decomposition, exchange order, and per-shard
   accounting are independent of the domain count, so the outcome
   (database, rounds, derivations, convergence, stats) is identical for
   any [~domains] — only wall-clock time changes.  Rounds are counted
   as the sum over global rounds of the *maximum* local round count
   (the parallel depth); derivation and join counters sum over shards
   in shard order.  Both therefore differ numerically from the
   centralized evaluator's schedule-dependent counts, but the fixpoint
   database and convergence flag coincide (checked by property).

   Soundness leans on {!Shard.analyze} (see shard.ml): every rule body
   reads one location's slice plus replicated relations, negated
   located atoms test membership at the body's own location (located
   tuples live only in their owner shard, so the local check equals the
   global one), and aggregate rules over located bodies group by the
   location variable, making groups shard-local.  Aggregate rules over
   purely replicated bodies are evaluated once against the replicated
   store rather than redundantly per shard. *)

type shard_state = {
  skey : Value.t;  (* this shard's location value *)
  sc : counters;  (* private join counters (merged in shard order) *)
  mutable sdb : Store.t;  (* replicated ∪ tuples located here *)
  mutable incoming : Store.t;  (* delta received since the last run *)
  mutable sderiv : int;
  mutable last_rounds : int;  (* local rounds of the last run *)
  mutable last_converged : bool;
  mutable outbox : (Value.t * string * Store.Tuple.t) list;
  mutable obroadcast : Store.t;  (* new unlocated tuples of the last run *)
}

type shard_ctx = {
  plan : Shard.plan;
  mutable shards : shard_state array;  (* deterministic discovery order *)
  stbl : (Value.t, int) Hashtbl.t;  (* shard key -> index in [shards] *)
  mutable repl : Store.t;  (* canonical replicated (unlocated) store *)
}

let mkshard key sdb incoming =
  {
    skey = key;
    sc = counters ();
    sdb;
    incoming;
    sderiv = 0;
    last_rounds = 0;
    last_converged = true;
    outbox = [];
    obroadcast = Store.empty;
  }

(* The shard owning [key], created on first delivery: a fresh shard
   starts from the replicated store alone (no tuple was located there,
   or the shard would already exist). *)
let shard_for ctx key =
  match Hashtbl.find_opt ctx.stbl key with
  | Some i -> ctx.shards.(i)
  | None ->
    let s = mkshard key ctx.repl Store.empty in
    Hashtbl.add ctx.stbl key (Array.length ctx.shards);
    ctx.shards <- Array.append ctx.shards [| s |];
    s

(* Deliver one located tuple to its owner shard; receiver-side dedup.
   [delta] additionally records it as incoming (stage-B exchange; the
   stage-A aggregate deliveries precede a full round and need none). *)
let deliver ctx ~delta key pred tuple =
  let s = shard_for ctx key in
  if not (Store.mem pred tuple s.sdb) then begin
    s.sdb <- Store.add pred tuple s.sdb;
    if delta then s.incoming <- Store.add pred tuple s.incoming
  end

(* Broadcast one unlocated tuple: into the replicated store and every
   live shard (shards created later start from the updated [repl]). *)
let broadcast ctx ~delta pred tuple =
  if not (Store.mem pred tuple ctx.repl) then
    ctx.repl <- Store.add pred tuple ctx.repl;
  Array.iter
    (fun s ->
      if not (Store.mem pred tuple s.sdb) then begin
        s.sdb <- Store.add pred tuple s.sdb;
        if delta then s.incoming <- Store.add pred tuple s.incoming
      end)
    ctx.shards

(* One shard-local semi-naive fixpoint over the stratum's plain rules.
   Foreign-located heads go to the outbox (never into [sdb]); new
   unlocated heads are kept locally and queued for broadcast.  Runs
   inside a pool task: touches only its own shard. *)
let local_fixpoint ctx plain_rules rec_preds ~budget (s : shard_state) ~init =
  let count = ref 0 and lrounds = ref 0 in
  let outbox = ref [] and obroadcast = ref Store.empty in
  let absorb derived =
    let routed = Shard.route ctx.plan ~self:s.skey derived in
    outbox := List.rev_append routed.Shard.foreign !outbox;
    let delta = Store.diff routed.Shard.local s.sdb in
    obroadcast :=
      Store.union !obroadcast (Store.diff routed.Shard.everywhere s.sdb);
    s.sdb <- Store.union s.sdb delta;
    delta
  in
  let step ?deltas () =
    incr lrounds;
    absorb (apply_plain_rules s.sc s.sdb ?deltas ~rec_preds plain_rules ~count)
  in
  let first =
    match init with `Full -> step () | `Delta d -> step ~deltas:d ()
  in
  let rec loop delta =
    if Store.is_empty delta then true
    else if !lrounds >= budget then false
    else loop (step ~deltas:delta ())
  in
  let converged = loop first in
  s.sderiv <- s.sderiv + !count;
  s.last_rounds <- !lrounds;
  s.last_converged <- converged;
  s.outbox <- List.rev !outbox;
  s.obroadcast <- !obroadcast

(* Deliver every outbox and broadcast queue, in shard order (shards
   created mid-exchange are appended and visited too; their queues are
   empty).  Deterministic regardless of which domain ran which shard. *)
let exchange ctx ~delta =
  let i = ref 0 in
  while !i < Array.length ctx.shards do
    let s = ctx.shards.(!i) in
    List.iter (fun (key, pred, t) -> deliver ctx ~delta key pred t) s.outbox;
    s.outbox <- [];
    List.iter
      (fun (pred, t) -> broadcast ctx ~delta pred t)
      (Store.to_list s.obroadcast);
    s.obroadcast <- Store.empty;
    incr i
  done

(* One stratum of the sharded evaluation; [true] when it converged
   within the round budget. *)
let eval_stratum_sharded ctx pool (p : Ast.program) stratum ~max_rounds
    ~rounds ~extra_deriv ~extra_st =
  let rules = rules_of_stratum p stratum in
  let agg_rules, plain_rules = split_agg rules in
  (* Stage A: aggregate rules, once at stratum entry.  Located bodies
     run per shard (groups are shard-local by [Shard.analyze]);
     replicated bodies run once against the replicated store.  Heads
     are routed before the full round below. *)
  let located_body (r : Ast.rule) =
    List.exists
      (fun (a : Ast.atom) -> Shard.loc_index ctx.plan a.pred <> None)
      (Ast.body_atoms r.body)
  in
  let shard_aggs, repl_aggs = List.partition located_body agg_rules in
  let route_out tuples pred =
    List.iter
      (fun t ->
        match Shard.loc_value ctx.plan pred t with
        | Some key -> deliver ctx ~delta:false key pred t
        | None -> broadcast ctx ~delta:false pred t)
      tuples
  in
  List.iter
    (fun (r : Ast.rule) ->
      let ts = apply_agg_rule_c extra_st ctx.repl r in
      extra_deriv := !extra_deriv + List.length ts;
      route_out ts r.head.head_pred)
    repl_aggs;
  if shard_aggs <> [] then begin
    let base = ctx.shards in
    let outs =
      Pool.map_array pool
        (fun s ->
          List.map
            (fun (r : Ast.rule) ->
              let ts = apply_agg_rule_c s.sc s.sdb r in
              s.sderiv <- s.sderiv + List.length ts;
              (r.head.head_pred, ts))
            shard_aggs)
        base
    in
    Array.iter
      (fun per_rule ->
        List.iter (fun (pred, ts) -> route_out ts pred) per_rule)
      outs
  end;
  (* Stage B: plain rules to a global fixpoint.  Round 1 is a full
     application on every shard; afterwards only shards that received
     tuples re-run, on the received delta. *)
  let rec_preds =
    List.fold_left
      (fun s (r : Ast.rule) -> Sset.add r.head.head_pred s)
      Sset.empty plain_rules
  in
  let run_round shards ~init =
    let budget = max 1 (max_rounds - !rounds) in
    Pool.run_batch pool ~n:(Array.length shards) (fun i ->
        let s = shards.(i) in
        let init =
          match init with
          | `Full -> `Full
          | `Incoming ->
            let d = s.incoming in
            s.incoming <- Store.empty;
            `Delta d
        in
        local_fixpoint ctx plain_rules rec_preds ~budget s ~init);
    rounds :=
      !rounds
      + Array.fold_left (fun m s -> max m s.last_rounds) 0 shards;
    Array.for_all (fun s -> s.last_converged) shards
  in
  let ok = run_round ctx.shards ~init:`Full in
  exchange ctx ~delta:true;
  let rec loop ok =
    let pending =
      Array.of_seq
        (Seq.filter
           (fun s -> not (Store.is_empty s.incoming))
           (Array.to_seq ctx.shards))
    in
    if Array.length pending = 0 then ok
    else if not ok || !rounds >= max_rounds then false
    else begin
      let ok = run_round pending ~init:`Incoming in
      exchange ctx ~delta:true;
      loop ok
    end
  in
  loop ok

let seminaive_sharded ?(max_rounds = 10_000) ?stats ~domains (p : Ast.program)
    (info : Analysis.info) (db : Store.t) : outcome =
  match Shard.analyze p with
  | Error _ -> seminaive ~max_rounds ?stats p info db
  | Ok plan ->
    let parts, repl = Shard.partition plan db in
    if Array.length parts <= 1 then
      (* Nothing to distribute over: run centralized. *)
      seminaive ~max_rounds ?stats p info db
    else
      Pool.with_pool ~domains (fun pool ->
          let ctx =
            {
              plan;
              shards =
                Array.map (fun (key, part) ->
                    mkshard key (Store.union repl part) Store.empty)
                  parts;
              stbl = Hashtbl.create 16;
              repl;
            }
          in
          Array.iteri (fun i s -> Hashtbl.add ctx.stbl s.skey i) ctx.shards;
          let rounds = ref 0 in
          let extra_deriv = ref 0 in
          let extra_st = counters () in
          let converged =
            List.fold_left
              (fun ok stratum ->
                if not ok then ok
                else
                  eval_stratum_sharded ctx pool p stratum ~max_rounds ~rounds
                    ~extra_deriv ~extra_st)
              true info.Analysis.strata
          in
          let db =
            Array.fold_left
              (fun acc s -> Store.union acc s.sdb)
              Store.empty ctx.shards
          in
          let s =
            Array.fold_left
              (fun acc sh -> add_stats acc (snapshot sh.sc))
              (snapshot extra_st) ctx.shards
          in
          Option.iter (fun c -> accumulate c s) stats;
          {
            db;
            rounds = !rounds;
            derivations =
              Array.fold_left
                (fun acc sh -> acc + sh.sderiv)
                !extra_deriv ctx.shards;
            converged;
            stats = s;
          })

(* ------------------------------------------------------------------ *)
(* Entry points. *)

(* Analyze and evaluate a self-contained program (facts included). *)
let run ?max_rounds ?(extra_facts = []) (p : Ast.program) :
    (outcome, Analysis.error) result =
  match Analysis.analyze p with
  | Error e -> Error e
  | Ok info ->
    let db = Store.of_facts (p.facts @ extra_facts) in
    Ok (seminaive ?max_rounds p info db)

let run_exn ?max_rounds ?extra_facts p =
  match run ?max_rounds ?extra_facts p with
  | Ok o -> o
  | Error e -> invalid_arg (Fmt.str "NDlog evaluation failed: %a" Analysis.pp_error e)

let run_sharded ?max_rounds ?(domains = Domain.recommended_domain_count ())
    ?(extra_facts = []) (p : Ast.program) : (outcome, Analysis.error) result =
  match Analysis.analyze p with
  | Error e -> Error e
  | Ok info ->
    let db = Store.of_facts (p.facts @ extra_facts) in
    Ok (seminaive_sharded ?max_rounds ~domains p info db)

(* Convenience: parse source text and run it. *)
let run_source ?max_rounds src : (outcome, string) result =
  match Parser.parse_program src with
  | Error e -> Error e
  | Ok p -> (
    match run ?max_rounds p with
    | Ok o -> Ok o
    | Error e -> Error (Fmt.str "%a" Analysis.pp_error e))
