(* Recursive-descent parser for NDlog concrete syntax.

   Grammar sketch (see the paper, Section 2.2, for examples):

     program  ::= { decl | fact | rule }
     decl     ::= "materialize" "(" pred "," lifetime ")" "."
     rule     ::= [label] head ":-" lit { "," lit } "."
     fact     ::= pred "(" ground-arg { "," ground-arg } ")" "."
     head-arg ::= ["@"] expr | agg "<" VAR ">"
     lit      ::= atom | "!" atom | VAR "=" expr | expr cmp expr

   Lowercase identifiers that are not applied to arguments denote address
   constants ([link(@a,b,1)] reads node names [a] and [b] as addresses);
   [true] / [false] are booleans.  Identifiers applied to arguments are
   builtin function calls when registered in {!Builtins} (conventionally
   [f_]-prefixed), and atoms otherwise. *)

exception Parse_error of string * int  (* message, line *)

type t = { lx : Lexer.t }

let error p msg = raise (Parse_error (msg, Lexer.line p.lx))

let expect p tok =
  let got, line = Lexer.next p.lx in
  if got <> tok then
    raise
      (Parse_error
         ( Printf.sprintf "expected %s, got %s" (Lexer.string_of_token tok)
             (Lexer.string_of_token got),
           line ))

let is_agg_name = function
  | "min" | "max" | "count" | "sum" -> true
  | _ -> false

let agg_of_name = function
  | "min" -> Ast.Min
  | "max" -> Ast.Max
  | "count" -> Ast.Count
  | "sum" -> Ast.Sum
  | s -> invalid_arg ("agg_of_name: " ^ s)

(* ------------------------------------------------------------------ *)
(* Expressions. *)

let rec parse_expr p : Ast.expr =
  let lhs = parse_term p in
  parse_expr_rest p lhs

and parse_expr_rest p lhs =
  match Lexer.peek p.lx with
  | Lexer.PLUS ->
    ignore (Lexer.next p.lx);
    let rhs = parse_term p in
    parse_expr_rest p (Ast.Binop (Ast.Add, lhs, rhs))
  | Lexer.MINUS ->
    ignore (Lexer.next p.lx);
    let rhs = parse_term p in
    parse_expr_rest p (Ast.Binop (Ast.Sub, lhs, rhs))
  | _ -> lhs

and parse_term p : Ast.expr =
  let lhs = parse_factor p in
  parse_term_rest p lhs

and parse_term_rest p lhs =
  match Lexer.peek p.lx with
  | Lexer.STAR ->
    ignore (Lexer.next p.lx);
    let rhs = parse_factor p in
    parse_term_rest p (Ast.Binop (Ast.Mul, lhs, rhs))
  | Lexer.SLASH ->
    ignore (Lexer.next p.lx);
    let rhs = parse_factor p in
    parse_term_rest p (Ast.Binop (Ast.Div, lhs, rhs))
  | _ -> lhs

and parse_factor p : Ast.expr =
  match Lexer.next p.lx with
  | Lexer.INT n, _ -> Ast.Const (Value.Int n)
  | Lexer.MINUS, _ -> (
    match Lexer.next p.lx with
    | Lexer.INT n, _ -> Ast.Const (Value.Int (-n))
    | tok, line ->
      raise
        (Parse_error
           ("expected integer after '-', got " ^ Lexer.string_of_token tok, line)))
  | Lexer.STRING s, _ -> Ast.Const (Value.Str s)
  | Lexer.UIDENT x, _ -> Ast.Var x
  | Lexer.IDENT name, _ -> parse_after_ident p name
  | Lexer.LPAREN, _ ->
    let e = parse_expr p in
    expect p Lexer.RPAREN;
    e
  | Lexer.LBRACKET, _ -> parse_list_literal p
  | tok, line ->
    raise
      (Parse_error
         ("expected expression, got " ^ Lexer.string_of_token tok, line))

(* An identifier inside an expression: builtin call, boolean, or address
   constant. *)
and parse_after_ident p name : Ast.expr =
  match Lexer.peek p.lx with
  | Lexer.LPAREN ->
    if not (Builtins.is_builtin name) then
      error p
        (Printf.sprintf
           "unknown function %S (atoms may not appear inside expressions)"
           name)
    else begin
      ignore (Lexer.next p.lx);
      let args = parse_expr_args p in
      Ast.Call (name, args)
    end
  | _ -> (
    match name with
    | "true" -> Ast.Const (Value.Bool true)
    | "false" -> Ast.Const (Value.Bool false)
    | _ -> Ast.Const (Value.Addr name))

and parse_expr_args p : Ast.expr list =
  match Lexer.peek p.lx with
  | Lexer.RPAREN ->
    ignore (Lexer.next p.lx);
    []
  | _ ->
    let rec go acc =
      let e = parse_expr p in
      match Lexer.next p.lx with
      | Lexer.COMMA, _ -> go (e :: acc)
      | Lexer.RPAREN, _ -> List.rev (e :: acc)
      | tok, line ->
        raise
          (Parse_error
             ("expected ',' or ')', got " ^ Lexer.string_of_token tok, line))
    in
    go []

and parse_list_literal p : Ast.expr =
  match Lexer.peek p.lx with
  | Lexer.RBRACKET ->
    ignore (Lexer.next p.lx);
    Ast.Const (Value.List [])
  | _ ->
    let rec go acc =
      let e = parse_expr p in
      match Lexer.next p.lx with
      | Lexer.COMMA, _ -> go (e :: acc)
      | Lexer.RBRACKET, _ -> List.rev (e :: acc)
      | tok, line ->
        raise
          (Parse_error
             ("expected ',' or ']', got " ^ Lexer.string_of_token tok, line))
    in
    let elems = go [] in
    let consts =
      List.map
        (function
          | Ast.Const v -> v
          | _ -> error p "list literals must contain constants")
        elems
    in
    Ast.Const (Value.List consts)

(* ------------------------------------------------------------------ *)
(* Atoms and heads. *)

(* Parses "(" [@]arg, ... ")" returning args and location index. *)
let parse_atom_args p : Ast.expr list * int option =
  expect p Lexer.LPAREN;
  let loc = ref None in
  let rec go i acc =
    (match Lexer.peek p.lx with
    | Lexer.AT ->
      ignore (Lexer.next p.lx);
      if !loc <> None then error p "multiple location specifiers in atom";
      loc := Some i
    | _ -> ());
    let e = parse_expr p in
    match Lexer.next p.lx with
    | Lexer.COMMA, _ -> go (i + 1) (e :: acc)
    | Lexer.RPAREN, _ -> List.rev (e :: acc)
    | tok, line ->
      raise
        (Parse_error
           ("expected ',' or ')', got " ^ Lexer.string_of_token tok, line))
  in
  let args = go 0 [] in
  (args, !loc)

let parse_atom p pred : Ast.atom =
  let args, loc = parse_atom_args p in
  { Ast.pred; loc; args }

(* A head argument may be an aggregate: min<C>. *)
let parse_head p pred : Ast.head =
  expect p Lexer.LPAREN;
  let loc = ref None in
  let rec go i acc =
    (match Lexer.peek p.lx with
    | Lexer.AT ->
      ignore (Lexer.next p.lx);
      if !loc <> None then error p "multiple location specifiers in head";
      loc := Some i
    | _ -> ());
    let arg =
      match Lexer.peek p.lx with
      | Lexer.IDENT name when is_agg_name name ->
        ignore (Lexer.next p.lx);
        expect p Lexer.LT;
        let v =
          match Lexer.next p.lx with
          | Lexer.UIDENT x, _ -> x
          | tok, line ->
            raise
              (Parse_error
                 ( "expected variable in aggregate, got "
                   ^ Lexer.string_of_token tok,
                   line ))
        in
        expect p Lexer.GT;
        Ast.Agg (agg_of_name name, v)
      | _ -> Ast.Plain (parse_expr p)
    in
    match Lexer.next p.lx with
    | Lexer.COMMA, _ -> go (i + 1) (arg :: acc)
    | Lexer.RPAREN, _ -> List.rev (arg :: acc)
    | tok, line ->
      raise
        (Parse_error
           ("expected ',' or ')', got " ^ Lexer.string_of_token tok, line))
  in
  let args = go 0 [] in
  { Ast.head_pred = pred; head_loc = !loc; head_args = args }

(* ------------------------------------------------------------------ *)
(* Body literals. *)

let cmp_of_token = function
  | Lexer.EQEQ -> Some Ast.Eq
  | Lexer.NE -> Some Ast.Ne
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

let parse_literal p : Ast.lit =
  match Lexer.peek p.lx with
  | Lexer.BANG ->
    ignore (Lexer.next p.lx);
    let pred =
      match Lexer.next p.lx with
      | Lexer.IDENT name, _ -> name
      | tok, line ->
        raise
          (Parse_error
             ( "expected predicate after '!', got " ^ Lexer.string_of_token tok,
               line ))
    in
    Ast.Neg (parse_atom p pred)
  | Lexer.IDENT name
    when (not (Builtins.is_builtin name))
         && name <> "true" && name <> "false" -> (
    ignore (Lexer.next p.lx);
    match Lexer.peek p.lx with
    | Lexer.LPAREN -> Ast.Pos (parse_atom p name)
    | _ -> (
      (* Address constant starting a comparison literal. *)
      let e1 = Ast.Const (Value.Addr name) in
      match Lexer.next p.lx with
      | tok, _ when cmp_of_token tok <> None ->
        (* [Option.get] is guarded by the pattern guard on this very
           token one line up. *)
        let c = Option.get (cmp_of_token tok) in
        Ast.Cond (c, e1, parse_expr p)
      | Lexer.EQ, _ -> Ast.Cond (Ast.Eq, e1, parse_expr p)
      | tok, line ->
        raise
          (Parse_error
             ("expected comparison, got " ^ Lexer.string_of_token tok, line))))
  | _ -> (
    let e1 = parse_expr p in
    match Lexer.next p.lx with
    | Lexer.EQ, _ -> (
      let e2 = parse_expr p in
      match e1 with
      | Ast.Var x -> Ast.Assign (x, e2)
      | _ -> Ast.Cond (Ast.Eq, e1, e2))
    | tok, line -> (
      match cmp_of_token tok with
      | Some c -> Ast.Cond (c, e1, parse_expr p)
      | None ->
        raise
          (Parse_error
             ( "expected comparison or assignment, got "
               ^ Lexer.string_of_token tok,
               line ))))

let parse_body p : Ast.lit list =
  let rec go acc =
    let l = parse_literal p in
    match Lexer.next p.lx with
    | Lexer.COMMA, _ -> go (l :: acc)
    | Lexer.PERIOD, _ -> List.rev (l :: acc)
    | tok, line ->
      raise
        (Parse_error
           ("expected ',' or '.', got " ^ Lexer.string_of_token tok, line))
  in
  go []

(* ------------------------------------------------------------------ *)
(* Top-level items. *)

let parse_lifetime p : Ast.lifetime =
  match Lexer.next p.lx with
  | Lexer.IDENT "infinity", _ -> Ast.Lifetime_forever
  | Lexer.INT n, _ -> Ast.Lifetime (float_of_int n)
  | tok, line ->
    raise
      (Parse_error
         ( "expected lifetime (seconds or 'infinity'), got "
           ^ Lexer.string_of_token tok,
           line ))

let parse_decl p : Ast.decl =
  expect p Lexer.LPAREN;
  let pred =
    match Lexer.next p.lx with
    | Lexer.IDENT name, _ -> name
    | tok, line ->
      raise
        (Parse_error
           ("expected predicate name, got " ^ Lexer.string_of_token tok, line))
  in
  expect p Lexer.COMMA;
  let lt = parse_lifetime p in
  expect p Lexer.RPAREN;
  expect p Lexer.PERIOD;
  { Ast.decl_pred = pred; decl_lifetime = lt }

let ground_value p (e : Ast.expr) : Value.t =
  match e with
  | Ast.Const v -> v
  | _ -> error p "facts must have constant arguments"

(* A head atom has been parsed; decide fact vs rule by the next token. *)
let parse_rule_or_fact p ?label pred :
    [ `Rule of Ast.rule | `Fact of Ast.fact ] =
  let head = parse_head p pred in
  match Lexer.next p.lx with
  | Lexer.PERIOD, _ ->
    let args =
      List.map
        (function
          | Ast.Plain e -> ground_value p e
          | Ast.Agg _ -> error p "facts may not contain aggregates")
        head.Ast.head_args
    in
    if label <> None then error p "facts may not carry rule labels";
    `Fact { Ast.fact_pred = pred; fact_loc = head.Ast.head_loc; fact_args = args }
  | Lexer.COLONDASH, _ ->
    let body = parse_body p in
    `Rule { Ast.rule_name = label; head; body }
  | tok, line ->
    raise
      (Parse_error
         ("expected '.' or ':-', got " ^ Lexer.string_of_token tok, line))

let parse_item p : [ `Decl of Ast.decl | `Rule of Ast.rule | `Fact of Ast.fact ]
    =
  match Lexer.next p.lx with
  | Lexer.IDENT "materialize", _ -> `Decl (parse_decl p)
  | Lexer.IDENT name, _ -> (
    match Lexer.peek p.lx with
    | Lexer.LPAREN -> (
      match parse_rule_or_fact p name with
      | `Rule r -> `Rule r
      | `Fact f -> `Fact f)
    | Lexer.IDENT pred ->
      (* [name] was a rule label. *)
      ignore (Lexer.next p.lx);
      (match parse_rule_or_fact p ~label:name pred with
      | `Rule r -> `Rule r
      | `Fact _ -> error p "facts may not carry rule labels")
    | tok ->
      error p ("expected '(' or predicate, got " ^ Lexer.string_of_token tok))
  | tok, line ->
    raise
      (Parse_error
         ("expected declaration, rule or fact, got " ^ Lexer.string_of_token tok,
           line))

let parse_program_exn src : Ast.program =
  let p = { lx = Lexer.create src } in
  let rec go decls facts rules =
    match Lexer.peek p.lx with
    | Lexer.EOF ->
      {
        Ast.decls = List.rev decls;
        facts = List.rev facts;
        rules = List.rev rules;
      }
    | _ -> (
      match parse_item p with
      | `Decl d -> go (d :: decls) facts rules
      | `Fact f -> go decls (f :: facts) rules
      | `Rule r -> go decls facts (r :: rules))
  in
  go [] [] []

let parse_program src : (Ast.program, string) result =
  match parse_program_exn src with
  | p -> Ok p
  | exception Parse_error (msg, line) ->
    Error (Printf.sprintf "parse error at line %d: %s" line msg)
  | exception Lexer.Lex_error (msg, line) ->
    Error (Printf.sprintf "lexical error at line %d: %s" line msg)
