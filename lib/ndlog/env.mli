(** Variable environments and the expression evaluator used during rule
    evaluation.  An environment maps rule variables to ground values. *)

type t

exception Unbound_variable of string

val empty : t
val find_opt : string -> t -> Value.t option

val find : string -> t -> Value.t
(** @raise Unbound_variable when the variable is not bound. *)

val mem : string -> t -> bool
val bind : string -> Value.t -> t -> t
val bindings : t -> (string * Value.t) list
val of_list : (string * Value.t) list -> t

val merge : t -> t -> t option
(** [merge a b]: the consistent union of two environments — every
    binding of [a] added to [b] — or [None] when a variable is bound to
    different values in the two.  Used by the batched delta join to
    recombine per-tuple delta bindings with group-shared
    environments. *)

val eval : t -> Ast.expr -> Value.t
(** Evaluate an expression to a ground value.

    @raise Unbound_variable on unbound variables (prevented for safe
    rules by {!Analysis.check_safety}).
    @raise Value.Type_error on sort errors (e.g. arithmetic on
    non-integers, division by zero). *)

val eval_cmp : Ast.cmp -> Value.t -> Value.t -> bool
(** Comparison under the total order {!Value.compare}. *)

val match_arg : t -> Ast.expr -> Value.t -> t option
(** [match_arg env pattern v] extends [env] so that [pattern] evaluates
    to [v]: a bare unbound variable binds; anything else must already
    evaluate to [v].  [None] when impossible. *)

val match_args : t -> Ast.expr list -> Value.t array -> t option
(** Match an argument list against a ground tuple, left to right
    (arity mismatch yields [None]). *)
