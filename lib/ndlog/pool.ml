(* A small fixed-size domain pool for data-parallel fixpoint batches.

   Hand-rolled on purpose (the container carries no domainslib): the
   sharded evaluator only needs one primitive — run the same function
   over the indexes [0 .. n-1] of a batch, caller included, and wait for
   every index to finish.  Work distribution is a single shared cursor
   ([next]) advanced under the pool lock; tasks are coarse (a whole
   per-shard fixpoint), so lock traffic is negligible next to the work.

   [create ~domains:1] spawns nothing and [run_batch] degenerates to a
   sequential loop, which keeps the single-domain path allocation- and
   synchronization-free (the E8 baseline).

   A worker that raises stores the first exception and the batch keeps
   draining (every index still runs or is abandoned deterministically:
   after an error the cursor is pushed past the end so remaining indexes
   are skipped); [run_batch] re-raises in the caller once the batch has
   quiesced, so a failure inside one shard surfaces exactly like a
   failure in the sequential evaluator. *)

type t = {
  m : Mutex.t;
  work_cv : Condition.t;  (* workers wait here for a batch *)
  done_cv : Condition.t;  (* the caller waits here for completion *)
  mutable batch : (int -> unit) option;
  mutable size : int;  (* indexes in the current batch *)
  mutable next : int;  (* first unclaimed index *)
  mutable completed : int;  (* indexes finished (or skipped) *)
  mutable error : exn option;  (* first failure of the current batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let size t = 1 + List.length t.workers

(* Claim the next index of the current batch, under [t.m]. *)
let claim t =
  match t.batch with
  | Some f when t.next < t.size ->
    let i = t.next in
    t.next <- t.next + 1;
    Some (f, i)
  | _ -> None

(* Run one claimed index outside the lock; record failures and mark the
   index complete.  On the first failure the cursor jumps to the end:
   remaining indexes are abandoned (counted complete without running). *)
let run_claimed t f i =
  Mutex.unlock t.m;
  let result = try Ok (f i) with e -> Error e in
  Mutex.lock t.m;
  (match result with
  | Ok () -> ()
  | Error e ->
    if t.error = None then t.error <- Some e;
    t.completed <- t.completed + (t.size - t.next);
    t.next <- t.size);
  t.completed <- t.completed + 1;
  if t.completed >= t.size then begin
    t.batch <- None;
    Condition.broadcast t.done_cv
  end

let worker_loop t =
  Mutex.lock t.m;
  let rec loop () =
    if t.stop then Mutex.unlock t.m
    else
      match claim t with
      | Some (f, i) ->
        run_claimed t f i;
        loop ()
      | None ->
        Condition.wait t.work_cv t.m;
        loop ()
  in
  loop ()

let create ~domains =
  let n = max 1 domains in
  let t =
    {
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      size = 0;
      next = 0;
      completed = 0;
      error = None;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run_batch t ~(n : int) (f : int -> unit) =
  if n <= 0 then ()
  else if t.workers = [] then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    Mutex.lock t.m;
    t.batch <- Some f;
    t.size <- n;
    t.next <- 0;
    t.completed <- 0;
    t.error <- None;
    Condition.broadcast t.work_cv;
    (* The caller participates until the cursor is exhausted, then waits
       for in-flight workers. *)
    let rec drive () =
      match claim t with
      | Some (g, i) ->
        run_claimed t g i;
        drive ()
      | None ->
        if t.completed < t.size then begin
          Condition.wait t.done_cv t.m;
          drive ()
        end
    in
    drive ();
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.m;
    match err with Some e -> raise e | None -> ()
  end

let map_array t (f : 'a -> 'b) (xs : 'a array) : 'b array =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_batch t ~n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some y -> y | None -> assert false) out
  end

let shutdown t =
  if t.workers <> [] then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
