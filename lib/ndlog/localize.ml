(* Localization rewrite.

   Distributed execution requires every rule body to read only tuples
   stored at a single node.  A rule such as the paper's r2

     path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), ...

   joins tuples at S (link) with tuples at Z (path).  The classic NDlog
   rewrite introduces an inverted copy of the link relation stored at the
   *other* endpoint:

     link_l1(S,@Z,C) :- link(@S,Z,C).
     path(@S,D,P,C)  :- link_l1(S,@Z,C1), path(@Z,D,P2,C2), ...

   after which each body is single-site; a head located elsewhere than
   its body denotes a network send, which the distributed runtime
   implements as a message.

   The rewrite applies to "link-restricted" rules: bodies spanning at
   most two location variables connected by one atom mentioning both. *)

type error =
  | Not_link_restricted of Ast.rule * string
  | Missing_location of Ast.rule * string  (* rule, predicate *)

let pp_error ppf = function
  | Not_link_restricted (r, msg) ->
    Fmt.pf ppf "rule %a is not link-restricted: %s" Ast.pp_rule r msg
  | Missing_location (r, pred) ->
    Fmt.pf ppf "rule %a: atom %s has no location specifier" Ast.pp_rule r pred

(* The location variable of an atom: the bare variable at its location
   index. *)
let loc_var_of_atom (a : Ast.atom) : string option =
  match a.loc with
  | None -> None
  | Some i -> (
    match List.nth_opt a.args i with
    | Some (Ast.Var x) -> Some x
    | _ -> None)

let loc_var_of_head (h : Ast.head) : string option =
  match h.head_loc with
  | None -> None
  | Some i -> (
    match List.nth_opt h.head_args i with
    | Some (Ast.Plain (Ast.Var x)) -> Some x
    | _ -> None)

(* Name of the relocated copy of [pred] stored at argument index [i]. *)
let relocated_name pred i = Printf.sprintf "%s_l%d" pred i

(* Index of bare variable [x] among [args]. *)
let index_of_var x args =
  let rec go i = function
    | [] -> None
    | Ast.Var y :: _ when y = x -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 args

type result_t = {
  program : Ast.program;
  (* (pred, original location index, new location index) triples for
     which an inverted-copy rule was generated. *)
  relocations : (string * int * int) list;
}

let rewrite_rule relocations (r : Ast.rule) :
    (Ast.rule * (string * int * int) list, error) result =
  let atoms = Ast.body_atoms r.body in
  (* Location variables present in the body. *)
  let loc_vars =
    List.sort_uniq String.compare (List.filter_map loc_var_of_atom atoms)
  in
  match atoms, loc_vars with
  | [], _ -> Ok (r, relocations)
  | _, ([] | [ _ ]) -> Ok (r, relocations)
  | _, [ a; b ] -> (
    (* Pick the atom that mentions both location variables (the link). *)
    let mentions_both (at : Ast.atom) =
      index_of_var a at.args <> None && index_of_var b at.args <> None
    in
    match List.find_opt mentions_both atoms with
    | None ->
      Error
        (Not_link_restricted
           (r, "no body atom connects the two location variables"))
    | Some link -> (
      (* The linking atom must itself be located: its location index
         and variable drive the relocation below.  [mentions_both] only
         checked its argument list, so an unannotated link atom is
         still possible here — a typed error, not an [Option.get]. *)
      match link.Ast.loc, loc_var_of_atom link with
      | None, _ | _, None -> Error (Missing_location (r, link.Ast.pred))
      | Some link_orig_idx, Some link_loc ->
      (* Every non-link atom must live at the same, single location. *)
      let other_locs =
        List.sort_uniq String.compare
          (List.filter_map
             (fun at -> if at == link then None else loc_var_of_atom at)
             atoms)
      in
      (match other_locs with
      | [ target ] when target <> link_loc ->
        let target_idx =
          match index_of_var target link.args with
          | Some i -> i
          | None -> assert false
        in
        let new_pred = relocated_name link.Ast.pred target_idx in
        let new_atom =
          { Ast.pred = new_pred; loc = Some target_idx; args = link.args }
        in
        let body' =
          List.map
            (function
              | Ast.Pos at when at == link -> Ast.Pos new_atom
              | l -> l)
            r.body
        in
        let reloc = (link.Ast.pred, link_orig_idx, target_idx) in
        let relocations =
          if List.mem reloc relocations then relocations
          else reloc :: relocations
        in
        Ok ({ r with body = body' }, relocations)
      | [ target ] ->
        (* link already at the common location: nothing to do *)
        ignore target;
        Ok (r, relocations)
      | [] ->
        (* Only the link atom is located; treat its own location as home. *)
        Ok (r, relocations)
      | _ ->
        Error
          (Not_link_restricted
             (r, "non-link atoms span multiple locations")))))
  | _, _ ->
    Error
      (Not_link_restricted
         (r, "body spans more than two location variables"))

(* Generate the inverted-copy rule for a relocation: the copy has the
   same columns, stored at the new index.  The body reads the original
   relation at its own location. *)
let relocation_rule arities (pred, orig_idx, idx) : Ast.rule =
  let arity =
    match Analysis.Smap.find_opt pred arities with
    | Some a -> a
    | None -> max orig_idx idx + 1
  in
  let vars = List.init arity (fun i -> Printf.sprintf "X%d" i) in
  let args = List.map (fun v -> Ast.Var v) vars in
  let head =
    {
      Ast.head_pred = relocated_name pred idx;
      head_loc = Some idx;
      head_args = List.map (fun a -> Ast.Plain a) args;
    }
  in
  {
    Ast.rule_name = Some (relocated_name pred idx ^ "_gen");
    head;
    body = [ Ast.Pos { Ast.pred; loc = Some orig_idx; args } ];
  }

let rewrite_program (p : Ast.program) : (result_t, error) result =
  let arities =
    match Analysis.schema p with Ok a -> a | Error _ -> Analysis.Smap.empty
  in
  let rec go rules relocations = function
    | [] -> Ok (List.rev rules, relocations)
    | r :: rest -> (
      match rewrite_rule relocations r with
      | Ok (r', relocations') -> go (r' :: rules) relocations' rest
      | Error e -> Error e)
  in
  match go [] [] p.rules with
  | Error e -> Error e
  | Ok (rules, relocations) ->
    let gen_rules = List.map (relocation_rule arities) relocations in
    let decls =
      List.map
        (fun (pred, _orig_idx, idx) ->
          let lifetime =
            match
              List.find_opt (fun (d : Ast.decl) -> d.decl_pred = pred) p.decls
            with
            | Some d -> d.Ast.decl_lifetime
            | None -> Ast.Lifetime_forever
          in
          { Ast.decl_pred = relocated_name pred idx; decl_lifetime = lifetime })
        relocations
    in
    Ok
      {
        program =
          { p with rules = gen_rules @ rules; decls = p.decls @ decls };
        relocations;
      }

(* A program is localized when every rule's body atoms share a single
   location variable (or are unlocated). *)
let check_localized (p : Ast.program) : (unit, error) result =
  let check (r : Ast.rule) =
    let locs =
      List.sort_uniq String.compare
        (List.filter_map loc_var_of_atom (Ast.body_atoms r.body))
    in
    match locs with
    | [] | [ _ ] -> Ok ()
    | _ -> Error (Not_link_restricted (r, "body spans multiple locations"))
  in
  List.fold_left
    (fun acc r -> Result.bind acc (fun () -> check r))
    (Ok ()) p.rules
