(** Ground-tuple storage: a persistent database mapping predicate names
    to sets of tuples.  Stores are canonical values — two databases with
    the same contents are structurally equal — which lets the model
    checker use them directly as states.

    Relations carry lazily built secondary indexes over column sets
    ({!lookup}), maintained incrementally across {!add} / {!remove} /
    {!union} / {!set_relation}.  Indexes are pure
    memoization: they never participate in {!equal}, {!compare} or
    {!hash}, so two stores with the same tuples remain the same
    model-checker state whatever joins have been run against them.

    When interning is on ({!Intern.enabled}, the default), tuples
    arrive here already canonicalized — interning happens at the system
    boundaries (fact loading, event injection, expression construction)
    so resident values are physically shared — and a point-probe index
    whose key contains a deep (list) value and whose observed
    probe:build ratio clears {!flat_probe_threshold} is built {e flat},
    keyed by interned integer ids instead of boxed values.  Both are
    representation changes only: tuple contents, canonical order,
    {!equal} / {!compare} / {!hash}, and every observable result are
    identical to the boxed path ([FVN_INTERNING=0]). *)

(** Tuples: value arrays compared lexicographically (length first). *)
module Tuple : sig
  type t = Value.t array

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : t Fmt.t
end

(** Sets of tuples. *)
module Tset : Set.S with type elt = Tuple.t

type t
(** A database. *)

val empty : t

val relation : string -> t -> Tset.t
(** The tuple set of a predicate (empty when absent). *)

val tuples : string -> t -> Tuple.t list
(** The tuples of a predicate, in canonical order. *)

val mem : string -> Tuple.t -> t -> bool
val add : string -> Tuple.t -> t -> t
val remove : string -> Tuple.t -> t -> t
val add_list : string -> Tuple.t list -> t -> t

val set_relation : string -> Tset.t -> t -> t
(** Replace a predicate's relation wholesale (used by view refresh).
    Cached indexes are patched by the symmetric difference of old and
    new relation, so warm indexes survive the repeated mostly-unchanged
    replacements the refresh loop performs. *)

val preds : t -> string list
(** Predicates with at least one tuple, sorted. *)

val cardinal : string -> t -> int
val total_tuples : t -> int

val union : t -> t -> t
(** Per-predicate set union. *)

val diff : t -> t -> t
(** [diff b a]: the tuples of [b] not in [a] (the delta). *)

val is_empty : t -> bool

val equal : t -> t -> bool
(** Content equality (empty relations are irrelevant). *)

val compare : t -> t -> int
val hash : t -> int

val of_facts : Ast.fact list -> t

val restrict : string list -> t -> t
(** Keep only the given predicates. *)

val to_list : t -> (string * Tuple.t) list
(** All tuples as [(pred, tuple)] pairs, deterministically ordered. *)

val fold_rel : string -> (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_rel : string -> (Tuple.t -> unit) -> t -> unit
val pp : t Fmt.t
val to_string : t -> string

(** {1 Secondary indexes}

    Used by the evaluator's index-aware joins ({!Eval.body_envs}) and
    the dataflow strands ({!Plan.execute}). *)

val lookup : string -> cols:int list -> key:Value.t list -> t -> Tset.t
(** [lookup pred ~cols ~key db]: every tuple of [pred] whose values at
    positions [cols] (a strictly increasing list) equal [key]
    (positionally matching [cols]).  Builds and caches the
    [(pred, cols)] index on first use; subsequent updates through
    {!add} / {!remove} / {!union} keep it current.  Tuples too short to
    have all indexed columns are never returned (they cannot match a
    pattern binding those positions). *)

val groups : string -> cols:int list -> t -> (Value.t list * Tset.t) list
(** All groups of [pred] under the [(pred, cols)] index, in ascending
    key order: each key paired with the tuples whose values at [cols]
    equal it.  [cols = \[\]] yields a single group holding the whole
    relation.  Builds and caches the index like {!lookup}; used by
    index-aware aggregate evaluation ({!Eval.apply_agg_rule}). *)

val index_count : t -> int
(** Number of materialized [(pred, column-set)] indexes — cache
    introspection for tests and stats. *)

val indexed_cols : string -> t -> int list list
(** The column sets currently indexed for a predicate. *)

val flat_probe_threshold : int ref
(** Point probes per build a [(pred, cols)] index must sustain before a
    fresh build uses the flat (interned-id) representation; below it
    the boxed value-ordered tree is kept.  A flat index pays a
    full-spine hash per entry at every build and earns it back on
    probes, so the default (8, overridable with [FVN_FLAT_THRESHOLD])
    keeps churning indexes boxed and flips probe-heavy stable ones
    flat.  Representation only — results are identical either way. *)
