(** Flat (id-native) tuple storage.

    Tuples are [int array]s of interned value ids ({!Intern});
    relations are open-addressing hash sets of them; databases are
    mutable maps from predicate names to relations with id-keyed
    secondary indexes that are patched in place on [add]/[remove].
    Joins over this representation compare machine ints where the
    boxed {!Store} walks value structure.

    Mutable, so usable only under linear ownership (the distributed
    runtime's per-node stores, view-refresh working databases); the
    persistent {!Store} remains the model checker's canonical state.
    Nothing here enumerates in canonical order (ids are
    allocation-ordered): observable enumerations must materialize boxed
    tuples ([to_store], {!Intern.tuple_of_ids}) and sort. *)

(** Open-addressing hash sets of id tuples. *)
module Fset : sig
  type t

  val create : ?capacity:int -> unit -> t
  val cardinal : t -> int
  val is_empty : t -> bool
  val mem : t -> int array -> bool

  val add : t -> int array -> bool
  (** [true] when the tuple was not already present. *)

  val remove : t -> int array -> bool
  (** [true] when the tuple was present. *)

  val iter : (int array -> unit) -> t -> unit
  val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a
  val elements : t -> int array list

  val copy : t -> t
  (** The copy is independent: unfrozen, with an empty journal. *)

  val equal : t -> t -> bool

  val capacity : t -> int
  (** Current slot-array length (a power of two) — observable so tests
      can pin growth and compaction behavior. *)

  val freeze : t -> unit
  (** Make every subsequent mutation raise [Invalid_argument].  Backs
      the shared empty relation returned for missing predicates. *)

  type mark
  (** A checkpoint.  [mark] starts journaling every effective
      [add]/[remove]; [rollback] restores the set to the mark by
      inverse replay in O(changes); [commit] drops the mark in O(1)
      (releasing the last outstanding mark discards the journal).
      Marks must be released LIFO, innermost first. *)

  val mark : t -> mark
  val rollback : t -> mark -> unit
  val commit : t -> mark -> unit

  val tuple_eq : int array -> int array -> bool
  val tuple_hash : int array -> int
end

type t

val create : unit -> t

val version : t -> int
(** Bumped on every mutation — the stamp behind materialization
    caches. *)

val relation : t -> string -> Fset.t
(** The relation for [pred].  A missing predicate yields one shared
    {e frozen} empty set (no per-call allocation): mutating it raises,
    so lost updates cannot hide — go through {!add}/{!remove}. *)

val mem : t -> string -> int array -> bool

val add : t -> string -> int array -> bool
(** [true] when newly added; cached indexes are patched in place. *)

val remove : t -> string -> int array -> bool

val cardinal : t -> string -> int
val preds : t -> string list
val total_tuples : t -> int
val is_empty : t -> bool
val iter_rel : t -> string -> (int array -> unit) -> unit
val fold_rel : t -> string -> (int array -> 'a -> 'a) -> 'a -> 'a
val iter : t -> (string -> int array -> unit) -> unit

val lookup : t -> string -> cols:int list -> key:int array -> int array list
(** Point probe of the [(pred, cols)] secondary index, built on first
    use and patched exact thereafter.  The returned bucket is shared:
    callers must not mutate it. *)

val groups : t -> string -> cols:int list -> (int array * int array list) list
(** Transient grouping by the given columns, in no particular order. *)

val group_set : Fset.t -> cols:int list -> (int array * int array list) list
(** {!groups} over a free-standing tuple set (a delta batch). *)

val copy : t -> t
(** The copy is independent, with an empty journal and no marks. *)

val restrict : t -> string list -> t
(** Deep-copy the named relations into a fresh database.  Preserves
    the source's {!version}, exactly like {!copy}. *)

val union_into : t -> t -> unit

val set_relation : t -> string -> Fset.t -> unit
(** Replace one relation wholesale, patching cached indexes by the
    symmetric difference. *)

type mark
(** A whole-database checkpoint: from [mark] on, every effective
    {!add}/{!remove} is journaled.  {!rollback} restores the database
    (relations {e and} cached indexes, via inverse replay through the
    ordinary mutation path) in O(changes); {!commit} drops the mark in
    O(1), and releasing the last outstanding mark discards the journal
    wholesale.  Marks must be released LIFO, innermost first. *)

val mark : t -> mark
val rollback : t -> mark -> unit
val commit : t -> mark -> unit

val net_since : t -> mark -> (string * int array list * int array list) list
(** [(pred, added, removed)] per predicate touched since the mark —
    the *net* movement (an add cancelled by a later remove reports
    nothing), computed from the journal in O(changes since mark).
    Order of predicates and of tuples within a group is unspecified. *)

val clear_rel : t -> string -> unit
(** Empty one relation through the journaled mutation path. *)

val equal : t -> t -> bool

val to_store : t -> Store.t
(** Materialize the canonical boxed store (cheap direction: an array
    read per element). *)

val of_store : Store.t -> t
(** Translate a boxed store (expensive direction: one hash-cons probe
    per element) — boundary use only. *)
