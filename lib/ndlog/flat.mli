(** Flat (id-native) tuple storage.

    Tuples are [int array]s of interned value ids ({!Intern});
    relations are open-addressing hash sets of them; databases are
    mutable maps from predicate names to relations with id-keyed
    secondary indexes that are patched in place on [add]/[remove].
    Joins over this representation compare machine ints where the
    boxed {!Store} walks value structure.

    Mutable, so usable only under linear ownership (the distributed
    runtime's per-node stores, view-refresh working databases); the
    persistent {!Store} remains the model checker's canonical state.
    Nothing here enumerates in canonical order (ids are
    allocation-ordered): observable enumerations must materialize boxed
    tuples ([to_store], {!Intern.tuple_of_ids}) and sort. *)

(** Open-addressing hash sets of id tuples. *)
module Fset : sig
  type t

  val create : ?capacity:int -> unit -> t
  val cardinal : t -> int
  val is_empty : t -> bool
  val mem : t -> int array -> bool

  val add : t -> int array -> bool
  (** [true] when the tuple was not already present. *)

  val remove : t -> int array -> bool
  (** [true] when the tuple was present. *)

  val iter : (int array -> unit) -> t -> unit
  val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a
  val elements : t -> int array list
  val copy : t -> t
  val equal : t -> t -> bool

  val tuple_eq : int array -> int array -> bool
  val tuple_hash : int array -> int
end

type t

val create : unit -> t

val version : t -> int
(** Bumped on every mutation — the stamp behind materialization
    caches. *)

val relation : t -> string -> Fset.t
val mem : t -> string -> int array -> bool

val add : t -> string -> int array -> bool
(** [true] when newly added; cached indexes are patched in place. *)

val remove : t -> string -> int array -> bool

val cardinal : t -> string -> int
val preds : t -> string list
val total_tuples : t -> int
val is_empty : t -> bool
val iter_rel : t -> string -> (int array -> unit) -> unit
val fold_rel : t -> string -> (int array -> 'a -> 'a) -> 'a -> 'a
val iter : t -> (string -> int array -> unit) -> unit

val lookup : t -> string -> cols:int list -> key:int array -> int array list
(** Point probe of the [(pred, cols)] secondary index, built on first
    use and patched exact thereafter.  The returned bucket is shared:
    callers must not mutate it. *)

val groups : t -> string -> cols:int list -> (int array * int array list) list
(** Transient grouping by the given columns, in no particular order. *)

val group_set : Fset.t -> cols:int list -> (int array * int array list) list
(** {!groups} over a free-standing tuple set (a delta batch). *)

val copy : t -> t
val restrict : t -> string list -> t
val union_into : t -> t -> unit

val set_relation : t -> string -> Fset.t -> unit
(** Replace one relation wholesale, patching cached indexes by the
    symmetric difference. *)

val equal : t -> t -> bool

val to_store : t -> Store.t
(** Materialize the canonical boxed store (cheap direction: an array
    read per element). *)

val of_store : Store.t -> t
(** Translate a boxed store (expensive direction: one hash-cons probe
    per element) — boundary use only. *)
