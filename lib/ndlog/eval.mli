(** Bottom-up evaluation of NDlog programs.

    Three evaluators share one rule-application core: {!naive}
    re-derives everything from the full database each round;
    {!seminaive} performs classic delta iteration;
    {!seminaive_sharded} partitions the database by the
    location-specifier column ({!Shard}) and runs per-shard semi-naive
    fixpoints in parallel on OCaml domains, exchanging foreign-located
    head tuples between shards until a global fixpoint.  All respect
    stratification: strata are evaluated bottom-up, aggregate rules of
    a stratum run once at stratum entry (their inputs are complete),
    remaining rules run to fixpoint.

    Joins are index-aware: body literals with ground argument positions
    are answered from {!Store.lookup} secondary indexes, rule bodies
    are reordered most-bound-first ({!order_body}), and single-atom
    aggregate rules are answered from a {!Store.groups} grouped index
    probe; every optimization falls back to the plain nested-loop scan
    (and can be disabled via {!use_indexes} / {!use_reordering})
    without changing the fixpoint.

    Instrumentation is per run: every evaluation reports its own join
    counters in [outcome.stats], and callers may pass a {!counters}
    accumulator to aggregate across runs.  There is no global mutable
    statistics state, so concurrent evaluations never interfere.

    Evaluation is bounded by [max_rounds]: a program with no finite
    fixpoint (e.g. distance-vector count-to-infinity on a cycle) is
    reported as not converged instead of looping. *)

(** Join counters of one evaluation run. *)
type stats = {
  index_hits : int;  (** joins answered from a secondary index *)
  scans : int;  (** joins answered by a full relation scan *)
  enumerated : int;  (** candidate tuples visited by joins *)
  matched : int;  (** candidates that unified with the pattern *)
  groups : int;  (** delta groups formed by the batched join *)
  group_probes : int;  (** grouped delta probes issued *)
  delta_tuples : int;
      (** delta tuples fed through delta joins; [delta_tuples / groups]
          is the mean delta-group size a batched run achieved *)
  strata_skipped : int;
      (** view strata skipped by dirty-predicate tracking (incremental
          refresh in {!Dist.Runtime}): no predicate in the stratum's
          transitive support changed, so its previous relations were
          reused without any evaluation work *)
  refresh_fallbacks : int;
      (** touched view strata recomputed from scratch instead of
          incrementally: strata with aggregates or negation, or whose
          support lost tuples (soft-state expiry) — both non-monotone
          under seeded re-derivation *)
}

(** The result of an evaluation. *)
type outcome = {
  db : Store.t;  (** the database reached *)
  rounds : int;  (** fixpoint rounds across all strata *)
  derivations : int;  (** head tuples produced, counting duplicates *)
  converged : bool;  (** false when [max_rounds] was hit *)
  stats : stats;  (** join counters of this run *)
}

exception Eval_error of string

(** {1 Instrumentation and switches} *)

val zero_stats : stats
val add_stats : stats -> stats -> stats
val pp_stats : stats Fmt.t

(** A mutable accumulator threaded through one or more evaluations.
    Each run owns (or is handed) its own record — there is no global
    counter state, so runs never bleed into each other and per-shard
    evaluations may proceed on separate domains.  The fields are
    exposed so the id-native twin of the rule-application core
    ({!Ideval}) can bump exactly the same counts — its accounting must
    be indistinguishable from this evaluator's (checked by property). *)
type counters = {
  mutable c_index_hits : int;
  mutable c_scans : int;
  mutable c_enumerated : int;
  mutable c_matched : int;
  mutable c_groups : int;
  mutable c_group_probes : int;
  mutable c_delta_tuples : int;
  mutable c_strata_skipped : int;
  mutable c_refresh_fallbacks : int;
}

val counters : unit -> counters
(** A fresh zeroed accumulator. *)

val snapshot : counters -> stats
(** The current counts, as an immutable record. *)

val accumulate : counters -> stats -> unit
(** Add a snapshot into an accumulator. *)

val note_stratum_skipped : counters -> unit
(** Count one view stratum skipped by dirty-predicate tracking.  The
    skip decision lives in the refresh loop ({!Dist.Runtime}), not in
    an evaluation run, so it is recorded directly on the accumulator. *)

val note_refresh_fallback : counters -> unit
(** Count one touched view stratum recomputed from scratch. *)

val use_indexes : bool ref
(** Consult secondary indexes for ground argument positions and grouped
    aggregate probes (default [true]).  Off: every join is a full scan
    — the pre-index nested-loop evaluator. *)

val use_reordering : bool ref
(** Reorder rule bodies most-bound-first before evaluation (default
    [true]). *)

val use_interning : bool ref
(** Hash-cons values and key secondary indexes by interned ids (default
    [true]; re-export of {!Intern.enabled}, switched off by
    [FVN_INTERNING=0]).  On: {!Store.add} canonicalizes tuples so
    resident values are physically shared and index probes compare
    machine ints.  Off: the boxed-value oracle path.  The fixpoint,
    derivation counts and statistics are identical either way (checked
    by property). *)

val use_batching : bool ref
(** Join delta activations group-at-a-time (default [true]): each
    round's delta relation is grouped by the columns the rest of the
    body reads ({!Store.groups}), the probing part of the body runs
    once per group, and each delta tuple pays only a pattern match plus
    the residual filters.  Off: one environment is seeded per delta
    tuple and the whole body replays per activation.  Both paths derive
    the same head tuples the same number of times (checked by
    property); [stats.groups] / [stats.group_probes] count the batched
    path's work. *)

val order_body :
  ?card:(string -> int) ->
  ?bound:Ast.Sset.t ->
  Ast.lit list ->
  Ast.lit list
(** Greedy join planning: filters (assignments, comparisons, negations)
    run as soon as their variables are bound; positive atoms are
    scheduled most-bound-first, ties broken by smaller relation
    ([card]) then source order.  [bound] seeds the bound-variable set
    (e.g. with the variables a delta literal binds).  Preserves the
    satisfying-environment set of any safe rule; identity when
    {!use_reordering} is off. *)

val atom_binds : Ast.atom -> Ast.Sset.t
(** The variables a positive atom binds when evaluated first (its bare
    variable arguments). *)

(** {2 Shared planning helpers}

    The pure planning functions of the rule-application core, exposed
    so the id-native twin ({!Ideval}) compiles rules with exactly the
    same literal orders, group columns and shared/per-tuple splits —
    the precondition for its join counters matching this evaluator's
    bump for bump. *)

val group_vars : Ast.atom -> Ast.lit list -> Ast.Sset.t
(** Delta-atom variables read by the rest body's positive atoms: the
    variables the batched join binds per delta group. *)

val group_cols : Ast.atom -> Ast.Sset.t -> (int * string) list
(** The delta-atom argument columns carrying the group variables (first
    bare occurrence of each, ascending). *)

val split_shared : Ast.Sset.t -> Ast.lit list -> Ast.lit list * Ast.lit list
(** Split an ordered rest body into the phase evaluable once per delta
    group and the per-tuple remainder. *)

val delta_positions : Ast.Sset.t -> Ast.lit list -> int list
(** Body positions whose positive atom's predicate is in the given
    recursive-predicate set. *)

val rules_of_stratum : Ast.program -> string list -> Ast.rule list
val split_agg : Ast.rule list -> Ast.rule list * Ast.rule list

(** Head-argument shape of the grouped-index aggregate fast path: each
    head argument mapped to the body-atom column it reads. *)
type agg_slot =
  | Group of int  (** plain head argument: value of this body column *)
  | Fold of Ast.agg * int  (** aggregate over this body column *)

val agg_index_shape : Ast.rule -> (Ast.atom * agg_slot list) option
(** [Some] when the rule's body is a single positive atom over distinct
    bare variables and every head argument reads one of them — the
    shape answered by a {!Store.groups} probe. *)

val agg_fold : Ast.agg -> Value.t list -> Value.t
(** Fold one aggregate over a non-empty group column.
    @raise Eval_error on an empty group. *)

val candidates :
  ?stats:counters -> Store.t -> Env.t -> string -> Ast.expr list -> Store.Tset.t
(** The candidate tuples for matching the arguments against a predicate
    under an environment: an indexed lookup when some position is
    ground, the full relation otherwise. *)

val body_envs :
  ?stats:counters ->
  Store.t ->
  ?delta:int * Store.Tset.t ->
  Ast.lit list ->
  Env.t list
(** All satisfying environments for a rule body against a database.
    [delta] optionally replaces the relation read by the body literal at
    the given index (semi-naive evaluation); exposed for the distributed
    runtime and the plan compiler. *)

val join_envs :
  ?stats:counters -> Store.t -> Env.t -> string -> Ast.expr list -> Env.t list
(** [join_envs db env pred args]: extend [env] with every tuple of
    [pred] that matches [args] — one index-aware join step, shared with
    the strand executor ({!Plan.execute}). *)

val delta_envs :
  ?stats:counters ->
  ?card:(string -> int) ->
  Store.t ->
  delta:Ast.atom * Store.t ->
  rest:Ast.lit list ->
  Env.t list
(** All satisfying environments of the body [delta_atom :: rest]
    against [db], with the delta atom's relation read from the supplied
    delta store instead of [db] — the semi-naive activation of one
    (rule, delta position) pair.  Batched ({!use_batching} on, the
    default) or per-tuple; both produce the same environment set.
    Exposed for the strand executor ({!Plan.execute_batch}). *)

val head_tuple : Env.t -> Ast.head -> Store.Tuple.t
(** Instantiate an aggregate-free head under an environment. *)

val apply_agg_rule :
  ?stats:counters -> Store.t -> Ast.rule -> Store.Tuple.t list
(** Evaluate an aggregate rule against the full database: group
    satisfying environments by the plain head arguments and fold the
    aggregate.  Rules whose body is a single positive atom over
    distinct bare variables are answered from a {!Store.groups} index
    probe — same output set, one probe instead of an enumeration. *)

(** {1 Evaluators} *)

val seminaive :
  ?max_rounds:int ->
  ?stats:counters ->
  Ast.program ->
  Analysis.info ->
  Store.t ->
  outcome
(** Semi-naive (delta) evaluation from an initial database. *)

val naive :
  ?max_rounds:int ->
  ?stats:counters ->
  Ast.program ->
  Analysis.info ->
  Store.t ->
  outcome
(** Naive evaluation; same fixpoint as {!seminaive} (differentially
    tested), used as the E7 baseline. *)

(** {1 Refresh strata}

    The dependency analysis behind incremental view refresh
    ({!Dist.Runtime}): {!Analysis.strata} refined with one extra strict
    edge — a dependency {e on} an aggregate-defined predicate — so
    aggregate heads sit in strata of their own and their plain
    consumers land strictly above, where seeded delta re-derivation is
    sound.  Bottom-up evaluation per refresh stratum reaches the same
    fixpoint as the analysis strata (every strict analysis edge stays
    strict here). *)

type refresh_stratum = {
  rs_preds : string list;  (** head predicates of this stratum, sorted *)
  rs_rules : Ast.rule list;  (** their rules, in program order *)
  rs_support : Ast.Sset.t;
      (** transitive support: every predicate (negated included, lower
          view heads included) whose change can affect this stratum —
          the skip test is [support ∩ changed = ∅] *)
  rs_has_agg : bool;
  rs_has_neg : bool;
}

val refresh_strata : Ast.program -> refresh_stratum list
(** Bottom-up refresh strata of a (view) program.  If the refinement's
    extra strict edges close a cycle the ordinary stratification
    tolerates, everything collapses into a single stratum (correct,
    just never incremental). *)

val seminaive_stratum :
  ?max_rounds:int ->
  ?stats:counters ->
  Ast.program ->
  string list ->
  Store.t ->
  Store.t * bool
(** [seminaive_stratum p preds db]: evaluate the single stratum of [p]
    whose heads are [preds] to fixpoint on [db] — aggregate rules once
    at entry, plain rules semi-naively.  The from-scratch fallback of
    incremental view refresh. *)

val seminaive_sharded :
  ?max_rounds:int ->
  ?stats:counters ->
  domains:int ->
  Ast.program ->
  Analysis.info ->
  Store.t ->
  outcome
(** Sharded semi-naive evaluation: partition the database by the
    location-specifier column ({!Shard.partition}), run per-shard
    fixpoints in parallel on [domains] OCaml domains, route head tuples
    located at another shard through an exchange step (exactly the
    tuples the distributed runtime would send as messages), and repeat
    until no shard receives a new tuple.

    Reaches the same fixpoint database and convergence flag as
    {!seminaive} (checked by property); [rounds] counts the parallel
    depth (sum over global rounds of the maximum local round count) and
    [derivations]/[stats] sum per-shard counts, so the numeric
    accounting differs from the centralized schedule.  The outcome is
    identical for every [domains] value — the decomposition and
    exchange order are domain-count independent; only wall-clock time
    changes.

    Falls back to {!seminaive} when {!Shard.analyze} rejects the
    program or the database occupies at most one shard. *)

(** {1 Entry points} *)

val run :
  ?max_rounds:int ->
  ?extra_facts:Ast.fact list ->
  Ast.program ->
  (outcome, Analysis.error) result
(** Analyze and evaluate a self-contained program (its facts plus
    [extra_facts]). *)

val run_exn :
  ?max_rounds:int -> ?extra_facts:Ast.fact list -> Ast.program -> outcome
(** @raise Invalid_argument on analysis failure. *)

val run_sharded :
  ?max_rounds:int ->
  ?domains:int ->
  ?extra_facts:Ast.fact list ->
  Ast.program ->
  (outcome, Analysis.error) result
(** {!run} through {!seminaive_sharded}; [domains] defaults to
    [Domain.recommended_domain_count ()]. *)

val run_source : ?max_rounds:int -> string -> (outcome, string) result
(** Parse source text and run it. *)
