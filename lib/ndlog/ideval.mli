(** Id-native evaluation: the rule-application core of {!Eval} over
    flat tuples ({!Flat}) and slot-compiled integer environments.

    Environments bind dense interned ids instead of boxed values,
    pattern matching and join probes compare machine ints, and boxing
    happens only at true system boundaries (builtin calls, ordering
    comparisons, observable output).  Everything here is a {e faithful
    twin} of the boxed evaluator: literal orders come from the same
    planning functions, the index-versus-scan decision is the same test
    on the same positions, and every {!Eval.counters} field is bumped
    at the same point of the same loop — fixpoints, derivation counts
    and join statistics are indistinguishable from {!Eval}'s (checked
    by property against the boxed oracle).

    Flat databases are mutable and linearly owned; the persistent
    {!Store} remains canonical for model-checker state identity, and
    the id-native path materializes through {!Flat.to_store} at
    observation points. *)

val enabled : bool ref
(** Whether {!Dist.Runtime} evaluates id-natively.  Defaults to [true];
    the environment switch [FVN_TUPLE_IDS=0] selects the boxed oracle
    path.  Consulted at runtime creation, not per operation. *)

(** {1 Strand execution (the wire path)} *)

type istrand
(** A compiled strand: {!Plan.strand} with its delta decomposition
    pre-planned and its body slot-compiled.  The compilation is
    cardinality-independent (like {!Plan.execute_batch}'s planning), so
    one compiled strand serves every batch; it is re-planned lazily if
    {!Eval.use_reordering} changes. *)

val of_strand : Plan.strand -> istrand
(** @raise Invalid_argument when the strand has no delta position. *)

val delta_pred : istrand -> string
val head_pred : istrand -> string

val head_loc : istrand -> int option
(** The head atom's location-specifier column, if any. *)

val execute_batch :
  ?stats:Eval.counters ->
  Flat.t ->
  delta_tuples:int array list ->
  istrand ->
  int array list
(** Head id tuples of one strand run over a whole delta batch — the id
    twin of {!Plan.execute_batch}.  Same head multiset and counters;
    the list order differs, so observable consumers materialize and
    sort. *)

val refresh_stratum :
  ?stats:Eval.counters -> Flat.t -> strands:istrand list -> delta:Flat.t -> unit
(** Seeded delta-driven re-derivation of one refresh stratum to
    fixpoint, mutating the working database — the id twin of
    {!Plan.refresh_stratum}. *)

(** {1 Fixpoint drivers} *)

type outcome = {
  rounds : int;
  derivations : int;
  converged : bool;
  stats : Eval.stats;
}
(** {!Eval.outcome} without the database (the caller owns the mutated
    {!Flat.t}). *)

val seminaive :
  ?max_rounds:int ->
  ?stats:Eval.counters ->
  Ast.program ->
  Analysis.info ->
  Flat.t ->
  outcome
(** Semi-naive evaluation to fixpoint, mutating [fdb] — the id twin of
    {!Eval.seminaive}. *)

val seminaive_stratum :
  ?max_rounds:int ->
  ?stats:Eval.counters ->
  Ast.program ->
  string list ->
  Flat.t ->
  bool
(** Evaluate one stratum to fixpoint on [fdb] — the id twin of
    {!Eval.seminaive_stratum} (the from-scratch refresh fallback). *)

val run_program :
  ?max_rounds:int ->
  Ast.program ->
  (Store.t * outcome, Analysis.error) result
(** Analyze and evaluate a self-contained program id-natively from its
    facts, returning the materialized boxed fixpoint — the differential
    entry point mirroring {!Eval.run}. *)
