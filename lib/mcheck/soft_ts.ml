(* Model checking soft-state protocols: the combination the paper's
   Section 4 aims at — soft-state semantics (4.2) expressed as a
   transition system (4.3) "to directly produce system models for model
   checking tools".

   A state couples a database with a discrete clock and the leases of
   its soft tuples.  Transitions are:

   - derivation: insert one enabled rule consequence (leased at
     [clock + lifetime] when its predicate is soft);
   - tick: advance the clock by one, drop expired tuples, apply the
     environment's injections for the new instant (refreshes, new
     pings, ...).

   The clock is bounded by [horizon], so the state space is finite
   whenever the value domain is.  Leases make expiry part of the state:
   safety properties can now speak about time ("after refreshes stop,
   liveness tuples eventually vanish in every execution"). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store

type lease = (string * Store.Tuple.t) * int  (* tuple, expiry instant *)

type state = {
  clock : int;
  db : Store.t;
  leases : lease list;  (* sorted, canonical *)
}

(* Leases are ordered by the engine's value comparison — polymorphic
   [compare] would be an independent structural notion of tuple order
   (the Kmap/enabled_insertions bug class). *)
let lease_compare (((p, t), d) : lease) (((p', t'), d') : lease) =
  let c = String.compare p p' in
  if c <> 0 then c
  else
    let c = Store.Tuple.compare t t' in
    if c <> 0 then c else Int.compare d d'

let lease_equal (((p, t), d) : lease) (((p', t'), d') : lease) =
  d = d' && String.equal p p' && Store.Tuple.equal t t'

let canonical_leases (l : lease list) : lease list = List.sort lease_compare l

let initial_state = { clock = 0; db = Store.empty; leases = [] }

type config = {
  program : Ast.program;
  horizon : int;
  (* External insertions that happen at a given instant. *)
  inject : int -> (string * Store.Tuple.t) list;
  lifetimes : (string * int) list;  (* soft predicates *)
}

let make_config ?(horizon = 10) ?(inject = fun _ -> []) (program : Ast.program)
    : config =
  let lifetimes =
    List.filter_map
      (fun (d : Ast.decl) ->
        match d.Ast.decl_lifetime with
        | Ast.Lifetime l -> Some (d.Ast.decl_pred, int_of_float l)
        | Ast.Lifetime_forever -> None)
      program.Ast.decls
  in
  { program; horizon; inject; lifetimes }

let lifetime_of cfg pred = List.assoc_opt pred cfg.lifetimes

(* Insert with lease bookkeeping; re-insertion refreshes. *)
let insert cfg (s : state) pred tuple : state =
  let db = Store.add pred tuple s.db in
  match lifetime_of cfg pred with
  | None -> { s with db }
  | Some life ->
    let key_equal (p, t) = String.equal p pred && Store.Tuple.equal t tuple in
    let leases =
      ((pred, tuple), s.clock + life)
      :: List.filter (fun (k, _) -> not (key_equal k)) s.leases
    in
    { s with db; leases = canonical_leases leases }

(* The tick transition. *)
let tick cfg (s : state) : state =
  let clock = s.clock + 1 in
  let dead, alive = List.partition (fun (_, d) -> d <= clock) s.leases in
  let db =
    List.fold_left (fun db ((p, t), _) -> Store.remove p t db) s.db dead
  in
  let s' = { clock; db; leases = canonical_leases alive } in
  List.fold_left (fun s (p, t) -> insert cfg s p t) s' (cfg.inject clock)

(* State identity goes through [Store.equal]/[Store.hash] for the
   database component (the index cache is not part of the state) and
   the canonical lease list; structural defaults would distinguish
   cache-warm from cache-cold databases. *)
let state_equal a b =
  a.clock = b.clock
  && Store.equal a.db b.db
  && List.equal lease_equal a.leases b.leases

let state_compare a b =
  let c = Int.compare a.clock b.clock in
  if c <> 0 then c
  else
    let c = Store.compare a.db b.db in
    if c <> 0 then c else List.compare lease_compare a.leases b.leases

let state_hash s =
  List.fold_left
    (fun acc ((p, t), d) ->
      (((acc * 31) + Hashtbl.hash (p, d)) * 31) + Store.Tuple.hash t)
    ((s.clock * 31) + Store.hash s.db)
    s.leases

let pp_state ppf s = Fmt.pf ppf "clock=%d@.%a" s.clock Store.pp s.db

let initial_of cfg =
  [ List.fold_left (fun s (p, t) -> insert cfg s p t) initial_state
      (cfg.inject 0) ]

let system (cfg : config) : state Explore.system =
  let successors (s : state) : state list =
    let derivations =
      Ndlog_ts.enabled_insertions cfg.program s.db
      |> List.map (fun (pred, tuple) -> insert cfg s pred tuple)
    in
    let ticks = if s.clock >= cfg.horizon then [] else [ tick cfg s ] in
    derivations @ ticks
  in
  Explore.make ~pp:pp_state ~equal:state_equal ~hash:state_hash
    ~initial:(initial_of cfg) ~successors ()

(* ------------------------------------------------------------------ *)
(* Labeled actions.

   A tick commutes with nothing: it shifts the lease a subsequent
   insertion would take (clock + lifetime differs across the tick) and
   can disable derivations outright by expiring their premises.  So
   derivations are independent only of each other — by the same
   monotone/footprint argument as {!Ndlog_ts}, valid within one clock
   instant — and POR reduces the derivation interleavings between
   ticks, most visibly at the horizon (where no tick competes).
   Symmetry is the effective reduction for soft systems. *)

type action =
  | Derive of Ndlog_ts.action
  | Tick

let labeled_system ?(independence = `Monotone) ?observed (cfg : config) :
    (state, action) Explore.sys =
  let actions (s : state) =
    let derivations =
      Ndlog_ts.enabled_actions cfg.program s.db
      |> List.map (fun (a : Ndlog_ts.action) ->
             (Derive a, insert cfg s a.Ndlog_ts.pred a.Ndlog_ts.tuple))
    in
    let ticks =
      if s.clock >= cfg.horizon then [] else [ (Tick, tick cfg s) ]
    in
    derivations @ ticks
  in
  let negation_free = not (Ndlog_ts.has_negation cfg.program) in
  let independent _s a b =
    match (a, b) with
    | Derive x, Derive y ->
      Ndlog_ts.action_independent ~mode:independence ~negation_free x y
    | _ -> false
  in
  let visible =
    match observed with
    | None -> fun _ _ -> true
    | Some preds -> (
      fun _ -> function
        | Tick -> true (* the clock is always observable *)
        | Derive (x : Ndlog_ts.action) -> List.mem x.Ndlog_ts.pred preds)
  in
  Explore.make_labeled ~pp:pp_state ~equal:state_equal ~hash:state_hash
    ~independent ~visible ~initial:(initial_of cfg) ~actions ()

(* ------------------------------------------------------------------ *)
(* Symmetry: node permutations act on the database and the leases
   jointly (a lease names its tuple, so it permutes with the tuple's
   node; the clock is fixed). *)

let apply_perm (p : Symmetry.perm) (s : state) : state =
  {
    clock = s.clock;
    db = Symmetry.apply_store p s.db;
    leases =
      canonical_leases
        (List.map
           (fun ((pred, t), d) -> ((pred, Symmetry.apply_tuple p t), d))
           s.leases);
  }

let canon_state (sym : Symmetry.t) (s : state) : state =
  Symmetry.canonicalize sym ~apply:apply_perm ~compare:state_compare
    ~hash:state_hash ~equal:state_equal s

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let explore ?max_states ?(por = false) ?symmetry ?independence (cfg : config)
    : state Explore.stats =
  let sys = labeled_system ?independence cfg in
  let canon = Option.map canon_state symmetry in
  Explore.explore ?max_states ~por ?canon sys

(* Check a clock-indexed safety property over all reachable states. *)
let check ?(max_states = 100_000) ?(por = false) ?symmetry ?independence
    ?observed ?stable (cfg : config) (inv : state -> bool) =
  let sys = labeled_system ?independence ?observed cfg in
  let canon = Option.map canon_state symmetry in
  Explore.check_invariant ~max_states ~por ?canon ?stable sys inv
