(* Symmetry reduction: quotient the checker's visited table by the
   automorphism group of the network topology.

   A protocol running on a symmetric topology produces symmetric state
   spaces — rotating a ring rotates every reachable database with it —
   so the checker need only visit one member of each orbit.  The
   quotient is implemented as key canonicalization ({!Explore.Table}'s
   [canon]): each state is minimized over its node-permutation orbit
   before hashing, giving an alternative equal/hash pair on the table
   without touching exploration itself (real states, real traces).

   The group is given by generators (from
   {!Netsim.Topology.automorphism_generators}), never enumerated: the
   orbit of a state is closed breadth-first under the generators, with
   a cap.  Small groups — a ring's dihedral group has 2k elements, a
   grid's D4 eight — close well under the cap, making the minimum
   exact and the quotient maximal.  Groups that are huge (a star's
   leaves carry the full symmetric group) hit the cap; we then finish
   with greedy single-generator descent.  Either way the result stays
   inside the orbit, so the quotient is sound — capping merely splits
   some orbits and costs reduction, never correctness.

   Node identity is the [Value.Addr] sort: permutations rename
   addresses (deeply, through list values — path vectors permute with
   their nodes) and leave integers, strings, and booleans alone. *)

module Store = Ndlog.Store
module Value = Ndlog.Value

type perm = (string * string) list

type t = {
  generators : perm list;
  cap : int;
}

let identity_perm p = List.for_all (fun (a, b) -> String.equal a b) p

let of_generators ?(cap = 4096) generators =
  { generators = List.filter (fun p -> not (identity_perm p)) generators; cap }

let of_topology ?cap topo =
  of_generators ?cap (Netsim.Topology.automorphism_generators topo)

let generators t = t.generators
let trivial t = t.generators = []

let apply_name (p : perm) n =
  match List.assoc_opt n p with Some m -> m | None -> n

let rec apply_value p (v : Value.t) : Value.t =
  match v with
  | Value.Addr a -> Value.Addr (apply_name p a)
  | Value.List vs -> Value.List (List.map (apply_value p) vs)
  | Value.Int _ | Value.Str _ | Value.Bool _ -> v

let apply_tuple p (t : Store.Tuple.t) : Store.Tuple.t =
  Array.map (apply_value p) t

let apply_store p (db : Store.t) : Store.t =
  List.fold_left
    (fun acc (pred, t) -> Store.add pred (apply_tuple p t) acc)
    Store.empty (Store.to_list db)

(* Generic orbit minimization, so state types wrapping a store (e.g.
   {!Soft_ts.state}, where leases permute jointly with the database)
   canonicalize with the same machinery. *)
let canonicalize (type a) t ~(apply : perm -> a -> a)
    ~(compare : a -> a -> int) ~(hash : a -> int) ~(equal : a -> a -> bool)
    (x : a) : a =
  if t.generators = [] then x
  else begin
    let seen : (int, a list ref) Hashtbl.t = Hashtbl.create 64 in
    let mem y =
      match Hashtbl.find_opt seen (hash y) with
      | None -> false
      | Some b -> List.exists (equal y) !b
    in
    let record y =
      let h = hash y in
      match Hashtbl.find_opt seen h with
      | None -> Hashtbl.add seen h (ref [ y ])
      | Some b -> b := y :: !b
    in
    let best = ref x in
    let q = Queue.create () in
    record x;
    Queue.push x q;
    let expanded = ref 0 in
    let capped = ref false in
    while not (Queue.is_empty q) do
      if !expanded >= t.cap then begin
        capped := true;
        Queue.clear q
      end
      else begin
        let y = Queue.pop q in
        incr expanded;
        List.iter
          (fun g ->
            let y' = apply g y in
            if not (mem y') then begin
              record y';
              if compare y' !best < 0 then best := y';
              Queue.push y' q
            end)
          t.generators
      end
    done;
    if !capped then begin
      (* greedy descent: keep applying whichever generator improves *)
      let improved = ref true in
      while !improved do
        improved := false;
        List.iter
          (fun g ->
            let y' = apply g !best in
            if compare y' !best < 0 then begin
              best := y';
              improved := true
            end)
          t.generators
      done
    end;
    !best
  end

let canon_store t db =
  canonicalize t ~apply:apply_store ~compare:Store.compare ~hash:Store.hash
    ~equal:Store.equal db

(* The quotient as an equal/hash pair (what the visited table uses
   through its [canon]; exposed for direct use and tests). *)
let store_equal t a b = Store.equal (canon_store t a) (canon_store t b)
let store_hash t db = Store.hash (canon_store t db)
