(** The transition-system (linear-logic flavoured) view of NDlog
    execution (Section 4.3: "view the declarative networking
    specification as a set of transition rules that determine the
    updates of the underlying routing tables").

    States are databases; transitions insert rule consequences.
    Count-to-infinity programs yield infinite state spaces, which
    bounded exploration reports as truncation.

    The fine-grained system comes in an unlabeled form ({!system}) and
    a labeled form ({!labeled_system}) whose actions carry read/write
    footprints for partial-order reduction; {!explore} and
    {!check_fine_invariant} expose both reductions as switches
    (default off). *)

val insertion_compare :
  string * Ndlog.Store.Tuple.t -> string * Ndlog.Store.Tuple.t -> int
(** The engine-canonical order on (pred, tuple): predicate name, then
    {!Ndlog.Store.Tuple.compare} — the engine's value equality, never
    polymorphic [compare]. *)

val enabled_insertions :
  Ndlog.Ast.program -> Ndlog.Store.t -> (string * Ndlog.Store.Tuple.t) list
(** All single-tuple insertions enabled in a database (non-aggregate
    rules), deduplicated and sorted by {!insertion_compare}. *)

(** An enabled insertion labeled with its footprint: the write is the
    inserted tuple's location (its predicate's location column), the
    reads the (predicate, body location) pairs over every deriving
    environment.  A [None] location is unlocated and conflicts with
    every write of its predicate. *)
type action = {
  pred : string;
  tuple : Ndlog.Store.Tuple.t;
  writes_at : Ndlog.Value.t option;
  reads : (string * Ndlog.Value.t option) list;
}

val enabled_actions : Ndlog.Ast.program -> Ndlog.Store.t -> action list
(** {!enabled_insertions} with footprints, in the same order. *)

(** How independence of two enabled insertions is certified.  Either
    mode claims independence only in negation-free programs (a negated
    body atom lets one insertion disable another's derivations,
    transitively — no local test bounds it, so negation turns the
    reduction off wholesale):

    - [`Monotone] (default): in a negation-free program insertions
      only ever add satisfying environments, so distinct insertions
      commute and stay enabled along every interleaving — distinctness
      alone suffices, collapsing the insertion lattice to one chain;
    - [`Footprint]: additionally require writes at distinct located
      nodes and each write disjoint from the other's reads — the
      conservative locality test (in the style of the {!Ndlog.Shard}
      analysis), justified without the global monotonicity argument
      but much weaker in practice: a route insertion's write usually
      appears in a neighbour's reads, so densely coupled topologies
      see little reduction (measured in experiment E17). *)
type independence = [ `Footprint | `Monotone ]

val has_negation : Ndlog.Ast.program -> bool
(** Any negated body atom in a non-aggregate rule. *)

val footprint_independent : action -> action -> bool

val action_independent :
  mode:independence -> negation_free:bool -> action -> action -> bool

val system : Ndlog.Ast.program -> Ndlog.Store.t Explore.system
(** Fine-grained: one successor per enabled insertion. *)

val labeled_system :
  ?independence:independence ->
  ?observed:string list ->
  Ndlog.Ast.program ->
  (Ndlog.Store.t, action) Explore.sys
(** The fine-grained system with labeled actions.  [observed] is the
    visibility hook for invariant checking under POR: insertions into
    the listed predicates are visible, all others invisible — the
    caller asserts its invariant reads only observed predicates.
    Omitted, every insertion is visible (sound for any invariant; POR
    then reduces nothing during invariant checking). *)

val batched_system : Ndlog.Ast.program -> Ndlog.Store.t Explore.system
(** One successor per state (all enabled insertions at once): a much
    smaller space with the same terminal fixpoint. *)

val explore :
  ?max_states:int ->
  ?por:bool ->
  ?symmetry:Symmetry.t ->
  ?independence:independence ->
  Ndlog.Ast.program ->
  Ndlog.Store.t Explore.stats
(** Fine-grained exploration with both reductions switchable (default
    off: identical to [Explore.explore (system p)]). *)

val check_fine_invariant :
  ?max_states:int ->
  ?por:bool ->
  ?symmetry:Symmetry.t ->
  ?independence:independence ->
  ?observed:string list ->
  ?stable:bool ->
  Ndlog.Ast.program ->
  (Ndlog.Store.t -> bool) ->
  (Ndlog.Store.t Explore.stats, Ndlog.Store.t Explore.violation) result
(** Safety over every reachable database of the fine-grained system.
    Under [?symmetry] the invariant must be symmetric; under [?por] it
    must be covered by [?observed] or declared [?stable] (violations
    persist under further insertions) for the reduction to act — see
    {!Explore.check_invariant}. *)

val check_table_invariant :
  ?max_states:int ->
  Ndlog.Ast.program ->
  (Ndlog.Store.t -> bool) ->
  (Ndlog.Store.t Explore.stats, Ndlog.Store.t Explore.violation) result
(** Safety over every reachable database of the batched system. *)
