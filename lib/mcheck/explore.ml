(* A small explicit-state model checker (Section 4.3 of the paper:
   "leverage such transition system representation to directly interface
   with model checkers").

   Works over any transition system given as initial states plus a
   successor function.  Provides:

   - reachability statistics (states, transitions, depth);
   - invariant (safety) checking with shortest counterexample traces;
   - terminal-state collection (e.g. the stable assignments of an SPP);
   - lasso search: a reachable cycle lying entirely inside a region
     (e.g. the not-yet-converged states), which witnesses a possible
     non-terminating execution — the oscillation detector used by E9;
   - two state-space reductions, both off by default: partial-order
     reduction over labeled actions ([~por]) and symmetry reduction by
     canonicalizing visited-table keys ([~canon]).

   State identity is the system's [equal]/[hash] pair.  The default
   (structural [(=)] / [Hashtbl.hash]) is only correct for pure-data
   states: a state type carrying derived mutable fields (e.g.
   {!Ndlog.Store.t}'s index cache, which {!Ndlog.Store.equal} and
   {!Ndlog.Store.hash} deliberately ignore) must supply its own pair,
   or the same logical state visits once per cache configuration.
   [Hashtbl.hash] also truncates at its default depth/size limits, so
   large states would collapse into a handful of buckets and the table
   would degrade to a linear scan — a full-depth [hash] keeps lookups
   O(bucket). *)

type ('state, 'action) sys = {
  initial : 'state list;
  successors : 'state -> 'state list;
  actions : ('state -> ('action * 'state) list) option;
  independent : ('state -> 'action -> 'action -> bool) option;
  visible : ('state -> 'action -> bool) option;
  pp : 'state Fmt.t;
  equal : 'state -> 'state -> bool;
  hash : 'state -> int;
}

(* The unlabeled view every pre-reduction caller uses. *)
type 'state system = ('state, unit) sys

let default_pp ppf _ = Fmt.string ppf "<state>"

let make ?(pp = default_pp) ?(equal = ( = )) ?(hash = Hashtbl.hash) ~initial
    ~successors () =
  {
    initial;
    successors;
    actions = None;
    independent = None;
    visible = None;
    pp;
    equal;
    hash;
  }

let make_labeled ?(pp = default_pp) ?(equal = ( = )) ?(hash = Hashtbl.hash)
    ?independent ?visible ~initial ~actions () =
  {
    initial;
    successors = (fun s -> List.map snd (actions s));
    actions = Some actions;
    independent;
    visible;
    pp;
    equal;
    hash;
  }

(* Visited-state table: a hashtable keyed by the state hash, with
   bucket lists resolved by the state equality.  An optional [canon]
   maps every key to its orbit representative before hashing — the
   symmetry quotient lives here, so exploration still works with real
   states (and real traces) while the table identifies states up to
   symmetry. *)
module Table = struct
  type 'state t = {
    equal : 'state -> 'state -> bool;
    hash : 'state -> int;
    canon : 'state -> 'state;
    tbl : (int, ('state * int) list ref) Hashtbl.t;
    (* hash -> (canonical state, visitation id) bucket *)
  }

  let create ?(equal = ( = )) ?(hash = Hashtbl.hash) ?(canon = Fun.id) () =
    { equal; hash; canon; tbl = Hashtbl.create 1024 }

  let of_system ?canon (sys : ('state, 'action) sys) =
    create ~equal:sys.equal ~hash:sys.hash ?canon ()

  let find (t : 'state t) s =
    let s = t.canon s in
    match Hashtbl.find_opt t.tbl (t.hash s) with
    | None -> None
    | Some bucket ->
      List.find_opt (fun (s', _) -> t.equal s' s) !bucket |> Option.map snd

  let add (t : 'state t) s id =
    let s = t.canon s in
    let h = t.hash s in
    match Hashtbl.find_opt t.tbl h with
    | None -> Hashtbl.replace t.tbl h (ref [ (s, id) ])
    | Some bucket -> bucket := (s, id) :: !bucket

  let mem t s = find t s <> None
  let size t = Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.tbl 0
  let buckets t = Hashtbl.length t.tbl

  let max_bucket t =
    Hashtbl.fold (fun _ b acc -> max acc (List.length !b)) t.tbl 0
end

type 'state stats = {
  states : int;
  transitions : int;
  max_depth : int;
  terminal : 'state list;  (* states with no successors *)
  truncated : bool;  (* the state bound was hit *)
}

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: expand an ample subset of the enabled
   transitions instead of all of them.

   We use singleton ample sets: an action [a] may stand for the whole
   enabled set when the system's [independent] hook certifies it
   against every other enabled action.  The hook carries a strong
   contract (documented in the mli): independence must mean the two
   actions commute to the same state, never disable each other, and
   keep commuting along the pruned interleavings — which the NDlog
   transition systems satisfy by monotonicity.  Two standard provisos
   make the reduction sound for exploration and safety checking:

   - closed-set proviso (the BFS variant of the cycle condition): the
     ample successor must be new; expanding into the visited set could
     postpone the pruned siblings forever, so we fall back to full
     expansion instead;
   - visibility: when checking an invariant, the ample action must be
     invisible (unable to change the invariant's verdict), unless the
     caller declares the invariant stable — once violated, violated in
     every extension — in which case reaching the terminal fixpoint
     is enough and the condition can be dropped. *)
let expansion (sys : ('state, 'action) sys) ~por ~require_invisible visited s :
    'state list =
  match (sys.actions, sys.independent) with
  | Some actions, Some indep when por -> (
    let acts = actions s in
    match acts with
    | [] -> []
    | [ (_, s') ] -> [ s' ]
    | _ ->
      let arr = Array.of_list acts in
      let n = Array.length arr in
      let invisible a =
        (not require_invisible)
        ||
        match sys.visible with
        | None -> false (* unknown visibility: assume visible *)
        | Some vis -> not (vis s a)
      in
      let independent_of_all i a =
        let ok = ref true in
        Array.iteri (fun j (b, _) -> if j <> i && not (indep s a b) then ok := false) arr;
        !ok
      in
      let rec pick i =
        if i >= n then None
        else
          let a, s' = arr.(i) in
          if invisible a && independent_of_all i a && not (Table.mem visited s')
          then Some s'
          else pick (i + 1)
      in
      (match pick 0 with
      | Some s' -> [ s' ]
      | None -> List.map snd acts))
  | _ -> sys.successors s

(* Breadth-first exploration. *)
let explore ?(max_states = 100_000) ?(por = false) ?canon
    (sys : ('state, 'action) sys) : 'state stats =
  let visited = Table.of_system ?canon sys in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let terminal = ref [] in
  let truncated = ref false in
  let id = ref 0 in
  List.iter
    (fun s ->
      if not (Table.mem visited s) then begin
        Table.add visited s !id;
        incr id;
        Queue.push (s, 0) queue
      end)
    sys.initial;
  while not (Queue.is_empty queue) do
    let s, depth = Queue.pop queue in
    max_depth := max !max_depth depth;
    let succs = expansion sys ~por ~require_invisible:false visited s in
    transitions := !transitions + List.length succs;
    if succs = [] then terminal := s :: !terminal;
    List.iter
      (fun s' ->
        if not (Table.mem visited s') then
          if Table.size visited >= max_states then truncated := true
          else begin
            Table.add visited s' !id;
            incr id;
            Queue.push (s', depth + 1) queue
          end)
      succs
  done;
  {
    states = Table.size visited;
    transitions = !transitions;
    max_depth = !max_depth;
    terminal = List.rev !terminal;
    truncated = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Invariant checking with counterexample. *)

type 'state violation = {
  trace : 'state list;  (* from an initial state to the violating one *)
  violating : 'state;
}

let check_invariant ?(max_states = 100_000) ?(por = false) ?canon
    ?(stable = false) (sys : ('state, 'action) sys) (inv : 'state -> bool) :
    ('state stats, 'state violation) result =
  (* BFS storing parent pointers for counterexamples (shortest in the
     explored graph; a reduced graph may omit shorter interleavings). *)
  let visited = Table.of_system ?canon sys in
  let parents : (int * 'state) option array ref = ref (Array.make 1024 None) in
  let store id v =
    if id >= Array.length !parents then begin
      let bigger = Array.make (2 * Array.length !parents) None in
      Array.blit !parents 0 bigger 0 (Array.length !parents);
      parents := bigger
    end;
    !parents.(id) <- v
  in
  let queue = Queue.create () in
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let terminal = ref [] in
  let truncated = ref false in
  let id = ref 0 in
  let found = ref None in
  let violated s sid =
    found := Some (s, sid);
    raise Exit
  in
  let rebuild sid s =
    let rec go acc pid =
      match !parents.(pid) with
      | None -> acc
      | Some (pid', ps) -> go (ps :: acc) pid'
    in
    go [ s ] sid
  in
  try
    List.iter
      (fun s ->
        if not (Table.mem visited s) then begin
          Table.add visited s !id;
          store !id None;
          if not (inv s) then violated s !id;
          Queue.push (s, !id, 0) queue;
          incr id
        end)
      sys.initial;
    while not (Queue.is_empty queue) do
      let s, sid, depth = Queue.pop queue in
      max_depth := max !max_depth depth;
      let succs =
        expansion sys ~por ~require_invisible:(not stable) visited s
      in
      transitions := !transitions + List.length succs;
      if succs = [] then terminal := s :: !terminal;
      List.iter
        (fun s' ->
          if not (Table.mem visited s') then
            if Table.size visited >= max_states then truncated := true
            else begin
              Table.add visited s' !id;
              store !id (Some (sid, s));
              if not (inv s') then violated s' !id;
              Queue.push (s', !id, depth + 1) queue;
              incr id
            end)
        succs
    done;
    Ok
      {
        states = Table.size visited;
        transitions = !transitions;
        max_depth = !max_depth;
        terminal = List.rev !terminal;
        truncated = !truncated;
      }
  with Exit -> (
    match !found with
    | Some (s, sid) -> Error { trace = rebuild sid s; violating = s }
    | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Counterexample replay: check a claimed trace against the system
   itself.  Reduced searches must produce traces of real transitions —
   a trace of canonical representatives (whose steps need not be
   edges) would pass the verdict but fail here. *)

let validate_trace (sys : ('state, 'action) sys) (trace : 'state list) :
    (unit, string) result =
  match trace with
  | [] -> Error "empty trace"
  | s0 :: _ ->
    if not (List.exists (sys.equal s0) sys.initial) then
      Error "trace does not start at an initial state"
    else
      let rec steps i = function
        | s :: (s' :: _ as rest) ->
          if List.exists (sys.equal s') (sys.successors s) then
            steps (i + 1) rest
          else
            Error
              (Printf.sprintf "step %d is not an enabled successor" (i + 1))
        | _ -> Ok ()
      in
      steps 0 trace

(* ------------------------------------------------------------------ *)
(* Lasso detection. *)

type 'state lasso = {
  stem : 'state list;  (* from an initial state to the cycle entry *)
  cycle : 'state list;  (* the cycle, starting and ending implicit *)
}

(* Find a reachable cycle whose states all satisfy [within] (default:
   everything).  DFS with an explicit on-stack marker. *)
let find_lasso ?(max_states = 100_000) ?(within = fun _ -> true)
    (sys : ('state, 'action) sys) : 'state lasso option =
  let visited = Table.of_system sys in
  let result = ref None in
  let exception Found in
  let rec dfs path_on_stack s =
    if !result <> None then ()
    else if not (within s) then ()
    else if List.exists (fun s' -> sys.equal s' s) path_on_stack then begin
      (* cycle: the portion of the stack up to s *)
      let rec take acc = function
        | [] -> acc
        | x :: rest ->
          if sys.equal x s then x :: acc else take (x :: acc) rest
      in
      let cycle = take [] path_on_stack in
      result := Some { stem = []; cycle };
      raise Found
    end
    else if Table.mem visited s then ()
    else begin
      Table.add visited s 0;
      if Table.size visited > max_states then ()
      else List.iter (dfs (s :: path_on_stack)) (sys.successors s)
    end
  in
  (try List.iter (dfs []) sys.initial with Found -> ());
  !result

let validate_lasso (sys : ('state, 'action) sys) (l : 'state lasso) :
    (unit, string) result =
  match l.cycle with
  | [] -> Error "empty cycle"
  | first :: _ ->
    let chain label ss =
      let rec steps i = function
        | s :: (s' :: _ as rest) ->
          if List.exists (sys.equal s') (sys.successors s) then
            steps (i + 1) rest
          else
            Error
              (Printf.sprintf "%s step %d is not an enabled successor" label
                 (i + 1))
        | _ -> Ok ()
      in
      steps 0 ss
    in
    let stem_ok =
      match l.stem with
      | [] -> Ok () (* empty stem: cycle reachability is not re-checked *)
      | s0 :: _ ->
        if not (List.exists (sys.equal s0) sys.initial) then
          Error "stem does not start at an initial state"
        else
          Result.bind (chain "stem" l.stem) (fun () ->
              let last = List.nth l.stem (List.length l.stem - 1) in
              if List.exists (sys.equal first) (sys.successors last) then Ok ()
              else Error "cycle entry is not a successor of the stem")
    in
    Result.bind stem_ok (fun () ->
        Result.bind (chain "cycle" l.cycle) (fun () ->
            let last = List.nth l.cycle (List.length l.cycle - 1) in
            if List.exists (sys.equal first) (sys.successors last) then Ok ()
            else Error "cycle does not close"))

(* Can the system run forever while avoiding [good] states?  True iff a
   reachable cycle exists entirely within the bad region. *)
let can_avoid ?(max_states = 100_000) (sys : ('state, 'action) sys)
    ~(good : 'state -> bool) : 'state lasso option =
  find_lasso ~max_states ~within:(fun s -> not (good s)) sys
