(* The transition-system (linear-logic flavoured) view of NDlog
   execution, per Section 4.3: "view the declarative networking
   specification as a set of transition rules that determine the updates
   of the underlying routing tables".

   A state is a database ({!Ndlog.Store.t}); a transition fires one rule
   on one satisfying environment and inserts the (single) new head
   tuple.  The resulting system feeds the {!Explore} checker: safety
   invariants over table contents, divergence (for count-to-infinity,
   the state space is infinite and exploration truncates at the bound —
   truncation at ever-growing cost values is itself the symptom), and
   terminal states (fixpoints).

   For partial-order reduction the insertions are labeled with their
   read/write footprints: the write is the inserted tuple's location
   (its predicate's location column, as {!Ndlog.Shard} computes it),
   the reads are the (predicate, body location) pairs of every
   environment deriving the tuple. *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval
module Value = Ndlog.Value
module Env = Ndlog.Env
module Shard = Ndlog.Shard

(* The engine-canonical order on (pred, tuple) pairs: predicate name,
   then Value-aware tuple comparison — never polymorphic [compare],
   which is an independent structural notion of equality from the
   engine's (the same class of bug PR 1 fixed in the aggregate Kmap). *)
let insertion_compare (p1, t1) (p2, t2) =
  let c = String.compare p1 p2 in
  if c <> 0 then c else Store.Tuple.compare t1 t2

(* All single-tuple insertions enabled in [db]. *)
let enabled_insertions (p : Ast.program) (db : Store.t) :
    (string * Store.Tuple.t) list =
  List.concat_map
    (fun (r : Ast.rule) ->
      if Ast.has_aggregate r.Ast.head then []
      else
        Eval.body_envs db r.Ast.body
        |> List.filter_map (fun env ->
               let t = Eval.head_tuple env r.Ast.head in
               if Store.mem r.Ast.head.Ast.head_pred t db then None
               else Some (r.Ast.head.Ast.head_pred, t)))
    p.Ast.rules
  |> List.sort_uniq insertion_compare

(* ------------------------------------------------------------------ *)
(* Labeled actions with footprints. *)

type action = {
  pred : string;
  tuple : Store.Tuple.t;
  writes_at : Value.t option;
      (* the inserted tuple's location value; None when unlocated *)
  reads : (string * Value.t option) list;
      (* (predicate, body location) over all deriving environments; a
         None location is an unlocated read, conflicting with every
         write of that predicate *)
}

(* The location a body atom reads under a satisfying environment. *)
let atom_read env (a : Ast.atom) : string * Value.t option =
  let loc =
    match a.Ast.loc with
    | None -> None
    | Some i -> (
      match List.nth_opt a.Ast.args i with
      | None -> None
      | Some e -> ( try Some (Env.eval env e) with _ -> None))
  in
  (a.Ast.pred, loc)

let read_compare (p1, l1) (p2, l2) =
  let c = String.compare p1 p2 in
  if c <> 0 then c else Option.compare Value.compare l1 l2

module Amap = Map.Make (struct
  type t = string * Store.Tuple.t

  let compare = insertion_compare
end)

let enabled_actions (p : Ast.program) (db : Store.t) : action list =
  let locs = Shard.loc_index_map p in
  let acc = ref Amap.empty in
  List.iter
    (fun (r : Ast.rule) ->
      if not (Ast.has_aggregate r.Ast.head) then
        List.iter
          (fun env ->
            let t = Eval.head_tuple env r.Ast.head in
            let pred = r.Ast.head.Ast.head_pred in
            if not (Store.mem pred t db) then begin
              let reads = List.map (atom_read env) (Ast.body_atoms r.Ast.body) in
              let prev =
                Option.value (Amap.find_opt (pred, t) !acc) ~default:[]
              in
              acc := Amap.add (pred, t) (List.rev_append reads prev) !acc
            end)
          (Eval.body_envs db r.Ast.body))
    p.Ast.rules;
  Amap.fold
    (fun (pred, tuple) reads acts ->
      let writes_at =
        match Hashtbl.find_opt locs pred with
        | Some i when i < Array.length tuple -> Some tuple.(i)
        | _ -> None
      in
      { pred; tuple; writes_at; reads = List.sort_uniq read_compare reads }
      :: acts)
    !acc []
  |> List.rev (* ascending insertion_compare order *)

(* ------------------------------------------------------------------ *)
(* Independence.

   A negated body atom lets one insertion disable another's derivation,
   breaking the strong-commutation contract of {!Explore.make_labeled}
   in ways no local footprint test can bound (the disabling can be
   transitive through later derivations), so any negation in a
   non-aggregate rule turns independence off wholesale.  Negation-free
   insertion systems are monotone: inserting a tuple only ever adds
   satisfying environments, so distinct insertions commute to the same
   database and stay enabled — along every interleaving, which is
   exactly the contract.

   Two tests of that monotone independence:

   - [`Monotone]: distinctness alone (the full strength of the
     argument; collapses the insertion lattice to one chain);
   - [`Footprint]: additionally require the writes at distinct located
     nodes and each write disjoint from the other's read set — the
     conservative locality test of the sharding analysis.  Strictly
     weaker reduction (a write usually appears in some neighbour's
     reads), kept as the mode whose claims are justified by locality
     alone rather than by the global monotonicity argument. *)

type independence = [ `Footprint | `Monotone ]

let has_negation (p : Ast.program) =
  List.exists
    (fun (r : Ast.rule) ->
      (not (Ast.has_aggregate r.Ast.head))
      && List.exists (function Ast.Neg _ -> true | _ -> false) r.Ast.body)
    p.Ast.rules

let footprint_independent (a : action) (b : action) =
  let located_apart =
    match (a.writes_at, b.writes_at) with
    | Some la, Some lb -> not (Value.equal la lb)
    | _ -> false
  in
  let write_clear (w : action) (r : action) =
    List.for_all
      (fun (pred, loc) ->
        (not (String.equal pred w.pred))
        ||
        match (loc, w.writes_at) with
        | Some l, Some lw -> not (Value.equal l lw)
        | _ -> false)
      r.reads
  in
  located_apart && write_clear a b && write_clear b a

let action_independent ~(mode : independence) ~negation_free (a : action)
    (b : action) =
  negation_free
  && insertion_compare (a.pred, a.tuple) (b.pred, b.tuple) <> 0
  && match mode with `Monotone -> true | `Footprint -> footprint_independent a b

(* ------------------------------------------------------------------ *)
(* Systems. *)

(* State identity must be [Store.equal]/[Store.hash]: both ignore the
   store's mutable index cache, which the checker's structural defaults
   would see — a cache-warm database would then neither compare nor
   hash equal to the same database cache-cold, and every logical state
   would be visited once per cache configuration. *)
let system (p : Ast.program) : Store.t Explore.system =
  let initial = [ Store.of_facts p.Ast.facts ] in
  let successors db =
    List.map (fun (pred, t) -> Store.add pred t db) (enabled_insertions p db)
  in
  Explore.make ~pp:Store.pp ~equal:Store.equal ~hash:Store.hash ~initial
    ~successors ()

let labeled_system ?(independence = `Monotone) ?observed (p : Ast.program) :
    (Store.t, action) Explore.sys =
  let initial = [ Store.of_facts p.Ast.facts ] in
  let actions db =
    List.map (fun a -> (a, Store.add a.pred a.tuple db)) (enabled_actions p db)
  in
  let negation_free = not (has_negation p) in
  let independent _db a b =
    action_independent ~mode:independence ~negation_free a b
  in
  let visible =
    match observed with
    | None -> fun _ _ -> true (* unknown invariant support: all visible *)
    | Some preds -> fun _ (a : action) -> List.mem a.pred preds
  in
  Explore.make_labeled ~pp:Store.pp ~equal:Store.equal ~hash:Store.hash
    ~independent ~visible ~initial ~actions ()

(* A coarser system that fires all enabled insertions at once (one
   successor per state): much smaller state space, same fixpoint. *)
let batched_system (p : Ast.program) : Store.t Explore.system =
  let initial = [ Store.of_facts p.Ast.facts ] in
  let successors db =
    match enabled_insertions p db with
    | [] -> []
    | ins -> [ List.fold_left (fun db (pred, t) -> Store.add pred t db) db ins ]
  in
  Explore.make ~pp:Store.pp ~equal:Store.equal ~hash:Store.hash ~initial
    ~successors ()

(* ------------------------------------------------------------------ *)
(* Reduced entry points: both reductions independently switchable,
   default off. *)

let explore ?max_states ?(por = false) ?symmetry ?independence
    (p : Ast.program) : Store.t Explore.stats =
  let sys = labeled_system ?independence p in
  let canon = Option.map Symmetry.canon_store symmetry in
  Explore.explore ?max_states ~por ?canon sys

let check_fine_invariant ?max_states ?(por = false) ?symmetry ?independence
    ?observed ?stable (p : Ast.program) (inv : Store.t -> bool) :
    (Store.t Explore.stats, Store.t Explore.violation) result =
  let sys = labeled_system ?independence ?observed p in
  let canon = Option.map Symmetry.canon_store symmetry in
  Explore.check_invariant ?max_states ~por ?canon ?stable sys inv

(* Check a safety invariant over every reachable database. *)
let check_table_invariant ?max_states (p : Ast.program)
    (inv : Store.t -> bool) =
  Explore.check_invariant ?max_states (batched_system p) inv
