(** Model checking soft-state protocols: Sections 4.2 and 4.3 of the
    paper combined — soft-state semantics expressed as a transition
    system "to directly produce system models for model checking
    tools".

    States couple a database with a discrete clock and the leases of
    soft tuples; transitions are single rule-consequence insertions and
    clock ticks (which expire leases and apply the environment's
    injections).  The clock horizon keeps the space finite, so safety
    properties can quantify over time.

    Both checker reductions are wired in: symmetry permutes lease
    states jointly with their nodes ({!canon_state}), and the labeled
    system carries derivation footprints for partial-order reduction —
    though a tick commutes with nothing (it shifts the lease a
    subsequent insertion would take, and can expire premises), so POR
    only reduces the derivation interleavings between ticks; symmetry
    is the effective reduction here. *)

type lease = (string * Ndlog.Store.Tuple.t) * int
(** A leased tuple and its expiry instant. *)

type state = {
  clock : int;
  db : Ndlog.Store.t;
  leases : lease list;  (** sorted (canonical) *)
}

val initial_state : state

val lease_compare : lease -> lease -> int
(** Engine-canonical: predicate, {!Ndlog.Store.Tuple.compare}, expiry
    — never polymorphic [compare]. *)

val state_equal : state -> state -> bool
val state_compare : state -> state -> int
val state_hash : state -> int

type config = {
  program : Ndlog.Ast.program;
  horizon : int;  (** maximal clock value explored *)
  inject : int -> (string * Ndlog.Store.Tuple.t) list;
      (** external insertions occurring at each instant (refreshes,
          pings, failures-as-silence) *)
  lifetimes : (string * int) list;
}

val make_config :
  ?horizon:int ->
  ?inject:(int -> (string * Ndlog.Store.Tuple.t) list) ->
  Ndlog.Ast.program ->
  config
(** Lifetimes come from the program's [materialize] declarations. *)

val insert : config -> state -> string -> Ndlog.Store.Tuple.t -> state
(** Insert with lease bookkeeping (re-insertion refreshes). *)

val tick : config -> state -> state
(** Advance the clock, expire leases, apply injections. *)

val system : config -> state Explore.system

(** A labeled transition: one derivation (with its {!Ndlog_ts}
    footprint) or the clock tick. *)
type action =
  | Derive of Ndlog_ts.action
  | Tick

val labeled_system :
  ?independence:Ndlog_ts.independence ->
  ?observed:string list ->
  config ->
  (state, action) Explore.sys
(** Derivations are independent of each other per
    {!Ndlog_ts.action_independent}; ticks of nothing.  [observed] is
    the POR visibility hook: the caller asserts its invariant reads
    only the clock, the observed predicates, and their leases (ticks
    are always visible). *)

val apply_perm : Symmetry.perm -> state -> state
(** A node permutation acting on the database and leases jointly (the
    clock is fixed). *)

val canon_state : Symmetry.t -> state -> state
(** Orbit representative of a state under {!apply_perm}. *)

val explore :
  ?max_states:int ->
  ?por:bool ->
  ?symmetry:Symmetry.t ->
  ?independence:Ndlog_ts.independence ->
  config ->
  state Explore.stats
(** Exploration with both reductions switchable (default off). *)

val check :
  ?max_states:int ->
  ?por:bool ->
  ?symmetry:Symmetry.t ->
  ?independence:Ndlog_ts.independence ->
  ?observed:string list ->
  ?stable:bool ->
  config ->
  (state -> bool) ->
  (state Explore.stats, state Explore.violation) result
(** Clock-indexed safety over all reachable states.  Reductions as in
    {!Ndlog_ts.check_fine_invariant}: a symmetric invariant for
    [?symmetry], visibility via [?observed] or stability via [?stable]
    for [?por]. *)
