(** A small explicit-state model checker (the paper's Section 4.3:
    "leverage such transition system representation to directly
    interface with model checkers").

    Works over any transition system given as initial states plus a
    successor function.  State identity is the system's [equal]/[hash]
    pair; the structural default ([(=)] / [Hashtbl.hash]) is only
    correct for small pure-data states — a state type with derived
    mutable fields (e.g. {!Ndlog.Store.t}'s index cache, ignored by
    {!Ndlog.Store.equal}/{!Ndlog.Store.hash}) must supply its own pair
    or the same logical state is visited once per cache configuration,
    and [Hashtbl.hash]'s depth/size truncation collapses large states
    into a few buckets.

    Two reductions, both off by default so plain callers are untouched:

    - {e partial-order reduction} ([~por]) over systems built with
      {!make_labeled}, which exposes successor generation as labeled
      actions plus an [independent] hook;
    - {e symmetry reduction} ([~canon]), which canonicalizes every
      visited-table key (e.g. {!Symmetry.canon_store} minimizes over
      topology-automorphism orbits) so symmetric states are explored
      once.  Exploration itself works with real states, so traces
      remain real executions. *)

type ('state, 'action) sys = {
  initial : 'state list;
  successors : 'state -> 'state list;
  actions : ('state -> ('action * 'state) list) option;
      (** labeled successor generation ({!make_labeled}); agrees with
          [successors] *)
  independent : ('state -> 'action -> 'action -> bool) option;
      (** strong independence (see {!make_labeled}) *)
  visible : ('state -> 'action -> bool) option;
      (** can the action change an invariant's verdict? *)
  pp : 'state Fmt.t;
  equal : 'state -> 'state -> bool;  (** state identity *)
  hash : 'state -> int;  (** must agree with [equal] *)
}

type 'state system = ('state, unit) sys
(** The unlabeled view: every system built with {!make}. *)

val make :
  ?pp:'state Fmt.t ->
  ?equal:('state -> 'state -> bool) ->
  ?hash:('state -> int) ->
  initial:'state list ->
  successors:('state -> 'state list) ->
  unit ->
  'state system

val make_labeled :
  ?pp:'state Fmt.t ->
  ?equal:('state -> 'state -> bool) ->
  ?hash:('state -> int) ->
  ?independent:('state -> 'action -> 'action -> bool) ->
  ?visible:('state -> 'action -> bool) ->
  initial:'state list ->
  actions:('state -> ('action * 'state) list) ->
  unit ->
  ('state, 'action) sys
(** A system whose successors are labeled with actions, enabling
    partial-order reduction.

    [independent s a b] carries a strong contract: whenever both
    actions are enabled, executing them in either order must reach the
    same state, neither may disable the other, and the claim must keep
    holding along the interleavings the reduction prunes (for the NDlog
    systems this follows from monotonicity: insertions only ever add
    satisfying environments).  A hook that over-claims independence
    makes the reduction unsound; when in doubt, answer [false] — the
    checker then simply explores more.

    [visible s a] must answer [true] whenever [a] could change the
    verdict of an invariant the caller intends to check; omitting it
    makes every action visible, so [~por] invariant checking performs
    no reduction (exploration is still reduced). *)

(** The visited-state table: a hashtable keyed by the state hash, with
    bucket lists resolved by the state equality.  Exposed for tests
    that check the bucket distribution of a state hash.  The optional
    [canon] maps keys to orbit representatives before hashing — the
    symmetry quotient as an alternative [equal]/[hash] on the table. *)
module Table : sig
  type 'state t

  val create :
    ?equal:('state -> 'state -> bool) ->
    ?hash:('state -> int) ->
    ?canon:('state -> 'state) ->
    unit ->
    'state t

  val of_system : ?canon:('state -> 'state) -> ('state, 'action) sys -> 'state t
  val find : 'state t -> 'state -> int option
  val add : 'state t -> 'state -> int -> unit
  val mem : 'state t -> 'state -> bool
  val size : 'state t -> int

  val buckets : 'state t -> int
  (** Distinct hash values present. *)

  val max_bucket : 'state t -> int
  (** Size of the fullest bucket (states sharing one hash). *)
end

(** Reachability statistics. *)
type 'state stats = {
  states : int;
  transitions : int;
  max_depth : int;
  terminal : 'state list;  (** reachable states with no successors *)
  truncated : bool;  (** the state bound was hit *)
}

val explore :
  ?max_states:int ->
  ?por:bool ->
  ?canon:('state -> 'state) ->
  ('state, 'action) sys ->
  'state stats
(** Breadth-first exploration (default bound 100_000 states).

    [~por:true] (labeled systems only) expands a singleton ample set
    where an enabled action is independent of every other enabled
    action, subject to the closed-set proviso (the ample successor must
    be new, else full expansion) — one representative interleaving of
    commuting transitions.  Terminal states are preserved.

    [~canon] quotients the visited table: states equal up to [canon]
    are explored once.  Terminal states and counts are then per orbit
    representative. *)

(** An invariant violation with its witness. *)
type 'state violation = {
  trace : 'state list;  (** from an initial state to the violation *)
  violating : 'state;
}

val check_invariant :
  ?max_states:int ->
  ?por:bool ->
  ?canon:('state -> 'state) ->
  ?stable:bool ->
  ('state, 'action) sys ->
  ('state -> bool) ->
  ('state stats, 'state violation) result
(** Safety checking by BFS with parent pointers: counterexample traces
    are shortest in the explored graph (a reduced graph may omit
    shorter interleavings, so reduced traces can be longer than the
    plain checker's).

    Under [~por], an ample action must additionally be {e invisible}
    (per the system's [visible] hook) so pruned interleavings cannot
    hide a verdict change — unless [~stable:true] declares the
    invariant stable (once violated, violated in every extension, e.g.
    "no tuple with cost above the bound" in a system that only inserts
    tuples), which lets every action be ample: reaching the terminal
    fixpoint then decides the verdict.

    Under [~canon], the invariant must be symmetric (closed under the
    canonicalization's group): orbits are explored through one
    representative, so an asymmetric invariant could miss its
    violating member. *)

val validate_trace :
  ('state, 'action) sys -> 'state list -> (unit, string) result
(** Replay a claimed counterexample: the first state must be initial
    (up to the system's [equal]) and every step an enabled successor of
    its predecessor.  Reduced searches must still produce real
    executions — this is the harness's check that they do. *)

(** A reachable cycle: witness of a possible non-terminating run. *)
type 'state lasso = {
  stem : 'state list;  (** may be empty (not reconstructed) *)
  cycle : 'state list;
}

val find_lasso :
  ?max_states:int ->
  ?within:('state -> bool) ->
  ('state, 'action) sys ->
  'state lasso option
(** A reachable cycle whose states all satisfy [within] (DFS with an
    on-stack marker). *)

val validate_lasso :
  ('state, 'action) sys -> 'state lasso -> (unit, string) result
(** Replay a lasso: consecutive stem and cycle states must be enabled
    successors and the cycle must close.  An empty stem (as
    {!find_lasso} returns) skips the reachability check. *)

val can_avoid :
  ?max_states:int ->
  ('state, 'action) sys ->
  good:('state -> bool) ->
  'state lasso option
(** Can the system run forever avoiding [good] states?  [Some lasso]
    witnesses yes (the oscillation detector of experiment E9). *)
