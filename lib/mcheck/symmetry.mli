(** Symmetry reduction for the model checker: quotient the visited
    table by the automorphism group of the network topology.

    A state is canonicalized by minimizing ({!Ndlog.Store.compare})
    over its node-permutation orbit, so symmetric states share one
    table entry — an alternative equal/hash pair on
    {!Explore.Table} ([~canon] wires it in).  The group is handled by
    generators (never enumerated): orbits are closed breadth-first
    under the generators up to a cap, which is exact for the small
    dihedral groups of rings and grids; huge groups (a star's leaves
    carry a full symmetric group) hit the cap and finish with greedy
    descent — still inside the orbit, so the quotient stays sound and
    merely coarser splits cost reduction, never correctness.

    Node identity is the {!Ndlog.Value.Addr} sort: permutations rename
    addresses deeply (path-vector lists permute with their nodes) and
    leave the other sorts alone.  Invariants checked under the
    quotient must themselves be symmetric. *)

type perm = (string * string) list
(** A node permutation as an association list; unlisted names are
    fixed. *)

type t
(** A generated symmetry group (generators plus an orbit cap). *)

val of_generators : ?cap:int -> perm list -> t
(** Identity generators are dropped.  [cap] (default 4096) bounds the
    orbit members expanded during canonicalization. *)

val of_topology : ?cap:int -> Netsim.Topology.t -> t
(** The group spanned by
    {!Netsim.Topology.automorphism_generators}. *)

val generators : t -> perm list

val trivial : t -> bool
(** No non-identity generators: canonicalization is the identity. *)

val apply_name : perm -> string -> string
val apply_value : perm -> Ndlog.Value.t -> Ndlog.Value.t
val apply_tuple : perm -> Ndlog.Store.Tuple.t -> Ndlog.Store.Tuple.t
val apply_store : perm -> Ndlog.Store.t -> Ndlog.Store.t

val canonicalize :
  t ->
  apply:(perm -> 'a -> 'a) ->
  compare:('a -> 'a -> int) ->
  hash:('a -> int) ->
  equal:('a -> 'a -> bool) ->
  'a ->
  'a
(** Generic orbit minimization, for state types wrapping a store
    (e.g. {!Soft_ts.state}, whose leases permute jointly with the
    database). *)

val canon_store : t -> Ndlog.Store.t -> Ndlog.Store.t
(** The orbit representative: minimal over the closed orbit (exact
    when the orbit fits the cap, a sound approximation otherwise). *)

val store_equal : t -> Ndlog.Store.t -> Ndlog.Store.t -> bool
(** Orbit equality: [canon_store] images are {!Ndlog.Store.equal}. *)

val store_hash : t -> Ndlog.Store.t -> int
(** Hash of the orbit representative; agrees with {!store_equal}. *)
