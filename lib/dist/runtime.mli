(** Distributed NDlog execution (the P2 substitute; arc 7 of the
    paper's Figure 1).

    Every simulator node runs the same {e localized} program
    ({!Ndlog.Localize}) over its own tuple store.  Execution is
    pipelined semi-naive: inserting a tuple triggers the rules reading
    its predicate with the new tuple as the delta; derived heads
    located at the executing node recurse locally, heads located
    elsewhere become network messages.

    Message deliveries drain through a per-node inbox: every delivery
    landing at the same simulated instant is buffered and flushed
    together, so each triggered strand runs once with the full
    per-predicate delta (the batched join's group-at-a-time savings on
    the wire path).  [~batch_inbox:false] restores the per-message
    runtime; both modes compute identical fixpoints, per-node stores,
    and insertion counts (qcheck property in the dist test suite).

    Aggregate strata are maintained as locally refreshed views, so
    non-monotonic updates (a better best-path displacing a worse one)
    are handled by replacement rather than distributed deletion; view
    tuples located at other nodes ship as inserts, each tuple once (a
    per-(node, predicate) shipped set suppresses redelivery), and
    persist at the receiver until their own lease lapses; soft view
    tuples are re-shipped at half-lifetime cadence for as long as the
    source still derives them, so their remote copies stay leased
    while supported and expire once support is gone.  Programs
    whose remote-shipped view tuples are hard state but could be
    non-monotonically withdrawn (soft-state or negation-dependent
    support) are rejected at {!create}.  Soft-state tuples expire per
    their [materialize] lifetimes, with leases refreshed on
    re-insertion.

    View refresh is {e incremental} by default: each node tracks its
    dirty base predicates (those whose relations changed since its last
    refresh — marked by local insertions, inbox flushes, and expiry
    sweeps), and a refresh walks the view program's refresh strata
    ({!Ndlog.Eval.refresh_strata}) bottom-up, skipping strata whose
    transitive support saw no dirty predicate, seeding plain strata
    with their previous relations plus the support deltas
    ({!Ndlog.Plan.refresh_stratum}), and recomputing from scratch
    strata with aggregates or negation, or whose support lost tuples.
    Skips and fallbacks are counted ([strata_skipped] /
    [refresh_fallbacks]).  [~incremental_views:false] (or environment
    variable [FVN_INCREMENTAL_VIEWS=0]) restores the from-scratch
    refresh, kept as the differential oracle: both modes produce
    bit-identical node stores, fixpoints, message traces, and lease
    tables (qcheck property in the dist test suite). *)

(** A tuple on the wire (defined in {!Wire}, re-exported here).
    [tuple] is always the canonical boxed form; [ids] carries the flat
    (interned-id) payload when the sender runs id-natively, so the
    receiver inserts without re-probing the intern table — in-process
    only: cross-process frames drop it at encode (id spaces are
    per-process). *)
type msg = Wire.msg = {
  pred : string;
  tuple : Ndlog.Store.Tuple.t;
  ids : int array option;
}

type t

exception Not_localized of string

(** Why a program's remote-located view head cannot be supported:
    its (hard-state) tuples could be withdrawn at the deriving node
    with no way to delete the already-shipped remote copies. *)
type rv_cause =
  | Soft_dependency of string
      (** a soft-state predicate in the view's support can expire *)
  | Negation_dependency of string
      (** a negation in the view's support can flip as tuples arrive *)

type remote_view_error = {
  rv_pred : string;  (** the offending view head predicate *)
  rv_rule : string;  (** the rule shipping it *)
  rv_cause : rv_cause;
}

exception Remote_view_deletion of remote_view_error

val pp_remote_view_error : remote_view_error Fmt.t

exception
  Missing_tuple_location of {
    mtl_pred : string;
    mtl_tuple : Ndlog.Store.Tuple.t;
  }
(** Internal invariant violation: a view tuple reached a ship path
    (refresh shipping or lease renewal) without a resolvable location.
    The ship paths only ever see tuples already filtered on a resolved
    owner, so this is unreachable for well-formed programs — raised
    instead of a bare [Option.get] so a violation names the predicate
    and tuple. *)

val create :
  ?seed:int ->
  ?batch_inbox:bool ->
  ?incremental_views:bool ->
  ?tuple_ids:bool ->
  ?transport:Transport.t ->
  ?hosted:string list ->
  Netsim.Topology.t ->
  Ndlog.Ast.program ->
  t
(** [batch_inbox] (default [true]) drains each node's same-instant
    message deliveries as one batch per triggered strand; [false] is
    the per-message baseline.
    [transport] is where messages, timers, and the clock live: by
    default a fresh virtual-clock simulator over [topo]
    ({!Transport.of_sim} — bit-identical to the pre-transport runtime),
    or a socket reactor ({!Socket.transport}) when this runtime is one
    process of a multi-process run.  [seed] seeds the default
    simulator and is ignored when [transport] is given.
    [hosted] restricts this runtime to a subset of the topology's
    nodes (default: all of them).  Only hosted nodes get stores,
    handlers, fact loads, and view-refresh walks; messages to
    non-hosted nodes go out through the transport.
    [incremental_views] selects the view refresh mode (default: [true],
    unless environment variable [FVN_INCREMENTAL_VIEWS] is set to [0],
    [false], [no], or [off] — the hook the test suite's oracle pass
    uses).
    [tuple_ids] selects id-native evaluation (default: [true], unless
    environment variable [FVN_TUPLE_IDS] is set to [0], [false], [no],
    or [off]): node stores are flat id-tuple databases
    ({!Ndlog.Flat}), strands run through the id-native executor
    ({!Ndlog.Ideval}), and messages carry flat payloads; [false] is
    the boxed-value oracle.  Both modes produce identical fixpoints,
    node stores, message traces, lease tables, and join statistics
    (qcheck property in the dist test suite).
    @raise Not_localized when some rule body spans locations (run
    {!Ndlog.Localize.rewrite_program} first).
    @raise Remote_view_deletion when a hard-state view head is shipped
    away from its deriving node but its support can shrink
    non-monotonically (soft-state or negation dependence).
    @raise Invalid_argument on analysis failure. *)

val load_facts : t -> unit
(** Schedule the program's facts for insertion at their owning nodes at
    time zero (unlocated facts broadcast, in sorted node order). *)

val insert : t -> string -> string -> Ndlog.Store.Tuple.t -> unit
(** [insert t node pred tuple]: immediate local insertion.  (Message
    deliveries go through the inbox instead when [batch_inbox] is
    on.) *)

type run_report = {
  stats : Netsim.Sim.stats;
  total_inserts : int;  (** local tuple insertions across all nodes *)
  eval_stats : Ndlog.Eval.stats;
      (** join profile of the whole run: strand execution and view
          refresh counted through {!Ndlog.Eval.stats} *)
  wire_stats : Ndlog.Eval.stats;
      (** the strand-path share of [eval_stats] — inbox flushes and
          local recursion, excluding view refreshes;
          [wire_stats.delta_tuples / wire_stats.groups] is the mean
          delta-group size the inbox batching achieved *)
  view_stats : Ndlog.Eval.stats;
      (** the view-refresh share of [eval_stats]; under incremental
          refresh, [view_stats.strata_skipped] counts untouched strata
          skipped outright and [view_stats.refresh_fallbacks] counts
          touched strata recomputed from scratch (aggregates, negation,
          or deletions in support) *)
}

val run : ?until:float -> ?max_events:int -> t -> run_report

val global_store : t -> Ndlog.Store.t
(** Union of all node stores: the global database the distributed
    execution computed (comparable against the centralized
    evaluator). *)

val node_store : t -> string -> Ndlog.Store.t

val total_inserts : t -> int
(** Local tuple insertions across hosted nodes since {!create} (the
    cumulative form of {!run_report}'s per-run field — what a worker
    reports in its quiescence {!Wire.status}). *)

val dirty_preds : t -> string -> string list
(** The node's currently dirty base predicates (sorted) — empty right
    after a refresh, and always empty when incremental refresh is off.
    Introspection for the dirty-set lifecycle tests. *)

val node_leases : t -> string -> ((string * Ndlog.Store.Tuple.t) * float) list
(** The node's soft-state lease table (key-sorted, with deadlines) —
    compared across refresh modes by the differential harness. *)

val incremental : t -> bool
(** Whether this runtime refreshes views incrementally. *)

val tuple_ids : t -> bool
(** Whether this runtime evaluates id-natively. *)

val refresh_seconds : t -> float
(** Cumulative wall-clock seconds spent in view-refresh walks since
    {!create} — the refresh-cost share the churn benchmark reports. *)

val refresh_walks : t -> int
(** Number of view-refresh walks performed since {!create}. *)

val simulator : t -> msg Netsim.Sim.t
(** The backing simulator — failure injection and tracing hooks for
    tests and benchmarks.
    @raise Invalid_argument when the runtime rides a non-simulator
    transport (sockets have no virtual clock to script). *)
