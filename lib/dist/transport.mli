(** The runtime's view of "the network".

    {!Runtime} routes every message, timer, and clock read through one
    of these, so the same runtime hosts nodes inside the deterministic
    virtual-clock simulator ({!of_sim}, the default) or over real
    sockets between real OS processes ({!Socket.transport}) without
    changing a line of protocol logic.

    A record of closures rather than a functor: {!Runtime.t} stays
    monomorphic and the backend is chosen per instance at runtime. *)

type t = {
  now : unit -> float;
      (** the backend's clock — virtual seconds for the simulator,
          epoch-relative wall-clock seconds for sockets *)
  send : src:string -> dst:string -> Wire.msg -> bool;
      (** route one message; [false] means dropped (no live link) *)
  schedule : delay:float -> (unit -> unit) -> unit;
      (** run a callback [delay] clock units from now *)
  set_handler :
    string -> (self:string -> src:string -> Wire.msg -> unit) -> unit;
      (** register the delivery handler for a hosted node *)
  run : until:float -> max_events:int -> Netsim.Sim.stats;
      (** drive the backend until quiescence or a limit; all counters
          in the returned stats are per-run *)
  sim : Wire.msg Netsim.Sim.t option;
      (** the underlying simulator when there is one — failure
          injection and tracing are simulator-only affordances *)
}

val of_sim : Wire.msg Netsim.Sim.t -> t
(** The in-process backend: every closure delegates straight to
    {!Netsim.Sim}, so a runtime on this transport is bit-identical to
    the pre-transport code path (same event order, same trace, same
    stats). *)
