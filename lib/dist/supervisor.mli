(** The node supervisor: one OS process per topology node, wired over
    Unix-domain sockets.

    {!run} forks a worker per node.  Workers host their node in a
    {!Runtime} over the {!Socket} transport, connected by a
    pre-created [socketpair] full mesh (no listeners, no connect
    races); the program and topology reach them through the fork's
    heap, so nothing is serialized to start a run — only tuples cross
    process boundaries afterwards, in canonical boxed form
    ({!Wire}).

    Convergence is detected by a quiescence poll over per-worker
    control channels: the run is converged when two consecutive polls
    return identical snapshots in which every worker is idle and
    Σ sent = Σ received across workers (an in-flight frame makes the
    sums differ).  Sound for terminating (hard-state) programs; a
    soft-state program with perpetual renewal timers never quiesces in
    wall-clock time — run those on the simulator backend.  Every
    control read is bounded by [read_timeout], so a dead or hung
    worker fails the run with {!Wire.Frame_error} [Read_timeout]
    instead of hanging it. *)

type result = {
  stores : (string * Ndlog.Store.t) list;
      (** per node, the final fixpoint (re-interned supervisor-side) —
          directly comparable against {!Runtime.node_store} of a
          simulator-backed run on the same topology and program *)
  wall_seconds : float;  (** fork to detected convergence *)
  data_frames : int;
      (** cross-process data frames, summed over workers *)
  data_bytes : int;  (** their wire bytes, length prefixes included *)
  total_inserts : int;  (** tuple insertions, summed over workers *)
  polls : int;  (** quiescence polls until convergence *)
  workers : int;
}

exception Convergence_timeout of { polls : int; last : Wire.status list }
(** [max_polls] snapshots went by without two consecutive stable ones:
    the program is still making progress (or never terminates). *)

val run :
  ?read_timeout:float ->
  ?poll_interval:float ->
  ?max_polls:int ->
  Netsim.Topology.t ->
  Ndlog.Ast.program ->
  result
(** Run [program] (localized; see {!Runtime.create}) to quiescence
    across one process per node of [topo].  [read_timeout] (default
    10s) bounds every control-channel read; [poll_interval] (default
    20ms) spaces quiescence polls; [max_polls] (default 500) bounds
    the convergence wait.
    @raise Invalid_argument on fewer than two nodes.
    @raise Convergence_timeout when the poll budget runs out.
    @raise Wire.Frame_error when a worker dies or hangs. *)
