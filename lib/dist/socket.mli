(** The Unix-domain-socket transport backend.

    One reactor per OS process: it hosts a subset of the topology's
    nodes, speaks {!Wire} frames to peer processes over pre-connected
    stream sockets, runs a wall-clock timer queue (reusing
    {!Netsim.Event_queue} with epoch-relative times), and decodes
    incrementally per connection — partial reads and many-frames-per-
    read both work.

    Send is topology-gated exactly as the simulator's: no live
    [src -> dst] link means a counted drop, never a write, so
    localized programs see simulation connectivity.  Link {e loss}
    probability is not simulated — the socket wire is reliable.

    Arriving tuples are re-interned at this boundary (id spaces are
    per-process); in-process deliveries between co-hosted nodes loop
    back through a zero-delay timer and keep their payload unserialized. *)

type t

val create :
  topo:Netsim.Topology.t ->
  hosted:string list ->
  peers:(string * Unix.file_descr) list ->
  ?control:Unix.file_descr ->
  unit ->
  t
(** [create ~topo ~hosted ~peers ?control ()]: a reactor hosting
    [hosted], with [peers] mapping each foreign node to the (already
    connected) socket of the process hosting it — several nodes may
    share one socket.  [control] attaches the supervisor channel:
    frames other than [Data] arriving anywhere are handed to
    {!serve}'s [on_control]. *)

val transport : t -> Transport.t
(** The {!Transport} closure set over this reactor.  Its [run] drives
    timers and data traffic until locally idle, a wall deadline, or an
    event budget — self-contained single-process use.  Workers under a
    {!Supervisor} use {!serve} instead. *)

val serve : t -> on_control:(Wire.frame -> unit) -> unit
(** The worker main loop: alternate due timers with [select] rounds
    until {!stop}.  Non-[Data] frames go to [on_control] (a [Bye]
    handler there should call {!stop}).  A peer closing mid-frame
    raises {!Wire.Frame_error} [Truncated_stream]; clean EOF retires
    the connection. *)

val stop : t -> unit

val idle : t -> bool
(** No pending timers and no partially decoded input — this reactor
    will do nothing more unless a peer writes.  One conjunct of the
    quiescence protocol ({!Supervisor}). *)

val now : t -> float
(** Epoch-relative wall-clock seconds. *)

val sent : t -> int
(** Data frames written to peers so far. *)

val received : t -> int
(** Data frames dispatched so far. *)

val bytes_out : t -> int
(** Data bytes written to peers so far. *)
