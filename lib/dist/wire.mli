(** Binary wire framing for the cross-process transport.

    Frame = 4-byte big-endian length prefix + tagged body.  Values
    travel in canonical {e boxed} form: interned-id spaces are
    per-process, so flat payloads are meaningless across a process
    boundary — the receiver re-interns at its own boundary
    ({!Socket}).  The in-process simulator transport never serializes
    and keeps the id-native fast path.

    Value encoding (tag byte + payload): [0] Int (8-byte big-endian),
    [1] Str (u32 length + bytes), [2] Bool (byte), [3] Addr (u32
    length + bytes), [4] List (u32 count + values).  Tuples are a u32
    count followed by values; strings are u32 length + bytes. *)

(** A tuple on the wire between nodes.  [tuple] is always the
    canonical boxed form; [ids] carries the flat (interned-id) payload
    when sender and receiver share a process (the simulator
    transport), and is dropped at the process boundary. *)
type msg = {
  pred : string;
  tuple : Ndlog.Store.Tuple.t;
  ids : int array option;
}

(** A worker's self-report, the quiescence protocol's raw material
    (see {!Supervisor}). *)
type status = {
  st_idle : bool;  (** no pending timers, no partially decoded input *)
  st_sent : int;  (** data frames written to peers so far *)
  st_received : int;  (** data frames dispatched so far *)
  st_bytes : int;  (** data bytes written to peers so far *)
  st_inserts : int;  (** local tuple insertions so far *)
}

type frame =
  | Data of {
      src : string;
      dst : string;
      pred : string;
      tuple : Ndlog.Store.Tuple.t;
    }  (** a routed tuple between nodes *)
  | Poll  (** supervisor -> worker: report your status *)
  | Status of status  (** worker -> supervisor: the reply *)
  | Dump  (** supervisor -> worker: send your node stores *)
  | Store_dump of (string * (string * Ndlog.Store.Tuple.t list) list) list
      (** worker -> supervisor: per hosted node, per predicate, the
          tuples — the final fixpoint compared against the simulated
          oracle *)
  | Bye  (** supervisor -> worker: drain and exit *)

type error =
  | Oversized_frame of int  (** declared length beyond {!max_frame} *)
  | Truncated_stream  (** EOF inside a frame, or short body *)
  | Bad_tag of int  (** unknown frame or value tag *)
  | Read_timeout  (** no frame within the deadline: dead peer *)

exception Frame_error of error

val pp_error : error Fmt.t

val max_frame : int
(** Upper bound on a declared body length; larger prefixes are treated
    as corruption ({!Oversized_frame}), not allocated. *)

val encode : frame -> bytes
(** The frame's full wire form, length prefix included. *)

(** Incremental decoder: feed chunks as the socket delivers them, pop
    complete frames as they become available.  A frame split across
    many reads and many frames in one read both work. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> int -> unit
  (** [feed d buf off len] appends a received chunk. *)

  val next : t -> frame option
  (** The next complete frame, consumed from the buffer; [None] while
      incomplete.
      @raise Frame_error on oversized or malformed input. *)

  val buffered : t -> int
  (** Bytes buffered but not yet consumed — nonzero inside a partial
      frame (EOF here is a truncated stream). *)
end

val write_frame : Unix.file_descr -> frame -> int
(** Write the whole frame, looping over partial writes; returns bytes
    written. *)

val read_frame : ?timeout:float -> Unix.file_descr -> frame
(** Read exactly one frame, blocking at most [timeout] seconds
    (default 10) of wall-clock across the whole frame.
    @raise Frame_error [Read_timeout] when the deadline passes —
    a dead peer fails the run rather than hanging it — and
    [Truncated_stream] when the peer closes mid-frame. *)
