(* Distributed NDlog execution (the P2 substitute, arc 7 of Figure 1).

   Every simulator node runs the same localized program over its own
   tuple store.  Execution is pipelined semi-naive through compiled
   dataflow strands (the Click execution model, {!Ndlog.Plan}):
   inserting a tuple runs the strands triggered by its predicate with
   the new tuple as the delta; derived heads located at the executing
   node recurse locally, heads located elsewhere become network
   messages.

   Message deliveries are batched through a per-node inbox: the handler
   buffers the tuple and schedules a zero-delay flush, so every
   delivery landing at the same simulated instant drains together and
   each triggered strand runs once with the full per-predicate delta
   (realizing the batched join's group-at-a-time savings on the wire
   path).  The per-message runtime survives behind [~batch_inbox:false]
   as the equivalence baseline.

   Aggregate strata are maintained as local views: whenever the local
   store changes, aggregate rules (and the local rules downstream of
   them) are re-derived and their relations replaced, so non-monotonic
   updates (a better best-path displacing a worse one) are handled by
   view refresh rather than by distributed deletion.

   View refresh is incremental by default ([~incremental_views:true]):
   each node tracks its *dirty* base predicates — those whose relations
   changed since its last refresh, marked by local insertions, the
   inbox flush path, and expiry sweeps — and a refresh walks the view
   program's refresh strata ({!Ndlog.Eval.refresh_strata}) bottom-up,
   skipping every stratum whose transitive support saw no dirty
   predicate (its previous relations are still exact), seeding plain
   strata with their previous relations plus the support deltas
   (delta-driven re-derivation through {!Ndlog.Plan.refresh_stratum}),
   and falling back to from-scratch recomputation for strata with
   aggregates or negation, or whose support lost tuples — all
   non-monotone under seeding.  Skips and fallbacks are counted
   ([strata_skipped] / [refresh_fallbacks] in {!Ndlog.Eval.stats}).
   [~incremental_views:false] restores the from-scratch refresh, kept
   as the differential oracle: both modes produce bit-identical node
   stores, fixpoints, message traces, and lease tables (qcheck property
   in the dist test suite).
   View tuples located at other nodes are shipped as inserts — each
   tuple once, against a per-(node, predicate) shipped set — and kept
   at the receiver until their own lease lapses; remote view deletion
   is not supported (none of the paper's programs need it), and
   [check_remote_views] rejects hard-state programs that would require
   it.

   Prerequisite: the program must be localized ({!Ndlog.Localize}) —
   every rule body reads a single location. *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval
module Env = Ndlog.Env
module Analysis = Ndlog.Analysis
module Value = Ndlog.Value
module Softstate = Ndlog.Softstate
module Intern = Ndlog.Intern
module Flat = Ndlog.Flat
module Fset = Flat.Fset
module Ideval = Ndlog.Ideval
module Sset = Ast.Sset

(* The message type lives in {!Wire} (the framing layer needs it);
   re-exported here so existing users keep reading [Runtime.msg]. *)
type msg = Wire.msg = {
  pred : string;
  tuple : Store.Tuple.t;
  (* The flat payload when the sender runs id-natively: the receiver
     inserts by ids without re-probing the intern table.  [tuple] is
     always the canonical boxed form — traces and debugging read it.
     In-process only: cross-process frames drop it at encode (id
     spaces are per-process; see {!Wire}). *)
  ids : int array option;
}

type node_state = {
  name : string;
  mutable store : Store.t;
  mutable expiry : Softstate.Expiry.t;
  mutable inserts : int;  (* local tuple insertions *)
  (* Pending message deliveries, newest first; drained in arrival order
     by [flush]. *)
  mutable inbox : (string * Store.Tuple.t * int array option) list;
  mutable flush_scheduled : bool;
  (* View tuples shipped in from other nodes: preserved across local
     view refreshes (the local recomputation cannot re-derive them) and
     pruned by soft-state expiry. *)
  mutable received : Store.t;
  (* Remote-located view tuples already shipped, per predicate: view
     refreshes send only the diff. *)
  shipped : (string, Store.Tset.t) Hashtbl.t;
  (* Soft view predicates with a pending lease-renewal timer (see
     [ensure_renewal]). *)
  renewing : (string, unit) Hashtbl.t;
  (* Dirty-predicate tracking for incremental view refresh (only
     maintained when [incremental_views] is on).  Invariant at every
     refresh: a base predicate is in [dirty] iff its relation changed
     since this node's last refresh; [dirty_delta] holds the tuples
     added (and still present), [dirty_deleted] the predicates that
     lost tuples (expiry) — deletions force the from-scratch fallback
     for every stratum they support. *)
  mutable dirty : Sset.t;
  mutable dirty_delta : Store.t;
  mutable dirty_deleted : Sset.t;
  (* The previous refresh's view fixpoint (local- and remote-owned
     derived tuples, pre ship/received splitting): the seed for
     incremental re-derivation and the baseline for skip decisions. *)
  mutable last_fresh : Store.t;
  (* Whether this node's store has changed since its last refresh (new
     tuples, including shipped-in view arrivals, or expiry removals).
     A refresh walks only stale nodes when incremental refresh is on:
     refreshing a non-stale node is a no-op — every stratum would be
     skipped and every relation left as-is — so the walk is skipped
     wholesale (and accounted as the per-stratum skips it replaces).
     Under churn on a large network this turns each refresh from
     O(nodes) into O(touched nodes). *)
  mutable stale : bool;
  (* Deadline of the one live sweep timer, or [infinity] when none is
     pending.  Every soft insert used to arm a fresh timer chain whose
     sweep re-armed itself forever, so the timer population — and with
     it the per-event cost of a long-running simulation — grew without
     bound.  [schedule_expiry] now arms only when it would fire earlier
     than the live timer, and a firing timer whose deadline no longer
     matches is stale: it dies without sweeping or re-arming. *)
  mutable sweep_armed : float;
  (* Id-native state ([tuple_ids] mode).  The flat database is the
     authoritative store — [store] is not maintained — and its twins
     mirror [received] / [dirty_delta] / [last_fresh] / [shipped].
     [store_cache] memoizes boxed materializations by flat version, so
     observation points ([node_store], [global_store]) pay the cheap
     id-to-value translation once per quiescent state. *)
  fdb : Flat.t;
  freceived : Flat.t;
  mutable fdirty_delta : Flat.t;
  mutable flast_fresh : Flat.t;
  fshipped : (string, Fset.t) Hashtbl.t;
  mutable store_cache : (int * Store.t) option;
  (* Derived view tuples the expiry sweep removed from [fdb] since the
     last refresh (a locally-derived tuple acquires a lease when a peer
     re-sends it; its lapse sweeps a tuple the fixpoint still derives).
     The boxed oracle restores such tuples implicitly — its refresh
     replaces view relations wholesale from the recomputed fixpoint —
     so the in-place seed must re-add them explicitly to re-establish
     stored = previous fixpoint before the walk. *)
  mutable fview_holes : (string * int array) list;
}

type t = {
  program : Ast.program;
  info : Analysis.info;
  (* Where messages, timers, and the clock actually live: the
     virtual-clock simulator by default ({!Transport.of_sim}), real
     sockets under a supervisor ({!Socket.transport}).  All protocol
     logic below is backend-agnostic. *)
  transport : Transport.t;
  nodes : (string, node_state) Hashtbl.t;
  (* Hosted node names in sorted order: every whole-network iteration
     (view refresh, fact broadcast) walks this list, so message enqueue
     order never depends on hash-table internals.  Under the default
     transport this is every topology node; a multi-process run gives
     each runtime its own subset ([?hosted]). *)
  node_names : string list;
  batch_inbox : bool;
  (* Predicates computed as refreshed views (aggregate strata and their
     local downstream).  The list keeps program order for deterministic
     iteration; [view_set] is the same collection as a set — membership
     tests sit on per-tuple wire/insert/expiry paths, where a list walk
     of string compares is measurable. *)
  view_preds : string list;
  view_set : Sset.t;
  view_program : Ast.program;  (* the rules that define the views *)
  (* Compiled dataflow strands of the pipelined rules, indexed by their
     trigger (delta) predicate: the Click execution model. *)
  strands : (string, Ndlog.Plan.strand list) Hashtbl.t;
  (* Id-native evaluation ([FVN_TUPLE_IDS], default on): environments
     bind interned ids, joins compare ints, and node state lives in
     flat databases.  The compiled istrands below mirror [strands];
     the boxed path stays intact as the differential oracle. *)
  tuple_ids : bool;
  istrands : (string, Ideval.istrand list) Hashtbl.t;
  (* Incremental view refresh: dirty-predicate tracking plus the view
     program's refresh strata, each with its delta strands (boxed and
     id-native twins).  Off: the from-scratch refresh, kept as the
     differential oracle. *)
  incremental_views : bool;
  refresh_plan :
    (Eval.refresh_stratum * Ndlog.Plan.strand list * Ideval.istrand list) list;
  (* Join counters, split by path (per-runtime: concurrent runtimes
     never interfere): [wire] counts pipelined strand executions —
     inbox flushes and local recursion — [joins] counts view
     refreshes. *)
  joins : Eval.counters;
  wire : Eval.counters;
  mutable refresh_pending : bool;
  (* Wall-clock spent inside [refresh_views] and the number of walks:
     the refresh-cost breakdown the churn benchmark reports (ledger
     schema 8). *)
  mutable refresh_wall : float;
  mutable refresh_walks : int;
}

exception Not_localized of string

type rv_cause =
  | Soft_dependency of string
  | Negation_dependency of string

type remote_view_error = {
  rv_pred : string;
  rv_rule : string;
  rv_cause : rv_cause;
}

exception Remote_view_deletion of remote_view_error

let pp_remote_view_error ppf e =
  match e.rv_cause with
  | Soft_dependency p ->
    Fmt.pf ppf
      "rule %s ships hard view tuples of %s to other nodes, but their \
       support includes soft-state predicate %s: when it expires the \
       remote copies could never be deleted"
      e.rv_rule e.rv_pred p
  | Negation_dependency p ->
    Fmt.pf ppf
      "rule %s ships hard view tuples of %s to other nodes, but their \
       support is negation-dependent (via %s): when the negation flips \
       the remote copies could never be deleted"
      e.rv_rule e.rv_pred p

(* Location-column bookkeeping is shared with the sharded evaluator:
   {!Ndlog.Shard} owns the tuple-to-owner mapping. *)
let tuple_location = Ndlog.Shard.tuple_location
let loc_index_map = Ndlog.Shard.loc_index_map

exception
  Missing_tuple_location of {
    mtl_pred : string;
    mtl_tuple : Store.Tuple.t;
  }

let pp_missing_tuple_location ppf (pred, tuple) =
  Fmt.pf ppf
    "internal error: view tuple %s%a reached a ship path without a \
     resolvable location"
    pred Store.Tuple.pp tuple

let () =
  Printexc.register_printer (function
    | Missing_tuple_location { mtl_pred; mtl_tuple } ->
      Some (Fmt.str "%a" pp_missing_tuple_location (mtl_pred, mtl_tuple))
    | _ -> None)

(* The ship paths below only ever see tuples the remote split filtered
   on [tuple_location = Some owner]; a location-less tuple reaching a
   send is an internal invariant violation, reported as a typed error
   carrying the predicate and tuple instead of a bare [Option.get]. *)
let owner_exn loc pred tuple =
  match tuple_location loc tuple with
  | Some owner -> owner
  | None ->
    raise (Missing_tuple_location { mtl_pred = pred; mtl_tuple = tuple })

(* Split the program: aggregate rules and every rule transitively
   depending on an aggregate head become "view" rules, refreshed from
   scratch; everything else is pipelined. *)
let split_views (p : Ast.program) : string list * Ast.program * Ast.program =
  let agg_heads =
    List.filter_map
      (fun (r : Ast.rule) ->
        if Ast.has_aggregate r.head then Some r.head.Ast.head_pred else None)
      p.rules
  in
  let rec saturate views =
    let more =
      List.filter_map
        (fun (r : Ast.rule) ->
          let head = r.head.Ast.head_pred in
          if List.mem head views then None
          else if List.exists (fun q -> List.mem q views) (Ast.body_preds r.body)
          then Some head
          else None)
        p.rules
    in
    if more = [] then views else saturate (List.sort_uniq String.compare (views @ more))
  in
  let views = saturate (List.sort_uniq String.compare agg_heads) in
  let view_rules, pipeline_rules =
    List.partition
      (fun (r : Ast.rule) -> List.mem r.head.Ast.head_pred views)
      p.rules
  in
  ( views,
    { p with Ast.rules = view_rules; facts = [] },
    { p with Ast.rules = pipeline_rules } )

(* The header's promised [check]: view relations are replaced wholesale
   on refresh, so a view tuple stored at another node can only be
   retracted by some mechanism at the receiver.  Soft view predicates
   have one — the lease lapses once the source stops re-deriving (and
   so, under diff shipping, stops re-sending) the tuple.  A hard view
   head shipped away from its deriving node has none; if its support
   can genuinely shrink — a soft-state predicate somewhere below it
   expiring, or a negation flipping as more tuples arrive — the remote
   copy would go stale forever, so such programs are rejected here.
   (Hard views over monotone hard support are allowed: a remote copy of
   a superseded aggregate is the documented stale-view caveat, not a
   deletion.) *)
let check_remote_views (p : Ast.program) (view_program : Ast.program) =
  let soft =
    List.filter_map
      (fun (d : Ast.decl) ->
        match d.Ast.decl_lifetime with
        | Ast.Lifetime _ -> Some d.Ast.decl_pred
        | Ast.Lifetime_forever -> None)
      p.decls
  in
  let is_soft pred = List.mem pred soft in
  let rules_of pred =
    List.filter (fun (r : Ast.rule) -> r.head.Ast.head_pred = pred) p.rules
  in
  let has_neg (r : Ast.rule) =
    List.exists (function Ast.Neg _ -> true | _ -> false) r.body
  in
  (* Walk the support of [preds] under the full program, reporting the
     first soft predicate or negation-carrying derivation found. *)
  let rec support seen = function
    | [] -> None
    | pred :: rest ->
      if List.mem pred seen then support seen rest
      else if is_soft pred then Some (Soft_dependency pred)
      else begin
        let rules = rules_of pred in
        match List.find_opt has_neg rules with
        | Some _ -> Some (Negation_dependency pred)
        | None ->
          support (pred :: seen)
            (List.concat_map (fun (r : Ast.rule) -> Ast.body_preds r.body) rules
            @ rest)
      end
  in
  List.iter
    (fun (r : Ast.rule) ->
      let head = r.head in
      let remote_capable =
        match head.Ast.head_loc with
        | None -> false
        | Some i -> (
          let head_var =
            match List.nth_opt head.Ast.head_args i with
            | Some (Ast.Plain (Ast.Var x)) -> Some x
            | _ -> None
          in
          let body_var =
            List.find_map
              (function
                | Ast.Pos a | Ast.Neg a -> Ndlog.Localize.loc_var_of_atom a
                | _ -> None)
              r.body
          in
          match head_var, body_var with
          | Some h, Some b -> h <> b
          | _ -> true)
      in
      if remote_capable && not (is_soft head.Ast.head_pred) then begin
        let cause =
          if has_neg r then Some (Negation_dependency head.Ast.head_pred)
          else support [] (Ast.body_preds r.body)
        in
        match cause with
        | None -> ()
        | Some rv_cause ->
          let rv_rule =
            match r.Ast.rule_name with
            | Some n -> n
            | None -> head.Ast.head_pred
          in
          raise
            (Remote_view_deletion
               { rv_pred = head.Ast.head_pred; rv_rule; rv_cause })
      end)
    view_program.Ast.rules

(* The default refresh mode: incremental, unless the environment says
   otherwise (the test suite's second `dune runtest` pass sets
   FVN_INCREMENTAL_VIEWS=0 to re-run everything against the
   from-scratch oracle). *)
let incremental_views_default () =
  match Sys.getenv_opt "FVN_INCREMENTAL_VIEWS" with
  | Some ("0" | "false" | "no" | "off") -> false
  | _ -> true

(* The id twin of {!Ndlog.Shard.tuple_location}: the location column is
   one array read plus an address check, no tuple materialization. *)
let owner_of_ids (loc : int option) (ids : int array) : string option =
  match loc with
  | Some i when i < Array.length ids -> Some (Value.as_addr (Intern.get ids.(i)))
  | _ -> None

let rec create ?(seed = 42) ?(batch_inbox = true) ?incremental_views ?tuple_ids
    ?transport ?hosted (topo : Netsim.Topology.t) (program : Ast.program) : t =
  (match Ndlog.Localize.check_localized program with
  | Ok () -> ()
  | Error e -> raise (Not_localized (Fmt.str "%a" Ndlog.Localize.pp_error e)));
  let info = Analysis.analyze_exn program in
  let transport =
    match transport with
    | Some tr -> tr
    | None -> Transport.of_sim (Netsim.Sim.create ~seed topo)
  in
  (* The nodes this runtime actually hosts: all of them by default, a
     subset when several runtimes (typically in several processes)
     split the topology between them. *)
  let hosted =
    match hosted with Some l -> l | None -> Netsim.Topology.nodes topo
  in
  List.iter
    (fun n ->
      if not (List.mem n (Netsim.Topology.nodes topo)) then
        invalid_arg ("Dist.Runtime: hosted node not in topology: " ^ n))
    hosted;
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace nodes n
        {
          name = n;
          store = Store.empty;
          expiry = Softstate.Expiry.create program.Ast.decls;
          inserts = 0;
          inbox = [];
          flush_scheduled = false;
          received = Store.empty;
          shipped = Hashtbl.create 4;
          renewing = Hashtbl.create 4;
          dirty = Sset.empty;
          dirty_delta = Store.empty;
          dirty_deleted = Sset.empty;
          last_fresh = Store.empty;
          stale = false;
          sweep_armed = infinity;
          fdb = Flat.create ();
          freceived = Flat.create ();
          fdirty_delta = Flat.create ();
          flast_fresh = Flat.create ();
          fshipped = Hashtbl.create 4;
          store_cache = None;
          fview_holes = [];
        })
    hosted;
  let view_preds, view_program, pipeline_program = split_views program in
  check_remote_views program view_program;
  let strands = Hashtbl.create 32 in
  List.iter
    (fun (st : Ndlog.Plan.strand) ->
      match st.Ndlog.Plan.delta_pred with
      | Some pred ->
        Hashtbl.replace strands pred
          (st
          :: (match Hashtbl.find_opt strands pred with
             | Some l -> l
             | None -> []))
      | None -> ())
    (Ndlog.Plan.compile_program pipeline_program);
  (* Restore program order within each trigger's strand list. *)
  let strands' = Hashtbl.create 32 in
  Hashtbl.iter
    (fun pred l -> Hashtbl.replace strands' pred (List.rev l))
    strands;
  let incremental_views =
    match incremental_views with
    | Some b -> b
    | None -> incremental_views_default ()
  in
  let tuple_ids =
    match tuple_ids with Some b -> b | None -> !Ideval.enabled
  in
  (* Compiled id-native twins of the wire strands (id mode only — the
     compilation is cardinality-independent, so one istrand serves
     every batch for the runtime's lifetime). *)
  let istrands = Hashtbl.create 32 in
  if tuple_ids then
    Hashtbl.iter
      (fun pred l -> Hashtbl.replace istrands pred (List.map Ideval.of_strand l))
      strands';
  (* Refresh strata of the view program, bottom-up, each with the delta
     strands of its rules (empty for aggregate strata — those fall back
     to from-scratch recomputation whenever touched). *)
  let refresh_plan =
    List.map
      (fun (rs : Eval.refresh_stratum) ->
        let strands =
          if rs.Eval.rs_has_agg then []
          else
            Ndlog.Plan.compile_program
              { view_program with Ast.rules = rs.Eval.rs_rules }
        in
        let istrands =
          if tuple_ids then List.map Ideval.of_strand strands else []
        in
        (rs, strands, istrands))
      (Eval.refresh_strata view_program)
  in
  let t =
    {
      program = pipeline_program;
      info;
      transport;
      nodes;
      node_names = List.sort String.compare hosted;
      batch_inbox;
      view_preds;
      view_set = List.fold_left (fun s p -> Sset.add p s) Sset.empty view_preds;
      view_program;
      strands = strands';
      tuple_ids;
      istrands;
      incremental_views;
      refresh_plan;
      joins = Eval.counters ();
      wire = Eval.counters ();
      refresh_pending = false;
      refresh_wall = 0.0;
      refresh_walks = 0;
    }
  in
  (* Wire the message handler: a received tuple is inserted locally —
     directly in per-message mode, through the inbox otherwise. *)
  List.iter
    (fun n ->
      t.transport.Transport.set_handler n (fun ~self ~src:_ m ->
          receive t self m))
    hosted;
  t

and node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None -> invalid_arg ("Dist.Runtime: unknown node " ^ name)

(* Route a derived head tuple: insert locally or ship. *)
and emit t (self : string) (loc : int option) pred tuple =
  match tuple_location loc tuple with
  | Some owner when owner <> self ->
    ignore (t.transport.Transport.send ~src:self ~dst:owner { pred; tuple; ids = None })
  | _ -> insert t self pred tuple

(* Id twin of [emit]: the message carries both forms — the boxed tuple
   for traces, the ids for the receiver's flat store. *)
and emit_ids t (self : string) (loc : int option) pred tuple ids =
  match tuple_location loc tuple with
  | Some owner when owner <> self ->
    ignore
      (t.transport.Transport.send ~src:self ~dst:owner { pred; tuple; ids = Some ids })
  | _ -> insert_ids t self pred ids tuple

(* Pipelined semi-naive: react to one freshly inserted tuple by running
   the strands triggered by its predicate (the Click execution model;
   strand execution is differentially tested against [Eval.body_envs]
   in the plan test suite).  Local recursion reacts per tuple, so these
   batches are singletons; message bursts go through [flush], which
   hands each strand the whole per-predicate delta at once. *)
and propagate t (self : string) pred (tuple : Store.Tuple.t) =
  run_strands t self pred [ tuple ]

and run_strands t (self : string) pred (delta : Store.Tuple.t list) =
  let ns = node t self in
  match Hashtbl.find_opt t.strands pred with
  | None -> ()
  | Some strands ->
    List.iter
      (fun (st : Ndlog.Plan.strand) ->
        let head = st.Ndlog.Plan.strand_rule.Ast.head in
        List.iter
          (fun ht -> emit t self head.Ast.head_loc head.Ast.head_pred ht)
          (List.sort_uniq Store.Tuple.compare
             (Ndlog.Plan.execute_batch ~stats:t.wire ns.store
                ~delta_tuples:delta st)))
      strands

(* Id twin of [propagate]/[run_strands]: joins run over the node's flat
   store through the compiled istrands; heads materialize boxed only at
   emission, where they are sorted canonically — message enqueue order
   (and hence the trace) is identical to the boxed path's. *)
and propagate_ids t (self : string) pred (ids : int array) =
  run_strands_ids t self pred [ ids ]

and run_strands_ids t (self : string) pred (delta : int array list) =
  let ns = node t self in
  match Hashtbl.find_opt t.istrands pred with
  | None -> ()
  | Some strands ->
    List.iter
      (fun ist ->
        let loc = Ideval.head_loc ist and hp = Ideval.head_pred ist in
        let heads =
          List.sort_uniq
            (fun (a, _) (b, _) -> Store.Tuple.compare a b)
            (List.map
               (fun ids -> (Intern.tuple_of_ids ids, ids))
               (Ideval.execute_batch ~stats:t.wire ns.fdb ~delta_tuples:delta
                  ist))
        in
        List.iter (fun (tuple, ids) -> emit_ids t self loc hp tuple ids) heads)
      strands

(* Record a base-relation addition for incremental refresh.  View-pred
   arrivals (shipped-in tuples) are not marked: the refresh derives
   views from the base store only and re-unions [received] afterwards,
   so they cannot change any stratum's recomputation. *)
and mark_dirty t ns pred tuple =
  if t.incremental_views && not (Sset.mem pred t.view_set) then begin
    ns.dirty <- Sset.add pred ns.dirty;
    ns.dirty_delta <- Store.add pred tuple ns.dirty_delta
  end

and mark_dirty_ids t ns pred ids =
  if t.incremental_views && not (Sset.mem pred t.view_set) then begin
    ns.dirty <- Sset.add pred ns.dirty;
    ignore (Flat.add ns.fdirty_delta pred ids)
  end

and insert t (self : string) pred (tuple : Store.Tuple.t) =
  let ns = node t self in
  let now = t.transport.Transport.now () in
  (* Refresh the soft-state lease even when the tuple is known. *)
  ns.expiry <- Softstate.Expiry.insert ns.expiry ~now pred tuple;
  if Softstate.Expiry.is_soft ns.expiry pred then schedule_expiry t self;
  if not (Store.mem pred tuple ns.store) then begin
    ns.store <- Store.add pred tuple ns.store;
    ns.inserts <- ns.inserts + 1;
    ns.stale <- true;
    if Sset.mem pred t.view_set then
      ns.received <- Store.add pred tuple ns.received;
    mark_dirty t ns pred tuple;
    propagate t self pred tuple;
    if t.view_preds <> [] then request_refresh t
  end

(* Id twin of [insert].  The lease table stays boxed-keyed (it is part
   of the observable state compared across modes); everything on the
   derivation path — membership, storage, dirty tracking, strand
   triggering — runs on ids. *)
and insert_ids t (self : string) pred (ids : int array)
    (tuple : Store.Tuple.t) =
  let ns = node t self in
  let now = t.transport.Transport.now () in
  ns.expiry <- Softstate.Expiry.insert ns.expiry ~now pred tuple;
  if Softstate.Expiry.is_soft ns.expiry pred then schedule_expiry t self;
  if Flat.add ns.fdb pred ids then begin
    ns.inserts <- ns.inserts + 1;
    ns.stale <- true;
    if Sset.mem pred t.view_set then ignore (Flat.add ns.freceived pred ids);
    mark_dirty_ids t ns pred ids;
    propagate_ids t self pred ids;
    if t.view_preds <> [] then request_refresh t
  end

(* A message delivery: the inbox buffers it and a zero-delay flush
   drains every delivery landing at this instant together (the event
   queue breaks time ties in insertion order, so the flush runs after
   all already-enqueued same-time deliveries). *)
and receive t (self : string) (m : msg) =
  if not t.batch_inbox then
    if t.tuple_ids then
      let ids =
        match m.ids with Some ids -> ids | None -> Intern.tuple_ids m.tuple
      in
      insert_ids t self m.pred ids m.tuple
    else insert t self m.pred m.tuple
  else begin
    let ns = node t self in
    ns.inbox <- (m.pred, m.tuple, m.ids) :: ns.inbox;
    if not ns.flush_scheduled then begin
      ns.flush_scheduled <- true;
      t.transport.Transport.schedule ~delay:0.0 (fun () -> flush t self)
    end
  end

(* Drain the inbox: process buffered deliveries in arrival order (lease
   refreshes and insertion bookkeeping see the same sequence the
   per-message runtime did), then run each triggered strand once with
   the full per-predicate delta of genuinely-new tuples. *)
and flush t (self : string) =
  if t.tuple_ids then flush_ids t self
  else begin
    let ns = node t self in
    ns.flush_scheduled <- false;
    let arrivals = List.rev ns.inbox in
    ns.inbox <- [];
    let now = t.transport.Transport.now () in
    let any_soft = ref false in
    let fresh_rev = ref [] in
    List.iter
      (fun (pred, tuple, _) ->
        ns.expiry <- Softstate.Expiry.insert ns.expiry ~now pred tuple;
        if Softstate.Expiry.is_soft ns.expiry pred then any_soft := true;
        if not (Store.mem pred tuple ns.store) then begin
          ns.store <- Store.add pred tuple ns.store;
          ns.inserts <- ns.inserts + 1;
          ns.stale <- true;
          if Sset.mem pred t.view_set then
            ns.received <- Store.add pred tuple ns.received;
          mark_dirty t ns pred tuple;
          fresh_rev := (pred, tuple) :: !fresh_rev
        end)
      arrivals;
    if !any_soft then schedule_expiry t self;
    (* Group the new tuples by predicate, preserving first-arrival order
       of the predicates and arrival order within each. *)
    let order_rev = ref [] in
    let deltas : (string, Store.Tuple.t list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    List.iter
      (fun (pred, tuple) ->
        match Hashtbl.find_opt deltas pred with
        | Some l -> l := tuple :: !l
        | None ->
          Hashtbl.add deltas pred (ref [ tuple ]);
          order_rev := pred :: !order_rev)
      (List.rev !fresh_rev);
    List.iter
      (fun pred ->
        run_strands t self pred (List.rev !(Hashtbl.find deltas pred)))
      (List.rev !order_rev);
    if !fresh_rev <> [] && t.view_preds <> [] then request_refresh t
  end

(* Id twin of [flush]: same drain order, same grouping, flat
   membership and strand batches. *)
and flush_ids t (self : string) =
  let ns = node t self in
  ns.flush_scheduled <- false;
  let arrivals = List.rev ns.inbox in
  ns.inbox <- [];
  let now = t.transport.Transport.now () in
  let any_soft = ref false in
  let fresh_rev = ref [] in
  List.iter
    (fun (pred, tuple, ids) ->
      ns.expiry <- Softstate.Expiry.insert ns.expiry ~now pred tuple;
      if Softstate.Expiry.is_soft ns.expiry pred then any_soft := true;
      let ids =
        match ids with Some ids -> ids | None -> Intern.tuple_ids tuple
      in
      if Flat.add ns.fdb pred ids then begin
        ns.inserts <- ns.inserts + 1;
        ns.stale <- true;
        if Sset.mem pred t.view_set then
          ignore (Flat.add ns.freceived pred ids);
        mark_dirty_ids t ns pred ids;
        fresh_rev := (pred, ids) :: !fresh_rev
      end)
    arrivals;
  if !any_soft then schedule_expiry t self;
  let order_rev = ref [] in
  let deltas : (string, int array list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (pred, ids) ->
      match Hashtbl.find_opt deltas pred with
      | Some l -> l := ids :: !l
      | None ->
        Hashtbl.add deltas pred (ref [ ids ]);
        order_rev := pred :: !order_rev)
    (List.rev !fresh_rev);
  List.iter
    (fun pred ->
      run_strands_ids t self pred (List.rev !(Hashtbl.find deltas pred)))
    (List.rev !order_rev);
  if !fresh_rev <> [] && t.view_preds <> [] then request_refresh t

(* Schedule a sweep at the node's next soft-state deadline — unless the
   node's live timer already fires at or before it, in which case that
   timer's own re-arm covers this deadline too (see [sweep_armed]). *)
and schedule_expiry t self =
  let ns = node t self in
  match Softstate.Expiry.next_deadline ns.expiry with
  | None -> ()
  | Some deadline ->
    if deadline < ns.sweep_armed then begin
      ns.sweep_armed <- deadline;
      let delay = max 0.0 (deadline -. t.transport.Transport.now ()) +. 1e-9 in
      t.transport.Transport.schedule ~delay (fun () ->
          if ns.sweep_armed = deadline then begin
            ns.sweep_armed <- infinity;
            sweep t self
          end)
    end

and sweep t self =
  if t.tuple_ids then sweep_ids t self
  else begin
    sweep_boxed t self;
    schedule_expiry t self
  end

(* Id twin of [sweep]: the dead-lease list comes straight from the
   expiry table ({!Softstate.Expiry.expired}) and each dead tuple pays
   one boxed-to-id translation — expiry batches are rare and small, so
   this boundary crossing stays off the hot path. *)
and sweep_ids t self =
  let ns = node t self in
  let now = t.transport.Transport.now () in
  let dead, expiry' = Softstate.Expiry.expired ns.expiry ~now in
  let removed =
    List.filter_map
      (fun (pred, tuple) ->
        let ids = Intern.tuple_ids tuple in
        ignore (Flat.remove ns.freceived pred ids);
        if Flat.remove ns.fdb pred ids then Some (pred, ids) else None)
      dead
  in
  ns.expiry <- expiry';
  if removed <> [] then begin
    List.iter
      (fun (pred, ids) ->
        if Sset.mem pred t.view_set then
          (* A swept view tuple the previous fixpoint may still derive:
             remember it so the next refresh's in-place seed can restore
             it (see [fview_holes]). *)
          ns.fview_holes <- (pred, ids) :: ns.fview_holes
        else if t.incremental_views then begin
          ns.dirty <- Sset.add pred ns.dirty;
          ns.dirty_deleted <- Sset.add pred ns.dirty_deleted;
          ignore (Flat.remove ns.fdirty_delta pred ids)
        end)
      removed;
    ns.stale <- true;
    if t.view_preds <> [] then request_refresh t
  end;
  schedule_expiry t self

and sweep_boxed t self =
  let ns = node t self in
  let now = t.transport.Transport.now () in
  let store', removed, expiry' =
    Softstate.Expiry.sweep_report ns.expiry ~now ns.store
  in
  let received', _ = Softstate.Expiry.sweep ns.expiry ~now ns.received in
  ns.received <- received';
  if removed <> [] then begin
    (* An expired base tuple dirties its predicate and forces the
       from-scratch fallback for every stratum it supports: deletions
       are non-monotone under seeded re-derivation.  (Expired *view*
       tuples are shipped-in leases pruned from [received] above; the
       base-only refresh never re-derives them, so they stay
       unmarked.) *)
    if t.incremental_views then
      List.iter
        (fun (pred, tuple) ->
          if not (Sset.mem pred t.view_set) then begin
            ns.dirty <- Sset.add pred ns.dirty;
            ns.dirty_deleted <- Sset.add pred ns.dirty_deleted;
            ns.dirty_delta <- Store.remove pred tuple ns.dirty_delta
          end)
        removed;
    ns.store <- store';
    ns.expiry <- expiry';
    ns.stale <- true;
    if t.view_preds <> [] then request_refresh t
  end
  else ns.expiry <- expiry'
(* Both sweeps re-arm for the next pending deadline (in [sweep]): a
   sweep only drops leases lapsed *now*, and without this the later
   deadlines would only be swept if some insertion happened to re-arm
   the timer (tuples past their lease would otherwise linger forever —
   caught by the incremental-refresh differential harness, which found
   renewals for never-expiring support running unbounded in both
   refresh modes). *)

(* View refresh is batched through a zero-delay event so that a burst of
   insertions triggers one recomputation. *)
and request_refresh t =
  if not t.refresh_pending then begin
    t.refresh_pending <- true;
    t.transport.Transport.schedule ~delay:0.0 (fun () ->
        t.refresh_pending <- false;
        refresh_views t)
  end

(* Incremental mode refreshes only stale nodes: a non-stale node's
   store is exactly what its last refresh left, so walking it would
   skip every stratum and change nothing — the avoided strata are still
   credited to [strata_skipped], keeping the accounting identical to
   the full walk.  The from-scratch oracle keeps walking every node
   (recomputation on an unchanged base is its definition of correct,
   and it has no staleness bookkeeping to trust). *)
and refresh_views t =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun self ->
      let ns = node t self in
      if ns.stale || not t.incremental_views then
        if t.tuple_ids then refresh_node_ids t self else refresh_node t self
      else
        List.iter
          (fun _ -> Eval.note_stratum_skipped t.joins)
          t.refresh_plan)
    t.node_names;
  t.refresh_wall <- t.refresh_wall +. (Unix.gettimeofday () -. t0);
  t.refresh_walks <- t.refresh_walks + 1

(* One node's incremental view fixpoint: walk the refresh strata
   bottom-up over a working database seeded with the current base.
   [changed] / [delta] / [deleted] start from the node's dirty sets and
   grow with each recomputed stratum's own movement, so downstream
   strata see exactly the support change that concerns them.  The
   result agrees with the from-scratch evaluation of the whole view
   program (differentially tested): a skipped stratum's support is
   unchanged since the last refresh, so its previous relations are
   still its fixpoint; a seeded stratum is plain and monotone over
   purely additive support change, where semi-naive iteration from the
   previous fixpoint reaches the same fixpoint as from scratch; and
   everything else is recomputed from scratch. *)
and incremental_fresh t ns base =
  let prev = ns.last_fresh in
  (* Fold a recomputed stratum's per-predicate movement into the change
     tracking for downstream strata. *)
  let diff_changes ~track_deletions st preds =
    List.fold_left
      (fun ((db, changed, delta, deleted) as acc) pred ->
        let new_rel = Store.relation pred db in
        let old_rel = Store.relation pred prev in
        if Store.Tset.equal new_rel old_rel then acc
        else
          let changed = Sset.add pred changed in
          let delta =
            Store.Tset.fold
              (fun tuple d -> Store.add pred tuple d)
              (Store.Tset.diff new_rel old_rel)
              delta
          in
          let deleted =
            if
              track_deletions
              && not (Store.Tset.is_empty (Store.Tset.diff old_rel new_rel))
            then Sset.add pred deleted
            else deleted
          in
          (db, changed, delta, deleted))
      st preds
  in
  let db, _, _, _ =
    List.fold_left
      (fun (db, changed, delta, deleted)
           ((rs : Eval.refresh_stratum), strands, _) ->
        if not (Sset.exists (fun p -> Sset.mem p changed) rs.Eval.rs_support)
        then begin
          (* Untouched: the previous relations are still exact — no
             evaluation work at all. *)
          Eval.note_stratum_skipped t.joins;
          ( Store.union db (Store.restrict rs.Eval.rs_preds prev),
            changed,
            delta,
            deleted )
        end
        else if
          rs.Eval.rs_has_agg || rs.Eval.rs_has_neg
          || Sset.exists (fun p -> Sset.mem p deleted) rs.Eval.rs_support
        then begin
          (* Aggregates and negation are non-monotone in their support,
             and deletions are non-monotone under seeding: recompute the
             stratum from scratch on the working database. *)
          Eval.note_refresh_fallback t.joins;
          let db, _converged =
            Eval.seminaive_stratum ~stats:t.joins t.view_program
              rs.Eval.rs_preds db
          in
          diff_changes ~track_deletions:true
            (db, changed, delta, deleted)
            rs.Eval.rs_preds
        end
        else begin
          (* Plain monotone stratum over additive support change: seed
             with the previous relations and re-derive from the deltas
             only. *)
          let db = Store.union db (Store.restrict rs.Eval.rs_preds prev) in
          let db =
            Ndlog.Plan.refresh_stratum ~stats:t.joins db ~strands ~delta
          in
          diff_changes ~track_deletions:false
            (db, changed, delta, deleted)
            rs.Eval.rs_preds
        end)
      (base, ns.dirty, ns.dirty_delta, ns.dirty_deleted)
      t.refresh_plan
  in
  db

(* Id twin of [incremental_fresh], journaled and in place: the working
   database IS the node's flat store, pre-seeded by [refresh_node_ids]
   so that every view relation holds the previous fixpoint; the delta
   accumulates into the node's own dirty-delta database (replaced
   wholesale after the refresh); and per-stratum movement is read off
   the undo journal ({!Flat.net_since}) instead of whole-relation set
   comparison — the copy tax this replaces was [Flat.restrict] of the
   previous fixpoint per stratum plus [Fset.equal] per predicate.
   Same skip/seed/fallback decisions, same counters.

   Returns the per-predicate net movement against the previous
   fixpoint, which is exact because each touched stratum's relations
   equal the previous fixpoint at its mark: the seed establishes that
   for the whole database, strata never write outside their own
   [rs_preds], and stratification keeps upper (still-seeded) relations
   invisible to lower strata's evaluation. *)
and incremental_fresh_ids t ns (db : Flat.t) :
    (string * int array list * int array list) list =
  let delta = ns.fdirty_delta in
  let movement = ref [] in
  let record acc ~track_deletions net =
    List.fold_left
      (fun (changed, deleted) (pred, adds, rems) ->
        if adds = [] && rems = [] then (changed, deleted)
        else begin
          List.iter (fun ids -> ignore (Flat.add delta pred ids)) adds;
          movement := (pred, adds, rems) :: !movement;
          ( Sset.add pred changed,
            if track_deletions && rems <> [] then Sset.add pred deleted
            else deleted )
        end)
      acc net
  in
  let _ =
    List.fold_left
      (fun ((changed, deleted) as acc) ((rs : Eval.refresh_stratum), _, istrands)
           ->
        if not (Sset.exists (fun p -> Sset.mem p changed) rs.Eval.rs_support)
        then begin
          (* Untouched: the seeded relations are still exact. *)
          Eval.note_stratum_skipped t.joins;
          acc
        end
        else if
          rs.Eval.rs_has_agg || rs.Eval.rs_has_neg
          || Sset.exists (fun p -> Sset.mem p deleted) rs.Eval.rs_support
        then begin
          (* Non-monotone under seeding: recompute from scratch.  The
             stratum's relations start empty, as the oracle's do. *)
          Eval.note_refresh_fallback t.joins;
          let m = Flat.mark db in
          List.iter (Flat.clear_rel db) rs.Eval.rs_preds;
          ignore
            (Ideval.seminaive_stratum ~stats:t.joins t.view_program
               rs.Eval.rs_preds db);
          let net = Flat.net_since db m in
          Flat.commit db m;
          record acc ~track_deletions:true net
        end
        else begin
          (* Plain monotone stratum over additive support change:
             re-derive from the deltas on top of the seeded previous
             relations.  Purely additive, so the journal holds only
             genuine adds. *)
          let m = Flat.mark db in
          Ideval.refresh_stratum ~stats:t.joins db ~strands:istrands ~delta;
          let net = Flat.net_since db m in
          Flat.commit db m;
          record acc ~track_deletions:false net
        end)
      (ns.dirty, ns.dirty_deleted)
      t.refresh_plan
  in
  !movement

(* Id twin of [refresh_node], run *in place* on the node's flat store.
   Instead of materializing a restricted base copy, computing a fresh
   fixpoint beside it and replacing relations wholesale, the walk
   below nudges the stored view relations to the previous fixpoint
   (seed), lets the stratum walk mutate them under journal marks, and
   replays only the *net movement* against the previous-fixpoint stash
   and the shipped-set bookkeeping — O(changes + shipped + received)
   where the old walk was O(store) in copies and comparisons.  Tuples
   materialize boxed only when a message leaves the node, sorted
   canonically, so the trace is identical to the boxed path's.

   Store shape invariants, before and after: a view relation of [fdb]
   holds the locally-owned part of the last fixpoint plus every live
   shipped-in arrival ([freceived]); [fshipped.(pred)] is exactly the
   remote-owned part of the last fixpoint; [flast_fresh] is the whole
   last fixpoint. *)
and refresh_node_ids t self =
  let ns = node t self in
  let db = ns.fdb in
  let prev = ns.flast_fresh in
  (* Seed: stored form -> previous fixpoint.  Arrivals the fixpoint
     never derived leave, previously-shipped remote tuples re-enter,
     and lease-flickered derived tuples are restored (see
     [fview_holes]).  All three classes are small. *)
  List.iter
    (fun (pred, ids) ->
      if Flat.mem prev pred ids then ignore (Flat.add db pred ids))
    ns.fview_holes;
  ns.fview_holes <- [];
  List.iter
    (fun pred ->
      let prev_rel = Flat.relation prev pred in
      Flat.iter_rel ns.freceived pred (fun ids ->
          if not (Fset.mem prev_rel ids) then ignore (Flat.remove db pred ids));
      match Hashtbl.find_opt ns.fshipped pred with
      | Some s -> Fset.iter (fun ids -> ignore (Flat.add db pred ids)) s
      | None -> ())
    t.view_preds;
  (* Fixpoint, in place, yielding the net movement against [prev]. *)
  let movement =
    if t.incremental_views then begin
      let movement = incremental_fresh_ids t ns db in
      ns.dirty <- Sset.empty;
      ns.fdirty_delta <- Flat.create ();
      ns.dirty_deleted <- Sset.empty;
      movement
    end
    else begin
      let m = Flat.mark db in
      List.iter (Flat.clear_rel db) t.view_preds;
      ignore (Ideval.seminaive ~stats:t.joins t.view_program t.info db);
      let net = Flat.net_since db m in
      Flat.commit db m;
      net
    end
  in
  let net_tbl = Hashtbl.create 8 in
  List.iter
    (fun (pred, adds, rems) -> Hashtbl.replace net_tbl pred (adds, rems))
    movement;
  (* Commit: replay the net movement onto the previous-fixpoint stash
     and the shipped sets, ship fresh remote-owned tuples (diff-only),
     and return the stored relations to their between-refresh shape. *)
  let locs = loc_index_map t.view_program in
  List.iter
    (fun pred ->
      let locopt = Hashtbl.find_opt locs pred in
      let adds, rems =
        match Hashtbl.find_opt net_tbl pred with
        | Some m -> m
        | None -> ([], [])
      in
      List.iter (fun ids -> ignore (Flat.add ns.flast_fresh pred ids)) adds;
      List.iter (fun ids -> ignore (Flat.remove ns.flast_fresh pred ids)) rems;
      let shipped =
        match Hashtbl.find_opt ns.fshipped pred with
        | Some s -> Some s
        | None ->
          (* Allocate the per-predicate shipped set only when a
             remote-owned tuple actually appears. *)
          if
            List.exists
              (fun ids ->
                match owner_of_ids locopt ids with
                | Some owner -> owner <> self
                | None -> false)
              adds
          then begin
            let s = Fset.create () in
            Hashtbl.replace ns.fshipped pred s;
            Some s
          end
          else None
      in
      match shipped with
      | None ->
        (* Nothing shipped, nothing remote-owned: the stored relation
           is already local ∪ received.  Re-adding received arrivals is
           still needed — a fallback stratum may have cleared them. *)
        Flat.iter_rel ns.freceived pred (fun ids ->
            ignore (Flat.add db pred ids))
      | Some shipped ->
        let to_ship = ref [] in
        List.iter
          (fun ids ->
            match owner_of_ids locopt ids with
            | Some owner when owner <> self ->
              if Fset.add shipped ids then
                to_ship := (Intern.tuple_of_ids ids, ids) :: !to_ship
            | _ -> ())
          adds;
        List.iter
          (fun ids ->
            match owner_of_ids locopt ids with
            | Some owner when owner <> self -> ignore (Fset.remove shipped ids)
            | _ -> ())
          rems;
        List.iter
          (fun (tuple, ids) ->
            ignore
              (t.transport.Transport.send ~src:self
                 ~dst:(owner_exn locopt pred tuple)
                 { pred; tuple; ids = Some ids }))
          (List.sort (fun (a, _) (b, _) -> Store.Tuple.compare a b) !to_ship);
        (* Remote-owned tuples live at their owners, not here. *)
        Fset.iter (fun ids -> ignore (Flat.remove db pred ids)) shipped;
        Flat.iter_rel ns.freceived pred (fun ids ->
            ignore (Flat.add db pred ids));
        (match Softstate.Expiry.lifetime_of ns.expiry pred with
        | Ast.Lifetime l when not (Fset.is_empty shipped) ->
          ensure_renewal t self pred l
        | _ -> ()))
    t.view_preds;
  ns.stale <- false

and refresh_node t self =
  let ns = node t self in
  (* Recompute views from the non-view part of the local store. *)
  let base =
    Store.restrict
      (List.filter
         (fun p -> not (Sset.mem p t.view_set))
         (Store.preds ns.store))
      ns.store
  in
  (* Evaluate view rules against the base store: incrementally by
     default, from scratch as the oracle. *)
  let fresh =
    if t.incremental_views then begin
      let fresh = incremental_fresh t ns base in
      ns.last_fresh <- Store.restrict t.view_preds fresh;
      ns.dirty <- Sset.empty;
      ns.dirty_delta <- Store.empty;
      ns.dirty_deleted <- Sset.empty;
      fresh
    end
    else (Eval.seminaive ~stats:t.joins t.view_program t.info base).Eval.db
  in
  (* Replace local view relations — keeping tuples shipped in from
     other nodes, which the local base cannot re-derive and whose
     retirement is their own lease's business — and ship the remote
     view tuples the destination has not already been sent. *)
  let locs = loc_index_map t.view_program in
  List.iter
    (fun pred ->
      let new_rel = Store.relation pred fresh in
      let old_rel = Store.relation pred ns.store in
      let local_new =
        Store.Tset.filter
          (fun tuple ->
            match tuple_location (Hashtbl.find_opt locs pred) tuple with
            | Some owner -> owner = self
            | None -> true)
          new_rel
      in
      let remote_new =
        Store.Tset.filter
          (fun tuple ->
            match tuple_location (Hashtbl.find_opt locs pred) tuple with
            | Some owner -> owner <> self
            | None -> false)
          new_rel
      in
      let local_new =
        Store.Tset.union local_new (Store.relation pred ns.received)
      in
      if not (Store.Tset.equal local_new old_rel) then
        ns.store <- Store.set_relation pred local_new ns.store;
      let already =
        match Hashtbl.find_opt ns.shipped pred with
        | Some s -> s
        | None -> Store.Tset.empty
      in
      Store.Tset.iter
        (fun tuple ->
          ignore
            (t.transport.Transport.send ~src:self
               ~dst:(owner_exn (Hashtbl.find_opt locs pred) pred tuple)
               { pred; tuple; ids = None }))
        (Store.Tset.diff remote_new already);
      Hashtbl.replace ns.shipped pred remote_new;
      (* A shipped *soft* view tuple lives at the receiver on a
         lease; with redeliveries suppressed, the source must renew
         it for as long as the tuple is still derived. *)
      (match Softstate.Expiry.lifetime_of ns.expiry pred with
      | Ast.Lifetime l when not (Store.Tset.is_empty remote_new) ->
        ensure_renewal t self pred l
      | _ -> ()))
    t.view_preds;
  ns.stale <- false

(* Lease renewal for soft view tuples shipped to other nodes: at every
   half-lifetime, re-send whatever is still in the shipped set (the
   last refresh's remote view) and re-arm.  Once the source stops
   deriving a tuple the refresh drops it from the shipped set, the
   renewals stop, and the receiver's lease lapses — soft-state expiry,
   at renewal cadence instead of per-refresh redelivery. *)
and ensure_renewal t self pred lifetime =
  let ns = node t self in
  if not (Hashtbl.mem ns.renewing pred) then begin
    Hashtbl.replace ns.renewing pred ();
    t.transport.Transport.schedule ~delay:(lifetime /. 2.0) (fun () ->
        renew t self pred lifetime)
  end

and renew t self pred lifetime =
  if t.tuple_ids then renew_ids t self pred lifetime
  else begin
    let ns = node t self in
    Hashtbl.remove ns.renewing pred;
    match Hashtbl.find_opt ns.shipped pred with
    | None -> ()
    | Some set when Store.Tset.is_empty set -> ()
    | Some set ->
      let locs = loc_index_map t.view_program in
      Store.Tset.iter
        (fun tuple ->
          ignore
            (t.transport.Transport.send ~src:self
               ~dst:(owner_exn (Hashtbl.find_opt locs pred) pred tuple)
               { pred; tuple; ids = None }))
        set;
      ensure_renewal t self pred lifetime
  end

(* Id twin of [renew]: the shipped set holds ids; renewals materialize
   boxed and go out in canonical order, like the boxed path. *)
and renew_ids t self pred lifetime =
  let ns = node t self in
  Hashtbl.remove ns.renewing pred;
  match Hashtbl.find_opt ns.fshipped pred with
  | None -> ()
  | Some set when Fset.is_empty set -> ()
  | Some set ->
    let locs = loc_index_map t.view_program in
    List.iter
      (fun (tuple, ids) ->
        ignore
          (t.transport.Transport.send ~src:self
             ~dst:(owner_exn (Hashtbl.find_opt locs pred) pred tuple)
             { pred; tuple; ids = Some ids }))
      (List.sort
         (fun (a, _) (b, _) -> Store.Tuple.compare a b)
         (Fset.fold
            (fun ids acc -> (Intern.tuple_of_ids ids, ids) :: acc)
            set []));
    ensure_renewal t self pred lifetime

(* The public injection entry is the system boundary: tuples arriving
   from outside (the driver, a benchmark's event stream, program facts)
   get canonicalized here, once, so everything downstream — store
   residency, derived heads built from matched bindings, in-process
   message payloads — carries canonical elements by construction.  The
   internal callers ([emit], [receive], [flush]) bypass this wrapper:
   their tuples are already canonical, and re-probing the intern table
   on the hot fixpoint path costs more than it saves. *)
let insert t self pred tuple =
  if t.tuple_ids then begin
    (* One hash-cons pass translates the incoming tuple to ids; the
       boxed form handed onward is the canonical materialization, so
       lease keys and traces are byte-identical to the boxed mode's. *)
    let ids = Intern.tuple_ids tuple in
    insert_ids t self pred ids (Intern.tuple_of_ids ids)
  end
  else begin
    let tuple = if !Intern.enabled then Intern.tuple tuple else tuple in
    insert t self pred tuple
  end

(* ------------------------------------------------------------------ *)
(* Driving a run. *)

(* Load the program's facts into their owning nodes (at time zero, via
   zero-delay self events so ordering is deterministic).  Facts owned
   by nodes this runtime does not host are someone else's to load: in a
   multi-process run every worker calls [load_facts] on the same
   program and each fact lands exactly once, at its owner's host. *)
let load_facts t =
  List.iter
    (fun (f : Ast.fact) ->
      let tuple = Array.of_list f.Ast.fact_args in
      match tuple_location f.Ast.fact_loc tuple with
      | Some owner when Hashtbl.mem t.nodes owner ->
        t.transport.Transport.schedule ~delay:0.0 (fun () ->
            insert t owner f.Ast.fact_pred tuple)
      | Some _ -> ()
      | None ->
        (* Unlocated facts are broadcast to every node, in sorted node
           order so the event queue's tie-breaker sees a deterministic
           sequence. *)
        List.iter
          (fun owner ->
            t.transport.Transport.schedule ~delay:0.0 (fun () ->
                insert t owner f.Ast.fact_pred tuple))
          t.node_names)
    t.program.Ast.facts

type run_report = {
  stats : Netsim.Sim.stats;
  total_inserts : int;
  eval_stats : Eval.stats;
  wire_stats : Eval.stats;
  view_stats : Eval.stats;
}

let diff_stats (a : Eval.stats) (b : Eval.stats) : Eval.stats =
  {
    Eval.index_hits = a.Eval.index_hits - b.Eval.index_hits;
    scans = a.Eval.scans - b.Eval.scans;
    enumerated = a.Eval.enumerated - b.Eval.enumerated;
    matched = a.Eval.matched - b.Eval.matched;
    groups = a.Eval.groups - b.Eval.groups;
    group_probes = a.Eval.group_probes - b.Eval.group_probes;
    delta_tuples = a.Eval.delta_tuples - b.Eval.delta_tuples;
    strata_skipped = a.Eval.strata_skipped - b.Eval.strata_skipped;
    refresh_fallbacks = a.Eval.refresh_fallbacks - b.Eval.refresh_fallbacks;
  }

let run ?(until = infinity) ?(max_events = 1_000_000) t =
  (* Strand execution and view refresh accumulate into the runtime's
     own counters; the deltas across the run are this run's join
     profile, with the strand (wire) and view-refresh paths reported
     separately. *)
  let before_joins = Eval.snapshot t.joins in
  let before_wire = Eval.snapshot t.wire in
  let stats = t.transport.Transport.run ~until ~max_events in
  let wire_stats = diff_stats (Eval.snapshot t.wire) before_wire in
  let view_stats = diff_stats (Eval.snapshot t.joins) before_joins in
  let total_inserts =
    Hashtbl.fold (fun _ ns acc -> acc + ns.inserts) t.nodes 0
  in
  {
    stats;
    total_inserts;
    eval_stats = Eval.add_stats view_stats wire_stats;
    wire_stats;
    view_stats;
  }

(* Boxed view of an id-native node store, memoized by flat version:
   repeated observations of a quiescent node pay one materialization. *)
let materialized ns =
  let v = Flat.version ns.fdb in
  match ns.store_cache with
  | Some (v', s) when v' = v -> s
  | _ ->
    let s = Flat.to_store ns.fdb in
    ns.store_cache <- Some (v, s);
    s

(* The union of all node stores: the global database the distributed
   execution computed; comparable against the centralized evaluator. *)
let global_store t =
  Hashtbl.fold
    (fun _ ns acc ->
      Store.union (if t.tuple_ids then materialized ns else ns.store) acc)
    t.nodes Store.empty

let node_store t name =
  let ns = node t name in
  if t.tuple_ids then materialized ns else ns.store

let total_inserts t =
  Hashtbl.fold (fun _ ns acc -> acc + ns.inserts) t.nodes 0

(* Introspection for the incremental-refresh test harness. *)
let dirty_preds t name = Sset.elements (node t name).dirty
let node_leases t name = Softstate.Expiry.bindings (node t name).expiry
let incremental t = t.incremental_views
let tuple_ids t = t.tuple_ids
let refresh_seconds t = t.refresh_wall
let refresh_walks t = t.refresh_walks

let simulator t =
  match t.transport.Transport.sim with
  | Some sim -> sim
  | None ->
    invalid_arg
      "Dist.Runtime.simulator: this runtime is not backed by the simulator \
       transport"
