(* The Unix-domain-socket transport: one reactor per OS process,
   hosting a subset of the topology's nodes and speaking {!Wire}
   frames to peer processes over pre-connected stream sockets.

   The reactor owns a wall-clock timer queue (reusing the simulator's
   deterministic {!Netsim.Event_queue}, with times relative to the
   reactor's epoch) and a per-connection incremental decoder; its loop
   alternates running due timers with [select]-ing over peer sockets,
   so a burst of same-instant deliveries drains into the runtime's
   inbox before the zero-delay flush timer fires — the same batching
   the simulator's tie-ordered event queue produces.

   Send is topology-gated exactly as the simulator's is: a message
   without a live [src -> dst] link is counted dropped and never
   written, so a localized program sees the same connectivity it would
   in simulation.  (Link loss probability is NOT simulated on real
   sockets — the wire is reliable; loss experiments belong to the
   simulator backend.)

   Cross-process frames carry canonical boxed values only; arriving
   tuples are re-interned here, at the boundary, because interned-id
   spaces are per-process ({!Wire}).  Dead peers surface as EOF —
   mid-frame EOF raises a typed truncation — and the supervisor's
   polls put a read-timeout around hung workers ({!Wire.read_frame}). *)

module Intern = Ndlog.Intern

type conn = {
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  mutable eof : bool;
}

type t = {
  topo : Netsim.Topology.t;
  hosted : (string, unit) Hashtbl.t;
  (* Foreign node -> the socket to the process hosting it (processes
     hosting several nodes appear once per node, same fd). *)
  route : (string, Unix.file_descr) Hashtbl.t;
  conns : conn list;  (* deduplicated peer sockets *)
  control : conn option;  (* the supervisor channel, when attached *)
  handlers : (string, self:string -> src:string -> Wire.msg -> unit) Hashtbl.t;
  timers : (unit -> unit) Netsim.Event_queue.t;
  epoch : float;
  chunk : Bytes.t;
  mutable sent : int;  (* data frames written to peers *)
  mutable received : int;  (* data frames dispatched *)
  mutable dropped : int;  (* sends with no live link *)
  mutable bytes_out : int;
  mutable events : int;  (* timers fired + frames dispatched *)
  mutable stop : bool;
}

let create ~(topo : Netsim.Topology.t) ~hosted ~peers ?control () =
  let hosted_tbl = Hashtbl.create 4 in
  List.iter (fun n -> Hashtbl.replace hosted_tbl n ()) hosted;
  let route = Hashtbl.create 16 in
  let conns = ref [] in
  let conn_of fd =
    match List.find_opt (fun c -> c.fd == fd) !conns with
    | Some c -> c
    | None ->
      let c = { fd; dec = Wire.Decoder.create (); eof = false } in
      conns := c :: !conns;
      c
  in
  List.iter
    (fun (node, fd) ->
      Hashtbl.replace route node fd;
      ignore (conn_of fd))
    peers;
  {
    topo;
    hosted = hosted_tbl;
    route;
    conns = List.rev !conns;
    control =
      Option.map (fun fd -> { fd; dec = Wire.Decoder.create (); eof = false })
        control;
    handlers = Hashtbl.create 4;
    timers = Netsim.Event_queue.create ();
    epoch = Unix.gettimeofday ();
    chunk = Bytes.create 65536;
    sent = 0;
    received = 0;
    dropped = 0;
    bytes_out = 0;
    events = 0;
    stop = false;
  }

let now t = Unix.gettimeofday () -. t.epoch

(* Local clock, counters, shape queries. *)
let sent t = t.sent
let received t = t.received
let bytes_out t = t.bytes_out

let idle t =
  Netsim.Event_queue.is_empty t.timers
  && List.for_all (fun c -> Wire.Decoder.buffered c.dec = 0) t.conns

let stop t = t.stop <- true

(* ------------------------------------------------------------------ *)
(* Dispatch. *)

(* Boundary canonicalization: tuples decoded off the wire are fresh
   allocations; re-interning restores physical sharing for the boxed
   store (and the id-native receive path re-derives ids from the
   canonical tuple). *)
let canonicalize tuple = if !Intern.enabled then Intern.tuple tuple else tuple

let deliver t ~src ~dst ~pred ~tuple =
  match Hashtbl.find_opt t.handlers dst with
  | None -> ()
  | Some h ->
    t.events <- t.events + 1;
    h ~self:dst ~src { Wire.pred; tuple; ids = None }

let dispatch t ~on_control = function
  | Wire.Data { src; dst; pred; tuple } ->
    t.received <- t.received + 1;
    deliver t ~src ~dst ~pred ~tuple:(canonicalize tuple)
  | f -> on_control f

(* Drain one readable connection: read a chunk, feed the decoder, and
   dispatch every complete frame.  EOF with a partial frame buffered is
   a typed truncation; EOF at a frame boundary just retires the
   connection (the peer said everything it had to say). *)
let read_conn t ~on_control c =
  match Unix.read c.fd t.chunk 0 (Bytes.length t.chunk) with
  | 0 ->
    c.eof <- true;
    if Wire.Decoder.buffered c.dec > 0 then
      raise (Wire.Frame_error Wire.Truncated_stream)
  | n ->
    Wire.Decoder.feed c.dec t.chunk 0 n;
    let rec drain () =
      match Wire.Decoder.next c.dec with
      | Some f ->
        dispatch t ~on_control f;
        drain ()
      | None -> ()
    in
    drain ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run_due_timers t =
  let rec go () =
    match Netsim.Event_queue.peek_time t.timers with
    | Some tm when tm <= now t -> (
      match Netsim.Event_queue.pop t.timers with
      | Some (_, f) ->
        t.events <- t.events + 1;
        f ();
        go ()
      | None -> ())
    | _ -> ()
  in
  go ()

(* One reactor turn: timers due now, then at most one select round.
   Returns whether anything could still happen (live input or pending
   timers). *)
let turn t ~on_control ~max_wait =
  run_due_timers t;
  if t.stop then false
  else begin
    let live =
      List.filter_map
        (fun c -> if c.eof then None else Some c)
        (t.conns @ match t.control with Some c -> [ c ] | None -> [])
    in
    let timeout =
      match Netsim.Event_queue.peek_time t.timers with
      | Some tm -> Float.min max_wait (Float.max 0.0 (tm -. now t))
      | None -> max_wait
    in
    if live = [] then not (Netsim.Event_queue.is_empty t.timers)
    else begin
      (match Unix.select (List.map (fun c -> c.fd) live) [] [] timeout with
      | ready, _, _ ->
        List.iter
          (fun c -> if List.memq c.fd ready then read_conn t ~on_control c)
          live
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      true
    end
  end

(* Serve until told to stop: the worker's main loop.  Control frames
   (anything that is not [Data]) go to [on_control]; a [Bye] handler
   there calls {!stop}. *)
let serve t ~on_control =
  let rec loop () = if turn t ~on_control ~max_wait:0.05 then loop () in
  loop ()

(* ------------------------------------------------------------------ *)
(* The transport closure set. *)

let send t ~src ~dst (m : Wire.msg) =
  match Netsim.Topology.link t.topo src dst with
  | Some l when l.Netsim.Topology.up ->
    if Hashtbl.mem t.hosted dst then begin
      (* Co-hosted destination: loop back through a zero-delay timer so
         arrival ordering relative to already-scheduled work matches
         the simulator's tie-ordered queue. *)
      let pred = m.Wire.pred and tuple = m.Wire.tuple in
      Netsim.Event_queue.push t.timers ~time:(now t) (fun () ->
          deliver t ~src ~dst ~pred ~tuple);
      true
    end
    else begin
      match Hashtbl.find_opt t.route dst with
      | Some fd ->
        t.bytes_out <-
          t.bytes_out
          + Wire.write_frame fd
              (Wire.Data { src; dst; pred = m.Wire.pred; tuple = m.Wire.tuple });
        t.sent <- t.sent + 1;
        true
      | None ->
        t.dropped <- t.dropped + 1;
        false
    end
  | _ ->
    t.dropped <- t.dropped + 1;
    false

let transport t : Transport.t =
  {
    Transport.now = (fun () -> now t);
    send = (fun ~src ~dst m -> send t ~src ~dst m);
    schedule =
      (fun ~delay f ->
        Netsim.Event_queue.push t.timers ~time:(now t +. delay) f);
    set_handler = (fun node h -> Hashtbl.replace t.handlers node h);
    run =
      (fun ~until ~max_events ->
        (* Drive data traffic and timers until locally idle (one empty
           select round with nothing pending), a wall deadline, or an
           event budget.  Workers under a supervisor use {!serve}
           instead — this entry serves self-contained runs. *)
        let deadline =
          if until = infinity then infinity else now t +. until
        in
        let start_events = t.events in
        let start_sent = t.sent and start_recv = t.received in
        let start_dropped = t.dropped in
        let quiesced = ref false in
        let budget () = t.events - start_events < max_events in
        let rec loop () =
          if t.stop || (not (budget ())) || now t > deadline then ()
          else if idle t then begin
            (* One short grace round: anything already in flight lands
               here; a second consecutive idle observation quiesces. *)
            ignore (turn t ~on_control:ignore ~max_wait:0.02);
            if idle t then quiesced := true else loop ()
          end
          else if turn t ~on_control:ignore ~max_wait:0.05 then loop ()
          else quiesced := true
        in
        loop ();
        {
          Netsim.Sim.final_time = now t;
          events = t.events - start_events;
          messages_sent = t.sent - start_sent;
          messages_delivered = t.received - start_recv;
          messages_dropped = t.dropped - start_dropped;
          quiesced = !quiesced;
        });
    sim = None;
  }
