(* The node supervisor: real processes over real sockets.

   [run] forks one worker process per topology node.  Each worker
   builds a {!Socket} reactor over a pre-connected full mesh of
   [Unix.socketpair] streams (created before forking, so there are no
   listener or connect races), hosts its node in a {!Runtime} on that
   transport, loads the program's facts for the nodes it hosts, and
   serves until told to exit.  The program and topology reach the
   workers through the fork's heap — nothing is serialized to start a
   run; only tuples cross process boundaries afterwards.

   Quiescence is detected by a poll protocol over per-worker control
   channels.  Each poll asks every worker for a {!Wire.status}:
   whether its reactor is idle (no pending timers, no partial input)
   plus its monotone sent/received data-frame counters.  The run is
   declared converged when two {e consecutive} polls return identical
   snapshots in which every worker is idle and the global sum of sent
   frames equals the global sum of received frames — a frame still in
   flight (written but not yet dispatched) makes the sums differ, and
   the double snapshot guards the instant between a dispatch and the
   work it triggers.  This is sound for programs that terminate:
   hard-state protocols (the path-vector demo) reach a fixpoint and
   stop sending.  Soft-state programs with perpetual renewal timers
   never satisfy it in wall-clock time — run those on the simulator
   backend, whose virtual clock makes "forever" cheap.

   Every control read carries a timeout ({!Wire.read_frame}): a worker
   that died or hung fails the run with a typed error instead of
   hanging the supervisor.  After convergence the supervisor collects
   each worker's final store ([Dump] / [Store_dump]), dismisses the
   workers ([Bye]), and reaps them. *)

module Store = Ndlog.Store
module Intern = Ndlog.Intern

type worker = {
  w_pid : int;
  w_node : string;
  w_ctl : Unix.file_descr;  (* the supervisor's end of the control pair *)
}

type result = {
  stores : (string * Store.t) list;  (* per node, the final fixpoint *)
  wall_seconds : float;  (* fork to detected convergence *)
  data_frames : int;  (* cross-process data frames, summed over workers *)
  data_bytes : int;  (* their wire bytes, length prefixes included *)
  total_inserts : int;  (* tuple insertions, summed over workers *)
  polls : int;  (* quiescence polls until convergence *)
  workers : int;
}

exception Convergence_timeout of { polls : int; last : Wire.status list }

let () =
  Printexc.register_printer (function
    | Convergence_timeout { polls; _ } ->
      Some
        (Fmt.str
           "Dist.Supervisor: no convergence after %d quiescence polls" polls)
    | _ -> None)

(* The worker body: never returns.  Exceptions become a nonzero exit
   status (the supervisor's next control read then times out or sees
   EOF, failing the run with context on stderr). *)
let worker_main ~topo ~program ~self ~peers ~ctl =
  let exit_code =
    try
      let reactor =
        Socket.create ~topo ~hosted:[ self ] ~peers ~control:ctl ()
      in
      let rt =
        Runtime.create ~transport:(Socket.transport reactor) ~hosted:[ self ]
          topo program
      in
      Runtime.load_facts rt;
      Socket.serve reactor ~on_control:(function
        | Wire.Poll ->
          ignore
            (Wire.write_frame ctl
               (Wire.Status
                  {
                    Wire.st_idle = Socket.idle reactor;
                    st_sent = Socket.sent reactor;
                    st_received = Socket.received reactor;
                    st_bytes = Socket.bytes_out reactor;
                    st_inserts = Runtime.total_inserts rt;
                  }))
        | Wire.Dump ->
          let store = Runtime.node_store rt self in
          let rels =
            List.map (fun p -> (p, Store.tuples p store)) (Store.preds store)
          in
          ignore (Wire.write_frame ctl (Wire.Store_dump [ (self, rels) ]))
        | Wire.Bye -> Socket.stop reactor
        | _ -> ());
      0
    with e ->
      Printf.eprintf "[fvnd worker %s] %s\n%!" self (Printexc.to_string e);
      1
  in
  Unix._exit exit_code

let kill_all workers =
  List.iter
    (fun w ->
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
    workers

let run ?(read_timeout = 10.0) ?(poll_interval = 0.02) ?(max_polls = 500)
    (topo : Netsim.Topology.t) (program : Ndlog.Ast.program) : result =
  let nodes = List.sort String.compare (Netsim.Topology.nodes topo) in
  let n = List.length nodes in
  if n < 2 then invalid_arg "Dist.Supervisor.run: need at least two nodes";
  let node = Array.of_list nodes in
  (* Pre-connect everything before the first fork: a full mesh of
     socketpairs between workers ([mesh.(i).(j)] is i's end of the
     i<->j stream) plus one control pair per worker.  Whether a pair
     ever carries traffic is the topology's business — sends are
     link-gated in the reactor. *)
  let mesh = Array.make_matrix n n Unix.stdin in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      mesh.(i).(j) <- a;
      mesh.(j).(i) <- b
    done
  done;
  let ctl = Array.init n (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0) in
  (* Buffered output duplicated into children would print twice. *)
  flush stdout;
  flush stderr;
  let t0 = Unix.gettimeofday () in
  let spawn i =
    match Unix.fork () with
    | 0 ->
      (* Child i: keep its mesh row and its control end, close every
         other inherited socket. *)
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if a <> i && b <> i then begin
            Unix.close mesh.(a).(b);
            Unix.close mesh.(b).(a)
          end
          else begin
            (* The far end of this child's own pairs belongs to the
               other worker. *)
            let far = if a = i then mesh.(b).(a) else mesh.(a).(b) in
            Unix.close far
          end
        done
      done;
      Array.iteri
        (fun j (sup_end, w_end) ->
          Unix.close sup_end;
          if j <> i then Unix.close w_end)
        ctl;
      let peers =
        List.filteri (fun j _ -> j <> i) (List.mapi (fun j nm -> (nm, mesh.(i).(j))) nodes)
      in
      worker_main ~topo ~program ~self:node.(i) ~peers ~ctl:(snd ctl.(i))
    | pid -> { w_pid = pid; w_node = node.(i); w_ctl = fst ctl.(i) }
  in
  let workers = List.init n spawn in
  (* Supervisor: the mesh and the workers' control ends are the
     children's now. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      Unix.close mesh.(a).(b);
      Unix.close mesh.(b).(a)
    done
  done;
  Array.iter (fun (_, w_end) -> Unix.close w_end) ctl;
  let poll () =
    List.map
      (fun w ->
        ignore (Wire.write_frame w.w_ctl Wire.Poll);
        match Wire.read_frame ~timeout:read_timeout w.w_ctl with
        | Wire.Status st -> st
        | f ->
          failwith
            (Fmt.str "Dist.Supervisor: worker %s answered Poll with %s"
               w.w_node
               (match f with
               | Wire.Data _ -> "Data"
               | Wire.Store_dump _ -> "Store_dump"
               | _ -> "an unexpected frame")))
      workers
  in
  let stable prev snap =
    List.for_all (fun st -> st.Wire.st_idle) snap
    && List.fold_left (fun a st -> a + st.Wire.st_sent) 0 snap
       = List.fold_left (fun a st -> a + st.Wire.st_received) 0 snap
    && prev = Some snap
  in
  match
    let rec converge prev polls =
      if polls >= max_polls then
        raise
          (Convergence_timeout
             { polls; last = (match prev with Some s -> s | None -> []) });
      let snap = poll () in
      if stable prev snap then (snap, polls + 1)
      else begin
        ignore (Unix.select [] [] [] poll_interval);
        converge (Some snap) (polls + 1)
      end
    in
    converge None 0
  with
  | exception e ->
    kill_all workers;
    raise e
  | snap, polls ->
    let wall_seconds = Unix.gettimeofday () -. t0 in
    (* Collect final stores, dismiss, reap. *)
    let stores =
      try
        List.concat_map
          (fun w ->
            ignore (Wire.write_frame w.w_ctl Wire.Dump);
            match Wire.read_frame ~timeout:read_timeout w.w_ctl with
            | Wire.Store_dump dump ->
              List.map
                (fun (nm, rels) ->
                  ( nm,
                    List.fold_left
                      (fun acc (pred, tuples) ->
                        Store.add_list pred
                          (List.map
                             (fun tu ->
                               if !Intern.enabled then Intern.tuple tu else tu)
                             tuples)
                          acc)
                      Store.empty rels ))
                dump
            | _ -> failwith "Dist.Supervisor: worker answered Dump oddly")
          workers
      with e ->
        kill_all workers;
        raise e
    in
    List.iter (fun w -> ignore (Wire.write_frame w.w_ctl Wire.Bye)) workers;
    let ok =
      List.for_all
        (fun w ->
          match Unix.waitpid [] w.w_pid with
          | _, Unix.WEXITED 0 -> true
          | _ -> false)
        workers
    in
    if not ok then failwith "Dist.Supervisor: a worker exited abnormally";
    {
      stores;
      wall_seconds;
      data_frames = List.fold_left (fun a st -> a + st.Wire.st_sent) 0 snap;
      data_bytes = List.fold_left (fun a st -> a + st.Wire.st_bytes) 0 snap;
      total_inserts =
        List.fold_left (fun a st -> a + st.Wire.st_inserts) 0 snap;
      polls;
      workers = n;
    }
