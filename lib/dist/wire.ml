(* Binary wire framing for the cross-process transport.

   Every frame is a 4-byte big-endian length prefix followed by a
   tagged body.  Values travel in canonical boxed form: interned-id
   spaces are per-process, so a flat payload from one runtime is
   meaningless in another — the receiver re-interns at its own
   boundary (see {!Socket}).  The in-process simulator transport never
   serializes and keeps the id-native fast path.

   Decoding is incremental ({!Decoder}): sockets deliver arbitrary
   chunks, so a frame may arrive across many reads and one read may
   carry many frames.  Malformed input raises {!Frame_error} with a
   typed cause rather than failing obscurely downstream. *)

module Store = Ndlog.Store
module Value = Ndlog.Value

type msg = {
  pred : string;
  tuple : Store.Tuple.t;
  (* The flat payload when the sender runs id-natively: the receiver
     inserts by ids without re-probing the intern table.  [tuple] is
     always the canonical boxed form — traces and debugging read it.
     Never serialized: cross-process frames drop it at encode. *)
  ids : int array option;
}

type status = {
  st_idle : bool;
  st_sent : int;  (* data frames written to peers so far *)
  st_received : int;  (* data frames dispatched so far *)
  st_bytes : int;  (* data bytes written to peers so far *)
  st_inserts : int;  (* local tuple insertions so far *)
}

type frame =
  | Data of { src : string; dst : string; pred : string; tuple : Store.Tuple.t }
      (** a routed tuple between nodes *)
  | Poll  (** supervisor -> worker: report your status *)
  | Status of status  (** worker -> supervisor: the reply *)
  | Dump  (** supervisor -> worker: send your node stores *)
  | Store_dump of (string * (string * Store.Tuple.t list) list) list
      (** worker -> supervisor: per hosted node, per predicate, the
          tuples — the final fixpoint the supervisor compares against
          the simulated oracle *)
  | Bye  (** supervisor -> worker: drain and exit *)

type error =
  | Oversized_frame of int  (** declared length beyond [max_frame] *)
  | Truncated_stream  (** EOF inside a frame, or short body *)
  | Bad_tag of int  (** unknown frame or value tag *)
  | Read_timeout  (** no frame within the deadline: dead peer *)

exception Frame_error of error

let pp_error ppf = function
  | Oversized_frame n ->
    Fmt.pf ppf "oversized frame: declared length %d exceeds the limit" n
  | Truncated_stream -> Fmt.pf ppf "truncated stream: EOF inside a frame"
  | Bad_tag t -> Fmt.pf ppf "bad frame: unknown tag %d" t
  | Read_timeout -> Fmt.pf ppf "read timeout: peer sent no frame in time"

let () =
  Printexc.register_printer (function
    | Frame_error e -> Some (Fmt.str "Wire.Frame_error: %a" pp_error e)
    | _ -> None)

(* Frames carry protocol traffic, not bulk data; anything bigger than
   this is a corrupt length prefix, not a real frame. *)
let max_frame = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Encoding: append to a [Buffer.t]. *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let put_u32 b n =
  put_u8 b (n lsr 24);
  put_u8 b (n lsr 16);
  put_u8 b (n lsr 8);
  put_u8 b n

let put_i64 b n =
  put_u32 b (n asr 32);
  put_u32 b n

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let rec put_value b = function
  | Value.Int n ->
    put_u8 b 0;
    put_i64 b n
  | Value.Str s ->
    put_u8 b 1;
    put_string b s
  | Value.Bool v ->
    put_u8 b 2;
    put_u8 b (if v then 1 else 0)
  | Value.Addr a ->
    put_u8 b 3;
    put_string b a
  | Value.List l ->
    put_u8 b 4;
    put_u32 b (List.length l);
    List.iter (put_value b) l

let put_tuple b (t : Store.Tuple.t) =
  put_u32 b (Array.length t);
  Array.iter (put_value b) t

let put_body b = function
  | Data { src; dst; pred; tuple } ->
    put_u8 b 0;
    put_string b src;
    put_string b dst;
    put_string b pred;
    put_tuple b tuple
  | Poll -> put_u8 b 1
  | Status { st_idle; st_sent; st_received; st_bytes; st_inserts } ->
    put_u8 b 2;
    put_u8 b (if st_idle then 1 else 0);
    put_i64 b st_sent;
    put_i64 b st_received;
    put_i64 b st_bytes;
    put_i64 b st_inserts
  | Dump -> put_u8 b 3
  | Store_dump nodes ->
    put_u8 b 4;
    put_u32 b (List.length nodes);
    List.iter
      (fun (node, rels) ->
        put_string b node;
        put_u32 b (List.length rels);
        List.iter
          (fun (pred, tuples) ->
            put_string b pred;
            put_u32 b (List.length tuples);
            List.iter (put_tuple b) tuples)
          rels)
      nodes
  | Bye -> put_u8 b 5

let encode frame =
  let body = Buffer.create 64 in
  put_body body frame;
  let n = Buffer.length body in
  let b = Buffer.create (n + 4) in
  put_u32 b n;
  Buffer.add_buffer b body;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Decoding: a cursor over one complete frame body.  A read past the
   declared end means the body was shorter than its encoding claims —
   reported as a truncation. *)

type cursor = { data : Bytes.t; stop : int; mutable pos : int }

let need c n =
  if c.pos + n > c.stop then raise (Frame_error Truncated_stream)

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  let a = get_u8 c in
  let b = get_u8 c in
  let d = get_u8 c in
  let e = get_u8 c in
  (a lsl 24) lor (b lsl 16) lor (d lsl 8) lor e

let get_i64 c =
  let hi = get_u32 c in
  let lo = get_u32 c in
  (* Sign-extend through bit 62: OCaml ints are 63-bit here. *)
  (hi lsl 32) lor lo

let get_string c =
  let n = get_u32 c in
  need c n;
  let s = Bytes.sub_string c.data c.pos n in
  c.pos <- c.pos + n;
  s

let rec get_value c =
  match get_u8 c with
  | 0 -> Value.Int (get_i64 c)
  | 1 -> Value.Str (get_string c)
  | 2 -> Value.Bool (get_u8 c <> 0)
  | 3 -> Value.Addr (get_string c)
  | 4 ->
    let n = get_u32 c in
    Value.List (List.init n (fun _ -> get_value c))
  | t -> raise (Frame_error (Bad_tag t))

let get_tuple c =
  let n = get_u32 c in
  (* Guard the allocation: a corrupt count must not OOM. *)
  if n > c.stop - c.pos then raise (Frame_error Truncated_stream);
  Array.init n (fun _ -> get_value c)

let get_list c f =
  let n = get_u32 c in
  if n > c.stop - c.pos then raise (Frame_error Truncated_stream);
  List.init n (fun _ -> f c)

let get_body c =
  match get_u8 c with
  | 0 ->
    let src = get_string c in
    let dst = get_string c in
    let pred = get_string c in
    let tuple = get_tuple c in
    Data { src; dst; pred; tuple }
  | 1 -> Poll
  | 2 ->
    let st_idle = get_u8 c <> 0 in
    let st_sent = get_i64 c in
    let st_received = get_i64 c in
    let st_bytes = get_i64 c in
    let st_inserts = get_i64 c in
    Status { st_idle; st_sent; st_received; st_bytes; st_inserts }
  | 3 -> Dump
  | 4 ->
    Store_dump
      (get_list c (fun c ->
           let node = get_string c in
           let rels =
             get_list c (fun c ->
                 let pred = get_string c in
                 let tuples = get_list c get_tuple in
                 (pred, tuples))
           in
           (node, rels)))
  | 5 -> Bye
  | t -> raise (Frame_error (Bad_tag t))

let decode_body data ~off ~len =
  let c = { data; stop = off + len; pos = off } in
  let f = get_body c in
  if c.pos <> c.stop then raise (Frame_error Truncated_stream);
  f

(* ------------------------------------------------------------------ *)
(* Incremental decoder: feed chunks as the socket delivers them, pop
   complete frames as they become available. *)

module Decoder = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }
  let buffered d = d.len

  let feed d src off n =
    if n > 0 then begin
      if d.len + n > Bytes.length d.buf then begin
        let cap = max (d.len + n) (2 * Bytes.length d.buf) in
        let buf = Bytes.create cap in
        Bytes.blit d.buf 0 buf 0 d.len;
        d.buf <- buf
      end;
      Bytes.blit src off d.buf d.len n;
      d.len <- d.len + n
    end

  let header d =
    let g i = Char.code (Bytes.get d.buf i) in
    (g 0 lsl 24) lor (g 1 lsl 16) lor (g 2 lsl 8) lor g 3

  let next d =
    if d.len < 4 then None
    else begin
      let n = header d in
      if n > max_frame then raise (Frame_error (Oversized_frame n));
      if d.len < 4 + n then None
      else begin
        let frame = decode_body d.buf ~off:4 ~len:n in
        let rest = d.len - 4 - n in
        if rest > 0 then Bytes.blit d.buf (4 + n) d.buf 0 rest;
        d.len <- rest;
        Some frame
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Blocking IO over file descriptors. *)

(* [Unix.write] may accept only part of the buffer (full socket buffer,
   signal interruption): loop until every byte is out. *)
let write_frame fd frame =
  let b = encode frame in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | 0 -> raise (Frame_error Truncated_stream)
    | k -> off := !off + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  n

(* Read one frame, waiting at most [timeout] seconds (wall-clock across
   the whole frame, not per chunk): a peer that stops talking mid-frame
   still trips the deadline.  EOF with bytes buffered — or before any
   frame at all — is a truncation. *)
let read_frame ?(timeout = 10.0) fd =
  let d = Decoder.create () in
  let chunk = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Decoder.next d with
    | Some f -> f
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then raise (Frame_error Read_timeout);
      (match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> raise (Frame_error Read_timeout)
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> raise (Frame_error Truncated_stream)
        | n ->
          Decoder.feed d chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()))
  in
  go ()
