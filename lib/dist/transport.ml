(* The runtime's view of "the network": a record of closures, so the
   distributed runtime is generic over where its messages actually go —
   the in-process virtual-clock simulator ({!of_sim}, the default and
   the differential oracle) or real sockets between real processes
   ({!Socket.transport}).  A record rather than a functor keeps
   {!Runtime.t} monomorphic and the backend swappable at runtime. *)

type t = {
  now : unit -> float;
      (* the backend's clock: virtual for the simulator, wall-clock
         (epoch-relative) for sockets *)
  send : src:string -> dst:string -> Wire.msg -> bool;
  schedule : delay:float -> (unit -> unit) -> unit;
  set_handler : string -> (self:string -> src:string -> Wire.msg -> unit) -> unit;
  run : until:float -> max_events:int -> Netsim.Sim.stats;
  sim : Wire.msg Netsim.Sim.t option;
      (* the underlying simulator when there is one: failure injection
         and tracing are simulator-only affordances *)
}

let of_sim (sim : Wire.msg Netsim.Sim.t) : t =
  {
    now = (fun () -> Netsim.Sim.now sim);
    send = (fun ~src ~dst m -> Netsim.Sim.send sim ~src ~dst m);
    schedule = (fun ~delay f -> Netsim.Sim.schedule sim ~delay f);
    set_handler =
      (fun node h ->
        Netsim.Sim.set_handler sim node (fun _sim ~self ~src m -> h ~self ~src m));
    run = (fun ~until ~max_events -> Netsim.Sim.run ~until ~max_events sim);
    sim = Some sim;
  }
