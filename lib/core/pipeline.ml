(* The FVN framework of Figure 1, as an API.

   Each function realizes one (or a chain) of the figure's arcs:

   - [verify_program]  : arcs 4-5 — compile an NDlog program into its
     logical specification (Clark completion + aggregate axioms) and
     statically verify a list of properties with the theorem prover;
     every accepted proof is re-checked by the kernel.
   - [generate]        : arcs 1-3 — from a component-based design,
     verify the generated specification, then emit the NDlog program.
   - [execute]         : arc 7 — run an NDlog program, either on the
     centralized semi-naive engine or distributed over the simulator
     (localizing it first when required).
   - [model_check]     : arcs 6/8 — explore the program's transition
     system for a table invariant, with counterexample traces.

   [full_pipeline] strings design -> specification -> verification ->
   implementation -> execution together, returning every intermediate
   artefact: the executable witness that FVN "unifies design,
   specification, implementation, and verification ... within a
   logic-based framework". *)

module Ast = Ndlog.Ast

(* ------------------------------------------------------------------ *)
(* Verification (arcs 4-5). *)

type property_result = {
  property : Props.t;
  verdict : [ `Proved of Logic.Prove.outcome | `Failed of string ];
}

type verification = {
  theory : Logic.Theory.t;
  results : property_result list;
}

let proved v =
  List.for_all
    (fun r -> match r.verdict with `Proved _ -> true | `Failed _ -> false)
    v.results

let verify_theory ?(max_fuel = 5) thy (properties : Props.t list) :
    verification =
  let results =
    List.map
      (fun (p : Props.t) ->
        match Logic.Prove.prove ~max_fuel thy p.Props.formula with
        | Ok outcome -> { property = p; verdict = `Proved outcome }
        | Error e -> { property = p; verdict = `Failed e })
      properties
  in
  { theory = thy; results }

let verify_program ?max_fuel (program : Ast.program)
    (properties : Props.t list) : (verification, string) result =
  match Ndlog.Analysis.analyze program with
  | Error e -> Error (Fmt.str "%a" Ndlog.Analysis.pp_error e)
  | Ok _ ->
    Ok (verify_theory ?max_fuel (Logic.Completion.theory_of_program program) properties)

(* ------------------------------------------------------------------ *)
(* Verified code generation (arcs 1-3). *)

type generated = {
  model : Component.Model.t;
  gen_verification : verification;
  program : Ast.program;
}

let generate ?max_fuel ?(facts = []) (model : Component.Model.t)
    (properties : Props.t list) : (generated, string) result =
  match Component.Model.check ~facts model with
  | Error e -> Error (Fmt.str "%a" Component.Model.pp_error e)
  | Ok () ->
    let thy = Component.Model.to_theory model in
    let v = verify_theory ?max_fuel thy properties in
    if proved v then
      Ok
        {
          model;
          gen_verification = v;
          program = Component.Model.to_ndlog ~facts model;
        }
    else
      Error
        (Fmt.str "model verification failed: %a"
           Fmt.(
             list ~sep:(any "; ") (fun ppf r ->
                 match r.verdict with
                 | `Failed m -> Fmt.pf ppf "%s: %s" r.property.Props.prop_name m
                 | `Proved _ -> ()))
           (List.filter
              (fun r -> match r.verdict with `Failed _ -> true | _ -> false)
              v.results))

(* ------------------------------------------------------------------ *)
(* Execution (arc 7). *)

type execution =
  | Central of Ndlog.Eval.outcome
  | Distributed of {
      runtime : Dist.Runtime.t;
      report : Dist.Runtime.run_report;
      global : Ndlog.Store.t;
    }

let execute ?(max_rounds = 10_000) (program : Ast.program) : (execution, string) result =
  match Ndlog.Eval.run ~max_rounds program with
  | Ok outcome -> Ok (Central outcome)
  | Error e -> Error (Fmt.str "%a" Ndlog.Analysis.pp_error e)

(* As [execute], but over the sharded multicore engine: one fixpoint per
   location on a domain pool, falling back to the centralized engine for
   programs {!Ndlog.Shard.analyze} rejects. *)
let execute_sharded ?(max_rounds = 10_000)
    ?(domains = Domain.recommended_domain_count ()) (program : Ast.program) :
    (execution, string) result =
  match Ndlog.Eval.run_sharded ~max_rounds ~domains program with
  | Ok outcome -> Ok (Central outcome)
  | Error e -> Error (Fmt.str "%a" Ndlog.Analysis.pp_error e)

(* As [execute], also reporting the run's join profile (each outcome
   carries its own per-run counters). *)
let execute_instrumented ?max_rounds (program : Ast.program) :
    (execution * Ndlog.Eval.stats, string) result =
  match execute ?max_rounds program with
  | Error e -> Error e
  | Ok (Central outcome as exec) -> Ok (exec, outcome.Ndlog.Eval.stats)
  | Ok (Distributed { report; _ } as exec) ->
    Ok (exec, report.Dist.Runtime.eval_stats)

(* Distributed execution: localize if needed, derive the topology from
   the program's link facts unless one is supplied. *)
let topology_of_links (program : Ast.program) : Netsim.Topology.t =
  let topo = Netsim.Topology.create () in
  List.iter
    (fun (f : Ast.fact) ->
      if f.Ast.fact_pred = "link" then
        match f.Ast.fact_args with
        | [ s; d; c ] ->
          Netsim.Topology.add_link
            ~cost:(Ndlog.Value.as_int c)
            topo
            (Ndlog.Value.as_addr s)
            (Ndlog.Value.as_addr d)
        | _ -> ())
    program.Ast.facts;
  topo

let execute_distributed ?topology ?(max_events = 1_000_000)
    (program : Ast.program) : (execution, string) result =
  let localized =
    match Ndlog.Localize.check_localized program with
    | Ok () -> Ok program
    | Error _ -> (
      match Ndlog.Localize.rewrite_program program with
      | Ok r -> Ok r.Ndlog.Localize.program
      | Error e -> Error (Fmt.str "%a" Ndlog.Localize.pp_error e))
  in
  match localized with
  | Error e -> Error e
  | Ok program -> (
    let topo =
      match topology with Some t -> t | None -> topology_of_links program
    in
    match Dist.Runtime.create topo program with
    | exception Dist.Runtime.Not_localized m -> Error m
    | runtime ->
      Dist.Runtime.load_facts runtime;
      let report = Dist.Runtime.run ~max_events runtime in
      Ok
        (Distributed
           { runtime; report; global = Dist.Runtime.global_store runtime }))

(* ------------------------------------------------------------------ *)
(* Model checking (arcs 6/8). *)

let model_check ?max_states (program : Ast.program)
    (invariant : Ndlog.Store.t -> bool) =
  Mcheck.Ndlog_ts.check_table_invariant ?max_states program invariant

(* ------------------------------------------------------------------ *)
(* The whole framework, end to end. *)

type full_run = {
  fr_generated : generated;
  fr_execution : execution;
}

let full_pipeline ?max_fuel ?(facts = []) (model : Component.Model.t)
    (properties : Props.t list) : (full_run, string) result =
  match generate ?max_fuel ~facts model properties with
  | Error e -> Error e
  | Ok g -> (
    match execute g.program with
    | Error e -> Error e
    | Ok exec -> Ok { fr_generated = g; fr_execution = exec })

(* ------------------------------------------------------------------ *)
(* Reporting. *)

let pp_property_result ppf r =
  match r.verdict with
  | `Proved o ->
    Fmt.pf ppf "PROVED %s (%d proof steps, %d nodes explored, %.4fs)"
      r.property.Props.prop_name o.Logic.Prove.steps o.Logic.Prove.nodes_explored
      o.Logic.Prove.elapsed
  | `Failed m -> Fmt.pf ppf "FAILED %s: %s" r.property.Props.prop_name m

let pp_verification ppf v =
  List.iter (fun r -> Fmt.pf ppf "  %a@." pp_property_result r) v.results
