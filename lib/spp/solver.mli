(** Solvers and dynamics for Stable Paths Problem instances. *)

type classification =
  | Unsolvable  (** no stable assignment (Bad Gadget) *)
  | Unique  (** exactly one (Shortest-Paths, Good Gadget) *)
  | Multiple of int  (** several (Disagree has 2) *)

val stable_solutions : Instance.t -> Instance.assignment list
(** Exhaustive enumeration of consistent stable assignments (exact;
    gadget-sized instances only). *)

val classify : Instance.t -> classification

exception
  Missing_schedule_rng of {
    msr_component : string;  (** the run loop that tried to draw *)
    msr_schedule : string;  (** the schedule constructor in force *)
  }
(** Internal invariant violation: a randomized schedule reached a
    random draw without the RNG its run loop constructs at entry.
    Raised instead of a bare [Option.get] so a violation names the
    component and schedule. *)

val schedule_rng :
  component:string ->
  schedule:string ->
  Random.State.t option ->
  Random.State.t
(** The guard the schedule-driven run loops use (SPVP here, the BGP
    time loop in [Component.Bgp]); exposed so the test suite can
    exercise the raise.
    @raise Missing_schedule_rng on [None]. *)

(** The Simple Path Vector Protocol dynamics: nodes activate (recompute
    their best choice) under a schedule. *)
module Spvp : sig
  type schedule =
    | Synchronous  (** all nodes activate each round *)
    | Round_robin  (** one node per step, in order *)
    | Random of int  (** one random node per step, seeded *)

  type outcome = {
    converged : bool;
    oscillated : bool;
        (** a deterministic schedule revisited a non-stable state:
            provable oscillation *)
    steps : int;
    final : Instance.assignment;
    cycle_length : int option;
    trace : Instance.assignment list;
  }

  val activate : Instance.t -> Instance.assignment -> int -> Instance.assignment
  (** One node recomputes its best choice. *)

  val activate_all : Instance.t -> Instance.assignment -> Instance.assignment

  val run : ?max_steps:int -> ?schedule:schedule -> Instance.t -> outcome
  (** From the empty assignment.  Disagree oscillates under
      [Synchronous] and converges under asynchronous schedules; Bad
      Gadget never converges. *)

  val convergence_profile :
    ?runs:int -> ?max_steps:int -> Instance.t -> (bool * int) list
  (** (converged, steps) over many random schedules: the dispersion
      behind "delayed convergence". *)
end
