(* Solvers and dynamics for Stable Paths Problem instances.

   - [stable_solutions]: exhaustive enumeration of consistent stable
     assignments (the gadgets are tiny, so brute force is exact);
   - [classify]: solvable / multiple solutions / unsolvable — the
     trichotomy behind Shortest-Paths / Disagree / Bad Gadget;
   - [Spvp]: the Simple Path Vector Protocol dynamics: nodes activate
     (recompute their best choice) under a schedule; convergence,
     oscillation and divergence are observable, matching the "Disagree
     scenario in the presence of policy conflicts" of Section 3.2. *)

type classification =
  | Unsolvable
  | Unique
  | Multiple of int

(* Randomized schedules construct their RNG at [run] entry; reaching a
   random draw without one is an internal invariant violation.  The
   guard below reports it as a typed error naming the drawing run loop
   and the schedule in force — the same convention as the distributed
   runtime's [Missing_tuple_location] — instead of a bare
   [Option.get], whose [Invalid_argument "option is None"] names
   nothing.  Shared by every schedule-driven run loop (SPVP here, the
   BGP time loop in [Component.Bgp]). *)
exception
  Missing_schedule_rng of {
    msr_component : string;
    msr_schedule : string;
  }

let () =
  Printexc.register_printer (function
    | Missing_schedule_rng { msr_component; msr_schedule } ->
      Some
        (Fmt.str
           "internal error: %s reached a random draw under schedule %s \
            without an RNG"
           msr_component msr_schedule)
    | _ -> None)

let schedule_rng ~component ~schedule = function
  | Some st -> st
  | None ->
    raise
      (Missing_schedule_rng
         { msr_component = component; msr_schedule = schedule })

(* Enumerate all assignments where each node picks one of its permitted
   paths or the empty path, keep the consistent & stable ones. *)
let stable_solutions (t : Instance.t) : Instance.assignment list =
  let nodes = List.tl (Instance.nodes t) in
  let rec go acc assignment = function
    | [] ->
      if Instance.is_consistent t assignment && Instance.is_stable t assignment
      then Array.copy assignment :: acc
      else acc
    | u :: rest ->
      let options = [] :: Instance.permitted t u in
      List.fold_left
        (fun acc p ->
          assignment.(u) <- p;
          let acc = go acc assignment rest in
          assignment.(u) <- [];
          acc)
        acc options
  in
  go [] (Instance.empty_assignment t) nodes |> List.rev

let classify t : classification =
  match stable_solutions t with
  | [] -> Unsolvable
  | [ _ ] -> Unique
  | l -> Multiple (List.length l)

(* ------------------------------------------------------------------ *)
(* SPVP dynamics. *)

module Spvp = struct
  type schedule =
    | Synchronous  (* all nodes activate simultaneously each round *)
    | Round_robin  (* nodes activate one at a time, in order *)
    | Random of int  (* a random single activation per step, seeded *)

  type outcome = {
    converged : bool;
    oscillated : bool;  (* a state repeated without being stable *)
    steps : int;
    final : Instance.assignment;
    (* For oscillations: the length of the detected state cycle. *)
    cycle_length : int option;
    trace : Instance.assignment list;  (* visited states, in order *)
  }

  let activate t (a : Instance.assignment) u =
    let b = Array.copy a in
    b.(u) <- Instance.best t a u;
    b

  let activate_all t (a : Instance.assignment) =
    let b = Array.copy a in
    List.iter (fun u -> if u <> 0 then b.(u) <- Instance.best t a u) (Instance.nodes t);
    b

  let key (a : Instance.assignment) = Array.to_list a

  let run ?(max_steps = 1_000) ?(schedule = Round_robin) (t : Instance.t) :
      outcome =
    let seen = Hashtbl.create 64 in
    let rng =
      match schedule with
      | Random seed -> Some (Random.State.make [| seed |])
      | _ -> None
    in
    let next step a =
      match schedule with
      | Synchronous -> activate_all t a
      | Round_robin ->
        let n = Instance.size t in
        let u = 1 + (step mod (n - 1)) in
        activate t a u
      | Random _ ->
        let st = schedule_rng ~component:"Spp.Solver.Spvp.run" ~schedule:"Random" rng in
        let u = 1 + Random.State.int st (Instance.size t - 1) in
        activate t a u
    in
    let rec go step a trace =
      if Instance.is_stable t a then
        {
          converged = true;
          oscillated = false;
          steps = step;
          final = a;
          cycle_length = None;
          trace = List.rev (a :: trace);
        }
      else if step >= max_steps then
        {
          converged = false;
          oscillated = false;
          steps = step;
          final = a;
          cycle_length = None;
          trace = List.rev (a :: trace);
        }
      else
        let k = key a in
        match Hashtbl.find_opt seen k with
        | Some prev_step when rng = None ->
          (* Only deterministic schedules can conclude from a revisit. *)
          (* Deterministic schedule revisiting a non-stable state:
             provable oscillation. *)
          {
            converged = false;
            oscillated = true;
            steps = step;
            final = a;
            cycle_length = Some (step - prev_step);
            trace = List.rev (a :: trace);
          }
        | _ ->
          Hashtbl.replace seen k step;
          go (step + 1) (next step a) (a :: trace)
    in
    go 0 (Instance.empty_assignment t) []

  (* Convergence steps over many random schedules: the dispersion shows
     the "delayed convergence" effect for Disagree-like instances. *)
  let convergence_profile ?(runs = 50) ?(max_steps = 1_000) t =
    List.init runs (fun seed ->
        let o = run ~max_steps ~schedule:(Random seed) t in
        (o.converged, o.steps))
end
