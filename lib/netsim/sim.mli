(** The discrete-event network simulator (the paper's "local cluster"
    substitute): a {!Topology} plus an {!Event_queue}.

    Nodes register a message handler; {!send} schedules a delivery after
    the link's propagation delay (messages on down or missing links are
    dropped and counted); {!schedule}/{!at} post timed callbacks;
    {!run} processes events deterministically until quiescence, a time
    horizon, or an event budget — the budget is how non-converging
    protocols are detected rather than looped on. *)

type 'msg t

val create : ?seed:int -> Topology.t -> 'msg t
val now : 'msg t -> float
val topology : 'msg t -> Topology.t

val rng : 'msg t -> Random.State.t
(** The simulation's seeded RNG (determinism: draw only from this). *)

val set_tracing : 'msg t -> bool -> unit

val record : 'msg t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a trace line (no-op unless tracing). *)

val trace : 'msg t -> (float * string) list
(** Trace lines recorded so far (oldest first).  With tracing on, the
    simulator itself records every send, delivery, loss, drop, and
    link state change — the full message trace, usable as a
    determinism witness. *)

val set_handler :
  'msg t -> string -> ('msg t -> self:string -> src:string -> 'msg -> unit) -> unit

val send : 'msg t -> src:string -> dst:string -> 'msg -> bool
(** False (and a counted drop) when there is no live [src -> dst]
    link. *)

val inject : 'msg t -> delay:float -> src:string -> dst:string -> 'msg -> unit
(** Deliver without requiring a link (control-plane injection). *)

val schedule : 'msg t -> delay:float -> (unit -> unit) -> unit
val at : 'msg t -> time:float -> (unit -> unit) -> unit

(** Outcome of a {!run}. *)
type stats = {
  final_time : float;
  events : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  quiesced : bool;  (** the queue drained before any limit was hit *)
}

val step : 'msg t -> bool
(** Process one event; false when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> 'msg t -> stats
(** All counters in [stats] are per-run: a second [run] on the same
    simulation reports only the events and messages of its own
    window.  ([final_time] is the simulation clock, which is
    monotone across runs.) *)

val fail_link_at : 'msg t -> time:float -> string -> string -> unit
val restore_link_at : 'msg t -> time:float -> string -> string -> unit
