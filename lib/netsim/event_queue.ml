(* A deterministic discrete-event queue.

   Events are ordered by (time, sequence number): ties in simulated time
   are broken by insertion order, which makes whole simulations
   reproducible run to run.  Implemented as a size-balanced leftist
   heap. *)

type 'a t = {
  mutable heap : 'a node;
  mutable seq : int;
  mutable size : int;
}

and 'a node =
  | Leaf
  | Node of 'a node * key * 'a * 'a node * int  (* left, key, payload, right, rank *)

and key = {
  time : float;
  tie : int;
}

let key_le a b = a.time < b.time || (a.time = b.time && a.tie <= b.tie)

let rank = function Leaf -> 0 | Node (_, _, _, _, r) -> r

let rec merge a b =
  match a, b with
  | Leaf, t | t, Leaf -> t
  | Node (la, ka, va, ra, _), Node (_, kb, _, _, _) ->
    if key_le ka kb then
      let merged = merge ra b in
      if rank la >= rank merged then Node (la, ka, va, merged, rank merged + 1)
      else Node (merged, ka, va, la, rank la + 1)
    else merge b a

let create () = { heap = Leaf; seq = 0; size = 0 }

let is_empty q = q.size = 0
let length q = q.size

let push q ~time v =
  let k = { time; tie = q.seq } in
  q.seq <- q.seq + 1;
  q.size <- q.size + 1;
  q.heap <- merge q.heap (Node (Leaf, k, v, Leaf, 1))

let pop q =
  match q.heap with
  | Leaf -> None
  | Node (l, k, v, r, _) ->
    q.heap <- merge l r;
    q.size <- q.size - 1;
    Some (k.time, v)

let peek_time q =
  match q.heap with Leaf -> None | Node (_, k, _, _, _) -> Some k.time

(* Clearing also resets the insertion sequence: tie ids only order
   events against other events in the same queue content, and the queue
   is empty here, so restarting from 0 is observationally equivalent —
   and it keeps a long-lived, repeatedly-cleared queue's tie ids from
   growing without bound.  (The model test covers clear-then-push
   tie-breaking explicitly.) *)
let clear q =
  q.heap <- Leaf;
  q.seq <- 0;
  q.size <- 0
