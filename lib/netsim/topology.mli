(** Network topologies: named nodes and directed links with per-link
    delay, metric cost, and an up/down flag for failure injection.
    Mutable — the simulator flips link state during runs. *)

type link = {
  src : string;
  dst : string;
  delay : float;
  cost : int;
  loss : float;  (** probability a message on this link is lost *)
  mutable up : bool;
}

type t

val create : unit -> t

val add_node : t -> string -> unit
(** Idempotent. *)

val add_link :
  ?delay:float -> ?cost:int -> ?loss:float -> t -> string -> string -> unit
(** Directed; adds endpoints as nodes.  Defaults: delay 1.0, cost 1,
    loss 0. *)

val add_duplex :
  ?delay:float -> ?cost:int -> ?loss:float -> t -> string -> string -> unit
val link : t -> string -> string -> link option
val link_up : t -> string -> string -> bool
val set_link_state : t -> string -> string -> bool -> unit
val fail_duplex : t -> string -> string -> unit
val restore_duplex : t -> string -> string -> unit

val nodes : t -> string list
(** In insertion order. *)

val links : t -> link list
(** Sorted by (src, dst). *)

val up_links : t -> link list

val neighbors : t -> string -> string list
(** Destinations of live out-links. *)

(** {1 Generators}

    Nodes are named [n0 .. n(k-1)]; all generated graphs are symmetric. *)

val node : int -> string
val line : ?delay:float -> ?cost:(int -> int) -> int -> t
val ring : ?delay:float -> ?cost:(int -> int) -> int -> t
val star : ?delay:float -> ?cost:(int -> int) -> int -> t

val grid : ?delay:float -> ?cost:(int -> int) -> int -> t
(** A [k x k] 4-neighbour mesh, node [n(r*k+c)] at row [r], column [c]
    (the naming convention of [Ndlog.Programs.grid_links]). *)

val random : ?seed:int -> ?extra:int -> ?delay:float -> ?max_cost:int -> int -> t
(** Random spanning tree plus [extra] chords; connected; deterministic
    in [seed]. *)

(** {1 Automorphisms}

    Node permutations preserving the labeled link structure, consumed
    by the model checker's symmetry reduction ([Mcheck.Symmetry]). *)

val is_automorphism : t -> (string * string) list -> bool
(** Is the permutation (an association list; unlisted nodes are fixed)
    an automorphism?  It must be a bijection on the node set and map
    every link onto a link with the same cost, delay, loss, and up
    flag — a failed link breaks the symmetry that would map it onto a
    live one. *)

val automorphism_generators : t -> (string * string) list list
(** Generators (not the full group): ring rotation and reflection,
    grid transpose and flip (spanning the dihedral groups), and twin
    transpositions of structurally identical nodes (spanning the
    symmetric group on a star's leaves).  Candidates are proposed
    structurally and validated with {!is_automorphism}, so every
    returned permutation is an automorphism; asymmetric topologies
    (e.g. distinct per-link costs) yield [[]]. *)

val pp : t Fmt.t
