(** A deterministic discrete-event queue.

    Events are ordered by (time, insertion sequence): ties in simulated
    time are broken FIFO, which makes whole simulations reproducible
    run to run. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** The earliest event, removed. *)

val peek_time : 'a t -> float option
(** Time of the earliest event, without removing it. *)

val clear : 'a t -> unit
(** Empty the queue.  Also resets the insertion sequence, so FIFO
    tie-breaking restarts from scratch for subsequently pushed events
    (equivalent behaviour — tie ids only order events against
    coexisting ones — stated here so the contract is explicit). *)
