(* Network topologies: named nodes and directed links with per-link
   delay, metric cost, and an up/down flag (for failure injection).

   Topologies are mutable: the simulator flips link state during a run
   to model churn.  All generators produce symmetric graphs (both
   directions present) with deterministic structure. *)

type link = {
  src : string;
  dst : string;
  delay : float;
  cost : int;
  loss : float;  (* probability a message on this link is lost *)
  mutable up : bool;
}

type t = {
  mutable nodes : string list;
  links : (string * string, link) Hashtbl.t;
}

let create () = { nodes = []; links = Hashtbl.create 64 }

let add_node t n = if not (List.mem n t.nodes) then t.nodes <- t.nodes @ [ n ]

let add_link ?(delay = 1.0) ?(cost = 1) ?(loss = 0.0) t src dst =
  add_node t src;
  add_node t dst;
  Hashtbl.replace t.links (src, dst) { src; dst; delay; cost; loss; up = true }

let add_duplex ?delay ?cost ?loss t a b =
  add_link ?delay ?cost ?loss t a b;
  add_link ?delay ?cost ?loss t b a

let link t src dst = Hashtbl.find_opt t.links (src, dst)

let link_up t src dst =
  match link t src dst with Some l -> l.up | None -> false

let set_link_state t src dst up =
  match link t src dst with
  | Some l -> l.up <- up
  | None -> ()

let fail_duplex t a b =
  set_link_state t a b false;
  set_link_state t b a false

let restore_duplex t a b =
  set_link_state t a b true;
  set_link_state t b a true

let nodes t = t.nodes

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> Stdlib.compare (a.src, a.dst) (b.src, b.dst))

let up_links t = List.filter (fun l -> l.up) (links t)

let neighbors t n =
  List.filter_map
    (fun l -> if l.src = n && l.up then Some l.dst else None)
    (links t)

(* ------------------------------------------------------------------ *)
(* Generators (node names n0, n1, ...). *)

let node i = Printf.sprintf "n%d" i

let line ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = create () in
  for i = 0 to k - 1 do
    add_node t (node i)
  done;
  for i = 0 to k - 2 do
    add_duplex ~delay ~cost:(cost i) t (node i) (node (i + 1))
  done;
  t

let ring ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = line ~delay ~cost k in
  add_duplex ~delay ~cost:(cost (k - 1)) t (node (k - 1)) (node 0);
  t

let star ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = create () in
  add_node t (node 0);
  for i = 1 to k - 1 do
    add_duplex ~delay ~cost:(cost i) t (node 0) (node i)
  done;
  t

(* A k x k grid (4-neighbour mesh), node n(r*k+c) at row r, column c —
   the same naming convention as {!Ndlog.Programs.grid_links}. *)
let grid ?(delay = 1.0) ?(cost = fun _ -> 1) k =
  let t = create () in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      add_node t (node ((r * k) + c))
    done
  done;
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      let i = (r * k) + c in
      if c + 1 < k then add_duplex ~delay ~cost:(cost i) t (node i) (node (i + 1));
      if r + 1 < k then add_duplex ~delay ~cost:(cost i) t (node i) (node (i + k))
    done
  done;
  t

(* Random connected graph: spanning tree plus [extra] chords, seeded. *)
let random ?(seed = 42) ?(extra = 0) ?(delay = 1.0) ?(max_cost = 10) k =
  let st = Random.State.make [| seed |] in
  let t = create () in
  add_node t (node 0);
  for i = 1 to k - 1 do
    let parent = Random.State.int st i in
    add_duplex ~delay ~cost:(1 + Random.State.int st max_cost) t (node i)
      (node parent)
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < extra * 20 do
    incr attempts;
    let i = Random.State.int st k and j = Random.State.int st k in
    if i <> j && link t (node i) (node j) = None then begin
      add_duplex ~delay ~cost:(1 + Random.State.int st max_cost) t (node i)
        (node j);
      incr added
    end
  done;
  t

(* ------------------------------------------------------------------ *)
(* Automorphisms: node permutations preserving the labeled link
   structure (cost, delay, loss, and the up flag all count — a failed
   link breaks the symmetry that would map it onto a live one).  The
   model checker's symmetry reduction quotients its visited table by
   the group these generators span. *)

let is_automorphism t (p : (string * string) list) =
  let image n = match List.assoc_opt n p with Some m -> m | None -> n in
  let ns = nodes t in
  let imgs = List.map image ns in
  List.equal String.equal
    (List.sort_uniq String.compare imgs)
    (List.sort String.compare ns)
  && List.for_all
       (fun l ->
         match link t (image l.src) (image l.dst) with
         | Some l' ->
           l'.cost = l.cost && l'.delay = l.delay && l'.loss = l.loss
           && l'.up = l.up
         | None -> false)
       (links t)
(* A bijection on nodes mapping every link onto a link with the same
   attributes is injective on links; with finitely many links that
   also makes it surjective, so non-links map to non-links. *)

let automorphism_generators t =
  let ns = nodes t in
  let k = List.length ns in
  if k = 0 then []
  else begin
    let candidates = ref [] in
    let add_fn f = candidates := List.map (fun n -> (n, f n)) ns :: !candidates in
    (* Structural candidates for index-named topologies (the generators
       above name nodes n0..n(k-1)): ring rotation/reflection, and
       transpose plus horizontal flip for square grids (together they
       generate the dihedral group D4). *)
    let index n =
      if String.length n >= 2 && n.[0] = 'n' then
        int_of_string_opt (String.sub n 1 (String.length n - 1))
      else None
    in
    let indexed =
      List.for_all
        (fun n -> match index n with Some i -> i >= 0 && i < k | None -> false)
        ns
      && List.length (List.sort_uniq Int.compare (List.filter_map index ns)) = k
    in
    if indexed then begin
      let by_index f n = match index n with Some i -> node (f i) | None -> n in
      if k >= 3 then begin
        add_fn (by_index (fun i -> (i + 1) mod k));
        add_fn (by_index (fun i -> (k - i) mod k))
      end;
      let side = int_of_float (Float.round (sqrt (float_of_int k))) in
      if side >= 2 && side * side = k then begin
        let rc i = (i / side, i mod side) in
        add_fn
          (by_index (fun i ->
               let r, c = rc i in
               (c * side) + r));
        add_fn
          (by_index (fun i ->
               let r, c = rc i in
               (r * side) + (side - 1 - c)))
      end
    end;
    (* Twin swaps: transpositions of structurally identical nodes — the
       star's leaves, parallel branches.  Candidates are consecutive
       members of each link-signature class (enough to generate the
       symmetric group on the class); validation filters the rest. *)
    let tag l = (l.cost, l.delay, l.loss, l.up) in
    let signature n =
      ( List.sort compare
          (List.filter_map (fun l -> if l.src = n then Some (tag l) else None)
             (links t)),
        List.sort compare
          (List.filter_map (fun l -> if l.dst = n then Some (tag l) else None)
             (links t)) )
    in
    let classes = Hashtbl.create 16 in
    List.iter
      (fun n ->
        let sg = signature n in
        let cur = Option.value (Hashtbl.find_opt classes sg) ~default:[] in
        Hashtbl.replace classes sg (n :: cur))
      ns;
    Hashtbl.iter
      (fun _ members ->
        let rec pairs = function
          | a :: (b :: _ as rest) ->
            candidates :=
              List.map
                (fun n -> if n = a then (n, b) else if n = b then (n, a) else (n, n))
                ns
              :: !candidates;
            pairs rest
          | _ -> ()
        in
        pairs (List.sort String.compare members))
      classes;
    !candidates
    |> List.filter (fun p -> not (List.for_all (fun (a, b) -> String.equal a b) p))
    |> List.filter (is_automorphism t)
    |> List.sort_uniq compare
  end

let pp ppf t =
  Fmt.pf ppf "nodes: %a@." Fmt.(list ~sep:(any " ") string) t.nodes;
  List.iter
    (fun l ->
      Fmt.pf ppf "  %s -> %s (cost %d, delay %g%s)@." l.src l.dst l.cost l.delay
        (if l.up then "" else ", DOWN"))
    (links t)
