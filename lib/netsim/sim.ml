(* The discrete-event network simulator.

   A simulation couples a {!Topology} with an {!Event_queue}.  Nodes
   register a message handler; [send] enqueues a delivery after the
   link's propagation delay (messages on down links are dropped and
   counted).  [schedule] posts arbitrary timed callbacks (timers, link
   failures, protocol ticks).  [run] processes events in deterministic
   order until quiescence, a time horizon, or an event budget — the
   event budget is how non-converging protocols (count-to-infinity) are
   detected rather than looped on forever. *)

type 'msg event =
  | Deliver of { src : string; dst : string; msg : 'msg }
  | Callback of (unit -> unit)

type 'msg t = {
  topo : Topology.t;
  queue : 'msg event Event_queue.t;
  handlers : (string, 'msg t -> self:string -> src:string -> 'msg -> unit) Hashtbl.t;
  mutable now : float;
  mutable delivered : int;
  mutable dropped : int;
  mutable sent : int;
  mutable processed : int;
  mutable trace : (float * string) list;  (* reversed *)
  mutable tracing : bool;
  rng : Random.State.t;
}

let create ?(seed = 42) topo =
  {
    topo;
    queue = Event_queue.create ();
    handlers = Hashtbl.create 16;
    now = 0.0;
    delivered = 0;
    dropped = 0;
    sent = 0;
    processed = 0;
    trace = [];
    tracing = false;
    rng = Random.State.make [| seed |];
  }

let now t = t.now
let topology t = t.topo
let rng t = t.rng

let set_tracing t b = t.tracing <- b

let record t fmt =
  Format.kasprintf
    (fun s -> if t.tracing then t.trace <- (t.now, s) :: t.trace)
    fmt

let trace t = List.rev t.trace

let set_handler t node h = Hashtbl.replace t.handlers node h

(* Send [msg] from [src] to [dst].  Returns false (and counts a drop)
   when there is no live link. *)
let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  match Topology.link t.topo src dst with
  | Some l when l.Topology.up ->
    if l.Topology.loss > 0.0 && Random.State.float t.rng 1.0 < l.Topology.loss
    then begin
      t.dropped <- t.dropped + 1;
      record t "loss %s->%s" src dst;
      false
    end
    else begin
      if t.tracing then record t "send %s->%s" src dst;
      Event_queue.push t.queue ~time:(t.now +. l.Topology.delay)
        (Deliver { src; dst; msg });
      true
    end
  | Some _ | None ->
    t.dropped <- t.dropped + 1;
    record t "drop %s->%s" src dst;
    false

(* Deliver without requiring a link (control-plane style injection). *)
let inject t ~delay ~src ~dst msg =
  Event_queue.push t.queue ~time:(t.now +. delay) (Deliver { src; dst; msg })

let schedule t ~delay f =
  Event_queue.push t.queue ~time:(t.now +. delay) (Callback f)

let at t ~time f =
  Event_queue.push t.queue ~time:(max time t.now) (Callback f)

type stats = {
  final_time : float;
  events : int;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  quiesced : bool;  (* the event queue drained before any limit hit *)
}

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.now <- time;
    t.processed <- t.processed + 1;
    (match ev with
    | Deliver { src; dst; msg } -> (
      t.delivered <- t.delivered + 1;
      if t.tracing then record t "deliver %s->%s" src dst;
      match Hashtbl.find_opt t.handlers dst with
      | Some h -> h t ~self:dst ~src msg
      | None -> record t "no handler at %s" dst)
    | Callback f -> f ());
    true

let run ?(until = infinity) ?(max_events = 1_000_000) t =
  (* All four counters in the returned stats are per-run: deltas against
     the state at entry.  ([events] always was; the three message
     counters used to leak the simulation-lifetime totals, so a second
     [run] on the same sim reported phantom traffic.) *)
  let start_processed = t.processed in
  let start_sent = t.sent in
  let start_delivered = t.delivered in
  let start_dropped = t.dropped in
  let rec loop () =
    if t.processed - start_processed >= max_events then false
    else
      match Event_queue.peek_time t.queue with
      | None -> true
      | Some time when time > until -> false
      | Some _ ->
        ignore (step t);
        loop ()
  in
  let quiesced = loop () in
  {
    final_time = t.now;
    events = t.processed - start_processed;
    messages_sent = t.sent - start_sent;
    messages_delivered = t.delivered - start_delivered;
    messages_dropped = t.dropped - start_dropped;
    quiesced;
  }

(* Failure injection helpers: schedule a duplex link going down/up. *)
let fail_link_at t ~time a b =
  at t ~time (fun () ->
      record t "link %s<->%s down" a b;
      Topology.fail_duplex t.topo a b)

let restore_link_at t ~time a b =
  at t ~time (fun () ->
      record t "link %s<->%s up" a b;
      Topology.restore_duplex t.topo a b)
