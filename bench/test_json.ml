(* Unit tests for the ledger's JSON layer.  The one property that bit
   us in practice: [Json.to_string] must emit floats that reparse to
   the exact same float, and re-emitting the parsed tree must reproduce
   the same text (a fixpoint), or every ledger regeneration perturbs
   the carried history rows. *)

let fail fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let reparse s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> fail "reparse failed: %s (input %S)" e s

(* emit -> parse must preserve the float bit-exactly, and a second
   emit must be textually identical to the first. *)
let roundtrip f =
  let s1 = Json.to_string (Json.Float f) in
  (match reparse s1 with
  | Json.Float f'
    when Int64.equal (Int64.bits_of_float f') (Int64.bits_of_float f) ->
    ()
  | Json.Float f' -> fail "float %h reparsed as %h (text %S)" f f' s1
  | _ -> fail "float %h reparsed as a non-float (text %S)" f s1);
  let s2 = Json.to_string (reparse s1) in
  if s1 <> s2 then fail "float %h not an emit fixpoint: %S then %S" f s1 s2

let () =
  List.iter roundtrip
    [
      0.0;
      1.0;
      -1.5;
      (* The p99 that exposed the bug: six significant digits lose the
         tail, so a fixed %.6g emitter perturbed it on every rewrite. *)
      433.10972437525304;
      (* Needs all 17 digits. *)
      0.1 +. 0.2;
      1.0 /. 3.0;
      (* Tiny / huge magnitudes exercise the exponent path. *)
      1e-300;
      1.7976931348623157e308;
      2.2250738585072014e-308;
      (* Throughput- and latency-shaped values from real runs. *)
      26009.4217;
      77.125;
      1.0937284561230412;
    ];
  (* Whole-document fixpoint: a ledger-shaped tree must survive
     emit -> parse -> emit unchanged. *)
  let doc =
    Json.Obj
      [
        ("schema", Json.Int 6);
        ("speedup", Json.Float (26009.4217 /. 23883.991));
        ( "runs",
          Json.Arr
            [
              Json.Obj
                [
                  ("mode", Json.Str "interned");
                  ("p99_us", Json.Float 433.10972437525304);
                  ("ok", Json.Bool true);
                  ("note", Json.Str "quotes \" and \\ and\nnewlines");
                  ("nothing", Json.Null);
                ];
            ] );
      ]
  in
  let s1 = Json.to_string doc in
  let s2 = Json.to_string (reparse s1) in
  if s1 <> s2 then fail "document not an emit fixpoint:\n%s\nvs\n%s" s1 s2;
  print_endline "json round-trip: ok"
