(* A minimal JSON tree, emitter, and parser for the benchmark ledger
   (BENCH_ndlog.json).  Self-contained on purpose: the container has no
   JSON library, and the ledger only needs objects, arrays, numbers,
   strings, and booleans. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* Shortest representation that parses back to the same float: try
       the readable precisions first and fall back to %.17g, which is
       always exact.  A fixed %.6g looked fine in the ledger but
       silently lost precision on reparse — a p99 of 433.10972…
       re-emitted as 433.11, so every regeneration perturbed carried
       history rows. *)
    let exact p =
      let s = Printf.sprintf p f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match exact "%.6g" with
      | Some s -> s
      | None -> (
        match exact "%.12g" with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f)
    in
    (* Keep floats syntactically floats: %g prints 2.0 as "2", which
       would reparse as an Int and change the tree's shape. *)
    let s =
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
      else s ^ ".0"
    in
    Buffer.add_string b s
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    Buffer.add_string b "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        emit b ~indent:(indent + 2) x)
      xs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (indent + 2));
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\": ";
        emit b ~indent:(indent + 2) x)
      kvs;
    Buffer.add_char b '\n';
    Buffer.add_string b (pad indent);
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  emit b ~indent:0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for what [to_string] emits plus
   ordinary hand-edited JSON). *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* ASCII only; anything else round-trips as '?'. *)
          Buffer.add_char b (if code < 128 then Char.chr code else '?');
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Accessors. *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let as_arr = function Arr xs -> Some xs | _ -> None
