(* Smoke check for the benchmark ledger: BENCH_ndlog.json must parse
   as a schema-9 document carrying a non-empty E7 sweep (indexed vs.
   baseline timings), an E8 sharded sweep with per-domain timings, an
   E11 sweep (batched vs. per-tuple delta joins, with the enumeration
   reduction recorded per row), an E12 sweep (the distributed
   runtime's inbox batching vs. per-message deliveries, with the wire
   delta-group sizes recorded per row), an E13 sweep (incremental view
   refresh vs. from-scratch recomputation, with skipped strata and
   view-path enumeration recorded per row), an E14 churn section (one
   id-native and one boxed run of the sustained link/route churn
   workload, with identical final stores attested by matching insert
   and tuple counts, and — new in schema 8 — each run's refresh-cost
   breakdown: wall seconds inside view-refresh walks, the walk count,
   and the refresh share of the measurement window), an E15 section
   (per-probe representation costs,
   every operation with a positive ns/op and a positive id-probe
   speedup), an E16 section — new in schema 9 — (the socket transport:
   one run per ring size, each across one real OS process per node,
   with positive wall clock and wire traffic and the per-node
   fixpoints attested equal to the simulator backend's), an E17 section
   — new in schema 10 — (the model checker's reduction layer: one run
   per system/program/topology/mode with visited-state counts and the
   invariant verdict, verdict equality across each cell's completed
   modes, and at least one cell where a reduced mode strictly beats a
   completed plain baseline), and a
   run-history array.  Run by the @bench-smoke alias
   so a broken emitter (or a regression that stops a sweep from
   completing, a run diverging from its baseline fixpoint, or
   batching/incrementality losing its enumeration win) fails the
   build loudly. *)

let fail fmt = Fmt.kstr (fun m -> prerr_endline m; exit 1) fmt

let require_fields path what i row keys =
  List.iter
    (fun k ->
      match Json.member k row with
      | Some _ -> ()
      | None -> fail "%s: %s row %d lacks %S" path what i k)
    keys

let require_same_fixpoint path what i row =
  match Json.member "same_fixpoint" row with
  | Some (Json.Bool true) -> ()
  | _ -> fail "%s: %s row %d fixpoints diverge" path what i

let nonempty_sweeps path what section =
  match Option.bind (Json.member "sweeps" section) Json.as_arr with
  | Some (_ :: _ as s) -> s
  | _ -> fail "%s: empty or missing %s sweeps" path what

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_ndlog.json" in
  match Json.of_file path with
  | Error e -> fail "%s: does not parse: %s" path e
  | Ok v ->
    (match Json.member "schema" v with
    | Some (Json.Int 10) -> ()
    | _ -> fail "%s: missing schema=10" path);
    List.iter
      (fun k ->
        match Json.member k v with
        | Some _ -> ()
        | None -> fail "%s: missing top-level %S" path k)
      [
        "quick"; "host_cores"; "unix_time"; "e7"; "e8"; "e11"; "e12"; "e13";
        "e14"; "e15"; "e16"; "e17"; "history";
      ];
    (* E7: index layer on vs. off. *)
    let e7 = Option.get (Json.member "e7" v) in
    let sweeps = nonempty_sweeps path "e7" e7 in
    List.iteri
      (fun i row ->
        require_fields path "e7" i row
          [
            "program"; "topology"; "n"; "tuples"; "indexed_ms"; "baseline_ms";
            "speedup"; "same_fixpoint";
          ];
        require_same_fixpoint path "e7" i row)
      sweeps;
    (* E8: sharded evaluation across domain counts. *)
    let e8 = Option.get (Json.member "e8" v) in
    let shard_sweeps = nonempty_sweeps path "e8" e8 in
    let domain_counts =
      match Option.bind (Json.member "domain_counts" e8) Json.as_arr with
      | Some (_ :: _ as l) ->
        List.map
          (function Json.Int d -> d | _ -> fail "%s: bad domain count" path)
          l
      | _ -> fail "%s: empty or missing e8 domain_counts" path
    in
    List.iteri
      (fun i row ->
        require_fields path "e8" i row
          [
            "program"; "topology"; "n"; "shards"; "tuples"; "central_ms";
            "domain_ms"; "parallel_speedup"; "same_fixpoint";
          ];
        (match Json.member "domain_ms" row with
        | Some (Json.Obj kvs) ->
          List.iter
            (fun d ->
              if not (List.mem_assoc (string_of_int d) kvs) then
                fail "%s: e8 row %d lacks a timing for %d domains" path i d)
            domain_counts
        | _ -> fail "%s: e8 row %d domain_ms is not an object" path i);
        require_same_fixpoint path "e8" i row)
      shard_sweeps;
    (* E11: batched vs. per-tuple delta joins.  Every row must record a
       strict enumeration reduction on top of the identical fixpoint. *)
    let e11 = Option.get (Json.member "e11" v) in
    let batch_sweeps = nonempty_sweeps path "e11" e11 in
    List.iteri
      (fun i row ->
        require_fields path "e11" i row
          [
            "program"; "topology"; "n"; "tuples"; "batched_ms"; "per_tuple_ms";
            "speedup"; "groups"; "group_probes"; "enumerated_batched";
            "enumerated_per_tuple"; "enum_reduced"; "same_fixpoint";
          ];
        (match Json.member "enum_reduced" row with
        | Some (Json.Bool true) -> ()
        | _ -> fail "%s: e11 row %d lost the enumeration reduction" path i);
        require_same_fixpoint path "e11" i row)
      batch_sweeps;
    (* E12: the distributed runtime's inbox batching vs. per-message
       deliveries.  Every row must record the identical fixpoint; ring
       rows at n >= 8 must also record coalesced flushes (mean wire
       delta-group size > 1) and a strict wire-path enumeration
       reduction. *)
    let e12 = Option.get (Json.member "e12" v) in
    let inbox_sweeps = nonempty_sweeps path "e12" e12 in
    List.iteri
      (fun i row ->
        require_fields path "e12" i row
          [
            "program"; "topology"; "n"; "nodes"; "tuples"; "messages";
            "batched_ms"; "per_message_ms"; "speedup"; "wire_groups";
            "wire_delta_tuples"; "mean_group_size"; "enumerated_batched";
            "enumerated_per_message"; "enum_reduced"; "same_fixpoint";
          ];
        require_same_fixpoint path "e12" i row;
        let strict =
          match (Json.member "topology" row, Json.member "n" row) with
          | Some (Json.Str "ring"), Some (Json.Int n) -> n >= 8
          | _ -> false
        in
        if strict then begin
          (match Json.member "mean_group_size" row with
          | Some (Json.Float g) when g > 1.0 -> ()
          | _ -> fail "%s: e12 row %d mean wire group size not > 1" path i);
          match Json.member "enum_reduced" row with
          | Some (Json.Bool true) -> ()
          | _ ->
            fail "%s: e12 row %d lost the wire enumeration reduction" path i
        end)
      inbox_sweeps;
    (* E13: incremental view refresh vs. from-scratch recomputation.
       Every row must record the identical fixpoint (which the bench
       itself asserts covers per-node stores and message counts); ring
       rows at n >= 8 must also record skipped strata and a strict
       view-path enumeration reduction. *)
    let e13 = Option.get (Json.member "e13" v) in
    let incr_sweeps = nonempty_sweeps path "e13" e13 in
    List.iteri
      (fun i row ->
        require_fields path "e13" i row
          [
            "program"; "topology"; "n"; "nodes"; "tuples"; "messages";
            "incremental_ms"; "scratch_ms"; "speedup"; "strata_skipped";
            "refresh_fallbacks"; "enumerated_incremental";
            "enumerated_scratch"; "enum_reduced"; "same_fixpoint";
          ];
        require_same_fixpoint path "e13" i row;
        let strict =
          match (Json.member "topology" row, Json.member "n" row) with
          | Some (Json.Str "ring"), Some (Json.Int n) -> n >= 8
          | _ -> false
        in
        if strict then begin
          (match Json.member "strata_skipped" row with
          | Some (Json.Int s) when s > 0 -> ()
          | _ -> fail "%s: e13 row %d skipped no strata" path i);
          match Json.member "enum_reduced" row with
          | Some (Json.Bool true) -> ()
          | _ ->
            fail "%s: e13 row %d lost the view enumeration reduction" path i
        end)
      incr_sweeps;
    (* E14: sustained churn, one id-native and one boxed run (field-wise
       medians over interleaved repetitions).  The bench itself aborts
       if any repetition's final stores diverge; the ledger re-attests
       that by carrying identical insert and tuple counts per mode, and
       the throughput / latency fields must be positive (a zero means
       the measurement window never ran). *)
    let e14 = Option.get (Json.member "e14" v) in
    let e14_runs =
      match Option.bind (Json.member "runs" e14) Json.as_arr with
      | Some (_ :: _ as r) -> r
      | _ -> fail "%s: empty or missing e14 runs" path
    in
    let churn_num row k =
      match Json.member k row with
      | Some (Json.Float f) -> f
      | Some (Json.Int n) -> float_of_int n
      | _ -> fail "%s: e14 run lacks numeric %S" path k
    in
    List.iteri
      (fun i row ->
        require_fields path "e14" i row
          [
            "mode"; "nodes"; "events"; "measured_events"; "inserts";
            "wall_s"; "tuples_per_sec"; "events_per_sec"; "p50_us"; "p99_us";
            "max_us"; "live_words"; "heap_words"; "interned_values";
            "messages"; "tuples"; "refresh_s"; "refresh_walks";
            "refresh_share";
          ];
        List.iter
          (fun k ->
            if churn_num row k <= 0.0 then
              fail "%s: e14 run %d has non-positive %S" path i k)
          [
            "inserts"; "tuples_per_sec"; "p99_us"; "live_words"; "tuples";
            "refresh_s"; "refresh_walks";
          ];
        (* The refresh share is a proper fraction of the measurement
           window: strictly positive (the churn workload refreshes
           every node repeatedly) and strictly below the whole wall. *)
        let share = churn_num row "refresh_share" in
        if not (share > 0.0 && share < 1.0) then
          fail "%s: e14 run %d refresh_share %g not in (0, 1)" path i share)
      e14_runs;
    let e14_mode m =
      match
        List.find_opt
          (fun row -> Json.member "mode" row = Some (Json.Str m))
          e14_runs
      with
      | Some row -> row
      | None -> fail "%s: e14 lacks a %S run" path m
    in
    let ids = e14_mode "ids" and boxed = e14_mode "boxed" in
    List.iter
      (fun k ->
        if churn_num ids k <> churn_num boxed k then
          fail "%s: e14 id-native and boxed runs disagree on %S" path k)
      [ "nodes"; "events"; "measured_events"; "inserts"; "tuples" ];
    (match Json.member "speedup" e14 with
    | Some (Json.Float s) when s > 0.0 -> ()
    | _ -> fail "%s: e14 lacks a positive speedup" path);
    (* Schema 8 summary: the per-mode refresh-cost pair must be present
       and positive — the metric the journaled in-place refresh is
       accountable to. *)
    List.iter
      (fun k ->
        match Json.member k e14 with
        | Some (Json.Float s) when s > 0.0 -> ()
        | _ -> fail "%s: e14 lacks a positive %S" path k)
      [
        "refresh_s_ids"; "refresh_s_boxed"; "refresh_share_ids";
        "refresh_share_boxed";
      ];
    (* E15: per-probe representation costs.  Every op must carry a
       positive ns/op, and the headline id-probe speedup must be a
       positive ratio. *)
    let e15 = Option.get (Json.member "e15" v) in
    let e15_ops =
      match Option.bind (Json.member "ops" e15) Json.as_arr with
      | Some (_ :: _ as l) -> l
      | _ -> fail "%s: empty or missing e15 ops" path
    in
    List.iteri
      (fun i row ->
        (match Json.member "op" row with
        | Some (Json.Str _) -> ()
        | _ -> fail "%s: e15 op %d lacks a name" path i);
        match Json.member "ns_per_op" row with
        | Some (Json.Float f) when f > 0.0 -> ()
        | _ -> fail "%s: e15 op %d has non-positive ns_per_op" path i)
      e15_ops;
    (match Json.member "probe_speedup" e15 with
    | Some (Json.Float s) when s > 0.0 -> ()
    | _ -> fail "%s: e15 lacks a positive probe_speedup" path);
    (* E16 (schema 9): the socket transport across real OS processes.
       Every run must carry positive wall clock and wire traffic, one
       process per node, and the fixpoint-equality attestation against
       the simulator backend. *)
    let e16 = Option.get (Json.member "e16" v) in
    let e16_runs =
      match Option.bind (Json.member "runs" e16) Json.as_arr with
      | Some (_ :: _ as r) -> r
      | _ -> fail "%s: empty or missing e16 runs" path
    in
    let mp_num row k =
      match Json.member k row with
      | Some (Json.Float f) -> f
      | Some (Json.Int n) -> float_of_int n
      | _ -> fail "%s: e16 run lacks numeric %S" path k
    in
    List.iteri
      (fun i row ->
        require_fields path "e16" i row
          [
            "nodes"; "processes"; "wall_s"; "sim_wall_s"; "data_frames";
            "data_bytes"; "inserts"; "polls"; "sim_messages";
            "same_fixpoint";
          ];
        List.iter
          (fun k ->
            if mp_num row k <= 0.0 then
              fail "%s: e16 run %d has non-positive %S" path i k)
          [
            "wall_s"; "sim_wall_s"; "data_frames"; "data_bytes"; "inserts";
            "polls";
          ];
        if mp_num row "processes" <> mp_num row "nodes" then
          fail "%s: e16 run %d is not one process per node" path i;
        require_same_fixpoint path "e16" i row)
      e16_runs;
    (match Json.member "all_same_fixpoint" e16 with
    | Some (Json.Bool true) -> ()
    | _ -> fail "%s: e16 fixpoints diverge from the simulator" path);
    (* E17 (schema 10): the model checker's reduction layer.  Every run
       names its mode and verdict; within each (system, program,
       topology) cell the completed modes must agree on the verdict,
       and at least one cell must show a reduced mode strictly below a
       completed plain baseline — losing every reduction would make
       the layer decorative. *)
    let e17 = Option.get (Json.member "e17" v) in
    let e17_runs =
      match Option.bind (Json.member "runs" e17) Json.as_arr with
      | Some (_ :: _ as r) -> r
      | _ -> fail "%s: empty or missing e17 runs" path
    in
    let rd_str row k =
      match Json.member k row with
      | Some (Json.Str s) -> s
      | _ -> fail "%s: e17 run lacks string %S" path k
    in
    let rd_int row k =
      match Json.member k row with
      | Some (Json.Int n) -> n
      | _ -> fail "%s: e17 run lacks integer %S" path k
    in
    List.iteri
      (fun i row ->
        require_fields path "e17" i row
          [
            "system"; "program"; "topology"; "mode"; "states"; "transitions";
            "truncated"; "wall_s"; "verdict"; "trace_len";
          ];
        (match rd_str row "mode" with
        | "plain" | "por" | "por-footprint" | "sym" | "both" -> ()
        | m -> fail "%s: e17 run %d has unknown mode %S" path i m);
        match rd_str row "verdict" with
        | "ok" | "truncated" -> ()
        | "violation" ->
          if rd_int row "trace_len" <= 0 then
            fail "%s: e17 run %d: violation without a counterexample" path i
        | s -> fail "%s: e17 run %d has unknown verdict %S" path i s)
      e17_runs;
    let e17_key row =
      (rd_str row "system", rd_str row "program", rd_str row "topology")
    in
    let e17_keys = List.sort_uniq compare (List.map e17_key e17_runs) in
    List.iter
      (fun key ->
        let verdicts =
          List.filter_map
            (fun row ->
              if e17_key row = key then
                match rd_str row "verdict" with
                | "truncated" -> None
                | s -> Some s
              else None)
            e17_runs
        in
        match verdicts with
        | [] -> ()
        | v :: rest ->
          if not (List.for_all (String.equal v) rest) then
            let s, p, t = key in
            fail "%s: e17 cell %s/%s/%s verdicts disagree" path s p t)
      e17_keys;
    let e17_reduced =
      List.exists
        (fun row ->
          rd_str row "mode" <> "plain"
          && rd_int row "states" > 0
          && List.exists
               (fun p ->
                 e17_key p = e17_key row
                 && rd_str p "mode" = "plain"
                 && Json.member "truncated" p = Some (Json.Bool false)
                 && rd_int p "states" > rd_int row "states")
               e17_runs)
        e17_runs
    in
    if not e17_reduced then
      fail "%s: e17 records no strict reduction over a completed plain run"
        path;
    (match Json.member "all_verdicts_agree" e17 with
    | Some (Json.Bool true) -> ()
    | _ -> fail "%s: e17 verdicts diverge across reduction modes" path);
    (* History: at least the run that wrote this file. *)
    let history =
      match Option.bind (Json.member "history" v) Json.as_arr with
      | Some (_ :: _ as h) -> h
      | _ -> fail "%s: empty or missing history" path
    in
    List.iteri
      (fun i entry ->
        require_fields path "history" i entry
          [ "unix_time"; "quick"; "host_cores" ])
      history;
    Fmt.pr
      "%s: ok (%d e7 rows, %d e8 rows, %d e11 rows, %d e12 rows, %d e13 \
       rows, %d e14 runs, %d e15 ops, %d e16 runs, %d e17 runs, %d history \
       entries)@."
      path (List.length sweeps) (List.length shard_sweeps)
      (List.length batch_sweeps) (List.length inbox_sweeps)
      (List.length incr_sweeps) (List.length e14_runs)
      (List.length e15_ops) (List.length e16_runs) (List.length e17_runs)
      (List.length history)
