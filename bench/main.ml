(* The FVN benchmark harness: one experiment per evaluation claim in the
   paper (see DESIGN.md section 3 for the claim -> experiment mapping,
   and EXPERIMENTS.md for paper-vs-measured numbers).

     E1 bestpath-proof            7-step / sub-second route-optimality proof
     E2 count-to-infinity         distance-vector divergence
     E3 disagree-convergence      delayed convergence under policy conflicts
     E4 algebra-obligations       base-algebra axioms discharged automatically
     E5 composition-preservation  lexProduct preservation theorems
     E6 fig2-bgp-pipeline         component model -> NDlog is property-preserving
     E7 ndlog-scaling             declarative execution efficiency
     E8 sharded-multicore         per-location fixpoints on OCaml domains
     E9 softstate-rewrite         cost of the hard-state rewrite
     E10 model-checking           transition systems + counterexamples
     E11 batched-deltas           group-at-a-time delta joins

   Usage:
     dune exec bench/main.exe               # run everything
     dune exec bench/main.exe e3 e7         # selected experiments
     dune exec bench/main.exe quick         # skip the slowest sweeps
     dune exec bench/main.exe e7 e8 json    # also write BENCH_ndlog.json

   Timing columns come from Bechamel (monotonic clock, OLS estimate per
   run); coarse one-shot times use Unix.gettimeofday — true wall clock,
   so the E8 multi-domain runs are measured honestly. *)

let quick = ref false

(* ------------------------------------------------------------------ *)
(* Table printing. *)

let rule () = Fmt.pr "%s@." (String.make 76 '-')

let banner id title claim =
  Fmt.pr "@.";
  rule ();
  Fmt.pr "%s: %s@." (String.uppercase_ascii id) title;
  Fmt.pr "paper claim: %s@." claim;
  rule ()

let table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let print_row cells =
    Fmt.pr "| %s |@."
      (String.concat " | "
         (List.map2
            (fun c w -> c ^ String.make (w - String.length c) ' ')
            cells widths))
  in
  print_row headers;
  Fmt.pr "|%s|@."
    (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter print_row rows

(* ------------------------------------------------------------------ *)
(* Bechamel helper: nanoseconds per run of a thunk. *)

let ns_per_run ?(name = "bench") (f : unit -> unit) : float =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name [ test ]) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let estimate = ref nan in
  Hashtbl.iter
    (fun _ v ->
      match Analyze.OLS.estimates v with
      | Some [ e ] -> estimate := e
      | _ -> ())
    results;
  !estimate

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Fmt.str "%.1f us" (ns /. 1e3)
  else Fmt.str "%.0f ns" ns

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1: the bestPathStrong proof. *)

let e1 () =
  banner "e1" "route-optimality proof (bestPathStrong)"
    "PVS proves it in 7 interactive steps, in a fraction of a second";
  let thy =
    Logic.Completion.theory_of_program (Ndlog.Programs.path_vector ())
  in
  let goal = (Fvn.Props.route_optimality ()).Fvn.Props.formula in
  let k n = Logic.Term.Fn (n, []) in
  let script =
    [
      ("skosimp*", Logic.Tactic.skosimp);
      ("expand bestPath", Logic.Tactic.expand "bestPath");
      ("flatten", Logic.Tactic.skosimp);
      ( "use bestPathCost_lb",
        Logic.Tactic.use "bestPathCost_lb"
          [ k "S"; k "D"; k "C"; k "P2"; k "C2" ] );
      ("grind", Logic.Tactic.grind ~max_fuel:2);
    ]
  in
  let script_result =
    match Logic.Tactic.run thy goal script with
    | Ok r -> r
    | Error e -> failwith ("scripted proof failed: " ^ e)
  in
  let auto =
    match Logic.Prove.prove thy goal with
    | Ok o -> o
    | Error e -> failwith ("auto proof failed: " ^ e)
  in
  let auto_ns =
    ns_per_run ~name:"bestPathStrong-auto" (fun () ->
        ignore (Logic.Prove.prove thy goal))
  in
  let script_ns =
    ns_per_run ~name:"bestPathStrong-script" (fun () ->
        ignore (Logic.Tactic.run thy goal script))
  in
  table
    [
      "mode"; "interactive steps"; "kernel inferences"; "checked"; "time/proof";
    ]
    [
      [
        "scripted (PVS-style)";
        string_of_int script_result.Logic.Tactic.script_steps;
        string_of_int script_result.Logic.Tactic.proof_size;
        string_of_bool script_result.Logic.Tactic.checked;
        pp_ns script_ns;
      ];
      [
        "automatic";
        "0";
        string_of_int auto.Logic.Prove.steps;
        string_of_bool auto.Logic.Prove.checked;
        pp_ns auto_ns;
      ];
    ];
  Fmt.pr
    "paper: 7 steps, fraction of a second | measured: %d scripted steps, %s@."
    script_result.Logic.Tactic.script_steps (pp_ns script_ns)

(* ------------------------------------------------------------------ *)
(* E2: count-to-infinity. *)

let e2 () =
  banner "e2" "count-to-infinity in distance-vector"
    "FVN exhibits count-to-infinity loops in the distance-vector protocol";
  let rows =
    List.map
      (fun (name, prog, bound) ->
        let p = Ndlog.Programs.with_links prog (Ndlog.Programs.ring_links 3) in
        let o = Ndlog.Eval.run_exn ~max_rounds:bound p in
        [
          name;
          string_of_int o.Ndlog.Eval.rounds;
          string_of_bool o.Ndlog.Eval.converged;
          string_of_int o.Ndlog.Eval.derivations;
        ])
      [
        ("distance-vector", Ndlog.Programs.distance_vector (), 40);
        ("path-vector", Ndlog.Programs.path_vector (), 10_000);
        ( "bounded distance-vector",
          Ndlog.Programs.bounded_distance_vector ~max_hops:8,
          10_000 );
      ]
  in
  Fmt.pr "declarative view (3-node ring, evaluation round bound 40):@.";
  table [ "program"; "rounds"; "converged"; "derivations" ] rows;
  Fmt.pr "@.operational view (line n0-n1-n2, n0<->n1 fails at t=20):@.";
  let rows =
    List.map
      (fun threshold ->
        let topo = Netsim.Topology.line 3 in
        let dv =
          Dist.Dv.create ~infinity_threshold:threshold ~period:5.0 topo
        in
        Dist.Dv.fail_link_at dv ~time:20.0 "n0" "n1";
        let r = Dist.Dv.run dv ~until:5_000.0 ~max_events:200_000 in
        [
          string_of_int threshold;
          string_of_bool r.Dist.Dv.counted_to_infinity;
          string_of_int r.Dist.Dv.max_cost_seen;
          string_of_int r.Dist.Dv.total_advertisements;
        ])
      [ 16; 32; 64 ]
  in
  table
    [
      "infinity threshold"; "counted to infinity"; "max metric";
      "advertisements";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: Disagree: delayed convergence under policy conflicts. *)

let e3 () =
  banner "e3" "policy conflicts: the Disagree scenario"
    "translated NDlog with conflicting policies shows delayed convergence";
  let module Bgp = Component.Bgp in
  let sync name c =
    let o = Bgp.run ~max_rounds:60 c ~schedule:Bgp.Sync in
    [
      name;
      "synchronous";
      string_of_bool o.Bgp.converged;
      string_of_bool o.Bgp.oscillated;
      (match o.Bgp.cycle_length with Some n -> string_of_int n | None -> "-");
      string_of_int o.Bgp.flaps;
    ]
  in
  let rr name c =
    let o = Bgp.run ~max_rounds:400 c ~schedule:Bgp.Pair_round_robin in
    [
      name;
      "round-robin";
      string_of_bool o.Bgp.converged;
      string_of_bool o.Bgp.oscillated;
      string_of_int o.Bgp.rounds;
      string_of_int o.Bgp.flaps;
    ]
  in
  table
    [ "config"; "schedule"; "converged"; "oscillated"; "cycle/rounds"; "flaps" ]
    [
      sync "disagree" Bgp.disagree;
      sync "agree" Bgp.agree;
      rr "disagree" Bgp.disagree;
      rr "agree" Bgp.agree;
    ];
  let runs = if !quick then 8 else 25 in
  let profile c = Bgp.convergence_profile ~runs ~max_rounds:600 c in
  let stats l f =
    let vals = List.map f l in
    let sum = List.fold_left ( + ) 0 vals in
    let mean = float_of_int sum /. float_of_int (List.length vals) in
    let mx = List.fold_left max 0 vals in
    (mean, mx)
  in
  let row name c =
    let p = profile c in
    let mr, xr = stats p (fun (_, r, _) -> r) in
    let mf, xf = stats p (fun (_, _, f) -> f) in
    [
      name;
      string_of_int (List.length (List.filter (fun (c, _, _) -> c) p));
      Fmt.str "%.1f" mr;
      string_of_int xr;
      Fmt.str "%.1f" mf;
      string_of_int xf;
    ]
  in
  Fmt.pr "@.near-synchronous random schedules (%d seeds):@." runs;
  table
    [
      "config"; "converged"; "mean rounds"; "max rounds"; "mean flaps";
      "max flaps";
    ]
    [ row "disagree" Bgp.disagree; row "agree" Bgp.agree ];
  (* Formal classification via the SPP bridge. *)
  let cls c =
    match Bgp.classify c ~dest:"d0" with
    | Ok Spp.Solver.Unique -> "unique (safe)"
    | Ok (Spp.Solver.Multiple n) -> Fmt.str "%d stable states (wedged)" n
    | Ok Spp.Solver.Unsolvable -> "unsolvable (divergent)"
    | Error e -> e
  in
  Fmt.pr "@.static classification (stable paths problem): disagree = %s, \
          agree = %s@."
    (cls Bgp.disagree) (cls Bgp.agree);
  Fmt.pr
    "shape check: disagree oscillates under synchrony, converges late and \
     flaps more under near-synchrony@."

(* ------------------------------------------------------------------ *)
(* E4: base algebra obligations. *)

let e4 () =
  banner "e4" "metarouting proof obligations for the base algebras"
    "the proof obligations are automatically discharged for all base algebras";
  let module A = Algebra.Axioms in
  let status = function
    | A.Discharged n -> Fmt.str "yes (%d)" n
    | A.Refuted _ -> "NO"
  in
  let rows =
    List.map
      (fun packed ->
        let r = A.check_packed packed in
        let get ax = status (List.assoc ax r.A.results) in
        [
          r.A.algebra;
          get A.Maximality;
          get A.Absorption;
          get A.Monotonicity;
          get A.Strict_monotonicity;
          get A.Isotonicity;
          (if A.well_behaved r then "converges" else "no guarantee");
        ])
      (Algebra.Base.all ())
  in
  table
    [
      "algebra"; "maximality"; "absorption"; "monotone"; "strict mono";
      "isotone"; "guarantee";
    ]
    rows;
  let ns =
    ns_per_run ~name:"discharge-all" (fun () ->
        List.iter (fun p -> ignore (A.check_packed p)) (Algebra.Base.all ()))
  in
  Fmt.pr "discharging the whole catalogue takes %s per pass@." (pp_ns ns);
  Fmt.pr
    "note: lpA's monotonicity is refuted by design — the paper's Section 4.1 \
     discusses exactly this gap in the idealized model@."

(* ------------------------------------------------------------------ *)
(* E5: composition preservation. *)

let e5 () =
  banner "e5" "composition operators (lexProduct) preserve the axioms"
    "proofs for composed protocols are automatically discharged; BGPSystem = \
     lexProduct[LP, RC]";
  let module RA = Algebra.Routing_algebra in
  let module T = Algebra.Theorems in
  let b v = if v then "y" else "n" in
  let algebras =
    [
      RA.pack (Algebra.Base.add_cost ());
      RA.pack (Algebra.Base.add_cost_strict ());
      RA.pack (Algebra.Base.local_pref ());
      RA.pack (Algebra.Base.bandwidth ());
      RA.pack (Algebra.Base.reliability ());
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (RA.Packed a) ->
      List.iter
        (fun (RA.Packed bb) ->
          let p = T.lex_preservation a bb in
          rows :=
            [
              p.T.composite;
              Fmt.str "M=%s SM=%s" (b p.T.a_monotone)
                (b p.T.a_strictly_monotone);
              Fmt.str "M=%s SM=%s" (b p.T.b_monotone)
                (b p.T.b_strictly_monotone);
              Fmt.str "M=%s SM=%s I=%s" (b p.T.predicts_monotone)
                (b p.T.predicts_strictly_monotone) (b p.T.predicts_isotone);
              Fmt.str "M=%s SM=%s I=%s" (b p.T.composite_monotone)
                (b p.T.composite_strictly_monotone) (b p.T.composite_isotone);
              (if T.sound p then "sound" else "UNSOUND");
            ]
            :: !rows)
        algebras)
    algebras;
  table
    [
      "composite"; "A side-conds"; "B side-conds"; "predicted"; "measured";
      "verdict";
    ]
    (List.rev !rows);
  let bgp = Algebra.Compose.bgp_system () in
  let r = Algebra.Axioms.check_all bgp in
  Fmt.pr
    "@.BGPSystem = lexProduct[LP, RC]: monotone=%b (inherits lpA's \
     refutation); maximality/absorption discharged=%b@."
    (Algebra.Axioms.holds r Algebra.Axioms.Monotonicity)
    (Algebra.Axioms.holds r Algebra.Axioms.Maximality
    && Algebra.Axioms.holds r Algebra.Axioms.Absorption)

(* ------------------------------------------------------------------ *)
(* E6: the Figure-2 pipeline is property-preserving. *)

let e6 () =
  banner "e6" "component model -> NDlog translation (Figure 2)"
    "verified component specifications translate into equivalent executable \
     NDlog";
  let module Bgp = Component.Bgp in
  let gen = Bgp.program () in
  Fmt.pr "generated program: %d rules from %d components@."
    (List.length gen.Ndlog.Ast.rules)
    (List.length (Component.Model.atoms_of Bgp.model));
  let rows =
    List.map
      (fun k ->
        let cfg = Bgp.chain k in
        let o = Bgp.run ~max_rounds:600 cfg ~schedule:Bgp.Pair_round_robin in
        let links =
          Ndlog.Programs.line_links k
          |> List.map (fun (f : Ndlog.Ast.fact) ->
                 {
                   f with
                   Ndlog.Ast.fact_args =
                     List.map
                       (function
                         | Ndlog.Value.Addr a ->
                           Ndlog.Value.Addr
                             ("as" ^ String.sub a 1 (String.length a - 1))
                         | v -> v)
                       f.Ndlog.Ast.fact_args;
                 })
        in
        let pv =
          Ndlog.Eval.run_exn
            (Ndlog.Programs.with_links (Ndlog.Programs.path_vector ()) links)
        in
        let pv_cost u =
          Ndlog.Store.tuples "bestPathCost" pv.Ndlog.Eval.db
          |> List.find_opt (fun t ->
                 Ndlog.Value.equal t.(0) (Ndlog.Value.Addr u)
                 && Ndlog.Value.equal t.(1) (Ndlog.Value.Addr "as0"))
          |> Option.map (fun t -> Ndlog.Value.as_int t.(2))
        in
        let bgp_cost u =
          List.find_map
            (fun (x, _, r) -> if x = u then Some r.Bgp.cost else None)
            o.Bgp.final_best
        in
        let agree =
          List.for_all
            (fun i ->
              let u = Printf.sprintf "as%d" i in
              bgp_cost u = pv_cost u)
            (List.init (k - 1) (fun i -> i + 1))
        in
        [
          string_of_int k;
          string_of_bool o.Bgp.converged;
          string_of_int o.Bgp.rounds;
          string_of_bool agree;
        ])
      (if !quick then [ 3; 4 ] else [ 3; 4; 5; 6 ])
  in
  table
    [
      "chain length"; "component BGP converged"; "rounds";
      "matches hand-written PV";
    ]
    rows;
  let prop =
    Fvn.Props.implication ~name:"importedHasPref"
      ~antecedent:("imported", [ "U"; "W"; "D"; "P"; "LP"; "C" ])
      ~consequent:("importPref", [ "U"; "W"; "LP" ])
      ()
  in
  match Logic.Prove.prove (Bgp.theory ()) prop.Fvn.Props.formula with
  | Ok o ->
    Fmt.pr "generated spec property importedHasPref: PROVED (%d steps)@."
      o.Logic.Prove.steps
  | Error e -> Fmt.pr "property FAILED: %s@." e

(* ------------------------------------------------------------------ *)
(* E7: NDlog execution scaling. *)

(* One E7 sweep point: semi-naive with the index layer on vs. off (the
   pre-index nested-loop engine: full scans, source-order bodies). *)
type sweep_row = {
  sw_prog : string;
  sw_topo : string;
  sw_n : int;  (* parameter: ring size or grid side *)
  sw_nodes : int;
  sw_tuples : int;  (* fixpoint database size *)
  sw_rounds : int;
  sw_idx_ms : float;
  sw_base_ms : float;
  sw_hits : int;  (* indexed run: joins answered from an index *)
  sw_scans : int;  (* indexed run: joins that still scanned *)
  sw_enum_idx : int;  (* tuples enumerated, indexed run *)
  sw_enum_base : int;  (* tuples enumerated, baseline run *)
  sw_same : bool;  (* identical fixpoint, rounds, convergence *)
}

let sw_speedup r = r.sw_base_ms /. Float.max 1e-6 r.sw_idx_ms

(* Time one semi-naive fixpoint with the engine switches set.  Each
   outcome carries its own per-run counters, so no global reset is
   needed between runs. *)
let timed_seminaive ~optimized p info db =
  Ndlog.Eval.use_indexes := optimized;
  Ndlog.Eval.use_reordering := optimized;
  let o, t = wall (fun () -> Ndlog.Eval.seminaive p info db) in
  Ndlog.Eval.use_indexes := true;
  Ndlog.Eval.use_reordering := true;
  (o, t, o.Ndlog.Eval.stats)

let sweep_point ~prog_name ~topo_name ~n ~nodes (p : Ndlog.Ast.program) :
    sweep_row =
  let info = Ndlog.Analysis.analyze_exn p in
  let db = Ndlog.Store.of_facts p.Ndlog.Ast.facts in
  let base, t_base, st_base = timed_seminaive ~optimized:false p info db in
  let idx, t_idx, st_idx = timed_seminaive ~optimized:true p info db in
  {
    sw_prog = prog_name;
    sw_topo = topo_name;
    sw_n = n;
    sw_nodes = nodes;
    sw_tuples = Ndlog.Store.total_tuples idx.Ndlog.Eval.db;
    sw_rounds = idx.Ndlog.Eval.rounds;
    sw_idx_ms = t_idx *. 1e3;
    sw_base_ms = t_base *. 1e3;
    sw_hits = st_idx.Ndlog.Eval.index_hits;
    sw_scans = st_idx.Ndlog.Eval.scans;
    sw_enum_idx = st_idx.Ndlog.Eval.enumerated;
    sw_enum_base = st_base.Ndlog.Eval.enumerated;
    sw_same =
      Ndlog.Store.equal base.Ndlog.Eval.db idx.Ndlog.Eval.db
      && base.Ndlog.Eval.rounds = idx.Ndlog.Eval.rounds
      && base.Ndlog.Eval.converged = idx.Ndlog.Eval.converged;
  }

(* ------------------------------------------------------------------ *)
(* E8 sweep machinery: centralized semi-naive vs. the sharded evaluator
   at several domain counts, over localized programs. *)

type shard_row = {
  sh_prog : string;
  sh_topo : string;
  sh_n : int;
  sh_nodes : int;
  sh_shards : int;  (* locations occupied by the initial database *)
  sh_tuples : int;  (* fixpoint database size *)
  sh_rounds : int;  (* sharded rounds: the parallel depth *)
  sh_central_ms : float;
  sh_domain_ms : (int * float) list;  (* domain count -> wall-clock ms *)
  sh_stats : Ndlog.Eval.stats;  (* sharded run's join profile *)
  sh_same : bool;  (* fixpoint = centralized, all domain counts agree *)
}

let e8_domain_counts = [ 1; 2; 4 ]

let sh_best_ms r =
  List.fold_left (fun acc (_, ms) -> Float.min acc ms) infinity r.sh_domain_ms

let sh_d1_ms r =
  match List.assoc_opt 1 r.sh_domain_ms with Some ms -> ms | None -> infinity

(* Speedup of the best multi-domain run over the one-domain sharded run
   (isolates parallelism from the sharding overhead itself). *)
let sh_parallel_speedup r = sh_d1_ms r /. Float.max 1e-6 (sh_best_ms r)

let sharded_point ~prog_name ~topo_name ~n ~nodes (p : Ndlog.Ast.program) :
    shard_row =
  let loc =
    match Ndlog.Localize.rewrite_program p with
    | Ok r -> r.Ndlog.Localize.program
    | Error e ->
      failwith (Fmt.str "localization failed: %a" Ndlog.Localize.pp_error e)
  in
  let info = Ndlog.Analysis.analyze_exn loc in
  let db = Ndlog.Store.of_facts loc.Ndlog.Ast.facts in
  let shards =
    match Ndlog.Shard.analyze loc with
    | Ok plan -> Array.length (fst (Ndlog.Shard.partition plan db))
    | Error e -> failwith ("E8 expects a shardable program: " ^ e)
  in
  let central, t_c = wall (fun () -> Ndlog.Eval.seminaive loc info db) in
  let runs =
    List.map
      (fun d ->
        let o, t =
          wall (fun () -> Ndlog.Eval.seminaive_sharded ~domains:d loc info db)
        in
        (d, o, t))
      e8_domain_counts
  in
  let _, first, _ = List.hd runs in
  let same =
    List.for_all
      (fun (_, (o : Ndlog.Eval.outcome), _) ->
        Ndlog.Store.equal o.Ndlog.Eval.db central.Ndlog.Eval.db
        && o.Ndlog.Eval.converged = central.Ndlog.Eval.converged
        && Ndlog.Store.equal o.Ndlog.Eval.db first.Ndlog.Eval.db
        && o.Ndlog.Eval.rounds = first.Ndlog.Eval.rounds
        && o.Ndlog.Eval.derivations = first.Ndlog.Eval.derivations)
      runs
  in
  (* The correctness claim is part of the benchmark: a divergent
     fixpoint fails the run (and the bench-smoke alias) loudly. *)
  if not same then
    failwith
      (Fmt.str "E8 %s/%s %d: sharded fixpoint diverged from centralized"
         prog_name topo_name n);
  {
    sh_prog = prog_name;
    sh_topo = topo_name;
    sh_n = n;
    sh_nodes = nodes;
    sh_shards = shards;
    sh_tuples = Ndlog.Store.total_tuples first.Ndlog.Eval.db;
    sh_rounds = first.Ndlog.Eval.rounds;
    sh_central_ms = t_c *. 1e3;
    sh_domain_ms = List.map (fun (d, _, t) -> (d, t *. 1e3)) runs;
    sh_stats = first.Ndlog.Eval.stats;
    sh_same = same;
  }

(* ------------------------------------------------------------------ *)
(* E11 sweep machinery: semi-naive with batched delta joins on vs. off
   (the per-tuple delta path), over the E7 topologies.  Both runs keep
   the index layer and body reordering on, so the column isolates the
   batching itself. *)

type batch_row = {
  bt_prog : string;
  bt_topo : string;
  bt_n : int;
  bt_nodes : int;
  bt_tuples : int;  (* fixpoint database size *)
  bt_rounds : int;
  bt_batched_ms : float;
  bt_per_tuple_ms : float;
  bt_groups : int;  (* batched run: delta groups joined *)
  bt_group_probes : int;  (* batched run: rule-delta applications *)
  bt_enum_batched : int;  (* tuples enumerated, batched run *)
  bt_enum_per_tuple : int;  (* tuples enumerated, per-tuple run *)
  bt_same : bool;  (* identical fixpoint, rounds, derivations *)
}

let bt_speedup r = r.bt_per_tuple_ms /. Float.max 1e-6 r.bt_batched_ms

(* Fraction of the per-tuple run's enumerations the batched run avoids. *)
let bt_enum_saved r =
  if r.bt_enum_per_tuple = 0 then 0.0
  else
    100.
    *. float_of_int (r.bt_enum_per_tuple - r.bt_enum_batched)
    /. float_of_int r.bt_enum_per_tuple

let timed_batched ~batched p info db =
  Ndlog.Eval.use_batching := batched;
  let o, t = wall (fun () -> Ndlog.Eval.seminaive p info db) in
  Ndlog.Eval.use_batching := true;
  (o, t, o.Ndlog.Eval.stats)

let batched_point ~prog_name ~topo_name ~n ~nodes (p : Ndlog.Ast.program) :
    batch_row =
  let info = Ndlog.Analysis.analyze_exn p in
  let db = Ndlog.Store.of_facts p.Ndlog.Ast.facts in
  let per, t_per, st_per = timed_batched ~batched:false p info db in
  let bat, t_bat, st_bat = timed_batched ~batched:true p info db in
  let same =
    Ndlog.Store.equal per.Ndlog.Eval.db bat.Ndlog.Eval.db
    && per.Ndlog.Eval.rounds = bat.Ndlog.Eval.rounds
    && per.Ndlog.Eval.converged = bat.Ndlog.Eval.converged
    && per.Ndlog.Eval.derivations = bat.Ndlog.Eval.derivations
  in
  (* Both claims are part of the benchmark and fail the run (and the
     bench-smoke alias) loudly: the batched fixpoint must be identical,
     and batching must strictly reduce enumeration on every point. *)
  if not same then
    failwith
      (Fmt.str "E11 %s/%s %d: batched fixpoint diverged from per-tuple"
         prog_name topo_name n);
  if st_bat.Ndlog.Eval.enumerated >= st_per.Ndlog.Eval.enumerated then
    failwith
      (Fmt.str
         "E11 %s/%s %d: batching did not reduce enumeration (%d >= %d)"
         prog_name topo_name n st_bat.Ndlog.Eval.enumerated
         st_per.Ndlog.Eval.enumerated);
  {
    bt_prog = prog_name;
    bt_topo = topo_name;
    bt_n = n;
    bt_nodes = nodes;
    bt_tuples = Ndlog.Store.total_tuples bat.Ndlog.Eval.db;
    bt_rounds = bat.Ndlog.Eval.rounds;
    bt_batched_ms = t_bat *. 1e3;
    bt_per_tuple_ms = t_per *. 1e3;
    bt_groups = st_bat.Ndlog.Eval.groups;
    bt_group_probes = st_bat.Ndlog.Eval.group_probes;
    bt_enum_batched = st_bat.Ndlog.Eval.enumerated;
    bt_enum_per_tuple = st_per.Ndlog.Eval.enumerated;
    bt_same = same;
  }

(* ------------------------------------------------------------------ *)
(* E12 sweep machinery: the distributed runtime's inbox batching on
   vs. off (the per-message baseline).  Where E11 measures batched
   delta joins inside one evaluator, E12 measures the same
   group-at-a-time savings on the wire path: all message deliveries
   landing at a node at the same simulated instant flush as one
   per-predicate delta. *)

type inbox_row = {
  ib_prog : string;
  ib_topo : string;
  ib_n : int;
  ib_nodes : int;
  ib_tuples : int;  (* global fixpoint database size *)
  ib_msgs : int;  (* messages sent (identical in both modes) *)
  ib_batched_ms : float;
  ib_per_msg_ms : float;
  ib_groups : int;  (* batched run, wire path: delta groups joined *)
  ib_delta : int;  (* batched run, wire path: delta tuples fed *)
  ib_enum_batched : int;  (* wire-path tuples enumerated, batched *)
  ib_enum_per_msg : int;  (* wire-path tuples enumerated, per-message *)
  ib_same : bool;  (* identical global fixpoint and insert count *)
}

let ib_speedup r = r.ib_per_msg_ms /. Float.max 1e-6 r.ib_batched_ms

(* Mean number of delta tuples each wire-path strand activation
   carried; 1.0 is the per-message baseline by construction. *)
let ib_mean_group r =
  float_of_int r.ib_delta /. float_of_int (max 1 r.ib_groups)

let ib_enum_saved r =
  if r.ib_enum_per_msg = 0 then 0.0
  else
    100.
    *. float_of_int (r.ib_enum_per_msg - r.ib_enum_batched)
    /. float_of_int r.ib_enum_per_msg

let topo_of_link_facts links =
  let t = Netsim.Topology.create () in
  List.iter
    (fun (f : Ndlog.Ast.fact) ->
      match f.Ndlog.Ast.fact_args with
      | [ s; d; c ] ->
        Netsim.Topology.add_link ~cost:(Ndlog.Value.as_int c) t
          (Ndlog.Value.as_addr s) (Ndlog.Value.as_addr d)
      | _ -> ())
    links;
  t

let inbox_point ~prog_name ~topo_name ~n ~nodes ~strict prog links : inbox_row =
  let loc =
    match
      Ndlog.Localize.rewrite_program (Ndlog.Programs.with_links prog links)
    with
    | Ok r -> r.Ndlog.Localize.program
    | Error _ -> assert false
  in
  let go ~batch_inbox =
    let rt = Dist.Runtime.create ~batch_inbox (topo_of_link_facts links) loc in
    Dist.Runtime.load_facts rt;
    let report, t = wall (fun () -> Dist.Runtime.run rt) in
    (rt, report, t)
  in
  let rt_b, rep_b, t_b = go ~batch_inbox:true in
  let rt_p, rep_p, t_p = go ~batch_inbox:false in
  let same =
    rep_b.Dist.Runtime.stats.Netsim.Sim.quiesced
    && rep_p.Dist.Runtime.stats.Netsim.Sim.quiesced
    && Ndlog.Store.equal
         (Dist.Runtime.global_store rt_b)
         (Dist.Runtime.global_store rt_p)
    && rep_b.Dist.Runtime.total_inserts = rep_p.Dist.Runtime.total_inserts
    && List.for_all
         (fun nm ->
           Ndlog.Store.equal
             (Dist.Runtime.node_store rt_b nm)
             (Dist.Runtime.node_store rt_p nm))
         (Netsim.Topology.nodes (topo_of_link_facts links))
  in
  (* The equivalence claim is part of the benchmark: a divergence fails
     the run (and the bench-smoke alias) loudly. *)
  if not same then
    failwith
      (Fmt.str "E12 %s/%s %d: batched inbox diverged from per-message"
         prog_name topo_name n);
  let wb = rep_b.Dist.Runtime.wire_stats in
  let wp = rep_p.Dist.Runtime.wire_stats in
  (* On the big rings the batching claim itself is asserted: flushes
     must actually coalesce deliveries (mean group > 1) and strictly
     reduce wire-path enumeration. *)
  if strict then begin
    if wb.Ndlog.Eval.delta_tuples <= wb.Ndlog.Eval.groups then
      failwith
        (Fmt.str "E12 %s/%s %d: mean wire delta-group size not > 1 (%d/%d)"
           prog_name topo_name n wb.Ndlog.Eval.delta_tuples
           wb.Ndlog.Eval.groups);
    if wb.Ndlog.Eval.enumerated >= wp.Ndlog.Eval.enumerated then
      failwith
        (Fmt.str
           "E12 %s/%s %d: inbox batching did not reduce wire enumeration (%d \
            >= %d)"
           prog_name topo_name n wb.Ndlog.Eval.enumerated
           wp.Ndlog.Eval.enumerated)
  end;
  {
    ib_prog = prog_name;
    ib_topo = topo_name;
    ib_n = n;
    ib_nodes = nodes;
    ib_tuples = Ndlog.Store.total_tuples (Dist.Runtime.global_store rt_b);
    ib_msgs = rep_b.Dist.Runtime.stats.Netsim.Sim.messages_sent;
    ib_batched_ms = t_b *. 1e3;
    ib_per_msg_ms = t_p *. 1e3;
    ib_groups = wb.Ndlog.Eval.groups;
    ib_delta = wb.Ndlog.Eval.delta_tuples;
    ib_enum_batched = wb.Ndlog.Eval.enumerated;
    ib_enum_per_msg = wp.Ndlog.Eval.enumerated;
    ib_same = same;
  }

(* ------------------------------------------------------------------ *)
(* E13 machinery: incremental view refresh vs. from-scratch in the
   distributed runtime.  Both modes drive the identical insertion
   schedule (initial facts, then a few mid-run link churns); the
   incremental runtime must reach the same fixpoint with the same
   message count while skipping untouched strata and enumerating
   strictly fewer tuples on the view path. *)

type incr_row = {
  iv_prog : string;
  iv_topo : string;
  iv_n : int;
  iv_nodes : int;
  iv_tuples : int;  (* global fixpoint database size *)
  iv_msgs : int;  (* messages sent (identical in both modes) *)
  iv_incr_ms : float;
  iv_scratch_ms : float;
  iv_skipped : int;  (* incremental run: untouched strata skipped *)
  iv_fallbacks : int;  (* incremental run: from-scratch fallbacks *)
  iv_enum_incr : int;  (* view-path tuples enumerated, incremental *)
  iv_enum_scratch : int;  (* view-path tuples enumerated, from-scratch *)
  iv_same : bool;  (* identical global fixpoint, stores, messages *)
}

let iv_speedup r = r.iv_scratch_ms /. Float.max 1e-6 r.iv_incr_ms

let iv_enum_saved r =
  if r.iv_enum_scratch = 0 then 0.0
  else
    100.
    *. float_of_int (r.iv_enum_scratch - r.iv_enum_incr)
    /. float_of_int r.iv_enum_scratch

let incr_point ~prog_name ~topo_name ~n ~nodes ~strict prog links : incr_row =
  let loc =
    match
      Ndlog.Localize.rewrite_program (Ndlog.Programs.with_links prog links)
    with
    | Ok r -> r.Ndlog.Localize.program
    | Error _ -> assert false
  in
  (* A handful of spread-out link re-insertions at new costs: each one
     dirties a single node, so most of the network's strata are
     untouched at the refresh it triggers. *)
  let endpoints =
    List.filter_map
      (fun (f : Ndlog.Ast.fact) ->
        match f.Ndlog.Ast.fact_args with
        | [ s; d; _ ] ->
          Some (Ndlog.Value.as_addr s, Ndlog.Value.as_addr d)
        | _ -> None)
      links
  in
  let stride = max 1 (List.length endpoints / 3) in
  let churn = List.filteri (fun i _ -> i mod stride = 0) endpoints in
  let go ~incremental_views =
    let rt =
      Dist.Runtime.create ~incremental_views (topo_of_link_facts links) loc
    in
    Dist.Runtime.load_facts rt;
    let view = ref Ndlog.Eval.zero_stats in
    let quiesced = ref true in
    let last = ref None in
    let (), t =
      wall (fun () ->
          let step rep =
            view := Ndlog.Eval.add_stats !view rep.Dist.Runtime.view_stats;
            quiesced := !quiesced && rep.Dist.Runtime.stats.Netsim.Sim.quiesced;
            last := Some rep
          in
          step (Dist.Runtime.run rt);
          List.iteri
            (fun i (s, d) ->
              Dist.Runtime.insert rt s "link"
                [| Ndlog.Value.Addr s; Ndlog.Value.Addr d;
                   Ndlog.Value.Int (2 + i) |];
              step (Dist.Runtime.run rt))
            churn)
    in
    (rt, Option.get !last, !view, !quiesced, t)
  in
  let rt_i, rep_i, view_i, q_i, t_i = go ~incremental_views:true in
  let rt_s, rep_s, view_s, q_s, t_s = go ~incremental_views:false in
  let msgs_i = rep_i.Dist.Runtime.stats.Netsim.Sim.messages_sent in
  let msgs_s = rep_s.Dist.Runtime.stats.Netsim.Sim.messages_sent in
  let same =
    q_i && q_s
    && Ndlog.Store.equal
         (Dist.Runtime.global_store rt_i)
         (Dist.Runtime.global_store rt_s)
    && msgs_i = msgs_s
    && List.for_all
         (fun nm ->
           Ndlog.Store.equal
             (Dist.Runtime.node_store rt_i nm)
             (Dist.Runtime.node_store rt_s nm))
         (Netsim.Topology.nodes (topo_of_link_facts links))
  in
  (* The equivalence claim is part of the benchmark: a divergence fails
     the run (and the bench-smoke alias) loudly. *)
  if not same then
    failwith
      (Fmt.str
         "E13 %s/%s %d: incremental refresh diverged from from-scratch"
         prog_name topo_name n);
  (* On the big rings the incrementality claim itself is asserted:
     untouched strata must actually be skipped, and view-path
     enumeration must strictly drop. *)
  if strict then begin
    if view_i.Ndlog.Eval.strata_skipped = 0 then
      failwith
        (Fmt.str "E13 %s/%s %d: incremental refresh skipped no strata"
           prog_name topo_name n);
    if view_i.Ndlog.Eval.enumerated >= view_s.Ndlog.Eval.enumerated then
      failwith
        (Fmt.str
           "E13 %s/%s %d: incremental refresh did not reduce view \
            enumeration (%d >= %d)"
           prog_name topo_name n view_i.Ndlog.Eval.enumerated
           view_s.Ndlog.Eval.enumerated)
  end;
  {
    iv_prog = prog_name;
    iv_topo = topo_name;
    iv_n = n;
    iv_nodes = nodes;
    iv_tuples = Ndlog.Store.total_tuples (Dist.Runtime.global_store rt_i);
    iv_msgs = msgs_i;
    iv_incr_ms = t_i *. 1e3;
    iv_scratch_ms = t_s *. 1e3;
    iv_skipped = view_i.Ndlog.Eval.strata_skipped;
    iv_fallbacks = view_i.Ndlog.Eval.refresh_fallbacks;
    iv_enum_incr = view_i.Ndlog.Eval.enumerated;
    iv_enum_scratch = view_s.Ndlog.Eval.enumerated;
    iv_same = same;
  }

(* ------------------------------------------------------------------ *)
(* E14 machinery: sustained churn against the storage layer.

   A soft-state bounded-cost routing program runs on a ring while a
   long event stream (~10^6 events in the full configuration) drives
   link up/down churn and route injections: every tuple lives on a
   lease, link offers flap their cost each pass and are periodically
   withheld so leases lapse (down events) and the next offer is
   genuinely new (up events), and route advertisements are injected
   directly into the cost relation.  The live tuple set stays bounded
   — the stream endlessly replaces state instead of growing it — which
   is exactly the regime where tuple storage, not fixpoint evaluation,
   is the bottleneck.  The same deterministic stream runs once on the
   id-native runtime (flat int-array tuples, integer joins) and once
   on the boxed-store oracle (FVN_TUPLE_IDS=0 semantics, selected per
   runtime); the fixpoints must be bit-identical and the measured
   difference is pure representation cost.  (Earlier regenerations of
   this experiment compared interned vs. uninterned boxed stores; that
   comparison lives on in the ledger history.) *)

type churn_row = {
  ch_mode : string;  (* "ids" | "boxed" *)
  ch_nodes : int;
  ch_events : int;  (* events driven, including warmup *)
  ch_measured : int;  (* events in the measurement window *)
  ch_inserts : int;  (* store insertions during the window *)
  ch_wall_s : float;  (* wall clock of the window *)
  ch_tuples_per_sec : float;  (* window insertions / window wall *)
  ch_events_per_sec : float;
  ch_p50_us : float;  (* per-event latency percentiles over the window *)
  ch_p99_us : float;
  ch_max_us : float;
  ch_live_words : int;  (* Gc live words after the run (post full major) *)
  ch_heap_words : int;  (* Gc.quick_stat heap words *)
  ch_interned : int;  (* intern table population at end of run *)
  ch_msgs : int;  (* simulator messages sent over the whole run *)
  ch_tuples : int;  (* live global store size at cut-off *)
  ch_refresh_s : float;  (* wall spent in view-refresh walks (window) *)
  ch_refresh_walks : int;  (* refresh walks in the window *)
}

(* The routing program with every relation on a lease: the paper's
   path-vector protocol (Section 2.2) with a hop bound so churn stays
   local, and every materialize declaration rewritten to the given
   lifetime.  Path vectors matter here: every refresh re-derives its
   path lists from scratch, so the boxed representation keeps
   re-allocating and re-comparing structurally equal lists while the
   interned one collapses them to shared representatives — the
   allocation/comparison traffic this benchmark is designed to
   expose. *)
let churn_program_src =
  {|
materialize(link, infinity).
materialize(path, infinity).
materialize(bestPathCost, infinity).
materialize(bestPath, infinity).
materialize(promise, infinity).
materialize(audit, infinity).

r1 path(@S,D,P,C,H) :- link(@S,D,C), P=f_init(S,D), H=1.
r2 path(@S,D,P,C,H) :- link(@S,Z,C1), path(@Z,D,P2,C2,H2),
                       C=C1+C2, P=f_concatPath(S,P2),
                       f_inPath(P2,S)=false, H=H2+1, H2<2.
r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C,H).
r4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C,H).
r5 audit(@S,D,P) :- promise(@S,P,D), path(@S,D,P,C,H).
|}

let churn_program ~lifetime =
  let p = Ndlog.Programs.parse_exn churn_program_src in
  {
    p with
    Ndlog.Ast.decls =
      List.map
        (fun d ->
          { d with Ndlog.Ast.decl_lifetime = Ndlog.Ast.Lifetime lifetime })
        p.Ndlog.Ast.decls;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Drive one mode through the event stream.  Returns the row plus the
   digest used for the cross-mode equivalence check (global store,
   per-node stores, cumulative counters) — the runtime itself is
   dropped so the next mode's heap measurement does not retain this
   one's simulator. *)
let churn_run ~ids ~n ~events ~warmup ~lifetime ~dt =
  (* Ring plus (i, i+5) chords: the chord offers in the event stream
     need topology edges to ship their derived paths over. *)
  let chord_fact s d =
    {
      Ndlog.Ast.fact_pred = "link";
      fact_loc = Some 0;
      fact_args =
        [ Ndlog.Value.Addr s; Ndlog.Value.Addr d; Ndlog.Value.Int 1 ];
    }
  in
  let links =
    Ndlog.Programs.ring_links n
    @ List.concat
        (List.init n (fun i ->
             let a = Ndlog.Programs.node i
             and b = Ndlog.Programs.node ((i + 5) mod n) in
             [ chord_fact a b; chord_fact b a ]))
  in
  let loc =
    match Ndlog.Localize.rewrite_program (churn_program ~lifetime) with
    | Ok r -> r.Ndlog.Localize.program
    | Error _ -> assert false
  in
  let rt = Dist.Runtime.create ~tuple_ids:ids (topo_of_link_facts links) loc in
  Dist.Runtime.load_facts rt;
  Gc.full_major ();
  let live_start = (Gc.stat ()).Gc.live_words in
  let nd i = Ndlog.Programs.node (i mod n) in
  let samples = Array.make events 0.0 in
  let last = ref None in
  let sim_events = ref 0 in
  let warm_inserts = ref 0 and warm_msgs = ref 0 and warm_wall = ref 0.0 in
  let warm_refresh_s = ref 0.0 and warm_refresh_walks = ref 0 in
  let t_start = Unix.gettimeofday () in
  for e = 0 to events - 1 do
    let i = e / 2 mod n in
    let pass = e / (2 * n) in
    let t_sim = float_of_int (e + 1) *. dt in
    let t0 = Unix.gettimeofday () in
    (* Even events offer a link, odd events inject a route.  Costs flap
       with the pass, so a kept lease is usually replaced rather than
       renewed; every fourth pass an offer is withheld, letting the
       lease lapse (a down event) so the following offer is an up. *)
    (match e land 1 with
    | 0 ->
      (* Ring links on even passes, chord links on odd ones: each node
         keeps several live neighbours, so the 2-hop path relation per
         node holds dozens of tuples rather than a handful. *)
      if (pass + i) mod 4 <> 0 then
        Dist.Runtime.insert rt (nd i) "link"
          [|
            Ndlog.Value.Addr (nd i);
            Ndlog.Value.Addr (nd (i + if pass land 1 = 0 then 1 else 5));
            Ndlog.Value.Int (1 + (pass mod 3));
          |]
    | _ ->
      (* A route promise from outside the protocol: an external peer
         announces the exact path vector it expects node i to compute;
         rule r5 audits the announcement by joining it against the
         computed [path] relation on the full path list — the
         verification-flavoured, list-keyed join this benchmark uses to
         exercise flat (id-keyed) secondary indexes.  Ring routes on
         even passes, chord routes on odd ones, so several distinct
         promises stay live per node. *)
      if (pass + i) mod 4 <> 2 then
        let hop, dst = if pass land 1 = 0 then (1, 2) else (5, 10) in
        Dist.Runtime.insert rt (nd i) "promise"
          [|
            Ndlog.Value.Addr (nd i);
            Ndlog.Value.List
              [
                Ndlog.Value.Addr (nd i);
                Ndlog.Value.Addr (nd (i + hop));
                Ndlog.Value.Addr (nd (i + dst));
              ];
            Ndlog.Value.Addr (nd (i + dst));
          |]);
    let rep = Dist.Runtime.run rt ~until:t_sim in
    last := Some rep;
    sim_events := !sim_events + rep.Dist.Runtime.stats.Netsim.Sim.events;
    samples.(e) <- Unix.gettimeofday () -. t0;
    if e + 1 = warmup then begin
      warm_inserts := rep.Dist.Runtime.total_inserts;
      warm_msgs := rep.Dist.Runtime.stats.Netsim.Sim.messages_sent;
      warm_wall := Unix.gettimeofday () -. t_start;
      warm_refresh_s := Dist.Runtime.refresh_seconds rt;
      warm_refresh_walks := Dist.Runtime.refresh_walks rt
    end
  done;
  let wall_total = Unix.gettimeofday () -. t_start in
  let rep = Option.get !last in
  (* Live heap *retained by this run* — the growth over the post-setup
     baseline, so the digest kept alive from a previous mode's run does
     not pollute the measurement.  [Gc.quick_stat] is free but zeroes
     [live_words]; the full [Gc.stat] after a major collection gives the
     real figure, and [heap_words] comes from the cheap counters. *)
  Gc.full_major ();
  let live_words = max 0 ((Gc.stat ()).Gc.live_words - live_start) in
  let heap_words = (Gc.quick_stat ()).Gc.heap_words in
  let window = Array.sub samples warmup (events - warmup) in
  Array.sort Stdlib.compare window;
  let wall = wall_total -. !warm_wall in
  let inserts = rep.Dist.Runtime.total_inserts - !warm_inserts in
  let measured = events - warmup in
  let global = Dist.Runtime.global_store rt in
  let node_stores =
    List.map
      (fun nm -> (nm, Dist.Runtime.node_store rt nm))
      (Netsim.Topology.nodes (topo_of_link_facts links))
  in
  let row =
    {
      ch_mode = (if ids then "ids" else "boxed");
      ch_nodes = n;
      ch_events = events;
      ch_measured = measured;
      ch_inserts = inserts;
      ch_wall_s = wall;
      ch_tuples_per_sec = float_of_int inserts /. Float.max 1e-9 wall;
      ch_events_per_sec = float_of_int measured /. Float.max 1e-9 wall;
      ch_p50_us = percentile window 0.50 *. 1e6;
      ch_p99_us = percentile window 0.99 *. 1e6;
      ch_max_us = percentile window 1.0 *. 1e6;
      ch_live_words = live_words;
      ch_heap_words = heap_words;
      ch_interned = Ndlog.Intern.size ();
      ch_msgs = rep.Dist.Runtime.stats.Netsim.Sim.messages_sent;
      ch_tuples = Ndlog.Store.total_tuples global;
      ch_refresh_s = Dist.Runtime.refresh_seconds rt -. !warm_refresh_s;
      ch_refresh_walks = Dist.Runtime.refresh_walks rt - !warm_refresh_walks;
    }
  in
  (row, (global, node_stores, rep.Dist.Runtime.total_inserts))

(* Field-wise median across repetitions of one mode.  The counters that
   are deterministic (inserts, messages, tuples, events) are asserted
   identical across repetitions by the digest check, so taking them
   from the first row is exact; the timing-dependent fields get the
   median, which a single outlier repetition cannot move. *)
let churn_median (rows : churn_row list) : churn_row =
  let medf proj =
    let a = Array.of_list (List.map proj rows) in
    Array.sort Stdlib.compare a;
    a.(Array.length a / 2)
  in
  {
    (List.hd rows) with
    ch_wall_s = medf (fun r -> r.ch_wall_s);
    ch_tuples_per_sec = medf (fun r -> r.ch_tuples_per_sec);
    ch_events_per_sec = medf (fun r -> r.ch_events_per_sec);
    ch_p50_us = medf (fun r -> r.ch_p50_us);
    ch_p99_us = medf (fun r -> r.ch_p99_us);
    ch_max_us = medf (fun r -> r.ch_max_us);
    ch_live_words = int_of_float (medf (fun r -> float_of_int r.ch_live_words));
    ch_heap_words = int_of_float (medf (fun r -> float_of_int r.ch_heap_words));
    ch_refresh_s = medf (fun r -> r.ch_refresh_s);
  }

let churn_point ~n ~events ~reps : churn_row * churn_row =
  (* Offers recur every 2n events (dt = 1): a 3n lifetime outlives a
     kept offer cycle but lapses across a withheld one. *)
  let dt = 1.0 in
  let lifetime = 3.0 *. float_of_int n *. dt in
  let warmup = max (2 * n) (events / 10) in
  let warmup = min warmup (events / 2) in
  (* Interleaved repetitions, alternating which mode runs first within
     each pair: back-to-back runs on a shared machine show run-to-run
     spread well above the effect under measurement, and the mode that
     runs second inherits a grown GC heap — alternation cancels the
     order bias, the per-mode median (churn_median) tames the noise. *)
  let rows_b = ref [] and rows_i = ref [] in
  let digest = ref None in
  for rep = 0 to reps - 1 do
    List.iter
      (fun ids ->
        let row, (g, ns, ins) =
          churn_run ~ids ~n ~events ~warmup ~lifetime ~dt
        in
        (* The equivalence claim is part of the benchmark: every run
           drives the identical deterministic stream to the identical
           simulated instant, so any divergence — across modes or
           across repetitions — fails the run loudly. *)
        (match !digest with
        | None -> digest := Some (g, ns, ins)
        | Some (g0, ns0, ins0) ->
          if
            not
              (Ndlog.Store.equal g g0
              && ins = ins0
              && List.for_all2
                   (fun (nm, s) (nm0, s0) ->
                     nm = nm0 && Ndlog.Store.equal s s0)
                   ns ns0)
          then failwith "E14: runs diverged across modes or repetitions");
        if ids then rows_i := row :: !rows_i
        else rows_b := row :: !rows_b)
      (if rep land 1 = 0 then [ false; true ] else [ true; false ])
  done;
  (churn_median !rows_i, churn_median !rows_b)

(* The machine-readable ledger (BENCH_ndlog.json, schema 10).
   E7, E8, E11–E17 stash their sweep rows here; the driver emits one
   document at the end of the run.  The previous ledger's run history is
   carried forward and the finished run appended, so the committed file
   records how the numbers moved across regenerations. *)

let json_out = ref false
let bench_json_path = "BENCH_ndlog.json"
let e7_sweeps : sweep_row list ref = ref []
let e8_rows : shard_row list ref = ref []
let e11_rows : batch_row list ref = ref []
let e12_rows : inbox_row list ref = ref []
let e13_rows : incr_row list ref = ref []
let e14_rows : churn_row list ref = ref []

(* E15 machinery: where the id/boxed boundary may sit, in nanoseconds.

   The id-native executor keeps tuples as int arrays end to end and
   translates to boxed values only at true system boundaries (builtins,
   provenance, printers, the wire's canonical sort).  This experiment
   prices the alternatives per operation: an id equality probe vs. the
   boxed structural compare it replaces, and the hash-cons translation
   ([Intern.tuple_ids]) a design that boxed per probe — or translated
   per probe — would pay inside the join loop.  The rows feed the
   ledger; the headline ratios are the id probe's speedup over the
   boxed probe and the translation's cost relative to the boxed probe
   it would hypothetically replace. *)
type xlate_row = { xl_op : string; xl_ns : float }

let e15_rows : xlate_row list ref = ref []

(* E16: the socket transport against the simulator backend.  One row
   per ring size: the supervisor forks a real OS process per node and
   the same program runs on the virtual-clock simulator; both fixpoints
   must agree node by node. *)
type mproc_row = {
  mp_nodes : int;  (* ring size = worker process count *)
  mp_wall_s : float;  (* fork to detected quiescence, wall clock *)
  mp_sim_wall_s : float;  (* the simulator backend on the same input *)
  mp_frames : int;  (* cross-process data frames *)
  mp_bytes : int;  (* their wire bytes, length prefixes included *)
  mp_inserts : int;  (* tuple insertions summed over workers *)
  mp_polls : int;  (* quiescence polls until convergence *)
  mp_sim_msgs : int;  (* messages the simulator shipped *)
  mp_same : bool;  (* per-node fixpoints equal across backends *)
}

let e16_rows : mproc_row list ref = ref []

(* E17: the model checker's reduction layer.  One row per (system,
   program, topology, mode) — mode is plain, por, por-footprint, sym
   or both — with the visited-state count, the invariant verdict, and
   the counterexample length when the verdict is a violation.  Verdict
   equality across the modes of a cell is asserted by the experiment
   itself; the rows carry the reduction factors the docs quote. *)
type red_row = {
  rd_system : string;  (* "ndlog" or "soft" *)
  rd_prog : string;
  rd_topo : string;
  rd_mode : string;
  rd_states : int;  (* 0 for verdict-only rows (diverging plain space) *)
  rd_transitions : int;
  rd_truncated : bool;
  rd_wall_s : float;
  rd_verdict : string;  (* "ok" | "violation" | "truncated" *)
  rd_trace_len : int;  (* counterexample length, 0 when none *)
}

let e17_rows : red_row list ref = ref []

let emit_bench_json () =
  let e7_row r =
    Json.Obj
      [
        ("program", Json.Str r.sw_prog);
        ("topology", Json.Str r.sw_topo);
        ("n", Json.Int r.sw_n);
        ("nodes", Json.Int r.sw_nodes);
        ("tuples", Json.Int r.sw_tuples);
        ("rounds", Json.Int r.sw_rounds);
        ("indexed_ms", Json.Float r.sw_idx_ms);
        ("baseline_ms", Json.Float r.sw_base_ms);
        ("speedup", Json.Float (sw_speedup r));
        ("index_hits", Json.Int r.sw_hits);
        ("scans", Json.Int r.sw_scans);
        ("enumerated_indexed", Json.Int r.sw_enum_idx);
        ("enumerated_baseline", Json.Int r.sw_enum_base);
        ("same_fixpoint", Json.Bool r.sw_same);
      ]
  in
  let e8_row r =
    Json.Obj
      [
        ("program", Json.Str r.sh_prog);
        ("topology", Json.Str r.sh_topo);
        ("n", Json.Int r.sh_n);
        ("nodes", Json.Int r.sh_nodes);
        ("shards", Json.Int r.sh_shards);
        ("tuples", Json.Int r.sh_tuples);
        ("rounds", Json.Int r.sh_rounds);
        ("central_ms", Json.Float r.sh_central_ms);
        ( "domain_ms",
          Json.Obj
            (List.map
               (fun (d, ms) -> (string_of_int d, Json.Float ms))
               r.sh_domain_ms) );
        ("parallel_speedup", Json.Float (sh_parallel_speedup r));
        ("index_hits", Json.Int r.sh_stats.Ndlog.Eval.index_hits);
        ("scans", Json.Int r.sh_stats.Ndlog.Eval.scans);
        ("enumerated", Json.Int r.sh_stats.Ndlog.Eval.enumerated);
        ("matched", Json.Int r.sh_stats.Ndlog.Eval.matched);
        ("same_fixpoint", Json.Bool r.sh_same);
      ]
  in
  let e11_row r =
    Json.Obj
      [
        ("program", Json.Str r.bt_prog);
        ("topology", Json.Str r.bt_topo);
        ("n", Json.Int r.bt_n);
        ("nodes", Json.Int r.bt_nodes);
        ("tuples", Json.Int r.bt_tuples);
        ("rounds", Json.Int r.bt_rounds);
        ("batched_ms", Json.Float r.bt_batched_ms);
        ("per_tuple_ms", Json.Float r.bt_per_tuple_ms);
        ("speedup", Json.Float (bt_speedup r));
        ("groups", Json.Int r.bt_groups);
        ("group_probes", Json.Int r.bt_group_probes);
        ("enumerated_batched", Json.Int r.bt_enum_batched);
        ("enumerated_per_tuple", Json.Int r.bt_enum_per_tuple);
        ("enum_saved_pct", Json.Float (bt_enum_saved r));
        ("enum_reduced", Json.Bool (r.bt_enum_batched < r.bt_enum_per_tuple));
        ("same_fixpoint", Json.Bool r.bt_same);
      ]
  in
  let e12_row r =
    Json.Obj
      [
        ("program", Json.Str r.ib_prog);
        ("topology", Json.Str r.ib_topo);
        ("n", Json.Int r.ib_n);
        ("nodes", Json.Int r.ib_nodes);
        ("tuples", Json.Int r.ib_tuples);
        ("messages", Json.Int r.ib_msgs);
        ("batched_ms", Json.Float r.ib_batched_ms);
        ("per_message_ms", Json.Float r.ib_per_msg_ms);
        ("speedup", Json.Float (ib_speedup r));
        ("wire_groups", Json.Int r.ib_groups);
        ("wire_delta_tuples", Json.Int r.ib_delta);
        ("mean_group_size", Json.Float (ib_mean_group r));
        ("enumerated_batched", Json.Int r.ib_enum_batched);
        ("enumerated_per_message", Json.Int r.ib_enum_per_msg);
        ("enum_saved_pct", Json.Float (ib_enum_saved r));
        ("enum_reduced", Json.Bool (r.ib_enum_batched < r.ib_enum_per_msg));
        ("same_fixpoint", Json.Bool r.ib_same);
      ]
  in
  let largest =
    List.fold_left
      (fun acc r -> match acc with
        | Some best when best.sw_nodes >= r.sw_nodes -> acc
        | _ -> Some r)
      None !e7_sweeps
  in
  let largest_speedup =
    match largest with Some r -> Json.Float (sw_speedup r) | None -> Json.Null
  in
  let best_e8 =
    match !e8_rows with
    | [] -> Json.Null
    | rows ->
      Json.Float
        (List.fold_left
           (fun acc r -> Float.max acc (sh_parallel_speedup r))
           0.0 rows)
  in
  let e11_max_saved =
    match !e11_rows with
    | [] -> Json.Null
    | rows ->
      Json.Float
        (List.fold_left (fun acc r -> Float.max acc (bt_enum_saved r)) 0.0 rows)
  in
  let e11_all_reduced =
    match !e11_rows with
    | [] -> Json.Null
    | rows ->
      Json.Bool
        (List.for_all (fun r -> r.bt_enum_batched < r.bt_enum_per_tuple) rows)
  in
  let e13_row r =
    Json.Obj
      [
        ("program", Json.Str r.iv_prog);
        ("topology", Json.Str r.iv_topo);
        ("n", Json.Int r.iv_n);
        ("nodes", Json.Int r.iv_nodes);
        ("tuples", Json.Int r.iv_tuples);
        ("messages", Json.Int r.iv_msgs);
        ("incremental_ms", Json.Float r.iv_incr_ms);
        ("scratch_ms", Json.Float r.iv_scratch_ms);
        ("speedup", Json.Float (iv_speedup r));
        ("strata_skipped", Json.Int r.iv_skipped);
        ("refresh_fallbacks", Json.Int r.iv_fallbacks);
        ("enumerated_incremental", Json.Int r.iv_enum_incr);
        ("enumerated_scratch", Json.Int r.iv_enum_scratch);
        ("enum_saved_pct", Json.Float (iv_enum_saved r));
        ("enum_reduced", Json.Bool (r.iv_enum_incr < r.iv_enum_scratch));
        ("same_fixpoint", Json.Bool r.iv_same);
      ]
  in
  let e12_max_mean_group =
    match !e12_rows with
    | [] -> Json.Null
    | rows ->
      Json.Float
        (List.fold_left (fun acc r -> Float.max acc (ib_mean_group r)) 0.0 rows)
  in
  let e12_all_same =
    match !e12_rows with
    | [] -> Json.Null
    | rows -> Json.Bool (List.for_all (fun r -> r.ib_same) rows)
  in
  let e13_total_skipped =
    match !e13_rows with
    | [] -> Json.Null
    | rows ->
      Json.Int (List.fold_left (fun acc r -> acc + r.iv_skipped) 0 rows)
  in
  let e13_max_saved =
    match !e13_rows with
    | [] -> Json.Null
    | rows ->
      Json.Float
        (List.fold_left (fun acc r -> Float.max acc (iv_enum_saved r)) 0.0 rows)
  in
  let e13_all_same =
    match !e13_rows with
    | [] -> Json.Null
    | rows -> Json.Bool (List.for_all (fun r -> r.iv_same) rows)
  in
  let e14_row r =
    Json.Obj
      [
        ("mode", Json.Str r.ch_mode);
        ("nodes", Json.Int r.ch_nodes);
        ("events", Json.Int r.ch_events);
        ("measured_events", Json.Int r.ch_measured);
        ("inserts", Json.Int r.ch_inserts);
        ("wall_s", Json.Float r.ch_wall_s);
        ("tuples_per_sec", Json.Float r.ch_tuples_per_sec);
        ("events_per_sec", Json.Float r.ch_events_per_sec);
        ("p50_us", Json.Float r.ch_p50_us);
        ("p99_us", Json.Float r.ch_p99_us);
        ("max_us", Json.Float r.ch_max_us);
        ("live_words", Json.Int r.ch_live_words);
        ("heap_words", Json.Int r.ch_heap_words);
        ("interned_values", Json.Int r.ch_interned);
        ("messages", Json.Int r.ch_msgs);
        ("tuples", Json.Int r.ch_tuples);
        ("refresh_s", Json.Float r.ch_refresh_s);
        ("refresh_walks", Json.Int r.ch_refresh_walks);
        ( "refresh_share",
          Json.Float (r.ch_refresh_s /. Float.max 1e-9 r.ch_wall_s) );
      ]
  in
  (* Each stat pairs the id-native row with its boxed oracle; e14_rows
     is [ids; boxed] when e14 ran, [] otherwise. *)
  let e14_find mode f =
    match List.find_opt (fun r -> r.ch_mode = mode) !e14_rows with
    | Some r -> f r
    | None -> Json.Null
  in
  let e14_speedup =
    match
      ( List.find_opt (fun r -> r.ch_mode = "ids") !e14_rows,
        List.find_opt (fun r -> r.ch_mode = "boxed") !e14_rows )
    with
    | Some i, Some b -> Json.Float (i.ch_tuples_per_sec /. b.ch_tuples_per_sec)
    | _ -> Json.Null
  in
  let e15_row r =
    Json.Obj [ ("op", Json.Str r.xl_op); ("ns_per_op", Json.Float r.xl_ns) ]
  in
  let e15_ns op =
    match List.find_opt (fun r -> r.xl_op = op) !e15_rows with
    | Some r -> Some r.xl_ns
    | None -> None
  in
  let e15_ratio num den =
    match (e15_ns num, e15_ns den) with
    | Some a, Some b when b > 0.0 -> Json.Float (a /. b)
    | _ -> Json.Null
  in
  let e15_probe_speedup = e15_ratio "boxed tuple equal" "id tuple equal" in
  let e15_translation_overhead =
    e15_ratio "translate boxed->ids (tuple_ids)" "boxed tuple equal"
  in
  let e16_row r =
    Json.Obj
      [
        ("nodes", Json.Int r.mp_nodes);
        ("processes", Json.Int r.mp_nodes);
        ("wall_s", Json.Float r.mp_wall_s);
        ("sim_wall_s", Json.Float r.mp_sim_wall_s);
        ("data_frames", Json.Int r.mp_frames);
        ("data_bytes", Json.Int r.mp_bytes);
        ("inserts", Json.Int r.mp_inserts);
        ("polls", Json.Int r.mp_polls);
        ("sim_messages", Json.Int r.mp_sim_msgs);
        ("same_fixpoint", Json.Bool r.mp_same);
      ]
  in
  let e16_largest =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some best when best.mp_nodes >= r.mp_nodes -> acc
        | _ -> Some r)
      None !e16_rows
  in
  let e16_all_same =
    match !e16_rows with
    | [] -> Json.Null
    | rows -> Json.Bool (List.for_all (fun r -> r.mp_same) rows)
  in
  let e16_find f =
    match e16_largest with Some r -> f r | None -> Json.Null
  in
  let e17_row r =
    Json.Obj
      [
        ("system", Json.Str r.rd_system);
        ("program", Json.Str r.rd_prog);
        ("topology", Json.Str r.rd_topo);
        ("mode", Json.Str r.rd_mode);
        ("states", Json.Int r.rd_states);
        ("transitions", Json.Int r.rd_transitions);
        ("truncated", Json.Bool r.rd_truncated);
        ("wall_s", Json.Float r.rd_wall_s);
        ("verdict", Json.Str r.rd_verdict);
        ("trace_len", Json.Int r.rd_trace_len);
      ]
  in
  let e17_key r = (r.rd_system, r.rd_prog, r.rd_topo) in
  (* Headline reduction: the best plain/both visited-state ratio over
     cells whose plain exploration completed. *)
  let e17_best_reduction =
    match
      List.fold_left
        (fun acc r ->
          if r.rd_mode <> "both" || r.rd_states = 0 then acc
          else
            match
              List.find_opt
                (fun p ->
                  p.rd_mode = "plain" && (not p.rd_truncated)
                  && p.rd_states > 0
                  && e17_key p = e17_key r)
                !e17_rows
            with
            | Some p ->
              Float.max acc
                (float_of_int p.rd_states /. float_of_int r.rd_states)
            | None -> acc)
        0. !e17_rows
    with
    | 0. -> Json.Null
    | x -> Json.Float x
  in
  let e17_all_agree =
    match !e17_rows with
    | [] -> Json.Null
    | rows ->
      let keys = List.sort_uniq compare (List.map e17_key rows) in
      Json.Bool
        (List.for_all
           (fun k ->
             let vs =
               List.filter_map
                 (fun r ->
                   if e17_key r = k && r.rd_verdict <> "truncated" then
                     Some r.rd_verdict
                   else None)
                 rows
             in
             match vs with [] -> true | v :: rest -> List.for_all (( = ) v) rest)
           keys)
  in
  let now = int_of_float (Unix.time ()) in
  let host_cores = Domain.recommended_domain_count () in
  (* Carry the previous ledger's history forward; a missing, unreadable
     or pre-schema file contributes none. *)
  let prior_history =
    match (try Json.of_file bench_json_path with Sys_error _ -> Error "absent")
    with
    | Ok v -> (
      match Option.bind (Json.member "history" v) Json.as_arr with
      | Some l -> l
      | None -> [])
    | Error _ -> []
  in
  let entry =
    Json.Obj
      [
        ("unix_time", Json.Int now);
        ("quick", Json.Bool !quick);
        ("host_cores", Json.Int host_cores);
        ("e7_rows", Json.Int (List.length !e7_sweeps));
        ("e7_largest_topology_speedup", largest_speedup);
        ("e8_rows", Json.Int (List.length !e8_rows));
        ("e8_best_parallel_speedup", best_e8);
        ("e11_rows", Json.Int (List.length !e11_rows));
        ("e11_max_enum_saved_pct", e11_max_saved);
        ("e12_rows", Json.Int (List.length !e12_rows));
        ("e12_max_mean_group_size", e12_max_mean_group);
        ("e13_rows", Json.Int (List.length !e13_rows));
        ("e13_total_strata_skipped", e13_total_skipped);
        ("e14_rows", Json.Int (List.length !e14_rows));
        ("e14_speedup", e14_speedup);
        ( "e14_tuples_per_sec_ids",
          e14_find "ids" (fun r -> Json.Float r.ch_tuples_per_sec) );
        ( "e14_p99_us_ids",
          e14_find "ids" (fun r -> Json.Float r.ch_p99_us) );
        ("e15_rows", Json.Int (List.length !e15_rows));
        ("e15_probe_speedup", e15_probe_speedup);
        ("e16_rows", Json.Int (List.length !e16_rows));
        ("e16_largest_processes", e16_find (fun r -> Json.Int r.mp_nodes));
        ("e16_largest_wall_s", e16_find (fun r -> Json.Float r.mp_wall_s));
        ("e16_all_same_fixpoint", e16_all_same);
        ("e17_rows", Json.Int (List.length !e17_rows));
        ("e17_best_reduction_x", e17_best_reduction);
        ("e17_all_verdicts_agree", e17_all_agree);
      ]
  in
  Json.to_file bench_json_path
    (Json.Obj
       [
         ("schema", Json.Int 10);
         ("quick", Json.Bool !quick);
         ("host_cores", Json.Int host_cores);
         ("unix_time", Json.Int now);
         ( "e7",
           Json.Obj
             [
               ("largest_topology_speedup", largest_speedup);
               ("sweeps", Json.Arr (List.map e7_row !e7_sweeps));
             ] );
         ( "e8",
           Json.Obj
             [
               ( "domain_counts",
                 Json.Arr (List.map (fun d -> Json.Int d) e8_domain_counts) );
               ("best_parallel_speedup", best_e8);
               ("sweeps", Json.Arr (List.map e8_row !e8_rows));
             ] );
         ( "e11",
           Json.Obj
             [
               ("all_enum_reduced", e11_all_reduced);
               ("max_enum_saved_pct", e11_max_saved);
               ("sweeps", Json.Arr (List.map e11_row !e11_rows));
             ] );
         ( "e12",
           Json.Obj
             [
               ("all_same_fixpoint", e12_all_same);
               ("max_mean_group_size", e12_max_mean_group);
               ("sweeps", Json.Arr (List.map e12_row !e12_rows));
             ] );
         ( "e13",
           Json.Obj
             [
               ("all_same_fixpoint", e13_all_same);
               ("total_strata_skipped", e13_total_skipped);
               ("max_enum_saved_pct", e13_max_saved);
               ("sweeps", Json.Arr (List.map e13_row !e13_rows));
             ] );
         ( "e14",
           Json.Obj
             [
               ("speedup", e14_speedup);
               ( "nodes",
                 e14_find "ids" (fun r -> Json.Int r.ch_nodes) );
               ( "events",
                 e14_find "ids" (fun r -> Json.Int r.ch_events) );
               ( "tuples_per_sec_ids",
                 e14_find "ids" (fun r -> Json.Float r.ch_tuples_per_sec) );
               ( "tuples_per_sec_boxed",
                 e14_find "boxed" (fun r -> Json.Float r.ch_tuples_per_sec) );
               ( "p99_us_ids",
                 e14_find "ids" (fun r -> Json.Float r.ch_p99_us) );
               ( "p99_us_boxed",
                 e14_find "boxed" (fun r -> Json.Float r.ch_p99_us) );
               ( "live_words_ids",
                 e14_find "ids" (fun r -> Json.Int r.ch_live_words) );
               ( "live_words_boxed",
                 e14_find "boxed" (fun r -> Json.Int r.ch_live_words) );
               (* Refresh-cost breakdown (schema 8): wall spent inside
                  view-refresh walks and its share of the measurement
                  window, per mode — the copy-tax metric the journaled
                  in-place refresh is accountable to. *)
               ( "refresh_s_ids",
                 e14_find "ids" (fun r -> Json.Float r.ch_refresh_s) );
               ( "refresh_s_boxed",
                 e14_find "boxed" (fun r -> Json.Float r.ch_refresh_s) );
               ( "refresh_share_ids",
                 e14_find "ids" (fun r ->
                     Json.Float (r.ch_refresh_s /. Float.max 1e-9 r.ch_wall_s))
               );
               ( "refresh_share_boxed",
                 e14_find "boxed" (fun r ->
                     Json.Float (r.ch_refresh_s /. Float.max 1e-9 r.ch_wall_s))
               );
               ("runs", Json.Arr (List.map e14_row !e14_rows));
             ] );
         ( "e15",
           Json.Obj
             [
               ("probe_speedup", e15_probe_speedup);
               ( "translation_overhead_vs_boxed_probe",
                 e15_translation_overhead );
               ("ops", Json.Arr (List.map e15_row !e15_rows));
             ] );
         (* Multi-process runs (schema 9): the socket transport's wall
            clock and wire traffic, with the fixpoint-equality claim
            against the simulator backend carried as data. *)
         ( "e16",
           Json.Obj
             [
               ("all_same_fixpoint", e16_all_same);
               ("largest_processes", e16_find (fun r -> Json.Int r.mp_nodes));
               ("largest_wall_s", e16_find (fun r -> Json.Float r.mp_wall_s));
               ( "largest_data_bytes",
                 e16_find (fun r -> Json.Int r.mp_bytes) );
               ("runs", Json.Arr (List.map e16_row !e16_rows));
             ] );
         (* Reduced model checking (schema 10): visited-state counts
            per reduction mode with the verdict-equality claim carried
            as data (and asserted by the E17 run itself). *)
         ( "e17",
           Json.Obj
             [
               ("all_verdicts_agree", e17_all_agree);
               ("best_reduction_x", e17_best_reduction);
               ("runs", Json.Arr (List.map e17_row !e17_rows));
             ] );
         ("history", Json.Arr (prior_history @ [ entry ]));
       ]);
  Fmt.pr "@.benchmark ledger written to %s@." bench_json_path

let e7 () =
  banner "e7" "declarative execution performance"
    "declarative networks perform efficiently relative to imperative \
     implementations";
  let ring_sizes = if !quick then [ 4; 8; 16 ] else [ 4; 8; 16; 24; 32 ] in
  let grid_sides = if !quick then [ 3; 4 ] else [ 3; 4; 5 ] in
  let sweeps =
    List.map
      (fun n ->
        sweep_point ~prog_name:"path-vector" ~topo_name:"ring" ~n ~nodes:n
          (Ndlog.Programs.with_links
             (Ndlog.Programs.path_vector ())
             (Ndlog.Programs.ring_links n)))
      ring_sizes
    @ List.map
        (fun k ->
          sweep_point ~prog_name:"reachability" ~topo_name:"grid" ~n:k
            ~nodes:(k * k)
            (Ndlog.Programs.with_links
               (Ndlog.Programs.reachability ())
               (Ndlog.Programs.grid_links k)))
        grid_sides
  in
  e7_sweeps := sweeps;
  Fmt.pr "semi-naive, index layer on vs. off (pre-index nested-loop \
          baseline):@.";
  table
    [
      "program"; "topology"; "tuples"; "rounds"; "indexed"; "baseline";
      "speedup"; "idx/scan joins"; "enum idx/base"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         [
           r.sw_prog;
           Fmt.str "%s %d" r.sw_topo r.sw_n;
           string_of_int r.sw_tuples;
           string_of_int r.sw_rounds;
           Fmt.str "%.1f ms" r.sw_idx_ms;
           Fmt.str "%.1f ms" r.sw_base_ms;
           Fmt.str "%.1fx" (sw_speedup r);
           Fmt.str "%d/%d" r.sw_hits r.sw_scans;
           Fmt.str "%d/%d" r.sw_enum_idx r.sw_enum_base;
           string_of_bool r.sw_same;
         ])
       sweeps);
  (* Distributed execution over the same substrate (strand joins are
     index-aware too: the report carries the run's join profile). *)
  Fmt.pr "@.distributed pipelined semi-naive (path-vector):@.";
  let rows =
    List.map
      (fun n ->
        let p =
          Ndlog.Programs.with_links
            (Ndlog.Programs.path_vector ())
            (Ndlog.Programs.ring_links n)
        in
        let loc =
          match Ndlog.Localize.rewrite_program p with
          | Ok r -> r.Ndlog.Localize.program
          | Error _ -> assert false
        in
        let rt = Dist.Runtime.create (Netsim.Topology.ring n) loc in
        Dist.Runtime.load_facts rt;
        let report, t_dist = wall (fun () -> Dist.Runtime.run rt) in
        let st = report.Dist.Runtime.eval_stats in
        [
          string_of_int n;
          string_of_int report.Dist.Runtime.stats.Netsim.Sim.messages_sent;
          Fmt.str "%.1f ms" (t_dist *. 1e3);
          Fmt.str "%d/%d" st.Ndlog.Eval.index_hits st.Ndlog.Eval.scans;
        ])
      (if !quick then [ 4; 8 ] else [ 4; 8; 16 ])
  in
  table [ "ring n"; "dist msgs"; "dist time"; "idx/scan joins" ] rows;
  let p8 =
    Ndlog.Programs.with_links
      (Ndlog.Programs.path_vector ())
      (Ndlog.Programs.ring_links 8)
  in
  let info8 = Ndlog.Analysis.analyze_exn p8 in
  let db8 = Ndlog.Store.of_facts p8.Ndlog.Ast.facts in
  let ns =
    ns_per_run ~name:"seminaive-ring8" (fun () ->
        ignore (Ndlog.Eval.seminaive p8 info8 db8))
  in
  Fmt.pr
    "bechamel: semi-naive path-vector on an 8-ring: %s per full fixpoint@."
    (pp_ns ns);
  (* A second protocol over the same substrate: link-state flooding. *)
  Fmt.pr "@.link-state routing (LSA flooding + local computation):@.";
  let rows =
    List.map
      (fun n ->
        let p =
          Ndlog.Programs.with_links
            (Ndlog.Programs.link_state ~max_hops:n)
            (Ndlog.Programs.ring_links n)
        in
        let central, t_c = wall (fun () -> Ndlog.Eval.run_exn p) in
        let rt = Dist.Runtime.create (Netsim.Topology.ring n) p in
        Dist.Runtime.load_facts rt;
        let report, _ = wall (fun () -> Dist.Runtime.run rt) in
        [
          string_of_int n;
          string_of_int (Ndlog.Store.cardinal "lsa" central.Ndlog.Eval.db);
          Fmt.str "%.1f ms" (t_c *. 1e3);
          string_of_int report.Dist.Runtime.stats.Netsim.Sim.messages_sent;
          string_of_bool
            (Ndlog.Store.Tset.equal
               (Ndlog.Store.relation "lsCost" central.Ndlog.Eval.db)
               (Ndlog.Store.relation "lsCost" (Dist.Runtime.global_store rt)));
        ])
      (if !quick then [ 4; 6 ] else [ 4; 6; 8 ])
  in
  table
    [ "ring n"; "lsa tuples"; "central time"; "dist msgs"; "dist = central" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: sharded multicore fixpoint evaluation. *)

let e8 () =
  banner "e8" "sharded multicore fixpoint evaluation"
    "per-location semi-naive fixpoints on OCaml domains reach the same \
     fixpoint as centralized evaluation";
  Fmt.pr "host cores (recommended domain count): %d; domain sweep: %s@."
    (Domain.recommended_domain_count ())
    (String.concat "/" (List.map string_of_int e8_domain_counts));
  let ring_sizes = if !quick then [ 8; 12 ] else [ 8; 16; 24; 32 ] in
  let grid_sides = if !quick then [ 3 ] else [ 3; 4; 5 ] in
  let rows =
    List.map
      (fun n ->
        sharded_point ~prog_name:"path-vector" ~topo_name:"ring" ~n ~nodes:n
          (Ndlog.Programs.with_links
             (Ndlog.Programs.path_vector ())
             (Ndlog.Programs.ring_links n)))
      ring_sizes
    @ List.map
        (fun k ->
          sharded_point ~prog_name:"reachability" ~topo_name:"grid" ~n:k
            ~nodes:(k * k)
            (Ndlog.Programs.with_links
               (Ndlog.Programs.reachability ())
               (Ndlog.Programs.grid_links k)))
        grid_sides
  in
  e8_rows := rows;
  let ms = Fmt.str "%.1f ms" in
  table
    [
      "program"; "topology"; "shards"; "tuples"; "rounds"; "central";
      "d=1"; "d=2"; "d=4"; "par speedup"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         let dms d =
           match List.assoc_opt d r.sh_domain_ms with
           | Some v -> ms v
           | None -> "n/a"
         in
         [
           r.sh_prog;
           Fmt.str "%s %d" r.sh_topo r.sh_n;
           string_of_int r.sh_shards;
           string_of_int r.sh_tuples;
           string_of_int r.sh_rounds;
           ms r.sh_central_ms;
           dms 1;
           dms 2;
           dms 4;
           Fmt.str "%.2fx" (sh_parallel_speedup r);
           string_of_bool r.sh_same;
         ])
       rows);
  Fmt.pr
    "fixpoint equality against the centralized engine is asserted per row; \
     rounds is the parallel depth (max local rounds per global round).@.";
  Fmt.pr
    "note: parallel speedup only materializes on multicore hosts — on a \
     single-core host the d=2/d=4 runs measure pool overhead honestly.@."

(* ------------------------------------------------------------------ *)
(* E11: batched delta joins. *)

let e11 () =
  banner "e11" "batched delta joins in semi-naive evaluation"
    "grouping each round's delta by its join key amortizes index probes \
     and body setup across tuples";
  let ring_sizes = if !quick then [ 4; 8; 16 ] else [ 4; 8; 16; 24; 32 ] in
  let grid_sides = if !quick then [ 3; 4 ] else [ 3; 4; 5 ] in
  let rows =
    List.map
      (fun n ->
        batched_point ~prog_name:"path-vector" ~topo_name:"ring" ~n ~nodes:n
          (Ndlog.Programs.with_links
             (Ndlog.Programs.path_vector ())
             (Ndlog.Programs.ring_links n)))
      ring_sizes
    @ List.map
        (fun k ->
          batched_point ~prog_name:"reachability" ~topo_name:"grid" ~n:k
            ~nodes:(k * k)
            (Ndlog.Programs.with_links
               (Ndlog.Programs.reachability ())
               (Ndlog.Programs.grid_links k)))
        grid_sides
  in
  e11_rows := rows;
  Fmt.pr
    "semi-naive, batched delta joins on vs. off (indexes and reordering on \
     in both):@.";
  table
    [
      "program"; "topology"; "tuples"; "rounds"; "batched"; "per-tuple";
      "speedup"; "groups/probes"; "enum bat/per"; "enum saved"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         [
           r.bt_prog;
           Fmt.str "%s %d" r.bt_topo r.bt_n;
           string_of_int r.bt_tuples;
           string_of_int r.bt_rounds;
           Fmt.str "%.1f ms" r.bt_batched_ms;
           Fmt.str "%.1f ms" r.bt_per_tuple_ms;
           Fmt.str "%.1fx" (bt_speedup r);
           Fmt.str "%d/%d" r.bt_groups r.bt_group_probes;
           Fmt.str "%d/%d" r.bt_enum_batched r.bt_enum_per_tuple;
           Fmt.str "%.0f%%" (bt_enum_saved r);
           string_of_bool r.bt_same;
         ])
       rows);
  Fmt.pr
    "fixpoint equality and a strict enumeration reduction are asserted per \
     row; groups/probes count grouped joins and rule-delta applications.@."

(* ------------------------------------------------------------------ *)
(* E12: inbox batching in the distributed runtime. *)

let e12 () =
  banner "e12" "inbox batching in the distributed runtime"
    "flushing same-instant message deliveries as one per-predicate delta \
     carries the batched join's savings onto the wire path";
  let ring_sizes = if !quick then [ 4; 8; 16 ] else [ 4; 8; 16; 24 ] in
  let grid_sides = if !quick then [ 3 ] else [ 3; 4 ] in
  let rows =
    List.map
      (fun n ->
        inbox_point ~prog_name:"path-vector" ~topo_name:"ring" ~n ~nodes:n
          ~strict:(n >= 8)
          (Ndlog.Programs.path_vector ())
          (Ndlog.Programs.ring_links n))
      ring_sizes
    @ List.map
        (fun k ->
          inbox_point ~prog_name:"reachability" ~topo_name:"grid" ~n:k
            ~nodes:(k * k) ~strict:false
            (Ndlog.Programs.reachability ())
            (Ndlog.Programs.grid_links k))
        grid_sides
  in
  e12_rows := rows;
  Fmt.pr
    "distributed pipelined semi-naive, inbox batching on vs. off (per-message \
     deliveries):@.";
  table
    [
      "program"; "topology"; "tuples"; "msgs"; "batched"; "per-msg"; "speedup";
      "delta/groups"; "mean group"; "enum bat/per"; "enum saved"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         [
           r.ib_prog;
           Fmt.str "%s %d" r.ib_topo r.ib_n;
           string_of_int r.ib_tuples;
           string_of_int r.ib_msgs;
           Fmt.str "%.1f ms" r.ib_batched_ms;
           Fmt.str "%.1f ms" r.ib_per_msg_ms;
           Fmt.str "%.1fx" (ib_speedup r);
           Fmt.str "%d/%d" r.ib_delta r.ib_groups;
           Fmt.str "%.2f" (ib_mean_group r);
           Fmt.str "%d/%d" r.ib_enum_batched r.ib_enum_per_msg;
           Fmt.str "%.0f%%" (ib_enum_saved r);
           string_of_bool r.ib_same;
         ])
       rows);
  Fmt.pr
    "global fixpoint, per-node stores and insert counts are asserted \
     identical per row; on rings >= 8 a mean wire delta-group size > 1 and a \
     strict wire-path enumeration reduction are asserted too.@."

(* ------------------------------------------------------------------ *)
(* E13: incremental view refresh with dirty-predicate tracking. *)

let e13 () =
  banner "e13" "incremental view refresh in the distributed runtime"
    "dirty-predicate tracking lets a refresh skip every view stratum whose \
     support did not change, without altering fixpoints or message traffic";
  let ring_sizes = if !quick then [ 4; 8; 16 ] else [ 4; 8; 16; 24 ] in
  let grid_sides = if !quick then [ 3 ] else [ 3; 4 ] in
  let star_sizes = if !quick then [ 8 ] else [ 8; 16 ] in
  let rows =
    List.map
      (fun n ->
        incr_point ~prog_name:"path-vector" ~topo_name:"ring" ~n ~nodes:n
          ~strict:(n >= 8)
          (Ndlog.Programs.path_vector ())
          (Ndlog.Programs.ring_links n))
      ring_sizes
    @ List.map
        (fun k ->
          incr_point ~prog_name:"bounded-dv" ~topo_name:"grid" ~n:k
            ~nodes:(k * k) ~strict:false
            (Ndlog.Programs.bounded_distance_vector ~max_hops:(2 * k))
            (Ndlog.Programs.grid_links k))
        grid_sides
    @ List.map
        (fun n ->
          incr_point ~prog_name:"bounded-dv" ~topo_name:"star" ~n ~nodes:n
            ~strict:false
            (Ndlog.Programs.bounded_distance_vector ~max_hops:3)
            (Ndlog.Programs.star_links n))
        star_sizes
  in
  e13_rows := rows;
  Fmt.pr
    "distributed runtime, incremental view refresh on vs. off (from-scratch \
     recomputation), identical insertion schedules with mid-run link churn:@.";
  table
    [
      "program"; "topology"; "tuples"; "msgs"; "incr"; "scratch"; "speedup";
      "skipped"; "fallbacks"; "enum incr/scratch"; "enum saved"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         [
           r.iv_prog;
           Fmt.str "%s %d" r.iv_topo r.iv_n;
           string_of_int r.iv_tuples;
           string_of_int r.iv_msgs;
           Fmt.str "%.1f ms" r.iv_incr_ms;
           Fmt.str "%.1f ms" r.iv_scratch_ms;
           Fmt.str "%.1fx" (iv_speedup r);
           string_of_int r.iv_skipped;
           string_of_int r.iv_fallbacks;
           Fmt.str "%d/%d" r.iv_enum_incr r.iv_enum_scratch;
           Fmt.str "%.0f%%" (iv_enum_saved r);
           string_of_bool r.iv_same;
         ])
       rows);
  Fmt.pr
    "global fixpoint, per-node stores and message counts are asserted \
     identical per row; on rings >= 8 skipped strata > 0 and a strict \
     view-path enumeration reduction are asserted too.@."

(* ------------------------------------------------------------------ *)
(* E14: sustained churn under interned vs. boxed tuple storage. *)

let e14 () =
  banner "e14" "sustained link/route churn, id-native vs. boxed evaluation"
    "flat int-array tuples and integer joins keep a long-running \
     soft-state router fast and compact without changing a single tuple";
  (* Quick mode is sized for the @bench-smoke alias (~15 s of churn);
     the full run sustains a million events per repetition on a
     192-node chorded ring. *)
  let n = if !quick then 64 else 192 in
  let events = if !quick then 20_000 else 1_000_000 in
  let reps = 3 in
  let row_i, row_b = churn_point ~n ~events ~reps in
  e14_rows := [ row_i; row_b ];
  Fmt.pr
    "chorded ring of %d nodes, bounded path-vector with a promise-audit \
     rule, all predicates soft; %d alternating link-offer / route-promise \
     events with withheld offers and flapping costs, %d interleaved \
     repetitions per storage mode, medians reported (p50/p99 over the %d \
     post-warmup events):@."
    n events reps row_i.ch_measured;
  table
    [
      "storage"; "events"; "inserts"; "wall"; "tuples/s"; "events/s";
      "p50"; "p99"; "max"; "live heap"; "interned";
    ]
    (List.map
       (fun r ->
         [
           r.ch_mode;
           string_of_int r.ch_events;
           string_of_int r.ch_inserts;
           Fmt.str "%.1f s" r.ch_wall_s;
           Fmt.str "%.0f" r.ch_tuples_per_sec;
           Fmt.str "%.0f" r.ch_events_per_sec;
           Fmt.str "%.0f us" r.ch_p50_us;
           Fmt.str "%.0f us" r.ch_p99_us;
           Fmt.str "%.0f us" r.ch_max_us;
           Fmt.str "%dk words" (r.ch_live_words / 1000);
           string_of_int r.ch_interned;
         ])
       [ row_i; row_b ]);
  Fmt.pr
    "throughput ratio id-native/boxed: %.2fx; identical global fixpoint, \
     per-node stores and insert counts are asserted across the two runs.@."
    (row_i.ch_tuples_per_sec /. row_b.ch_tuples_per_sec)

(* ------------------------------------------------------------------ *)
(* E15: the per-probe price of each representation choice. *)

let e15 () =
  banner "e15" "per-probe cost of id joins vs. boxed joins vs. translation"
    "design choice: integer joins win only because boxing is hoisted out \
     of the probe loop — translating per probe would cost more than the \
     structural compare it replaces";
  let module Intern = Ndlog.Intern in
  let module Fset = Ndlog.Flat.Fset in
  let k = 256 in
  (* Path-vector-shaped tuples (the churn workload's hot relation):
     two addresses, a three-hop path list, a cost, a hop count. *)
  let mk i =
    let nd j = Ndlog.Value.Addr (Ndlog.Programs.node (j mod k)) in
    [|
      nd i; nd (i + 1);
      Ndlog.Value.List [ nd i; nd (i + 1); nd (i + 2) ];
      Ndlog.Value.Int (i mod 7);
      Ndlog.Value.Int (1 + (i mod 3));
    |]
  in
  (* Two structurally equal corpora in distinct boxes, so the boxed
     compares below actually walk the spine instead of hitting physical
     equality; the id corpora are likewise distinct arrays. *)
  let a = Array.init k mk in
  let b = Array.init k mk in
  let ia = Array.map Intern.tuple_ids a in
  let ib = Array.map (fun t -> Array.copy (Intern.tuple_ids t)) b in
  let tset =
    Array.fold_left
      (fun s t -> Ndlog.Store.Tset.add t s)
      Ndlog.Store.Tset.empty a
  in
  let fset = Fset.create () in
  Array.iter (fun t -> ignore (Fset.add fset t)) ia;
  let per_op name f =
    let ns = ns_per_run ~name (fun () -> f ()) /. float_of_int k in
    { xl_op = name; xl_ns = ns }
  in
  let sink = ref 0 in
  let rows =
    [
      per_op "id tuple equal" (fun () ->
          for i = 0 to k - 1 do
            if Fset.tuple_eq ia.(i) ib.(i) then incr sink
          done);
      per_op "boxed tuple equal" (fun () ->
          for i = 0 to k - 1 do
            if Ndlog.Store.Tuple.equal a.(i) b.(i) then incr sink
          done);
      per_op "id set probe (Fset.mem)" (fun () ->
          for i = 0 to k - 1 do
            if Fset.mem fset ib.(i) then incr sink
          done);
      per_op "boxed set probe (Tset.mem)" (fun () ->
          for i = 0 to k - 1 do
            if Ndlog.Store.Tset.mem b.(i) tset then incr sink
          done);
      per_op "translate boxed->ids (tuple_ids)" (fun () ->
          for i = 0 to k - 1 do
            sink := !sink + Array.length (Intern.tuple_ids b.(i))
          done);
      per_op "translate ids->boxed (tuple_of_ids)" (fun () ->
          for i = 0 to k - 1 do
            sink := !sink + Array.length (Intern.tuple_of_ids ia.(i))
          done);
    ]
  in
  ignore (Sys.opaque_identity !sink);
  e15_rows := rows;
  table
    [ "operation"; "ns/op" ]
    (List.map (fun r -> [ r.xl_op; Fmt.str "%.1f" r.xl_ns ]) rows);
  let ns op = (List.find (fun r -> r.xl_op = op) rows).xl_ns in
  Fmt.pr
    "id probe speedup over boxed probe: %.1fx (equal), %.1fx (set \
     membership)@."
    (ns "boxed tuple equal" /. ns "id tuple equal")
    (ns "boxed set probe (Tset.mem)" /. ns "id set probe (Fset.mem)");
  Fmt.pr
    "hash-cons translation costs %.1fx a boxed structural compare — paying \
     it per probe would erase the join win, which is why the id-native \
     path translates only at system boundaries.@."
    (ns "translate boxed->ids (tuple_ids)" /. ns "boxed tuple equal")

(* ------------------------------------------------------------------ *)
(* E16: real processes over real sockets. *)

let e16 () =
  banner "e16" "path vector across real OS processes"
    "declarative networks execute on real distributed nodes, not just in \
     simulation — the same program, unchanged, over a real transport \
     (Section 3)";
  let sizes = if !quick then [ 4; 6 ] else [ 4; 8; 12 ] in
  let point n =
    let links = Ndlog.Programs.ring_links n in
    let loc =
      match
        Ndlog.Localize.rewrite_program
          (Ndlog.Programs.with_links (Ndlog.Programs.path_vector ()) links)
      with
      | Ok r -> r.Ndlog.Localize.program
      | Error _ -> assert false
    in
    let topo = topo_of_link_facts links in
    let res, wall_s = wall (fun () -> Dist.Supervisor.run topo loc) in
    let rt = Dist.Runtime.create topo loc in
    Dist.Runtime.load_facts rt;
    let rep, sim_wall_s = wall (fun () -> Dist.Runtime.run rt) in
    if not rep.Dist.Runtime.stats.Netsim.Sim.quiesced then
      failwith (Fmt.str "E16 ring %d: simulator run did not quiesce" n);
    let same =
      List.for_all
        (fun (node, store) ->
          Ndlog.Store.equal store (Dist.Runtime.node_store rt node))
        res.Dist.Supervisor.stores
      && List.length res.Dist.Supervisor.stores = n
    in
    (* The equivalence claim is part of the benchmark: a divergence
       between the socket transport and the simulator fails the run
       (and the bench-smoke alias) loudly. *)
    if not same then
      failwith (Fmt.str "E16 ring %d: socket fixpoints diverge from sim" n);
    {
      mp_nodes = n;
      mp_wall_s = wall_s;
      mp_sim_wall_s = sim_wall_s;
      mp_frames = res.Dist.Supervisor.data_frames;
      mp_bytes = res.Dist.Supervisor.data_bytes;
      mp_inserts = res.Dist.Supervisor.total_inserts;
      mp_polls = res.Dist.Supervisor.polls;
      mp_sim_msgs = rep.Dist.Runtime.stats.Netsim.Sim.messages_sent;
      mp_same = same;
    }
  in
  let rows = List.map point sizes in
  e16_rows := rows;
  table
    [
      "ring n"; "procs"; "wall"; "sim wall"; "frames"; "wire bytes";
      "inserts"; "polls"; "same fixpoint";
    ]
    (List.map
       (fun r ->
         [
           string_of_int r.mp_nodes;
           string_of_int r.mp_nodes;
           Fmt.str "%.3f s" r.mp_wall_s;
           Fmt.str "%.3f s" r.mp_sim_wall_s;
           string_of_int r.mp_frames;
           string_of_int r.mp_bytes;
           string_of_int r.mp_inserts;
           string_of_int r.mp_polls;
           string_of_bool r.mp_same;
         ])
       rows);
  Fmt.pr
    "every ring converged across real processes to the simulator's exact \
     per-node fixpoints — the transport changes the clock and the wire, \
     not the semantics@."

(* ------------------------------------------------------------------ *)
(* E17: partial-order and symmetry reduction for the model checker. *)

let e17 () =
  banner "e17" "reduced model checking"
    "partial-order and symmetry reduction shrink the checker's state \
     space without changing its verdicts (Section 4.3)";
  let module P = Ndlog.Programs in
  let module E = Mcheck.Explore in
  let module NT = Mcheck.Ndlog_ts in
  let module ST = Mcheck.Soft_ts in
  let module Sym = Mcheck.Symmetry in
  let rows = ref [] in
  let push r = rows := !rows @ [ r ] in
  (* Verdict equality is part of the benchmark: within a cell every
     mode whose search completed must reach the same verdict, and
     every counterexample must replay as a real execution. *)
  let assert_agree name vs =
    match List.filter (fun (_, v) -> v <> "truncated") vs with
    | [] -> ()
    | (_, v0) :: rest ->
      List.iter
        (fun (m, v) ->
          if v <> v0 then
            failwith (Fmt.str "E17 %s: mode %s verdict %s <> %s" name m v v0))
        rest
  in
  let validated name sys = function
    | Ok (s : _ E.stats) -> ((if s.E.truncated then "truncated" else "ok"), 0)
    | Error (v : _ E.violation) ->
      (match E.validate_trace sys v.E.trace with
      | Ok () -> ()
      | Error e ->
        failwith (Fmt.str "E17 %s: counterexample does not replay: %s" name e));
      ("violation", List.length v.E.trace)
  in
  (* A fine-grained NDlog cell: explore (state counts) and check [inv]
     (verdict) under each mode.  [verdict_only] skips the exploration
     runs for diverging spaces (count-to-infinity).  [stable] declares
     the invariant monotone-stable, the POR visibility argument for
     insertion-only systems. *)
  let ndlog_cell ~prog_name ~topo_name ?(cap = 100_000) ?(plain_cap = cap)
      ?(verdict_only = false) ?(modes = [ "plain"; "por"; "sym"; "both" ])
      prog topo inv =
    let sym = Sym.of_topology topo in
    let lsys = NT.labeled_system prog in
    let name = Fmt.str "%s/%s" prog_name topo_name in
    let verdicts =
      List.map
        (fun mode ->
          let cap = if mode = "plain" then plain_cap else cap in
          let por = mode = "por" || mode = "por-footprint" || mode = "both" in
          let independence =
            if mode = "por-footprint" then `Footprint else `Monotone
          in
          let symmetry =
            if mode = "sym" || mode = "both" then Some sym else None
          in
          let st, explore_s =
            if verdict_only then
              ( { E.states = 0; transitions = 0; max_depth = 0; terminal = [];
                  truncated = false },
                0. )
            else
              wall (fun () ->
                  NT.explore ~max_states:cap ~por ?symmetry ~independence prog)
          in
          let res, check_s =
            wall (fun () ->
                NT.check_fine_invariant ~max_states:cap ~por ?symmetry
                  ~independence ~stable:true prog inv)
          in
          let verdict, trace_len = validated name lsys res in
          let truncated =
            st.E.truncated || (verdict_only && verdict = "truncated")
          in
          push
            {
              rd_system = "ndlog"; rd_prog = prog_name; rd_topo = topo_name;
              rd_mode = mode; rd_states = st.E.states;
              rd_transitions = st.E.transitions; rd_truncated = truncated;
              rd_wall_s = explore_s +. check_s; rd_verdict = verdict;
              rd_trace_len = trace_len;
            };
          (mode, verdict))
        modes
    in
    assert_agree name verdicts
  in
  (* A soft-state cell: same shape over the clocked lease system. *)
  let soft_cell ~prog_name ~topo_name cfg topo ~observed inv =
    let sym = Sym.of_topology topo in
    let lsys = ST.labeled_system cfg in
    let name = Fmt.str "%s/%s" prog_name topo_name in
    let verdicts =
      List.map
        (fun mode ->
          let por = mode = "por" || mode = "both" in
          let symmetry =
            if mode = "sym" || mode = "both" then Some sym else None
          in
          let st, explore_s = wall (fun () -> ST.explore ~por ?symmetry cfg) in
          let res, check_s =
            wall (fun () -> ST.check ~por ?symmetry ~observed cfg inv)
          in
          let verdict, trace_len = validated name lsys res in
          push
            {
              rd_system = "soft"; rd_prog = prog_name; rd_topo = topo_name;
              rd_mode = mode; rd_states = st.E.states;
              rd_transitions = st.E.transitions; rd_truncated = st.E.truncated;
              rd_wall_s = explore_s +. check_s; rd_verdict = verdict;
              rd_trace_len = trace_len;
            };
          (mode, verdict))
        [ "plain"; "por"; "sym"; "both" ]
    in
    assert_agree name verdicts
  in
  let reach links = P.with_links (P.reachability ()) links in
  let bdv h links = P.with_links (P.bounded_distance_vector ~max_hops:h) links in
  let no_self_reach db =
    Ndlog.Store.fold_rel "reachable"
      (fun t ok -> ok && not (Ndlog.Value.equal t.(0) t.(1)))
      db true
  in
  let cost_bound b db =
    Ndlog.Store.fold_rel "cost"
      (fun t ok ->
        ok && (match t.(2) with Ndlog.Value.Int c -> c <= b | _ -> true))
      db true
  in
  (* Small cells: the plain baseline completes, so the reduction
     factors and verdict equality are exact.  The footprint-POR column
     rides along where plain is cheap — its honesty number (measured
     ~1x on rings, where every insertion's write is a neighbour's
     read) is part of the record. *)
  ndlog_cell ~prog_name:"reachability" ~topo_name:"ring3"
    ~modes:[ "plain"; "por"; "por-footprint"; "sym"; "both" ]
    (reach (P.ring_links 3))
    (Netsim.Topology.ring 3) no_self_reach;
  ndlog_cell ~prog_name:"reachability" ~topo_name:"star4"
    (reach (P.star_links 4))
    (Netsim.Topology.star 4) no_self_reach;
  ndlog_cell ~prog_name:"bdv-h2" ~topo_name:"ring3"
    ~modes:[ "plain"; "por"; "por-footprint"; "sym"; "both" ]
    (bdv 2 (P.ring_links 3))
    (Netsim.Topology.ring 3) (cost_bound 2);
  if not !quick then
    ndlog_cell ~prog_name:"reachability" ~topo_name:"grid2"
      (reach (P.grid_links 2))
      (Netsim.Topology.grid 2) no_self_reach;
  (* Ring 8: the plain space is out of reach (the truncated row records
     how far a capped plain search gets), and so is the sym-only mode —
     the orbit quotient divides by at most the group order (16), which
     does not dent an exponential space, so symmetry pays off only on
     top of POR.  The POR modes finish in milliseconds and still decide
     the verdicts — including the E2 count-to-infinity violation, whose
     counterexample must replay. *)
  let ring8_modes = [ "plain"; "por"; "both" ] in
  ndlog_cell ~prog_name:"reachability" ~topo_name:"ring8" ~plain_cap:1_000
    ~modes:ring8_modes
    (reach (P.ring_links 8))
    (Netsim.Topology.ring 8) no_self_reach;
  ndlog_cell ~prog_name:"bdv-h2" ~topo_name:"ring8" ~plain_cap:1_000
    ~modes:ring8_modes
    (bdv 2 (P.ring_links 8))
    (Netsim.Topology.ring 8) (cost_bound 2);
  ndlog_cell ~prog_name:"dv-unbounded" ~topo_name:"ring8" ~cap:50_000
    ~plain_cap:1_000 ~verdict_only:true ~modes:ring8_modes
    (P.with_links (P.distance_vector ()) (P.ring_links 8))
    (Netsim.Topology.ring 8) (cost_bound 4);
  (* Soft state: ticks commute with nothing, so POR is inert below the
     horizon (plain and por coincide — the honest number); symmetry
     over the star's leaf group is the effective reduction. *)
  let hb_prog =
    P.parse_exn
      {|
materialize(ping, 2).
materialize(alive, 2).
a1 alive(@X,Y) :- ping(@X,Y).
|}
  in
  let hb k =
    let pings =
      List.init (k - 1) (fun i ->
          ( "ping",
            [| Ndlog.Value.Addr (P.node 0); Ndlog.Value.Addr (P.node (i + 1)) |]
          ))
    in
    ST.make_config ~horizon:4 ~inject:(fun t -> if t <= 1 then pings else [])
      hb_prog
  in
  let alive_gone (s : ST.state) =
    s.ST.clock < 4
    || Ndlog.Store.is_empty (Ndlog.Store.restrict [ "alive" ] s.ST.db)
  in
  let soft_sizes = if !quick then [ 4; 5 ] else [ 4; 5; 6 ] in
  List.iter
    (fun k ->
      soft_cell ~prog_name:"heartbeat" ~topo_name:(Fmt.str "star%d" k) (hb k)
        (Netsim.Topology.star k) ~observed:[ "alive" ] alive_gone)
    soft_sizes;
  e17_rows := !rows;
  table
    [ "system"; "program"; "topology"; "mode"; "states"; "verdict"; "wall" ]
    (List.map
       (fun r ->
         [
           r.rd_system; r.rd_prog; r.rd_topo; r.rd_mode;
           (if r.rd_states = 0 then "-"
            else if r.rd_truncated then Fmt.str ">=%d" r.rd_states
            else string_of_int r.rd_states);
           (if r.rd_verdict = "violation" then
              Fmt.str "violation (%d steps)" r.rd_trace_len
            else r.rd_verdict);
           Fmt.str "%.3f s" r.rd_wall_s;
         ])
       !rows);
  Fmt.pr
    "verdicts agree across every completed mode; monotone POR collapses \
     insertion interleavings to one chain, symmetry quotients node orbits — \
     and the footprint and soft-POR columns record where reduction honestly \
     vanishes@."

(* ------------------------------------------------------------------ *)
(* E9: soft-state rewrite overhead. *)

let e9 () =
  banner "e9" "the soft-state to hard-state rewrite"
    "the resulting encoding is heavy-weight and cumbersome (Section 4.2)";
  let count_literals (p : Ndlog.Ast.program) =
    List.fold_left
      (fun acc (r : Ndlog.Ast.rule) -> acc + List.length r.Ndlog.Ast.body)
      0 p.Ndlog.Ast.rules
  in
  let rows =
    List.map
      (fun k ->
        let p =
          Ndlog.Programs.with_links
            (Ndlog.Programs.heartbeat ~lifetime:10)
            (Ndlog.Programs.line_links k)
        in
        let report = Ndlog.Softstate.to_hard_state p in
        let h = report.Ndlog.Softstate.rewritten in
        let _, t_soft = wall (fun () -> ignore (Ndlog.Eval.run_exn p)) in
        let _, t_hard =
          wall (fun () -> ignore (Ndlog.Softstate.run_at_clock h ~now:5))
        in
        [
          string_of_int k;
          Fmt.str "%d/%d" (List.length p.Ndlog.Ast.rules) (count_literals p);
          Fmt.str "%d/%d" (List.length h.Ndlog.Ast.rules) (count_literals h);
          string_of_int report.Ndlog.Softstate.added_columns;
          string_of_int report.Ndlog.Softstate.added_conditions;
          Fmt.str "%.2f ms" (t_soft *. 1e3);
          Fmt.str "%.2f ms" (t_hard *. 1e3);
        ])
      [ 2; 4; 8 ]
  in
  table
    [
      "line n"; "soft rules/lits"; "hard rules/lits"; "+cols"; "+guards";
      "soft eval"; "hard eval";
    ]
    rows;
  Fmt.pr
    "the rewrite inflates every soft rule with timestamp columns and \
     liveness guards — the overhead motivating the paper's linear-logic \
     direction@."

(* ------------------------------------------------------------------ *)
(* E10: model checking. *)

let e10 () =
  banner "e10" "model checking the SPP transition systems"
    "the transition-system representation interfaces with model checking and \
     yields counterexamples";
  let rows =
    List.map
      (fun (name, g) ->
        let r = Spp.Ts.analyze g in
        [
          name;
          string_of_int r.Spp.Ts.states;
          string_of_int r.Spp.Ts.transitions;
          string_of_int r.Spp.Ts.stable_reachable;
          (match r.Spp.Ts.oscillation with
          | Some l -> Fmt.str "cycle(%d)" (List.length l.Mcheck.Explore.cycle)
          | None -> "none");
          string_of_bool r.Spp.Ts.sync_oscillates;
        ])
      Spp.Gadgets.all
  in
  table
    [
      "gadget"; "states"; "transitions"; "stable"; "interleaved lasso";
      "sync lasso";
    ]
    rows;
  let p =
    Ndlog.Programs.with_links
      (Ndlog.Programs.reachability ())
      (Ndlog.Programs.line_links 3)
  in
  let no_self db =
    Ndlog.Store.tuples "reachable" db
    |> List.for_all (fun t -> not (Ndlog.Value.equal t.(0) t.(1)))
  in
  (match Mcheck.Ndlog_ts.check_table_invariant p no_self with
  | Ok _ -> Fmt.pr "unexpected: no-self-reachability held@."
  | Error v ->
    Fmt.pr
      "@.NDlog invariant 'no node reaches itself' violated as expected; \
       counterexample trace has %d database states@."
      (List.length v.Mcheck.Explore.trace));
  let stats = Mcheck.Explore.explore (Mcheck.Ndlog_ts.batched_system p) in
  Fmt.pr "reachability fixpoint state space: %d states, %d transitions@."
    stats.Mcheck.Explore.states stats.Mcheck.Explore.transitions

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out, measured. *)

(* A1: the prover's forward-chaining engine on/off. *)
let a1 () =
  banner "a1" "ablation: prover forward chaining"
    "design choice: saturate Horn clauses before spending fuel";
  let thy =
    Logic.Completion.theory_of_program (Ndlog.Programs.path_vector ())
  in
  let goals =
    [
      ("bestPathStrong", (Fvn.Props.route_optimality ()).Fvn.Props.formula);
      ("membership", (Fvn.Props.aggregate_membership ()).Fvn.Props.formula);
      ("functional", (Fvn.Props.aggregate_functional ()).Fvn.Props.formula);
    ]
  in
  let attempt ~rounds goal =
    let cfg = Logic.Prove.make_config ~max_forward_rounds:rounds thy in
    let rec go fuel =
      if fuel > 5 then None
      else
        match Logic.Prove.solve cfg (Logic.Sequent.make goal) fuel with
        | Some p -> Some (p, cfg.Logic.Prove.stats.Logic.Prove.nodes_explored)
        | None -> go (fuel + 1)
    in
    go 1
  in
  let rows =
    List.map
      (fun (name, goal) ->
        let cell = function
          | Some (p, nodes) ->
            Fmt.str "proved (%d inf, %d nodes)" (Logic.Proof.size p) nodes
          | None -> "NOT PROVED"
        in
        [
          name;
          cell (attempt ~rounds:6 goal);
          cell (attempt ~rounds:0 goal);
        ])
      goals
  in
  table [ "theorem"; "with forward chaining"; "without" ] rows;
  Fmt.pr
    "without saturation the aggregate axioms are never instantiated: the \
     proofs are out of reach at any fuel@."

(* A2: model-checker granularity (fine-grained vs batched insertions). *)
let a2 () =
  banner "a2" "ablation: transition granularity in the model checker"
    "design choice: batched insertion steps shrink the state space, same fixpoint";
  let rows =
    List.map
      (fun n ->
        let p =
          Ndlog.Programs.with_links
            (Ndlog.Programs.reachability ())
            (Ndlog.Programs.line_links n)
        in
        let fine =
          Mcheck.Explore.explore ~max_states:20_000 (Mcheck.Ndlog_ts.system p)
        in
        let batched =
          Mcheck.Explore.explore ~max_states:20_000
            (Mcheck.Ndlog_ts.batched_system p)
        in
        [
          string_of_int n;
          Fmt.str "%d%s" fine.Mcheck.Explore.states
            (if fine.Mcheck.Explore.truncated then "+ (truncated)" else "");
          string_of_int batched.Mcheck.Explore.states;
          string_of_bool
            (match
               ( fine.Mcheck.Explore.terminal,
                 batched.Mcheck.Explore.terminal )
             with
            | f :: _, b :: _ -> Ndlog.Store.equal f b
            | _ -> false);
        ])
      [ 2; 3 ]
  in
  table
    [ "line n"; "fine-grained states"; "batched states"; "same fixpoint" ]
    rows

(* A3: what localization costs on the wire. *)
let a3 () =
  banner "a3" "ablation: localization's message overhead"
    "design choice: the link-restriction rewrite ships inverted link copies";
  let rows =
    List.map
      (fun n ->
        let links = Ndlog.Programs.ring_links n in
        let p =
          Ndlog.Programs.with_links (Ndlog.Programs.path_vector ()) links
        in
        let loc =
          match Ndlog.Localize.rewrite_program p with
          | Ok r -> r.Ndlog.Localize.program
          | Error _ -> assert false
        in
        let rt = Dist.Runtime.create (Netsim.Topology.ring n) loc in
        Dist.Runtime.load_facts rt;
        let report = Dist.Runtime.run rt in
        let global = Dist.Runtime.global_store rt in
        let link_copies = Ndlog.Store.cardinal "link_l1" global in
        let msgs = report.Dist.Runtime.stats.Netsim.Sim.messages_sent in
        [
          string_of_int n;
          string_of_int msgs;
          string_of_int link_copies;
          string_of_int (msgs - link_copies);
          Fmt.str "%.0f%%" (100. *. float_of_int link_copies /. float_of_int msgs);
        ])
      [ 4; 8; 16 ]
  in
  table
    [ "ring n"; "messages"; "link_l1 copies"; "path shipments"; "rewrite share" ]
    rows;
  Fmt.pr
    "the rewrite's overhead is one message per directed link — constant per \
     edge, independent of route churn@."

(* E16 is listed (and must be selected) before E8: the supervisor
   forks worker processes, and OCaml forbids [Unix.fork] once any
   domain has been spawned — even a joined one.  E8's shard pool
   spawns domains, so a run that does both must fork first. *)
let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e16", e16); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e17", e17);
    ("a1", a1); ("a2", a2); ("a3", a3);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        match a with
        | "quick" ->
          quick := true;
          false
        | "json" ->
          (* Emit the machine-readable E7/E8/E11–E16 ledger
             (BENCH_ndlog.json). *)
          json_out := true;
          false
        | _ -> true)
      args
  in
  let selected =
    match args with
    | [] -> experiments
    | ids ->
      List.filter_map
        (fun id ->
          match List.assoc_opt (String.lowercase_ascii id) experiments with
          | Some f -> Some (id, f)
          | None ->
            Fmt.epr "unknown experiment %S (known: %s)@." id
              (String.concat ", " (List.map fst experiments));
            None)
        ids
  in
  Fmt.pr "FVN benchmark harness — reproducing the paper's evaluation claims@.";
  List.iter (fun (_, f) -> f ()) selected;
  if !json_out then emit_bench_json ();
  Fmt.pr "@.";
  rule ();
  Fmt.pr "done.@."
