(* Tests for the discrete-event network simulator substrate. *)

module Eq = Netsim.Event_queue
module Topo = Netsim.Topology
module Sim = Netsim.Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Event queue. *)

let test_queue_order () =
  let q = Eq.create () in
  Eq.push q ~time:3.0 "c";
  Eq.push q ~time:1.0 "a";
  Eq.push q ~time:2.0 "b";
  let pop () = Option.get (Eq.pop q) in
  let t1, v1 = pop () in
  let t2, v2 = pop () in
  let t3, v3 = pop () in
  checkf "t1" 1.0 t1;
  checkf "t2" 2.0 t2;
  checkf "t3" 3.0 t3;
  Alcotest.(check string) "v1" "a" v1;
  Alcotest.(check string) "v2" "b" v2;
  Alcotest.(check string) "v3" "c" v3;
  checkb "empty" true (Eq.is_empty q)

let test_queue_fifo_ties () =
  let q = Eq.create () in
  for i = 0 to 9 do
    Eq.push q ~time:5.0 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 Fun.id) order

let test_queue_interleaved () =
  let q = Eq.create () in
  Eq.push q ~time:1.0 1;
  Eq.push q ~time:3.0 3;
  let _ = Eq.pop q in
  Eq.push q ~time:2.0 2;
  checki "size" 2 (Eq.length q);
  let _, a = Option.get (Eq.pop q) in
  let _, b = Option.get (Eq.pop q) in
  checki "a" 2 a;
  checki "b" 3 b

(* ------------------------------------------------------------------ *)
(* Event queue vs. a sorted-list reference model.

   The queue is the determinism keystone for both runtime backends (the
   virtual-clock simulator orders deliveries with it; the socket
   backend orders timers with it), so its contract — (time,
   insertion-order) priority, [peek_time]/[pop] agreement, [size]
   through interleaved push/pop/clear, tie-sequence reset on clear —
   is checked against an executable model: a list of
   [(time, tie, payload)] kept sorted by [(time, tie)], with the tie
   counter mirroring the queue's insertion sequence. *)

type model_op = Push of float | Pop | Clear

let model_op_gen =
  QCheck.Gen.(
    frequency
      [
        (* Coarse times force plenty of exact ties. *)
        (6, map (fun t -> Push (float_of_int t)) (int_bound 8));
        (3, return Pop);
        (1, return Clear);
      ])

let pp_model_op = function
  | Push t -> Printf.sprintf "Push %g" t
  | Pop -> "Pop"
  | Clear -> "Clear"

let model_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_model_op ops))
    QCheck.Gen.(list_size (int_range 0 120) model_op_gen)

let prop_queue_matches_model ops =
  let q = Eq.create () in
  (* Model: sorted insertion keeps (time, tie) order; [tie] mirrors the
     queue's insertion sequence, resetting on clear exactly as the
     queue's does. *)
  let model = ref [] in
  let tie = ref 0 in
  let model_insert t payload =
    let entry = (t, !tie, payload) in
    incr tie;
    let rec ins = function
      | [] -> [ entry ]
      | ((t', tie', _) as e) :: rest ->
        if t' < t || (t' = t && tie' < !tie) then e :: ins rest
        else entry :: e :: rest
    in
    model := ins !model
  in
  let next_payload = ref 0 in
  List.iteri
    (fun _ op ->
      (match op with
      | Push t ->
        let payload = !next_payload in
        incr next_payload;
        Eq.push q ~time:t payload;
        model_insert t payload
      | Pop -> (
        (* peek/pop agreement: the peeked time is the popped time. *)
        let peeked = Eq.peek_time q in
        match (Eq.pop q, !model) with
        | None, [] ->
          if peeked <> None then
            QCheck.Test.fail_report "peek_time on empty queue"
        | Some (t, v), (mt, _, mv) :: rest ->
          model := rest;
          if peeked <> Some t then
            QCheck.Test.fail_reportf "peek %s <> pop %g"
              (match peeked with None -> "None" | Some p -> string_of_float p)
              t;
          if t <> mt || v <> mv then
            QCheck.Test.fail_reportf "pop (%g, %d) but model says (%g, %d)" t v
              mt mv
        | Some _, [] -> QCheck.Test.fail_report "queue popped, model empty"
        | None, _ :: _ -> QCheck.Test.fail_report "queue empty, model not")
      | Clear ->
        Eq.clear q;
        model := [];
        tie := 0);
      if Eq.length q <> List.length !model then
        QCheck.Test.fail_reportf "size %d <> model %d" (Eq.length q)
          (List.length !model);
      if Eq.is_empty q <> (!model = []) then
        QCheck.Test.fail_report "is_empty disagrees with model")
    ops;
  true

let queue_model_test =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"queue = sorted-list model"
       model_ops_arb prop_queue_matches_model)

let test_queue_clear_resets_ties () =
  (* The documented invariant: clear resets the insertion sequence, so
     tie-breaking after a clear is FIFO among the new pushes alone. *)
  let q = Eq.create () in
  for i = 0 to 4 do
    Eq.push q ~time:1.0 i
  done;
  Eq.clear q;
  checki "cleared" 0 (Eq.length q);
  checkb "empty" true (Eq.is_empty q);
  for i = 10 to 14 do
    Eq.push q ~time:1.0 i
  done;
  let order = List.init 5 (fun _ -> snd (Option.get (Eq.pop q))) in
  Alcotest.(check (list int))
    "fifo ties after clear" [ 10; 11; 12; 13; 14 ] order

(* ------------------------------------------------------------------ *)
(* Topology. *)

let test_topology_basics () =
  let t = Topo.ring 4 in
  checki "4 nodes" 4 (List.length (Topo.nodes t));
  checki "8 directed links" 8 (List.length (Topo.links t));
  checkb "n0->n1 up" true (Topo.link_up t "n0" "n1");
  Topo.fail_duplex t "n0" "n1";
  checkb "n0->n1 down" false (Topo.link_up t "n0" "n1");
  checkb "n1->n0 down" false (Topo.link_up t "n1" "n0");
  checkb "n1->n2 unaffected" true (Topo.link_up t "n1" "n2");
  Topo.restore_duplex t "n0" "n1";
  checkb "restored" true (Topo.link_up t "n0" "n1")

let test_topology_neighbors () =
  let t = Topo.star 5 in
  checki "hub degree" 4 (List.length (Topo.neighbors t "n0"));
  checki "leaf degree" 1 (List.length (Topo.neighbors t "n3"));
  Topo.fail_duplex t "n0" "n3";
  checki "hub degree after failure" 3 (List.length (Topo.neighbors t "n0"))

let test_topology_random_connected () =
  (* Every random topology must be connected (spanning-tree based). *)
  List.iter
    (fun seed ->
      let t = Topo.random ~seed ~extra:2 8 in
      let visited = Hashtbl.create 8 in
      let rec dfs n =
        if not (Hashtbl.mem visited n) then begin
          Hashtbl.add visited n ();
          List.iter dfs (Topo.neighbors t n)
        end
      in
      dfs "n0";
      checki
        (Printf.sprintf "connected (seed %d)" seed)
        8 (Hashtbl.length visited))
    [ 1; 2; 3; 17; 99 ]

(* ------------------------------------------------------------------ *)
(* Simulator. *)

let test_sim_delivery () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  let received = ref [] in
  Sim.set_handler sim "n1" (fun _ ~self:_ ~src msg ->
      received := (src, msg) :: !received);
  Sim.schedule sim ~delay:0.0 (fun () ->
      ignore (Sim.send sim ~src:"n0" ~dst:"n1" "hello"));
  let stats = Sim.run sim in
  checkb "quiesced" true stats.Sim.quiesced;
  checki "delivered" 1 stats.Sim.messages_delivered;
  (match !received with
  | [ ("n0", "hello") ] -> ()
  | _ -> Alcotest.fail "wrong delivery");
  (* link delay advanced the clock *)
  checkf "time = delay" 1.0 stats.Sim.final_time

let test_sim_drop_on_down_link () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  Sim.set_handler sim "n1" (fun _ ~self:_ ~src:_ _ -> Alcotest.fail "should not deliver");
  Topo.fail_duplex topo "n0" "n1";
  Sim.schedule sim ~delay:0.0 (fun () ->
      checkb "send fails" false (Sim.send sim ~src:"n0" ~dst:"n1" "x"));
  let stats = Sim.run sim in
  checki "dropped" 1 stats.Sim.messages_dropped;
  checki "delivered" 0 stats.Sim.messages_delivered

let test_sim_no_link_no_delivery () =
  let topo = Topo.line 3 in
  let sim = Sim.create topo in
  Sim.schedule sim ~delay:0.0 (fun () ->
      checkb "no direct n0->n2 link" false (Sim.send sim ~src:"n0" ~dst:"n2" "x"));
  ignore (Sim.run sim)

let test_sim_timers_and_order () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  let log = ref [] in
  Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log);
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "timer order" [ "a"; "b"; "c" ] (List.rev !log)

let test_sim_horizon () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  let fired = ref 0 in
  Sim.schedule sim ~delay:1.0 (fun () -> incr fired);
  Sim.schedule sim ~delay:100.0 (fun () -> incr fired);
  let stats = Sim.run ~until:10.0 sim in
  checki "only one fired" 1 !fired;
  checkb "not quiesced (horizon)" false stats.Sim.quiesced

let test_sim_event_budget () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  (* A self-perpetuating event chain never quiesces; the budget stops it. *)
  let rec tick () = Sim.schedule sim ~delay:1.0 tick in
  Sim.schedule sim ~delay:0.0 tick;
  let stats = Sim.run ~max_events:100 sim in
  checkb "budget hit" false stats.Sim.quiesced;
  checki "events bounded" 100 stats.Sim.events

let test_sim_failure_injection () =
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  let results = ref [] in
  Sim.fail_link_at sim ~time:5.0 "n0" "n1";
  Sim.restore_link_at sim ~time:10.0 "n0" "n1";
  let probe t =
    Sim.at sim ~time:t (fun () ->
        results := (t, Topo.link_up topo "n0" "n1") :: !results)
  in
  probe 4.0;
  probe 6.0;
  probe 11.0;
  ignore (Sim.run sim);
  let sorted = List.sort compare !results in
  Alcotest.(check (list (pair (float 0.01) bool)))
    "link state over time"
    [ (4.0, true); (6.0, false); (11.0, true) ]
    sorted

let test_sim_lossy_link () =
  let topo = Topo.create () in
  Topo.add_link ~loss:0.5 topo "n0" "n1";
  Topo.add_link topo "n1" "n0";
  let sim = Sim.create ~seed:5 topo in
  let received = ref 0 in
  Sim.set_handler sim "n1" (fun _ ~self:_ ~src:_ _ -> incr received);
  Sim.schedule sim ~delay:0.0 (fun () ->
      for _ = 1 to 200 do
        ignore (Sim.send sim ~src:"n0" ~dst:"n1" ())
      done);
  let stats = Sim.run sim in
  checkb "some delivered" true (!received > 50);
  checkb "some lost" true (stats.Sim.messages_dropped > 50);
  checki "conservation" 200
    (stats.Sim.messages_delivered + stats.Sim.messages_dropped)

let test_sim_loss_deterministic () =
  (* Same seed, same losses. *)
  let run_once () =
    let topo = Topo.create () in
    Topo.add_link ~loss:0.3 topo "n0" "n1";
    let sim = Sim.create ~seed:11 topo in
    Sim.set_handler sim "n1" (fun _ ~self:_ ~src:_ _ -> ());
    Sim.schedule sim ~delay:0.0 (fun () ->
        for _ = 1 to 100 do
          ignore (Sim.send sim ~src:"n0" ~dst:"n1" ())
        done);
    (Sim.run sim).Sim.messages_dropped
  in
  checki "same drops" (run_once ()) (run_once ())

let test_sim_per_run_stats () =
  (* Regression (PR 9): all four counters in [run]'s stats are per-run.
     [events] always was, but the three message counters used to report
     simulation-lifetime totals, so a second [run] on the same sim saw
     the first run's traffic again. *)
  let topo = Topo.line 2 in
  let sim = Sim.create topo in
  Sim.set_handler sim "n1" (fun _ ~self:_ ~src:_ _ -> ());
  let burst n =
    Sim.schedule sim ~delay:0.0 (fun () ->
        for _ = 1 to n do
          ignore (Sim.send sim ~src:"n0" ~dst:"n1" ());
          ignore (Sim.send sim ~src:"n0" ~dst:"n2" ())  (* no link: drop *)
        done)
  in
  (* [sent] counts every attempt, including ones that drop. *)
  burst 3;
  let s1 = Sim.run sim in
  checki "run1 sent" 6 s1.Sim.messages_sent;
  checki "run1 delivered" 3 s1.Sim.messages_delivered;
  checki "run1 dropped" 3 s1.Sim.messages_dropped;
  checkb "run1 events counted" true (s1.Sim.events > 0);
  burst 2;
  let s2 = Sim.run sim in
  checki "run2 sent is per-run" 4 s2.Sim.messages_sent;
  checki "run2 delivered is per-run" 2 s2.Sim.messages_delivered;
  checki "run2 dropped is per-run" 2 s2.Sim.messages_dropped;
  (* An idle third run sees no traffic at all. *)
  let s3 = Sim.run sim in
  checki "idle run sent" 0 s3.Sim.messages_sent;
  checki "idle run delivered" 0 s3.Sim.messages_delivered;
  checki "idle run dropped" 0 s3.Sim.messages_dropped;
  checki "idle run events" 0 s3.Sim.events

let test_sim_determinism () =
  (* Two identical simulations produce identical traces. *)
  let run_once () =
    let topo = Topo.ring 4 in
    let sim = Sim.create ~seed:7 topo in
    Sim.set_tracing sim true;
    List.iter
      (fun n ->
        Sim.set_handler sim n (fun sim ~self ~src:_ msg ->
            if msg < 3 then
              List.iter
                (fun nb -> ignore (Sim.send sim ~src:self ~dst:nb (msg + 1)))
                (Topo.neighbors (Sim.topology sim) self)))
      (Topo.nodes topo);
    Sim.schedule sim ~delay:0.0 (fun () ->
        ignore (Sim.send sim ~src:"n0" ~dst:"n1" 0));
    let stats = Sim.run sim in
    (stats.Sim.messages_delivered, stats.Sim.final_time)
  in
  let a = run_once () and b = run_once () in
  checkb "identical outcomes" true (a = b)

let () =
  Alcotest.run "netsim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
          Alcotest.test_case "clear resets ties" `Quick
            test_queue_clear_resets_ties;
          queue_model_test;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "neighbors" `Quick test_topology_neighbors;
          Alcotest.test_case "random connected" `Quick
            test_topology_random_connected;
        ] );
      ( "sim",
        [
          Alcotest.test_case "delivery" `Quick test_sim_delivery;
          Alcotest.test_case "drop on down link" `Quick
            test_sim_drop_on_down_link;
          Alcotest.test_case "no link no delivery" `Quick
            test_sim_no_link_no_delivery;
          Alcotest.test_case "timer order" `Quick test_sim_timers_and_order;
          Alcotest.test_case "horizon" `Quick test_sim_horizon;
          Alcotest.test_case "event budget" `Quick test_sim_event_budget;
          Alcotest.test_case "failure injection" `Quick
            test_sim_failure_injection;
          Alcotest.test_case "lossy link" `Quick test_sim_lossy_link;
          Alcotest.test_case "loss determinism" `Quick
            test_sim_loss_deterministic;
          Alcotest.test_case "per-run stats" `Quick test_sim_per_run_stats;
          Alcotest.test_case "determinism" `Quick test_sim_determinism;
        ] );
    ]
