(* Integration tests: the full FVN pipeline of Figure 1.

   Each test exercises a chain of arcs end-to-end: NDlog programs are
   compiled to logic and verified (4-5), component designs are verified
   and translated to NDlog (1-3), programs execute centralized and
   distributed (7), and table invariants are model checked (6/8). *)

module Ast = Ndlog.Ast
module Programs = Ndlog.Programs
module Store = Ndlog.Store
module V = Ndlog.Value
module Pipeline = Fvn.Pipeline
module Props = Fvn.Props

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Arc 4-5: verify the path-vector protocol's properties. *)

let test_verify_path_vector () =
  let props =
    [
      Props.route_optimality ();
      Props.aggregate_membership ();
      Props.one_hop_paths ();
      Props.aggregate_functional ();
    ]
  in
  match Pipeline.verify_program (Programs.path_vector ()) props with
  | Error e -> Alcotest.fail e
  | Ok v ->
    checkb "all proved" true (Pipeline.proved v);
    checki "four results" 4 (List.length v.Pipeline.results);
    List.iter
      (fun r ->
        match r.Pipeline.verdict with
        | `Proved o ->
          checkb "kernel checked" true o.Logic.Prove.checked;
          checkb "fast (fraction of a second)" true (o.Logic.Prove.elapsed < 1.0)
        | `Failed m -> Alcotest.fail m)
      v.Pipeline.results

let test_verify_rejects_false_property () =
  (* Not every path is a best path: this conjecture must fail, and fail
     cleanly (no exception, no bogus proof). *)
  let bogus =
    Props.implication ~name:"everyPathIsBest"
      ~antecedent:("path", [ "S"; "D"; "P"; "C" ])
      ~consequent:("bestPath", [ "S"; "D"; "P"; "C" ])
      ()
  in
  match Pipeline.verify_program (Programs.path_vector ()) [ bogus ] with
  | Error e -> Alcotest.fail e
  | Ok v -> (
    checkb "not proved" false (Pipeline.proved v);
    match (List.hd v.Pipeline.results).Pipeline.verdict with
    | `Failed _ -> ()
    | `Proved _ -> Alcotest.fail "proved a false property")

let test_verify_bad_program_rejected () =
  let bad =
    match Ndlog.Parser.parse_program "p(@X,Y) :- q(@X)." with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  match Pipeline.verify_program bad [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe program accepted"

(* ------------------------------------------------------------------ *)
(* Arcs 1-3: generate NDlog from a verified component design. *)

let adder_model =
  let v x = Ast.Var x in
  Component.Model.composite "adder"
    [
      Component.Model.atomic ~name:"inc"
        ~inputs:[ Ast.atom "source" [ v "X" ] ]
        ~constraints:[ Ast.Assign ("Y", Ast.Binop (Ast.Add, v "X", Ast.cint 1)) ]
        ~output:(Ast.head "bumped" [ Ast.Plain (v "Y") ])
        ();
      Component.Model.atomic ~name:"double"
        ~inputs:[ Ast.atom "bumped" [ v "Y" ] ]
        ~constraints:[ Ast.Assign ("Z", Ast.Binop (Ast.Mul, v "Y", Ast.cint 2)) ]
        ~output:(Ast.head "result" [ Ast.Plain (v "Z") ])
        ();
    ]

let test_generate_verified_program () =
  (* Property: every result came from a bumped value. *)
  let prop =
    Props.implication ~name:"resultFromBumped"
      ~antecedent:("result", [ "Z" ])
      ~consequent:("result", [ "Z" ])
      ()
  in
  let facts = [ Ast.fact "source" [ V.Int 5 ] ] in
  match Pipeline.generate ~facts adder_model [ prop ] with
  | Error e -> Alcotest.fail e
  | Ok g ->
    checkb "verification passed" true (Pipeline.proved g.Pipeline.gen_verification);
    checki "two rules" 2 (List.length g.Pipeline.program.Ast.rules)

let test_full_pipeline () =
  let facts = [ Ast.fact "source" [ V.Int 5 ] ] in
  match Pipeline.full_pipeline ~facts adder_model [] with
  | Error e -> Alcotest.fail e
  | Ok fr -> (
    match fr.Pipeline.fr_execution with
    | Pipeline.Central o ->
      let results = Store.tuples "result" o.Ndlog.Eval.db in
      checki "one result" 1 (List.length results);
      (* (5+1)*2 *)
      checkb "value 12" true (V.equal (List.hd results).(0) (V.Int 12))
    | Pipeline.Distributed _ -> Alcotest.fail "expected central execution")

let test_generate_rejects_dangling_model () =
  let broken =
    Component.Model.atomic ~name:"t"
      ~inputs:[ Ast.atom "nowhere" [ Ast.Var "X" ] ]
      ~output:(Ast.head "out" [ Ast.Plain (Ast.Var "X") ])
      ()
  in
  match Pipeline.generate broken [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling model accepted"

(* ------------------------------------------------------------------ *)
(* Arc 7: execution modes agree. *)

let test_central_vs_distributed () =
  let program =
    Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4)
  in
  let central =
    match Pipeline.execute program with
    | Ok (Pipeline.Central o) -> o.Ndlog.Eval.db
    | Ok _ | Error _ -> Alcotest.fail "central execution failed"
  in
  match Pipeline.execute_distributed program with
  | Error e -> Alcotest.fail e
  | Ok (Pipeline.Distributed { global; report; _ }) ->
    checkb "quiesced" true report.Dist.Runtime.stats.Netsim.Sim.quiesced;
    List.iter
      (fun pred ->
        checkb (pred ^ " agrees") true
          (Store.Tset.equal
             (Store.relation pred central)
             (Store.relation pred global)))
      [ "path"; "bestPath"; "bestPathCost" ]
  | Ok (Pipeline.Central _) -> Alcotest.fail "expected distributed execution"

let test_execution_detects_divergence () =
  let program =
    Programs.with_links (Programs.distance_vector ()) (Programs.ring_links 3)
  in
  match Pipeline.execute ~max_rounds:30 program with
  | Ok (Pipeline.Central o) -> checkb "diverged" false o.Ndlog.Eval.converged
  | Ok _ | Error _ -> Alcotest.fail "unexpected"

(* ------------------------------------------------------------------ *)
(* Arc 6/8: model checking from the pipeline. *)

let test_model_check_invariant () =
  let program =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 3)
  in
  (* Invariant: all path tuples are simple paths (the f_inPath guard). *)
  let simple db =
    Store.tuples "path" db
    |> List.for_all (fun t ->
           let p = V.as_list t.(2) in
           List.length p = List.length (List.sort_uniq V.compare p))
  in
  match Pipeline.model_check ~max_states:5_000 program simple with
  | Ok stats -> checkb "states explored" true (stats.Mcheck.Explore.states > 0)
  | Error _ -> Alcotest.fail "invariant should hold"

let test_model_check_counterexample () =
  let program =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 3)
  in
  (* A deliberately false invariant: no multi-hop paths ever. *)
  let no_multi_hop db =
    Store.tuples "path" db
    |> List.for_all (fun t -> List.length (V.as_list t.(2)) <= 2)
  in
  match Pipeline.model_check ~max_states:5_000 program no_multi_hop with
  | Ok _ -> Alcotest.fail "expected violation"
  | Error v ->
    checkb "trace leads to violation" true
      (List.length v.Mcheck.Explore.trace >= 1)

(* State identity regressions: the checker's visited table must key
   states with [Store.equal]/[Store.hash], which ignore the store's
   mutable index cache and the internal tree shape — the structural
   defaults distinguished a cache-warm store from its cache-cold twin,
   duplicating visited states. *)
let test_explore_index_independence () =
  let program =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 3)
  in
  let explore () =
    Mcheck.Explore.explore ~max_states:5_000 (Mcheck.Ndlog_ts.system program)
  in
  let on = explore () in
  Ndlog.Eval.use_indexes := false;
  let off =
    Fun.protect ~finally:(fun () -> Ndlog.Eval.use_indexes := true) explore
  in
  checki "states independent of index cache" off.Mcheck.Explore.states
    on.Mcheck.Explore.states;
  checki "transitions independent of index cache" off.Mcheck.Explore.transitions
    on.Mcheck.Explore.transitions;
  checki "depth independent of index cache" off.Mcheck.Explore.max_depth
    on.Mcheck.Explore.max_depth;
  (* Directly: a store that materialized an index is the same state as
     its cache-cold twin built in another insertion order. *)
  let tup i = [| V.Int i |] in
  let rows = List.init 20 tup in
  let warm = Store.add_list "r" rows Store.empty in
  let cold = Store.add_list "r" (List.rev rows) Store.empty in
  ignore (Store.lookup "r" ~cols:[ 0 ] ~key:[ V.Int 3 ] warm);
  let tbl =
    Mcheck.Explore.Table.create ~equal:Store.equal ~hash:Store.hash ()
  in
  Mcheck.Explore.Table.add tbl warm 0;
  checkb "cache-cold twin is the same state" true
    (Mcheck.Explore.Table.mem tbl cold)

(* Interning independence: hash-consed tuples and flat index keys are a
   representation change, so exploration under the interned path and
   under the boxed oracle ([FVN_INTERNING=0]) must visit the same state
   space, and an interned store must be the same visited-table state as
   its boxed twin. *)
let test_explore_interning_independence () =
  let program =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 3)
  in
  let explore () =
    Mcheck.Explore.explore ~max_states:5_000 (Mcheck.Ndlog_ts.system program)
  in
  let saved = !Ndlog.Eval.use_interning in
  let under flag =
    Ndlog.Eval.use_interning := flag;
    Fun.protect ~finally:(fun () -> Ndlog.Eval.use_interning := saved) explore
  in
  let on = under true and off = under false in
  checki "states independent of interning" off.Mcheck.Explore.states
    on.Mcheck.Explore.states;
  checki "transitions independent of interning" off.Mcheck.Explore.transitions
    on.Mcheck.Explore.transitions;
  checki "depth independent of interning" off.Mcheck.Explore.max_depth
    on.Mcheck.Explore.max_depth;
  let rows = List.init 20 (fun i -> [| V.Addr ("n" ^ string_of_int i) |]) in
  let build () = Store.add_list "r" rows Store.empty in
  Ndlog.Eval.use_interning := true;
  let interned =
    Fun.protect ~finally:(fun () -> Ndlog.Eval.use_interning := saved) build
  in
  Ndlog.Eval.use_interning := false;
  let boxed =
    Fun.protect ~finally:(fun () -> Ndlog.Eval.use_interning := saved) build
  in
  ignore (Store.lookup "r" ~cols:[ 0 ] ~key:[ V.Addr "n3" ] interned);
  let tbl =
    Mcheck.Explore.Table.create ~equal:Store.equal ~hash:Store.hash ()
  in
  Mcheck.Explore.Table.add tbl interned 0;
  checkb "boxed twin is the same state" true
    (Mcheck.Explore.Table.mem tbl boxed)

(* Flat-representation independence: a store round-tripped through the
   id-native flat database ([Flat.of_store] / [Flat.to_store] — the
   path every id-mode runtime store takes) must be the same
   model-checker state as the store it came from, with warm flat
   indexes on either side. *)
let test_explore_flat_independence () =
  let module Flat = Ndlog.Flat in
  let rows =
    List.init 30 (fun i ->
        [| V.Addr ("n" ^ string_of_int (i mod 6)); V.Int (i mod 7) |])
  in
  let plain = Store.add_list "r" (List.rev rows) Store.empty in
  let fdb = Flat.of_store plain in
  (* Warm the flat side's secondary index, then materialize. *)
  ignore (Flat.lookup fdb "r" ~cols:[ 0 ] ~key:[| Ndlog.Intern.id (V.Addr "n3") |]);
  let warmed = Flat.to_store fdb in
  ignore (Store.lookup "r" ~cols:[ 0 ] ~key:[ V.Addr "n3" ] warmed);
  checkb "flat round-trip is Store.equal" true (Store.equal plain warmed);
  checki "flat round-trip hash" (Store.hash plain) (Store.hash warmed);
  checki "flat round-trip compare" 0 (Store.compare plain warmed);
  let tbl =
    Mcheck.Explore.Table.create ~equal:Store.equal ~hash:Store.hash ()
  in
  Mcheck.Explore.Table.add tbl warmed 0;
  checkb "plain twin is the same state" true
    (Mcheck.Explore.Table.mem tbl plain)

let test_explore_bucket_distribution () =
  (* 600 large states differing in one tuple: [Hashtbl.hash]'s
     depth/size truncation collapsed these into a handful of buckets
     (the table degraded to a linear scan); [Store.hash] folds every
     tuple, so the distribution stays sane. *)
  let base =
    Store.add_list "base"
      (List.init 50 (fun i -> [| V.Int (1000 + i); V.Int i |]))
      Store.empty
  in
  let states = List.init 600 (fun i -> Store.add "m" [| V.Int i |] base) in
  let tbl =
    Mcheck.Explore.Table.create ~equal:Store.equal ~hash:Store.hash ()
  in
  List.iteri (fun i s -> Mcheck.Explore.Table.add tbl s i) states;
  checki "all 600 states distinct" 600 (Mcheck.Explore.Table.size tbl);
  checkb "states spread over many buckets" true
    (Mcheck.Explore.Table.buckets tbl >= 300);
  checkb "no degenerate bucket" true (Mcheck.Explore.Table.max_bucket tbl <= 8);
  List.iteri
    (fun i s ->
      if not (Mcheck.Explore.Table.find tbl s = Some i) then
        Alcotest.failf "state %d not found under its own id" i)
    states

(* ------------------------------------------------------------------ *)
(* The BGP design verified through the pipeline (arcs 1-5 combined). *)

let test_bgp_model_through_pipeline () =
  let prop =
    Props.implication ~name:"importedHasPref"
      ~antecedent:("imported", [ "U"; "W"; "D"; "P"; "LP"; "C" ])
      ~consequent:("importPref", [ "U"; "W"; "LP" ])
      ()
  in
  let facts =
    Component.Bgp.config_facts Component.Bgp.disagree
    @ Component.Bgp.active_facts Component.Bgp.disagree.Component.Bgp.neighbors
    @ [
        Ast.fact ~loc:0 "ribIn"
          [
            V.Addr "as1"; V.Addr "as0"; V.Addr "d0";
            V.List [ V.Addr "as1"; V.Addr "as0" ]; V.Int 1; V.Int 1;
          ];
      ]
  in
  match Pipeline.generate ~facts Component.Bgp.model [ prop ] with
  | Error e -> Alcotest.fail e
  | Ok g ->
    checkb "verified" true (Pipeline.proved g.Pipeline.gen_verification);
    (* The generated program must execute. *)
    (match Pipeline.execute g.Pipeline.program with
    | Ok (Pipeline.Central o) ->
      checkb "executes" true o.Ndlog.Eval.converged
    | Ok _ | Error _ -> Alcotest.fail "execution failed")

(* Stated properties (concrete syntax) through the pipeline. *)
let test_stated_property () =
  let prop =
    Props.of_string_exn "statedMembership"
      "forall S D C. bestPathCost(S,D,C) => (exists P. path(S,D,P,C))"
  in
  match Pipeline.verify_program (Programs.path_vector ()) [ prop ] with
  | Ok v -> checkb "proved" true (Pipeline.proved v)
  | Error e -> Alcotest.fail e

let test_stated_property_parse_error () =
  match Props.of_string "broken" "forall . nope(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

(* The second protocol through the pipeline: link-state verification and
   both execution modes. *)
let test_link_state_pipeline () =
  let program =
    Programs.with_links (Programs.link_state ~max_hops:4)
      (Programs.ring_links 4)
  in
  (* flooding-integrity is an inductive property; here verify a
     first-order one: every computed cost is witnessed by a path bound *)
  let prop =
    Props.of_string_exn "lsCostWitness"
      "forall N D C. lsCost(N,D,C) => (exists H. lpath(N,D,C,H))"
  in
  (match Pipeline.verify_program program [ prop ] with
  | Ok v -> checkb "proved" true (Pipeline.proved v)
  | Error e -> Alcotest.fail e);
  let central =
    match Pipeline.execute program with
    | Ok (Pipeline.Central o) -> o.Ndlog.Eval.db
    | _ -> Alcotest.fail "central failed"
  in
  match Pipeline.execute_distributed program with
  | Ok (Pipeline.Distributed { global; _ }) ->
    checkb "lsCost agrees" true
      (Store.Tset.equal
         (Store.relation "lsCost" central)
         (Store.relation "lsCost" global))
  | _ -> Alcotest.fail "distributed failed"

let () =
  Alcotest.run "fvn"
    [
      ( "verify",
        [
          Alcotest.test_case "path-vector properties" `Quick
            test_verify_path_vector;
          Alcotest.test_case "false property rejected" `Quick
            test_verify_rejects_false_property;
          Alcotest.test_case "bad program rejected" `Quick
            test_verify_bad_program_rejected;
        ] );
      ( "generate",
        [
          Alcotest.test_case "verified generation" `Quick
            test_generate_verified_program;
          Alcotest.test_case "full pipeline" `Quick test_full_pipeline;
          Alcotest.test_case "dangling model rejected" `Quick
            test_generate_rejects_dangling_model;
        ] );
      ( "execute",
        [
          Alcotest.test_case "central = distributed" `Quick
            test_central_vs_distributed;
          Alcotest.test_case "divergence detected" `Quick
            test_execution_detects_divergence;
        ] );
      ( "model_check",
        [
          Alcotest.test_case "invariant holds" `Quick test_model_check_invariant;
          Alcotest.test_case "counterexample" `Quick
            test_model_check_counterexample;
          Alcotest.test_case "state identity vs interning" `Quick
            test_explore_interning_independence;
          Alcotest.test_case "state identity vs flat round-trip" `Quick
            test_explore_flat_independence;
          Alcotest.test_case "state identity vs index cache" `Quick
            test_explore_index_independence;
          Alcotest.test_case "bucket distribution" `Quick
            test_explore_bucket_distribution;
        ] );
      ( "stated",
        [
          Alcotest.test_case "concrete-syntax property" `Quick
            test_stated_property;
          Alcotest.test_case "parse error surfaces" `Quick
            test_stated_property_parse_error;
          Alcotest.test_case "link-state pipeline" `Quick
            test_link_state_pipeline;
        ] );
      ( "bgp",
        [
          Alcotest.test_case "design to execution" `Quick
            test_bgp_model_through_pipeline;
        ] );
    ]
