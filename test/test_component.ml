(* Tests for the component framework and the Figure-2 BGP model:
   translation to NDlog (arc 3), logical specifications (arc 2/4),
   verification of a generated component property, and the Disagree /
   Agree dynamics of Section 3.2.2. *)

module Ast = Ndlog.Ast
module Model = Component.Model
module Bgp = Component.Bgp
module V = Ndlog.Value

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* The paper's Figure-3 composite [tc]: t1, t2 feed t3. *)

let v x = Ast.Var x

let tc =
  let t1 =
    Model.atomic ~name:"t1"
      ~inputs:[ Ast.atom "t1_in" [ v "I1" ] ]
      ~constraints:[ Ast.Assign ("O1", Ast.Binop (Ast.Add, v "I1", Ast.cint 1)) ]
      ~output:(Ast.head "t1_out" [ Ast.Plain (v "O1") ])
      ()
  in
  let t2 =
    Model.atomic ~name:"t2"
      ~inputs:[ Ast.atom "t2_in" [ v "I2" ] ]
      ~constraints:[ Ast.Assign ("O2", Ast.Binop (Ast.Mul, v "I2", Ast.cint 2)) ]
      ~output:(Ast.head "t2_out" [ Ast.Plain (v "O2") ])
      ()
  in
  let t3 =
    Model.atomic ~name:"t3"
      ~inputs:[ Ast.atom "t1_out" [ v "O1" ]; Ast.atom "t2_out" [ v "O2" ] ]
      ~constraints:[ Ast.Assign ("O3", Ast.Binop (Ast.Add, v "O1", v "O2")) ]
      ~output:(Ast.head "t3_out" [ Ast.Plain (v "O3") ])
      ()
  in
  Model.composite "tc" [ t1; t2; t3 ]

let test_tc_translation () =
  let p = Model.to_ndlog tc in
  checki "three rules" 3 (List.length p.Ast.rules);
  (* Exactly the paper's shape: t3_out(O3) :- t1_out(O1), t2_out(O2), C3 *)
  let t3r =
    List.find (fun (r : Ast.rule) -> r.Ast.rule_name = Some "t3") p.Ast.rules
  in
  Alcotest.(check string) "t3 head" "t3_out" t3r.Ast.head.Ast.head_pred;
  checki "t3 reads two inputs" 2 (List.length (Ast.body_atoms t3r.Ast.body))

let test_tc_executes () =
  let facts =
    [ Ast.fact "t1_in" [ V.Int 10 ]; Ast.fact "t2_in" [ V.Int 3 ] ]
  in
  let p = Model.to_ndlog ~facts tc in
  let o = Ndlog.Eval.run_exn p in
  let out = Ndlog.Store.tuples "t3_out" o.Ndlog.Eval.db in
  checki "one output" 1 (List.length out);
  (* (10+1) + (3*2) = 17 *)
  checkb "value 17" true (V.equal (List.hd out).(0) (V.Int 17))

let test_tc_theory () =
  let thy = Model.to_theory tc in
  checkb "t3_out defined" true (Logic.Theory.definition_of "t3_out" thy <> None);
  checkb "t1_out defined" true (Logic.Theory.definition_of "t1_out" thy <> None)

let test_dangling_detection () =
  let lonely =
    Model.atomic ~name:"t"
      ~inputs:[ Ast.atom "missing" [ v "X" ] ]
      ~output:(Ast.head "out" [ Ast.Plain (v "X") ])
      ()
  in
  (match Model.check lonely with
  | Error (Model.Dangling_input ("t", "missing")) -> ()
  | _ -> Alcotest.fail "expected dangling input");
  (* seeding the input with facts makes it well-formed *)
  match Model.check ~facts:[ Ast.fact "missing" [ V.Int 1 ] ] lonely with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Model.pp_error e

(* ------------------------------------------------------------------ *)
(* The BGP model: static structure. *)

let test_bgp_program_analyzes () =
  let p = Bgp.program () in
  match Ndlog.Analysis.analyze p with
  | Ok info ->
    checkb "bestRoute derived" true
      (List.mem "bestRoute" info.Ndlog.Analysis.derived_preds);
    checkb "ribIn base" true (List.mem "ribIn" info.Ndlog.Analysis.base_preds)
  | Error e -> Alcotest.failf "analysis failed: %a" Ndlog.Analysis.pp_error e

let test_bgp_program_localized () =
  match Ndlog.Localize.check_localized (Bgp.program ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "not localized: %a" Ndlog.Localize.pp_error e

let test_bgp_model_checks () =
  (* activeAS / ribIn / origination / policies arrive as facts. *)
  let facts =
    Bgp.config_facts Bgp.disagree
    @ Bgp.active_facts Bgp.disagree.Bgp.neighbors
    @ [ Ast.fact ~loc:0 "ribIn"
          [ V.Addr "as1"; V.Addr "as0"; V.Addr "d0";
            V.List [ V.Addr "as1"; V.Addr "as0" ]; V.Int 1; V.Int 1 ] ]
  in
  match Model.check ~facts Bgp.model with
  | Ok () -> ()
  | Error e -> Alcotest.failf "model check failed: %a" Model.pp_error e

let test_bgp_theory_property () =
  (* Property-preserving translation: from the generated theory, prove
     that every imported route carries a configured import preference:
       imported(U,W,D,P,LP,C) => importPref(U,W,LP) *)
  let thy = Bgp.theory () in
  let t = Logic.Term.var in
  let goal =
    Logic.Formula.all_list
      [ "U"; "W"; "D"; "P"; "LP"; "C" ]
      (Logic.Formula.imp
         (Logic.Formula.atom "imported"
            [ t "U"; t "W"; t "D"; t "P"; t "LP"; t "C" ])
         (Logic.Formula.atom "importPref" [ t "U"; t "W"; t "LP" ]))
  in
  match Logic.Prove.prove thy goal with
  | Ok o -> checkb "kernel-checked" true o.Logic.Prove.checked
  | Error e -> Alcotest.fail e

let test_bgp_export_respects_deny () =
  (* exported(W,U,D,...) => not exportDeny is enforced operationally. *)
  let config =
    { Bgp.disagree with Bgp.export_deny = [ ("as0", "as1", "d0") ] }
  in
  let o = Bgp.run ~max_rounds:50 config ~schedule:Bgp.Pair_round_robin in
  (* as1 can now only learn d0 via as2 *)
  let as1_routes =
    List.filter (fun (u, _, _) -> u = "as1") o.Bgp.final_best
  in
  List.iter
    (fun (_, _, r) ->
      checkb "as1's path goes via as2" true
        (match r.Bgp.path with _ :: hop :: _ -> hop = "as2" | _ -> false))
    as1_routes

(* ------------------------------------------------------------------ *)
(* Dynamics: the Disagree experiment (E3's shape). *)

let test_disagree_sync_oscillates () =
  let o = Bgp.run ~max_rounds:60 Bgp.disagree ~schedule:Bgp.Sync in
  checkb "did not converge" false o.Bgp.converged;
  checkb "oscillated" true o.Bgp.oscillated;
  checkb "short cycle" true
    (match o.Bgp.cycle_length with Some n -> n <= 4 | None -> false)

let test_agree_sync_converges () =
  let o = Bgp.run ~max_rounds:60 Bgp.agree ~schedule:Bgp.Sync in
  checkb "converged" true o.Bgp.converged;
  checkb "no oscillation" false o.Bgp.oscillated;
  (* direct routes win *)
  List.iter
    (fun (u, _, r) ->
      if u <> "as0" then
        checkb (u ^ " routes direct") true (r.Bgp.path = [ u; "as0" ]))
    o.Bgp.final_best

let test_disagree_async_converges () =
  let o = Bgp.run ~max_rounds:400 Bgp.disagree ~schedule:Bgp.Pair_round_robin in
  checkb "converged" true o.Bgp.converged;
  (* lands in one of the two stable states: exactly one of as1/as2 got
     its preferred indirect route *)
  let route_of u =
    List.find_map
      (fun (x, _, r) -> if x = u then Some r.Bgp.path else None)
      o.Bgp.final_best
  in
  let p1 = Option.get (route_of "as1") and p2 = Option.get (route_of "as2") in
  checkb "one indirect, one direct" true
    ((p1 = [ "as1"; "as2"; "as0" ] && p2 = [ "as2"; "as0" ])
    || (p2 = [ "as2"; "as1"; "as0" ] && p1 = [ "as1"; "as0" ]))

let test_disagree_random_profiles () =
  let prof = Bgp.convergence_profile ~runs:10 ~max_rounds:600 Bgp.disagree in
  List.iter
    (fun (conv, _, _) -> checkb "random schedule converges" true conv)
    prof

let test_delayed_convergence () =
  (* The paper's observation: policy conflicts delay convergence.
     Under near-synchronous random schedules the conflicting
     configuration both converges later and flaps more. *)
  let mean f l =
    List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int (List.length l)
  in
  let rounds (_, r, _) = float_of_int r and flaps (_, _, f) = float_of_int f in
  let dis = Bgp.convergence_profile ~runs:10 ~max_rounds:600 Bgp.disagree in
  let agr = Bgp.convergence_profile ~runs:10 ~max_rounds:600 Bgp.agree in
  checkb "disagree is slower on average" true (mean rounds dis > mean rounds agr);
  checkb "disagree flaps more" true (mean flaps dis > mean flaps agr)

let test_chain_converges_with_correct_costs () =
  let o = Bgp.run ~max_rounds:400 (Bgp.chain 4) ~schedule:Bgp.Pair_round_robin in
  checkb "converged" true o.Bgp.converged;
  let cost_of u =
    List.find_map
      (fun (x, _, r) -> if x = u then Some r.Bgp.cost else None)
      o.Bgp.final_best
  in
  checkb "as3 three hops" true (cost_of "as3" = Some 3);
  checkb "as1 one hop" true (cost_of "as1" = Some 1)

let test_flap_accounting () =
  let o = Bgp.run ~max_rounds:60 Bgp.disagree ~schedule:Bgp.Sync in
  checkb "flaps counted" true (o.Bgp.flaps > 0);
  let o' = Bgp.run ~max_rounds:60 Bgp.agree ~schedule:Bgp.Sync in
  checkb "agree flaps fewer" true (o'.Bgp.flaps <= o.Bgp.flaps)

(* ------------------------------------------------------------------ *)
(* Formal classification of configurations via the SPP bridge. *)

let test_spp_classification () =
  (match Component.Bgp.classify Bgp.disagree ~dest:"d0" with
  | Ok (Spp.Solver.Multiple 2) -> ()
  | Ok _ -> Alcotest.fail "disagree should have exactly two stable states"
  | Error e -> Alcotest.fail e);
  (match Component.Bgp.classify Bgp.agree ~dest:"d0" with
  | Ok Spp.Solver.Unique -> ()
  | Ok _ -> Alcotest.fail "agree should be safe"
  | Error e -> Alcotest.fail e);
  (match Component.Bgp.classify (Bgp.chain 4) ~dest:"d0" with
  | Ok Spp.Solver.Unique -> ()
  | Ok _ -> Alcotest.fail "chains are safe"
  | Error e -> Alcotest.fail e);
  match Component.Bgp.classify Bgp.disagree ~dest:"nonexistent" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown destination must error"

let test_spp_bridge_structure () =
  match Component.Bgp.to_spp Bgp.disagree ~dest:"d0" with
  | Error e -> Alcotest.fail e
  | Ok (inst, names) ->
    checkb "origin is as0" true (names.(0) = "as0");
    (* node 1 (as1 or as2) prefers the 3-hop path over the direct one *)
    (match Spp.Instance.permitted inst 1 with
    | [ p1; p2 ] ->
      checki "preferred is indirect" 3 (List.length p1);
      checki "fallback is direct" 2 (List.length p2)
    | _ -> Alcotest.fail "expected two permitted paths")

let test_spp_dynamics_agree_with_bgp () =
  (* The SPP dynamics and the component BGP engine agree on the
     synchronous fate of each configuration. *)
  List.iter
    (fun (cfg, expect_osc) ->
      let bgp = Bgp.run ~max_rounds:60 cfg ~schedule:Bgp.Sync in
      checkb "bgp oscillation as expected" expect_osc bgp.Bgp.oscillated;
      match Component.Bgp.to_spp cfg ~dest:"d0" with
      | Error e -> Alcotest.fail e
      | Ok (inst, _) ->
        let spp =
          Spp.Solver.Spvp.run ~schedule:Spp.Solver.Spvp.Synchronous inst
        in
        checkb "spp oscillation matches" expect_osc spp.Spp.Solver.Spvp.oscillated)
    [ (Bgp.disagree, true); (Bgp.agree, false) ]

(* The randomized-schedule RNG guard (PR 9): the run loops construct
   their RNG at entry, and a draw without one must surface as the typed
   [Missing_schedule_rng] — naming the component and schedule — rather
   than [Option.get]'s anonymous [Invalid_argument]. *)
let test_schedule_rng_guard () =
  let st = Random.State.make [| 7 |] in
  checkb "present rng passes through" true
    (Spp.Solver.schedule_rng ~component:"test" ~schedule:"Random" (Some st)
    == st);
  (match
     Spp.Solver.schedule_rng ~component:"Component.Bgp.run"
       ~schedule:"Pair_random" None
   with
  | _ -> Alcotest.fail "expected Missing_schedule_rng"
  | exception
      Spp.Solver.Missing_schedule_rng { msr_component; msr_schedule } ->
    Alcotest.(check string) "component named" "Component.Bgp.run" msr_component;
    Alcotest.(check string) "schedule named" "Pair_random" msr_schedule);
  (* And the registered printer renders the context. *)
  match
    Spp.Solver.schedule_rng ~component:"Spp.Solver.Spvp.run" ~schedule:"Random"
      None
  with
  | _ -> Alcotest.fail "expected Missing_schedule_rng"
  | exception e ->
    let s = Printexc.to_string e in
    let contains ~affix s =
      let n = String.length affix and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
      n = 0 || go 0
    in
    checkb "printer names the run loop" true
      (contains ~affix:"Spp.Solver.Spvp.run" s)

let () =
  Alcotest.run "component"
    [
      ( "model",
        [
          Alcotest.test_case "tc translation" `Quick test_tc_translation;
          Alcotest.test_case "tc executes" `Quick test_tc_executes;
          Alcotest.test_case "tc theory" `Quick test_tc_theory;
          Alcotest.test_case "dangling inputs" `Quick test_dangling_detection;
        ] );
      ( "bgp_static",
        [
          Alcotest.test_case "program analyzes" `Quick
            test_bgp_program_analyzes;
          Alcotest.test_case "program localized" `Quick
            test_bgp_program_localized;
          Alcotest.test_case "model checks" `Quick test_bgp_model_checks;
          Alcotest.test_case "theory property" `Quick test_bgp_theory_property;
          Alcotest.test_case "export deny" `Quick test_bgp_export_respects_deny;
        ] );
      ( "bgp_dynamics",
        [
          Alcotest.test_case "disagree sync oscillates" `Quick
            test_disagree_sync_oscillates;
          Alcotest.test_case "agree sync converges" `Quick
            test_agree_sync_converges;
          Alcotest.test_case "disagree async converges" `Quick
            test_disagree_async_converges;
          Alcotest.test_case "random profiles" `Quick
            test_disagree_random_profiles;
          Alcotest.test_case "delayed convergence" `Quick
            test_delayed_convergence;
          Alcotest.test_case "chain costs" `Quick
            test_chain_converges_with_correct_costs;
          Alcotest.test_case "flap accounting" `Quick test_flap_accounting;
        ] );
      ( "spp_bridge",
        [
          Alcotest.test_case "classification" `Quick test_spp_classification;
          Alcotest.test_case "instance structure" `Quick
            test_spp_bridge_structure;
          Alcotest.test_case "dynamics agree" `Quick
            test_spp_dynamics_agree_with_bgp;
          Alcotest.test_case "schedule rng guard" `Quick
            test_schedule_rng_guard;
        ] );
    ]
