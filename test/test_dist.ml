(* Tests for the distributed NDlog runtime: distributed execution must
   agree with the centralized evaluator, soft state must expire, and the
   distance-vector state machine must count to infinity after a failure
   (Section 3.1's claim, reproduced by experiment E2). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval
module Programs = Ndlog.Programs
module Localize = Ndlog.Localize
module V = Ndlog.Value
module Topo = Netsim.Topology
module Runtime = Dist.Runtime
module Dv = Dist.Dv

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Build the simulator topology matching a set of link facts. *)
let topo_of_links links =
  let t = Topo.create () in
  List.iter
    (fun (f : Ast.fact) ->
      match f.Ast.fact_args with
      | [ s; d; c ] ->
        Topo.add_link ~cost:(V.as_int c) t (V.as_addr s) (V.as_addr d)
      | _ -> ())
    links;
  t

let localized p =
  match Localize.rewrite_program p with
  | Ok r -> r.Localize.program
  | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e

(* Run a program distributed and centralized; compare a relation. *)
let compare_dist_centralized ?(preds = [ "path"; "bestPath"; "bestPathCost" ])
    program links =
  let full = Programs.with_links program links in
  let central = Eval.run_exn full in
  let loc = localized full in
  let topo = topo_of_links links in
  let rt = Runtime.create topo loc in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  checkb "distributed run quiesced" true report.Runtime.stats.Netsim.Sim.quiesced;
  let dist_db = Runtime.global_store rt in
  List.iter
    (fun pred ->
      let a = Store.relation pred central.Eval.db in
      let b = Store.relation pred dist_db in
      if not (Store.Tset.equal a b) then
        Alcotest.failf "relation %s differs:@.central=%d tuples, dist=%d tuples"
          pred (Store.Tset.cardinal a) (Store.Tset.cardinal b))
    preds

let test_dist_line () =
  compare_dist_centralized (Programs.path_vector ()) (Programs.line_links 3)

let test_dist_ring () =
  compare_dist_centralized (Programs.path_vector ()) (Programs.ring_links 5)

let test_dist_asymmetric () =
  let links =
    [
      Programs.link_fact "n0" "n1" 10;
      Programs.link_fact "n1" "n0" 10;
      Programs.link_fact "n0" "n2" 1;
      Programs.link_fact "n2" "n0" 1;
      Programs.link_fact "n2" "n1" 2;
      Programs.link_fact "n1" "n2" 2;
    ]
  in
  compare_dist_centralized (Programs.path_vector ()) links

let test_dist_random () =
  List.iter
    (fun seed ->
      compare_dist_centralized ~preds:[ "reachable" ] (Programs.reachability ())
        (Programs.random_links ~seed ~extra:2 6))
    [ 1; 5; 9 ]

let test_dist_reachability_scale () =
  compare_dist_centralized ~preds:[ "reachable" ] (Programs.reachability ())
    (Programs.ring_links 12)

let test_dist_best_path_values () =
  (* Check specific routing results at their owning node. *)
  let links = Programs.line_links 4 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let topo = topo_of_links links in
  let rt = Runtime.create topo loc in
  Runtime.load_facts rt;
  ignore (Runtime.run rt);
  let n0 = Runtime.node_store rt "n0" in
  let best =
    Store.tuples "bestPathCost" n0
    |> List.find_opt (fun t ->
           V.equal t.(0) (V.Addr "n0") && V.equal t.(1) (V.Addr "n3"))
  in
  (match best with
  | Some t -> checki "n0->n3 = 3" 3 (V.as_int t.(2))
  | None -> Alcotest.fail "no bestPathCost at n0");
  (* bestPath tuples for n0 live at n0, not elsewhere *)
  let n1 = Runtime.node_store rt "n1" in
  checkb "n1 has no n0-rooted bestPath" true
    (Store.tuples "bestPath" n1
    |> List.for_all (fun t -> not (V.equal t.(0) (V.Addr "n0"))))

let test_dist_message_accounting () =
  let links = Programs.line_links 3 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let rt = Runtime.create (topo_of_links links) loc in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  let stats = report.Runtime.stats in
  checkb "messages flowed" true (stats.Netsim.Sim.messages_delivered > 0);
  checkb "inserts happened" true (report.Runtime.total_inserts > 0)

let test_dist_rejects_unlocalized () =
  let p =
    Programs.with_links (Programs.path_vector ()) (Programs.line_links 2)
  in
  (* path_vector's r2 spans two locations: must be rejected raw. *)
  match Runtime.create (topo_of_links p.Ast.facts) p with
  | exception Runtime.Not_localized _ -> ()
  | _ -> Alcotest.fail "expected Not_localized"

(* ------------------------------------------------------------------ *)
(* Soft state in the distributed runtime. *)

let test_dist_soft_state_expiry () =
  (* Heartbeats propagate, then expire when the source stops refreshing
     (no refresh loop is installed here). *)
  let links = Programs.line_links 2 in
  let p = Programs.with_links (Programs.heartbeat ~lifetime:5) links in
  let loc = localized p in
  let rt = Runtime.create (topo_of_links links) loc in
  Runtime.load_facts rt;
  ignore (Runtime.run rt ~until:2.0);
  let alive_at node =
    Store.cardinal "aliveNeighbor" (Runtime.node_store rt node)
  in
  checkb "alive early" true (alive_at "n1" > 0);
  ignore (Runtime.run rt ~until:60.0);
  checki "expired later" 0 (alive_at "n1")

(* ------------------------------------------------------------------ *)
(* Inbox batching: the batched and per-message runtimes must agree. *)

let prop_batch_inbox_equivalence =
  QCheck.Test.make
    ~name:
      "batched inbox = per-message (fixpoint, node stores, total_inserts)"
    ~count:18
    QCheck.(triple (int_range 0 3) (int_range 3 7) (int_range 0 3))
    (fun (which, n, extra) ->
      let links =
        match which with
        | 0 -> Programs.ring_links n
        | 1 -> Programs.grid_links (2 + (n mod 2))
        | 2 -> Programs.star_links n
        | _ -> Programs.random_links ~seed:((13 * n) + extra) ~extra n
      in
      let prog =
        match which with
        | 0 | 3 -> Programs.path_vector ()
        | 1 -> Programs.reachability ()
        | _ -> Programs.bounded_distance_vector ~max_hops:(n + 1)
      in
      let p = localized (Programs.with_links prog links) in
      let go ~batch_inbox =
        let rt = Runtime.create ~batch_inbox (topo_of_links links) p in
        Runtime.load_facts rt;
        let rep = Runtime.run rt in
        (rt, rep)
      in
      let rt_b, rep_b = go ~batch_inbox:true in
      let rt_p, rep_p = go ~batch_inbox:false in
      let nodes = Topo.nodes (topo_of_links links) in
      rep_b.Runtime.stats.Netsim.Sim.quiesced
      && rep_p.Runtime.stats.Netsim.Sim.quiesced
      && Store.equal (Runtime.global_store rt_b) (Runtime.global_store rt_p)
      && rep_b.Runtime.total_inserts = rep_p.Runtime.total_inserts
      && List.for_all
           (fun nm ->
             Store.equal (Runtime.node_store rt_b nm)
               (Runtime.node_store rt_p nm))
           nodes)

(* Two messages sent at the same instant over the same link land in one
   flush: the receiving strand runs once with a delta of two tuples
   (one group), where the per-message runtime runs it twice. *)
let test_same_instant_burst_groups () =
  let src =
    {|
materialize(t, infinity).
materialize(s, infinity).
materialize(u, infinity).

b1 s(@D,X) :- t(@S,X,D).
b2 u(@D,X) :- s(@D,X).
|}
  in
  let p = Programs.parse_exn src in
  let p =
    {
      p with
      Ast.facts =
        [
          Ast.fact ~loc:0 "t" [ V.Addr "n0"; V.Int 1; V.Addr "n1" ];
          Ast.fact ~loc:0 "t" [ V.Addr "n0"; V.Int 2; V.Addr "n1" ];
        ];
    }
  in
  let topo () =
    let topo = Topo.create () in
    Topo.add_duplex topo "n0" "n1";
    topo
  in
  let go ~batch_inbox =
    let rt = Runtime.create ~batch_inbox (topo ()) p in
    Runtime.load_facts rt;
    let rep = Runtime.run rt in
    (rt, rep)
  in
  let rt_b, rep_b = go ~batch_inbox:true in
  let rt_p, rep_p = go ~batch_inbox:false in
  (* Both modes compute u(n1,1), u(n1,2) at n1. *)
  checki "u derived at n1 (batched)" 2
    (Store.cardinal "u" (Runtime.node_store rt_b "n1"));
  checkb "same fixpoint" true
    (Store.equal (Runtime.global_store rt_b) (Runtime.global_store rt_p));
  let wb = rep_b.Runtime.wire_stats and wp = rep_p.Runtime.wire_stats in
  (* Batched: two singleton b1 activations at n0 plus ONE b2 flush at
     n1 covering both deliveries — 3 groups for 4 delta tuples. *)
  checki "batched delta tuples" 4 wb.Eval.delta_tuples;
  checki "batched groups" 3 wb.Eval.groups;
  checkb "groups strictly below delta count" true
    (wb.Eval.groups < wb.Eval.delta_tuples);
  (* Per-message: every activation is a singleton group. *)
  checki "per-message delta tuples" 4 wp.Eval.delta_tuples;
  checki "per-message groups" 4 wp.Eval.groups

(* The full message trace of a run is deterministic: two identically
   configured runtimes produce identical traces. *)
let test_trace_determinism () =
  let links = Programs.ring_links 5 in
  let p = localized (Programs.with_links (Programs.path_vector ()) links) in
  let go () =
    let rt = Runtime.create (topo_of_links links) p in
    Netsim.Sim.set_tracing (Runtime.simulator rt) true;
    Runtime.load_facts rt;
    ignore (Runtime.run rt);
    Netsim.Sim.trace (Runtime.simulator rt)
  in
  let t1 = go () in
  let t2 = go () in
  checkb "trace nonempty" true (t1 <> []);
  checkb "identical message traces" true (t1 = t2)

(* Whole-network iterations walk nodes in sorted name order, so the
   trace cannot depend on hash-table internals: runtimes built from
   permuted node-insertion orders behave identically. *)
let det_view_src =
  {|
materialize(obs, infinity).
materialize(noise, infinity).
materialize(best, infinity).
materialize(rep, 10).

v1 best(@S, D, min<C>) :- obs(@S, D, C).
v2 rep(@D, S, C) :- best(@S, D, C).
|}

let test_node_order_determinism () =
  let mk order =
    let topo = Topo.create () in
    List.iter (Topo.add_node topo) order;
    List.iter
      (fun (a, b) -> Topo.add_duplex topo a b)
      [ ("n0", "n1"); ("n1", "n2"); ("n2", "n0") ];
    let p = Programs.parse_exn det_view_src in
    let p =
      {
        p with
        Ast.facts =
          [
            Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 5 ];
            Ast.fact ~loc:0 "obs" [ V.Addr "n1"; V.Addr "n2"; V.Int 5 ];
            Ast.fact ~loc:0 "obs" [ V.Addr "n2"; V.Addr "n0"; V.Int 5 ];
            (* unlocated: exercises the broadcast path *)
            Ast.fact "noise" [ V.Int 0 ];
          ];
      }
    in
    let rt = Runtime.create topo p in
    Netsim.Sim.set_tracing (Runtime.simulator rt) true;
    Runtime.load_facts rt;
    ignore (Runtime.run rt ~until:3.0);
    (Netsim.Sim.trace (Runtime.simulator rt), Runtime.global_store rt)
  in
  let t1, db1 = mk [ "n0"; "n1"; "n2" ] in
  let t2, db2 = mk [ "n2"; "n0"; "n1" ] in
  let t3, db3 = mk [ "n1"; "n2"; "n0" ] in
  checkb "trace nonempty" true (t1 <> []);
  checkb "permuted insertion: same trace (1=2)" true (t1 = t2);
  checkb "permuted insertion: same trace (1=3)" true (t1 = t3);
  checkb "same stores" true (Store.equal db1 db2 && Store.equal db1 db3)

(* ------------------------------------------------------------------ *)
(* View shipping: diff-only, with soft leases renewed while derived. *)

let ship_view_src =
  {|
materialize(link, infinity).
materialize(obs, 3).
materialize(noise, infinity).
materialize(best, infinity).
materialize(rep, 10).

v1 best(@S, D, min<C>) :- obs(@S, D, C).
v2 rep(@D, S, C) :- best(@S, D, C).
|}

let test_view_shipping_diff_and_expiry () =
  let links = Programs.both "n0" "n1" 1 in
  let p = Programs.with_links (Programs.parse_exn ship_view_src) links in
  let p =
    {
      p with
      Ast.facts =
        p.Ast.facts
        @ [ Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 7 ] ];
    }
  in
  let rt = Runtime.create (topo_of_links links) p in
  Runtime.load_facts rt;
  let r1 = Runtime.run rt ~until:2.0 in
  (* The soft remote view tuple arrived and is held at n1.  (The old
     runtime wiped received view tuples on the receiver's next refresh
     and re-shipped them from the source forever.) *)
  checki "rep shipped to n1" 1
    (Store.cardinal "rep" (Runtime.node_store rt "n1"));
  checkb "initial run shipped" true (r1.Runtime.stats.Netsim.Sim.messages_sent > 0);
  (* Repeated refreshes (each insertion schedules one) must not re-ship
     the already-shipped view tuple: the follow-up run windows see no
     messages at all (run stats are per-run as of PR 9). *)
  Runtime.insert rt "n0" "noise" [| V.Int 1 |];
  ignore (Runtime.run rt ~until:2.2);
  Runtime.insert rt "n0" "noise" [| V.Int 2 |];
  Runtime.insert rt "n1" "noise" [| V.Int 3 |];
  let r2 = Runtime.run rt ~until:2.4 in
  checki "refreshes do not re-ship" 0 r2.Runtime.stats.Netsim.Sim.messages_sent;
  (* Once the source's support (obs, lifetime 3) expires, the source
     stops deriving rep, renewals stop, and n1's lease lapses: the soft
     remote view tuple actually expires. *)
  let r3 = Runtime.run rt ~until:60.0 in
  checkb "quiesced" true r3.Runtime.stats.Netsim.Sim.quiesced;
  checki "best withdrawn at n0" 0
    (Store.cardinal "best" (Runtime.node_store rt "n0"));
  checki "remote soft view expired at n1" 0
    (Store.cardinal "rep" (Runtime.node_store rt "n1"));
  checki "no shipping storm" 0 r3.Runtime.stats.Netsim.Sim.messages_sent

(* ------------------------------------------------------------------ *)
(* The remote-view-deletion check. *)

let soft_dep_src =
  {|
materialize(link, infinity).
materialize(obs, 5).
materialize(cnt, infinity).
materialize(rep, infinity).

c1 cnt(@S, D, min<C>) :- obs(@S, D, C).
c2 rep(@D, S, C) :- cnt(@S, D, C).
|}

let neg_dep_src =
  {|
materialize(link, infinity).
materialize(flag, infinity).
materialize(m, infinity).
materialize(warn, infinity).

g1 m(@S, min<C>) :- link(@S, D, C).
g2 warn(@D, S) :- m(@S, C), link(@S, D, C2), !flag(@S, D).
|}

let test_remote_view_check_rejects () =
  (* Hard view head shipped remotely over soft support: rejected. *)
  (match
     Runtime.create
       (topo_of_links (Programs.both "n0" "n1" 1))
       (Programs.parse_exn soft_dep_src)
   with
  | exception Runtime.Remote_view_deletion e ->
    checkb "soft cause names obs" true
      (match e.Runtime.rv_cause with
      | Runtime.Soft_dependency "obs" -> true
      | _ -> false);
    checkb "names the view pred" true (e.Runtime.rv_pred = "rep")
  | _ -> Alcotest.fail "expected Remote_view_deletion (soft support)");
  (* Hard view head shipped remotely with negation in support. *)
  match
    Runtime.create
      (topo_of_links (Programs.both "n0" "n1" 1))
      (Programs.parse_exn neg_dep_src)
  with
  | exception Runtime.Remote_view_deletion e ->
    checkb "negation cause" true
      (match e.Runtime.rv_cause with
      | Runtime.Negation_dependency _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected Remote_view_deletion (negation)"

let test_remote_view_check_accepts_canonical () =
  let links = Programs.ring_links 4 in
  List.iter
    (fun prog ->
      let p = localized (Programs.with_links prog links) in
      ignore (Runtime.create (topo_of_links links) p))
    [
      Programs.path_vector ();
      Programs.distance_vector ();
      Programs.bounded_distance_vector ~max_hops:4;
      Programs.reachability ();
      Programs.link_state ~max_hops:4;
      Programs.heartbeat ~lifetime:5;
    ];
  (* Soft view heads shipped remotely are fine: lease expiry is the
     remote deletion mechanism. *)
  ignore
    (Runtime.create
       (topo_of_links (Programs.both "n0" "n1" 1))
       (Programs.parse_exn ship_view_src))

(* ------------------------------------------------------------------ *)
(* Incremental view refresh: the dirty-predicate tracking path must be
   observationally identical to the from-scratch oracle, and must
   actually skip work. *)

(* Differential property: over random localized view programs ×
   topologies × refresh/expiry interleavings, the incremental and
   from-scratch runtimes produce bit-identical per-node stores, global
   fixpoints, message traces, and lease tables.  The generator is pure
   ints, so every failure is replayable from the printed seed. *)
let prop_incremental_equivalence =
  QCheck.Test.make
    ~name:
      "incremental = from-scratch refresh (stores, traces, leases)"
    ~count:15
    QCheck.(
      quad (int_range 0 2) (int_range 0 2) (int_range 3 6) (int_range 0 4))
    (fun (prog_i, topo_i, n, extra) ->
      let links =
        match topo_i with
        | 0 -> Programs.ring_links n
        | 1 -> Programs.grid_links (2 + (n mod 2))
        | _ -> Programs.star_links n
      in
      let endpoints =
        List.filter_map
          (fun (f : Ast.fact) ->
            match f.Ast.fact_args with
            | [ s; d; _ ] -> Some (V.as_addr s, V.as_addr d)
            | _ -> None)
          links
      in
      (* A deterministic slice of the links drives the staged
         mid-run insertions (new costs / refreshed observations). *)
      let staged =
        List.filteri (fun i _ -> i mod 3 = extra mod 3) endpoints
      in
      let soft = prog_i = 2 in
      let p =
        match prog_i with
        | 0 ->
          localized (Programs.with_links (Programs.path_vector ()) links)
        | 1 ->
          localized
            (Programs.with_links
               (Programs.bounded_distance_vector ~max_hops:(n + 1))
               links)
        | _ ->
          (* Soft support under a shipped soft view: obs expires, best
             is withdrawn, rep's remote lease lapses. *)
          let p = Programs.with_links (Programs.parse_exn ship_view_src) links in
          {
            p with
            Ast.facts =
              p.Ast.facts
              @ List.map
                  (fun (s, d) ->
                    Ast.fact ~loc:0 "obs" [ V.Addr s; V.Addr d; V.Int 7 ])
                  staged;
          }
      in
      let go ~incremental_views =
        let rt = Runtime.create ~incremental_views (topo_of_links links) p in
        Netsim.Sim.set_tracing (Runtime.simulator rt) true;
        Runtime.load_facts rt;
        ignore (Runtime.run rt ~until:1.0);
        (* Interleave insertions with partial runs so refreshes land
           between (and during) lease windows. *)
        List.iteri
          (fun i (s, d) ->
            if soft then
              Runtime.insert rt s "obs" [| V.Addr s; V.Addr d; V.Int (9 + i) |]
            else
              Runtime.insert rt s "link" [| V.Addr s; V.Addr d; V.Int (2 + i) |];
            ignore (Runtime.run rt ~until:(1.5 +. (0.5 *. float_of_int i))))
          staged;
        let rep = Runtime.run rt ~until:80.0 in
        (rt, rep)
      in
      let rt_i, rep_i = go ~incremental_views:true in
      let rt_s, rep_s = go ~incremental_views:false in
      let nodes = Topo.nodes (topo_of_links links) in
      rep_i.Runtime.stats.Netsim.Sim.quiesced
      && rep_s.Runtime.stats.Netsim.Sim.quiesced
      && Store.equal (Runtime.global_store rt_i) (Runtime.global_store rt_s)
      && rep_i.Runtime.total_inserts = rep_s.Runtime.total_inserts
      && Netsim.Sim.trace (Runtime.simulator rt_i)
         = Netsim.Sim.trace (Runtime.simulator rt_s)
      && List.for_all
           (fun nm ->
             Store.equal (Runtime.node_store rt_i nm)
               (Runtime.node_store rt_s nm)
             && Runtime.node_leases rt_i nm = Runtime.node_leases rt_s nm)
           nodes)

(* Differential property for the interned representation: over the same
   random programs × topologies × interleavings as the refresh property,
   a runtime on the interned path and one on the boxed oracle path
   ([FVN_INTERNING=0]) produce bit-identical per-node stores, global
   fixpoints, message traces, lease tables, and evaluator statistics —
   interning is a representation change with no observable behavior. *)
let prop_interned_equivalence =
  QCheck.Test.make
    ~name:"interned = boxed runtime (stores, traces, leases, stats)"
    ~count:10
    QCheck.(
      quad (int_range 0 2) (int_range 0 2) (int_range 3 6) (int_range 0 4))
    (fun (prog_i, topo_i, n, extra) ->
      let links =
        match topo_i with
        | 0 -> Programs.ring_links n
        | 1 -> Programs.grid_links (2 + (n mod 2))
        | _ -> Programs.star_links n
      in
      let endpoints =
        List.filter_map
          (fun (f : Ast.fact) ->
            match f.Ast.fact_args with
            | [ s; d; _ ] -> Some (V.as_addr s, V.as_addr d)
            | _ -> None)
          links
      in
      let staged =
        List.filteri (fun i _ -> i mod 3 = extra mod 3) endpoints
      in
      let soft = prog_i = 2 in
      let p =
        match prog_i with
        | 0 ->
          localized (Programs.with_links (Programs.path_vector ()) links)
        | 1 ->
          localized
            (Programs.with_links
               (Programs.bounded_distance_vector ~max_hops:(n + 1))
               links)
        | _ ->
          let p = Programs.with_links (Programs.parse_exn ship_view_src) links in
          {
            p with
            Ast.facts =
              p.Ast.facts
              @ List.map
                  (fun (s, d) ->
                    Ast.fact ~loc:0 "obs" [ V.Addr s; V.Addr d; V.Int 7 ])
                  staged;
          }
      in
      let go interning =
        let saved = !Eval.use_interning in
        Eval.use_interning := interning;
        Fun.protect
          ~finally:(fun () -> Eval.use_interning := saved)
          (fun () ->
            let rt = Runtime.create (topo_of_links links) p in
            Netsim.Sim.set_tracing (Runtime.simulator rt) true;
            Runtime.load_facts rt;
            ignore (Runtime.run rt ~until:1.0);
            List.iteri
              (fun i (s, d) ->
                if soft then
                  Runtime.insert rt s "obs"
                    [| V.Addr s; V.Addr d; V.Int (9 + i) |]
                else
                  Runtime.insert rt s "link"
                    [| V.Addr s; V.Addr d; V.Int (2 + i) |];
                ignore (Runtime.run rt ~until:(1.5 +. (0.5 *. float_of_int i))))
              staged;
            let rep = Runtime.run rt ~until:80.0 in
            (rt, rep))
      in
      let rt_i, rep_i = go true in
      let rt_b, rep_b = go false in
      let nodes = Topo.nodes (topo_of_links links) in
      rep_i.Runtime.stats.Netsim.Sim.quiesced
      && rep_b.Runtime.stats.Netsim.Sim.quiesced
      && Store.equal (Runtime.global_store rt_i) (Runtime.global_store rt_b)
      && rep_i.Runtime.total_inserts = rep_b.Runtime.total_inserts
      && rep_i.Runtime.eval_stats = rep_b.Runtime.eval_stats
      && rep_i.Runtime.wire_stats = rep_b.Runtime.wire_stats
      && rep_i.Runtime.view_stats = rep_b.Runtime.view_stats
      && Netsim.Sim.trace (Runtime.simulator rt_i)
         = Netsim.Sim.trace (Runtime.simulator rt_b)
      && List.for_all
           (fun nm ->
             Store.equal (Runtime.node_store rt_i nm)
               (Runtime.node_store rt_b nm)
             && Runtime.node_leases rt_i nm = Runtime.node_leases rt_b nm)
           nodes)

(* Differential property for id-native evaluation: over the same random
   programs × topologies × interleavings, a runtime on the flat id-tuple
   path ([~tuple_ids:true], the default) and one on the boxed oracle
   path produce bit-identical per-node stores, global fixpoints, message
   traces, lease tables, and evaluator statistics — the flat
   representation is a storage/join change with no observable
   behavior. *)
let prop_tuple_ids_equivalence =
  QCheck.Test.make
    ~name:"id-native = boxed runtime (stores, traces, leases, stats)"
    ~count:10
    QCheck.(
      quad (int_range 0 2) (int_range 0 2) (int_range 3 6) (int_range 0 4))
    (fun (prog_i, topo_i, n, extra) ->
      let links =
        match topo_i with
        | 0 -> Programs.ring_links n
        | 1 -> Programs.grid_links (2 + (n mod 2))
        | _ -> Programs.star_links n
      in
      let endpoints =
        List.filter_map
          (fun (f : Ast.fact) ->
            match f.Ast.fact_args with
            | [ s; d; _ ] -> Some (V.as_addr s, V.as_addr d)
            | _ -> None)
          links
      in
      let staged =
        List.filteri (fun i _ -> i mod 3 = extra mod 3) endpoints
      in
      let soft = prog_i = 2 in
      let p =
        match prog_i with
        | 0 ->
          localized (Programs.with_links (Programs.path_vector ()) links)
        | 1 ->
          localized
            (Programs.with_links
               (Programs.bounded_distance_vector ~max_hops:(n + 1))
               links)
        | _ ->
          let p = Programs.with_links (Programs.parse_exn ship_view_src) links in
          {
            p with
            Ast.facts =
              p.Ast.facts
              @ List.map
                  (fun (s, d) ->
                    Ast.fact ~loc:0 "obs" [ V.Addr s; V.Addr d; V.Int 7 ])
                  staged;
          }
      in
      let go tuple_ids =
        let rt = Runtime.create ~tuple_ids (topo_of_links links) p in
        Netsim.Sim.set_tracing (Runtime.simulator rt) true;
        Runtime.load_facts rt;
        ignore (Runtime.run rt ~until:1.0);
        List.iteri
          (fun i (s, d) ->
            if soft then
              Runtime.insert rt s "obs" [| V.Addr s; V.Addr d; V.Int (9 + i) |]
            else
              Runtime.insert rt s "link" [| V.Addr s; V.Addr d; V.Int (2 + i) |];
            ignore (Runtime.run rt ~until:(1.5 +. (0.5 *. float_of_int i))))
          staged;
        let rep = Runtime.run rt ~until:80.0 in
        (rt, rep)
      in
      let rt_f, rep_f = go true in
      let rt_b, rep_b = go false in
      let nodes = Topo.nodes (topo_of_links links) in
      Runtime.tuple_ids rt_f
      && (not (Runtime.tuple_ids rt_b))
      && rep_f.Runtime.stats.Netsim.Sim.quiesced
      && rep_b.Runtime.stats.Netsim.Sim.quiesced
      && Store.equal (Runtime.global_store rt_f) (Runtime.global_store rt_b)
      && rep_f.Runtime.total_inserts = rep_b.Runtime.total_inserts
      && rep_f.Runtime.eval_stats = rep_b.Runtime.eval_stats
      && rep_f.Runtime.wire_stats = rep_b.Runtime.wire_stats
      && rep_f.Runtime.view_stats = rep_b.Runtime.view_stats
      && Netsim.Sim.trace (Runtime.simulator rt_f)
         = Netsim.Sim.trace (Runtime.simulator rt_b)
      && List.for_all
           (fun nm ->
             Store.equal (Runtime.node_store rt_f nm)
               (Runtime.node_store rt_b nm)
             && Runtime.node_leases rt_f nm = Runtime.node_leases rt_b nm)
           nodes)

(* A view program whose support splits cleanly: [best]/[seen] depend on
   [obs] only, so a [noise] insertion must touch no view stratum. *)
let split_view_src =
  {|
materialize(obs, infinity).
materialize(noise, infinity).
materialize(best, infinity).
materialize(seen, infinity).

v1 best(@S, D, min<C>) :- obs(@S, D, C).
v2 seen(@S, D) :- best(@S, D, C).
|}

let split_view_runtime () =
  let topo = Topo.create () in
  Topo.add_duplex topo "n0" "n1";
  let p = Programs.parse_exn split_view_src in
  let p =
    {
      p with
      Ast.facts =
        [
          Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 5 ];
          Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 3 ];
        ];
    }
  in
  let rt = Runtime.create ~incremental_views:true topo p in
  Runtime.load_facts rt;
  rt

(* Dirty-set lifecycle: an insertion marks exactly its base predicate,
   a refresh clears the mark, and view-pred arrivals are never
   marked. *)
let test_dirty_marks_and_clears () =
  let rt = split_view_runtime () in
  ignore (Runtime.run rt);
  Alcotest.(check (list string))
    "refresh cleared the dirty set" [] (Runtime.dirty_preds rt "n0");
  Runtime.insert rt "n0" "obs" [| V.Addr "n0"; V.Addr "n1"; V.Int 9 |];
  Alcotest.(check (list string))
    "insertion marked exactly obs" [ "obs" ]
    (Runtime.dirty_preds rt "n0");
  Alcotest.(check (list string))
    "other nodes untouched" [] (Runtime.dirty_preds rt "n1");
  ignore (Runtime.run rt);
  Alcotest.(check (list string))
    "refresh cleared it again" [] (Runtime.dirty_preds rt "n0")

(* Expiry sweeps mark the predicates whose tuples actually lapsed. *)
let test_dirty_marks_expiry () =
  let topo = Topo.create () in
  Topo.add_duplex topo "n0" "n1";
  let p = Programs.parse_exn ship_view_src in
  let p =
    {
      p with
      Ast.facts = [ Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 7 ] ];
    }
  in
  let rt = Runtime.create ~incremental_views:true topo p in
  Runtime.load_facts rt;
  ignore (Runtime.run rt ~until:1.0);
  checkb "converged with empty dirty set" true
    (Runtime.dirty_preds rt "n0" = []);
  (* Step the simulator event by event: the first re-dirtying of n0 is
     the expiry sweep dropping obs (lifetime 3), before the refresh it
     schedules has run. *)
  let sim = Runtime.simulator rt in
  let steps = ref 0 in
  while
    Runtime.dirty_preds rt "n0" = [] && !steps < 10_000 && Netsim.Sim.step sim
  do
    incr steps
  done;
  Alcotest.(check (list string))
    "sweep marked exactly the expired pred" [ "obs" ]
    (Runtime.dirty_preds rt "n0");
  ignore (Runtime.run rt ~until:60.0);
  Alcotest.(check (list string))
    "refresh cleared it" [] (Runtime.dirty_preds rt "n0");
  checki "support gone: view withdrawn" 0
    (Store.cardinal "best" (Runtime.node_store rt "n0"))

(* An inbox flush marks exactly the predicates it delivered. *)
let test_dirty_marks_flush () =
  let src =
    {|
materialize(t, infinity).
materialize(s, infinity).
materialize(agg, infinity).

b1 s(@D,X) :- t(@S,X,D).
v1 agg(@D, min<X>) :- s(@D,X).
|}
  in
  let p = Programs.parse_exn src in
  let p =
    {
      p with
      Ast.facts = [ Ast.fact ~loc:0 "t" [ V.Addr "n0"; V.Int 1; V.Addr "n1" ] ];
    }
  in
  let topo = Topo.create () in
  Topo.add_duplex topo "n0" "n1";
  let rt = Runtime.create ~incremental_views:true topo p in
  Runtime.load_facts rt;
  let sim = Runtime.simulator rt in
  let steps = ref 0 in
  while
    Runtime.dirty_preds rt "n1" = [] && !steps < 10_000 && Netsim.Sim.step sim
  do
    incr steps
  done;
  Alcotest.(check (list string))
    "flush marked exactly the delivered pred" [ "s" ]
    (Runtime.dirty_preds rt "n1");
  ignore (Runtime.run rt);
  checki "delivered tuple derived the view" 1
    (Store.cardinal "agg" (Runtime.node_store rt "n1"))

(* An untouched stratum costs zero evaluation work: a [noise] insertion
   outside every view's support refreshes with all strata skipped and
   nothing enumerated. *)
let test_untouched_stratum_zero_work () =
  let rt = split_view_runtime () in
  ignore (Runtime.run rt);
  Runtime.insert rt "n0" "noise" [| V.Int 1 |];
  let rep = Runtime.run rt in
  let vs = rep.Runtime.view_stats in
  checkb "strata were skipped" true (vs.Eval.strata_skipped > 0);
  checki "no fallbacks" 0 vs.Eval.refresh_fallbacks;
  checki "zero tuples enumerated by refresh" 0 vs.Eval.enumerated;
  checki "zero index probes by refresh" 0 vs.Eval.index_hits;
  (* A support insertion, by contrast, recomputes the aggregate stratum
     (fallback) and seeds the plain one. *)
  Runtime.insert rt "n0" "obs" [| V.Addr "n0"; V.Addr "n1"; V.Int 1 |];
  let rep2 = Runtime.run rt in
  let vs2 = rep2.Runtime.view_stats in
  checkb "aggregate stratum fell back" true (vs2.Eval.refresh_fallbacks > 0);
  let n0 = Runtime.node_store rt "n0" in
  checkb "new minimum took over" true
    (Store.tuples "best" n0
    |> List.exists (fun t -> V.equal t.(2) (V.Int 1)));
  checki "seen maintained through the seeded stratum" 1
    (Store.cardinal "seen" n0)

(* The ship paths guard tuple-location resolution with a typed internal
   error instead of a bare [Option.get]; for well-formed programs the
   branch is unreachable — location-less view tuples are classified
   local and never shipped. *)
let test_missing_tuple_location_unreachable () =
  let src =
    {|
materialize(obs, infinity).
materialize(best, infinity).

v1 best(S, D, min<C>) :- obs(@S, D, C).
|}
  in
  let p = Programs.parse_exn src in
  let p =
    {
      p with
      Ast.facts =
        [
          Ast.fact ~loc:0 "obs" [ V.Addr "n0"; V.Addr "n1"; V.Int 4 ];
          Ast.fact ~loc:0 "obs" [ V.Addr "n1"; V.Addr "n0"; V.Int 6 ];
        ];
    }
  in
  let topo = Topo.create () in
  Topo.add_duplex topo "n0" "n1";
  let rt = Runtime.create topo p in
  Runtime.load_facts rt;
  (* The unlocated view head refreshes and ships nothing — no
     Missing_tuple_location escapes. *)
  let rep = Runtime.run rt in
  checkb "quiesced without internal error" true
    rep.Runtime.stats.Netsim.Sim.quiesced;
  checki "unlocated view stays local" 1
    (Store.cardinal "best" (Runtime.node_store rt "n0"));
  (* The error itself names the predicate and tuple. *)
  let msg =
    Printexc.to_string
      (Runtime.Missing_tuple_location
         { mtl_pred = "best"; mtl_tuple = [| V.Addr "n0"; V.Int 3 |] })
  in
  checkb "message names the predicate" true
    (contains ~affix:"best" msg);
  checkb "message names the tuple" true
    (contains ~affix:"n0" msg)

(* Remote_view_deletion: printable, and the accept/reject table over
   (head softness × support kind) is exactly as documented. *)
let test_remote_view_printer_and_table () =
  (* Printer: both causes render the predicate chain. *)
  let soft_msg =
    Fmt.str "%a" Runtime.pp_remote_view_error
      { Runtime.rv_pred = "rep"; rv_rule = "c2"; rv_cause = Runtime.Soft_dependency "obs" }
  in
  checkb "soft message names rule, pred, cause" true
    (contains ~affix:"c2" soft_msg
    && contains ~affix:"rep" soft_msg
    && contains ~affix:"obs" soft_msg
    && contains ~affix:"expires" soft_msg);
  let neg_msg =
    Fmt.str "%a" Runtime.pp_remote_view_error
      {
        Runtime.rv_pred = "warn";
        rv_rule = "g2";
        rv_cause = Runtime.Negation_dependency "warn";
      }
  in
  checkb "negation message names rule and flip" true
    (contains ~affix:"g2" neg_msg
    && contains ~affix:"negation" neg_msg);
  (* Accept/reject table.  Rejections (hard head over shrinkable
     support) are covered by [test_remote_view_check_rejects]; the
     accepting rows: *)
  let topo () = topo_of_links (Programs.both "n0" "n1" 1) in
  let accepts src =
    match Runtime.create (topo ()) (Programs.parse_exn src) with
    | _ -> true
    | exception Runtime.Remote_view_deletion _ -> false
  in
  (* soft head × soft support: lease expiry deletes remote copies. *)
  checkb "soft head / soft support accepted" true (accepts ship_view_src);
  (* soft head × negation support: same mechanism covers flips. *)
  checkb "soft head / negation support accepted" true
    (accepts
       {|
materialize(link, infinity).
materialize(flag, infinity).
materialize(m, infinity).
materialize(warn, 10).

g1 m(@S, min<C>) :- link(@S, D, C).
g2 warn(@D, S) :- m(@S, C), link(@S, D, C2), !flag(@S, D).
|});
  (* hard head × hard monotone support: stale-view caveat, not a
     deletion — accepted. *)
  checkb "hard head / hard support accepted" true
    (accepts
       {|
materialize(link, infinity).
materialize(obs, infinity).
materialize(cnt, infinity).
materialize(rep, infinity).

c1 cnt(@S, D, min<C>) :- obs(@S, D, C).
c2 rep(@D, S, C) :- cnt(@S, D, C).
|});
  (* hard head × soft support: rejected (the one deletion would need). *)
  checkb "hard head / soft support rejected" true
    (not (accepts soft_dep_src));
  checkb "hard head / negation support rejected" true
    (not (accepts neg_dep_src))

(* ------------------------------------------------------------------ *)
(* Distance-vector protocol: convergence and count-to-infinity. *)

let test_dv_converges () =
  let topo = Topo.line 3 in
  let dv = Dv.create topo in
  let report = Dv.run dv in
  checkb "quiesced" true report.Dv.stats.Netsim.Sim.quiesced;
  checkb "no infinity" false report.Dv.counted_to_infinity;
  checkb "n0 reaches n2 at cost 2" true (Dv.route_cost dv "n0" "n2" = Some 2);
  checkb "n2 reaches n0 at cost 2" true (Dv.route_cost dv "n2" "n0" = Some 2)

let test_dv_ring_shortest () =
  let topo = Topo.ring 6 in
  let dv = Dv.create topo in
  ignore (Dv.run dv);
  checkb "opposite nodes cost 3" true (Dv.route_cost dv "n0" "n3" = Some 3);
  checkb "neighbors cost 1" true (Dv.route_cost dv "n0" "n1" = Some 1)

let test_dv_count_to_infinity () =
  (* Line n0 - n1 - n2; fail n0<->n1 after convergence.  n2's stale
     route to n0 bounces with n1 until the infinity threshold. *)
  let topo = Topo.line 3 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  Dv.fail_link_at dv ~time:20.0 "n0" "n1";
  let report = Dv.run dv ~until:2000.0 ~max_events:100_000 in
  checkb "counted to infinity" true report.Dv.counted_to_infinity;
  checkb "cost climbed past threshold" true (report.Dv.max_cost_seen >= 32);
  (* After the storm, no usable route to the unreachable node remains. *)
  checkb "n2 lost its route to n0" true (Dv.route_cost dv "n2" "n0" = None)

let test_dv_no_divergence_without_failure () =
  let topo = Topo.line 3 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  let report = Dv.run dv ~until:200.0 ~max_events:100_000 in
  checkb "stable under periodic adverts" false report.Dv.counted_to_infinity;
  checkb "max cost small" true (report.Dv.max_cost_seen <= 2)

let test_dv_failure_with_alternate_path () =
  (* On a ring, losing one link just reroutes the long way. *)
  let topo = Topo.ring 4 in
  let dv = Dv.create ~infinity_threshold:32 ~period:5.0 topo in
  Dv.fail_link_at dv ~time:20.0 "n0" "n1";
  ignore (Dv.run dv ~until:300.0 ~max_events:200_000);
  checkb "rerouted n0->n1 the long way" true (Dv.route_cost dv "n0" "n1" = Some 3)

let test_dv_converges_under_loss () =
  (* Periodic advertisement makes the naive protocol robust to loss. *)
  let topo = Topo.create () in
  Topo.add_duplex ~loss:0.3 topo "n0" "n1";
  Topo.add_duplex ~loss:0.3 topo "n1" "n2";
  let dv = Dv.create ~seed:3 ~period:5.0 topo in
  let report = Dv.run dv ~until:300.0 ~max_events:200_000 in
  checkb "messages were lost" true
    (report.Dv.stats.Netsim.Sim.messages_dropped > 0);
  checkb "n0 still reaches n2" true (Dv.route_cost dv "n0" "n2" = Some 2);
  checkb "n2 still reaches n0" true (Dv.route_cost dv "n2" "n0" = Some 2)

(* ------------------------------------------------------------------ *)
(* The transport layer (PR 9): wire framing and the multi-process
   supervisor. *)

module Wire = Dist.Wire
module Supervisor = Dist.Supervisor

let sample_frames =
  [
    Wire.Data
      {
        src = "n0";
        dst = "n1";
        pred = "path";
        tuple =
          [|
            V.Addr "n1";
            V.Addr "n3";
            V.List [ V.Addr "n1"; V.Addr "n2"; V.Addr "n3" ];
            V.Int 7;
            V.Str "via";
            V.Bool true;
            V.Int (-12345678901234);
          |];
      };
    Wire.Poll;
    Wire.Status
      {
        Wire.st_idle = true;
        st_sent = 42;
        st_received = 41;
        st_bytes = 123456;
        st_inserts = 9;
      };
    Wire.Dump;
    Wire.Store_dump
      [
        ( "n0",
          [
            ("link", [ [| V.Addr "n0"; V.Addr "n1"; V.Int 1 |] ]);
            ("empty", []);
          ] );
      ];
    Wire.Bye;
  ]

let test_wire_roundtrip () =
  (* Every frame variant and value sort survives encode -> decode, and
     many frames concatenated in one feed pop out in order. *)
  let d = Wire.Decoder.create () in
  List.iter
    (fun f ->
      let b = Wire.encode f in
      Wire.Decoder.feed d b 0 (Bytes.length b))
    sample_frames;
  List.iter
    (fun expect ->
      match Wire.Decoder.next d with
      | Some got -> checkb "frame roundtrips" true (got = expect)
      | None -> Alcotest.fail "decoder starved")
    sample_frames;
  checkb "decoder drained" true (Wire.Decoder.next d = None);
  checki "nothing buffered" 0 (Wire.Decoder.buffered d)

let test_wire_partial_reads () =
  (* A socket delivering one byte at a time: no frame until the last
     byte of each, then exactly that frame. *)
  let d = Wire.Decoder.create () in
  let popped = ref [] in
  List.iter
    (fun f ->
      let b = Wire.encode f in
      Bytes.iteri
        (fun i c ->
          Wire.Decoder.feed d (Bytes.make 1 c) 0 1;
          match Wire.Decoder.next d with
          | Some got ->
            checki "frame completes on its last byte" (Bytes.length b - 1) i;
            popped := got :: !popped
          | None -> ())
        b)
    sample_frames;
  checkb "all frames arrived" true (List.rev !popped = sample_frames)

let test_wire_oversized_and_bad_tag () =
  (* A corrupt length prefix must raise, not allocate. *)
  let d = Wire.Decoder.create () in
  let header = Bytes.create 4 in
  Bytes.set header 0 (Char.chr 0x7f);
  Bytes.set header 1 '\xff';
  Bytes.set header 2 '\xff';
  Bytes.set header 3 '\xff';
  Wire.Decoder.feed d header 0 4;
  (match Wire.Decoder.next d with
  | exception Wire.Frame_error (Wire.Oversized_frame _) -> ()
  | _ -> Alcotest.fail "expected Oversized_frame");
  (* An unknown body tag is a typed error too. *)
  let d = Wire.Decoder.create () in
  let bad = Bytes.of_string "\x00\x00\x00\x01\x63" in
  Wire.Decoder.feed d bad 0 (Bytes.length bad);
  match Wire.Decoder.next d with
  | exception Wire.Frame_error (Wire.Bad_tag 0x63) -> ()
  | _ -> Alcotest.fail "expected Bad_tag"

let test_wire_truncated_stream () =
  (* Peer dies mid-frame: the reader gets a typed truncation, not a
     hang or a short tuple. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let encoded = Wire.encode (List.hd sample_frames) in
  let half = Bytes.length encoded / 2 in
  ignore (Unix.write a encoded 0 half);
  Unix.close a;
  (match Wire.read_frame ~timeout:5.0 b with
  | exception Wire.Frame_error Wire.Truncated_stream -> ()
  | _ -> Alcotest.fail "expected Truncated_stream");
  Unix.close b

let test_wire_read_timeout () =
  (* A silent peer fails the read within the deadline instead of
     blocking forever. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let t0 = Unix.gettimeofday () in
  (match Wire.read_frame ~timeout:0.2 b with
  | exception Wire.Frame_error Wire.Read_timeout -> ()
  | _ -> Alcotest.fail "expected Read_timeout");
  checkb "deadline respected" true (Unix.gettimeofday () -. t0 < 2.0);
  Unix.close a;
  Unix.close b

let test_wire_partial_writes () =
  (* A frame bigger than the socket buffer: the writer must loop over
     partial writes while a forked reader drains — one write_frame
     call, one intact frame out the other end. *)
  let big =
    Wire.Store_dump
      [
        ( "n0",
          [
            ( "blob",
              List.init 20_000 (fun i ->
                  [| V.Int i; V.Str (String.make 40 'x') |]) );
          ] );
      ]
  in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Unix.close a;
    let ok =
      match Wire.read_frame ~timeout:30.0 b with
      | got -> got = big
      | exception _ -> false
    in
    Unix._exit (if ok then 0 else 1)
  | pid ->
    Unix.close b;
    let n = Wire.write_frame a big in
    checkb "frame exceeds one socket buffer" true (n > 256 * 1024);
    Unix.close a;
    (match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> Alcotest.fail "reader did not receive the frame intact")

let test_supervisor_matches_sim () =
  (* The tentpole end-to-end: path vector across real processes over
     real sockets converges to the same per-node fixpoints as the
     virtual-clock simulator on the same topology. *)
  let links = Programs.ring_links 4 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let topo = topo_of_links links in
  let res = Supervisor.run topo loc in
  checki "one worker per node" 4 res.Supervisor.workers;
  checkb "tuples crossed processes" true (res.Supervisor.data_frames > 0);
  checkb "bytes were metered" true
    (res.Supervisor.data_bytes > res.Supervisor.data_frames * 5);
  let rt = Runtime.create topo loc in
  Runtime.load_facts rt;
  let report = Runtime.run rt in
  checkb "sim quiesced" true report.Runtime.stats.Netsim.Sim.quiesced;
  checki "every node dumped" 4 (List.length res.Supervisor.stores);
  List.iter
    (fun (node, store) ->
      checkb
        (Printf.sprintf "node %s fixpoint matches the simulator" node)
        true
        (Store.equal store (Runtime.node_store rt node)))
    res.Supervisor.stores

let test_runtime_rejects_foreign_hosted () =
  let links = Programs.ring_links 3 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let topo = topo_of_links links in
  match Runtime.create ~hosted:[ "n9" ] topo loc with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for unknown hosted node"

let test_simulator_accessor_guard () =
  (* A runtime on a non-simulator transport has no virtual clock to
     script: the accessor must say so, typed. *)
  let links = Programs.ring_links 3 in
  let full = Programs.with_links (Programs.path_vector ()) links in
  let loc = localized full in
  let topo = topo_of_links links in
  let dummy =
    {
      Dist.Transport.now = (fun () -> 0.0);
      send = (fun ~src:_ ~dst:_ _ -> false);
      schedule = (fun ~delay:_ _ -> ());
      set_handler = (fun _ _ -> ());
      run =
        (fun ~until:_ ~max_events:_ ->
          {
            Netsim.Sim.final_time = 0.0;
            events = 0;
            messages_sent = 0;
            messages_delivered = 0;
            messages_dropped = 0;
            quiesced = true;
          });
      sim = None;
    }
  in
  let rt = Runtime.create ~transport:dummy topo loc in
  match Runtime.simulator rt with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument from simulator accessor"

let () =
  Alcotest.run "dist"
    [
      ( "runtime",
        [
          Alcotest.test_case "line = centralized" `Quick test_dist_line;
          Alcotest.test_case "ring = centralized" `Quick test_dist_ring;
          Alcotest.test_case "asymmetric costs" `Quick test_dist_asymmetric;
          Alcotest.test_case "random reachability" `Quick test_dist_random;
          Alcotest.test_case "reachability scale" `Quick
            test_dist_reachability_scale;
          Alcotest.test_case "best path placement" `Quick
            test_dist_best_path_values;
          Alcotest.test_case "message accounting" `Quick
            test_dist_message_accounting;
          Alcotest.test_case "rejects unlocalized" `Quick
            test_dist_rejects_unlocalized;
          Alcotest.test_case "soft state expiry" `Quick
            test_dist_soft_state_expiry;
        ] );
      ( "batching",
        [
          QCheck_alcotest.to_alcotest prop_batch_inbox_equivalence;
          Alcotest.test_case "same-instant burst groups" `Quick
            test_same_instant_burst_groups;
          Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
          Alcotest.test_case "node-order determinism" `Quick
            test_node_order_determinism;
        ] );
      ( "views",
        [
          Alcotest.test_case "shipping diff + soft expiry" `Quick
            test_view_shipping_diff_and_expiry;
          Alcotest.test_case "remote deletion rejected" `Quick
            test_remote_view_check_rejects;
          Alcotest.test_case "canonical programs accepted" `Quick
            test_remote_view_check_accepts_canonical;
        ] );
      ( "incremental",
        [
          QCheck_alcotest.to_alcotest prop_incremental_equivalence;
          QCheck_alcotest.to_alcotest prop_interned_equivalence;
          QCheck_alcotest.to_alcotest prop_tuple_ids_equivalence;
          Alcotest.test_case "dirty marks and clears" `Quick
            test_dirty_marks_and_clears;
          Alcotest.test_case "dirty marks expiry" `Quick
            test_dirty_marks_expiry;
          Alcotest.test_case "dirty marks flush" `Quick test_dirty_marks_flush;
          Alcotest.test_case "untouched stratum zero work" `Quick
            test_untouched_stratum_zero_work;
          Alcotest.test_case "missing location unreachable" `Quick
            test_missing_tuple_location_unreachable;
          Alcotest.test_case "remote-view printer and table" `Quick
            test_remote_view_printer_and_table;
        ] );
      ( "distance_vector",
        [
          Alcotest.test_case "converges" `Quick test_dv_converges;
          Alcotest.test_case "ring shortest" `Quick test_dv_ring_shortest;
          Alcotest.test_case "count to infinity" `Quick
            test_dv_count_to_infinity;
          Alcotest.test_case "stable without failure" `Quick
            test_dv_no_divergence_without_failure;
          Alcotest.test_case "alternate path reroute" `Quick
            test_dv_failure_with_alternate_path;
          Alcotest.test_case "converges under loss" `Quick
            test_dv_converges_under_loss;
        ] );
      ( "transport",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "partial reads" `Quick test_wire_partial_reads;
          Alcotest.test_case "oversized and bad tag" `Quick
            test_wire_oversized_and_bad_tag;
          Alcotest.test_case "truncated stream" `Quick
            test_wire_truncated_stream;
          Alcotest.test_case "read timeout" `Quick test_wire_read_timeout;
          Alcotest.test_case "partial writes" `Quick test_wire_partial_writes;
          Alcotest.test_case "supervisor matches simulator" `Quick
            test_supervisor_matches_sim;
          Alcotest.test_case "rejects foreign hosted" `Quick
            test_runtime_rejects_foreign_hosted;
          Alcotest.test_case "simulator accessor guard" `Quick
            test_simulator_accessor_guard;
        ] );
    ]
