(* The model checker's reduction layer (partial-order + symmetry)
   behind a differential exploration harness: reduced searches must
   agree with the plain checker on invariant verdicts and terminal
   fixpoints while visiting fewer (or equal) states, and every
   counterexample they produce must replay as a real execution
   (Explore.validate_trace).

   Directed tests pin the unreduced baseline (A2's 175 states), the
   canonicalized hash's bucket distribution, the Soft_ts
   lease-permutation identity, and the Value-aware insertion order
   (the Kmap bug class). *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module V = Ndlog.Value
module Programs = Ndlog.Programs
module Explore = Mcheck.Explore
module NT = Mcheck.Ndlog_ts
module ST = Mcheck.Soft_ts
module Sym = Mcheck.Symmetry
module Topology = Netsim.Topology

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let ok_or_fail label = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

(* ------------------------------------------------------------------ *)
(* Explore core: POR on a synthetic commuting system, trace replay. *)

(* Two independent bounded counters: every interleaving of the [`A]
   and [`B] increments commutes, so POR must collapse the (bound+1)^2
   grid to a single staircase while preserving the unique terminal. *)
let counters_system bound =
  let actions (x, y) =
    (if x < bound then [ (`A, (x + 1, y)) ] else [])
    @ if y < bound then [ (`B, (x, y + 1)) ] else []
  in
  Explore.make_labeled
    ~independent:(fun _ a b -> a <> b)
    ~initial:[ (0, 0) ]
    ~actions ()

let test_por_counters () =
  let sys = counters_system 3 in
  let plain = Explore.explore sys in
  let por = Explore.explore ~por:true sys in
  checki "plain grid" 16 plain.Explore.states;
  checki "por staircase" 7 por.Explore.states;
  checkb "same terminal" true
    (plain.Explore.terminal = [ (3, 3) ] && por.Explore.terminal = [ (3, 3) ])

let test_por_needs_labels () =
  (* An unlabeled system silently falls back to full expansion. *)
  let sys =
    Explore.make ~initial:[ 0 ]
      ~successors:(fun n -> if n < 5 then [ n + 1 ] else [])
      ()
  in
  let plain = Explore.explore sys in
  let por = Explore.explore ~por:true sys in
  checki "same states" plain.Explore.states por.Explore.states

let test_validate_trace () =
  let sys = counters_system 2 in
  ok_or_fail "valid trace" (Explore.validate_trace sys [ (0, 0); (1, 0); (1, 1) ]);
  checkb "wrong start rejected" true
    (Result.is_error (Explore.validate_trace sys [ (1, 0); (1, 1) ]));
  checkb "bad step rejected" true
    (Result.is_error (Explore.validate_trace sys [ (0, 0); (1, 1) ]));
  checkb "empty rejected" true (Result.is_error (Explore.validate_trace sys []))

let test_validate_lasso () =
  (* A mod-3 counter: the cycle 0 -> 1 -> 2 -> 0 is a real lasso. *)
  let sys =
    Explore.make ~initial:[ 0 ] ~successors:(fun n -> [ (n + 1) mod 3 ]) ()
  in
  (match Explore.find_lasso sys with
  | None -> Alcotest.fail "expected a lasso"
  | Some l -> ok_or_fail "found lasso replays" (Explore.validate_lasso sys l));
  checkb "broken cycle rejected" true
    (Result.is_error
       (Explore.validate_lasso sys { Explore.stem = []; cycle = [ 0; 2 ] }));
  ok_or_fail "stem + cycle"
    (Explore.validate_lasso sys { Explore.stem = [ 0 ]; cycle = [ 1; 2; 0 ] });
  checkb "bad stem rejected" true
    (Result.is_error
       (Explore.validate_lasso sys { Explore.stem = [ 2 ]; cycle = [ 0; 1; 2 ] }))

(* ------------------------------------------------------------------ *)
(* Topology automorphisms. *)

let test_automorphism_generators () =
  let ring = Topology.ring 6 in
  let gens = Topology.automorphism_generators ring in
  checkb "ring has generators" true (List.length gens >= 2);
  List.iter
    (fun g -> checkb "ring generator validates" true (Topology.is_automorphism ring g))
    gens;
  (* the rotation by one must be among them *)
  checkb "rotation present" true
    (List.exists
       (fun g -> List.assoc_opt "n0" g = Some "n1" && List.assoc_opt "n5" g = Some "n0")
       gens);
  let star = Topology.star 5 in
  let sgens = Topology.automorphism_generators star in
  (* adjacent leaf transpositions generate the symmetric group on leaves *)
  checkb "star twin swaps" true (List.length sgens >= 3);
  List.iter
    (fun g ->
      checkb "star generator validates" true (Topology.is_automorphism star g);
      checkb "center fixed" true (List.assoc_opt "n0" g = Some "n0" || List.assoc_opt "n0" g = None))
    sgens;
  let grid = Topology.grid 3 in
  let ggens = Topology.automorphism_generators grid in
  checkb "grid transpose/flip" true (List.length ggens >= 2);
  List.iter
    (fun g -> checkb "grid generator validates" true (Topology.is_automorphism grid g))
    ggens;
  (* distinct per-link costs break every symmetry *)
  let asym = Topology.ring ~cost:(fun i -> i + 1) 5 in
  checki "asymmetric ring" 0 (List.length (Topology.automorphism_generators asym));
  (* a failed link breaks the symmetry that would map it onto a live one *)
  let broken = Topology.ring 6 in
  Topology.fail_duplex broken "n0" "n1";
  checkb "failure filters rotation" true
    (not
       (List.exists
          (fun g -> List.assoc_opt "n0" g = Some "n1")
          (Topology.automorphism_generators broken)))

let test_is_automorphism_rejects () =
  let ring = Topology.ring 5 in
  checkb "non-bijection rejected" false
    (Topology.is_automorphism ring [ ("n0", "n1"); ("n1", "n1") ]);
  (* on a 5-ring the transposition n0 <-> n2 maps the edge n2-n3 to the
     non-edge n0-n3 (on a 4-ring it would be the n1-n3 reflection!) *)
  checkb "structure-breaking map rejected" false
    (Topology.is_automorphism ring [ ("n0", "n2"); ("n2", "n0") ]);
  checkb "identity accepted" true (Topology.is_automorphism ring [])

(* ------------------------------------------------------------------ *)
(* Symmetry canonicalization. *)

let rotate_store k db =
  (* the ring rotation i -> i+1 as a raw permutation *)
  let p = List.init k (fun i -> (Programs.node i, Programs.node ((i + 1) mod k))) in
  Sym.apply_store p db

let reach_db n =
  Store.of_facts (Programs.ring_links n)
  |> Store.add "reachable" [| V.Addr "n0"; V.Addr "n1" |]

let test_canon_store_identifies_orbit () =
  let sym = Sym.of_topology (Topology.ring 5) in
  checkb "nontrivial group" false (Sym.trivial sym);
  let db = reach_db 5 in
  let db' = rotate_store 5 db in
  checkb "rotation changes the raw store" false (Store.equal db db');
  checkb "same canonical form" true
    (Store.equal (Sym.canon_store sym db) (Sym.canon_store sym db'));
  checkb "store_equal agrees" true (Sym.store_equal sym db db');
  checki "store_hash agrees" (Sym.store_hash sym db) (Sym.store_hash sym db');
  (* canonicalization stays inside the orbit: permutation-invariant
     observables are untouched *)
  let c = Sym.canon_store sym db in
  checki "tuple count preserved" (Store.total_tuples db) (Store.total_tuples c);
  checkb "predicates preserved" true (Store.preds db = Store.preds c)

let test_canon_distinguishes_orbits () =
  (* reachable(n0,n1) and reachable(n0,n2) lie in different orbits of a
     5-ring (adjacent vs two-apart) and must not be merged. *)
  let sym = Sym.of_topology (Topology.ring 5) in
  let base = Store.of_facts (Programs.ring_links 5) in
  let a = Store.add "reachable" [| V.Addr "n0"; V.Addr "n1" |] base in
  let b = Store.add "reachable" [| V.Addr "n0"; V.Addr "n2" |] base in
  checkb "different orbits stay apart" false (Sym.store_equal sym a b)

let test_canon_table_buckets () =
  (* All rotations of a state share one table entry under ~canon, and
     the canonical hash must keep spreading distinct orbits across
     buckets instead of collapsing them into a few chains. *)
  let k = 6 in
  let sym = Sym.of_topology (Topology.ring k) in
  let tbl =
    Explore.Table.create ~equal:Store.equal ~hash:Store.hash
      ~canon:(Sym.canon_store sym) ()
  in
  let base = Store.of_facts (Programs.ring_links k) in
  let orbits = ref 0 in
  (* distinct orbits: reachable sets of increasing size *)
  for d = 1 to k - 1 do
    for len = 1 to 40 do
      let db =
        List.fold_left
          (fun db i ->
            Store.add "reachable"
              [| V.Addr (Programs.node (i mod k));
                 V.Addr (Programs.node ((i + d) mod k));
                 V.Int (len + (100 * d) + i) |]
              db)
          base
          (List.init len Fun.id)
      in
      incr orbits;
      (* enter every rotation of the state; they must all collapse *)
      let db' = rotate_store k db in
      let db'' = rotate_store k db' in
      Explore.Table.add tbl db !orbits;
      if not (Explore.Table.mem tbl db') then
        Alcotest.fail "rotation not identified";
      Explore.Table.add tbl db'' 0 |> ignore
    done
  done;
  checki "one entry per orbit (size counts duplicates)" (2 * !orbits)
    (Explore.Table.size tbl);
  checkb "orbits spread over buckets" true
    (Explore.Table.buckets tbl >= !orbits / 2);
  checkb "no degenerate chain" true (Explore.Table.max_bucket tbl <= 8)

let test_soft_lease_permutation_identity () =
  (* Permuting a soft state's nodes permutes its database and leases
     jointly: the two states canonicalize identically. *)
  let prog =
    Programs.parse_exn
      {|
materialize(ping, 2).
materialize(alive, 2).
a1 alive(@X,Y) :- ping(@X,Y).
|}
  in
  let cfg = ST.make_config ~horizon:6 prog in
  let ping leaf = [| V.Addr (Programs.node 0); V.Addr (Programs.node leaf) |] in
  let s1 =
    ST.insert cfg (ST.tick cfg (ST.insert cfg ST.initial_state "ping" (ping 1)))
      "ping" (ping 2)
  in
  let s2 =
    ST.insert cfg (ST.tick cfg (ST.insert cfg ST.initial_state "ping" (ping 3)))
      "ping" (ping 1)
  in
  checkb "raw states differ" false (ST.state_equal s1 s2);
  let sym = Sym.of_topology (Topology.star 4) in
  let c1 = ST.canon_state sym s1 and c2 = ST.canon_state sym s2 in
  checkb "lease states identified up to leaf permutation" true
    (ST.state_equal c1 c2);
  checki "clock preserved" s1.ST.clock c1.ST.clock;
  checki "lease count preserved" (List.length s1.ST.leases)
    (List.length c1.ST.leases);
  (* directly: applying a twin swap is state-identical after canon *)
  let swap = [ (Programs.node 1, Programs.node 2); (Programs.node 2, Programs.node 1) ] in
  checkb "explicit swap identified" true
    (ST.state_equal (ST.canon_state sym (ST.apply_perm swap s1)) c1)

(* ------------------------------------------------------------------ *)
(* Value-aware insertion order (the aggregate-Kmap bug class). *)

let test_insertion_order_value_aware () =
  (* The engine's tuple order is length-first, then Value.compare
     element-wise; a naive element-wise lexicographic order (what a
     future Stdlib.compare regression would approximate on nested
     values) would sort [p(1,9)] before [p(2)].  Pin the contract. *)
  let short = ("p", [| V.Int 2 |]) in
  let long = ("p", [| V.Int 1; V.Int 9 |]) in
  checkb "length-first" true (NT.insertion_compare short long < 0);
  checkb "pred-first" true
    (NT.insertion_compare ("a", [| V.Int 9 |]) ("b", [| V.Int 0 |]) < 0);
  checkb "value order within arity" true
    (NT.insertion_compare ("p", [| V.Int 2 |]) ("p", [| V.Str "x" |]) < 0);
  (* enabled_insertions emits exactly that order, deduplicated across
     the two rules deriving the same tuple *)
  let p =
    Programs.parse_exn
      {|
materialize(link, infinity).
materialize(short, infinity).
materialize(pair, infinity).
s1 short(@S) :- link(@S,D,C).
s2 short(@S) :- link(@S,D,C), C>0.
p1 pair(@S,C) :- link(@S,D,C).
|}
  in
  let db = Store.of_facts (Programs.line_links 3) in
  let ins = NT.enabled_insertions p db in
  let sorted =
    List.sort_uniq NT.insertion_compare ins
  in
  checkb "sorted and deduplicated" true (ins = sorted);
  (* s1/s2 both derive short(n0) etc.: dedup must keep one each *)
  let shorts = List.filter (fun (p, _) -> p = "short") ins in
  checki "one short per node" 3 (List.length shorts)

(* ------------------------------------------------------------------ *)
(* A2 pin: the fine-grained baseline is untouched by the refactor. *)

let test_a2_pin_175 () =
  let p = Programs.with_links (Programs.reachability ()) (Programs.line_links 3) in
  let plain = Explore.explore ~max_states:20_000 (NT.system p) in
  checki "A2 fine-grained baseline" 175 plain.Explore.states;
  (* the labeled system with both reductions off explores the same space *)
  let labeled = NT.explore ~max_states:20_000 p in
  checki "labeled = unlabeled" 175 labeled.Explore.states;
  checki "same transitions" plain.Explore.transitions labeled.Explore.transitions

(* ------------------------------------------------------------------ *)
(* E2 (count-to-infinity) and E3 (Disagree) counterexample replay. *)

let test_e2_count_to_infinity_trace () =
  (* Unbounded distance-vector on a ring derives ever-growing costs;
     the safety bound is violated and the (reduced and unreduced)
     counterexamples must replay. *)
  let p =
    Programs.with_links (Programs.distance_vector ()) (Programs.ring_links 3)
  in
  let bound db =
    Store.fold_rel "cost"
      (fun t ok -> ok && (match t.(2) with V.Int c -> c <= 4 | _ -> true))
      db true
  in
  let sys = NT.labeled_system p in
  let sym = Sym.of_topology (Topology.ring 3) in
  let run name res =
    match res with
    | Ok _ -> Alcotest.failf "%s: expected count-to-infinity violation" name
    | Error (v : Store.t Explore.violation) ->
      ok_or_fail (name ^ " trace replays") (Explore.validate_trace sys v.Explore.trace);
      checkb (name ^ " endpoint violates") true (not (bound v.Explore.violating))
  in
  run "plain" (NT.check_fine_invariant ~max_states:50_000 p bound);
  run "por"
    (NT.check_fine_invariant ~max_states:50_000 ~por:true ~stable:true p bound);
  run "both"
    (NT.check_fine_invariant ~max_states:50_000 ~por:true ~stable:true
       ~symmetry:sym p bound)

let test_e3_disagree_trace () =
  (* Disagree reaches a stable assignment under interleaved activation:
     flip it into a "violation" to obtain a trace, and replay it.  The
     synchronous schedule oscillates: replay the lasso too. *)
  let t = Spp.Gadgets.disagree in
  let sys = Spp.Ts.interleaved t in
  (match Explore.check_invariant sys (fun s -> not (Spp.Ts.is_stable t s)) with
  | Ok _ -> Alcotest.fail "Disagree has reachable stable states"
  | Error v ->
    ok_or_fail "stable-state trace replays" (Explore.validate_trace sys v.Explore.trace));
  let sync = Spp.Ts.synchronous t in
  match Explore.can_avoid sync ~good:(Spp.Ts.is_stable t) with
  | None -> Alcotest.fail "Disagree must oscillate synchronously"
  | Some l -> ok_or_fail "oscillation lasso replays" (Explore.validate_lasso sync l)

(* ------------------------------------------------------------------ *)
(* The differential property: {plain, POR, symmetry, both} agree. *)

(* The set (not multiset) of canonical terminal states: plain
   exploration may reach several terminals in one orbit where the
   reduced search keeps a single representative. *)
let terminal_fingerprint sym (stats : Store.t Explore.stats) =
  List.map (Sym.canon_store sym) stats.Explore.terminal
  |> List.sort_uniq Store.compare

let prop_reduction_sound =
  QCheck.Test.make ~name:"reduced exploration = plain (verdict, fixpoint)"
    ~count:12
    QCheck.(triple (int_range 0 2) (int_range 0 3) (int_range 3 4))
    (fun (prog_i, topo_i, n) ->
      let links, topo =
        match topo_i with
        | 0 -> (Programs.ring_links n, Topology.ring n)
        | 1 -> (Programs.star_links n, Topology.star n)
        | 2 -> (Programs.grid_links 2, Topology.grid 2)
        | _ -> (Programs.line_links n, Topology.line n)
      in
      (* Plain exploration must stay tractable (seconds, measured):
         reachability on ring4/grid2 and bounded DV at 2 hops there
         already exceed 28k states, so those cells drop to 1 hop or
         out; path_vector blows up beyond 3-node graphs. *)
      let ring = topo_i = 0 and grid = topo_i = 2 in
      let case =
        match prog_i with
        | 0 when (ring && n > 3) || grid -> None
        | 0 ->
          (* no node reaches itself — violated on rings, holds on the
             others; stable either way (tuples are never removed) *)
          Some
            ( Programs.with_links (Programs.reachability ()) links,
              [ "reachable" ],
              fun db ->
                Store.fold_rel "reachable"
                  (fun t ok -> ok && not (V.equal t.(0) t.(1)))
                  db true )
        | 1 ->
          let max_hops = if grid || (ring && n > 3) then 1 else 2 in
          Some
            ( Programs.with_links
                (Programs.bounded_distance_vector ~max_hops)
                links,
              [ "cost" ],
              fun db ->
                Store.fold_rel "cost"
                  (fun t ok ->
                    ok
                    && (match t.(2) with
                       | V.Int c -> c <= max_hops
                       | _ -> true))
                  db true )
        | _ when n > 3 || grid -> None
        | _ ->
          Some
            ( Programs.with_links (Programs.path_vector ()) links,
              [ "path" ],
              fun db ->
                Store.fold_rel "path"
                  (fun t ok ->
                    ok && (match t.(3) with V.Int c -> c <= 2 | _ -> true))
                  db true )
      in
      match case with
      | None -> true
      | Some (p, observed, inv) ->
        let max_states = 30_000 in
        let sym = Sym.of_topology topo in
        let plain = Explore.explore ~max_states (NT.system p) in
        if plain.Explore.truncated then true
        else begin
        let por = NT.explore ~max_states ~por:true p in
        let symr = NT.explore ~max_states ~symmetry:sym p in
        let both = NT.explore ~max_states ~por:true ~symmetry:sym p in
        (* visited-state counts: reduced <= plain *)
        if not (por.Explore.states <= plain.Explore.states) then
          QCheck.Test.fail_reportf "POR grew the space: %d > %d"
            por.Explore.states plain.Explore.states;
        if not (symr.Explore.states <= plain.Explore.states) then
          QCheck.Test.fail_reportf "symmetry grew the space: %d > %d"
            symr.Explore.states plain.Explore.states;
        if not (both.Explore.states <= min por.Explore.states symr.Explore.states)
        then
          QCheck.Test.fail_reportf "both exceeds its components: %d"
            both.Explore.states;
        (* terminal fixpoints agree up to the symmetry quotient *)
        let fp = terminal_fingerprint sym in
        let fp_plain = fp plain in
        List.iter
          (fun (name, stats) ->
            if not (List.equal Store.equal fp_plain (fp stats)) then
              QCheck.Test.fail_reportf "%s changed the terminal fixpoint" name)
          [ ("por", por); ("sym", symr); ("both", both) ];
        (* invariant verdicts agree across all four modes; every
           counterexample replays against the labeled system *)
        let sys = NT.labeled_system p in
        let verdict name res =
          match res with
          | Ok _ -> true
          | Error (v : Store.t Explore.violation) ->
            (match Explore.validate_trace sys v.Explore.trace with
            | Ok () -> ()
            | Error e ->
              QCheck.Test.fail_reportf "%s produced an invalid trace: %s" name e);
            if inv v.Explore.violating then
              QCheck.Test.fail_reportf "%s endpoint satisfies the invariant" name;
            false
        in
        let v_plain =
          verdict "plain" (NT.check_fine_invariant ~max_states p inv)
        in
        let modes =
          [
            ( "por",
              NT.check_fine_invariant ~max_states ~por:true ~stable:true p inv );
            ( "por/observed",
              NT.check_fine_invariant ~max_states ~por:true ~observed p inv );
            ( "sym",
              NT.check_fine_invariant ~max_states ~symmetry:sym p inv );
            ( "both",
              NT.check_fine_invariant ~max_states ~por:true ~stable:true
                ~symmetry:sym p inv );
          ]
        in
        List.iter
          (fun (name, res) ->
            if verdict name res <> v_plain then
              QCheck.Test.fail_reportf "%s verdict differs from plain" name)
          modes;
        true
      end)

(* Soft-state differential: symmetry preserves verdicts and fixpoints;
   POR (inert while ticks compete) must never grow the space. *)
let prop_soft_reduction_sound =
  QCheck.Test.make ~name:"soft-state reduced exploration = plain" ~count:12
    QCheck.(triple (int_range 3 5) (int_range 2 4) (int_range 1 2))
    (fun (k, horizon, stop) ->
      let prog =
        Programs.parse_exn
          {|
materialize(ping, 2).
materialize(alive, 2).
a1 alive(@X,Y) :- ping(@X,Y).
|}
      in
      let pings =
        List.init (k - 1) (fun i ->
            ( "ping",
              [| V.Addr (Programs.node 0); V.Addr (Programs.node (i + 1)) |] ))
      in
      let cfg =
        ST.make_config ~horizon
          ~inject:(fun t -> if t <= stop then pings else [])
          prog
      in
      let sym = Sym.of_topology (Topology.star k) in
      let plain = Explore.explore (ST.system cfg) in
      let por = ST.explore ~por:true cfg in
      let symr = ST.explore ~symmetry:sym cfg in
      let both = ST.explore ~por:true ~symmetry:sym cfg in
      if por.Explore.states > plain.Explore.states then
        QCheck.Test.fail_reportf "POR grew the soft space";
      if symr.Explore.states > plain.Explore.states then
        QCheck.Test.fail_reportf "symmetry grew the soft space";
      if both.Explore.states > min por.Explore.states symr.Explore.states then
        QCheck.Test.fail_reportf "both exceeds its components";
      let fp (stats : ST.state Explore.stats) =
        List.map (ST.canon_state sym) stats.Explore.terminal
        |> List.sort_uniq ST.state_compare
      in
      if not (List.equal ST.state_equal (fp plain) (fp symr)) then
        QCheck.Test.fail_reportf "symmetry changed the soft fixpoint";
      if not (List.equal ST.state_equal (fp plain) (fp both)) then
        QCheck.Test.fail_reportf "both changed the soft fixpoint";
      (* verdict equality for a clock-indexed safety property: alive
         tuples vanish after refreshes stop plus slack *)
      let deadline = stop + 4 in
      let inv (s : ST.state) =
        s.ST.clock < deadline || Store.is_empty (Store.restrict [ "alive" ] s.ST.db)
      in
      let sys = ST.labeled_system cfg in
      let verdict name res =
        match res with
        | Ok _ -> true
        | Error (v : ST.state Explore.violation) ->
          (match Explore.validate_trace sys v.Explore.trace with
          | Ok () -> ()
          | Error e ->
            QCheck.Test.fail_reportf "%s: invalid soft trace: %s" name e);
          false
      in
      let v_plain = verdict "plain" (ST.check cfg inv) in
      List.iter
        (fun (name, res) ->
          if verdict name res <> v_plain then
            QCheck.Test.fail_reportf "%s soft verdict differs" name)
        [
          ("sym", ST.check ~symmetry:sym cfg inv);
          ("por/observed", ST.check ~por:true ~observed:[ "alive" ] cfg inv);
          ("both", ST.check ~por:true ~observed:[ "alive" ] ~symmetry:sym cfg inv);
        ];
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mcheck"
    [
      ( "explore",
        [
          Alcotest.test_case "por collapses commuting counters" `Quick
            test_por_counters;
          Alcotest.test_case "por needs labels" `Quick test_por_needs_labels;
          Alcotest.test_case "validate_trace" `Quick test_validate_trace;
          Alcotest.test_case "validate_lasso" `Quick test_validate_lasso;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "automorphism generators" `Quick
            test_automorphism_generators;
          Alcotest.test_case "is_automorphism rejects" `Quick
            test_is_automorphism_rejects;
          Alcotest.test_case "canon identifies orbits" `Quick
            test_canon_store_identifies_orbit;
          Alcotest.test_case "canon distinguishes orbits" `Quick
            test_canon_distinguishes_orbits;
          Alcotest.test_case "canonical hash buckets" `Quick
            test_canon_table_buckets;
          Alcotest.test_case "lease permutation identity" `Quick
            test_soft_lease_permutation_identity;
        ] );
      ( "ndlog_ts",
        [
          Alcotest.test_case "value-aware insertion order" `Quick
            test_insertion_order_value_aware;
          Alcotest.test_case "A2 pinned at 175" `Quick test_a2_pin_175;
          Alcotest.test_case "E2 counterexamples replay" `Quick
            test_e2_count_to_infinity_trace;
          Alcotest.test_case "E3 Disagree replay" `Quick test_e3_disagree_trace;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_reduction_sound;
          QCheck_alcotest.to_alcotest prop_soft_reduction_sound;
        ] );
    ]
