(* Tests for the NDlog library: values, parser, analysis, evaluation,
   localization, and soft state. *)

module V = Ndlog.Value
module Ast = Ndlog.Ast
module Parser = Ndlog.Parser
module Analysis = Ndlog.Analysis
module Eval = Ndlog.Eval
module Store = Ndlog.Store
module Programs = Ndlog.Programs
module Localize = Ndlog.Localize
module Softstate = Ndlog.Softstate

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Values. *)

let test_value_order () =
  checkb "int < str" true (V.compare (V.Int 5) (V.Str "a") < 0);
  checkb "list lexicographic" true
    (V.compare (V.List [ V.Int 1 ]) (V.List [ V.Int 1; V.Int 2 ]) < 0);
  checkb "equal reflexive" true (V.equal (V.Addr "x") (V.Addr "x"));
  checkb "addr <> str sort" false (V.equal (V.Addr "x") (V.Str "x"))

let test_value_hash_consistent () =
  let vs =
    [ V.Int 3; V.Str "hi"; V.Bool true; V.Addr "n0"; V.List [ V.Int 1; V.Addr "a" ] ]
  in
  List.iter
    (fun v ->
      let v' =
        match v with
        | V.List l -> V.List (List.map Fun.id l)
        | other -> other
      in
      checkb "hash consistent with equal" true (V.hash v = V.hash v'))
    vs

let test_value_coerce () =
  checki "as_int" 7 (V.as_int (V.Int 7));
  checks "as_addr from str" "a" (V.as_addr (V.Str "a"));
  Alcotest.check_raises "as_int on bool"
    (V.Type_error ("int", V.Bool true))
    (fun () -> ignore (V.as_int (V.Bool true)))

(* ------------------------------------------------------------------ *)
(* Builtins. *)

let test_builtins_paths () =
  let p = Ndlog.Builtins.apply "f_init" [ V.Addr "a"; V.Addr "b" ] in
  check
    Alcotest.(testable V.pp V.equal)
    "f_init" (V.List [ V.Addr "a"; V.Addr "b" ]) p;
  let p2 = Ndlog.Builtins.apply "f_concatPath" [ V.Addr "c"; p ] in
  checki "f_size" 3 (V.as_int (Ndlog.Builtins.apply "f_size" [ p2 ]));
  checkb "f_inPath yes" true
    (V.as_bool (Ndlog.Builtins.apply "f_inPath" [ p2; V.Addr "a" ]));
  checkb "f_inPath no" false
    (V.as_bool (Ndlog.Builtins.apply "f_inPath" [ p2; V.Addr "z" ]))

let test_builtins_errors () =
  Alcotest.check_raises "unknown" (Ndlog.Builtins.Unknown_function "f_nope")
    (fun () -> ignore (Ndlog.Builtins.apply "f_nope" []));
  Alcotest.check_raises "arity" (Ndlog.Builtins.Arity_error ("f_init", 1))
    (fun () -> ignore (Ndlog.Builtins.apply "f_init" [ V.Int 1 ]))

(* ------------------------------------------------------------------ *)
(* Parser. *)

let parse_ok src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let test_parse_path_vector () =
  let p = parse_ok Programs.path_vector_src in
  checki "4 rules" 4 (List.length p.Ast.rules);
  checki "4 decls" 4 (List.length p.Ast.decls);
  let r2 = List.nth p.Ast.rules 1 in
  checks "r2 label" "r2" (Option.get r2.Ast.rule_name);
  checki "r2 body size" 5 (List.length r2.Ast.body);
  let r3 = List.nth p.Ast.rules 2 in
  checkb "r3 aggregates" true (Ast.has_aggregate r3.Ast.head)

let test_parse_facts () =
  let p = parse_ok {| link(@a, b, 3). link(@b, a, 3). |} in
  checki "2 facts" 2 (List.length p.Ast.facts);
  let f = List.hd p.Ast.facts in
  checkb "loc at 0" true (f.Ast.fact_loc = Some 0);
  checkb "addr const" true (V.equal (List.hd f.Ast.fact_args) (V.Addr "a"))

let test_parse_roundtrip () =
  let p = parse_ok Programs.path_vector_src in
  let printed = Ast.program_to_string p in
  let p2 = parse_ok printed in
  checki "rules survive round trip" (List.length p.Ast.rules)
    (List.length p2.Ast.rules);
  checks "second print is stable" printed (Ast.program_to_string p2)

let test_parse_errors () =
  let bad src =
    match Parser.parse_program src with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error _ -> ()
  in
  bad "path(@S,D) :- link(@S,D,C)";
  (* missing final period *)
  bad "path(@S,@D) :- link(@S,D,C).";
  (* two location specifiers *)
  bad "p(X) :- q(X), .";
  bad "p(X) :- f_nope(X)=true.";
  (* unknown function *)
  bad "p(min<X>)."
(* aggregate in fact *)

let test_parse_comments () =
  let p =
    parse_ok
      {|
// line comment
p(@X) :- q(@X,Y), Y > 0. /* block
   comment */ % percent comment
q(@a, 1).
|}
  in
  checki "1 rule" 1 (List.length p.Ast.rules);
  checki "1 fact" 1 (List.length p.Ast.facts)

let test_parse_negation () =
  let p = parse_ok {| p(@X) :- q(@X,Y), !r(@X,Y), Y != 2. |} in
  match (List.hd p.Ast.rules).Ast.body with
  | [ Ast.Pos _; Ast.Neg a; Ast.Cond (Ast.Ne, _, _) ] ->
    checks "neg pred" "r" a.Ast.pred
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_list_literal () =
  let p = parse_ok {| p(@a, [1, 2, 3]). |} in
  let f = List.hd p.Ast.facts in
  checkb "list fact" true
    (V.equal (List.nth f.Ast.fact_args 1) (V.List [ V.Int 1; V.Int 2; V.Int 3 ]))

let test_parse_strings_and_escapes () =
  let p = parse_ok {| p(@a, "hello world", "quo\"te"). |} in
  let f = List.hd p.Ast.facts in
  checkb "plain string" true (V.equal (List.nth f.Ast.fact_args 1) (V.Str "hello world"));
  checkb "escaped quote" true
    (V.equal (List.nth f.Ast.fact_args 2) (V.Str "quo\"te"))

let test_parse_negative_ints () =
  let p = parse_ok {| p(@a, -5). q(@X, Y) :- p(@X, Y), Y < -1. |} in
  let f = List.hd p.Ast.facts in
  checkb "negative literal" true (V.equal (List.nth f.Ast.fact_args 1) (V.Int (-5)));
  let o = Eval.run_exn p in
  checki "negative comparison" 1 (Store.cardinal "q" o.Eval.db)

let test_parse_soft_lifetime () =
  let p = parse_ok {| materialize(ping, 30). materialize(link, infinity). |} in
  (match p.Ast.decls with
  | [ d1; d2 ] ->
    checkb "30s" true (d1.Ast.decl_lifetime = Ast.Lifetime 30.0);
    checkb "forever" true (d2.Ast.decl_lifetime = Ast.Lifetime_forever)
  | _ -> Alcotest.fail "expected two decls")

let test_env_errors () =
  let module E = Ndlog.Env in
  Alcotest.check_raises "unbound" (E.Unbound_variable "X") (fun () ->
      ignore (E.eval E.empty (Ast.Var "X")));
  let env = E.bind "X" (V.Int 4) E.empty in
  checkb "div by zero raises" true
    (match E.eval env (Ast.Binop (Ast.Div, Ast.Var "X", Ast.cint 0)) with
    | exception V.Type_error _ -> true
    | _ -> false);
  (* match_args arity mismatch *)
  checkb "arity mismatch" true
    (E.match_args E.empty [ Ast.Var "A" ] [| V.Int 1; V.Int 2 |] = None);
  (* repeated variable must match equal values *)
  checkb "nonlinear match" true
    (E.match_args E.empty [ Ast.Var "A"; Ast.Var "A" ] [| V.Int 1; V.Int 2 |]
    = None)

let test_value_pp_forms () =
  checks "addr" "@n0" (V.to_string (V.Addr "n0"));
  checks "list" "[1; @a]" (V.to_string (V.List [ V.Int 1; V.Addr "a" ]));
  checks "string quoted" "\"hi\"" (V.to_string (V.Str "hi"));
  checks "sort names" "list" (V.sort_name (V.List []))

(* ------------------------------------------------------------------ *)
(* Analysis. *)

let test_safety_ok () =
  let p = Programs.path_vector () in
  match Analysis.analyze p with
  | Ok info ->
    checkb "path derived" true (List.mem "path" info.Analysis.derived_preds);
    checkb "link base" true (List.mem "link" info.Analysis.base_preds)
  | Error e -> Alcotest.failf "analysis failed: %a" Analysis.pp_error e

let test_safety_unbound_head () =
  let p = parse_ok {| p(@X,Y) :- q(@X). |} in
  match Analysis.analyze p with
  | Ok _ -> Alcotest.fail "expected safety error"
  | Error (Analysis.Unsafe_rule _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Analysis.pp_error e

let test_safety_unbound_negation () =
  let p = parse_ok {| p(@X) :- q(@X), !r(@X,Y). |} in
  match Analysis.analyze p with
  | Ok _ -> Alcotest.fail "expected safety error"
  | Error (Analysis.Unsafe_rule _) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Analysis.pp_error e

let test_arity_mismatch () =
  let p = parse_ok {| p(@X) :- q(@X,Y). p(@X,Y) :- q(@X,Y). |} in
  match Analysis.analyze p with
  | Error (Analysis.Arity_mismatch ("p", _, _)) -> ()
  | Ok _ -> Alcotest.fail "expected arity error"
  | Error e -> Alcotest.failf "wrong error: %a" Analysis.pp_error e

let test_stratification () =
  let p = Programs.path_vector () in
  let info = Analysis.analyze_exn p in
  let stratum_of pred =
    let rec go i = function
      | [] -> -1
      | s :: rest -> if List.mem pred s then i else go (i + 1) rest
    in
    go 0 info.Analysis.strata
  in
  checkb "path below bestPathCost" true
    (stratum_of "path" < stratum_of "bestPathCost");
  checkb "bestPath at least bestPathCost" true
    (stratum_of "bestPath" >= stratum_of "bestPathCost")

let test_unstratifiable () =
  let p = parse_ok {| p(@X) :- q(@X), !r(@X). r(@X) :- q(@X), !p(@X). |} in
  match Analysis.analyze p with
  | Error (Analysis.Unstratifiable _) -> ()
  | Ok _ -> Alcotest.fail "expected stratification error"
  | Error e -> Alcotest.failf "wrong error: %a" Analysis.pp_error e

(* ------------------------------------------------------------------ *)
(* Evaluation. *)

let tuple vs = Array.of_list vs

let best_path_cost db s d =
  Store.tuples "bestPathCost" db
  |> List.find_opt (fun t ->
         V.equal t.(0) (V.Addr s) && V.equal t.(1) (V.Addr d))
  |> Option.map (fun t -> V.as_int t.(2))

let test_eval_line () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 3) in
  let o = Eval.run_exn p in
  checkb "converged" true o.Eval.converged;
  checkb "n0->n2 cost 2" true (best_path_cost o.Eval.db "n0" "n2" = Some 2);
  checkb "n2->n0 cost 2" true (best_path_cost o.Eval.db "n2" "n0" = Some 2);
  (* exactly one bestPath tuple per ordered pair *)
  checki "bestPath count" 6 (Store.cardinal "bestPath" o.Eval.db)

let test_eval_ring_shortest () =
  let p =
    Programs.with_links (Programs.path_vector ())
      (Programs.ring_links ~cost:(fun _ -> 1) 6)
  in
  let o = Eval.run_exn p in
  checkb "converged" true o.Eval.converged;
  (* Opposite nodes on a 6-ring are 3 hops apart. *)
  checkb "n0->n3 cost 3" true (best_path_cost o.Eval.db "n0" "n3" = Some 3);
  checkb "n0->n1 cost 1" true (best_path_cost o.Eval.db "n0" "n1" = Some 1)

let test_eval_asymmetric_costs () =
  (* A triangle where the two-hop route is cheaper than the direct one. *)
  let links =
    [
      Programs.link_fact "n0" "n1" 10;
      Programs.link_fact "n0" "n2" 1;
      Programs.link_fact "n2" "n1" 2;
    ]
  in
  let p = Programs.with_links (Programs.path_vector ()) links in
  let o = Eval.run_exn p in
  checkb "n0->n1 via n2" true (best_path_cost o.Eval.db "n0" "n1" = Some 3);
  (* The winning path vector is recorded in bestPath. *)
  let bp =
    Store.tuples "bestPath" o.Eval.db
    |> List.find (fun t ->
           V.equal t.(0) (V.Addr "n0") && V.equal t.(1) (V.Addr "n1"))
  in
  checkb "path vector [n0;n2;n1]" true
    (V.equal bp.(2) (V.List [ V.Addr "n0"; V.Addr "n2"; V.Addr "n1" ]))

let test_eval_cycle_check () =
  (* On a ring, paths never revisit a node: every path tuple is simple. *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 5) in
  let o = Eval.run_exn p in
  List.iter
    (fun t ->
      let pv = V.as_list t.(2) in
      let sorted = List.sort_uniq V.compare pv in
      checki "simple path" (List.length pv) (List.length sorted))
    (Store.tuples "path" o.Eval.db)

let test_naive_equals_seminaive () =
  let p =
    Programs.with_links (Programs.path_vector ())
      (Programs.random_links ~seed:7 ~extra:2 6)
  in
  let info = Analysis.analyze_exn p in
  let db = Store.of_facts p.Ast.facts in
  let a = Eval.seminaive p info db in
  let b = Eval.naive p info db in
  checkb "same database" true (Store.equal a.Eval.db b.Eval.db)

let test_count_to_infinity () =
  (* The unbounded distance-vector on a cycle keeps deriving larger
     costs: it must hit the round bound without converging. *)
  let p =
    Programs.with_links (Programs.distance_vector ()) (Programs.ring_links 3)
  in
  let o = Eval.run_exn ~max_rounds:40 p in
  checkb "diverges" false o.Eval.converged

let test_bounded_dv_converges () =
  let p =
    Programs.with_links
      (Programs.bounded_distance_vector ~max_hops:8)
      (Programs.ring_links 5)
  in
  let o = Eval.run_exn p in
  checkb "converges" true o.Eval.converged;
  let bc =
    Store.tuples "bestCost" o.Eval.db
    |> List.find (fun t ->
           V.equal t.(0) (V.Addr "n0") && V.equal t.(1) (V.Addr "n2"))
  in
  checki "n0->n2 = 2" 2 (V.as_int bc.(2))

let test_eval_negation () =
  let o =
    Eval.run_exn
      (parse_ok
         {|
link(@a, b, 1).
link(@b, c, 1).
node(@a). node(@b). node(@c).
sink(@X) :- node(@X), !hasout(@X).
hasout(@X) :- link(@X,Y,C).
|})
  in
  let sinks = Store.tuples "sink" o.Eval.db in
  checki "one sink" 1 (List.length sinks);
  checkb "sink is c" true (V.equal (List.hd sinks).(0) (V.Addr "c"))

let test_eval_aggregates () =
  let o =
    Eval.run_exn
      (parse_ok
         {|
score(@a, 3). score(@a, 7). score(@a, 5). score(@b, 2).
best(@X, min<S>) :- score(@X, S).
worst(@X, max<S>) :- score(@X, S).
n(@X, count<S>) :- score(@X, S).
total(@X, sum<S>) :- score(@X, S).
|})
  in
  let get pred who =
    Store.tuples pred o.Eval.db
    |> List.find (fun t -> V.equal t.(0) (V.Addr who))
    |> fun t -> V.as_int t.(1)
  in
  checki "min a" 3 (get "best" "a");
  checki "max a" 7 (get "worst" "a");
  checki "count a" 3 (get "n" "a");
  checki "sum a" 15 (get "total" "a");
  checki "min b" 2 (get "best" "b")

let test_eval_assign_checks () =
  (* An assignment to an already-bound variable acts as a filter. *)
  let o =
    Eval.run_exn
      (parse_ok
         {|
pair(@a, 1, 1). pair(@a, 1, 2).
eq(@X, A) :- pair(@X, A, B), A = B.
|})
  in
  checki "only the equal pair" 1 (Store.cardinal "eq" o.Eval.db)

(* Reference shortest-path (Dijkstra-free: Bellman-Ford) for comparison. *)
let reference_distances links n =
  let inf = max_int / 4 in
  let dist = Array.make_matrix n n inf in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0
  done;
  List.iter
    (fun (f : Ast.fact) ->
      match f.Ast.fact_args with
      | [ s; d; c ] ->
        let parse a = int_of_string (String.sub (V.as_addr a) 1 100000) in
        let parse a =
          ignore parse;
          let s = V.as_addr a in
          int_of_string (String.sub s 1 (String.length s - 1))
        in
        let i = parse s and j = parse d in
        dist.(i).(j) <- min dist.(i).(j) (V.as_int c)
      | _ -> ())
    links;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if dist.(i).(k) + dist.(k).(j) < dist.(i).(j) then
          dist.(i).(j) <- dist.(i).(k) + dist.(k).(j)
      done
    done
  done;
  dist

let prop_best_path_matches_floyd_warshall =
  QCheck.Test.make ~name:"bestPathCost agrees with Floyd-Warshall"
    ~count:20
    QCheck.(pair (int_range 3 7) (int_range 0 3))
    (fun (n, extra) ->
      let links = Programs.random_links ~seed:(n + (extra * 100)) ~extra n in
      let p = Programs.with_links (Programs.path_vector ()) links in
      let o = Eval.run_exn p in
      let dist = reference_distances links n in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            let got =
              best_path_cost o.Eval.db (Programs.node i) (Programs.node j)
            in
            let expected =
              if dist.(i).(j) >= max_int / 4 then None else Some dist.(i).(j)
            in
            if got <> expected then ok := false
          end
        done
      done;
      !ok)

let prop_naive_equals_seminaive =
  QCheck.Test.make ~name:"naive and semi-naive agree on reachability"
    ~count:30
    QCheck.(pair (int_range 2 8) (int_range 0 4))
    (fun (n, extra) ->
      let links = Programs.random_links ~seed:(13 * n + extra) ~extra n in
      let p = Programs.with_links (Programs.reachability ()) links in
      let info = Analysis.analyze_exn p in
      let db = Store.of_facts p.Ast.facts in
      let a = Eval.seminaive p info db in
      let b = Eval.naive p info db in
      Store.equal a.Eval.db b.Eval.db)

(* ------------------------------------------------------------------ *)
(* Link-state routing. *)

let ls_cost db n d =
  Store.tuples "lsCost" db
  |> List.find_opt (fun t ->
         V.equal t.(0) (V.Addr n) && V.equal t.(1) (V.Addr d))
  |> Option.map (fun t -> V.as_int t.(2))

let test_link_state_floods_everywhere () =
  let n = 5 in
  let p =
    Programs.with_links (Programs.link_state ~max_hops:n)
      (Programs.ring_links n)
  in
  let o = Eval.run_exn p in
  checkb "converged" true o.Eval.converged;
  (* every node holds every directed link in its map: n nodes x 2n links *)
  checki "full maps" (n * 2 * n) (Store.cardinal "lsa" o.Eval.db)

let test_link_state_routes () =
  let p =
    Programs.with_links (Programs.link_state ~max_hops:6)
      (Programs.ring_links ~cost:(fun i -> 1 + (i mod 3)) 6)
  in
  let o = Eval.run_exn p in
  checkb "converged" true o.Eval.converged;
  checkb "has routes" true (ls_cost o.Eval.db "n0" "n3" <> None)

let test_link_state_equals_path_vector () =
  (* The two protocols compute the same best costs: a cross-protocol
     consistency check FVN-style verification enables. *)
  List.iter
    (fun seed ->
      let n = 5 in
      let links = Programs.random_links ~seed ~extra:2 n in
      let ls =
        Eval.run_exn (Programs.with_links (Programs.link_state ~max_hops:n) links)
      in
      let pv =
        Eval.run_exn (Programs.with_links (Programs.path_vector ()) links)
      in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then
            checkb
              (Printf.sprintf "seed %d: n%d->n%d agree" seed i j)
              true
              (ls_cost ls.Eval.db (Programs.node i) (Programs.node j)
              = best_path_cost pv.Eval.db (Programs.node i) (Programs.node j))
        done
      done)
    [ 2; 13; 29 ]

let test_link_state_distributed () =
  let links = Programs.ring_links 4 in
  let p = Programs.with_links (Programs.link_state ~max_hops:4) links in
  (* already localized: no rewrite required *)
  (match Localize.check_localized p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "should be localized: %a" Localize.pp_error e);
  let central = Eval.run_exn p in
  let topo = Netsim.Topology.ring 4 in
  let rt = Dist.Runtime.create topo p in
  Dist.Runtime.load_facts rt;
  let report = Dist.Runtime.run rt in
  checkb "quiesced" true report.Dist.Runtime.stats.Netsim.Sim.quiesced;
  checkb "lsCost agrees" true
    (Store.Tset.equal
       (Store.relation "lsCost" central.Eval.db)
       (Store.relation "lsCost" (Dist.Runtime.global_store rt)))

(* ------------------------------------------------------------------ *)
(* Store. *)

let test_store_ops () =
  let db = Store.empty in
  let t1 = tuple [ V.Int 1; V.Int 2 ] in
  let t2 = tuple [ V.Int 1; V.Int 3 ] in
  let db = Store.add "p" t1 db in
  let db = Store.add "p" t1 db in
  checki "set semantics" 1 (Store.cardinal "p" db);
  let db = Store.add "p" t2 db in
  checki "two tuples" 2 (Store.cardinal "p" db);
  let db' = Store.remove "p" t1 db in
  checkb "mem after remove" false (Store.mem "p" t1 db');
  checkb "other survives" true (Store.mem "p" t2 db');
  let d = Store.diff db db' in
  checki "diff has 1" 1 (Store.total_tuples d)

let test_store_union_diff () =
  let t i = tuple [ V.Int i ] in
  let a = Store.add_list "p" [ t 1; t 2 ] Store.empty in
  let b = Store.add_list "p" [ t 2; t 3 ] Store.empty in
  let u = Store.union a b in
  checki "union 3" 3 (Store.cardinal "p" u);
  let d = Store.diff b a in
  checki "diff 1" 1 (Store.cardinal "p" d);
  checkb "diff content" true (Store.mem "p" (t 3) d)

let test_store_determinism () =
  let t i = tuple [ V.Int i ] in
  let a = Store.add_list "p" [ t 1; t 2; t 3 ] Store.empty in
  let b = Store.add_list "p" [ t 3; t 1; t 2 ] Store.empty in
  checkb "insertion order irrelevant" true (Store.equal a b);
  checki "same hash" (Store.hash a) (Store.hash b)

(* ------------------------------------------------------------------ *)
(* Secondary indexes and index-aware evaluation. *)

let test_store_lookup () =
  let t a b = tuple [ V.Addr a; V.Addr b ] in
  let db = Store.add_list "e" [ t "a" "b"; t "a" "c"; t "b" "c" ] Store.empty in
  checki "two from a" 2
    (Store.Tset.cardinal (Store.lookup "e" ~cols:[ 0 ] ~key:[ V.Addr "a" ] db));
  checki "exact match" 1
    (Store.Tset.cardinal
       (Store.lookup "e" ~cols:[ 0; 1 ] ~key:[ V.Addr "b"; V.Addr "c" ] db));
  checki "absent key" 0
    (Store.Tset.cardinal (Store.lookup "e" ~cols:[ 0 ] ~key:[ V.Addr "z" ] db));
  checki "absent predicate" 0
    (Store.Tset.cardinal (Store.lookup "x" ~cols:[ 0 ] ~key:[ V.Addr "a" ] db));
  (* both column sets are now materialized, and only those *)
  checki "two indexes cached" 2 (Store.index_count db);
  checkb "cols tracked" true (Store.indexed_cols "e" db = [ [ 0 ]; [ 0; 1 ] ]);
  (* a tuple too short for the indexed columns is simply never returned *)
  let db = Store.add "e" (tuple [ V.Addr "a" ]) db in
  checki "short tuple skipped" 2
    (Store.Tset.cardinal (Store.lookup "e" ~cols:[ 1 ] ~key:[ V.Addr "c" ] db))

let test_index_maintenance () =
  let t i j = tuple [ V.Int i; V.Int j ] in
  let lk db = Store.Tset.cardinal (Store.lookup "p" ~cols:[ 0 ] ~key:[ V.Int 1 ] db) in
  let db = Store.add_list "p" [ t 1 1; t 1 2; t 2 3 ] Store.empty in
  checki "materialize" 2 (lk db);
  (* add maintains the cached index... *)
  let db2 = Store.add "p" (t 1 9) db in
  checki "after add" 3 (lk db2);
  (* ...without disturbing the original persistent value *)
  checki "original intact" 2 (lk db);
  (* remove maintains *)
  let db3 = Store.remove "p" (t 1 2) db2 in
  checki "after remove" 2 (lk db3);
  checki "db2 intact" 3 (lk db2);
  (* union folds the right side through the left side's caches *)
  let right = Store.add "p" (t 1 7) Store.empty in
  let u = Store.union db2 right in
  checki "after union" 4 (lk u);
  (* set_relation patches the caches by the symmetric difference: the
     replaced relation keeps its warm index, and lookups stay exact *)
  let db4 = Store.set_relation "p" (Store.Tset.of_list [ t 1 5; t 2 6 ]) db3 in
  checki "caches kept" 1 (Store.index_count db4);
  checki "patched lookup" 1 (lk db4);
  (* a replacement that only adds is visible through the patched index *)
  let db5 =
    Store.set_relation "p" (Store.Tset.of_list [ t 1 5; t 1 8; t 2 6 ]) db4
  in
  checki "patched after grow" 2 (lk db5);
  (* replacing with the empty set still removes the relation *)
  let db6 = Store.set_relation "p" Store.Tset.empty db5 in
  checki "emptied" 0 (lk db6)

let test_index_canonicity () =
  (* Materialized indexes are invisible to equal/compare/hash: stores
     stay canonical model-checker states. *)
  let t i = tuple [ V.Int i ] in
  let a = Store.add_list "p" [ t 1; t 2 ] Store.empty in
  let b = Store.add_list "p" [ t 2; t 1 ] Store.empty in
  ignore (Store.lookup "p" ~cols:[ 0 ] ~key:[ V.Int 1 ] a);
  checkb "equal despite index" true (Store.equal a b);
  checki "compare zero" 0 (Store.compare a b);
  checki "same hash" (Store.hash a) (Store.hash b)

(* Run with the join optimizations on or off (off = the pre-index
   nested-loop engine: full scans, source-order bodies). *)
let run_with ~optimized p =
  Eval.use_indexes := optimized;
  Eval.use_reordering := optimized;
  Fun.protect
    ~finally:(fun () ->
      Eval.use_indexes := true;
      Eval.use_reordering := true)
    (fun () -> Eval.run_exn p)

let prop_indexed_equals_nested_loop =
  QCheck.Test.make
    ~name:"indexed evaluation = pre-index nested loop (fixpoint, rounds)"
    ~count:40
    QCheck.(triple (int_range 0 3) (int_range 2 7) (int_range 0 4))
    (fun (which, n, extra) ->
      let links =
        match which with
        | 0 | 1 -> Programs.random_links ~seed:((11 * n) + extra + which) ~extra n
        | 2 -> Programs.ring_links n
        | _ -> Programs.grid_links (2 + (n mod 2))
      in
      let prog =
        match which with
        | 0 -> Programs.path_vector ()
        | 1 -> Programs.reachability ()
        | 2 -> Programs.bounded_distance_vector ~max_hops:n
        | _ -> Programs.link_state ~max_hops:4
      in
      let p = Programs.with_links prog links in
      let a = run_with ~optimized:true p in
      let b = run_with ~optimized:false p in
      Store.equal a.Eval.db b.Eval.db
      && a.Eval.rounds = b.Eval.rounds
      && a.Eval.converged = b.Eval.converged
      && a.Eval.derivations = b.Eval.derivations)

let test_order_body_most_bound_first () =
  let p = parse_ok {| h(@X,Z) :- big(@X,Y), small(@Y,Z), Y > 0. |} in
  let body = (List.hd p.Ast.rules).Ast.body in
  let card = function "big" -> 100 | _ -> 2 in
  (match Eval.order_body ~card body with
  | [ Ast.Pos a; Ast.Cond _; Ast.Pos b ] ->
    checks "cheapest relation first" "small" a.Ast.pred;
    checks "expensive one last" "big" b.Ast.pred
  | _ -> Alcotest.fail "unexpected ordering");
  (* the filter never runs before its variable is bound *)
  (match Eval.order_body body with
  | Ast.Cond _ :: _ -> Alcotest.fail "comparison scheduled before Y is bound"
  | _ -> ());
  (* seeding the bound set changes the ranking *)
  (match
     Eval.order_body ~card
       ~bound:(Ast.Sset.of_list [ "Y"; "Z" ])
       [ List.nth body 0; List.nth body 2 ]
   with
  | [ Ast.Cond _; Ast.Pos _ ] -> ()
  | _ -> Alcotest.fail "filter should run first once Y is bound");
  (* switched off, the body is untouched *)
  Eval.use_reordering := false;
  let id = Eval.order_body ~card body == body in
  Eval.use_reordering := true;
  checkb "identity when disabled" true id

let test_eval_stats_counted () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let st = (Eval.run_exn p).Eval.stats in
  checkb "index hits counted" true (st.Eval.index_hits > 0);
  checkb "scans counted" true (st.Eval.scans > 0);
  checkb "matched within enumerated" true (st.Eval.matched <= st.Eval.enumerated);
  (* with the index layer off, every join is a scan *)
  Eval.use_indexes := false;
  let off = (Eval.run_exn p).Eval.stats in
  Eval.use_indexes := true;
  checki "no hits when disabled" 0 off.Eval.index_hits;
  checkb "strictly more tuples visited" true (off.Eval.enumerated > st.Eval.enumerated)

let test_eval_stats_per_run () =
  (* Per-run isolation: two identical runs report identical counters
     (no global state to bleed between them), and a caller-supplied
     accumulator collects their sum. *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let acc = Eval.counters () in
  let info = Analysis.analyze_exn p in
  let db = Store.of_facts p.Ast.facts in
  let a = Eval.seminaive ~stats:acc p info db in
  let b = Eval.seminaive ~stats:acc p info db in
  checkb "identical runs, identical stats" true (a.Eval.stats = b.Eval.stats);
  checkb "accumulator sums runs" true
    (Eval.snapshot acc = Eval.add_stats a.Eval.stats b.Eval.stats)

(* ------------------------------------------------------------------ *)
(* Localization. *)

let test_localize_path_vector () =
  let p = Programs.path_vector () in
  match Localize.rewrite_program p with
  | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e
  | Ok { program; relocations } ->
    checki "one relocation" 1 (List.length relocations);
    (match relocations with
    | [ ("link", 0, 1) ] -> ()
    | _ -> Alcotest.fail "expected link relocated from index 0 to 1");
    (match Localize.check_localized program with
    | Ok () -> ()
    | Error e -> Alcotest.failf "not localized: %a" Localize.pp_error e)

let test_localize_preserves_semantics () =
  let links = Programs.random_links ~seed:3 ~extra:2 6 in
  let orig = Programs.with_links (Programs.path_vector ()) links in
  let loc =
    match Localize.rewrite_program orig with
    | Ok r -> r.Localize.program
    | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e
  in
  let a = Eval.run_exn orig and b = Eval.run_exn loc in
  checkb "bestPath unchanged" true
    (Store.Tset.equal
       (Store.relation "bestPath" a.Eval.db)
       (Store.relation "bestPath" b.Eval.db));
  checkb "path unchanged" true
    (Store.Tset.equal
       (Store.relation "path" a.Eval.db)
       (Store.relation "path" b.Eval.db))

let test_localize_idempotent_on_local () =
  let p = parse_ok {| p(@X,Y) :- q(@X,Y), r(@X). |} in
  match Localize.rewrite_program p with
  | Ok { relocations; _ } -> checki "no relocations" 0 (List.length relocations)
  | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e

(* ------------------------------------------------------------------ *)
(* Soft state. *)

let test_expiry_table () =
  let decls = [ Ast.decl ~lifetime:(Ast.Lifetime 5.0) "ping" ] in
  let e = Softstate.Expiry.create decls in
  checkb "ping is soft" true (Softstate.Expiry.is_soft e "ping");
  checkb "link is hard" false (Softstate.Expiry.is_soft e "link");
  let t = tuple [ V.Addr "a" ] in
  let e = Softstate.Expiry.insert e ~now:0.0 "ping" t in
  let dead, e = Softstate.Expiry.expired e ~now:3.0 in
  checki "nothing dead yet" 0 (List.length dead);
  (* refresh at t=4 extends the lease *)
  let e = Softstate.Expiry.insert e ~now:4.0 "ping" t in
  let dead, e = Softstate.Expiry.expired e ~now:6.0 in
  checki "still alive after refresh" 0 (List.length dead);
  let dead, _ = Softstate.Expiry.expired e ~now:9.5 in
  checki "expired eventually" 1 (List.length dead)

let test_hard_state_rewrite_runs () =
  let p =
    Programs.with_links (Programs.heartbeat ~lifetime:10) (Programs.line_links 2)
  in
  let report = Softstate.to_hard_state p in
  checkb "ping is soft" true (List.mem "ping" report.Softstate.soft_preds);
  checkb "columns added" true (report.Softstate.added_columns > 0);
  (* At clock 5 the hearbeats inserted at 0 are alive. *)
  (match Softstate.run_at_clock report.Softstate.rewritten ~now:5 with
  | Ok o ->
    checkb "alive at 5" true (Store.cardinal "aliveNeighbor" o.Eval.db > 0)
  | Error e -> Alcotest.failf "eval failed: %a" Analysis.pp_error e);
  ()

let test_hard_state_rewrite_expires () =
  (* Freeze the base facts' timestamps and advance the clock past the
     lifetime: derived soft tuples must disappear. *)
  let p =
    {
      (Programs.heartbeat ~lifetime:10) with
      Ast.facts = Programs.line_links 2;
      rules =
        (* only keep h2, and make ping a base soft relation *)
        List.filter
          (fun (r : Ast.rule) -> r.Ast.rule_name = Some "h2")
          (Programs.heartbeat ~lifetime:10).Ast.rules;
    }
  in
  let p =
    {
      p with
      Ast.facts =
        p.Ast.facts
        @ [
            {
              Ast.fact_pred = "ping";
              fact_loc = Some 0;
              fact_args = [ V.Addr "n1"; V.Addr "n0" ];
            };
          ];
    }
  in
  let report = Softstate.to_hard_state p in
  (match Softstate.run_at_clock report.Softstate.rewritten ~now:5 with
  | Ok o -> checkb "alive at 5" true (Store.cardinal "aliveNeighbor" o.Eval.db > 0)
  | Error e -> Alcotest.failf "eval failed: %a" Analysis.pp_error e);
  match Softstate.run_at_clock report.Softstate.rewritten ~now:50 with
  | Ok o -> checki "expired at 50" 0 (Store.cardinal "aliveNeighbor" o.Eval.db)
  | Error e -> Alcotest.failf "eval failed: %a" Analysis.pp_error e

let test_fractional_lifetime_guard () =
  (* materialize(obs, 2.5): the rewrite's integer liveness guard must
     agree with Expiry's float deadline at every integer clock value.
     Truncating the lifetime (the old [int_of_float]) kills the tuple
     at clock 2, where the 2.5-second lease is still live. *)
  let decls =
    [
      Ast.decl ~lifetime:(Ast.Lifetime 2.5) "obs";
      Ast.decl "probe";
      Ast.decl "quiet";
    ]
  in
  let rule =
    Ast.rule ~name:"q1"
      {
        Ast.head_pred = "quiet";
        head_loc = None;
        head_args = [ Ast.Plain (Ast.Var "X") ];
      }
      [
        Ast.Pos { Ast.pred = "probe"; loc = None; args = [ Ast.Var "X" ] };
        Ast.Neg { Ast.pred = "obs"; loc = None; args = [ Ast.Var "X" ] };
      ]
  in
  let p =
    {
      Ast.decls;
      facts =
        [ Ast.fact "probe" [ V.Addr "a" ]; Ast.fact "obs" [ V.Addr "a" ] ];
      rules = [ rule ];
    }
  in
  let report = Softstate.to_hard_state p in
  let tup = tuple [ V.Addr "a" ] in
  let expiry =
    Softstate.Expiry.insert (Softstate.Expiry.create decls) ~now:0.0 "obs" tup
  in
  let db0 = Store.add "obs" tup Store.empty in
  List.iter
    (fun now ->
      let swept, _ =
        Softstate.Expiry.sweep expiry ~now:(float_of_int now) db0
      in
      let live_expiry = Store.cardinal "obs" swept > 0 in
      match Softstate.run_at_clock report.Softstate.rewritten ~now with
      | Ok o ->
        let live_rewrite = Store.cardinal "obs_live" o.Eval.db > 0 in
        checkb
          (Printf.sprintf "liveness agrees at clock %d" now)
          live_expiry live_rewrite;
        (* the negation downstream flips in the same instant *)
        checki
          (Printf.sprintf "quiet tracks expiry at clock %d" now)
          (if live_expiry then 0 else 1)
          (Store.cardinal "quiet" o.Eval.db)
      | Error e -> Alcotest.failf "eval failed: %a" Analysis.pp_error e)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Plans (rule strands). *)

module Plan = Ndlog.Plan

let test_plan_shapes () =
  let p = Programs.path_vector () in
  let r2 = List.nth p.Ast.rules 1 in
  let s = Plan.compile_strand r2 ~delta:1 in
  checkb "delta pred is path" true (s.Plan.delta_pred = Some "path");
  (* delta -> join(link) -> bind(C) -> bind(P) -> filter -> project *)
  (match s.Plan.ops with
  | Plan.Delta { pred = "path"; _ }
    :: Plan.Join { pred = "link"; _ }
    :: _ -> ()
  | _ -> Alcotest.fail "unexpected strand shape");
  checkb "ends with project" true
    (match List.rev s.Plan.ops with
    | Plan.Project h :: _ -> h.Ast.head_pred = "path"
    | _ -> false)

let test_plan_scan_equals_eval () =
  (* A full-scan strand produces the same heads as direct body
     evaluation. *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 3) in
  let o = Eval.run_exn p in
  let db = o.Eval.db in
  let r2 = List.nth p.Ast.rules 1 in
  let strand = Plan.compile_scan r2 in
  let via_plan =
    Plan.execute db strand |> List.sort_uniq Store.Tuple.compare
  in
  let via_eval =
    Eval.body_envs db r2.Ast.body
    |> List.map (fun env -> Eval.head_tuple env r2.Ast.head)
    |> List.sort_uniq Store.Tuple.compare
  in
  checkb "same derivations" true (via_plan = via_eval)

let test_plan_delta_equals_eval () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let o = Eval.run_exn p in
  let db = o.Eval.db in
  let r2 = List.nth p.Ast.rules 1 in
  let strand = Plan.compile_strand r2 ~delta:1 in
  (* for every path tuple as delta, plan output = eval-with-delta *)
  List.iter
    (fun t ->
      let via_plan =
        Plan.execute db ~delta_tuple:t strand
        |> List.sort_uniq Store.Tuple.compare
      in
      let via_eval =
        Eval.body_envs db ~delta:(1, Store.Tset.singleton t) r2.Ast.body
        |> List.map (fun env -> Eval.head_tuple env r2.Ast.head)
        |> List.sort_uniq Store.Tuple.compare
      in
      checkb "delta strand agrees" true (via_plan = via_eval))
    (Store.tuples "path" db)

let test_plan_program_strands () =
  let p = Programs.path_vector () in
  let strands = Plan.compile_program p in
  (* r1 has one positive atom, r2 two, r4 two; r3 is an aggregate *)
  checki "five strands" 5 (List.length strands);
  List.iter
    (fun s ->
      checkb "printable" true (String.length (Fmt.str "%a" Plan.pp s) > 0))
    strands

let test_plan_negation () =
  let p =
    parse_ok
      {|
link(@a, b, 1). node(@a). node(@b).
sink(@X) :- node(@X), !hasout(@X).
hasout(@X) :- link(@X,Y,C).
|}
  in
  let o = Eval.run_exn p in
  let sink_rule = List.hd p.Ast.rules in
  let strand = Plan.compile_scan sink_rule in
  let out = Plan.execute o.Eval.db strand in
  checki "one sink" 1 (List.length out);
  checkb "sink is b" true (V.equal (List.hd out).(0) (V.Addr "b"))

let test_plan_rejects_aggregates () =
  let p = Programs.path_vector () in
  let r3 = List.nth p.Ast.rules 2 in
  match Plan.compile_scan r3 with
  | exception Plan.Plan_error _ -> ()
  | _ -> Alcotest.fail "aggregate rule must be rejected"

let prop_strands_cover_seminaive =
  (* Union of all delta-strand outputs over the fixpoint's tuples
     re-derives every derived path tuple (closure property). *)
  QCheck.Test.make ~name:"strands re-derive the fixpoint" ~count:10
    (QCheck.int_range 3 6)
    (fun n ->
      let p =
        Programs.with_links (Programs.reachability ()) (Programs.ring_links n)
      in
      let o = Eval.run_exn p in
      let db = o.Eval.db in
      let strands = Plan.compile_program p in
      let derived =
        List.concat_map
          (fun (s : Plan.strand) ->
            match s.Plan.delta_pred with
            | Some pred ->
              List.concat_map
                (fun t -> Plan.execute db ~delta_tuple:t s)
                (Store.tuples pred db)
            | None -> [])
          strands
        |> List.sort_uniq Store.Tuple.compare
      in
      (* every reachable tuple not coming directly from rc1's link scan
         appears among strand outputs; and conversely strands only
         derive fixpoint tuples *)
      List.for_all (fun t -> Store.mem "reachable" t db) derived
      && List.for_all
           (fun t -> List.exists (Store.Tuple.equal t) derived)
           (Store.tuples "reachable" db))

(* ------------------------------------------------------------------ *)
(* Provenance. *)

module Provenance = Ndlog.Provenance

let fixpoint_of p =
  let o = Eval.run_exn p in
  o.Eval.db

let test_provenance_fact () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 3) in
  let db = fixpoint_of p in
  let t = Array.of_list [ V.Addr "n0"; V.Addr "n1"; V.Int 1 ] in
  match Provenance.explain p db "link" t with
  | Ok (Provenance.Fact ("link", t')) ->
    checkb "same tuple" true (Store.Tuple.equal t t')
  | Ok _ -> Alcotest.fail "expected a base fact"
  | Error e -> Alcotest.fail e

let test_provenance_recursive_path () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 4) in
  let db = fixpoint_of p in
  (* the three-hop path n0 -> n3 *)
  let t =
    Array.of_list
      [
        V.Addr "n0"; V.Addr "n3";
        V.List [ V.Addr "n0"; V.Addr "n1"; V.Addr "n2"; V.Addr "n3" ];
        V.Int 3;
      ]
  in
  match Provenance.explain p db "path" t with
  | Error e -> Alcotest.fail e
  | Ok d ->
    checkb "validates" true (Provenance.validate (Provenance.make_config p db) d);
    (* depth: r2(r2(r1)) over three links -> at least 3 rule steps *)
    checkb "deep enough" true (Provenance.depth d >= 3);
    (match d with
    | Provenance.Step s ->
      checkb "top rule is r2" true (s.Provenance.rule.Ast.rule_name = Some "r2")
    | Provenance.Fact _ -> Alcotest.fail "path is not a fact")

let test_provenance_aggregate () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 3) in
  let db = fixpoint_of p in
  let t = Array.of_list [ V.Addr "n0"; V.Addr "n2"; V.Int 2 ] in
  match Provenance.explain p db "bestPathCost" t with
  | Error e -> Alcotest.fail e
  | Ok (Provenance.Step s) ->
    checkb "aggregate rule r3" true (s.Provenance.rule.Ast.rule_name = Some "r3");
    (* the witness premise is the cost-2 path *)
    checkb "witness premise" true
      (List.exists
         (fun d ->
           let pr, tu = Provenance.conclusion d in
           pr = "path" && V.equal tu.(3) (V.Int 2))
         s.Provenance.premises)
  | Ok (Provenance.Fact _) -> Alcotest.fail "aggregates are not facts"

let test_provenance_absent_tuple () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.line_links 3) in
  let db = fixpoint_of p in
  let bogus = Array.of_list [ V.Addr "n0"; V.Addr "n9"; V.Int 1 ] in
  match Provenance.explain p db "link" bogus with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "explained a tuple not in the database"

let test_provenance_negation_recorded () =
  let p =
    parse_ok
      {|
link(@a, b, 1).
node(@a). node(@b).
sink(@X) :- node(@X), !hasout(@X).
hasout(@X) :- link(@X,Y,C).
|}
  in
  let db = fixpoint_of p in
  let t = Array.of_list [ V.Addr "b" ] in
  match Provenance.explain p db "sink" t with
  | Error e -> Alcotest.fail e
  | Ok (Provenance.Step s) ->
    checkb "negative check recorded" true
      (List.exists (fun (pr, _) -> pr = "hasout") s.Provenance.neg_checks)
  | Ok (Provenance.Fact _) -> Alcotest.fail "sink is derived"

let prop_every_tuple_explainable =
  QCheck.Test.make ~name:"every fixpoint tuple has a valid derivation"
    ~count:15
    QCheck.(pair (int_range 3 6) (int_range 0 2))
    (fun (n, extra) ->
      let p =
        Programs.with_links (Programs.reachability ())
          (Programs.random_links ~seed:(n + (7 * extra)) ~extra n)
      in
      let db = fixpoint_of p in
      let cfg = Provenance.make_config p db in
      Store.tuples "reachable" db
      |> List.for_all (fun t ->
             match Provenance.explain ~config:cfg p db "reachable" t with
             | Ok d -> Provenance.validate cfg d
             | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Sharded evaluation. *)

module Shard = Ndlog.Shard
module Pool = Ndlog.Pool

(* A localized program over the given links; sharded evaluation targets
   exactly the output of the localization rewrite. *)
let localized_program prog links =
  let p = Programs.with_links prog links in
  match Localize.rewrite_program p with
  | Ok r -> r.Localize.program
  | Error e -> Alcotest.failf "localization failed: %a" Localize.pp_error e

let test_shard_partition_roundtrip () =
  let p = localized_program (Programs.path_vector ()) (Programs.ring_links 5) in
  let plan =
    match Shard.analyze p with
    | Ok plan -> plan
    | Error e -> Alcotest.failf "localized path-vector must shard: %s" e
  in
  let db = (Eval.run_exn p).Eval.db in
  let parts, repl = Shard.partition plan db in
  checki "one shard per node" 5 (Array.length parts);
  checkb "links are located, not replicated" true
    (Store.cardinal "link" repl = 0);
  checkb "roundtrip" true (Store.equal (Shard.merge parts repl) db);
  (* Parts are disjoint: located tuples live in exactly one shard. *)
  let total =
    Array.fold_left (fun n (_, s) -> n + Store.total_tuples s) 0 parts
  in
  checki "no tuple duplicated across shards"
    (Store.total_tuples db)
    (total + Store.total_tuples repl)

let test_shard_analyze_rejects () =
  let reject src reason =
    match Parser.parse_program src with
    | Error e -> Alcotest.failf "parse: %s" e
    | Ok p -> (
      match Shard.analyze p with
      | Ok _ -> Alcotest.failf "expected rejection (%s)" reason
      | Error _ -> ())
  in
  (* A constant location in a body would read a foreign shard. *)
  reject {| p(@X,Y) :- q(@"n0",Y), r(@X,Y). |} "constant body location";
  (* A body spanning two locations. *)
  reject {| p(@X,Y) :- q(@X,Y), r(@Y,X). |} "two locations";
  (* An aggregate not grouped by the location variable would emit
     per-shard partial aggregates. *)
  reject {| total(count<Y>) :- q(@X,Y). |} "aggregate ungrouped by location";
  (* Inconsistent location columns for one predicate. *)
  reject {| p(@X,Y) :- q(@X,Y). p(X,@Y) :- r(@Y,X). |} "inconsistent columns"

let test_pool_map_array () =
  Pool.with_pool ~domains:4 (fun pool ->
      checki "pool size" 4 (Pool.size pool);
      let xs = Array.init 100 Fun.id in
      let ys = Pool.map_array pool (fun x -> x * x) xs in
      checkb "map over the pool" true
        (Array.for_all2 (fun y x -> y = x * x) ys xs);
      (* A raising task surfaces in the caller; the pool survives. *)
      (match Pool.map_array pool (fun x -> if x = 3 then failwith "boom" else x) xs with
      | exception Failure m -> checks "first error re-raised" "boom" m
      | _ -> Alcotest.fail "expected the task failure to re-raise");
      let zs = Pool.map_array pool (fun x -> x + 1) xs in
      checkb "pool usable after a failed batch" true
        (Array.for_all2 (fun z x -> z = x + 1) zs xs));
  (* domains:1 is the sequential degenerate case. *)
  Pool.with_pool ~domains:1 (fun pool ->
      checki "sequential pool" 1 (Pool.size pool);
      checkb "sequential map" true
        (Pool.map_array pool succ [| 1; 2; 3 |] = [| 2; 3; 4 |]))

let test_sharded_ring () =
  let p = localized_program (Programs.path_vector ()) (Programs.ring_links 6) in
  (match Shard.analyze p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "localized path-vector must shard: %s" e);
  let info = Analysis.analyze_exn p in
  let db = Store.of_facts p.Ast.facts in
  let central = Eval.seminaive p info db in
  let sharded = Eval.seminaive_sharded ~domains:2 p info db in
  checkb "same fixpoint" true (Store.equal central.Eval.db sharded.Eval.db);
  checkb "converged" true (central.Eval.converged && sharded.Eval.converged);
  checkb "sharded did real work" true (sharded.Eval.derivations > 0)

let test_sharded_fallback () =
  (* A program Shard.analyze rejects falls back to the centralized
     engine: identical outcome, including the round accounting. *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let info = Analysis.analyze_exn p in
  let db = Store.of_facts p.Ast.facts in
  match Shard.analyze p with
  | Ok _ -> Alcotest.fail "unlocalized path-vector should not shard"
  | Error _ ->
    let central = Eval.seminaive p info db in
    let sharded = Eval.seminaive_sharded ~domains:4 p info db in
    checkb "fallback outcome identical" true
      (Store.equal central.Eval.db sharded.Eval.db
      && central.Eval.rounds = sharded.Eval.rounds
      && central.Eval.derivations = sharded.Eval.derivations
      && central.Eval.stats = sharded.Eval.stats)

let prop_sharded_equals_seminaive =
  QCheck.Test.make
    ~name:"sharded = centralized (fixpoint, convergence); deterministic in domains"
    ~count:25
    QCheck.(triple (int_range 0 2) (int_range 3 7) (int_range 0 3))
    (fun (which, n, extra) ->
      let links =
        match which with
        | 0 -> Programs.random_links ~seed:((17 * n) + extra + which) ~extra n
        | 1 -> Programs.ring_links n
        | _ -> Programs.grid_links (2 + (n mod 2))
      in
      let prog =
        match which with
        | 0 -> Programs.path_vector ()
        | 1 -> Programs.reachability ()
        | _ -> Programs.bounded_distance_vector ~max_hops:n
      in
      let p = localized_program prog links in
      (* The rewrite output must actually shard — otherwise this
         property would silently test the fallback path. *)
      (match Shard.analyze p with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_reportf "localized program must shard: %s" e);
      let info = Analysis.analyze_exn p in
      let db = Store.of_facts p.Ast.facts in
      let central = Eval.seminaive p info db in
      let s1 = Eval.seminaive_sharded ~domains:1 p info db in
      let s2 = Eval.seminaive_sharded ~domains:2 p info db in
      let s4 = Eval.seminaive_sharded ~domains:4 p info db in
      let same_outcome a b =
        Store.equal a.Eval.db b.Eval.db
        && a.Eval.rounds = b.Eval.rounds
        && a.Eval.derivations = b.Eval.derivations
        && a.Eval.converged = b.Eval.converged
        && a.Eval.stats = b.Eval.stats
      in
      Store.equal central.Eval.db s2.Eval.db
      && central.Eval.converged = s2.Eval.converged
      && same_outcome s1 s2 && same_outcome s2 s4)

(* ------------------------------------------------------------------ *)
(* Batched delta joins. *)

(* Run with the batched delta join on or off (off = one environment
   seeded per delta tuple, the PR 1 engine). *)
let run_batched ~batched p =
  Eval.use_batching := batched;
  Fun.protect
    ~finally:(fun () -> Eval.use_batching := true)
    (fun () -> Eval.run_exn p)

let prop_batched_equals_per_tuple =
  QCheck.Test.make
    ~name:
      "batched delta join = per-tuple semi-naive (fixpoint, rounds, \
       derivations)"
    ~count:40
    QCheck.(triple (int_range 0 3) (int_range 2 7) (int_range 0 4))
    (fun (which, n, extra) ->
      let links =
        match which with
        | 0 | 1 -> Programs.random_links ~seed:((13 * n) + extra + which) ~extra n
        | 2 -> Programs.ring_links n
        | _ -> Programs.grid_links (2 + (n mod 2))
      in
      let prog =
        match which with
        | 0 -> Programs.path_vector ()
        | 1 -> Programs.reachability ()
        | 2 -> Programs.bounded_distance_vector ~max_hops:n
        | _ -> Programs.link_state ~max_hops:4
      in
      let p = Programs.with_links prog links in
      let a = run_batched ~batched:true p in
      let b = run_batched ~batched:false p in
      Store.equal a.Eval.db b.Eval.db
      && a.Eval.rounds = b.Eval.rounds
      && a.Eval.converged = b.Eval.converged
      && a.Eval.derivations = b.Eval.derivations)

let test_group_formation () =
  (* r(@X,Z) :- e(@X,Y), f(@Y,Z) with e as the delta: the rest reads Y,
     so the delta groups by its Y column. *)
  let p = parse_ok {| r(@X,Z) :- e(@X,Y), f(@Y,Z). |} in
  let r = List.hd p.Ast.rules in
  let delta_atom =
    match List.hd r.Ast.body with Ast.Pos a -> a | _ -> assert false
  in
  let rest = List.tl r.Ast.body in
  let t a b = tuple [ V.Addr a; V.Addr b ] in
  let db = Store.add_list "f" [ t "y" "z1"; t "y" "z2" ] Store.empty in
  let probe delta =
    let st = Eval.counters () in
    let envs = Eval.delta_envs ~stats:st db ~delta:(delta_atom, delta) ~rest in
    (List.length envs, Eval.snapshot st)
  in
  (* empty delta: the probe happens, but no group forms *)
  let n, st = probe Store.empty in
  checki "empty delta: no envs" 0 n;
  checki "empty delta: no groups" 0 st.Eval.groups;
  checki "empty delta: one probe" 1 st.Eval.group_probes;
  (* singleton delta: exactly one group *)
  let n, st = probe (Store.add "e" (t "x" "y") Store.empty) in
  checki "singleton delta: both f rows join" 2 n;
  checki "singleton delta: one group" 1 st.Eval.groups;
  (* two delta tuples sharing the join key fall into one group *)
  let n, st = probe (Store.add_list "e" [ t "x1" "y"; t "x2" "y" ] Store.empty) in
  checki "shared key: four envs" 4 n;
  checki "shared key: still one group" 1 st.Eval.groups;
  (* distinct keys split *)
  let n, st = probe (Store.add_list "e" [ t "x1" "y"; t "x2" "w" ] Store.empty) in
  checki "distinct keys: only y joins" 2 n;
  checki "distinct keys: two groups" 2 st.Eval.groups

let test_batched_stats_counted () =
  let p =
    Programs.with_links (Programs.reachability ()) (Programs.grid_links 4)
  in
  let on = run_batched ~batched:true p in
  let off = run_batched ~batched:false p in
  checkb "same fixpoint" true (Store.equal on.Eval.db off.Eval.db);
  checki "same derivations" off.Eval.derivations on.Eval.derivations;
  checkb "groups counted" true (on.Eval.stats.Eval.groups > 0);
  checkb "group probes counted" true (on.Eval.stats.Eval.group_probes > 0);
  checki "no groups when off" 0 off.Eval.stats.Eval.groups;
  checki "no group probes when off" 0 off.Eval.stats.Eval.group_probes;
  checkb "batching enumerates fewer tuples" true
    (on.Eval.stats.Eval.enumerated < off.Eval.stats.Eval.enumerated);
  (* the path-vector body (assignments, a negation, a builtin) exercises
     the shared/per-tuple split the same way *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 6) in
  let on = run_batched ~batched:true p in
  let off = run_batched ~batched:false p in
  checkb "path-vector fixpoint" true (Store.equal on.Eval.db off.Eval.db);
  checki "path-vector derivations" off.Eval.derivations on.Eval.derivations;
  checkb "path-vector enumerates fewer" true
    (on.Eval.stats.Eval.enumerated < off.Eval.stats.Eval.enumerated)

let test_execute_batch () =
  (* The batched strand executor = per-tuple strand execution over the
     same delta set (as a multiset of heads). *)
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let o = Eval.run_exn p in
  let db = o.Eval.db in
  let r2 = List.nth p.Ast.rules 1 in
  let strand = Plan.compile_strand r2 ~delta:1 in
  let deltas = Store.tuples "path" db in
  let via_batch =
    Plan.execute_batch db ~delta_tuples:deltas strand
    |> List.sort Store.Tuple.compare
  in
  let via_single =
    List.concat_map (fun t -> Plan.execute db ~delta_tuple:t strand) deltas
    |> List.sort Store.Tuple.compare
  in
  checkb "batch = per-tuple strand heads" true (via_batch = via_single);
  checki "empty batch" 0
    (List.length (Plan.execute_batch db ~delta_tuples:[] strand));
  (* full-scan strands have no delta position *)
  (match
     Plan.execute_batch db ~delta_tuples:deltas (Plan.compile_scan r2)
   with
  | exception Plan.Plan_error _ -> ()
  | _ -> Alcotest.fail "scan strand must reject a batch")

let test_sharded_batched_domains () =
  (* The sharded evaluator batches inside each shard: at domains 1/2/4
     the batched outcome matches per-tuple sharding and stays
     domain-count deterministic. *)
  let p = localized_program (Programs.reachability ()) (Programs.grid_links 3) in
  (match Shard.analyze p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "localized program must shard: %s" e);
  let info = Analysis.analyze_exn p in
  let db = Store.of_facts p.Ast.facts in
  let run ~batched ~domains =
    Eval.use_batching := batched;
    Fun.protect
      ~finally:(fun () -> Eval.use_batching := true)
      (fun () -> Eval.seminaive_sharded ~domains p info db)
  in
  List.iter
    (fun domains ->
      let on = run ~batched:true ~domains in
      let off = run ~batched:false ~domains in
      checkb
        (Printf.sprintf "domains=%d same fixpoint" domains)
        true
        (Store.equal on.Eval.db off.Eval.db);
      checki
        (Printf.sprintf "domains=%d same derivations" domains)
        off.Eval.derivations on.Eval.derivations;
      checkb
        (Printf.sprintf "domains=%d groups counted" domains)
        true
        (on.Eval.stats.Eval.groups > 0))
    [ 1; 2; 4 ];
  (* batched sharded outcomes are identical across domain counts *)
  let s1 = run ~batched:true ~domains:1 in
  let s2 = run ~batched:true ~domains:2 in
  let s4 = run ~batched:true ~domains:4 in
  checkb "deterministic in domains" true
    (Store.equal s1.Eval.db s2.Eval.db
    && Store.equal s2.Eval.db s4.Eval.db
    && s1.Eval.stats = s2.Eval.stats
    && s2.Eval.stats = s4.Eval.stats)

(* ------------------------------------------------------------------ *)
(* Index-aware aggregates. *)

let agg_outputs db r =
  List.fold_left
    (fun s t -> Store.Tset.add t s)
    Store.Tset.empty (Eval.apply_agg_rule db r)

let test_agg_fast_path () =
  let rule_of src =
    match Parser.parse_program src with
    | Ok p -> List.hd p.Ast.rules
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let db =
    Store.add_list "path"
      [
        [| V.Addr "a"; V.Addr "b"; V.Int 3 |];
        [| V.Addr "a"; V.Addr "b"; V.Int 1 |];
        [| V.Addr "a"; V.Addr "c"; V.Int 2 |];
        [| V.Addr "b"; V.Addr "c"; V.Int 5 |];
        (* wrong arity: must be ignored by both paths *)
        [| V.Addr "a"; V.Addr "b" |];
      ]
      Store.empty
  in
  let both r =
    let fast = agg_outputs db r in
    Eval.use_indexes := false;
    let slow = agg_outputs db r in
    Eval.use_indexes := true;
    checkb "fast path = enumeration" true (Store.Tset.equal fast slow);
    fast
  in
  let best = both (rule_of {| best(@S,D,min<C>) :- path(@S,D,C). |}) in
  checkb "min over (a,b)" true
    (Store.Tset.mem [| V.Addr "a"; V.Addr "b"; V.Int 1 |] best);
  checki "three groups" 3 (Store.Tset.cardinal best);
  (* Global aggregation: no group-by columns at all. *)
  let total = both (rule_of {| total(count<C>) :- path(S,D,C). |}) in
  checkb "global count ignores the short tuple" true
    (Store.Tset.equal total (Store.Tset.singleton [| V.Int 4 |]));
  (* Repeated variables disqualify the fast path but not correctness. *)
  ignore (both (rule_of {| selfmin(@S,min<C>) :- path(@S,S,C). |}));
  (* Counters: the fast path reports one grouped probe, no scan. *)
  let c = Eval.counters () in
  ignore
    (Eval.apply_agg_rule ~stats:c db
       (rule_of {| best(@S,D,min<C>) :- path(@S,D,C). |}));
  let st = Eval.snapshot c in
  checki "one index probe" 1 st.Eval.index_hits;
  checki "no scan" 0 st.Eval.scans

(* ------------------------------------------------------------------ *)
(* Value interning and flat storage: the interned representation must
   be invisible — same tuples, same canonical order, same equality and
   hash, same evaluation results — while ids stay stable. *)

module Intern = Ndlog.Intern

let with_interning flag f =
  let saved = !Eval.use_interning in
  Eval.use_interning := flag;
  Fun.protect ~finally:(fun () -> Eval.use_interning := saved) f

(* Duplicate interning is stable: structurally equal values get the
   same id and the same physically shared representative, however many
   times and from however many boxes they are interned. *)
let test_intern_id_stable () =
  let mk () =
    (* String.concat defeats literal sharing: [a] and [b] are distinct
       boxes of the same value. *)
    V.List [ V.Addr (String.concat "" [ "n"; "1" ]); V.Int 3 ]
  in
  let a = mk () and b = mk () in
  checkb "distinct boxes" true (a != b);
  checki "same id" (Intern.id a) (Intern.id b);
  checkb "same representative" true (Intern.canon a == Intern.canon b);
  checkb "representative equals the value" true (V.equal (Intern.canon a) a);
  checkb "ids injective" true (Intern.id a <> Intern.id (V.Addr "n1"))

let test_intern_roundtrip () =
  List.iter
    (fun v ->
      checkb "of_id (id v) = v" true (V.equal (Intern.of_id (Intern.id v)) v))
    [
      V.Int 42;
      V.Str "payload";
      V.Bool false;
      V.Addr "n9";
      V.List [ V.Addr "a"; V.List [ V.Int 1; V.Str "x" ] ];
    ];
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument "Intern.of_id: unknown id -1") (fun () ->
      ignore (Intern.of_id (-1)))

(* Force the flat (interned-id) index representation regardless of the
   adaptive probe:build gate, so tests cover it deterministically. *)
let with_flat_forced f =
  let saved = !Store.flat_probe_threshold in
  Store.flat_probe_threshold := 0;
  Fun.protect ~finally:(fun () -> Store.flat_probe_threshold := saved) f

(* [Store.tuples] must enumerate in canonical (Tuple.compare) order,
   and [lookup] must return identical sets, whatever representation the
   store's indexes were built under.  The tuples carry a list column so
   the deep-key gate lets a forced flat index actually build. *)
let test_intern_store_order () =
  let tuples =
    List.init 40 (fun i ->
        [|
          V.Addr (Printf.sprintf "n%02d" (37 * i mod 40));
          V.List [ V.Addr (Printf.sprintf "n%02d" (i mod 5)); V.Int (i mod 7) ];
          V.Str (string_of_int (i mod 3));
        |])
  in
  let build () =
    List.fold_left (fun db t -> Store.add "r" t db) Store.empty tuples
  in
  let probe db =
    Store.lookup "r" ~cols:[ 1 ]
      ~key:[ V.List [ V.Addr "n02"; V.Int 2 ] ]
      db
  in
  let flat = with_interning true build in
  let boxed = with_interning false build in
  (* Build the index flat on the interned store, boxed on the oracle. *)
  let hits_flat = with_interning true (fun () -> with_flat_forced (fun () -> probe flat)) in
  let hits_boxed = with_interning false (fun () -> probe boxed) in
  checkb "flat and boxed lookups agree" true
    (Store.Tset.equal hits_flat hits_boxed);
  checkb "flat lookup finds the probe key" false (Store.Tset.is_empty hits_flat);
  let elems = Store.tuples "r" flat in
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      Store.Tuple.compare a b < 0 && ascending rest
    | _ -> true
  in
  checkb "flat enumeration is canonically sorted" true (ascending elems);
  checkb "flat and boxed enumerate identically" true
    (List.length elems = List.length (Store.tuples "r" boxed)
    && List.for_all2 Store.Tuple.equal elems (Store.tuples "r" boxed))

(* Mirror of the model checker's warm-vs-cold-cache regression: an
   interned store with warmed flat indexes and a boxed store built in
   another insertion order are the same state under
   [Store.equal]/[compare]/[hash]. *)
let test_intern_equal_hash_across_representations () =
  let tuples =
    List.init 25 (fun i ->
        [|
          V.Addr ("n" ^ string_of_int (i mod 5));
          V.List [ V.Addr ("n" ^ string_of_int ((i + 3) mod 5)) ];
          V.Int (i mod 4);
        |])
  in
  let build order () =
    List.fold_left (fun db t -> Store.add "link" t db) Store.empty order
  in
  let interned = with_interning true (build tuples) in
  let boxed = with_interning false (build (List.rev tuples)) in
  (* Warm the interned store's caches with a genuinely flat index
     (deep key, forced threshold); boxed stays cold. *)
  with_interning true (fun () ->
      with_flat_forced (fun () ->
          ignore
            (Store.lookup "link" ~cols:[ 1 ]
               ~key:[ V.List [ V.Addr "n1" ] ]
               interned)));
  let gi = Store.groups "link" ~cols:[ 1 ] interned in
  checkb "equal across representations" true (Store.equal interned boxed);
  checki "hash across representations" (Store.hash boxed) (Store.hash interned);
  checki "compare across representations" 0 (Store.compare interned boxed);
  (* Flat group enumeration re-sorts id-ordered keys into the boxed
     path's canonical key order. *)
  let gb = with_interning false (fun () -> Store.groups "link" ~cols:[ 1 ] boxed) in
  checkb "groups in canonical key order" true
    (List.map fst gi = List.map fst gb)

(* Differential property: the interned and boxed paths produce
   bit-identical fixpoints, rounds, convergence, and join statistics
   over random programs and topologies. *)
let prop_interned_equals_boxed =
  QCheck.Test.make ~name:"interned = boxed evaluation (db, rounds, stats)"
    ~count:20
    QCheck.(triple (int_range 0 2) (int_range 3 7) (int_range 0 3))
    (fun (prog_i, n, extra) ->
      let links = Programs.random_links ~seed:((17 * n) + extra) ~extra n in
      let prog =
        match prog_i with
        | 0 -> Programs.path_vector ()
        | 1 -> Programs.bounded_distance_vector ~max_hops:(n + 1)
        | _ -> Programs.link_state ~max_hops:(n + 1)
      in
      let p = Programs.with_links prog links in
      let run flag = with_interning flag (fun () -> Eval.run_exn p) in
      let a = run true and b = run false in
      Store.equal a.Eval.db b.Eval.db
      && a.Eval.rounds = b.Eval.rounds
      && a.Eval.converged = b.Eval.converged
      && a.Eval.stats = b.Eval.stats)

(* ------------------------------------------------------------------ *)
(* Flat (id-native) storage and the id-native evaluator.  [Flat] holds
   int-array tuples in open-addressing sets with patched-in-place
   indexes; [Ideval] is the faithful twin of the boxed rule core. *)

module Flat = Ndlog.Flat
module Ideval = Ndlog.Ideval
module Fset = Flat.Fset

(* Intern's flat boundary: [tuple_ids]/[tuple_of_ids] round-trip
   through canonical representatives, [get] reads single ids, and
   [int_id] agrees with [id] on small ints. *)
let test_intern_tuple_ids () =
  let t =
    [| V.Addr "n4"; V.List [ V.Addr "n4"; V.Int 2 ]; V.Int 9; V.Str "s" |]
  in
  let ids = Intern.tuple_ids t in
  checki "one id per column" (Array.length t) (Array.length ids);
  Array.iteri (fun i v -> checki "column id" (Intern.id v) ids.(i)) t;
  let back = Intern.tuple_of_ids ids in
  checkb "round trip equal" true (Store.Tuple.equal t back);
  Array.iteri
    (fun i v ->
      checkb "canonical representative" true (back.(i) == Intern.canon v);
      checkb "get matches of_id" true (Intern.get ids.(i) == Intern.of_id ids.(i)))
    t;
  for i = -3 to 40 do
    checki "int_id = id" (Intern.id (V.Int i)) (Intern.int_id i)
  done

let test_fset_ops () =
  let s = Fset.create () in
  let t i = Intern.tuple_ids [| V.Int i; V.Addr "x" |] in
  checkb "empty" true (Fset.is_empty s);
  checkb "fresh add" true (Fset.add s (t 1));
  checkb "duplicate add" false (Fset.add s (t 1));
  (* The probe compares by content, not by the array's identity. *)
  checkb "distinct box, same tuple" true (Fset.mem s (Array.copy (t 1)));
  for i = 2 to 200 do
    ignore (Fset.add s (t i))
  done;
  checki "cardinal after growth" 200 (Fset.cardinal s);
  checkb "remove present" true (Fset.remove s (t 7));
  checkb "remove absent" false (Fset.remove s (t 7));
  (* Tombstone reuse: re-adding a removed tuple finds the slot again. *)
  checkb "re-add after remove" true (Fset.add s (t 7));
  checkb "present after re-add" true (Fset.mem s (t 7));
  checki "cardinal stable" 200 (Fset.cardinal s);
  let c = Fset.copy s in
  ignore (Fset.remove c (t 3));
  checkb "copy is isolated" true (Fset.mem s (t 3) && not (Fset.mem c (t 3)));
  checkb "equal to itself" true (Fset.equal s s);
  checkb "unequal after divergence" false (Fset.equal s c);
  checki "elements enumerate all" 200 (List.length (Fset.elements s))

let test_flat_db_ops () =
  let db = Flat.create () in
  let t a b c = Intern.tuple_ids [| V.Addr a; V.Addr b; V.Int c |] in
  checkb "fresh add" true (Flat.add db "link" (t "n0" "n1" 1));
  checkb "duplicate add" false (Flat.add db "link" (t "n0" "n1" 1));
  ignore (Flat.add db "link" (t "n0" "n2" 5));
  ignore (Flat.add db "link" (t "n1" "n2" 2));
  checki "cardinal" 3 (Flat.cardinal db "link");
  let key = [| Intern.id (V.Addr "n0") |] in
  let hits = Flat.lookup db "link" ~cols:[ 0 ] ~key in
  checki "index probe" 2 (List.length hits);
  (* The index is patched in place by subsequent mutations. *)
  ignore (Flat.add db "link" (t "n0" "n3" 9));
  checki "patched after add" 3
    (List.length (Flat.lookup db "link" ~cols:[ 0 ] ~key));
  ignore (Flat.remove db "link" (t "n0" "n2" 5));
  checki "patched after remove" 2
    (List.length (Flat.lookup db "link" ~cols:[ 0 ] ~key));
  (* Grouping: one group per distinct source column. *)
  let gs = Flat.groups db "link" ~cols:[ 0 ] in
  checki "groups" 2 (List.length gs);
  let total = List.fold_left (fun n (_, rows) -> n + List.length rows) 0 gs in
  checki "groups cover relation" (Flat.cardinal db "link") total;
  let free = Fset.create () in
  ignore (Fset.add free (t "a" "b" 1));
  ignore (Fset.add free (t "a" "c" 2));
  checki "group_set on a free-standing delta" 1
    (List.length (Flat.group_set free ~cols:[ 0 ]));
  (* set_relation patches by symmetric difference and stays exact. *)
  let rs = Fset.create () in
  ignore (Fset.add rs (t "n0" "n1" 1));
  ignore (Fset.add rs (t "n0" "n7" 7));
  Flat.set_relation db "link" rs;
  checki "replaced cardinal" 2 (Flat.cardinal db "link");
  checki "patched after set_relation" 2
    (List.length (Flat.lookup db "link" ~cols:[ 0 ] ~key));
  checkb "old tuple gone" false (Flat.mem db "link" (t "n1" "n2" 2));
  (* copy/restrict isolate: mutating the copy leaves the source. *)
  let c = Flat.copy db in
  ignore (Flat.remove c "link" (t "n0" "n1" 1));
  checkb "copy isolated" true (Flat.mem db "link" (t "n0" "n1" 1));
  let r = Flat.restrict db [ "link" ] in
  ignore (Flat.add r "link" (t "z" "z" 0));
  checkb "restrict isolated" false (Flat.mem db "link" (t "z" "z" 0));
  checkb "equal up to empty relations" true
    (let a = Flat.create () and b = Flat.create () in
     ignore (Flat.add a "p" (t "x" "y" 1));
     ignore (Flat.remove a "p" (t "x" "y" 1));
     Flat.equal a b && Flat.equal b a);
  (* Boundary round-trip: of_store/to_store is the identity on
     content, and versions stamp every mutation. *)
  let v0 = Flat.version db in
  ignore (Flat.add db "link" (t "q" "r" 3));
  checkb "version bumped" true (Flat.version db > v0);
  let boxed = Flat.to_store db in
  checkb "round trip through boxed store" true
    (Flat.equal db (Flat.of_store boxed))

(* Removal-triggered compaction: a relation that churns down and never
   adds again must shed its O(peak) slot array once tombstones
   outnumber live entries, and stay exact through the rehash. *)
let test_fset_compaction () =
  let s = Fset.create () in
  let t i = Intern.tuple_ids [| V.Int i; V.Int (i * 7) |] in
  for i = 1 to 512 do
    ignore (Fset.add s (t i))
  done;
  let peak = Fset.capacity s in
  checkb "grew past the default" true (peak >= 1024);
  for i = 1 to 500 do
    ignore (Fset.remove s (t i))
  done;
  checki "cardinal after churn-down" 12 (Fset.cardinal s);
  checkb "slot array shrank" true (Fset.capacity s < peak);
  for i = 501 to 512 do
    checkb "survivor present" true (Fset.mem s (t i))
  done;
  for i = 1 to 500 do
    checkb "removed absent" false (Fset.mem s (t i))
  done;
  checkb "re-add after compaction" true (Fset.add s (t 1))

(* Missing predicates read as one shared frozen empty set: no per-call
   allocation, and a mutation of it — the lost-update footgun — raises
   instead of silently updating an orphan. *)
let test_flat_shared_empty () =
  let db = Flat.create () in
  let r1 = Flat.relation db "absent" in
  let r2 = Flat.relation db "also_absent" in
  checkb "one shared empty set" true (r1 == r2);
  checkb "empty" true (Fset.is_empty r1);
  (match Fset.add r1 (Intern.tuple_ids [| V.Int 1 |]) with
  | _ -> checkb "add to shared empty raises" true false
  | exception Invalid_argument _ -> ());
  checkb "db untouched" true (Flat.is_empty db);
  ignore (Flat.add db "p" (Intern.tuple_ids [| V.Int 1 |]));
  checkb "live relation not frozen" true
    (Fset.mem (Flat.relation db "p") (Intern.tuple_ids [| V.Int 1 |]))

(* [restrict] preserves the source's version, exactly like [copy]:
   version-stamped caches must never see a narrowing as "older". *)
let test_flat_restrict_version () =
  let db = Flat.create () in
  let t i = Intern.tuple_ids [| V.Int i |] in
  ignore (Flat.add db "p" (t 1));
  ignore (Flat.add db "q" (t 2));
  ignore (Flat.add db "p" (t 3));
  let v = Flat.version db in
  checkb "mutations stamped" true (v > 0);
  checki "copy preserves version" v (Flat.version (Flat.copy db));
  checki "restrict preserves version" v (Flat.version (Flat.restrict db [ "p" ]))

(* The database undo journal: net movement since a mark, O(changes)
   rollback through the index-patching mutation path, nested marks,
   and journaled relation clearing. *)
let test_flat_journal () =
  let db = Flat.create () in
  let t i = Intern.tuple_ids [| V.Int i; V.Addr "j" |] in
  for i = 1 to 8 do
    ignore (Flat.add db "p" (t i))
  done;
  ignore (Flat.add db "q" (t 0));
  let key = [| Intern.id (V.Addr "j") |] in
  checki "index before" 8 (List.length (Flat.lookup db "p" ~cols:[ 1 ] ~key));
  let v0 = Flat.version db in
  let m = Flat.mark db in
  ignore (Flat.remove db "p" (t 1));
  ignore (Flat.add db "p" (t 9));
  ignore (Flat.add db "p" (t 10));
  ignore (Flat.remove db "p" (t 10));
  (* add;remove cancels *)
  ignore (Flat.remove db "q" (t 0));
  ignore (Flat.add db "q" (t 0));
  (* remove;add cancels *)
  let net = Flat.net_since db m in
  let find p =
    List.assoc_opt p (List.map (fun (p, a, r) -> (p, (a, r))) net)
  in
  (match find "p" with
  | Some (adds, rems) ->
    checki "net adds" 1 (List.length adds);
    checki "net removes" 1 (List.length rems);
    checkb "net add is t9" true (Fset.tuple_eq (List.hd adds) (t 9));
    checkb "net remove is t1" true (Fset.tuple_eq (List.hd rems) (t 1))
  | None -> checkb "p moved" true false);
  (match find "q" with
  | Some (adds, rems) ->
    checki "q cancelled adds" 0 (List.length adds);
    checki "q cancelled removes" 0 (List.length rems)
  | None -> ());
  Flat.rollback db m;
  checkb "t1 restored" true (Flat.mem db "p" (t 1));
  checkb "t9 undone" false (Flat.mem db "p" (t 9));
  checki "cardinal restored" 8 (Flat.cardinal db "p");
  checki "index restored" 8 (List.length (Flat.lookup db "p" ~cols:[ 1 ] ~key));
  checkb "version moves forward through rollback" true (Flat.version db > v0);
  let outer = Flat.mark db in
  ignore (Flat.add db "p" (t 20));
  let inner = Flat.mark db in
  ignore (Flat.add db "p" (t 21));
  Flat.commit db inner;
  Flat.rollback db outer;
  checkb "outer rollback undoes committed inner" false
    (Flat.mem db "p" (t 20) || Flat.mem db "p" (t 21));
  let m2 = Flat.mark db in
  Flat.clear_rel db "p";
  checki "cleared" 0 (Flat.cardinal db "p");
  Flat.rollback db m2;
  checki "clear rolled back" 8 (Flat.cardinal db "p")

(* Model property: an [Fset] driven by random add/remove/mem and
   mark/rollback/commit sequences agrees with a reference [Set.Make]
   at every step — through growth, tombstone reuse, removal-triggered
   compaction, and journal rollback. *)
module Imodel = Set.Make (struct
  type t = int list

  let compare = compare
end)

let prop_fset_model =
  QCheck.Test.make
    ~name:"Fset = Set.Make model (ops and journal through resizes)" ~count:300
    QCheck.(list (pair (int_range 0 5) (int_range 0 40)))
    (fun ops ->
      let s = Fset.create ~capacity:8 () in
      let model = ref Imodel.empty in
      let marks = ref [] in
      let ok = ref true in
      let check b = ok := !ok && b in
      List.iter
        (fun (op, i) ->
          (* Fresh boxes each call: membership must be by content. *)
          let t = [| i land 7; i |] in
          let k = [ i land 7; i ] in
          match op with
          | 0 ->
            check (Fset.add s t = not (Imodel.mem k !model));
            model := Imodel.add k !model
          | 1 ->
            check (Fset.remove s t = Imodel.mem k !model);
            model := Imodel.remove k !model
          | 2 -> check (Fset.mem s t = Imodel.mem k !model)
          | 3 -> marks := (Fset.mark s, !model) :: !marks
          | 4 -> (
            match !marks with
            | (m, snap) :: rest ->
              Fset.rollback s m;
              model := snap;
              marks := rest
            | [] -> ())
          | _ -> (
            match !marks with
            | (m, _) :: rest ->
              Fset.commit s m;
              marks := rest
            | [] -> ()))
        ops;
      let elems =
        List.sort compare (List.map Array.to_list (Fset.elements s))
      in
      !ok
      && Fset.cardinal s = Imodel.cardinal !model
      && elems = Imodel.elements !model)

(* The id-native strand executor produces the same head multiset as the
   boxed one over the same delta batch. *)
let test_ideval_execute_batch () =
  let p = Programs.with_links (Programs.path_vector ()) (Programs.ring_links 4) in
  let o = Eval.run_exn p in
  let db = o.Eval.db in
  let r2 = List.nth p.Ast.rules 1 in
  let strand = Plan.compile_strand r2 ~delta:1 in
  let istrand = Ideval.of_strand strand in
  checki "delta pred" 0 (compare (Ideval.delta_pred istrand) "path");
  checki "head pred" 0
    (compare (Ideval.head_pred istrand) r2.Ast.head.Ast.head_pred);
  let deltas = Store.tuples "path" db in
  let fdb = Flat.of_store db in
  let via_boxed =
    Plan.execute_batch db ~delta_tuples:deltas strand
    |> List.sort Store.Tuple.compare
  in
  let via_ids =
    Ideval.execute_batch fdb
      ~delta_tuples:(List.map Intern.tuple_ids deltas)
      istrand
    |> List.map Intern.tuple_of_ids
    |> List.sort Store.Tuple.compare
  in
  checkb "id heads = boxed heads" true
    (List.length via_boxed = List.length via_ids
    && List.for_all2 Store.Tuple.equal via_boxed via_ids);
  checki "empty batch" 0
    (List.length (Ideval.execute_batch fdb ~delta_tuples:[] istrand))

(* Differential property: the id-native evaluator is a faithful twin of
   the boxed one — identical fixpoints, rounds, derivation counts, and
   join statistics over random programs, topologies, and optimization
   flag settings (indexes / reordering / batching). *)
let prop_ideval_equals_eval =
  QCheck.Test.make
    ~name:"id-native = boxed evaluation (db, rounds, derivations, stats)"
    ~count:20
    QCheck.(
      quad (int_range 0 2) (int_range 3 7) (int_range 0 3) (int_range 0 7))
    (fun (prog_i, n, extra, flags) ->
      let links = Programs.random_links ~seed:((23 * n) + extra) ~extra n in
      let prog =
        match prog_i with
        | 0 -> Programs.path_vector ()
        | 1 -> Programs.bounded_distance_vector ~max_hops:(n + 1)
        | _ -> Programs.link_state ~max_hops:(n + 1)
      in
      let p = Programs.with_links prog links in
      let saved =
        (!Eval.use_indexes, !Eval.use_reordering, !Eval.use_batching)
      in
      Eval.use_indexes := flags land 1 = 0;
      Eval.use_reordering := flags land 2 = 0;
      Eval.use_batching := flags land 4 = 0;
      Fun.protect
        ~finally:(fun () ->
          let i, r, b = saved in
          Eval.use_indexes := i;
          Eval.use_reordering := r;
          Eval.use_batching := b)
        (fun () ->
          let boxed = Eval.run_exn p in
          match Ideval.run_program p with
          | Error e ->
            QCheck.Test.fail_reportf "id-native analysis failed: %a"
              Analysis.pp_error e
          | Ok (db, oc) ->
            Store.equal db boxed.Eval.db
            && oc.Ideval.rounds = boxed.Eval.rounds
            && oc.Ideval.derivations = boxed.Eval.derivations
            && oc.Ideval.converged = boxed.Eval.converged
            && oc.Ideval.stats = boxed.Eval.stats))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "ndlog"
    [
      ( "value",
        [
          Alcotest.test_case "ordering" `Quick test_value_order;
          Alcotest.test_case "hash" `Quick test_value_hash_consistent;
          Alcotest.test_case "coercions" `Quick test_value_coerce;
        ] );
      ( "builtins",
        [
          Alcotest.test_case "path functions" `Quick test_builtins_paths;
          Alcotest.test_case "errors" `Quick test_builtins_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "path-vector program" `Quick test_parse_path_vector;
          Alcotest.test_case "facts" `Quick test_parse_facts;
          Alcotest.test_case "round trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "negation" `Quick test_parse_negation;
          Alcotest.test_case "list literals" `Quick test_parse_list_literal;
          Alcotest.test_case "strings and escapes" `Quick
            test_parse_strings_and_escapes;
          Alcotest.test_case "negative ints" `Quick test_parse_negative_ints;
          Alcotest.test_case "lifetimes" `Quick test_parse_soft_lifetime;
          Alcotest.test_case "env errors" `Quick test_env_errors;
          Alcotest.test_case "value printing" `Quick test_value_pp_forms;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "path-vector analyzes" `Quick test_safety_ok;
          Alcotest.test_case "unbound head" `Quick test_safety_unbound_head;
          Alcotest.test_case "unbound negation" `Quick
            test_safety_unbound_negation;
          Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
          Alcotest.test_case "stratification" `Quick test_stratification;
          Alcotest.test_case "unstratifiable" `Quick test_unstratifiable;
        ] );
      ( "eval",
        [
          Alcotest.test_case "line topology" `Quick test_eval_line;
          Alcotest.test_case "ring shortest" `Quick test_eval_ring_shortest;
          Alcotest.test_case "asymmetric costs" `Quick test_eval_asymmetric_costs;
          Alcotest.test_case "cycle check" `Quick test_eval_cycle_check;
          Alcotest.test_case "naive = semi-naive" `Quick
            test_naive_equals_seminaive;
          Alcotest.test_case "count to infinity" `Quick test_count_to_infinity;
          Alcotest.test_case "bounded dv converges" `Quick
            test_bounded_dv_converges;
          Alcotest.test_case "negation" `Quick test_eval_negation;
          Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "assignment as filter" `Quick
            test_eval_assign_checks;
        ]
        @ qsuite
            [ prop_best_path_matches_floyd_warshall; prop_naive_equals_seminaive ]
      );
      ( "link_state",
        [
          Alcotest.test_case "floods everywhere" `Quick
            test_link_state_floods_everywhere;
          Alcotest.test_case "routes" `Quick test_link_state_routes;
          Alcotest.test_case "equals path-vector" `Quick
            test_link_state_equals_path_vector;
          Alcotest.test_case "distributed" `Quick test_link_state_distributed;
        ] );
      ( "store",
        [
          Alcotest.test_case "basic ops" `Quick test_store_ops;
          Alcotest.test_case "union/diff" `Quick test_store_union_diff;
          Alcotest.test_case "determinism" `Quick test_store_determinism;
        ] );
      ( "intern",
        [
          Alcotest.test_case "id stability" `Quick test_intern_id_stable;
          Alcotest.test_case "round trip" `Quick test_intern_roundtrip;
          Alcotest.test_case "canonical order" `Quick test_intern_store_order;
          Alcotest.test_case "equal/hash across representations" `Quick
            test_intern_equal_hash_across_representations;
        ]
        @ qsuite [ prop_interned_equals_boxed ] );
      ( "flat",
        [
          Alcotest.test_case "tuple id boundary" `Quick test_intern_tuple_ids;
          Alcotest.test_case "fset ops" `Quick test_fset_ops;
          Alcotest.test_case "fset compaction" `Quick test_fset_compaction;
          Alcotest.test_case "shared frozen empty relation" `Quick
            test_flat_shared_empty;
          Alcotest.test_case "restrict preserves version" `Quick
            test_flat_restrict_version;
          Alcotest.test_case "undo journal" `Quick test_flat_journal;
          Alcotest.test_case "flat db ops" `Quick test_flat_db_ops;
          Alcotest.test_case "id strand batch executor" `Quick
            test_ideval_execute_batch;
        ]
        @ qsuite [ prop_fset_model; prop_ideval_equals_eval ] );
      ( "index",
        [
          Alcotest.test_case "lookup" `Quick test_store_lookup;
          Alcotest.test_case "incremental maintenance" `Quick
            test_index_maintenance;
          Alcotest.test_case "canonicity preserved" `Quick
            test_index_canonicity;
          Alcotest.test_case "join planning" `Quick
            test_order_body_most_bound_first;
          Alcotest.test_case "stats" `Quick test_eval_stats_counted;
          Alcotest.test_case "per-run stats" `Quick test_eval_stats_per_run;
          Alcotest.test_case "aggregate fast path" `Quick test_agg_fast_path;
        ]
        @ qsuite [ prop_indexed_equals_nested_loop ] );
      ( "sharded",
        [
          Alcotest.test_case "partition roundtrip" `Quick
            test_shard_partition_roundtrip;
          Alcotest.test_case "shardability analysis" `Quick
            test_shard_analyze_rejects;
          Alcotest.test_case "domain pool" `Quick test_pool_map_array;
          Alcotest.test_case "ring fixpoint" `Quick test_sharded_ring;
          Alcotest.test_case "centralized fallback" `Quick
            test_sharded_fallback;
        ]
        @ qsuite [ prop_sharded_equals_seminaive ] );
      ( "batched",
        [
          Alcotest.test_case "group formation" `Quick test_group_formation;
          Alcotest.test_case "stats" `Quick test_batched_stats_counted;
          Alcotest.test_case "strand batch executor" `Quick test_execute_batch;
          Alcotest.test_case "sharded domains 1/2/4" `Quick
            test_sharded_batched_domains;
        ]
        @ qsuite [ prop_batched_equals_per_tuple ] );
      ( "localize",
        [
          Alcotest.test_case "path-vector rewrite" `Quick
            test_localize_path_vector;
          Alcotest.test_case "semantics preserved" `Quick
            test_localize_preserves_semantics;
          Alcotest.test_case "local rules untouched" `Quick
            test_localize_idempotent_on_local;
        ] );
      ( "plan",
        [
          Alcotest.test_case "strand shape" `Quick test_plan_shapes;
          Alcotest.test_case "scan = eval" `Quick test_plan_scan_equals_eval;
          Alcotest.test_case "delta = eval" `Quick test_plan_delta_equals_eval;
          Alcotest.test_case "program strands" `Quick test_plan_program_strands;
          Alcotest.test_case "negation" `Quick test_plan_negation;
          Alcotest.test_case "rejects aggregates" `Quick
            test_plan_rejects_aggregates;
        ]
        @ qsuite [ prop_strands_cover_seminaive ] );
      ( "provenance",
        [
          Alcotest.test_case "base fact" `Quick test_provenance_fact;
          Alcotest.test_case "recursive path" `Quick
            test_provenance_recursive_path;
          Alcotest.test_case "aggregate witness" `Quick
            test_provenance_aggregate;
          Alcotest.test_case "absent tuple" `Quick test_provenance_absent_tuple;
          Alcotest.test_case "negation recorded" `Quick
            test_provenance_negation_recorded;
        ]
        @ qsuite [ prop_every_tuple_explainable ] );
      ( "softstate",
        [
          Alcotest.test_case "expiry table" `Quick test_expiry_table;
          Alcotest.test_case "hard-state rewrite runs" `Quick
            test_hard_state_rewrite_runs;
          Alcotest.test_case "hard-state rewrite expires" `Quick
            test_hard_state_rewrite_expires;
          Alcotest.test_case "fractional lifetime guard" `Quick
            test_fractional_lifetime_guard;
        ] );
    ]
