(* A small property language for protocol specifications.

   Properties are named first-order conjectures about a program's
   predicates.  The builders below construct the classes the paper
   verifies: route optimality (the [bestPathStrong] theorem of §3.1),
   aggregate membership, implications between predicates, and absence
   of tuples satisfying a condition. *)

module F = Logic.Formula
module T = Logic.Term

type t = {
  prop_name : string;
  formula : F.t;
}

let make name formula = { prop_name = name; formula }

let vars = List.map T.var

(* The paper's bestPathStrong, generalized over predicate names:

     best(S,D,P,C) => NOT (EXISTS P2 C2: path(S,D,P2,C2) AND C2 < C) *)
let route_optimality ?(best = "bestPath") ?(paths = "path")
    ?(name = "bestPathStrong") () =
  let s = T.var "S" and d = T.var "D" and p = T.var "P" and c = T.var "C" in
  let p2 = T.var "P2" and c2 = T.var "C2" in
  make name
    (F.all_list [ "S"; "D"; "P"; "C" ]
       (F.imp
          (F.atom best [ s; d; p; c ])
          (F.neg
             (F.ex_list [ "P2"; "C2" ]
                (F.conj [ F.atom paths [ s; d; p2; c2 ]; F.lt c2 c ])))))

(* Every aggregate result is witnessed by a member:
     bestCost(S,D,C) => EXISTS P: path(S,D,P,C) *)
let aggregate_membership ?(agg = "bestPathCost") ?(paths = "path")
    ?(name = "bestCostMembership") () =
  let s = T.var "S" and d = T.var "D" and c = T.var "C" in
  make name
    (F.all_list [ "S"; "D"; "C" ]
       (F.imp
          (F.atom agg [ s; d; c ])
          (F.ex "P" (F.atom paths [ s; d; T.var "P"; c ]))))

(* Generic implication between two predicates over shared variables:
     p(xs) => q(ys)  where xs, ys are drawn from the given variables. *)
let implication ~name ~(antecedent : string * string list)
    ~(consequent : string * string list) () =
  let p, xs = antecedent and q, ys = consequent in
  let univ = List.sort_uniq String.compare (xs @ ys) in
  make name
    (F.all_list univ (F.imp (F.atom p (vars xs)) (F.atom q (vars ys))))

(* One-hop routes exist: link(S,D,C) => path(S,D,f_init(S,D),C). *)
let one_hop_paths ?(link = "link") ?(paths = "path") ?(name = "oneHopPath") ()
    =
  let s = T.var "S" and d = T.var "D" and c = T.var "C" in
  make name
    (F.all_list [ "S"; "D"; "C" ]
       (F.imp
          (F.atom link [ s; d; c ])
          (F.atom paths [ s; d; T.Fn ("f_init", [ s; d ]); c ])))

(* Aggregate functionality: at most one best cost per pair. *)
let aggregate_functional ?(agg = "bestPathCost") ?(name = "bestCostFunctional")
    () =
  let s = T.var "S" and d = T.var "D" in
  let c = T.var "C" and c' = T.var "C'" in
  make name
    (F.all_list [ "S"; "D"; "C"; "C'" ]
       (F.imp
          (F.conj [ F.atom agg [ s; d; c ]; F.atom agg [ s; d; c' ] ])
          (F.eq c c')))

(* Parse a property from concrete formula syntax ({!Logic.Fparser}). *)
let of_string name src : (t, string) result =
  match Logic.Fparser.parse src with
  | Ok f -> Ok (make name f)
  | Error e -> Error e

let of_string_exn name src =
  match of_string name src with
  | Ok p -> p
  | Error e -> invalid_arg (Printf.sprintf "Props.of_string %s: %s" name e)

let pp ppf p = Fmt.pf ppf "%s: %a" p.prop_name F.pp p.formula
