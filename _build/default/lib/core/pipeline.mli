(** The FVN framework of the paper's Figure 1, as an API.

    Each entry point realizes one (or a chain) of the figure's arcs:
    {!verify_program} (arcs 4–5), {!generate} (arcs 1–3), {!execute} /
    {!execute_distributed} (arc 7), {!model_check} (arcs 6/8), and
    {!full_pipeline} for the whole loop. *)

(** One property's verification result. *)
type property_result = {
  property : Props.t;
  verdict : [ `Proved of Logic.Prove.outcome | `Failed of string ];
}

type verification = {
  theory : Logic.Theory.t;
  results : property_result list;
}

val proved : verification -> bool
(** All properties proved (and kernel-checked). *)

val verify_theory :
  ?max_fuel:int -> Logic.Theory.t -> Props.t list -> verification

val verify_program :
  ?max_fuel:int ->
  Ndlog.Ast.program ->
  Props.t list ->
  (verification, string) result
(** Arcs 4–5: analyze, compile to the completion theory, prove each
    property.  [Error] on static-analysis failure. *)

(** A verified, generated implementation. *)
type generated = {
  model : Component.Model.t;
  gen_verification : verification;
  program : Ndlog.Ast.program;
}

val generate :
  ?max_fuel:int ->
  ?facts:Ndlog.Ast.fact list ->
  Component.Model.t ->
  Props.t list ->
  (generated, string) result
(** Arcs 1–3: check the model, verify its generated specification, emit
    the NDlog program.  Fails when the model is ill-formed or a
    property is not proved. *)

(** An execution artefact. *)
type execution =
  | Central of Ndlog.Eval.outcome
  | Distributed of {
      runtime : Dist.Runtime.t;
      report : Dist.Runtime.run_report;
      global : Ndlog.Store.t;
    }

val execute : ?max_rounds:int -> Ndlog.Ast.program -> (execution, string) result
(** Arc 7, centralized. *)

val execute_sharded :
  ?max_rounds:int ->
  ?domains:int ->
  Ndlog.Ast.program ->
  (execution, string) result
(** Arc 7, sharded multicore: one semi-naive fixpoint per location on a
    pool of [domains] OCaml domains ({!Ndlog.Eval.seminaive_sharded}),
    same fixpoint as {!execute}.  Falls back to the centralized engine
    for programs {!Ndlog.Shard.analyze} rejects.  [domains] defaults to
    [Domain.recommended_domain_count ()]. *)

val execute_instrumented :
  ?max_rounds:int ->
  Ndlog.Ast.program ->
  (execution * Ndlog.Eval.stats, string) result
(** As {!execute}, also reporting the run's join profile (index hits
    vs. scans, tuples enumerated vs. matched). *)

val topology_of_links : Ndlog.Ast.program -> Netsim.Topology.t
(** A simulator topology derived from the program's [link] facts. *)

val execute_distributed :
  ?topology:Netsim.Topology.t ->
  ?max_events:int ->
  Ndlog.Ast.program ->
  (execution, string) result
(** Arc 7, distributed: localizes the program when required, derives
    the topology from [link] facts unless one is supplied. *)

val model_check :
  ?max_states:int ->
  Ndlog.Ast.program ->
  (Ndlog.Store.t -> bool) ->
  ( Ndlog.Store.t Mcheck.Explore.stats,
    Ndlog.Store.t Mcheck.Explore.violation )
  result
(** Arcs 6/8: safety over the program's table transition system, with
    counterexample traces. *)

type full_run = {
  fr_generated : generated;
  fr_execution : execution;
}

val full_pipeline :
  ?max_fuel:int ->
  ?facts:Ndlog.Ast.fact list ->
  Component.Model.t ->
  Props.t list ->
  (full_run, string) result
(** Design -> specification -> verification -> implementation ->
    execution, returning every intermediate artefact. *)

val pp_property_result : property_result Fmt.t
val pp_verification : verification Fmt.t
