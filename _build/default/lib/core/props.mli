(** A small property language for protocol specifications: named
    first-order conjectures over a program's predicates, covering the
    classes the paper verifies. *)

type t = {
  prop_name : string;
  formula : Logic.Formula.t;
}

val make : string -> Logic.Formula.t -> t

val route_optimality :
  ?best:string -> ?paths:string -> ?name:string -> unit -> t
(** The paper's [bestPathStrong] (Section 3.1), generalized over
    predicate names:
    [best(S,D,P,C) => NOT (EXISTS P2 C2: paths(S,D,P2,C2) AND C2 < C)]. *)

val aggregate_membership :
  ?agg:string -> ?paths:string -> ?name:string -> unit -> t
(** Every aggregate result is witnessed:
    [agg(S,D,C) => EXISTS P: paths(S,D,P,C)]. *)

val implication :
  name:string ->
  antecedent:string * string list ->
  consequent:string * string list ->
  unit ->
  t
(** [p(xs) => q(ys)], universally closed over the shared variables. *)

val one_hop_paths : ?link:string -> ?paths:string -> ?name:string -> unit -> t
(** [link(S,D,C) => paths(S,D,f_init(S,D),C)]. *)

val aggregate_functional : ?agg:string -> ?name:string -> unit -> t
(** At most one aggregate result per group. *)

val of_string : string -> string -> (t, string) result
(** [of_string name src] parses a property from concrete formula syntax
    (see {!Logic.Fparser}). *)

val of_string_exn : string -> string -> t
(** @raise Invalid_argument on parse errors. *)

val pp : t Fmt.t
