lib/core/pipeline.ml: Component Dist Fmt List Logic Mcheck Ndlog Netsim Props
