lib/core/pipeline.ml: Component Dist Domain Fmt List Logic Mcheck Ndlog Netsim Props
