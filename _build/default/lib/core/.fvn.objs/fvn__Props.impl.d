lib/core/props.ml: Fmt List Logic Printf String
