lib/core/props.mli: Fmt Logic
