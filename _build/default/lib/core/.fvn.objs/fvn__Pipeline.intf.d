lib/core/pipeline.mli: Component Dist Fmt Logic Mcheck Ndlog Netsim Props
