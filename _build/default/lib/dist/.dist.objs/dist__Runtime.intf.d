lib/dist/runtime.mli: Ndlog Netsim
