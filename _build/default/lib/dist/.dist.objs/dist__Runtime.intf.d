lib/dist/runtime.mli: Fmt Ndlog Netsim
