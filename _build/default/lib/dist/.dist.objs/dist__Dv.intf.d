lib/dist/dv.mli: Netsim
