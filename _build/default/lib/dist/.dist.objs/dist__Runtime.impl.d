lib/dist/runtime.ml: Array Fmt Hashtbl List Ndlog Netsim Printexc String Sys
