lib/dist/runtime.ml: Array Fmt Hashtbl List Ndlog Netsim Option String
