lib/dist/dv.ml: List Map Netsim Option String
