(* Distributed NDlog execution (the P2 substitute, arc 7 of Figure 1).

   Every simulator node runs the same localized program over its own
   tuple store.  Execution is pipelined semi-naive through compiled
   dataflow strands (the Click execution model, {!Ndlog.Plan}):
   inserting a tuple runs the strands triggered by its predicate with
   the new tuple as the delta; derived heads located at the executing
   node recurse locally, heads located elsewhere become network
   messages.

   Aggregate strata are maintained as local views: whenever the local
   store changes, aggregate rules (and the local rules downstream of
   them) are recomputed from scratch and their relations replaced, so
   non-monotonic updates (a better best-path displacing a worse one)
   are handled by view refresh rather than by distributed deletion.
   View tuples located at other nodes are shipped as inserts; remote
   view deletion is not supported (none of the paper's programs need
   it), and [check] rejects programs that would require it.

   Prerequisite: the program must be localized ({!Ndlog.Localize}) —
   every rule body reads a single location. *)

module Ast = Ndlog.Ast
module Store = Ndlog.Store
module Eval = Ndlog.Eval
module Env = Ndlog.Env
module Analysis = Ndlog.Analysis
module Value = Ndlog.Value
module Softstate = Ndlog.Softstate

type msg = {
  pred : string;
  tuple : Store.Tuple.t;
}

type node_state = {
  name : string;
  mutable store : Store.t;
  mutable expiry : Softstate.Expiry.t;
  mutable inserts : int;  (* local tuple insertions *)
}

type t = {
  program : Ast.program;
  info : Analysis.info;
  sim : msg Netsim.Sim.t;
  nodes : (string, node_state) Hashtbl.t;
  (* Predicates computed as refreshed views (aggregate strata and their
     local downstream). *)
  view_preds : string list;
  view_program : Ast.program;  (* the rules that define the views *)
  (* Compiled dataflow strands of the pipelined rules, indexed by their
     trigger (delta) predicate: the Click execution model. *)
  strands : (string, Ndlog.Plan.strand list) Hashtbl.t;
  (* Join counters of this runtime's strand executions and view
     refreshes (per-runtime: concurrent runtimes never interfere). *)
  joins : Eval.counters;
  mutable refresh_pending : bool;
}

exception Not_localized of string

(* Location-column bookkeeping is shared with the sharded evaluator:
   {!Ndlog.Shard} owns the tuple-to-owner mapping. *)
let tuple_location = Ndlog.Shard.tuple_location
let loc_index_map = Ndlog.Shard.loc_index_map

(* Split the program: aggregate rules and every rule transitively
   depending on an aggregate head become "view" rules, refreshed from
   scratch; everything else is pipelined. *)
let split_views (p : Ast.program) : string list * Ast.program * Ast.program =
  let agg_heads =
    List.filter_map
      (fun (r : Ast.rule) ->
        if Ast.has_aggregate r.head then Some r.head.Ast.head_pred else None)
      p.rules
  in
  let rec saturate views =
    let more =
      List.filter_map
        (fun (r : Ast.rule) ->
          let head = r.head.Ast.head_pred in
          if List.mem head views then None
          else if List.exists (fun q -> List.mem q views) (Ast.body_preds r.body)
          then Some head
          else None)
        p.rules
    in
    if more = [] then views else saturate (List.sort_uniq String.compare (views @ more))
  in
  let views = saturate (List.sort_uniq String.compare agg_heads) in
  let view_rules, pipeline_rules =
    List.partition
      (fun (r : Ast.rule) -> List.mem r.head.Ast.head_pred views)
      p.rules
  in
  ( views,
    { p with Ast.rules = view_rules; facts = [] },
    { p with Ast.rules = pipeline_rules } )

let rec create ?(seed = 42) (topo : Netsim.Topology.t) (program : Ast.program) : t =
  (match Ndlog.Localize.check_localized program with
  | Ok () -> ()
  | Error e -> raise (Not_localized (Fmt.str "%a" Ndlog.Localize.pp_error e)));
  let info = Analysis.analyze_exn program in
  let sim = Netsim.Sim.create ~seed topo in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace nodes n
        {
          name = n;
          store = Store.empty;
          expiry = Softstate.Expiry.create program.Ast.decls;
          inserts = 0;
        })
    (Netsim.Topology.nodes topo);
  let view_preds, view_program, pipeline_program = split_views program in
  let strands = Hashtbl.create 32 in
  List.iter
    (fun (st : Ndlog.Plan.strand) ->
      match st.Ndlog.Plan.delta_pred with
      | Some pred ->
        Hashtbl.replace strands pred
          (st
          :: (match Hashtbl.find_opt strands pred with
             | Some l -> l
             | None -> []))
      | None -> ())
    (Ndlog.Plan.compile_program pipeline_program);
  (* Restore program order within each trigger's strand list. *)
  let strands' = Hashtbl.create 32 in
  Hashtbl.iter
    (fun pred l -> Hashtbl.replace strands' pred (List.rev l))
    strands;
  let t =
    {
      program = pipeline_program;
      info;
      sim;
      nodes;
      view_preds;
      view_program;
      strands = strands';
      joins = Eval.counters ();
      refresh_pending = false;
    }
  in
  (* Wire the message handler: a received tuple is inserted locally. *)
  List.iter
    (fun n ->
      Netsim.Sim.set_handler sim n (fun _sim ~self ~src:_ m ->
          insert t self m.pred m.tuple))
    (Netsim.Topology.nodes topo);
  t

and node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None -> invalid_arg ("Dist.Runtime: unknown node " ^ name)

(* Route a derived head tuple: insert locally or ship. *)
and emit t (self : string) (loc : int option) pred tuple =
  match tuple_location loc tuple with
  | Some owner when owner <> self ->
    ignore (Netsim.Sim.send t.sim ~src:self ~dst:owner { pred; tuple })
  | _ -> insert t self pred tuple

(* Pipelined semi-naive: react to one freshly inserted tuple by running
   the strands triggered by its predicate (the Click execution model;
   strand execution is differentially tested against [Eval.body_envs]
   in the plan test suite).  Each strand runs through the batched
   executor with a singleton batch: the runtime reacts per message, so
   deltas arrive one tuple at a time and groups are singletons — view
   refreshes, which re-run the full evaluator, batch across whole
   rounds. *)
and propagate t (self : string) pred (tuple : Store.Tuple.t) =
  let ns = node t self in
  match Hashtbl.find_opt t.strands pred with
  | None -> ()
  | Some strands ->
    List.iter
      (fun (st : Ndlog.Plan.strand) ->
        let head = st.Ndlog.Plan.strand_rule.Ast.head in
        List.iter
          (fun ht -> emit t self head.Ast.head_loc head.Ast.head_pred ht)
          (Ndlog.Plan.execute_batch ~stats:t.joins ns.store
             ~delta_tuples:[ tuple ] st))
      strands

and insert t (self : string) pred (tuple : Store.Tuple.t) =
  let ns = node t self in
  let now = Netsim.Sim.now t.sim in
  (* Refresh the soft-state lease even when the tuple is known. *)
  ns.expiry <- Softstate.Expiry.insert ns.expiry ~now pred tuple;
  if Softstate.Expiry.is_soft ns.expiry pred then schedule_expiry t self;
  if not (Store.mem pred tuple ns.store) then begin
    ns.store <- Store.add pred tuple ns.store;
    ns.inserts <- ns.inserts + 1;
    propagate t self pred tuple;
    if t.view_preds <> [] then request_refresh t
  end

(* Schedule a sweep at the node's next soft-state deadline. *)
and schedule_expiry t self =
  let ns = node t self in
  match Softstate.Expiry.next_deadline ns.expiry with
  | None -> ()
  | Some deadline ->
    let delay = max 0.0 (deadline -. Netsim.Sim.now t.sim) +. 1e-9 in
    Netsim.Sim.schedule t.sim ~delay (fun () -> sweep t self)

and sweep t self =
  let ns = node t self in
  let now = Netsim.Sim.now t.sim in
  let store', expiry' = Softstate.Expiry.sweep ns.expiry ~now ns.store in
  if not (Store.equal store' ns.store) then begin
    ns.store <- store';
    ns.expiry <- expiry';
    if t.view_preds <> [] then request_refresh t
  end
  else ns.expiry <- expiry'

(* View refresh is batched through a zero-delay event so that a burst of
   insertions triggers one recomputation. *)
and request_refresh t =
  if not t.refresh_pending then begin
    t.refresh_pending <- true;
    Netsim.Sim.schedule t.sim ~delay:0.0 (fun () ->
        t.refresh_pending <- false;
        refresh_views t)
  end

and refresh_views t =
  Hashtbl.iter
    (fun self ns ->
      (* Recompute views from the non-view part of the local store. *)
      let base =
        Store.restrict
          (List.filter
             (fun p -> not (List.mem p t.view_preds))
             (Store.preds ns.store))
          ns.store
      in
      (* Evaluate view rules against the base store. *)
      let info = t.info in
      let result = Eval.seminaive ~stats:t.joins t.view_program info base in
      let fresh = result.Eval.db in
      (* Replace local view relations; ship remote view tuples. *)
      let locs = loc_index_map t.view_program in
      List.iter
        (fun pred ->
          let new_rel = Store.relation pred fresh in
          let old_rel = Store.relation pred ns.store in
          let local_new =
            Store.Tset.filter
              (fun tuple ->
                match tuple_location (Hashtbl.find_opt locs pred) tuple with
                | Some owner -> owner = self
                | None -> true)
              new_rel
          in
          let remote_new =
            Store.Tset.filter
              (fun tuple ->
                match tuple_location (Hashtbl.find_opt locs pred) tuple with
                | Some owner -> owner <> self
                | None -> false)
              new_rel
          in
          if not (Store.Tset.equal local_new old_rel) then
            ns.store <- Store.set_relation pred local_new ns.store;
          Store.Tset.iter
            (fun tuple ->
              ignore
                (Netsim.Sim.send t.sim ~src:self
                   ~dst:(Option.get (tuple_location (Hashtbl.find_opt locs pred) tuple))
                   { pred; tuple }))
            remote_new)
        t.view_preds)
    t.nodes

(* ------------------------------------------------------------------ *)
(* Driving a run. *)

(* Load the program's facts into their owning nodes (at time zero, via
   zero-delay self events so ordering is deterministic). *)
let load_facts t =
  List.iter
    (fun (f : Ast.fact) ->
      let tuple = Array.of_list f.Ast.fact_args in
      match tuple_location f.Ast.fact_loc tuple with
      | Some owner ->
        Netsim.Sim.schedule t.sim ~delay:0.0 (fun () ->
            insert t owner f.Ast.fact_pred tuple)
      | None ->
        (* Unlocated facts are broadcast to every node. *)
        Hashtbl.iter
          (fun owner _ ->
            Netsim.Sim.schedule t.sim ~delay:0.0 (fun () ->
                insert t owner f.Ast.fact_pred tuple))
          t.nodes)
    t.program.Ast.facts

type run_report = {
  stats : Netsim.Sim.stats;
  total_inserts : int;
  eval_stats : Eval.stats;
}

let run ?(until = infinity) ?(max_events = 1_000_000) t =
  (* Strand execution and view refresh both accumulate into the
     runtime's own counters; the delta across the run is this run's
     join profile. *)
  let before = Eval.snapshot t.joins in
  let stats = Netsim.Sim.run ~until ~max_events t.sim in
  let after = Eval.snapshot t.joins in
  let total_inserts =
    Hashtbl.fold (fun _ ns acc -> acc + ns.inserts) t.nodes 0
  in
  {
    stats;
    total_inserts;
    eval_stats =
      {
        Eval.index_hits = after.Eval.index_hits - before.Eval.index_hits;
        scans = after.Eval.scans - before.Eval.scans;
        enumerated = after.Eval.enumerated - before.Eval.enumerated;
        matched = after.Eval.matched - before.Eval.matched;
        groups = after.Eval.groups - before.Eval.groups;
        group_probes = after.Eval.group_probes - before.Eval.group_probes;
      };
  }

(* The union of all node stores: the global database the distributed
   execution computed; comparable against the centralized evaluator. *)
let global_store t =
  Hashtbl.fold (fun _ ns acc -> Store.union ns.store acc) t.nodes Store.empty

let node_store t name = (node t name).store

let simulator t = t.sim
