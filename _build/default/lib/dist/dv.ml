(* A classic distance-vector protocol as a network state machine over
   {!Netsim}, used by experiment E2 to exhibit count-to-infinity after a
   link failure (the behaviour the paper proves present in the
   distance-vector NDlog program, Section 3.1).

   Nodes keep a routing table (destination -> cost, next hop) and
   advertise their full vector to neighbours, either on change
   (triggered updates) or on a periodic timer.  No split horizon and no
   poisoned reverse — exactly the naive protocol whose divergence the
   paper discusses.  [infinity_threshold] plays the role of RIP's metric
   16: once a route's cost crosses it the route is considered unusable,
   which is also how the run detects that counting-to-infinity happened. *)

module Smap = Map.Make (String)

type route = {
  cost : int;
  next_hop : string;
}

type node = {
  name : string;
  mutable table : route Smap.t;
  mutable advertisements : int;
}

type msg = Vector of (string * int) list  (* destination, cost *)

type t = {
  sim : msg Netsim.Sim.t;
  nodes : node Smap.t;
  infinity_threshold : int;
  period : float;  (* periodic re-advertisement interval *)
  mutable max_cost_seen : int;
}

let node t n = Smap.find n t.nodes

let table t n =
  Smap.bindings (node t n).table
  |> List.map (fun (d, r) -> (d, r.cost, r.next_hop))

let route_cost t n d =
  Option.map (fun r -> r.cost) (Smap.find_opt d (node t n).table)

(* Advertise [n]'s vector to all live neighbours. *)
let advertise t n =
  let nd = node t n in
  nd.advertisements <- nd.advertisements + 1;
  let vector =
    Smap.bindings nd.table |> List.map (fun (d, r) -> (d, r.cost))
  in
  let vector = (n, 0) :: vector in
  List.iter
    (fun nb -> ignore (Netsim.Sim.send t.sim ~src:n ~dst:nb (Vector vector)))
    (Netsim.Topology.neighbors (Netsim.Sim.topology t.sim) n)

(* Bellman-Ford update on receipt of a neighbour's vector. *)
let receive t ~self ~src (Vector vector) =
  let topo = Netsim.Sim.topology t.sim in
  match Netsim.Topology.link topo src self with
  | None -> ()
  | Some l when not l.Netsim.Topology.up -> ()
  | Some l ->
    let nd = node t self in
    let changed = ref false in
    List.iter
      (fun (dest, c) ->
        if dest <> self then begin
          let cand = c + l.Netsim.Topology.cost in
          let current = Smap.find_opt dest nd.table in
          let better =
            match current with
            | None -> true
            | Some r ->
              cand < r.cost
              (* Distance-vector also accepts *worse* news from the
                 current next hop: that is the mechanics that produces
                 count-to-infinity. *)
              || (r.next_hop = src && cand <> r.cost)
          in
          if better && cand < t.infinity_threshold then begin
            nd.table <- Smap.add dest { cost = cand; next_hop = src } nd.table;
            t.max_cost_seen <- max t.max_cost_seen cand;
            changed := true
          end
          else if better && cand >= t.infinity_threshold then begin
            (* Route became unusable. *)
            nd.table <- Smap.remove dest nd.table;
            t.max_cost_seen <- max t.max_cost_seen cand;
            changed := true
          end
        end)
      vector;
    if !changed then advertise t self

let rec periodic t n =
  advertise t n;
  Netsim.Sim.schedule t.sim ~delay:t.period (fun () -> periodic t n)

let create ?(seed = 42) ?(infinity_threshold = 64) ?(period = 0.0) topo =
  let sim = Netsim.Sim.create ~seed topo in
  let nodes =
    List.fold_left
      (fun m n -> Smap.add n { name = n; table = Smap.empty; advertisements = 0 } m)
      Smap.empty (Netsim.Topology.nodes topo)
  in
  let t = { sim; nodes; infinity_threshold; period; max_cost_seen = 0 } in
  Smap.iter
    (fun n _ -> Netsim.Sim.set_handler sim n (fun _ ~self ~src m -> receive t ~self ~src m))
    nodes;
  (* Bootstrap: everyone advertises itself at time 0. *)
  Smap.iter
    (fun n _ ->
      Netsim.Sim.schedule sim ~delay:0.0 (fun () ->
          advertise t n;
          if period > 0.0 then
            Netsim.Sim.schedule sim ~delay:period (fun () -> periodic t n)))
    nodes;
  t

let sim t = t.sim

type report = {
  stats : Netsim.Sim.stats;
  max_cost_seen : int;
  counted_to_infinity : bool;
  total_advertisements : int;
}

let run ?(until = infinity) ?(max_events = 200_000) t =
  let stats = Netsim.Sim.run ~until ~max_events t.sim in
  {
    stats;
    max_cost_seen = t.max_cost_seen;
    counted_to_infinity = t.max_cost_seen >= t.infinity_threshold;
    total_advertisements =
      Smap.fold (fun _ n acc -> acc + n.advertisements) t.nodes 0;
  }

(* Fail a duplex link at a given time.  The endpoints detect the failure
   (as a real router detects carrier loss) and drop the routes using the
   dead neighbour as next hop — silently, as the naive protocol does:
   recovery information only arrives through neighbours' subsequent
   advertisements, which is exactly what lets stale routes bounce. *)
let fail_link_at t ~time a b =
  Netsim.Sim.at t.sim ~time (fun () ->
      Netsim.Topology.fail_duplex (Netsim.Sim.topology t.sim) a b;
      let purge n dead =
        let nd = node t n in
        nd.table <- Smap.filter (fun _ r -> r.next_hop <> dead) nd.table
      in
      purge a b;
      purge b a)
