(** Distributed NDlog execution (the P2 substitute; arc 7 of the
    paper's Figure 1).

    Every simulator node runs the same {e localized} program
    ({!Ndlog.Localize}) over its own tuple store.  Execution is
    pipelined semi-naive: inserting a tuple triggers the rules reading
    its predicate with the new tuple as the delta; derived heads
    located at the executing node recurse locally, heads located
    elsewhere become network messages.

    Aggregate strata are maintained as locally refreshed views, so
    non-monotonic updates (a better best-path displacing a worse one)
    are handled by replacement rather than distributed deletion; view
    tuples located at other nodes ship as inserts.  Soft-state tuples
    expire per their [materialize] lifetimes, with leases refreshed on
    re-insertion. *)

(** A tuple on the wire. *)
type msg = {
  pred : string;
  tuple : Ndlog.Store.Tuple.t;
}

type t

exception Not_localized of string

val create : ?seed:int -> Netsim.Topology.t -> Ndlog.Ast.program -> t
(** @raise Not_localized when some rule body spans locations (run
    {!Ndlog.Localize.rewrite_program} first).
    @raise Invalid_argument on analysis failure. *)

val load_facts : t -> unit
(** Schedule the program's facts for insertion at their owning nodes at
    time zero (unlocated facts broadcast). *)

val insert : t -> string -> string -> Ndlog.Store.Tuple.t -> unit
(** [insert t node pred tuple]: immediate local insertion (also the
    message handler). *)

type run_report = {
  stats : Netsim.Sim.stats;
  total_inserts : int;  (** local tuple insertions across all nodes *)
  eval_stats : Ndlog.Eval.stats;
      (** join profile of the run: strand execution and view refresh
          counted through {!Ndlog.Eval.stats} *)
}

val run : ?until:float -> ?max_events:int -> t -> run_report

val global_store : t -> Ndlog.Store.t
(** Union of all node stores: the global database the distributed
    execution computed (comparable against the centralized
    evaluator). *)

val node_store : t -> string -> Ndlog.Store.t
val simulator : t -> msg Netsim.Sim.t
