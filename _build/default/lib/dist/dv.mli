(** A classic distance-vector protocol over {!Netsim}, used by
    experiment E2 to exhibit count-to-infinity after a link failure
    (the behaviour the paper proves present in the distance-vector
    NDlog program, Section 3.1).

    Nodes keep a routing table (destination -> cost, next hop) and
    advertise their vector to neighbours on change and, optionally, on
    a periodic timer.  No split horizon, no poisoned reverse: the naive
    protocol.  [infinity_threshold] plays RIP's metric 16 — crossing it
    withdraws the route and flags the run as having counted to
    infinity. *)

type t

type msg = Vector of (string * int) list  (** destination, cost *)

val create :
  ?seed:int -> ?infinity_threshold:int -> ?period:float -> Netsim.Topology.t -> t
(** [period > 0] installs periodic re-advertisement (needed for
    stale-route propagation after failures); default 0 (triggered
    updates only).  Default threshold 64. *)

val sim : t -> msg Netsim.Sim.t

val table : t -> string -> (string * int * string) list
(** [(destination, cost, next hop)] rows of a node's table. *)

val route_cost : t -> string -> string -> int option

val advertise : t -> string -> unit
(** Force a node to advertise its vector now. *)

type report = {
  stats : Netsim.Sim.stats;
  max_cost_seen : int;
  counted_to_infinity : bool;  (** some metric reached the threshold *)
  total_advertisements : int;
}

val run : ?until:float -> ?max_events:int -> t -> report

val fail_link_at : t -> time:float -> string -> string -> unit
(** Fail a duplex link at a given time; the endpoints detect it and
    silently drop routes through the dead neighbour (recovery
    information then only arrives via neighbours' advertisements —
    exactly what lets stale routes bounce). *)
