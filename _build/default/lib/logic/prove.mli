(** Automated proof search.

    The strategy mirrors what interactive provers automate for this
    class of goals (the paper: "typically two-thirds of the proof steps
    can be automated by the theorem prover's default proof
    strategies"): exhaustive invertible rules, closure attempts
    (assumption / evaluation / arithmetic / contradiction), forward
    chaining over Horn clauses (from the theory {e and} from
    universally quantified hypotheses), and fuel-bounded non-invertible
    moves (definition unfolding, witness search, backchaining) under
    iterative deepening.

    The searcher is untrusted: every success returns an explicit
    {!Proof.t} that {!Checker} re-validates. *)

type stats = {
  mutable nodes_explored : int;
  mutable forward_derived : int;
  mutable unfolds : int;
}

type config = {
  theory : Theory.t;
  clauses : Theory.clause list;
  max_forward_rounds : int;
  max_candidates : int;  (** cap on existential witness candidates *)
  node_budget : int;  (** hard cap on explored search nodes *)
  forward_budget : int;  (** hard cap on forward-chained facts *)
  stats : stats;
}

val make_config :
  ?max_forward_rounds:int ->
  ?max_candidates:int ->
  ?node_budget:int ->
  ?forward_budget:int ->
  Theory.t ->
  config

val solve : config -> Sequent.t -> int -> Proof.t option
(** One search attempt with the given fuel (count of non-invertible
    steps allowed along a branch).  Exposed for the tactic layer's
    [grind]. *)

(** A successful, kernel-checked proof. *)
type outcome = {
  proof : Proof.t;
  steps : int;  (** proof size: kernel inference count *)
  nodes_explored : int;
  checked : bool;  (** always true in returned outcomes *)
  elapsed : float;  (** seconds (processor time) *)
}

exception Proof_failed of string

val prove :
  ?max_fuel:int ->
  Theory.t ->
  ?hyps:Formula.t list ->
  Formula.t ->
  (outcome, string) result
(** Iterative deepening up to [max_fuel]; the returned proof has been
    accepted by the kernel. *)

val prove_by_induction :
  ?max_fuel:int ->
  Theory.t ->
  ?hyps:Formula.t list ->
  on:string ->
  Formula.t ->
  (outcome, string) result
(** Prove [forall xs. pred(xs) => Phi] by fixpoint induction on [on]:
    one automated sub-proof per defining rule, combined into a kernel-
    checked [Induct] proof. *)

val assert_lemma :
  ?max_fuel:int ->
  ?by_induction_on:string ->
  Theory.t ->
  string ->
  Formula.t ->
  (Theory.t * outcome, string) result
(** Prove a conjecture and, on success, add it to the theory as a
    [Lemma] (available to forward chaining and [use] in later proofs). *)

val prove_exn :
  ?max_fuel:int -> Theory.t -> ?hyps:Formula.t list -> Formula.t -> outcome
(** @raise Proof_failed when no proof is found. *)
