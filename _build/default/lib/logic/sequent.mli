(** Sequents: hypotheses and a single goal formula.

    The prover manipulates sequents; the checker re-validates every
    inference against the same representation.  Rules that consume a
    hypothesis identify it by formula value, not position, so proofs
    are robust under hypothesis reordering. *)

type t = {
  hyps : Formula.t list;  (** most recent first *)
  goal : Formula.t;
  processed : Formula.t list;
      (** search-only bookkeeping: formulas already decomposed by a left
          rule on this branch; the checker ignores this field, the
          prover uses it to keep forward chaining from re-deriving a
          hypothesis it already split *)
}

val make : ?hyps:Formula.t list -> Formula.t -> t
val mark_processed : Formula.t -> t -> t
val is_processed : Formula.t -> t -> bool
val has_hyp : Formula.t -> t -> bool

val add_hyp : Formula.t -> t -> t
(** Set semantics: adding a present hypothesis is a no-op. *)

val remove_hyp : Formula.t -> t -> t
(** Removes the first occurrence. *)

val set_goal : Formula.t -> t -> t

val constants : t -> Term.Sset.t
(** Every constant symbol (0-ary function) in the sequent; the domain of
    the eigenvariable freshness check. *)

val fresh_const : t -> string -> string
(** Deterministic skolem naming: the base name when unused, else
    [base_1], [base_2], ...  Determinism lets scripted proofs refer to
    skolem constants by name. *)

val candidate_terms : t -> Term.t list
(** Ground terms occurring in the sequent, deduplicated: the prover's
    quantifier-instantiation candidates. *)

val pp : t Fmt.t
val to_string : t -> string
