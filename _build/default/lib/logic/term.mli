(** First-order terms.

    Constants reuse the NDlog value domain ({!Ndlog.Value.t}) so that
    translated programs and evaluated tuples share one vocabulary;
    function symbols cover the NDlog builtins and arithmetic. *)

module Value = Ndlog.Value

type t =
  | Var of string
  | Cst of Value.t
  | Fn of string * t list
      (** applications; 0-ary applications are the skolem constants
          introduced by quantifier rules *)

val compare : t -> t -> int
val equal : t -> t -> bool

module Sset : Set.S with type elt = string and type t = Set.Make(String).t
module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

val free_vars : Sset.t -> t -> Sset.t
val vars : t -> Sset.t

(** {1 Substitutions} *)

type subst = t Smap.t

val subst_empty : subst
val subst_bind : string -> t -> subst -> subst
val subst_find : string -> subst -> t option
val subst_of_list : (string * t) list -> subst
val apply_subst : subst -> t -> t

val matching : subst -> t -> t -> subst option
(** One-way matching: extend the substitution so that
    [pattern{sigma} = target].  Variables in the target are opaque. *)

val occurs : string -> t -> bool

val unify : subst -> t -> t -> subst option
(** Syntactic unification with occurs check. *)

val subterms : t list -> t -> t list
(** All subterms, accumulated (instantiation candidates). *)

val is_ground : t -> bool

val eval : t -> Value.t option
(** Ground evaluation of interpreted symbols: arithmetic ([+], [-],
    [*], [/]) and the NDlog builtins.  [None] for variables and
    uninterpreted or ill-sorted applications. *)

val pp : t Fmt.t
val to_string : t -> string

(** {1 Constructors} *)

val var : string -> t
val cst : Value.t -> t
val int : int -> t
val fn : string -> t list -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
