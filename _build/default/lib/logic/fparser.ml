(* A parser for first-order formulas, so properties can be stated as
   text (the fvnc CLI's [--goal], test fixtures, documentation).

   Syntax (precedence low to high: iff, imp, or, and, not):

     formula ::= forall idents . formula
               | exists idents . formula
               | iff
     iff     ::= imp [ <=> iff ]
     imp     ::= or  [ => imp ]             (right associative)
     or      ::= and { OR and }             (OR is backslash-slash)
     and     ::= not { AND not }            (AND is slash-backslash)
     not     ::= ~ not | true | false | ( formula )
               | pred ( terms ) | term cmp term
     cmp     ::= = | != | < | <= | > | >=
     term    ::= sum;  sum ::= prod { (+|-) prod }
     prod    ::= prim { * prim }
     prim    ::= INT | STRING | ident [ ( terms ) ] | ( term )

   Identifier interpretation: names bound by an enclosing quantifier are
   variables; other capitalized names are free variables; lowercase
   names are constants (0-ary functions) or function/predicate
   applications. *)

exception Parse_error of string

type token =
  | ID of string
  | INT of int
  | STR of string
  | LP
  | RP
  | COMMA
  | DOT
  | TILDE
  | AND
  | OR
  | IMP
  | IFF
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | EOF

let tokenize (src : string) : token list =
  let n = String.length src in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (LP :: acc)
      | ')' -> go (i + 1) (RP :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '.' -> go (i + 1) (DOT :: acc)
      | '~' -> go (i + 1) (TILDE :: acc)
      | '+' -> go (i + 1) (PLUS :: acc)
      | '-' -> go (i + 1) (MINUS :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '/' when i + 1 < n && src.[i + 1] = '\\' -> go (i + 2) (AND :: acc)
      | '\\' when i + 1 < n && src.[i + 1] = '/' -> go (i + 2) (OR :: acc)
      | '=' when i + 1 < n && src.[i + 1] = '>' -> go (i + 2) (IMP :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '!' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (NE :: acc)
      | '<' when i + 2 < n && src.[i + 1] = '=' && src.[i + 2] = '>' ->
        go (i + 3) (IFF :: acc)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (LE :: acc)
      | '<' -> go (i + 1) (LT :: acc)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> go (i + 2) (GE :: acc)
      | '>' -> go (i + 1) (GT :: acc)
      | '"' ->
        let j = ref (i + 1) in
        let buf = Buffer.create 8 in
        while !j < n && src.[!j] <> '"' do
          Buffer.add_char buf src.[!j];
          incr j
        done;
        if !j >= n then raise (Parse_error "unterminated string");
        go (!j + 1) (STR (Buffer.contents buf) :: acc)
      | '0' .. '9' ->
        let j = ref i in
        while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do
          incr j
        done;
        go !j (INT (int_of_string (String.sub src i (!j - i))) :: acc)
      | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref i in
        while
          !j < n
          && (match src.[!j] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
             | _ -> false)
        do
          incr j
        done;
        go !j (ID (String.sub src i (!j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  go 0 []

type state = {
  mutable toks : token list;
  mutable bound : string list;  (* quantified names in scope *)
}

let peek st = match st.toks with t :: _ -> t | [] -> EOF

let next st =
  match st.toks with
  | t :: rest ->
    st.toks <- rest;
    t
  | [] -> EOF

let expect st t what =
  let got = next st in
  if got <> t then raise (Parse_error ("expected " ^ what))

let is_capitalized s =
  String.length s > 0 && match s.[0] with 'A' .. 'Z' -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Terms. *)

let rec parse_term st : Term.t =
  let lhs = parse_prod st in
  match peek st with
  | PLUS ->
    ignore (next st);
    Term.Fn ("+", [ lhs; parse_term st ])
  | MINUS ->
    ignore (next st);
    Term.Fn ("-", [ lhs; parse_term st ])
  | _ -> lhs

and parse_prod st : Term.t =
  let lhs = parse_prim st in
  match peek st with
  | STAR ->
    ignore (next st);
    Term.Fn ("*", [ lhs; parse_prod st ])
  | _ -> lhs

and parse_prim st : Term.t =
  match next st with
  | INT n -> Term.int n
  | STR s -> Term.Cst (Ndlog.Value.Str s)
  | LP ->
    let t = parse_term st in
    expect st RP "')'";
    t
  | ID name -> (
    match peek st with
    | LP ->
      ignore (next st);
      let args = parse_term_args st in
      Term.Fn (name, args)
    | _ ->
      if List.mem name st.bound || is_capitalized name then Term.Var name
      else Term.Fn (name, []))
  | _ -> raise (Parse_error "expected a term")

and parse_term_args st : Term.t list =
  match peek st with
  | RP ->
    ignore (next st);
    []
  | _ ->
    let rec go acc =
      let t = parse_term st in
      match next st with
      | COMMA -> go (t :: acc)
      | RP -> List.rev (t :: acc)
      | _ -> raise (Parse_error "expected ',' or ')'")
    in
    go []

(* ------------------------------------------------------------------ *)
(* Formulas. *)

let cmp_formula op a b : Formula.t =
  match op with
  | EQ -> Formula.Eq (a, b)
  | NE -> Formula.Not (Formula.Eq (a, b))
  | LT -> Formula.Lt (a, b)
  | LE -> Formula.Le (a, b)
  | GT -> Formula.Lt (b, a)
  | GE -> Formula.Le (b, a)
  | _ -> assert false

let rec parse_formula st : Formula.t =
  match peek st with
  | ID "forall" -> parse_quant st (fun x f -> Formula.All (x, f))
  | ID "exists" -> parse_quant st (fun x f -> Formula.Ex (x, f))
  | _ -> parse_iff st

and parse_quant st rebuild : Formula.t =
  ignore (next st);
  let rec idents acc =
    match peek st with
    | ID x when x <> "forall" && x <> "exists" ->
      ignore (next st);
      idents (x :: acc)
    | DOT ->
      ignore (next st);
      List.rev acc
    | _ -> raise (Parse_error "expected identifiers then '.'")
  in
  let xs = idents [] in
  if xs = [] then raise (Parse_error "quantifier binds no variables");
  let saved = st.bound in
  st.bound <- xs @ st.bound;
  let body = parse_formula st in
  st.bound <- saved;
  List.fold_right rebuild xs body

and parse_iff st : Formula.t =
  let lhs = parse_imp st in
  match peek st with
  | IFF ->
    ignore (next st);
    Formula.Iff (lhs, parse_iff st)
  | _ -> lhs

and parse_imp st : Formula.t =
  let lhs = parse_or st in
  match peek st with
  | IMP ->
    ignore (next st);
    Formula.Imp (lhs, parse_imp st)
  | _ -> lhs

and parse_or st : Formula.t =
  let lhs = parse_and st in
  match peek st with
  | OR ->
    ignore (next st);
    Formula.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st : Formula.t =
  let lhs = parse_not st in
  match peek st with
  | AND ->
    ignore (next st);
    Formula.And (lhs, parse_and st)
  | _ -> lhs

and parse_not st : Formula.t =
  match peek st with
  | TILDE ->
    ignore (next st);
    Formula.Not (parse_not st)
  | ID "true" ->
    ignore (next st);
    Formula.Tru
  | ID "false" ->
    ignore (next st);
    Formula.Fls
  | ID ("forall" | "exists") -> parse_formula st
  | LP ->
    (* Could be a parenthesized formula or a parenthesized term followed
       by a comparison; try formula first by lookahead on the closing
       context.  We parse as formula and fall back to term-comparison on
       failure. *)
    parse_paren_or_cmp st
  | _ -> parse_atom_or_cmp st

and parse_paren_or_cmp st : Formula.t =
  let saved_toks = st.toks and saved_bound = st.bound in
  (try
     ignore (next st);
     let f = parse_formula st in
     expect st RP "')'";
     f
   with Parse_error _ ->
     st.toks <- saved_toks;
     st.bound <- saved_bound;
     parse_atom_or_cmp st)

and parse_atom_or_cmp st : Formula.t =
  (* An atom [pred(args)] (or a propositional constant [pred]), or
     [term cmp term].  Parse a term first: applications like
     [f_size(P)] may be interpreted functions inside a comparison; a
     lowercase application or name with no comparison following is an
     atom. *)
  let lhs = parse_term st in
  match peek st with
  | EQ | NE | LT | LE | GT | GE ->
    let op = next st in
    let rhs = parse_term st in
    cmp_formula op lhs rhs
  | _ -> (
    match lhs with
    | Term.Fn (name, args) when not (is_capitalized name) ->
      Formula.Atom (name, args)
    | _ -> raise (Parse_error "expected a comparison after term"))

let parse (src : string) : (Formula.t, string) result =
  match
    let st = { toks = tokenize src; bound = [] } in
    let f = parse_formula st in
    expect st EOF "end of input";
    f
  with
  | f -> Ok f
  | exception Parse_error msg -> Error msg

let parse_exn src =
  match parse src with Ok f -> f | Error e -> raise (Parse_error e)
