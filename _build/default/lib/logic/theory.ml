(* Theories: named collections of axioms and predicate definitions.

   A [Definition] entry is an iff-completion of a predicate (the PVS
   "INDUCTIVE bool" of the paper): forall args, p(args) <=> rhs.  The
   prover uses definitions for unfolding; plain axioms feed forward
   chaining and instantiation. *)

type kind =
  | Definition of string  (* the defined predicate *)
  | Axiom
  | Lemma  (* a previously proven theorem, reusable as an axiom *)

type entry = {
  name : string;
  formula : Formula.t;
  kind : kind;
}

(* An inductively defined predicate: its name, arity, and the
   (non-aggregate) NDlog rules defining it.  Registered by
   {!Completion}; consumed by the kernel's fixpoint-induction rule. *)
type inductive = {
  ind_pred : string;
  ind_arity : int;
  ind_rules : Ndlog.Ast.rule list;
}

type t = {
  entries : entry list;
  inductives : inductive list;
}

let empty = { entries = []; inductives = [] }

let add ?(kind = Axiom) name formula thy =
  if not (Formula.is_closed formula) then
    invalid_arg
      (Fmt.str "Theory.add: %s has free variables: %a" name Formula.pp formula);
  { thy with entries = thy.entries @ [ { name; formula; kind } ] }

let add_definition ~pred name formula thy =
  add ~kind:(Definition pred) name formula thy

let find name thy = List.find_opt (fun e -> e.name = name) thy.entries

let find_exn name thy =
  match find name thy with
  | Some e -> e
  | None -> invalid_arg ("Theory.find_exn: no axiom named " ^ name)

let definition_of pred thy =
  List.find_opt
    (fun e -> match e.kind with Definition p -> p = pred | _ -> false)
    thy.entries

let names thy = List.map (fun e -> e.name) thy.entries

let add_inductive ~pred ~arity ~rules thy =
  {
    thy with
    inductives =
      thy.inductives @ [ { ind_pred = pred; ind_arity = arity; ind_rules = rules } ];
  }

let inductive_of pred thy =
  List.find_opt (fun i -> i.ind_pred = pred) thy.inductives

let merge a b =
  { entries = a.entries @ b.entries; inductives = a.inductives @ b.inductives }

(* ------------------------------------------------------------------ *)
(* Horn view: flatten an axiom into (universals, antecedent literals,
   consequent literal) when it has that shape; used by the prover's
   forward-chaining engine.  Inner universal quantifiers to the right of
   implications are lifted (classically valid prenexing for positive
   positions). *)

type clause = {
  clause_name : string;
  clause_vars : string list;
  antecedents : Formula.t list;
  consequent : Formula.t;
}

let rec split_conj = function
  | Formula.And (a, b) -> split_conj a @ split_conj b
  | Formula.Tru -> []
  | f -> [ f ]

let clause_of_formula name f : clause option =
  let rec go vars antecedents = function
    | Formula.All (x, body) -> go (x :: vars) antecedents body
    | Formula.Imp (a, b) -> go vars (antecedents @ split_conj a) b
    | (Formula.Atom _ | Formula.Eq _ | Formula.Lt _ | Formula.Le _ | Formula.Fls
      | Formula.Ex _ | Formula.Or _ | Formula.Not _) as head ->
      Some
        {
          clause_name = name;
          clause_vars = List.rev vars;
          antecedents;
          consequent = head;
        }
    | _ -> None
  in
  go [] [] f

let horn_clauses thy : clause list =
  List.filter_map
    (fun e ->
      match e.kind with
      | Definition _ -> None
      | Axiom | Lemma -> clause_of_formula e.name e.formula)
    thy.entries

let pp_entry ppf e =
  let k =
    match e.kind with
    | Definition p -> Printf.sprintf "def(%s)" p
    | Axiom -> "axiom"
    | Lemma -> "lemma"
  in
  Fmt.pf ppf "%-10s %s: %a" k e.name Formula.pp e.formula

let pp ppf thy =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) thy.entries
