(* Proof objects: explicit sequent-calculus derivations.

   The prover *constructs* these trees; {!Checker} independently
   re-validates every node, so the trusted core is the checker plus the
   two semantic leaf rules ([Arith], [Eval]).  This mirrors the paper's
   division of labour: proof search may be heuristic, but nothing counts
   as verified until the kernel has accepted the derivation. *)

type t =
  (* Leaves. *)
  | Assumption  (* the goal appears among the hypotheses *)
  | TrueR  (* goal is [true] *)
  | FalseL  (* [false] appears among the hypotheses *)
  | Arith  (* hypotheses entail the goal by linear integer arithmetic *)
  | Eval  (* the goal is closed and evaluates to [true] *)
  | EvalL of Formula.t  (* the hypothesis is closed and evaluates to [false] *)
  (* Right rules (on the goal). *)
  | AndR of t * t
  | OrR1 of t
  | OrR2 of t
  | ImpR of t
  | IffR of t * t
  | NotR of t
  | AllR of string * t  (* eigenvariable (fresh constant name) *)
  | ExR of Term.t * t  (* witness *)
  (* Left rules (on a hypothesis, selected by formula value). *)
  | AndL of Formula.t * t
  | OrL of Formula.t * t * t
  | ImpL of Formula.t * t * t  (* prove antecedent / use consequent *)
  | IffL of Formula.t * t  (* replace with the two implications *)
  | NotL of Formula.t * t  (* replace [~A] with [A => false] *)
  | AllL of Formula.t * Term.t * t  (* add an instance *)
  | ExL of Formula.t * string * t  (* skolemize with a fresh constant *)
  (* Structural. *)
  | AxiomR of string * t  (* bring a named theory axiom into scope *)
  | Cut of Formula.t * t * t
  (* Fixpoint induction over an inductively defined predicate: the goal
     must be [forall xs. pred(xs) => Phi(xs)]; one subproof per defining
     rule establishes Phi for the rule's head assuming the rule body and
     the induction hypothesis for recursive body atoms. *)
  | Induct of string * t list

(* Number of inference nodes: the "proof steps" measure reported by
   experiment E1. *)
let rec size = function
  | Assumption | TrueR | FalseL | Arith | Eval | EvalL _ -> 1
  | ImpR p | NotR p | AllR (_, p) | OrR1 p | OrR2 p -> 1 + size p
  | ExR (_, p)
  | AndL (_, p)
  | IffL (_, p)
  | NotL (_, p)
  | AllL (_, _, p)
  | ExL (_, _, p)
  | AxiomR (_, p) ->
    1 + size p
  | AndR (a, b) | IffR (a, b) | OrL (_, a, b) | ImpL (_, a, b) | Cut (_, a, b)
    ->
    1 + size a + size b
  | Induct (_, ps) -> List.fold_left (fun acc p -> acc + size p) 1 ps

let rec depth = function
  | Assumption | TrueR | FalseL | Arith | Eval | EvalL _ -> 1
  | ImpR p | NotR p | AllR (_, p) | OrR1 p | OrR2 p -> 1 + depth p
  | ExR (_, p)
  | AndL (_, p)
  | IffL (_, p)
  | NotL (_, p)
  | AllL (_, _, p)
  | ExL (_, _, p)
  | AxiomR (_, p) ->
    1 + depth p
  | AndR (a, b) | IffR (a, b) | OrL (_, a, b) | ImpL (_, a, b) | Cut (_, a, b)
    ->
    1 + max (depth a) (depth b)
  | Induct (_, ps) -> 1 + List.fold_left (fun acc p -> max acc (depth p)) 0 ps

let rule_name = function
  | Assumption -> "assumption"
  | TrueR -> "trueR"
  | FalseL -> "falseL"
  | Arith -> "arith"
  | Eval -> "eval"
  | EvalL _ -> "evalL"
  | AndR _ -> "andR"
  | OrR1 _ -> "orR1"
  | OrR2 _ -> "orR2"
  | ImpR _ -> "impR"
  | IffR _ -> "iffR"
  | NotR _ -> "notR"
  | AllR _ -> "allR"
  | ExR _ -> "exR"
  | AndL _ -> "andL"
  | OrL _ -> "orL"
  | ImpL _ -> "impL"
  | IffL _ -> "iffL"
  | NotL _ -> "notL"
  | AllL _ -> "allL"
  | ExL _ -> "exL"
  | AxiomR _ -> "axiom"
  | Cut _ -> "cut"
  | Induct _ -> "induct"

let rec pp ?(indent = 0) ppf p =
  let pad = String.make indent ' ' in
  match p with
  | Assumption | TrueR | FalseL | Arith | Eval ->
    Fmt.pf ppf "%s%s@." pad (rule_name p)
  | EvalL f -> Fmt.pf ppf "%sevalL %a@." pad Formula.pp f
  | ImpR q | NotR q | OrR1 q | OrR2 q ->
    Fmt.pf ppf "%s%s@." pad (rule_name p);
    pp ~indent:(indent + 2) ppf q
  | AllR (c, q) ->
    Fmt.pf ppf "%sallR %s@." pad c;
    pp ~indent:(indent + 2) ppf q
  | ExR (t, q) ->
    Fmt.pf ppf "%sexR %a@." pad Term.pp t;
    pp ~indent:(indent + 2) ppf q
  | AndL (f, q) | IffL (f, q) | NotL (f, q) ->
    Fmt.pf ppf "%s%s %a@." pad (rule_name p) Formula.pp f;
    pp ~indent:(indent + 2) ppf q
  | AllL (f, t, q) ->
    Fmt.pf ppf "%sallL %a with %a@." pad Formula.pp f Term.pp t;
    pp ~indent:(indent + 2) ppf q
  | ExL (f, c, q) ->
    Fmt.pf ppf "%sexL %a as %s@." pad Formula.pp f c;
    pp ~indent:(indent + 2) ppf q
  | AxiomR (n, q) ->
    Fmt.pf ppf "%saxiom %s@." pad n;
    pp ~indent:(indent + 2) ppf q
  | AndR (a, b) | IffR (a, b) ->
    Fmt.pf ppf "%s%s@." pad (rule_name p);
    pp ~indent:(indent + 2) ppf a;
    pp ~indent:(indent + 2) ppf b
  | OrL (f, a, b) | ImpL (f, a, b) | Cut (f, a, b) ->
    Fmt.pf ppf "%s%s %a@." pad (rule_name p) Formula.pp f;
    pp ~indent:(indent + 2) ppf a;
    pp ~indent:(indent + 2) ppf b
  | Induct (pred, ps) ->
    Fmt.pf ppf "%sinduct %s@." pad pred;
    List.iter (pp ~indent:(indent + 2) ppf) ps

let pp ppf p = pp ~indent:0 ppf p
