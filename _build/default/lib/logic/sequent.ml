(* Sequents: a list of hypotheses and a single goal formula.

   The prover manipulates sequents; the checker re-validates every
   inference against the same representation.  Hypotheses are kept in a
   list (most recent first); rules that consume a hypothesis identify it
   by formula value, not by position, which keeps proofs robust under
   hypothesis reordering. *)

type t = {
  hyps : Formula.t list;
  goal : Formula.t;
  (* Search-only bookkeeping: formulas already decomposed by a left
     rule on this branch.  The checker ignores this field; the prover
     uses it to stop forward chaining from re-deriving a hypothesis that
     was already split (which would loop).  *)
  processed : Formula.t list;
}

let make ?(hyps = []) goal = { hyps; goal; processed = [] }

let mark_processed f s = { s with processed = f :: s.processed }
let is_processed f s = List.exists (Formula.equal f) s.processed

let has_hyp f s = List.exists (Formula.equal f) s.hyps

(* Add a hypothesis unless already present (set semantics keeps forward
   chaining terminating). *)
let add_hyp f s = if has_hyp f s then s else { s with hyps = f :: s.hyps }

let remove_hyp f s =
  let rec drop = function
    | [] -> []
    | h :: rest -> if Formula.equal h f then rest else h :: drop rest
  in
  { s with hyps = drop s.hyps }

let set_goal g s = { s with goal = g }

(* Every constant symbol (0-ary function) occurring in the sequent; used
   for eigenvariable freshness checks. *)
let constants s =
  let rec consts_of_term acc = function
    | Term.Var _ | Term.Cst _ -> acc
    | Term.Fn (f, []) -> Term.Sset.add f acc
    | Term.Fn (_, args) -> List.fold_left consts_of_term acc args
  in
  let consts_of_formula acc f =
    List.fold_left consts_of_term acc (Formula.terms [] f)
  in
  List.fold_left consts_of_formula
    (consts_of_formula Term.Sset.empty s.goal)
    s.hyps

(* Deterministic skolem naming: the quantified variable's own name when
   available, then [name_1], [name_2], ...  Determinism lets scripted
   proofs refer to skolem constants by name. *)
let fresh_const s base =
  let used = constants s in
  if not (Term.Sset.mem base used) then base
  else
    let rec go i =
      let c = Printf.sprintf "%s_%d" base i in
      if Term.Sset.mem c used then go (i + 1) else c
    in
    go 1

(* Ground candidate terms occurring in the sequent, for quantifier
   instantiation. *)
let candidate_terms s =
  let all =
    List.fold_left
      (fun acc f -> Formula.terms acc f)
      (Formula.terms [] s.goal)
      s.hyps
  in
  List.filter Term.is_ground all
  |> List.sort_uniq Term.compare

let pp ppf s =
  List.iter (fun h -> Fmt.pf ppf "  %a@." Formula.pp h) (List.rev s.hyps);
  Fmt.pf ppf "  |- %a" Formula.pp s.goal

let to_string s = Fmt.str "%a" pp s
