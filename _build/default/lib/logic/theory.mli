(** Theories: named axioms, predicate definitions, and inductive
    systems.

    A [Definition] entry is an iff-completion of a predicate (the PVS
    [INDUCTIVE bool] of the paper); the prover unfolds definitions.
    Plain axioms feed forward chaining and instantiation.  Inductive
    registrations carry the defining NDlog rules, consumed by the
    kernel's fixpoint-induction rule. *)

type kind =
  | Definition of string  (** the defined predicate *)
  | Axiom
  | Lemma  (** a previously proven theorem, reusable as an axiom *)

type entry = {
  name : string;
  formula : Formula.t;
  kind : kind;
}

(** An inductively defined predicate: name, arity, and the
    (non-aggregate) NDlog rules defining it. *)
type inductive = {
  ind_pred : string;
  ind_arity : int;
  ind_rules : Ndlog.Ast.rule list;
}

type t = {
  entries : entry list;
  inductives : inductive list;
}

val empty : t

val add : ?kind:kind -> string -> Formula.t -> t -> t
(** @raise Invalid_argument if the formula has free variables. *)

val add_definition : pred:string -> string -> Formula.t -> t -> t
val find : string -> t -> entry option

val find_exn : string -> t -> entry
(** @raise Invalid_argument when absent. *)

val definition_of : string -> t -> entry option
(** The [Definition] entry for a predicate, if any. *)

val names : t -> string list
val add_inductive : pred:string -> arity:int -> rules:Ndlog.Ast.rule list -> t -> t
val inductive_of : string -> t -> inductive option
val merge : t -> t -> t

(** {1 Horn view}

    Axioms flattened to [forall xs. A1 /\ ... /\ An => B] feed the
    prover's forward-chaining engine.  Inner universal quantifiers to
    the right of implications are lifted (classically valid prenexing
    in positive positions). *)

type clause = {
  clause_name : string;
  clause_vars : string list;
  antecedents : Formula.t list;
  consequent : Formula.t;
}

val split_conj : Formula.t -> Formula.t list

val clause_of_formula : string -> Formula.t -> clause option
(** [None] when the formula is not Horn-shaped.  Consequents may be
    atoms, comparisons, [Fls], existentials, disjunctions, or
    negations. *)

val horn_clauses : t -> clause list
(** Clauses of all [Axiom]/[Lemma] entries (definitions are used by
    unfolding instead). *)

val pp_entry : entry Fmt.t
val pp : t Fmt.t
