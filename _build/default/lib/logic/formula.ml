(* First-order formulas with equality and integer comparisons.

   Comparisons are normalized at construction: only [Lt] and [Le] exist
   ([a > b] is stored as [b < a]).  Negation, implication, etc. are all
   primitive so that proof rules stay syntax-directed. *)

type t =
  | Atom of string * Term.t list
  | Eq of Term.t * Term.t
  | Lt of Term.t * Term.t
  | Le of Term.t * Term.t
  | Tru
  | Fls
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | All of string * t
  | Ex of string * t

(* Terms contain only comparable payloads (strings, Value.t), so the
   polymorphic comparison is a sound total order here. *)
let compare (a : t) (b : t) = Stdlib.compare a b
let equal a b = compare a b = 0

(* Smart constructors. *)
let atom p args = Atom (p, args)
let eq a b = Eq (a, b)
let lt a b = Lt (a, b)
let le a b = Le (a, b)
let gt a b = Lt (b, a)
let ge a b = Le (b, a)
let neg f = Not f

let conj = function [] -> Tru | f :: fs -> List.fold_left (fun a b -> And (a, b)) f fs
let disj = function [] -> Fls | f :: fs -> List.fold_left (fun a b -> Or (a, b)) f fs

let imp a b = Imp (a, b)
let iff a b = Iff (a, b)
let all x f = All (x, f)
let ex x f = Ex (x, f)
let all_list xs f = List.fold_right (fun x g -> All (x, g)) xs f
let ex_list xs f = List.fold_right (fun x g -> Ex (x, g)) xs f

module Sset = Term.Sset

let rec free_vars acc = function
  | Atom (_, args) -> List.fold_left Term.free_vars acc args
  | Eq (a, b) | Lt (a, b) | Le (a, b) ->
    Term.free_vars (Term.free_vars acc a) b
  | Tru | Fls -> acc
  | Not f -> free_vars acc f
  | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b) ->
    free_vars (free_vars acc a) b
  | All (x, f) | Ex (x, f) -> Sset.union acc (Sset.remove x (free_vars Sset.empty f))

let fv f = free_vars Sset.empty f
let is_closed f = Sset.is_empty (fv f)

(* Capture-avoiding substitution.  Bound variables clashing with the
   substitution's range are renamed. *)
let freshen =
  let counter = ref 0 in
  fun x ->
    incr counter;
    Printf.sprintf "%s'%d" x !counter

let rec apply_subst (s : Term.subst) (f : t) : t =
  match f with
  | Atom (p, args) -> Atom (p, List.map (Term.apply_subst s) args)
  | Eq (a, b) -> Eq (Term.apply_subst s a, Term.apply_subst s b)
  | Lt (a, b) -> Lt (Term.apply_subst s a, Term.apply_subst s b)
  | Le (a, b) -> Le (Term.apply_subst s a, Term.apply_subst s b)
  | Tru -> Tru
  | Fls -> Fls
  | Not g -> Not (apply_subst s g)
  | And (a, b) -> And (apply_subst s a, apply_subst s b)
  | Or (a, b) -> Or (apply_subst s a, apply_subst s b)
  | Imp (a, b) -> Imp (apply_subst s a, apply_subst s b)
  | Iff (a, b) -> Iff (apply_subst s a, apply_subst s b)
  | All (x, g) -> quantified s (fun x g -> All (x, g)) x g
  | Ex (x, g) -> quantified s (fun x g -> Ex (x, g)) x g

and quantified s rebuild x g =
  (* Remove the bound variable from the substitution. *)
  let s = Term.Smap.remove x s in
  if Term.Smap.is_empty s then rebuild x g
  else
    (* Rename if some substituted term captures x. *)
    let range_vars =
      Term.Smap.fold (fun _ t acc -> Sset.union acc (Term.vars t)) s Sset.empty
    in
    if Sset.mem x range_vars then begin
      let x' = freshen x in
      let g' = apply_subst (Term.Smap.singleton x (Term.Var x')) g in
      rebuild x' (apply_subst s g')
    end
    else rebuild x (apply_subst s g)

let subst1 x t f = apply_subst (Term.Smap.singleton x t) f

(* All terms occurring in a formula (instantiation candidates). *)
let rec terms acc = function
  | Atom (_, args) -> List.fold_left (fun acc t -> Term.subterms acc t) acc args
  | Eq (a, b) | Lt (a, b) | Le (a, b) ->
    Term.subterms (Term.subterms acc a) b
  | Tru | Fls -> acc
  | Not f -> terms acc f
  | And (a, b) | Or (a, b) | Imp (a, b) | Iff (a, b) -> terms (terms acc a) b
  | All (_, f) | Ex (_, f) -> terms acc f

(* ------------------------------------------------------------------ *)
(* Ground evaluation: decide a closed, quantifier-free formula whose
   atoms are all interpreted (equality and comparisons over computable
   terms).  Returns None if any part is uninterpreted. *)

let rec ground_decide : t -> bool option = function
  | Tru -> Some true
  | Fls -> Some false
  | Eq (a, b) -> (
    match Term.eval a, Term.eval b with
    | Some x, Some y -> Some (Ndlog.Value.equal x y)
    | _ -> None)
  | Lt (a, b) -> (
    match Term.eval a, Term.eval b with
    | Some x, Some y -> Some (Ndlog.Value.compare x y < 0)
    | _ -> None)
  | Le (a, b) -> (
    match Term.eval a, Term.eval b with
    | Some x, Some y -> Some (Ndlog.Value.compare x y <= 0)
    | _ -> None)
  | Not f -> Option.map not (ground_decide f)
  | And (a, b) -> lift2 ( && ) a b
  | Or (a, b) -> lift2 ( || ) a b
  | Imp (a, b) -> lift2 (fun x y -> (not x) || y) a b
  | Iff (a, b) -> lift2 ( = ) a b
  | Atom _ | All _ | Ex _ -> None

and lift2 op a b =
  match ground_decide a, ground_decide b with
  | Some x, Some y -> Some (op x y)
  | _ -> None

(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | Atom (p, []) -> Fmt.string ppf p
  | Atom (p, args) ->
    Fmt.pf ppf "%s(%a)" p Fmt.(list ~sep:(any ", ") Term.pp) args
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" Term.pp a Term.pp b
  | Lt (a, b) -> Fmt.pf ppf "%a < %a" Term.pp a Term.pp b
  | Le (a, b) -> Fmt.pf ppf "%a <= %a" Term.pp a Term.pp b
  | Tru -> Fmt.string ppf "true"
  | Fls -> Fmt.string ppf "false"
  | Not f -> Fmt.pf ppf "~(%a)" pp f
  | And (a, b) -> Fmt.pf ppf "(%a /\\ %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a \\/ %a)" pp a pp b
  | Imp (a, b) -> Fmt.pf ppf "(%a => %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(%a <=> %a)" pp a pp b
  | All (x, f) -> Fmt.pf ppf "(forall %s. %a)" x pp f
  | Ex (x, f) -> Fmt.pf ppf "(exists %s. %a)" x pp f

let to_string f = Fmt.str "%a" pp f
