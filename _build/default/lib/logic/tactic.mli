(** Scripted (interactive-style) proof construction, in the LCF
    goal/tactic tradition — the interface the paper's Section 3.1
    exercises ("built-in commands are available to mechanically advance
    the proof").  Experiment E1 replays the route-optimality proof as
    such a script.

    A tactic maps one goal sequent to subgoals plus a justification
    rebuilding a proof from subproofs; {!run} applies a script and
    returns the kernel-checked result. *)

type goalstate = {
  theory : Theory.t;
  goals : Sequent.t list;
  justify : Proof.t list -> Proof.t;
}

type tactic =
  Theory.t -> Sequent.t -> (Sequent.t list * (Proof.t list -> Proof.t)) option
(** [None] means "not applicable". *)

exception Tactic_failed of string

val initial : Theory.t -> Formula.t -> goalstate

val by : string -> tactic -> goalstate -> goalstate
(** Apply a tactic to the first open goal.
    @raise Tactic_failed when it does not apply. *)

val qed : goalstate -> Proof.t
(** @raise Tactic_failed when goals remain open. *)

(** {1 Primitive tactics} *)

val skosimp : tactic
(** PVS's [skosimp*]: repeatedly apply non-branching invertible rules on
    both sides — intro, skolemize, flatten conjunctions and
    negations.  Fails (returns [None]) when nothing applies. *)

val split : tactic
(** Split a conjunction or iff goal into two subgoals. *)

val case_hyp : Formula.t -> tactic
(** Case split on a disjunctive hypothesis. *)

val expand : string -> tactic
(** Unfold a defined predicate: a goal atom is replaced by the
    definition's right-hand side; otherwise the first matching
    hypothesis atom is unfolded (its instance added as a hypothesis). *)

val use : string -> Term.t list -> tactic
(** Instantiate a named axiom/lemma with the given witnesses and add the
    instance as a hypothesis. *)

val modus : Formula.t -> tactic
(** Given a hypothesis [a => b] whose antecedent is dischargeable
    automatically (assumption / evaluation / arithmetic, conjunct by
    conjunct), add [b]. *)

val inst : Term.t -> tactic
(** Provide a witness for an existential goal. *)

val induct : string -> tactic
(** Fixpoint induction over an inductively defined predicate (goal
    shape [forall xs. pred(xs) => Phi]); one subgoal per defining
    rule.  Must run before [skosimp] strips the quantifiers. *)

val assumption : tactic
val arith : tactic
val eval_tac : tactic

val grind : ?max_fuel:int -> tactic
(** Hand the goal to the automated prover ({!Prove.solve}). *)

(** {1 Scripts} *)

type step = string * tactic

val script_step : step -> goalstate -> goalstate

type run_result = {
  proof : Proof.t;
  script_steps : int;  (** interactive steps (the paper's "7") *)
  proof_size : int;  (** kernel inferences *)
  checked : bool;
}

val run : Theory.t -> Formula.t -> step list -> (run_result, string) result
(** Run a script against a conjecture; the result is returned only if
    the kernel accepts the assembled proof. *)
