lib/logic/proof.ml: Fmt Formula List String Term
