lib/logic/sequent.mli: Fmt Formula Term
