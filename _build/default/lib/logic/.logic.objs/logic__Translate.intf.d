lib/logic/translate.mli: Formula Ndlog Term
