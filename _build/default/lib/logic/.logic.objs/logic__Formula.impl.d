lib/logic/formula.ml: Fmt List Ndlog Option Printf Stdlib Term
