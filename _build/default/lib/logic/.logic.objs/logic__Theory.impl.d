lib/logic/theory.ml: Fmt Formula List Ndlog Printf
