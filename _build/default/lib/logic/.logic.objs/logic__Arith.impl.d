lib/logic/arith.ml: Formula List Map Ndlog Term
