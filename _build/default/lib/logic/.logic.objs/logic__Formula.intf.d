lib/logic/formula.mli: Fmt Term
