lib/logic/translate.ml: Formula List Ndlog Term
