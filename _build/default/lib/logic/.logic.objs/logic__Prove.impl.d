lib/logic/prove.ml: Arith Checker Fmt Formula List Option Proof Sequent Sys Term Theory
