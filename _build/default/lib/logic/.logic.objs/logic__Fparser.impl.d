lib/logic/fparser.ml: Buffer Formula List Ndlog Printf String Term
