lib/logic/completion.ml: Array Fmt Formula List Ndlog Printf String Term Theory Translate
