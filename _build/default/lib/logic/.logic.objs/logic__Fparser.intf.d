lib/logic/fparser.mli: Formula
