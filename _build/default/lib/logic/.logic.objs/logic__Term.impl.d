lib/logic/term.ml: Fmt List Map Ndlog Option Set String
