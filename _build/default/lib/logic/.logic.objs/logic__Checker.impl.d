lib/logic/checker.ml: Arith Fmt Formula List Ndlog Printf Proof Result Sequent String Term Theory Translate
