lib/logic/tactic.mli: Formula Proof Sequent Term Theory
