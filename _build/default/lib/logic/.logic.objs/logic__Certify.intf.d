lib/logic/certify.mli: Formula Ndlog Proof Theory
