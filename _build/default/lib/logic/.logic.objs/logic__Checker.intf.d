lib/logic/checker.mli: Fmt Proof Sequent Theory
