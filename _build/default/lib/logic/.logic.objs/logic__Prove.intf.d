lib/logic/prove.mli: Formula Proof Sequent Theory
