lib/logic/term.mli: Fmt Map Ndlog Set String
