lib/logic/completion.mli: Formula Ndlog Term Theory
