lib/logic/arith.mli: Formula
