lib/logic/tactic.ml: Arith Checker Fmt Formula List Proof Prove Sequent Term Theory
