lib/logic/theory.mli: Fmt Formula Ndlog
