lib/logic/certify.ml: Arith Array Checker Completion Fmt Formula List Ndlog Proof Sequent Term Theory
