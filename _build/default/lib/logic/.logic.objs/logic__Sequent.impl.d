lib/logic/sequent.ml: Fmt Formula List Printf Term
