(** A parser for first-order formulas, so properties can be stated as
    text (the [fvnc prove --goal] flag, fixtures, documentation).

    Syntax, low to high precedence: [<=>], [=>] (right-assoc), [\/],
    [/\], [~]; quantifiers are ["forall X Y. f"] / ["exists X. f"];
    atoms are [pred(t1,...,tn)]; comparisons [=], [!=], [<], [<=], [>],
    [>=]; terms use [+], [-], [*], integers, strings, and function
    applications.

    Identifier interpretation: names bound by an enclosing quantifier
    are variables; other capitalized names are free variables; lowercase
    names are constants or applications.

    Example — the paper's route-optimality theorem:

    {v
forall S D P C. bestPath(S,D,P,C) =>
  ~(exists P2 C2. path(S,D,P2,C2) /\ C2 < C)
    v} *)

exception Parse_error of string

val parse : string -> (Formula.t, string) result
val parse_exn : string -> Formula.t
