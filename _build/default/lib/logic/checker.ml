(* The proof checker: the trusted kernel.

   [check thy sequent proof] re-validates every inference in [proof]
   against the sequent calculus below.  Anything the prover produces is
   only believed after this function accepts it.  The semantic leaves
   are [Arith] (linear integer arithmetic over hypothesis literals) and
   [Eval] (ground evaluation of interpreted symbols); both are decision
   procedures in the PVS tradition. *)

type error = {
  rule : string;
  sequent : Sequent.t;
  reason : string;
}

let pp_error ppf e =
  Fmt.pf ppf "rule %s failed (%s) on sequent:@.%a" e.rule e.reason Sequent.pp
    e.sequent

exception Check_failed of error

let fail rule sequent reason = raise (Check_failed { rule; sequent; reason })

(* Fresh-constant side condition for eigenvariable rules. *)
let require_fresh rule s c =
  if Term.Sset.mem c (Sequent.constants s) then
    fail rule s (Printf.sprintf "constant %s is not fresh" c)

let skolem c = Term.Fn (c, [])

(* Subgoals of fixpoint induction on [pred] for the sequent's goal
   [forall xs. pred(xs) => Phi]; shared between the kernel rule and the
   [induct] tactic so both construct identical sequents.  Sound because
   NDlog predicates denote the least fixpoint of their rules: any
   property closed under every rule holds of every derivable tuple. *)
let induction_subgoals (thy : Theory.t) (s : Sequent.t) (pred : string) :
    (Sequent.t list, string) result =
  match Theory.inductive_of pred thy with
  | None -> Error (pred ^ " is not an inductive predicate")
  | Some ind -> (
    let rec peel n acc f =
      if n = 0 then (List.rev acc, f)
      else
        match f with
        | Formula.All (x, b) -> peel (n - 1) (x :: acc) b
        | _ -> (List.rev acc, f)
    in
    let xs, body = peel ind.Theory.ind_arity [] s.goal in
    if List.length xs <> ind.Theory.ind_arity then
      Error "goal does not quantify over the predicate's arity"
    else if List.length (List.sort_uniq String.compare xs) <> List.length xs
    then Error "duplicate bound variables in the goal"
    else
      match body with
      | Formula.Imp (Formula.Atom (p, args), phi)
        when p = pred
             && List.for_all2 (fun a x -> Term.equal a (Term.Var x)) args xs
        -> (
        let phi_at ts =
          Formula.apply_subst (Term.subst_of_list (List.combine xs ts)) phi
        in
        try
          Ok
            (List.map
               (fun (rule : Ndlog.Ast.rule) ->
                 if Ndlog.Ast.has_aggregate rule.Ndlog.Ast.head then
                   failwith "aggregate rules do not admit induction";
                 (* Skolemize the rule's variables, fresh for the sequent. *)
                 let used = ref (Sequent.constants s) in
                 let sigma =
                   Term.Sset.fold
                     (fun v acc ->
                       let rec pick i =
                         let c =
                           if i = 0 then v else Printf.sprintf "%s_%d" v i
                         in
                         if Term.Sset.mem c !used then pick (i + 1)
                         else begin
                           used := Term.Sset.add c !used;
                           c
                         end
                       in
                       Term.Smap.add v (Term.Fn (pick 0, [])) acc)
                     (Ndlog.Ast.rule_vars rule) Term.Smap.empty
                 in
                 let inst f = Formula.apply_subst sigma f in
                 let body_hyps =
                   List.map
                     (fun l -> inst (Translate.formula_of_lit l))
                     rule.Ndlog.Ast.body
                 in
                 let ih_hyps =
                   List.filter_map
                     (function
                       | Ndlog.Ast.Pos a when a.Ndlog.Ast.pred = pred ->
                         Some
                           (phi_at
                              (List.map
                                 (fun e ->
                                   Term.apply_subst sigma
                                     (Translate.term_of_expr e))
                                 a.Ndlog.Ast.args))
                       | _ -> None)
                     rule.Ndlog.Ast.body
                 in
                 let head_ts =
                   List.map (Term.apply_subst sigma)
                     (Translate.head_terms rule.Ndlog.Ast.head)
                 in
                 List.fold_left
                   (fun sq h -> Sequent.add_hyp h sq)
                   (Sequent.set_goal (phi_at head_ts) s)
                   (body_hyps @ ih_hyps))
               ind.Theory.ind_rules)
        with Failure m -> Error m)
      | _ ->
        Error
          "goal must have the shape: forall xs. pred(xs) => Phi (with bare \
           variable arguments)")

let rec check_rec (thy : Theory.t) (s : Sequent.t) (p : Proof.t) : unit =
  match p with
  | Proof.Assumption ->
    if not (Sequent.has_hyp s.goal s) then
      fail "assumption" s "goal is not among the hypotheses"
  | Proof.TrueR -> (
    match s.goal with
    | Formula.Tru -> ()
    | _ -> fail "trueR" s "goal is not true")
  | Proof.FalseL ->
    if not (Sequent.has_hyp Formula.Fls s) then
      fail "falseL" s "false is not among the hypotheses"
  | Proof.Arith ->
    if not (Arith.entails s.hyps s.goal) then
      fail "arith" s "linear arithmetic cannot close this sequent"
  | Proof.Eval -> (
    match Formula.ground_decide s.goal with
    | Some true -> ()
    | Some false -> fail "eval" s "goal evaluates to false"
    | None -> fail "eval" s "goal is not ground-decidable")
  | Proof.EvalL f -> (
    if not (Sequent.has_hyp f s) then fail "evalL" s "no such hypothesis"
    else
      match Formula.ground_decide f with
      | Some false -> ()
      | Some true -> fail "evalL" s "hypothesis evaluates to true"
      | None -> fail "evalL" s "hypothesis is not ground-decidable")
  | Proof.AndR (pa, pb) -> (
    match s.goal with
    | Formula.And (a, b) ->
      check_rec thy (Sequent.set_goal a s) pa;
      check_rec thy (Sequent.set_goal b s) pb
    | _ -> fail "andR" s "goal is not a conjunction")
  | Proof.OrR1 q -> (
    match s.goal with
    | Formula.Or (a, _) -> check_rec thy (Sequent.set_goal a s) q
    | _ -> fail "orR1" s "goal is not a disjunction")
  | Proof.OrR2 q -> (
    match s.goal with
    | Formula.Or (_, b) -> check_rec thy (Sequent.set_goal b s) q
    | _ -> fail "orR2" s "goal is not a disjunction")
  | Proof.ImpR q -> (
    match s.goal with
    | Formula.Imp (a, b) ->
      check_rec thy (Sequent.add_hyp a (Sequent.set_goal b s)) q
    | _ -> fail "impR" s "goal is not an implication")
  | Proof.IffR (pa, pb) -> (
    match s.goal with
    | Formula.Iff (a, b) ->
      check_rec thy (Sequent.set_goal (Formula.Imp (a, b)) s) pa;
      check_rec thy (Sequent.set_goal (Formula.Imp (b, a)) s) pb
    | _ -> fail "iffR" s "goal is not an iff")
  | Proof.NotR q -> (
    match s.goal with
    | Formula.Not a ->
      check_rec thy (Sequent.add_hyp a (Sequent.set_goal Formula.Fls s)) q
    | _ -> fail "notR" s "goal is not a negation")
  | Proof.AllR (c, q) -> (
    match s.goal with
    | Formula.All (x, body) ->
      require_fresh "allR" s c;
      check_rec thy (Sequent.set_goal (Formula.subst1 x (skolem c) body) s) q
    | _ -> fail "allR" s "goal is not universally quantified")
  | Proof.ExR (w, q) -> (
    match s.goal with
    | Formula.Ex (x, body) ->
      check_rec thy (Sequent.set_goal (Formula.subst1 x w body) s) q
    | _ -> fail "exR" s "goal is not existentially quantified")
  | Proof.AndL (f, q) -> (
    if not (Sequent.has_hyp f s) then fail "andL" s "no such hypothesis"
    else
      match f with
      | Formula.And (a, b) ->
        check_rec thy
          (Sequent.add_hyp a (Sequent.add_hyp b (Sequent.remove_hyp f s)))
          q
      | _ -> fail "andL" s "hypothesis is not a conjunction")
  | Proof.OrL (f, pa, pb) -> (
    if not (Sequent.has_hyp f s) then fail "orL" s "no such hypothesis"
    else
      match f with
      | Formula.Or (a, b) ->
        let s' = Sequent.remove_hyp f s in
        check_rec thy (Sequent.add_hyp a s') pa;
        check_rec thy (Sequent.add_hyp b s') pb
      | _ -> fail "orL" s "hypothesis is not a disjunction")
  | Proof.ImpL (f, pant, pcont) -> (
    if not (Sequent.has_hyp f s) then fail "impL" s "no such hypothesis"
    else
      match f with
      | Formula.Imp (a, b) ->
        check_rec thy (Sequent.set_goal a s) pant;
        check_rec thy (Sequent.add_hyp b s) pcont
      | _ -> fail "impL" s "hypothesis is not an implication")
  | Proof.IffL (f, q) -> (
    if not (Sequent.has_hyp f s) then fail "iffL" s "no such hypothesis"
    else
      match f with
      | Formula.Iff (a, b) ->
        let s' =
          Sequent.add_hyp (Formula.Imp (a, b))
            (Sequent.add_hyp (Formula.Imp (b, a)) (Sequent.remove_hyp f s))
        in
        check_rec thy s' q
      | _ -> fail "iffL" s "hypothesis is not an iff")
  | Proof.NotL (f, q) -> (
    if not (Sequent.has_hyp f s) then fail "notL" s "no such hypothesis"
    else
      match f with
      | Formula.Not a ->
        check_rec thy
          (Sequent.add_hyp
             (Formula.Imp (a, Formula.Fls))
             (Sequent.remove_hyp f s))
          q
      | _ -> fail "notL" s "hypothesis is not a negation")
  | Proof.AllL (f, w, q) -> (
    if not (Sequent.has_hyp f s) then fail "allL" s "no such hypothesis"
    else
      match f with
      | Formula.All (x, body) ->
        check_rec thy (Sequent.add_hyp (Formula.subst1 x w body) s) q
      | _ -> fail "allL" s "hypothesis is not universally quantified")
  | Proof.ExL (f, c, q) -> (
    if not (Sequent.has_hyp f s) then fail "exL" s "no such hypothesis"
    else
      match f with
      | Formula.Ex (x, body) ->
        require_fresh "exL" s c;
        check_rec thy
          (Sequent.add_hyp
             (Formula.subst1 x (skolem c) body)
             (Sequent.remove_hyp f s))
          q
      | _ -> fail "exL" s "hypothesis is not existentially quantified")
  | Proof.AxiomR (name, q) -> (
    match Theory.find name thy with
    | Some entry -> check_rec thy (Sequent.add_hyp entry.Theory.formula s) q
    | None -> fail "axiom" s (Printf.sprintf "no axiom named %s" name))
  | Proof.Cut (f, pf, q) ->
    check_rec thy (Sequent.set_goal f s) pf;
    check_rec thy (Sequent.add_hyp f s) q
  | Proof.Induct (pred, subs) -> check_induct thy s pred subs

and check_induct thy (s : Sequent.t) pred subs =
  match induction_subgoals thy s pred with
  | Error msg -> fail "induct" s msg
  | Ok subgoals ->
    if List.length subs <> List.length subgoals then
      fail "induct" s
        (Printf.sprintf "expected %d subproofs (one per rule), got %d"
           (List.length subgoals) (List.length subs));
    List.iter2 (fun sq sub -> check_rec thy sq sub) subgoals subs

let check thy sequent proof : (unit, error) result =
  match check_rec thy sequent proof with
  | () -> Ok ()
  | exception Check_failed e -> Error e

let is_valid thy sequent proof = Result.is_ok (check thy sequent proof)
