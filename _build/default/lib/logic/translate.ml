(* Shared NDlog-AST -> logic translation helpers, used by the completion
   (arc 4) and by the kernel's fixpoint-induction rule (which must
   interpret rule bodies itself to validate induction steps). *)

module Ast = Ndlog.Ast

let rec term_of_expr (e : Ast.expr) : Term.t =
  match e with
  | Ast.Var x -> Term.Var x
  | Ast.Const v -> Term.Cst v
  | Ast.Call (f, args) -> Term.Fn (f, List.map term_of_expr args)
  | Ast.Binop (op, a, b) ->
    Term.Fn (Ast.string_of_binop op, [ term_of_expr a; term_of_expr b ])

let formula_of_lit (l : Ast.lit) : Formula.t =
  match l with
  | Ast.Pos a -> Formula.Atom (a.Ast.pred, List.map term_of_expr a.Ast.args)
  | Ast.Neg a ->
    Formula.Not (Formula.Atom (a.Ast.pred, List.map term_of_expr a.Ast.args))
  | Ast.Assign (x, e) -> Formula.Eq (Term.Var x, term_of_expr e)
  | Ast.Cond (c, a, b) -> (
    let ta = term_of_expr a and tb = term_of_expr b in
    match c with
    | Ast.Eq -> Formula.Eq (ta, tb)
    | Ast.Ne -> Formula.Not (Formula.Eq (ta, tb))
    | Ast.Lt -> Formula.Lt (ta, tb)
    | Ast.Le -> Formula.Le (ta, tb)
    | Ast.Gt -> Formula.Lt (tb, ta)
    | Ast.Ge -> Formula.Le (tb, ta))

let body_formulas (body : Ast.lit list) : Formula.t list =
  List.map formula_of_lit body

(* Head argument terms of a non-aggregate rule. *)
let head_terms (h : Ast.head) : Term.t list =
  List.map
    (function
      | Ast.Plain e -> term_of_expr e
      | Ast.Agg _ -> invalid_arg "head_terms: aggregate head")
    h.Ast.head_args
