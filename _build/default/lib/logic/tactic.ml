(* Scripted (interactive-style) proof construction, in the LCF goal /
   tactic tradition.  This is the interface the paper's Section 3.1
   exercises: the designer states a theorem and advances the proof with
   a handful of prover commands ("built-in commands are available to
   mechanically advance the proof"); the E1 experiment replays the
   route-optimality proof as such a script and reports its step count.

   A [tactic] maps one goal sequent to subgoals plus a justification
   rebuilding a proof of the original goal from subproofs.  [run]
   applies a script to a conjecture and returns the kernel-checked
   proof. *)

type goalstate = {
  theory : Theory.t;
  goals : Sequent.t list;
  (* Rebuilds the whole proof from one subproof per remaining goal. *)
  justify : Proof.t list -> Proof.t;
}

type tactic = Theory.t -> Sequent.t -> (Sequent.t list * (Proof.t list -> Proof.t)) option

exception Tactic_failed of string

let fail msg = raise (Tactic_failed msg)

let initial theory goal =
  {
    theory;
    goals = [ Sequent.make goal ];
    justify = (function [ p ] -> p | _ -> fail "justify arity");
  }

(* Apply a tactic to the first open goal. *)
let by (name : string) (t : tactic) (gs : goalstate) : goalstate =
  match gs.goals with
  | [] -> fail (name ^ ": no goals left")
  | g :: rest -> (
    match t gs.theory g with
    | None -> fail (Fmt.str "%s: not applicable to@.%a" name Sequent.pp g)
    | Some (subgoals, justify1) ->
      let n = List.length subgoals in
      {
        gs with
        goals = subgoals @ rest;
        justify =
          (fun proofs ->
            let rec split i acc = function
              | ps when i = 0 -> (List.rev acc, ps)
              | p :: ps -> split (i - 1) (p :: acc) ps
              | [] -> fail "justify underflow"
            in
            let mine, others = split n [] proofs in
            gs.justify (justify1 mine :: others));
      })

let qed (gs : goalstate) : Proof.t =
  match gs.goals with
  | [] -> gs.justify []
  | g :: _ -> fail (Fmt.str "qed: open goal remains:@.%a" Sequent.pp g)

(* ------------------------------------------------------------------ *)
(* Primitive tactics. *)

let one sub k = Some ([ sub ], function [ p ] -> k p | _ -> fail "arity")

let closed proof = Some ([], fun _ -> proof)

(* skosimp*: repeatedly apply non-branching invertible rules on both
   sides (intro, skolemize, flatten conjunctions/negations). *)
let skosimp : tactic =
 fun _thy s ->
  let rec step (s : Sequent.t) (k : Proof.t -> Proof.t) progressed =
    match s.Sequent.goal with
    | Formula.Imp (a, b) ->
      step
        (Sequent.add_hyp a (Sequent.set_goal b s))
        (fun p -> k (Proof.ImpR p))
        true
    | Formula.Not a ->
      step
        (Sequent.add_hyp a (Sequent.set_goal Formula.Fls s))
        (fun p -> k (Proof.NotR p))
        true
    | Formula.All (x, body) ->
      let c = Sequent.fresh_const s x in
      step
        (Sequent.set_goal (Formula.subst1 x (Term.Fn (c, [])) body) s)
        (fun p -> k (Proof.AllR (c, p)))
        true
    | _ -> left s k progressed
  and left s k progressed =
    let pick =
      List.find_opt
        (function
          | Formula.And _ | Formula.Ex _ | Formula.Not _ -> true
          | _ -> false)
        s.Sequent.hyps
    in
    match pick with
    | Some (Formula.And (a, b) as f) ->
      step
        (Sequent.add_hyp a (Sequent.add_hyp b (Sequent.remove_hyp f s)))
        (fun p -> k (Proof.AndL (f, p)))
        true
    | Some (Formula.Ex (x, body) as f) ->
      let c = Sequent.fresh_const s x in
      step
        (Sequent.add_hyp
           (Formula.subst1 x (Term.Fn (c, [])) body)
           (Sequent.remove_hyp f s))
        (fun p -> k (Proof.ExL (f, c, p)))
        true
    | Some (Formula.Not a as f) ->
      step
        (Sequent.add_hyp (Formula.Imp (a, Formula.Fls)) (Sequent.remove_hyp f s))
        (fun p -> k (Proof.NotL (f, p)))
        true
    | _ -> if progressed then Some (s, k) else None
  in
  match step s (fun p -> p) false with
  | Some (s', k) -> one s' k
  | None -> None

(* split: And / Iff goals. *)
let split : tactic =
 fun _thy s ->
  match s.Sequent.goal with
  | Formula.And (a, b) ->
    Some
      ( [ Sequent.set_goal a s; Sequent.set_goal b s ],
        function [ pa; pb ] -> Proof.AndR (pa, pb) | _ -> fail "arity" )
  | Formula.Iff (a, b) ->
    Some
      ( [
          Sequent.set_goal (Formula.Imp (a, b)) s;
          Sequent.set_goal (Formula.Imp (b, a)) s;
        ],
        function [ pa; pb ] -> Proof.IffR (pa, pb) | _ -> fail "arity" )
  | _ -> None

(* case split on a disjunctive hypothesis *)
let case_hyp (f : Formula.t) : tactic =
 fun _thy s ->
  match f with
  | Formula.Or (a, b) when Sequent.has_hyp f s ->
    let s' = Sequent.remove_hyp f s in
    Some
      ( [ Sequent.add_hyp a s'; Sequent.add_hyp b s' ],
        function [ pa; pb ] -> Proof.OrL (f, pa, pb) | _ -> fail "arity" )
  | _ -> None

(* expand pred: unfold a defined predicate.  If the goal is the defined
   atom, replace it by the definition's right-hand side; otherwise
   unfold the first matching hypothesis atom, adding the instantiated
   right-hand side as a hypothesis. *)
let expand (pred : string) : tactic =
 fun thy s ->
  match Theory.definition_of pred thy with
  | None -> None
  | Some entry -> (
    let instantiate ts =
      let rec go cur ts wrap =
        match cur, ts with
        | Formula.All (x, body), t :: rest ->
          go (Formula.subst1 x t body) rest (fun p -> wrap (Proof.AllL (cur, t, p)))
        | Formula.Iff (lhs, rhs), [] -> Some (wrap, Formula.Iff (lhs, rhs), rhs)
        | _ -> None
      in
      go entry.Theory.formula ts (fun p -> p)
    in
    match s.Sequent.goal with
    | Formula.Atom (p, ts) when p = pred -> (
      match instantiate ts with
      | None -> None
      | Some (chain, iff_inst, rhs) ->
        let rhs_to_p =
          match iff_inst with
          | Formula.Iff (a, b) -> Formula.Imp (b, a)
          | _ -> assert false
        in
        one (Sequent.set_goal rhs s) (fun prhs ->
            Proof.AxiomR
              ( entry.Theory.name,
                chain (Proof.IffL (iff_inst, Proof.ImpL (rhs_to_p, prhs, Proof.Assumption)))
              )))
    | _ -> (
      let hyp =
        List.find_opt
          (function Formula.Atom (p, _) -> p = pred | _ -> false)
          s.Sequent.hyps
      in
      match hyp with
      | Some (Formula.Atom (_, ts)) -> (
        match instantiate ts with
        | None -> None
        | Some (chain, iff_inst, rhs) ->
          let p_to_rhs =
            match iff_inst with
            | Formula.Iff (a, b) -> Formula.Imp (a, b)
            | _ -> assert false
          in
          one (Sequent.add_hyp rhs s) (fun cont ->
              Proof.AxiomR
                ( entry.Theory.name,
                  chain
                    (Proof.IffL
                       (iff_inst, Proof.ImpL (p_to_rhs, Proof.Assumption, cont)))
                )))
      | _ -> None))

(* use name [t1; ...; tn]: instantiate a named axiom/lemma with the
   given witnesses and add the instance as a hypothesis.  Antecedents of
   Horn-shaped axioms are NOT discharged; the instance arrives whole.
   (Use [forward] for automatic discharge.) *)
let use (name : string) (witnesses : Term.t list) : tactic =
 fun thy s ->
  match Theory.find name thy with
  | None -> None
  | Some entry ->
    let rec go cur ws wrap =
      match cur, ws with
      | Formula.All (x, body), w :: rest ->
        go (Formula.subst1 x w body) rest (fun p -> wrap (Proof.AllL (cur, w, p)))
      | _, [] -> Some (cur, wrap)
      | _, _ :: _ -> None
    in
    (match go entry.Theory.formula witnesses (fun p -> p) with
    | None -> None
    | Some (inst, wrap) ->
      one (Sequent.add_hyp inst s) (fun cont ->
          Proof.AxiomR (entry.Theory.name, wrap cont)))

(* modus: given hypothesis [a => b] whose antecedent can be discharged
   automatically (assumption / evaluation / arithmetic, conjunct by
   conjunct), add [b]. *)
let modus (f : Formula.t) : tactic =
 fun _thy s ->
  match f with
  | Formula.Imp (a, b) when Sequent.has_hyp f s ->
    let rec prove_conj g =
      match g with
      | Formula.And (x, y) -> (
        match prove_conj x, prove_conj y with
        | Some px, Some py -> Some (Proof.AndR (px, py))
        | _ -> None)
      | Formula.Tru -> Some Proof.TrueR
      | g ->
        if Sequent.has_hyp g s then Some Proof.Assumption
        else if Formula.ground_decide g = Some true then Some Proof.Eval
        else if Arith.entails s.Sequent.hyps g then Some Proof.Arith
        else None
    in
    (match prove_conj a with
    | None -> None
    | Some pa -> one (Sequent.add_hyp b s) (fun cont -> Proof.ImpL (f, pa, cont)))
  | _ -> None

(* inst: give a witness for an existential goal. *)
let inst (w : Term.t) : tactic =
 fun _thy s ->
  match s.Sequent.goal with
  | Formula.Ex (x, body) ->
    one (Sequent.set_goal (Formula.subst1 x w body) s) (fun p -> Proof.ExR (w, p))
  | _ -> None

let assumption : tactic =
 fun _thy s -> if Sequent.has_hyp s.Sequent.goal s then closed Proof.Assumption else None

let arith : tactic =
 fun _thy s -> if Arith.entails s.Sequent.hyps s.Sequent.goal then closed Proof.Arith else None

let eval_tac : tactic =
 fun _thy s ->
  match Formula.ground_decide s.Sequent.goal with
  | Some true -> closed Proof.Eval
  | _ -> None

(* induct pred: fixpoint induction over an inductively defined
   predicate (goal shape: forall xs. pred(xs) => Phi); one subgoal per
   defining rule, with the rule body and induction hypotheses as
   hypotheses. *)
let induct (pred : string) : tactic =
 fun thy s ->
  match Checker.induction_subgoals thy s pred with
  | Error _ -> None
  | Ok subgoals ->
    Some (subgoals, fun proofs -> Proof.Induct (pred, proofs))

(* grind: hand the goal to the automated prover. *)
let grind ?(max_fuel = 6) : tactic =
 fun thy s ->
  let cfg = Prove.make_config thy in
  let rec attempt fuel =
    if fuel > max_fuel then None
    else
      match Prove.solve cfg s fuel with
      | Some p -> Some p
      | None -> attempt (fuel + 1)
  in
  match attempt 1 with Some p -> closed p | None -> None

(* ------------------------------------------------------------------ *)
(* Scripts. *)

type step = string * tactic

let script_step (name, t) gs = by name t gs

type run_result = {
  proof : Proof.t;
  script_steps : int;
  proof_size : int;
  checked : bool;
}

(* Run a named script against a conjecture; the result is only returned
   if the kernel accepts the assembled proof. *)
let run (thy : Theory.t) (goal : Formula.t) (script : step list) :
    (run_result, string) result =
  match
    let gs = List.fold_left (fun gs st -> script_step st gs) (initial thy goal) script in
    qed gs
  with
  | exception Tactic_failed msg -> Error msg
  | proof -> (
    match Checker.check thy (Sequent.make goal) proof with
    | Ok () ->
      Ok
        {
          proof;
          script_steps = List.length script;
          proof_size = Proof.size proof;
          checked = true;
        }
    | Error e -> Error (Fmt.str "kernel rejected scripted proof: %a" Checker.pp_error e))
