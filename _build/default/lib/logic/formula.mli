(** First-order formulas with equality and integer comparisons.

    Comparisons are normalized at construction ([a > b] is stored as
    [b < a]); all connectives are primitive so proof rules stay
    syntax-directed. *)

type t =
  | Atom of string * Term.t list
  | Eq of Term.t * Term.t
  | Lt of Term.t * Term.t
  | Le of Term.t * Term.t
  | Tru
  | Fls
  | Not of t
  | And of t * t
  | Or of t * t
  | Imp of t * t
  | Iff of t * t
  | All of string * t
  | Ex of string * t

val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Smart constructors} *)

val atom : string -> Term.t list -> t
val eq : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t
val gt : Term.t -> Term.t -> t
val ge : Term.t -> Term.t -> t
val neg : t -> t

val conj : t list -> t
(** Left-folded conjunction; [conj \[\] = Tru]. *)

val disj : t list -> t
(** Left-folded disjunction; [disj \[\] = Fls]. *)

val imp : t -> t -> t
val iff : t -> t -> t
val all : string -> t -> t
val ex : string -> t -> t
val all_list : string list -> t -> t
val ex_list : string list -> t -> t

(** {1 Variables and substitution} *)

module Sset = Term.Sset

val free_vars : Sset.t -> t -> Sset.t
val fv : t -> Sset.t
val is_closed : t -> bool

val apply_subst : Term.subst -> t -> t
(** Capture-avoiding: clashing binders are renamed. *)

val subst1 : string -> Term.t -> t -> t

val terms : Term.t list -> t -> Term.t list
(** All terms occurring in the formula (instantiation candidates),
    accumulated. *)

val ground_decide : t -> bool option
(** Decide a closed, quantifier-free formula whose atoms are all
    interpreted (equality/comparisons over computable terms); [None]
    when any part is uninterpreted.  One of the kernel's two decision
    procedures. *)

val pp : t Fmt.t
val to_string : t -> string
