(* Automated proof search.

   The strategy mirrors what interactive provers automate for this class
   of goals (the paper: "typically two-thirds of the proof steps can be
   automated by the theorem prover's default proof strategies"):

   1. apply invertible sequent rules exhaustively (intro / flatten /
      skolemize / case split);
   2. attempt closure: assumption, ground evaluation, linear arithmetic,
      hypothesis contradiction;
   3. saturate hypotheses by forward chaining over the theory's Horn
      clauses (unit-resulting resolution with one-way matching);
   4. spend fuel on non-invertible steps: unfolding defined predicates
      (iff-completions from {!Completion}), witness search for
      existential goals, disjunctive goals, and hypothesis backchaining.

   Every success returns an explicit {!Proof.t} that {!Checker} then
   re-validates; the searcher itself is untrusted. *)

type stats = {
  mutable nodes_explored : int;
  mutable forward_derived : int;
  mutable unfolds : int;
}

let new_stats () = { nodes_explored = 0; forward_derived = 0; unfolds = 0 }

type config = {
  theory : Theory.t;
  clauses : Theory.clause list;
  max_forward_rounds : int;
  max_candidates : int;
  node_budget : int;  (* hard cap on explored search nodes *)
  forward_budget : int;  (* hard cap on forward-chained facts *)
  stats : stats;
}

let make_config ?(max_forward_rounds = 6) ?(max_candidates = 16)
    ?(node_budget = 200_000) ?(forward_budget = 400) theory =
  {
    theory;
    clauses = Theory.horn_clauses theory;
    max_forward_rounds;
    max_candidates;
    node_budget;
    forward_budget;
    stats = new_stats ();
  }

(* ------------------------------------------------------------------ *)
(* Closure attempts. *)

let try_close (s : Sequent.t) : Proof.t option =
  if Formula.equal s.goal Formula.Tru then Some Proof.TrueR
  else if Sequent.has_hyp Formula.Fls s then Some Proof.FalseL
  else if Sequent.has_hyp s.goal s then Some Proof.Assumption
  else
    match Formula.ground_decide s.goal with
    | Some true -> Some Proof.Eval
    | _ ->
      if Arith.entails s.hyps s.goal then Some Proof.Arith
      else
        (* A ground-false hypothesis closes the branch. *)
        let false_hyp =
          List.find_opt
            (fun h -> Formula.ground_decide h = Some false)
            s.hyps
        in
        (match false_hyp with
        | Some h -> Some (Proof.EvalL h)
        | None ->
          (* Contradictory pair: hyp [a => false] (or [~a]) with hyp [a]. *)
          let imp_false =
            List.find_opt
              (function
                | Formula.Imp (a, Formula.Fls) -> Sequent.has_hyp a s
                | _ -> false)
              s.hyps
          in
          (match imp_false with
          | Some (Formula.Imp (_, Formula.Fls) as f) ->
            Some (Proof.ImpL (f, Proof.Assumption, Proof.FalseL))
          | _ -> None))

(* ------------------------------------------------------------------ *)
(* Forward chaining. *)

(* Hypotheses usable as matching targets. *)
let atom_hyps s =
  List.filter
    (function
      | Formula.Atom _ | Formula.Eq _ | Formula.Lt _ | Formula.Le _ -> true
      | _ -> false)
    s.Sequent.hyps

(* Can [f] be discharged immediately in sequent [s]?  Returns the leaf
   proof if so. *)
let discharge s (f : Formula.t) : Proof.t option =
  if Sequent.has_hyp f s then Some Proof.Assumption
  else
    match Formula.ground_decide f with
    | Some true -> Some Proof.Eval
    | _ -> if Arith.entails s.Sequent.hyps f then Some Proof.Arith else None

(* All substitutions matching the clause antecedent atoms against
   hypotheses (one-way matching; hypotheses are ground after
   skolemization). *)
let clause_matches s (c : Theory.clause) : Term.subst list =
  let hyps = atom_hyps s in
  let match_atom sigma (pat : Formula.t) : Term.subst list =
    List.filter_map
      (fun hyp ->
        match pat, hyp with
        | Formula.Atom (p, pats), Formula.Atom (q, args) when p = q ->
          List.fold_left2
            (fun acc pa a ->
              match acc with
              | None -> None
              | Some sg -> Term.matching sg pa a)
            (Some sigma)
            pats args
        | _ -> None)
      hyps
  in
  (* Antecedents that are atoms participate in matching; comparison
     antecedents are discharged later. *)
  let atom_ants =
    List.filter (function Formula.Atom _ -> true | _ -> false) c.antecedents
  in
  List.fold_left
    (fun sigmas pat ->
      List.concat_map (fun sg -> match_atom sg pat) sigmas)
    [ Term.subst_empty ] atom_ants

(* Build the proof fragment instantiating the (universally quantified,
   Horn-shaped) formula [f] under [sigma] and discharging its
   antecedents, continuing with [cont] once the consequent instance is a
   hypothesis.  [f] must already be a hypothesis of [s] (callers either
   find it there or add it with [AxiomR]).  Returns None if some
   antecedent cannot be discharged. *)
let fragment_of_formula s (f : Formula.t) sigma (cont : Proof.t) :
    (Formula.t * Proof.t) option =
  (* Walk the formula, accumulating the proof constructor. *)
  let rec walk (cur : Formula.t) (s : Sequent.t) :
      (Formula.t * (Proof.t -> Proof.t)) option =
    match cur with
    | Formula.All (x, body) -> (
      match Term.subst_find x sigma with
      | None -> None
      | Some w ->
        let inst = Formula.subst1 x w body in
        (match walk inst (Sequent.add_hyp inst s) with
        | None -> None
        | Some (res, k) -> Some (res, fun p -> Proof.AllL (cur, w, k p))))
    | Formula.Imp (a, b) -> (
      (* Prove the antecedent conjunct by conjunct. *)
      let rec prove_conj (f : Formula.t) : Proof.t option =
        match f with
        | Formula.And (x, y) -> (
          match prove_conj x, prove_conj y with
          | Some px, Some py -> Some (Proof.AndR (px, py))
          | _ -> None)
        | Formula.Tru -> Some Proof.TrueR
        | f -> discharge s f
      in
      match prove_conj a with
      | None -> None
      | Some pa ->
        (match walk b (Sequent.add_hyp b s) with
        | None -> None
        | Some (res, k) -> Some (res, fun p -> Proof.ImpL (cur, pa, k p))))
    | (Formula.Atom _ | Formula.Eq _ | Formula.Lt _ | Formula.Le _ | Formula.Fls
      | Formula.Ex _ | Formula.Or _ | Formula.Not _) as res ->
      Some (res, fun p -> p)
    | _ -> None
  in
  match walk f (Sequent.add_hyp f s) with
  | None -> None
  | Some (res, k) -> Some (res, k cont)

(* A clause source: a named theory axiom (brought into scope with
   [AxiomR]) or a hypothesis already present in the sequent. *)
let apply_clause_fragment s (source : [ `Axiom of Theory.entry | `Hyp of Formula.t ])
    sigma (cont : Proof.t) : (Formula.t * Proof.t) option =
  match source with
  | `Axiom entry -> (
    match fragment_of_formula s entry.Theory.formula sigma cont with
    | None -> None
    | Some (res, p) -> Some (res, Proof.AxiomR (entry.Theory.name, p)))
  | `Hyp f -> fragment_of_formula s f sigma cont

(* Horn clauses contributed by universally quantified hypotheses (e.g.
   assumptions of a theorem, or induction hypotheses): forward chaining
   treats them exactly like theory axioms, but their proof fragments
   reference the hypothesis directly instead of invoking [AxiomR]. *)
let hyp_clauses (s : Sequent.t) :
    (Theory.clause * [ `Axiom of Theory.entry | `Hyp of Formula.t ]) list =
  List.filter_map
    (fun h ->
      match h with
      | Formula.All _ | Formula.Imp _ -> (
        match Theory.clause_of_formula "<hyp>" h with
        | Some c when c.Theory.antecedents <> [] -> Some (c, `Hyp h)
        | _ -> None)
      | _ -> None)
    s.Sequent.hyps

(* One forward-chaining round: returns newly derivable (consequent,
   wrapper) pairs. *)
let forward_round cfg (s : Sequent.t) :
    (Formula.t * (Proof.t -> Proof.t)) list =
  let sources =
    List.map
      (fun (c : Theory.clause) ->
        (c, `Axiom (Theory.find_exn c.clause_name cfg.theory)))
      cfg.clauses
    @ hyp_clauses s
  in
  List.concat_map
    (fun ((c : Theory.clause), source) ->
      List.filter_map
        (fun sigma ->
          (* All clause variables must be bound by atom matching. *)
          if
            not
              (List.for_all
                 (fun v -> Term.subst_find v sigma <> None)
                 c.clause_vars)
          then None
          else
            let conseq =
              Formula.apply_subst sigma c.consequent
            in
            if Sequent.has_hyp conseq s || Sequent.is_processed conseq s then
              None
            else if Formula.equal conseq Formula.Fls then
              (* Deriving false closes the branch; represent with a
                 wrapper ending in FalseL. *)
              match apply_clause_fragment s source sigma Proof.FalseL with
              | Some (_, p) -> Some (conseq, fun (_ : Proof.t) -> p)
              | None -> None
            else
              match apply_clause_fragment s source sigma Proof.Assumption with
              | Some _ ->
                Some
                  ( conseq,
                    fun cont ->
                      match apply_clause_fragment s source sigma cont with
                      | Some (_, p) -> p
                      | None -> assert false )
              | None -> None)
        (clause_matches s c))
    sources

(* ------------------------------------------------------------------ *)
(* The main search. *)

let rec solve cfg (s : Sequent.t) (fuel : int) : Proof.t option =
  cfg.stats.nodes_explored <- cfg.stats.nodes_explored + 1;
  if cfg.stats.nodes_explored > cfg.node_budget then None
  else solve_goal cfg s fuel

and solve_goal cfg (s : Sequent.t) (fuel : int) : Proof.t option =
  (* Invertible right rules. *)
  match s.Sequent.goal with
  | Formula.And (a, b) ->
    both cfg s fuel a b (fun pa pb -> Proof.AndR (pa, pb))
  | Formula.Imp (a, b) ->
    Option.map
      (fun p -> Proof.ImpR p)
      (solve cfg (Sequent.add_hyp a (Sequent.set_goal b s)) fuel)
  | Formula.Iff (a, b) ->
    let ga = Formula.Imp (a, b) and gb = Formula.Imp (b, a) in
    (match
       ( solve cfg (Sequent.set_goal ga s) fuel,
         solve cfg (Sequent.set_goal gb s) fuel )
     with
    | Some pa, Some pb -> Some (Proof.IffR (pa, pb))
    | _ -> None)
  | Formula.Not a ->
    Option.map
      (fun p -> Proof.NotR p)
      (solve cfg (Sequent.add_hyp a (Sequent.set_goal Formula.Fls s)) fuel)
  | Formula.All (x, body) ->
    let c = Sequent.fresh_const s x in
    Option.map
      (fun p -> Proof.AllR (c, p))
      (solve cfg
         (Sequent.set_goal (Formula.subst1 x (Term.Fn (c, [])) body) s)
         fuel)
  | _ -> left_phase cfg s fuel

and both cfg s fuel a b rebuild =
  match solve cfg (Sequent.set_goal a s) fuel with
  | None -> None
  | Some pa -> (
    match solve cfg (Sequent.set_goal b s) fuel with
    | None -> None
    | Some pb -> Some (rebuild pa pb))

(* Invertible left rules, applied one at a time (the recursion
   re-scans). *)
and left_phase cfg s fuel =
  let invertible =
    List.find_opt
      (function
        | Formula.And _ | Formula.Ex _ | Formula.Iff _ | Formula.Not _ -> true
        | _ -> false)
      s.Sequent.hyps
  in
  match invertible with
  | Some (Formula.And (a, b) as f) ->
    let s = Sequent.mark_processed f s in
    Option.map
      (fun p -> Proof.AndL (f, p))
      (solve cfg
         (Sequent.add_hyp a (Sequent.add_hyp b (Sequent.remove_hyp f s)))
         fuel)
  | Some (Formula.Ex (x, body) as f) ->
    let s = Sequent.mark_processed f s in
    let c = Sequent.fresh_const s x in
    Option.map
      (fun p -> Proof.ExL (f, c, p))
      (solve cfg
         (Sequent.add_hyp
            (Formula.subst1 x (Term.Fn (c, [])) body)
            (Sequent.remove_hyp f s))
         fuel)
  | Some (Formula.Iff (a, b) as f) ->
    let s = Sequent.mark_processed f s in
    Option.map
      (fun p -> Proof.IffL (f, p))
      (solve cfg
         (Sequent.add_hyp (Formula.Imp (a, b))
            (Sequent.add_hyp (Formula.Imp (b, a)) (Sequent.remove_hyp f s)))
         fuel)
  | Some (Formula.Not a as f) ->
    let s = Sequent.mark_processed f s in
    Option.map
      (fun p -> Proof.NotL (f, p))
      (solve cfg
         (Sequent.add_hyp (Formula.Imp (a, Formula.Fls)) (Sequent.remove_hyp f s))
         fuel)
  | _ -> (
    (* Disjunctive hypotheses: case split (still invertible, but done
       after the cheap ones). *)
    let disj =
      List.find_opt (function Formula.Or _ -> true | _ -> false) s.Sequent.hyps
    in
    match disj with
    | Some (Formula.Or (a, b) as f) ->
      let s' = Sequent.remove_hyp f (Sequent.mark_processed f s) in
      (match
         ( solve cfg (Sequent.add_hyp a s') fuel,
           solve cfg (Sequent.add_hyp b s') fuel )
       with
      | Some pa, Some pb -> Some (Proof.OrL (f, pa, pb))
      | _ -> None)
    | _ -> saturate_phase cfg s fuel)

(* Closure, then forward chaining to fixpoint, then fuel moves. *)
and saturate_phase cfg s fuel =
  match try_close s with
  | Some p -> Some p
  | None -> forward_loop cfg s fuel cfg.max_forward_rounds

and forward_loop cfg s fuel rounds =
  if rounds = 0 || cfg.stats.forward_derived > cfg.forward_budget then
    fuel_phase cfg s fuel
  else
    let derivable = forward_round cfg s in
    if derivable = [] then fuel_phase cfg s fuel
    else begin
      cfg.stats.forward_derived <-
        cfg.stats.forward_derived + List.length derivable;
      (* Chain the wrappers: each adds one hypothesis. *)
      let s' =
        List.fold_left (fun s (f, _) -> Sequent.add_hyp f s) s derivable
      in
      let rebuild inner =
        List.fold_right (fun (_, wrap) acc -> wrap acc) derivable inner
      in
      (* If some derived fact was false we are done immediately. *)
      if List.exists (fun (f, _) -> Formula.equal f Formula.Fls) derivable
      then
        (* The wrapper for the false consequent ignores its continuation. *)
        Some (rebuild Proof.FalseL)
      else
        match try_close s' with
        | Some p -> Some (rebuild p)
        | None ->
          (* Re-enter the full loop when a derived hypothesis needs
             decomposition (an existential from a membership axiom, a
             disjunction, ...); otherwise keep chaining. *)
          let needs_decomposition =
            List.exists
              (fun (f, _) ->
                match f with
                | Formula.Atom _ | Formula.Eq _ | Formula.Lt _ | Formula.Le _ ->
                  false
                | _ -> true)
              derivable
          in
          let continue_ =
            if needs_decomposition then solve cfg s' fuel
            else forward_loop cfg s' fuel (rounds - 1)
          in
          (match continue_ with
          | Some p -> Some (rebuild p)
          | None -> None)
    end

(* Non-invertible moves, each costing one unit of fuel. *)
and fuel_phase cfg s fuel =
  if fuel <= 0 then None
  else
    let fuel' = fuel - 1 in
    (* 1. Unfold a defined predicate occurring as a hypothesis atom. *)
    let hyp_unfold =
      List.filter_map
        (fun h ->
          match h with
          | Formula.Atom (p, _) -> (
            match Theory.definition_of p cfg.theory with
            | Some entry -> Some (h, entry)
            | None -> None)
          | _ -> None)
        s.Sequent.hyps
    in
    let try_hyp_unfold (h, entry) =
      cfg.stats.unfolds <- cfg.stats.unfolds + 1;
      unfold_hyp cfg s fuel' h entry
    in
    let rec first f = function
      | [] -> None
      | x :: rest -> ( match f x with Some r -> Some r | None -> first f rest)
    in
    match first try_hyp_unfold hyp_unfold with
    | Some p -> Some p
    | None -> (
      (* 2. Unfold the goal if it is a defined atom. *)
      let goal_unfold =
        match s.Sequent.goal with
        | Formula.Atom (p, _) -> Theory.definition_of p cfg.theory
        | _ -> None
      in
      match goal_unfold with
      | Some entry -> (
        cfg.stats.unfolds <- cfg.stats.unfolds + 1;
        match unfold_goal cfg s fuel' entry with
        | Some p -> Some p
        | None -> gamma_phase cfg s fuel')
      | None -> gamma_phase cfg s fuel')

(* Existential witnesses, disjunctive goals, backchaining on
   hypothetical implications. *)
and gamma_phase cfg s fuel =
  match s.Sequent.goal with
  | Formula.Ex (x, body) ->
    let candidates =
      let cands = Sequent.candidate_terms s in
      let n = List.length cands in
      if n > cfg.max_candidates then
        List.filteri (fun i _ -> i < cfg.max_candidates) cands
      else cands
    in
    let rec try_witness = function
      | [] -> None
      | w :: rest -> (
        match solve cfg (Sequent.set_goal (Formula.subst1 x w body) s) fuel with
        | Some p -> Some (Proof.ExR (w, p))
        | None -> try_witness rest)
    in
    try_witness candidates
  | Formula.Or (a, b) -> (
    match solve cfg (Sequent.set_goal a s) fuel with
    | Some p -> Some (Proof.OrR1 p)
    | None ->
      Option.map (fun p -> Proof.OrR2 p) (solve cfg (Sequent.set_goal b s) fuel))
  | goal -> (
    (* Backchain: hypothesis [a => goal] reduces to proving [a]. *)
    let imp =
      List.find_opt
        (function
          | Formula.Imp (_, b) -> Formula.equal b goal
          | _ -> false)
        s.Sequent.hyps
    in
    match imp with
    | Some (Formula.Imp (a, _) as f) ->
      Option.map
        (fun pa -> Proof.ImpL (f, pa, Proof.Assumption))
        (solve cfg (Sequent.set_goal a s) fuel)
    | _ -> None)

(* Unfold hypothesis atom [h = p(ts)] using its definition entry
   [forall xs. p(xs) <=> rhs]: after the fragment, [rhs{xs:=ts}] is a new
   hypothesis. *)
and unfold_hyp cfg s fuel h entry =
  match h with
  | Formula.Atom (_, ts) -> (
    match instantiate_def entry ts with
    | None -> None
    | Some (_, _, rhs_inst) when Sequent.has_hyp rhs_inst s -> None
    | Some (chain, iff_inst, rhs_inst) -> (
      let p_to_rhs, rhs_to_p =
        match iff_inst with
        | Formula.Iff (a, b) -> (Formula.Imp (a, b), Formula.Imp (b, a))
        | _ -> assert false
      in
      ignore rhs_to_p;
      let s' = Sequent.add_hyp rhs_inst s in
      match solve cfg s' fuel with
      | None -> None
      | Some cont ->
        (* AxiomR; AllL*; IffL; ImpL (p(ts) => rhs) with antecedent by
           assumption; continue with rhs as hypothesis. *)
        let inner = Proof.ImpL (p_to_rhs, Proof.Assumption, cont) in
        let with_iff = Proof.IffL (iff_inst, inner) in
        Some (Proof.AxiomR (entry.Theory.name, chain with_iff))))
  | _ -> None

(* Unfold the goal atom using its definition: prove rhs instead. *)
and unfold_goal cfg s fuel entry =
  match s.Sequent.goal with
  | Formula.Atom (_, ts) -> (
    match instantiate_def entry ts with
    | None -> None
    | Some (chain, iff_inst, rhs_inst) -> (
      let rhs_to_p =
        match iff_inst with
        | Formula.Iff (a, b) -> Formula.Imp (b, a)
        | _ -> assert false
      in
      match solve cfg (Sequent.set_goal rhs_inst s) fuel with
      | None -> None
      | Some prhs ->
        let inner = Proof.ImpL (rhs_to_p, prhs, Proof.Assumption) in
        let with_iff = Proof.IffL (iff_inst, inner) in
        Some (Proof.AxiomR (entry.Theory.name, chain with_iff))))
  | _ -> None

(* Instantiate a definition [forall x1..xn. p(x1..xn) <=> rhs] with the
   argument terms [ts].  Returns the AllL chain builder, the instantiated
   iff, and the instantiated rhs. *)
and instantiate_def (entry : Theory.entry) (ts : Term.t list) :
    ((Proof.t -> Proof.t) * Formula.t * Formula.t) option =
  let rec go cur ts (wrap : Proof.t -> Proof.t) =
    match cur, ts with
    | Formula.All (x, body), t :: rest ->
      let inst = Formula.subst1 x t body in
      go inst rest (fun p -> wrap (Proof.AllL (cur, t, p)))
    | Formula.Iff (lhs, rhs), [] -> Some (wrap, Formula.Iff (lhs, rhs), rhs)
    | _ -> None
  in
  go entry.Theory.formula ts (fun p -> p)

(* ------------------------------------------------------------------ *)
(* Entry points. *)

type outcome = {
  proof : Proof.t;
  steps : int;  (* proof size: inference count *)
  nodes_explored : int;
  checked : bool;  (* the kernel accepted the proof *)
  elapsed : float;  (* seconds *)
}

exception Proof_failed of string

(* Iterative deepening on fuel. *)
let prove ?(max_fuel = 5) (thy : Theory.t) ?(hyps = []) (goal : Formula.t) :
    (outcome, string) result =
  let t0 = Sys.time () in
  let s = Sequent.make ~hyps goal in
  let rec attempt fuel =
    if fuel > max_fuel then None
    else
      let cfg = make_config thy in
      match solve cfg s fuel with
      | Some p -> Some (p, cfg.stats)
      | None -> attempt (fuel + 1)
  in
  match attempt 1 with
  | None -> Error (Fmt.str "no proof found for %a" Formula.pp goal)
  | Some (p, stats) -> (
    match Checker.check thy s p with
    | Ok () ->
      Ok
        {
          proof = p;
          steps = Proof.size p;
          nodes_explored = stats.nodes_explored;
          checked = true;
          elapsed = Sys.time () -. t0;
        }
    | Error e ->
      Error (Fmt.str "kernel rejected the proof: %a" Checker.pp_error e))

(* Prove [forall xs. pred(xs) => Phi] by fixpoint induction on [pred]:
   generate one subgoal per defining rule (via the kernel's own subgoal
   builder) and discharge each with the automated prover; the combined
   [Induct] proof is kernel-checked as usual. *)
let prove_by_induction ?(max_fuel = 5) (thy : Theory.t) ?(hyps = [])
    ~(on : string) (goal : Formula.t) : (outcome, string) result =
  let t0 = Sys.time () in
  let s = Sequent.make ~hyps goal in
  match Checker.induction_subgoals thy s on with
  | Error e -> Error ("induction not applicable: " ^ e)
  | Ok subgoals -> (
    let cfg = make_config thy in
    let solve_subgoal sq =
      let rec attempt fuel =
        if fuel > max_fuel then None
        else
          match solve cfg sq fuel with
          | Some p -> Some p
          | None -> attempt (fuel + 1)
      in
      attempt 1
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | sq :: rest -> (
        match solve_subgoal sq with
        | Some p -> go (p :: acc) rest
        | None ->
          Error (Fmt.str "induction subgoal not proved:@.%a" Sequent.pp sq))
    in
    match go [] subgoals with
    | Error e -> Error e
    | Ok proofs -> (
      let proof = Proof.Induct (on, proofs) in
      match Checker.check thy s proof with
      | Ok () ->
        Ok
          {
            proof;
            steps = Proof.size proof;
            nodes_explored = cfg.stats.nodes_explored;
            checked = true;
            elapsed = Sys.time () -. t0;
          }
      | Error e ->
        Error (Fmt.str "kernel rejected the induction proof: %a" Checker.pp_error e)))

(* Prove a conjecture and, on success, extend the theory with it as a
   reusable lemma (available to forward chaining and [use] in later
   proofs) — the workflow of building up a verified theory
   incrementally. *)
let assert_lemma ?max_fuel ?(by_induction_on : string option)
    (thy : Theory.t) (name : string) (goal : Formula.t) :
    (Theory.t * outcome, string) result =
  let result =
    match by_induction_on with
    | Some pred -> prove_by_induction ?max_fuel thy ~on:pred goal
    | None -> prove ?max_fuel thy goal
  in
  match result with
  | Error e -> Error e
  | Ok outcome -> Ok (Theory.add ~kind:Theory.Lemma name goal thy, outcome)

let prove_exn ?max_fuel thy ?hyps goal =
  match prove ?max_fuel thy ?hyps goal with
  | Ok o -> o
  | Error e -> raise (Proof_failed e)
