(** Linear integer arithmetic: the kernel's [arith] decision procedure.

    Decides unsatisfiability of conjunctions of literals [t1 = t2],
    [t1 < t2], [t1 <= t2] (and their negations) where terms are linear
    combinations of integer constants and atomic terms (uninterpreted
    subterms are treated as opaque integer variables).

    Method: normalize to [e >= 0] constraints, integer-strengthen strict
    inequalities ([a < b] becomes [b - a - 1 >= 0]), run Fourier–Motzkin
    elimination over the rationals.  Rational unsatisfiability implies
    integer unsatisfiability, so the procedure is sound; it is
    incomplete (integrality-only contradictions such as [2x = 1] are
    missed), and it presumes compared terms denote integers. *)

val unsat : Formula.t list -> bool
(** Is the conjunction of literals unsatisfiable over the integers?
    Unusable literals (uninterpreted atoms, disequalities) are dropped,
    which is sound for unsatisfiability. *)

val entails : Formula.t list -> Formula.t -> bool
(** [entails hyps goal]: do the hypotheses entail an arithmetic goal?
    Equality goals are proved as two strict-inequality refutations
    (their negation is a disjunction, which Fourier–Motzkin cannot take
    conjunctively).  Goals outside the arithmetic fragment return
    [false]. *)
