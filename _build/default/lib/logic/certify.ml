(* Certified provenance: compile an operational derivation tree
   ({!Ndlog.Provenance}) into a kernel-checked proof that the derived
   ground atom follows from the program's logical specification plus its
   base facts.

   This is the executable form of the paper's soundness footnote ("the
   equivalence of NDlog's proof-theoretic semantics and operational
   semantics"): every tuple the engine derives can be turned into a
   sequent-calculus proof that the kernel accepts.

   Scope: positive, non-aggregate derivation steps (negated premises
   would require closed-world axioms, and aggregates have no iff
   definition); use it on the recursive core of a program (paths,
   reachability), which is where provenance matters. *)

module Prov = Ndlog.Provenance
module Ast = Ndlog.Ast

type certificate = {
  cert_theory : Theory.t;  (* completion + base-fact axioms *)
  cert_goal : Formula.t;  (* the ground atom *)
  cert_proof : Proof.t;
  cert_checked : bool;
}

let ground_atom pred (tuple : Ndlog.Store.Tuple.t) =
  Formula.Atom (pred, Array.to_list (Array.map (fun v -> Term.Cst v) tuple))

exception Unsupported of string

(* Find the axiom naming a given ground fact. *)
let fact_axiom thy (goal : Formula.t) : string =
  match
    List.find_opt
      (fun (e : Theory.entry) -> Formula.equal e.Theory.formula goal)
      thy.Theory.entries
  with
  | Some e -> e.Theory.name
  | None -> raise (Unsupported (Fmt.str "no fact axiom for %a" Formula.pp goal))

(* Index of [rule] among the non-aggregate rules defining its head (the
   completion lists disjuncts in this order). *)
let disjunct_index (program : Ast.program) (rule : Ast.rule) : int * int =
  let pred = rule.Ast.head.Ast.head_pred in
  let plain =
    List.filter
      (fun (r : Ast.rule) ->
        r.Ast.head.Ast.head_pred = pred && not (Ast.has_aggregate r.Ast.head))
      program.Ast.rules
  in
  let rec find i = function
    | [] -> raise (Unsupported ("rule not found for " ^ pred))
    | r :: rest -> if r == rule || r = rule then (i, List.length plain) else find (i + 1) rest
  in
  find 0 plain

(* Prove a ground formula, delegating atoms to [prove_atom]. *)
let rec prove_ground prove_atom (f : Formula.t) : Proof.t =
  match f with
  | Formula.Tru -> Proof.TrueR
  | Formula.And (a, b) ->
    Proof.AndR (prove_ground prove_atom a, prove_ground prove_atom b)
  | Formula.Atom (p, args) ->
    let values =
      List.map
        (fun t ->
          match Term.eval t with
          | Some v -> v
          | None ->
            raise (Unsupported (Fmt.str "non-ground atom argument %a" Term.pp t)))
        args
    in
    prove_atom p (Array.of_list values)
  | Formula.Eq _ | Formula.Lt _ | Formula.Le _ | Formula.Not _ -> (
    match Formula.ground_decide f with
    | Some true -> Proof.Eval
    | _ ->
      if Arith.entails [] f then Proof.Arith
      else raise (Unsupported (Fmt.str "cannot discharge %a" Formula.pp f)))
  | _ -> raise (Unsupported (Fmt.str "unexpected formula %a" Formula.pp f))

(* Prove disjunct [i] of a left-folded Or tree of [n] disjuncts. *)
let rec prove_disjunct_at prove_one (f : Formula.t) i n : Proof.t =
  if n = 1 then prove_one f
  else
    match f with
    | Formula.Or (left, last) ->
      if i = n - 1 then Proof.OrR2 (prove_one last)
      else Proof.OrR1 (prove_disjunct_at prove_one left i (n - 1))
    | _ -> raise (Unsupported "completion disjunction shape mismatch")

let certify (program : Ast.program) (derivation : Prov.derivation) :
    (certificate, string) result =
  let thy =
    Theory.merge
      (Completion.theory_of_program program)
      (Completion.theory_of_store (Ndlog.Store.of_facts program.Ast.facts))
  in
  let rec proof_of (d : Prov.derivation) : Proof.t =
    match d with
    | Prov.Fact (p, t) ->
      let goal = ground_atom p t in
      Proof.AxiomR (fact_axiom thy goal, Proof.Assumption)
    | Prov.Step s ->
      if s.Prov.neg_checks <> [] then
        raise (Unsupported "negated premises are not certifiable");
      if Ast.has_aggregate s.Prov.rule.Ast.head then
        raise (Unsupported "aggregate steps are not certifiable");
      let pred, tuple = s.Prov.conclusion in
      let entry =
        match Theory.definition_of pred thy with
        | Some e -> e
        | None -> raise (Unsupported ("no definition for " ^ pred))
      in
      let ts = Array.to_list (Array.map (fun v -> Term.Cst v) tuple) in
      (* Instantiate the definition with the tuple. *)
      let rec instantiate cur ts wrap =
        match cur, ts with
        | Formula.All (x, body), t :: rest ->
          instantiate (Formula.subst1 x t body) rest (fun p ->
              wrap (Proof.AllL (cur, t, p)))
        | Formula.Iff (lhs, rhs), [] -> (wrap, Formula.Iff (lhs, rhs), rhs)
        | _ -> raise (Unsupported "definition shape mismatch")
      in
      let chain, iff_inst, rhs = instantiate entry.Theory.formula ts (fun p -> p) in
      let rhs_to_p =
        match iff_inst with
        | Formula.Iff (a, b) -> Formula.Imp (b, a)
        | _ -> assert false
      in
      (* Prove the rhs disjunct corresponding to the step's rule. *)
      let i, n = disjunct_index program s.Prov.rule in
      let env = Ndlog.Env.of_list s.Prov.binding in
      let prove_atom p t =
        (* find the matching premise derivation *)
        match
          List.find_opt
            (fun d ->
              let p', t' = Prov.conclusion d in
              p' = p && Ndlog.Store.Tuple.equal t' t)
            s.Prov.premises
        with
        | Some d -> proof_of d
        | None ->
          raise
            (Unsupported
               (Fmt.str "missing premise %s%a" p Ndlog.Store.Tuple.pp t))
      in
      let rec prove_one (f : Formula.t) : Proof.t =
        (* peel existentials with witnesses from the binding *)
        match f with
        | Formula.Ex (x, body) ->
          let w =
            match Ndlog.Env.find_opt x env with
            | Some v -> Term.Cst v
            | None ->
              raise (Unsupported ("no witness for existential " ^ x))
          in
          Proof.ExR (w, prove_one (Formula.subst1 x w body))
        | f -> prove_ground prove_atom f
      in
      let rhs_proof = prove_disjunct_at prove_one rhs i n in
      Proof.AxiomR
        ( entry.Theory.name,
          chain
            (Proof.IffL
               (iff_inst, Proof.ImpL (rhs_to_p, rhs_proof, Proof.Assumption)))
        )
  in
  match proof_of derivation with
  | exception Unsupported msg -> Error msg
  | proof -> (
    let pred, tuple = Prov.conclusion derivation in
    let goal = ground_atom pred tuple in
    match Checker.check thy (Sequent.make goal) proof with
    | Ok () ->
      Ok { cert_theory = thy; cert_goal = goal; cert_proof = proof; cert_checked = true }
    | Error e ->
      Error (Fmt.str "kernel rejected the certificate: %a" Checker.pp_error e))

(* One-call convenience: evaluate, explain, certify. *)
let certify_tuple (program : Ast.program) pred tuple :
    (certificate, string) result =
  match Ndlog.Eval.run program with
  | Error e -> Error (Fmt.str "%a" Ndlog.Analysis.pp_error e)
  | Ok o -> (
    match Ndlog.Provenance.explain program o.Ndlog.Eval.db pred tuple with
    | Error e -> Error e
    | Ok d -> certify program d)
