(** Certified provenance: compile an operational derivation tree
    ({!Ndlog.Provenance}) into a kernel-checked proof that the derived
    ground atom follows from the program's completion plus its base
    facts.

    This is the executable form of the paper's soundness footnote ("the
    equivalence of NDlog's proof-theoretic semantics and operational
    semantics"): every tuple the engine derives can be turned into a
    sequent-calculus proof that the kernel accepts.

    Scope: positive, non-aggregate derivation steps.  Negated premises
    would need closed-world axioms, and aggregates have no iff
    definition; both produce a descriptive error. *)

type certificate = {
  cert_theory : Theory.t;  (** completion + base-fact axioms *)
  cert_goal : Formula.t;  (** the ground atom *)
  cert_proof : Proof.t;
  cert_checked : bool;  (** always true in returned certificates *)
}

val ground_atom : string -> Ndlog.Store.Tuple.t -> Formula.t

val certify :
  Ndlog.Ast.program ->
  Ndlog.Provenance.derivation ->
  (certificate, string) result
(** Compile a derivation into a checked proof. *)

val certify_tuple :
  Ndlog.Ast.program ->
  string ->
  Ndlog.Store.Tuple.t ->
  (certificate, string) result
(** One call: evaluate the program, explain the tuple, certify the
    derivation. *)
