(* Linear integer arithmetic decision procedure (the [arith] proof rule).

   Decides unsatisfiability of a conjunction of literals of the form
   [t1 = t2], [t1 < t2], [t1 <= t2] and their negations, where terms are
   linear combinations of integer constants and atomic terms
   (uninterpreted terms are treated as opaque integer-valued variables).

   Method: normalize every literal to [e >= 0]; integer-strengthen strict
   inequalities ([a < b] becomes [b - a - 1 >= 0]); run Fourier–Motzkin
   elimination over the rationals.  Rational unsatisfiability implies
   integer unsatisfiability, so the procedure is sound (and incomplete:
   integrality-only contradictions such as [2x = 1] are not detected).

   The rule presumes all compared terms denote integers; the theory
   layer only emits comparisons on metric (cost) positions, which are
   integers throughout this code base. *)

module Tmap = Map.Make (Term)

(* A constraint: sum of coeff * atom + const >= 0. *)
type linexp = {
  coeffs : int Tmap.t;
  const : int;
}

let lzero = { coeffs = Tmap.empty; const = 0 }
let lconst n = { coeffs = Tmap.empty; const = n }

let ladd a b =
  {
    coeffs =
      Tmap.union (fun _ x y -> if x + y = 0 then None else Some (x + y)) a.coeffs b.coeffs
    |> Tmap.filter (fun _ c -> c <> 0);
    const = a.const + b.const;
  }

let lscale k e =
  if k = 0 then lzero
  else { coeffs = Tmap.map (fun c -> c * k) e.coeffs; const = e.const * k }

let lsub a b = ladd a (lscale (-1) b)

let latom t = { coeffs = Tmap.singleton t 1; const = 0 }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let normalize e =
  let g =
    Tmap.fold (fun _ c acc -> gcd acc c) e.coeffs (abs e.const)
  in
  if g <= 1 then e
  else
    (* Dividing a ">= 0" constraint by a positive g preserves it for the
       rational relaxation; round the constant down (sound: weaker). *)
    {
      coeffs = Tmap.map (fun c -> c / g) e.coeffs;
      const =
        (if e.const >= 0 then e.const / g
         else -(((-e.const) + g - 1) / g));
    }

(* Linearize a term.  Non-linear or uninterpreted subterms become atoms. *)
let rec linearize (t : Term.t) : linexp =
  match t with
  | Term.Cst (Ndlog.Value.Int n) -> lconst n
  | Term.Fn ("+", [ a; b ]) -> ladd (linearize a) (linearize b)
  | Term.Fn ("-", [ a; b ]) -> lsub (linearize a) (linearize b)
  | Term.Fn ("*", [ Term.Cst (Ndlog.Value.Int k); a ]) -> lscale k (linearize a)
  | Term.Fn ("*", [ a; Term.Cst (Ndlog.Value.Int k) ]) -> lscale k (linearize a)
  | _ -> latom t

(* Translate a literal to zero or more [e >= 0] constraints.  Literals the
   procedure cannot use (uninterpreted atoms, disequalities) contribute
   nothing: dropping constraints is sound for unsatisfiability. *)
let rec constraints_of (f : Formula.t) : linexp list =
  match f with
  | Formula.Le (a, b) -> [ lsub (linearize b) (linearize a) ]
  | Formula.Lt (a, b) -> [ ladd (lsub (linearize b) (linearize a)) (lconst (-1)) ]
  | Formula.Eq (a, b) ->
    let d = lsub (linearize a) (linearize b) in
    [ d; lscale (-1) d ]
  | Formula.Not (Formula.Le (a, b)) -> constraints_of (Formula.Lt (b, a))
  | Formula.Not (Formula.Lt (a, b)) -> constraints_of (Formula.Le (b, a))
  | Formula.Not (Formula.Not g) -> constraints_of g
  | _ -> []

(* Fourier–Motzkin: eliminate atoms one by one; unsat iff a constant
   constraint with negative constant appears. *)
let rec fm (cs : linexp list) : bool =
  (* Check ground contradictions first. *)
  if List.exists (fun e -> Tmap.is_empty e.coeffs && e.const < 0) cs then true
  else
    let with_vars = List.filter (fun e -> not (Tmap.is_empty e.coeffs)) cs in
    match with_vars with
    | [] -> false
    | e :: _ ->
      let x, _ = Tmap.choose e.coeffs in
      let coeff_of e = match Tmap.find_opt x e.coeffs with Some c -> c | None -> 0 in
      let pos = List.filter (fun e -> coeff_of e > 0) cs in
      let negs = List.filter (fun e -> coeff_of e < 0) cs in
      let rest = List.filter (fun e -> coeff_of e = 0) cs in
      let combined =
        List.concat_map
          (fun p ->
            let a = coeff_of p in
            List.map
              (fun n ->
                let b = -coeff_of n in
                normalize (ladd (lscale b p) (lscale a n)))
              negs)
          pos
      in
      (* Size guard: FM can blow up; cap the working set.  Giving up is
         sound (we simply fail to prove unsat). *)
      let next = rest @ combined in
      if List.length next > 4000 then false else fm next

(* [unsat literals] decides whether the conjunction of literals is
   unsatisfiable over the integers (sound, incomplete). *)
let unsat (literals : Formula.t list) : bool =
  let cs = List.concat_map constraints_of literals in
  fm (List.map normalize cs)

(* [entails hyps goal]: the hypotheses entail an arithmetic goal when
   hyps plus the goal's negation are unsatisfiable. *)
let entails (hyps : Formula.t list) (goal : Formula.t) : bool =
  match goal with
  | Formula.Eq (a, b) ->
    (* The negation of an equality is a disjunction (a < b or b < a),
       which Fourier–Motzkin cannot take conjunctively: refute each
       disjunct separately. *)
    unsat (Formula.Lt (a, b) :: hyps) && unsat (Formula.Lt (b, a) :: hyps)
  | Formula.Le _ | Formula.Lt _
  | Formula.Not (Formula.Le _ | Formula.Lt _ | Formula.Eq _) ->
    unsat (Formula.Not goal :: hyps)
  | Formula.Fls -> unsat hyps
  | _ -> false
