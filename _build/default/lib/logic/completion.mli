(** Arc 4 of the paper (Figure 1): automatic compilation of NDlog
    programs into logical specifications.

    Following the proof-theoretic semantics of Datalog, the rule set of
    each predicate becomes an inductively defined predicate — the
    iff-completion (the PVS [INDUCTIVE bool] the paper shows for
    [path]).  Aggregate rules are not first-order definable as an iff;
    they generate the characteristic axioms the paper's
    route-optimality proof rests on (bound, membership, totality,
    functionality).  Location specifiers are erased: verification
    concerns the global fixpoint semantics, which localization
    preserves. *)

val term_of_expr : Ndlog.Ast.expr -> Term.t
val formula_of_lit : Ndlog.Ast.lit -> Formula.t

val body_formula : Ndlog.Ast.lit list -> Formula.t
(** Conjunction of the body literals' formulas. *)

val completion_of_pred : string -> int -> Ndlog.Ast.rule list -> Formula.t
(** [completion_of_pred pred arity rules] is
    [forall A0..An. pred(A0..An) <=> D1 \/ ... \/ Dk] where each [Di]
    existentially closes rule [i]'s body over its local variables. *)

(** Decomposition of an aggregate rule. *)
type agg_info = {
  agg_pred : string;
  agg : Ndlog.Ast.agg;
  key_args : Ndlog.Ast.expr list;  (** the plain (group-by) head args *)
  agg_var : string;  (** the aggregated body variable *)
  agg_index : int;  (** position of the aggregate in the head *)
  body : Ndlog.Ast.lit list;
}

val agg_info_of_rule : Ndlog.Ast.rule -> agg_info option

val aggregate_axioms : agg_info -> (string * Formula.t) list
(** Named axioms for one aggregate rule:
    [<pred>_lb]/[<pred>_ub] (the min/max bound), [<pred>_mem]
    (membership: the result is achieved by some row), [<pred>_tot]
    (totality), [<pred>_fun] (functionality). *)

val theory_of_program : ?name_prefix:string -> Ndlog.Ast.program -> Theory.t
(** The full translation: one [Definition] ([<pred>_def]) plus an
    inductive registration per derived predicate, and the aggregate
    axioms per aggregate rule.
    @raise Invalid_argument on ill-formed programs. *)

val theory_of_store : ?name_prefix:string -> Ndlog.Store.t -> Theory.t
(** Ground facts as axioms ([fact_1], [fact_2], ...) for instance-level
    proofs (see {!Certify}). *)
