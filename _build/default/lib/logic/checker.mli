(** The proof checker: the trusted kernel.

    [check thy sequent proof] re-validates every inference of [proof]
    against the sequent calculus.  Nothing the prover or tactic layer
    produces is believed until this function accepts it.  The semantic
    leaves are [Arith] ({!Arith.entails}) and [Eval]
    ({!Formula.ground_decide}) — decision procedures in the PVS
    tradition — plus the fixpoint-induction rule, which consults the
    theory's inductive registrations. *)

type error = {
  rule : string;
  sequent : Sequent.t;
  reason : string;
}

val pp_error : error Fmt.t

exception Check_failed of error

val induction_subgoals :
  Theory.t -> Sequent.t -> string -> (Sequent.t list, string) result
(** Subgoals of fixpoint induction on a predicate, for a goal of shape
    [forall xs. pred(xs) => Phi]: one per defining rule, hypothesizing
    the (skolemized) rule body plus the induction hypothesis for
    recursive body atoms.  Shared between the kernel rule and the
    [induct] tactic so both construct identical sequents. *)

val check : Theory.t -> Sequent.t -> Proof.t -> (unit, error) result
(** Validate a proof of a sequent. *)

val is_valid : Theory.t -> Sequent.t -> Proof.t -> bool
