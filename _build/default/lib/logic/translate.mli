(** Shared NDlog-AST to logic translation helpers, used by
    {!Completion} (arc 4) and by the kernel's fixpoint-induction rule
    (which interprets rule bodies itself to validate induction
    steps). *)

val term_of_expr : Ndlog.Ast.expr -> Term.t
(** Variables map to variables, constants to constants, builtin calls
    and arithmetic to function applications. *)

val formula_of_lit : Ndlog.Ast.lit -> Formula.t
(** Positive atoms to atoms, negation to [Not], assignments to
    equations, comparisons to (normalized) comparison formulas. *)

val body_formulas : Ndlog.Ast.lit list -> Formula.t list

val head_terms : Ndlog.Ast.head -> Term.t list
(** @raise Invalid_argument on aggregate heads. *)
