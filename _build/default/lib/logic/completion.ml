(* Arc 4 of the paper (Figure 1): automatic compilation of NDlog
   programs into logical specifications.

   Following the proof-theoretic semantics of Datalog, the set of rules
   defining a predicate becomes an inductively defined predicate — the
   iff-completion (the paper shows the PVS [INDUCTIVE bool] for [path]):

     path(S,D,P,C) <=> (link(S,D,C) /\ P = f_init(S,D))
                    \/ (exists C1 C2 P2 Z. link(S,Z,C1) /\ ...)

   Aggregate rules (min / max heads) are not first-order definable as an
   iff; they instead generate the characteristic axioms the paper's
   route-optimality proof rests on:

   - lower/upper bound: the aggregate result bounds every group member;
   - membership: the result is achieved by some member;
   - totality: a non-empty group has an aggregate result;
   - functionality: at most one result per group.

   Location specifiers are erased: verification concerns the global
   fixpoint semantics, which localization preserves (tested in
   [test_dist.ml]). *)

module Ast = Ndlog.Ast

let term_of_expr = Translate.term_of_expr
let formula_of_lit = Translate.formula_of_lit

let body_formula (body : Ast.lit list) : Formula.t =
  Formula.conj (List.map formula_of_lit body)

(* Canonical head variables for a predicate of arity n. *)
let head_vars n = List.init n (fun i -> Printf.sprintf "A%d" i)

module Sset = Term.Sset

(* One disjunct of the completion for a non-aggregate rule: rename rule
   variables so that bare-variable head arguments coincide with the
   canonical head variables, then existentially close the rest. *)
let rule_disjunct (hvars : string list) (r : Ast.rule) : Formula.t =
  let args =
    List.map
      (function
        | Ast.Plain e -> e
        | Ast.Agg _ -> invalid_arg "rule_disjunct: aggregate head")
      r.Ast.head.Ast.head_args
  in
  (* First pass: rename distinct bare-variable arguments to head vars. *)
  let rename, eqs =
    List.fold_left2
      (fun (rename, eqs) hv arg ->
        match arg with
        | Ast.Var x when not (Term.Smap.mem x rename) ->
          (Term.Smap.add x (Term.Var hv) rename, eqs)
        | e -> (rename, Formula.Eq (Term.Var hv, term_of_expr e) :: eqs))
      (Term.Smap.empty, []) hvars args
  in
  let body = Formula.apply_subst rename (body_formula r.Ast.body) in
  let constraints =
    List.map (Formula.apply_subst rename) (List.rev eqs)
  in
  let full = Formula.conj ((body :: constraints) |> List.filter (fun f -> f <> Formula.Tru)) in
  let full = if Formula.equal full Formula.Tru then Formula.Tru else full in
  (* Existentially quantify remaining free variables (rule locals). *)
  let free = Formula.fv full in
  let locals =
    Sset.elements (Sset.diff free (Sset.of_list hvars))
  in
  Formula.ex_list locals full

(* The iff-completion of predicate [pred] from its non-aggregate rules. *)
let completion_of_pred pred arity (rules : Ast.rule list) : Formula.t =
  let hvars = head_vars arity in
  let lhs = Formula.Atom (pred, List.map (fun v -> Term.Var v) hvars) in
  let rhs = Formula.disj (List.map (rule_disjunct hvars) rules) in
  Formula.all_list hvars (Formula.Iff (lhs, rhs))

(* ------------------------------------------------------------------ *)
(* Aggregate axioms. *)

(* For rule [q(K1..Km, agg<C>) :- body]: the "group key" is the plain
   head arguments, the aggregate column is C. *)
type agg_info = {
  agg_pred : string;
  agg : Ast.agg;
  key_args : Ast.expr list;
  agg_var : string;
  agg_index : int;
  body : Ast.lit list;
}

let agg_info_of_rule (r : Ast.rule) : agg_info option =
  let head = r.Ast.head in
  let rec find i = function
    | [] -> None
    | Ast.Agg (a, x) :: _ -> Some (i, a, x)
    | Ast.Plain _ :: rest -> find (i + 1) rest
  in
  match find 0 head.Ast.head_args with
  | None -> None
  | Some (i, a, x) ->
    let keys =
      List.filter_map
        (function Ast.Plain e -> Some e | Ast.Agg _ -> None)
        head.Ast.head_args
    in
    Some
      {
        agg_pred = head.Ast.head_pred;
        agg = a;
        key_args = keys;
        agg_var = x;
        agg_index = i;
        body = r.Ast.body;
      }

(* Rebuild the full head argument list with [v] in the aggregate slot. *)
let head_args_with info (keys : Term.t list) (v : Term.t) : Term.t list =
  let rec insert i = function
    | rest when i = info.agg_index -> v :: rest
    | [] -> [ v ]
    | k :: rest -> k :: insert (i + 1) rest
  in
  insert 0 keys

(* Axioms for one aggregate rule.  Key variables are canonicalized like
   rule_disjunct; body variables stay as is (they are fresh wrt K/V). *)
let aggregate_axioms (info : agg_info) : (string * Formula.t) list =
  let n_keys = List.length info.key_args in
  let kvars = List.init n_keys (fun i -> Printf.sprintf "K%d" i) in
  let vvar = "V" in
  (* Rename body so key positions use K-variables; constrain complex key
     arguments with equalities. *)
  let rename, eqs =
    List.fold_left2
      (fun (rename, eqs) kv arg ->
        match arg with
        | Ast.Var x when not (Term.Smap.mem x rename) ->
          (Term.Smap.add x (Term.Var kv) rename, eqs)
        | e -> (rename, Formula.Eq (Term.Var kv, term_of_expr e) :: eqs))
      (Term.Smap.empty, []) kvars info.key_args
  in
  let body =
    Formula.conj
      (List.map (Formula.apply_subst rename) (List.map formula_of_lit info.body)
      @ List.rev_map (Formula.apply_subst rename) eqs)
  in
  let agg_term = Term.apply_subst rename (Term.Var info.agg_var) in
  let kterms = List.map (fun v -> Term.Var v) kvars in
  let q args = Formula.Atom (info.agg_pred, args) in
  let q_v = q (head_args_with info kterms (Term.Var vvar)) in
  let body_vars =
    Sset.elements
      (Sset.diff (Formula.fv body) (Sset.of_list (vvar :: kvars)))
  in
  let all_body f = Formula.all_list body_vars f in
  let ex_body f = Formula.ex_list body_vars f in
  let bound_axiom cmp =
    (* forall K V bodyvars. q(K,V) /\ body => cmp(V, aggvar) *)
    Formula.all_list (kvars @ [ vvar ])
      (all_body
         (Formula.imp
            (Formula.And (q_v, body))
            (cmp (Term.Var vvar) agg_term)))
  in
  let membership =
    (* forall K V. q(K,V) => exists bodyvars. body[agg := V].  When the
       aggregated column is a bare variable, substituting it directly
       keeps the axiom equation-free, which the prover exploits; the
       general form falls back to an explicit equality. *)
    match agg_term with
    | Term.Var av ->
      let body_m = Formula.subst1 av (Term.Var vvar) body in
      let mvars = List.filter (fun v -> v <> av) body_vars in
      Formula.all_list (kvars @ [ vvar ])
        (Formula.imp q_v (Formula.ex_list mvars body_m))
    | _ ->
      Formula.all_list (kvars @ [ vvar ])
        (Formula.imp q_v
           (ex_body (Formula.And (body, Formula.Eq (agg_term, Term.Var vvar)))))
  in
  let totality =
    (* forall K bodyvars. body => exists V. q(K,V) *)
    Formula.all_list kvars
      (all_body
         (Formula.imp body (Formula.Ex (vvar, q_v))))
  in
  let functional =
    let v2 = "V'" in
    let q_v2 = q (head_args_with info kterms (Term.Var v2)) in
    Formula.all_list
      (kvars @ [ vvar; v2 ])
      (Formula.imp (Formula.And (q_v, q_v2)) (Formula.Eq (Term.Var vvar, Term.Var v2)))
  in
  let base = [
    (info.agg_pred ^ "_mem", membership);
    (info.agg_pred ^ "_tot", totality);
    (info.agg_pred ^ "_fun", functional);
  ]
  in
  match info.agg with
  | Ast.Min -> (info.agg_pred ^ "_lb", bound_axiom Formula.le) :: base
  | Ast.Max -> (info.agg_pred ^ "_ub", bound_axiom Formula.ge) :: base
  | Ast.Count | Ast.Sum -> base

(* ------------------------------------------------------------------ *)
(* Whole-program translation. *)

let theory_of_program ?(name_prefix = "") (p : Ast.program) : Theory.t =
  let arities =
    match Ndlog.Analysis.schema p with
    | Ok m -> m
    | Error e ->
      invalid_arg (Fmt.str "Completion: bad program: %a" Ndlog.Analysis.pp_error e)
  in
  let derived =
    List.sort_uniq String.compare
      (List.map (fun (r : Ast.rule) -> r.Ast.head.Ast.head_pred) p.Ast.rules)
  in
  List.fold_left
    (fun thy pred ->
      let rules =
        List.filter (fun (r : Ast.rule) -> r.Ast.head.Ast.head_pred = pred) p.Ast.rules
      in
      let agg_rules, plain_rules =
        List.partition (fun (r : Ast.rule) -> Ast.has_aggregate r.Ast.head) rules
      in
      let thy =
        if plain_rules = [] then thy
        else
          let arity = Ndlog.Analysis.Smap.find pred arities in
          Theory.add_definition ~pred
            (name_prefix ^ pred ^ "_def")
            (completion_of_pred pred arity plain_rules)
            thy
          |> Theory.add_inductive ~pred ~arity ~rules:plain_rules
      in
      List.fold_left
        (fun thy (r : Ast.rule) ->
          match agg_info_of_rule r with
          | None -> thy
          | Some info ->
            List.fold_left
              (fun thy (nm, f) -> Theory.add (name_prefix ^ nm) f thy)
              thy (aggregate_axioms info))
        thy agg_rules)
    Theory.empty derived

(* Ground facts of a database as axioms, for instance-level proofs. *)
let theory_of_store ?(name_prefix = "fact") (db : Ndlog.Store.t) : Theory.t =
  let i = ref 0 in
  List.fold_left
    (fun thy (pred, tuple) ->
      incr i;
      Theory.add
        (Printf.sprintf "%s_%d" name_prefix !i)
        (Formula.Atom (pred, Array.to_list (Array.map (fun v -> Term.Cst v) tuple)))
        thy)
    Theory.empty (Ndlog.Store.to_list db)
