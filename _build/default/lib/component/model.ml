(* Component-based network models (Section 3.2).

   A protocol is decomposed into components, each of which "takes as
   input received routes, performs internal transformation based on the
   component specifications, and produces the output routes".

   An atomic component [t] with inputs [I], output [O] and constraints
   [CT(I,O)] corresponds to

     PVS:    t(I,O): INDUCTIVE bool = CT(I,O)
     NDlog:  t_out(O) :- t_in(I), CT(I,O)

   We represent a component's interface in NDlog vocabulary directly:
   inputs are atoms (predicate + argument variables), the output is a
   head, and the constraints are rule-body literals.  The two paper
   translations then fall out:

   - [to_ndlog]: arc 3 — each component contributes one rule per
     output; wiring connects one component's output predicate to
     another's input predicate (Figure 3's [tc]);
   - [to_theory]: arc 2/4 — the generated rules run through
     {!Logic.Completion}, giving the inductive definitions used for
     verification.

   Because both artefacts derive from the same component record, the
   translation is property-preserving by construction: the theory IS the
   completion of the implementation. *)

module Ast = Ndlog.Ast

type atomic = {
  comp_name : string;
  (* Input atoms read by the component (the [t_in(I)] predicates). *)
  inputs : Ast.atom list;
  (* The produced output (the [t_out(O)] head). *)
  output : Ast.head;
  (* Additional constraints and assignments CT(I,O). *)
  constraints : Ast.lit list;
}

type t =
  | Atomic of atomic
  | Composite of composite

and composite = {
  comp_label : string;
  parts : t list;
}

let atomic ?(constraints = []) ~name ~inputs ~output () =
  Atomic { comp_name = name; inputs; output; constraints }

let composite label parts = Composite { comp_label = label; parts }

let name = function
  | Atomic a -> a.comp_name
  | Composite c -> c.comp_label

let rec atoms_of = function
  | Atomic a -> [ a ]
  | Composite c -> List.concat_map atoms_of c.parts

(* The NDlog rule of one atomic component. *)
let rule_of_atomic (a : atomic) : Ast.rule =
  {
    Ast.rule_name = Some a.comp_name;
    head = a.output;
    body = List.map (fun at -> Ast.Pos at) a.inputs @ a.constraints;
  }

(* Arc 3: generate the NDlog program for a component model.  [decls]
   materializes every predicate mentioned; [facts] seed the inputs. *)
let to_ndlog ?(facts = []) (c : t) : Ast.program =
  let rules = List.map rule_of_atomic (atoms_of c) in
  let preds =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (r : Ast.rule) ->
           (r.Ast.head.Ast.head_pred :: Ast.body_preds r.Ast.body))
         rules
      @ List.map (fun (f : Ast.fact) -> f.Ast.fact_pred) facts)
  in
  {
    Ast.decls = List.map (fun p -> Ast.decl p) preds;
    facts;
    rules;
  }

(* Arc 2/4: the logical specification — the completion of the generated
   program (each component becomes an inductive definition, exactly the
   paper's [t(I,O): INDUCTIVE bool = CT(I,O)]). *)
let to_theory (c : t) : Logic.Theory.t =
  Logic.Completion.theory_of_program (to_ndlog c)

(* ------------------------------------------------------------------ *)
(* Well-formedness checks: wiring must connect outputs to inputs with
   matching arities, and generated rules must pass the NDlog analyses. *)

type error =
  | Dangling_input of string * string  (* component, predicate *)
  | Bad_program of string

let pp_error ppf = function
  | Dangling_input (c, p) ->
    Fmt.pf ppf "component %s reads %s, which no component produces and no \
                fact seeds" c p
  | Bad_program msg -> Fmt.pf ppf "generated program is ill-formed: %s" msg

let check ?(facts = []) (c : t) : (unit, error) result =
  let atomics = atoms_of c in
  let produced =
    List.map (fun a -> a.output.Ast.head_pred) atomics
    @ List.map (fun (f : Ast.fact) -> f.Ast.fact_pred) facts
  in
  let dangling =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun (at : Ast.atom) ->
            if List.mem at.Ast.pred produced then None
            else Some (a.comp_name, at.Ast.pred))
          a.inputs)
      atomics
  in
  match dangling with
  | (c', p) :: _ -> Error (Dangling_input (c', p))
  | [] -> (
    match Ndlog.Analysis.analyze (to_ndlog ~facts c) with
    | Ok _ -> Ok ()
    | Error e -> Error (Bad_program (Fmt.str "%a" Ndlog.Analysis.pp_error e)))

let pp ppf c =
  let rec go indent c =
    let pad = String.make indent ' ' in
    match c with
    | Atomic a ->
      Fmt.pf ppf "%s%s: %a <- %a@." pad a.comp_name Ast.pp_head a.output
        Fmt.(list ~sep:(any ", ") Ast.pp_atom)
        a.inputs
    | Composite comp ->
      Fmt.pf ppf "%s%s:@." pad comp.comp_label;
      List.iter (go (indent + 2)) comp.parts
  in
  go 0 c
