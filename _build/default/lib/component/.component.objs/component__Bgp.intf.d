lib/component/bgp.mli: Logic Map Model Ndlog Spp
