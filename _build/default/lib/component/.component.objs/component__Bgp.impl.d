lib/component/bgp.ml: Array Hashtbl List Logic Map Model Ndlog Option Printf Random Result Spp
