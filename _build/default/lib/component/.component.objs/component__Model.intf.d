lib/component/model.mli: Fmt Logic Ndlog
