lib/component/model.ml: Fmt List Logic Ndlog String
