(** Component-based network models (Section 3.2 of the paper).

    An atomic component [t] with inputs [I], output [O] and constraints
    [CT(I,O)] corresponds to

    {v
PVS:    t(I,O): INDUCTIVE bool = CT(I,O)
NDlog:  t_out(O) :- t_in(I), CT(I,O)
    v}

    Interfaces are expressed in NDlog vocabulary (inputs are atoms, the
    output a head, constraints body literals), so both paper
    translations derive from the same record: {!to_ndlog} (arc 3) and
    {!to_theory} (arcs 2/4).  The translation is property-preserving by
    construction — the theory {e is} the completion of the
    implementation. *)

type atomic = {
  comp_name : string;
  inputs : Ndlog.Ast.atom list;  (** the [t_in(I)] predicates *)
  output : Ndlog.Ast.head;  (** the [t_out(O)] head *)
  constraints : Ndlog.Ast.lit list;  (** [CT(I,O)] *)
}

type t =
  | Atomic of atomic
  | Composite of composite

and composite = {
  comp_label : string;
  parts : t list;
}

val atomic :
  ?constraints:Ndlog.Ast.lit list ->
  name:string ->
  inputs:Ndlog.Ast.atom list ->
  output:Ndlog.Ast.head ->
  unit ->
  t

val composite : string -> t list -> t
val name : t -> string

val atoms_of : t -> atomic list
(** All atomic components, in tree order. *)

val rule_of_atomic : atomic -> Ndlog.Ast.rule
(** The [t_out(O) :- t_in(I), CT(I,O)] rule. *)

val to_ndlog : ?facts:Ndlog.Ast.fact list -> t -> Ndlog.Ast.program
(** Arc 3: one rule per atomic component, declarations for every
    predicate, seeded with [facts].  Wiring is by predicate name: one
    component's output feeds another's identically named input
    (Figure 3's [tc]). *)

val to_theory : t -> Logic.Theory.t
(** Arcs 2/4: the completion of the generated program — each component
    becomes an inductive definition. *)

type error =
  | Dangling_input of string * string
      (** (component, predicate): an input nobody produces or seeds *)
  | Bad_program of string  (** the generated NDlog fails analysis *)

val pp_error : error Fmt.t

val check : ?facts:Ndlog.Ast.fact list -> t -> (unit, error) result
(** Wiring and static-analysis well-formedness. *)

val pp : t Fmt.t
