(** The component-based BGP model of the paper's Figure 2, made
    executable.

    The decomposition follows the paper: [activeAS] (the trigger:
    which AS advertises to which neighbour this iteration), [pt] —
    itself [export] (policy filters), [pvt] (the path-vector
    transformation: prepend the receiver, reject loops, count hops),
    and [import] (assign local preference, reject unknown peers) — and
    [bestRoute] (selection: lowest local preference, then lowest cost,
    then a deterministic path tie-break).

    Each piece is an atomic {!Model} component, so the NDlog program
    (arc 3) and logical theory (arcs 2/4) are generated, not hand
    written.  One protocol iteration evaluates the generated program;
    the time loop and the adj-RIB-in replacement (the only
    non-monotonic state update, which stratified Datalog cannot
    express) live in OCaml, mirroring the paper's explicit iteration
    index T. *)

(** A policy configuration. *)
type config = {
  ases : string list;
  neighbors : (string * string) list;  (** directed adjacency *)
  originations : (string * string) list;  (** AS originates destination *)
  import_pref : (string * string * int) list;
      (** (u, w, lp): U accepts routes from W at local preference lp;
          absent pairs are filtered by import *)
  export_deny : (string * string * string) list;
      (** (w, u, d): W does not export destination d to U *)
}

val duplex : (string * string) list -> (string * string) list

val disagree : config
(** The paper's Disagree scenario: AS 1 and AS 2 each prefer the route
    through the other (lp 0) over their direct route to the origin
    AS 0 (lp 1); lower lp wins, per the paper's LP algebra. *)

val agree : config
(** The conflict-free variant: direct routes preferred. *)

val chain : int -> config
(** A chain of ASes with the origin at [as0] (scaling runs). *)

(** {1 The model and its translations} *)

val model : Model.t
(** The full Figure-2 component tree. *)

val program : unit -> Ndlog.Ast.program
(** The generated NDlog program (arc 3); stratified and localized. *)

val theory : unit -> Logic.Theory.t
(** The generated logical specification (arcs 2/4). *)

(** {1 Execution} *)

type route = {
  path : string list;
  lp : int;
  cost : int;
}

(** adj-RIB-in: (receiving AS, advertising neighbour, destination) ->
    route. *)
module Rib : Map.S with type key = string * string * string

type rib = route Rib.t

val config_facts : config -> Ndlog.Ast.fact list
val active_facts : (string * string) list -> Ndlog.Ast.fact list
val rib_facts : rib -> Ndlog.Ast.fact list

type step_result = {
  new_rib : rib;
  best : (string * string * route) list;  (** AS, dest, selected route *)
  derivations : int;
}

val step : config -> active:(string * string) list -> rib -> step_result
(** One protocol iteration: evaluate the generated program, then apply
    adj-RIB-in replacement for the active pairs (entries not
    re-advertised are withdrawn). *)

(** Activation schedules. *)
type schedule =
  | Sync  (** every adjacency advertises every round *)
  | Pair_round_robin  (** one directed adjacency per round *)
  | Pair_random of int  (** one random adjacency per round, seeded *)
  | Subset_random of int
      (** each adjacency active with probability 0.85: near-synchronous
          rounds sustain the Disagree oscillation until an asymmetric
          round resolves it — the regime of the paper's delayed
          convergence *)

type outcome = {
  converged : bool;
      (** global stability, verified with a full synchronous probe *)
  oscillated : bool;
      (** a deterministic schedule revisited a state: provable cycle *)
  rounds : int;
  flaps : int;  (** best-route changes after the first selection *)
  cycle_length : int option;
  final_best : (string * string * route) list;
  total_derivations : int;
}

val run : ?max_rounds:int -> config -> schedule:schedule -> outcome

(** {1 Formal classification via the Stable Paths Problem} *)

val to_spp :
  config -> dest:string -> (Spp.Instance.t * string array, string) result
(** The SPP instance a configuration induces for one destination: the
    originating AS is node 0 (the returned array maps SPP node numbers
    back to AS names); permitted paths are the policy-compliant simple
    paths, ranked as [bestRoute] ranks candidates (import local
    preference, then hop count, then the path).  Errors when no AS
    originates [dest]. *)

val classify :
  config -> dest:string -> (Spp.Solver.classification, string) result
(** Classify a configuration before running it: [Unique] means safe,
    [Multiple] a Disagree-style wedge (outcome depends on timing),
    [Unsolvable] guaranteed divergence. *)

val convergence_profile :
  ?runs:int ->
  ?max_rounds:int ->
  ?schedule:(int -> schedule) ->
  config ->
  (bool * int * int) list
(** (converged, rounds, flaps) per seed; default schedule
    [Subset_random]. *)
