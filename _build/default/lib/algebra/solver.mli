(** A generic routing protocol parameterized by a routing algebra: the
    synchronous Bellman-Ford / path-vector iteration

    {v x_u  <-  best over edges (u,v,l) of  l (+) x_v      (x_dest = origin) v}

    iterated to a fixpoint.  Metarouting's central result makes this
    protocol's convergence a property of the algebra alone: discharged
    obligations imply convergence (to optimal signatures when isotone);
    non-monotone algebras may fail to converge, which the round bound
    detects. *)

module Smap : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type 'l graph = {
  g_nodes : string list;
  g_edges : (string * string * 'l) list;  (** directed, labelled *)
}

val graph : nodes:string list -> edges:(string * string * 'l) list -> 'l graph

type 's outcome = {
  converged : bool;
  rounds : int;
  signatures : 's Smap.t;  (** final signature per node *)
}

val round :
  ('s, 'l) Routing_algebra.t -> 'l graph -> dest:string -> 's Smap.t -> 's Smap.t
(** One synchronous Jacobi round. *)

val initial : ('s, 'l) Routing_algebra.t -> 'l graph -> dest:string -> 's Smap.t

val solve :
  ?max_rounds:int ->
  ('s, 'l) Routing_algebra.t ->
  'l graph ->
  dest:string ->
  's outcome
(** Iterate to a fixpoint; default bound [|V|^2 + 8] (monotone algebras
    need at most [|V|] rounds). *)

val optimal_signature :
  ('s, 'l) Routing_algebra.t -> 'l graph -> dest:string -> string -> 's
(** Reference optimum by exhaustive simple-path enumeration (exponential;
    validation on small graphs).  Matches the protocol fixpoint exactly
    when the algebra is isotone. *)

(** {1 Example graphs} (nodes [n0..n(k-1)], symmetric) *)

val line_graph : ?label:(int -> int) -> int -> int graph
val ring_graph : ?label:(int -> int) -> int -> int graph
val gadget_graph : (string * string * 'l) list -> string list -> 'l graph
