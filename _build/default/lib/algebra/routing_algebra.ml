(* Abstract routing algebras (metarouting, Griffin & Sobrinho; Section
   3.3 of the paper).

   An algebra A = (Sigma, pref, L, apply, O, phi):

   - [sig_samples] / [label_samples] make the algebra *checkable*: the
     four semantic axioms (maximality, absorption, monotonicity,
     isotonicity) are discharged by exhaustive evaluation over these
     finite enumerations.  This replaces PVS's theory-interpretation
     proof obligations (the paper: "the proof obligations are
     automatically discharged"): instantiating an algebra here and
     running {!Axioms.check_all} plays the role of instantiating the
     [routeAlgebra] theory and letting the type checker discharge the
     TCCs.  Samples must include [prohibited] and [origin] and be closed
     enough to be representative; generators below enforce the first
     two.

   - [pref a b < 0] means [a] is strictly preferred to [b]; [= 0] means
     equally preferred.  It must be a total preorder.

   The record is polymorphic in the signature and label types so
   composition operators are ordinary functions; [packed] hides the
   types for heterogeneous tables (the E4/E5 experiment loops). *)

type ('s, 'l) t = {
  name : string;
  pref : 's -> 's -> int;
  apply : 'l -> 's -> 's;
  prohibited : 's;
  origin : 's;
  sig_samples : 's list;
  label_samples : 'l list;
  pp_sig : 's Fmt.t;
  pp_label : 'l Fmt.t;
}

type packed = Packed : ('s, 'l) t -> packed

let pack a = Packed a

let name (Packed a) = a.name

(* Equality of signatures as used by the axioms: indistinguishable under
   preference AND structurally equal.  The axioms only ever need
   structural equality on [prohibited]. *)
let is_prohibited a s = a.pref s a.prohibited = 0 && s = a.prohibited

(* Convenience: build sample lists that always include the two
   distinguished elements. *)
let with_distinguished a samples =
  let add x l = if List.mem x l then l else x :: l in
  add a.prohibited (add a.origin samples)

let make ~name ~pref ~apply ~prohibited ~origin ~sig_samples ~label_samples
    ~pp_sig ~pp_label () =
  let a =
    {
      name;
      pref;
      apply;
      prohibited;
      origin;
      sig_samples;
      label_samples;
      pp_sig;
      pp_label;
    }
  in
  { a with sig_samples = with_distinguished a sig_samples }
