(** Metarouting composition theorems, checked on concrete algebras.

    The lexical-product preservation results:

    {v
M(A (x) B)   <==  SM(A)  \/  (M(A) /\ M(B))
SM(A (x) B)  <==  SM(A)  \/  (M(A) /\ SM(B))
I(A (x) B)   <==  SI(A) /\ I(A) /\ I(B)
    v}

    [lex_preservation] evaluates both sides: side conditions from the
    component axiom reports, the conclusion by directly checking the
    composite.  Experiment E5 prints the table; the tests assert
    soundness (no predicted property is ever refuted by the direct
    check) over the whole catalogue. *)

type prediction = {
  composite : string;
  a_monotone : bool;
  a_strictly_monotone : bool;
  b_monotone : bool;
  b_strictly_monotone : bool;
  a_isotone : bool;
  b_isotone : bool;
  predicts_monotone : bool;
  predicts_strictly_monotone : bool;
  predicts_isotone : bool;
  composite_monotone : bool;
  composite_strictly_monotone : bool;
  composite_isotone : bool;
}

val sound : prediction -> bool
(** Every predicted property was confirmed (predictions are sufficient
    conditions, not necessary ones). *)

val lex_preservation :
  ('sa, 'la) Routing_algebra.t ->
  ('sb, 'lb) Routing_algebra.t ->
  prediction

val pp_prediction : prediction Fmt.t
