(* A generic routing protocol parameterized by a routing algebra: the
   asynchronous Bellman-Ford / path-vector iteration

     x_u  <-  best_{(u,v,l) in E}  l (+) x_v      (x_dest = origin)

   iterated to a fixpoint.  Metarouting's central result makes this
   protocol's convergence a property of the algebra alone: monotone +
   isotone algebras converge on every topology (to optimal signatures
   when isotone); non-monotone algebras may oscillate, which the solver
   detects by revisiting a state or exceeding the iteration bound.

   Experiment E4/E5 pair this with the axiom checkers: algebras whose
   obligations discharge converge; the refuted ones exhibit divergence
   or suboptimal fixpoints on concrete topologies. *)

open Routing_algebra

module Smap = Map.Make (String)

type 'l graph = {
  g_nodes : string list;
  g_edges : (string * string * 'l) list;  (* directed u -> v with label *)
}

let graph ~nodes ~edges = { g_nodes = nodes; g_edges = edges }

type 's outcome = {
  converged : bool;
  rounds : int;
  signatures : 's Smap.t;  (* final signature per node *)
}

(* One synchronous Jacobi round: every node recomputes from its
   out-edges' current values. *)
let round (a : ('s, 'l) t) (g : 'l graph) ~dest (x : 's Smap.t) : 's Smap.t =
  List.fold_left
    (fun acc u ->
      if u = dest then Smap.add u a.origin acc
      else
        let best =
          List.fold_left
            (fun best (src, v, l) ->
              if src <> u then best
              else
                let cand = a.apply l (Smap.find v x) in
                if a.pref cand best < 0 then cand else best)
            a.prohibited g.g_edges
        in
        Smap.add u best acc)
    Smap.empty g.g_nodes

let initial (a : ('s, 'l) t) (g : 'l graph) ~dest : 's Smap.t =
  List.fold_left
    (fun acc u -> Smap.add u (if u = dest then a.origin else a.prohibited) acc)
    Smap.empty g.g_nodes

(* Iterate to fixpoint; bound by [max_rounds] (default |V|^2 + 8, ample
   for any monotone algebra, whose convergence needs at most |V|
   rounds). *)
let solve ?max_rounds (a : ('s, 'l) t) (g : 'l graph) ~dest : 's outcome =
  let bound =
    match max_rounds with
    | Some b -> b
    | None -> (List.length g.g_nodes * List.length g.g_nodes) + 8
  in
  let rec go i x =
    if i >= bound then { converged = false; rounds = i; signatures = x }
    else
      let x' = round a g ~dest x in
      if Smap.equal (fun p q -> p = q) x x' then
        { converged = true; rounds = i; signatures = x' }
      else go (i + 1) x'
  in
  go 0 (initial a g ~dest)

(* Reference optimum: enumerate all simple paths from [u] to [dest] and
   fold their signatures; exponential, for validation on small graphs
   only.  With isotonicity the protocol fixpoint matches this. *)
let optimal_signature (a : ('s, 'l) t) (g : 'l graph) ~dest u : 's =
  let rec explore node visited : 's list =
    if node = dest then [ a.origin ]
    else
      List.concat_map
        (fun (src, v, l) ->
          if src <> node || List.mem v visited then []
          else List.map (a.apply l) (explore v (v :: visited)))
        g.g_edges
  in
  List.fold_left
    (fun best s -> if a.pref s best < 0 then s else best)
    a.prohibited
    (explore u [ u ])

(* ------------------------------------------------------------------ *)
(* Example topologies with integer labels. *)

let line_graph ?(label = fun _ -> 1) k =
  let node i = Printf.sprintf "n%d" i in
  {
    g_nodes = List.init k node;
    g_edges =
      List.concat
        (List.init (k - 1) (fun i ->
             [ (node i, node (i + 1), label i); (node (i + 1), node i, label i) ]));
  }

let ring_graph ?(label = fun _ -> 1) k =
  let node i = Printf.sprintf "n%d" i in
  {
    g_nodes = List.init k node;
    g_edges =
      List.concat
        (List.init k (fun i ->
             let j = (i + 1) mod k in
             [ (node i, node j, label i); (node j, node i, label i) ]));
  }

(* A two-node gadget with label maps chosen to exercise non-monotone
   algebras (mirrors Disagree when driven by lpA-style labels). *)
let gadget_graph edges nodes = { g_nodes = nodes; g_edges = edges }
