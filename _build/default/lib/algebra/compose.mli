(** Composition operators over routing algebras (Section 3.3.1:
    "composition operators such as the lexical product operator that
    models lexicographical comparisons of multiple attributes in route
    selection").

    Composites inherit sample enumerations from their components, so
    their obligations are discharged by the same {!Axioms} checkers —
    the analogue of PVS discharging a composite theory's TCCs. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val lex_product :
  ?name:string ->
  ('sa, 'la) Routing_algebra.t ->
  ('sb, 'lb) Routing_algebra.t ->
  ('sa * 'sb, 'la * 'lb) Routing_algebra.t
(** Lexical product: compare on A, tie-break on B.  The composite's
    signature space is [(Sigma_a \ phi) x (Sigma_b \ phi)] plus the
    canonical prohibited pair; mixed-prohibited pairs normalize to
    [phi] (so absorption survives composition). *)

val scale_labels :
  ?name:string -> factor:int -> ('s, int) Routing_algebra.t ->
  ('s, int) Routing_algebra.t
(** Multiply every (integer) label by a positive constant. *)

val restrict_labels :
  ?name:string -> keep:('l -> bool) -> ('s, 'l) Routing_algebra.t ->
  ('s, 'l) Routing_algebra.t
(** Keep only the labels satisfying a predicate (policy subsets); axioms
    can only become easier to satisfy. *)

val label_union :
  ?name:string ->
  ('s, 'la) Routing_algebra.t ->
  ('s, 'lb) Routing_algebra.t ->
  ('s, ('la, 'lb) Either.t) Routing_algebra.t
(** Disjoint union of label sets over a shared signature structure
    (protocols with several link types).
    @raise Invalid_argument when the prohibited elements differ. *)

val bgp_system : unit -> (int * Base.cost, int * int) Routing_algebra.t
(** The paper's running example: [BGPSystem: THEORY = lexProduct[LP, RC]]
    — local preference first, route cost as tie breaker.  Inherits
    lpA's monotonicity refutation. *)

val safe_bgp_system : unit -> (int * Base.cost, int * int) Routing_algebra.t
(** A restricted, provably convergent variant (constant local
    preference, strict costs): the kind of relaxed design the paper's
    Section 4.1 wants FVN to explore. *)
