(** Base (atomic) routing algebras (Section 3.3.1: metarouting "provides
    instances of base algebras for adding link costs (addA) during path
    concatenation, and for specifying local preferences (lpA) used in
    route selection"), plus the other classics. *)

(** Cost-like signatures: finite metric or unreachable ([Inf] = phi). *)
type cost = Fin of int | Inf

val pp_cost : cost Fmt.t
val compare_cost : cost -> cost -> int

val add_cost :
  ?sig_samples:int list -> ?label_samples:int list -> unit ->
  (cost, int) Routing_algebra.t
(** [addA]: additive link costs, smaller preferred.  Monotone and
    isotone but (with the default zero label) not strictly monotone. *)

val add_cost_strict :
  ?sig_samples:int list -> ?label_samples:int list -> unit ->
  (cost, int) Routing_algebra.t
(** [addA+]: positive labels only — strictly monotone and strictly
    isotone. *)

val hop_count : unit -> (cost, int) Routing_algebra.t
(** [hopA]: every link counts one hop (labels ignored). *)

val local_pref :
  ?prohibited:int -> ?sig_samples:int list -> ?label_samples:int list -> unit ->
  (int, int) Routing_algebra.t
(** [lpA]: the label {e replaces} the signature
    ([labelApply(l,s) = l], the paper's LP snippet); smaller values
    preferred ([prefRel(s1,s2) = s1 <= s2]); default [prohibitPath = 4]
    as in the paper.  Deliberately {e not} monotone: the canonical
    useful algebra outside the idealized model (Section 4.1). *)

val bandwidth :
  ?sig_samples:int list -> ?label_samples:int list -> unit ->
  (int, int) Routing_algebra.t
(** [bandA]: widest path; a link caps the bandwidth; larger preferred;
    [phi = 0].  Monotone and isotone, neither strictly. *)

val reliability :
  ?sig_samples:int list -> ?label_samples:int list -> unit ->
  (int, int) Routing_algebra.t
(** [relA]: multiplicative reliability in per-mille; larger preferred. *)

val trivial : unit -> (cost, unit) Routing_algebra.t
(** [trivA]: the one-point algebra. *)

val all : unit -> Routing_algebra.packed list
(** The catalogue iterated by experiments E4/E5. *)
