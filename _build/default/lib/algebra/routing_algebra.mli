(** Abstract routing algebras (metarouting; Section 3.3 of the paper).

    An algebra [A = (Sigma, pref, L, apply, O, phi)] models a routing
    protocol's path signatures and policies:

    - [pref a b < 0] means [a] is strictly preferred ([= 0]: tied); it
      must be a total preorder ({!Axioms.check_preorder});
    - [apply l s] is label application [l (+) s] (path extension);
    - [prohibited] is [phi], the unusable path;
    - [origin] is the signature of an originated route;
    - [sig_samples]/[label_samples] are finite enumerations over which
      the four semantic axioms are discharged by exhaustive evaluation —
      the FVN substitute for PVS's theory-interpretation proof
      obligations ("the proof obligations are automatically
      discharged"). *)

type ('s, 'l) t = {
  name : string;
  pref : 's -> 's -> int;
  apply : 'l -> 's -> 's;
  prohibited : 's;
  origin : 's;
  sig_samples : 's list;
  label_samples : 'l list;
  pp_sig : 's Fmt.t;
  pp_label : 'l Fmt.t;
}

(** Existential wrapper for heterogeneous catalogues. *)
type packed = Packed : ('s, 'l) t -> packed

val pack : ('s, 'l) t -> packed
val name : packed -> string

val is_prohibited : ('s, 'l) t -> 's -> bool
(** Structurally equal to [phi] and preference-tied with it. *)

val with_distinguished : ('s, 'l) t -> 's list -> 's list
(** Ensure [prohibited] and [origin] are among the samples. *)

val make :
  name:string ->
  pref:('s -> 's -> int) ->
  apply:('l -> 's -> 's) ->
  prohibited:'s ->
  origin:'s ->
  sig_samples:'s list ->
  label_samples:'l list ->
  pp_sig:'s Fmt.t ->
  pp_label:'l Fmt.t ->
  unit ->
  ('s, 'l) t
(** Builder; adds the distinguished elements to [sig_samples]. *)
