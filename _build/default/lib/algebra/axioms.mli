(** The metarouting axioms as executable proof obligations.

    Each check evaluates an axiom exhaustively over the algebra's sample
    enumerations and either discharges it (with the instance count) or
    returns a pretty-printed counterexample — the FVN replacement for
    PVS automatically discharging theory-interpretation obligations
    (Section 3.3.2 of the paper). *)

type status =
  | Discharged of int  (** instances checked *)
  | Refuted of string  (** a concrete counterexample *)

(** The paper's four axioms plus two auxiliary obligations used by the
    composition theorems. *)
type axiom =
  | Maximality  (** [phi] is least preferred *)
  | Absorption  (** [l (+) phi = phi] *)
  | Monotonicity  (** [s <= l (+) s]: paths get no better as they grow *)
  | Strict_monotonicity  (** strictly worse, except from [phi] *)
  | Isotonicity  (** preference is preserved by label application *)
  | Strict_isotonicity  (** strict preference is preserved *)

val axiom_name : axiom -> string
val all_axioms : axiom list

val check : ('s, 'l) Routing_algebra.t -> axiom -> status

val check_preorder : ('s, 'l) Routing_algebra.t -> status
(** Well-formedness: [pref] is reflexive, transitive, and antisymmetric
    as a preorder on the samples (PVS would impose this via typing). *)

type report = {
  algebra : string;
  results : (axiom * status) list;
  preorder : status;
}

val check_all : ('s, 'l) Routing_algebra.t -> report
val check_packed : Routing_algebra.packed -> report
val holds : report -> axiom -> bool

val well_behaved : report -> bool
(** Monotone and isotone: metarouting's convergence-with-optimality
    guarantee. *)

val pp_status : status Fmt.t
val pp_report : report Fmt.t
